package multicore

import (
	"context"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/experiment"
)

// A small trained predictor shared by the tests (training is the slow
// part).
var (
	predOnce sync.Once
	predVal  *core.Predictor
	predErr  error
)

func testPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	predOnce.Do(func() {
		sc := experiment.TestScale()
		sc.Programs = []string{"mcf", "swim", "crafty", "eon"}
		sc.PhasesPerProgram = 2
		var ds *experiment.Dataset
		ds, predErr = experiment.Build(context.Background(), sc)
		if predErr != nil {
			return
		}
		predVal, predErr = ds.TrainAll(counters.Advanced)
	})
	if predErr != nil {
		t.Fatal(predErr)
	}
	return predVal
}

func TestNewValidation(t *testing.T) {
	pred := testPredictor(t)
	specs := []CoreSpec{{Program: "mcf"}, {Program: "swim"}}
	if _, err := New(nil, pred, DefaultOptions()); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := New(specs, nil, DefaultOptions()); err == nil {
		t.Error("nil predictor accepted")
	}
	bad := DefaultOptions()
	bad.Interval = 0
	if _, err := New(specs, pred, bad); err == nil {
		t.Error("zero interval accepted")
	}
	bad = DefaultOptions()
	bad.L2BudgetKB = 64
	if _, err := New(specs, pred, bad); err == nil {
		t.Error("starved L2 budget accepted")
	}
	bad = DefaultOptions()
	bad.MemAccessesPerNs = 0
	if _, err := New(specs, pred, bad); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New([]CoreSpec{{Program: "nope"}}, pred, DefaultOptions()); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestPartitionPolicies(t *testing.T) {
	misses := []uint64{1000, 10}
	for name, pol := range map[string]PartitionPolicy{"equal": EqualShare, "demand": DemandShare} {
		q := pol(4096, misses)
		if len(q) != 2 {
			t.Fatalf("%s: %d quotas", name, len(q))
		}
		sum := 0
		for _, v := range q {
			if arch.IndexOf(arch.L2CacheKB, v) < 0 {
				t.Errorf("%s: illegal quota %d", name, v)
			}
			sum += v
		}
		if sum > 4096 {
			t.Errorf("%s: quotas total %d over budget", name, sum)
		}
	}
	// Demand share must favour the hungrier core.
	q := DemandShare(4096, misses)
	if q[0] < q[1] {
		t.Errorf("demand share gave hungry core %d, quiet core %d", q[0], q[1])
	}
	if EqualShare(4096, misses)[0] != EqualShare(4096, misses)[1] {
		t.Error("equal share unequal")
	}
}

func TestLegalL2AtMost(t *testing.T) {
	cases := map[int]int{100: 256, 256: 256, 300: 256, 1024: 1024, 5000: 4096}
	for in, want := range cases {
		if got := legalL2AtMost(in); got != want {
			t.Errorf("legalL2AtMost(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTwoCoreRunProducesHeterogeneity(t *testing.T) {
	pred := testPredictor(t)
	opts := DefaultOptions()
	opts.Interval = 4000
	specs := []CoreSpec{
		{Program: "mcf"},  // memory-bound
		{Program: "swim"}, // streaming FP
	}
	sys, err := New(specs, pred, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cores) != 2 {
		t.Fatalf("%d core reports", len(rep.Cores))
	}
	for i, cr := range rep.Cores {
		if !cr.FinalConfig.Valid() {
			t.Errorf("core %d invalid final config", i)
		}
		if cr.TotalInsts != 6*4000 {
			t.Errorf("core %d ran %d insts", i, cr.TotalInsts)
		}
		if cr.Efficiency <= 0 || cr.IPS <= 0 {
			t.Errorf("core %d bad metrics: %+v", i, cr)
		}
		if cr.Repredicts == 0 {
			t.Errorf("core %d never repredicted", i)
		}
		if cr.AvgL2QuotaKB <= 0 {
			t.Errorf("core %d zero quota", i)
		}
	}
	if rep.Heterogeneity < 0 || rep.Heterogeneity > 1 {
		t.Errorf("heterogeneity %v out of range", rep.Heterogeneity)
	}
	if rep.ContentionStretch < 1 {
		t.Errorf("contention stretch %v below 1", rep.ContentionStretch)
	}
	if rep.TotalIPS <= 0 || rep.TotalWatts <= 0 {
		t.Errorf("bad chip aggregates: %+v", rep)
	}
}

func TestContentionSlowsMemoryHogs(t *testing.T) {
	pred := testPredictor(t)
	run := func(bandwidth float64) *Report {
		opts := DefaultOptions()
		opts.Interval = 3000
		opts.MemAccessesPerNs = bandwidth
		sys, err := New([]CoreSpec{{Program: "mcf"}, {Program: "mcf", StartPhase: 1}}, pred, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	wide := run(10.0)    // effectively unconstrained
	narrow := run(0.001) // heavily constrained
	if narrow.ContentionStretch <= wide.ContentionStretch {
		t.Errorf("narrow bandwidth stretch %.2f not above wide %.2f",
			narrow.ContentionStretch, wide.ContentionStretch)
	}
	if narrow.TotalIPS >= wide.TotalIPS {
		t.Errorf("narrow bandwidth IPS %.3e not below wide %.3e", narrow.TotalIPS, wide.TotalIPS)
	}
}

func TestConfigDistance(t *testing.T) {
	a := arch.MinConfig()
	if d := configDistance(a, a); d != 0 {
		t.Errorf("self distance %v", d)
	}
	b := arch.Profiling()
	d := configDistance(a, b)
	if d <= 0.5 || d > 1 {
		t.Errorf("min-max distance %v, want in (0.5, 1]", d)
	}
	if configDistance(a, b) != configDistance(b, a) {
		t.Error("distance asymmetric")
	}
}

func TestRunValidation(t *testing.T) {
	pred := testPredictor(t)
	sys, err := New([]CoreSpec{{Program: "eon"}}, pred, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err == nil {
		t.Error("zero intervals accepted")
	}
}
