// Package multicore implements the paper's closing future-work direction:
// per-core predictive adaptivity on a chip multiprocessor. Each core runs
// its own workload and adapts its private resources with the trained
// predictor; the unified L2 is a shared budget partitioned between cores
// by a policy, and main-memory bandwidth is shared, so one core's traffic
// slows the others. The paper conjectures this yields "true heterogeneity"
// — cores of one chip specialising to their workloads — which the
// heterogeneity metric below makes measurable.
//
// Sharing is modelled at interval granularity: cores simulate their
// intervals independently (their private simulators carry per-core L1s,
// predictors and an L2 slice of the partitioned budget), then a bandwidth
// model stretches each interval by the contention the cores' combined
// memory traffic would have caused.
package multicore

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/trace"
)

// CoreSpec describes one core's workload.
type CoreSpec struct {
	Program    string
	StartPhase int
}

// PartitionPolicy divides the shared L2 budget (KB) between cores, given
// each core's L2 miss count in the previous interval. It returns one legal
// Table I L2 size per core whose sum must not exceed the budget.
type PartitionPolicy func(budgetKB int, misses []uint64) []int

// EqualShare splits the budget evenly (rounded down to legal sizes).
func EqualShare(budgetKB int, misses []uint64) []int {
	n := len(misses)
	out := make([]int, n)
	for i := range out {
		out[i] = legalL2AtMost(budgetKB / n)
	}
	return out
}

// DemandShare gives each core a slice proportional to its recent L2 miss
// pressure, with a floor of the smallest legal size.
func DemandShare(budgetKB int, misses []uint64) []int {
	n := len(misses)
	out := make([]int, n)
	minL2 := arch.Domain(arch.L2CacheKB)[0]
	total := 0.0
	for _, m := range misses {
		total += float64(m) + 1
	}
	remaining := budgetKB - n*minL2
	if remaining < 0 {
		remaining = 0
	}
	for i, m := range misses {
		share := minL2 + int(float64(remaining)*(float64(m)+1)/total)
		out[i] = legalL2AtMost(share)
	}
	return out
}

// legalL2AtMost returns the largest legal L2 size not exceeding kb
// (clamping to the smallest size when kb is below it).
func legalL2AtMost(kb int) int {
	d := arch.Domain(arch.L2CacheKB)
	best := d[0]
	for _, v := range d {
		if v <= kb {
			best = v
		}
	}
	return best
}

// Options configure the multicore system.
type Options struct {
	// Interval is instructions per core per interval.
	Interval int
	// L2BudgetKB is the total shared L2 capacity.
	L2BudgetKB int
	// Partition divides the budget; nil means DemandShare.
	Partition PartitionPolicy
	// RepredictEvery is how many intervals a core runs before it
	// re-profiles and re-predicts (its private adaptation cadence).
	RepredictEvery int
	// MemAccessesPerNs is the shared memory bandwidth: the aggregate
	// DRAM access rate the chip sustains before contention stretches
	// execution.
	MemAccessesPerNs float64
	// SampledSets for profiling runs.
	SampledSets int
	// OverheadScale scales reconfiguration costs, as in core.Options.
	OverheadScale float64
	// Start is each core's boot configuration.
	Start arch.Config
}

// DefaultOptions returns a sensible scaled setup.
func DefaultOptions() Options {
	return Options{
		Interval:         8000,
		L2BudgetKB:       4096,
		RepredictEvery:   4,
		MemAccessesPerNs: 0.05,
		SampledSets:      32,
		OverheadScale:    0.02,
		Start:            arch.Baseline(),
	}
}

// coreState is one core's private machinery.
type coreState struct {
	spec    CoreSpec
	gen     *trace.Generator
	sim     *cpu.Sim
	cfg     arch.Config
	quotaKB int
	phase   int

	lastL2Misses uint64
	insts        []trace.Inst
}

// CoreReport summarises one core's run.
type CoreReport struct {
	Spec         CoreSpec
	FinalConfig  arch.Config
	TotalInsts   uint64
	Seconds      float64
	EnergyJ      float64
	IPS          float64
	Efficiency   float64
	Repredicts   int
	AvgL2QuotaKB float64
}

// Report summarises a system run.
type Report struct {
	Cores []CoreReport
	// Heterogeneity is the mean pairwise distance between the cores'
	// final configurations (0 = identical cores, 1 = opposite corners of
	// the design space): the paper's "true heterogeneity" made a number.
	Heterogeneity float64
	// ContentionStretch is the mean factor by which shared-memory
	// bandwidth stretched interval times (1 = no contention).
	ContentionStretch float64
	// Aggregate chip metrics.
	TotalIPS   float64
	TotalWatts float64
}

// System is a chip of adaptive cores sharing an L2 budget and memory
// bandwidth.
type System struct {
	opts  Options
	pred  *core.Predictor
	cores []*coreState
}

// New builds a system with one core per spec, all driven by the same
// trained predictor.
func New(specs []CoreSpec, pred *core.Predictor, opts Options) (*System, error) {
	if len(specs) == 0 {
		return nil, errors.New("multicore: no cores")
	}
	if pred == nil {
		return nil, errors.New("multicore: nil predictor")
	}
	if opts.Interval <= 0 {
		return nil, fmt.Errorf("multicore: interval %d must be positive", opts.Interval)
	}
	if opts.L2BudgetKB < arch.Domain(arch.L2CacheKB)[0]*len(specs) {
		return nil, fmt.Errorf("multicore: L2 budget %dKB below %d cores' minimum", opts.L2BudgetKB, len(specs))
	}
	if opts.RepredictEvery <= 0 {
		opts.RepredictEvery = 4
	}
	if opts.MemAccessesPerNs <= 0 {
		return nil, fmt.Errorf("multicore: bandwidth %v must be positive", opts.MemAccessesPerNs)
	}
	if opts.Partition == nil {
		opts.Partition = DemandShare
	}
	if err := opts.Start.Check(); err != nil {
		return nil, err
	}
	sys := &System{opts: opts, pred: pred}
	quota := legalL2AtMost(opts.L2BudgetKB / len(specs))
	for _, spec := range specs {
		g, err := trace.NewGenerator(spec.Program, spec.StartPhase)
		if err != nil {
			return nil, err
		}
		cfg := opts.Start.With(arch.L2CacheKB, quota)
		sim, err := cpu.New(cfg)
		if err != nil {
			return nil, err
		}
		sys.cores = append(sys.cores, &coreState{
			spec: spec, gen: g, sim: sim, cfg: cfg, quotaKB: quota,
			phase: spec.StartPhase,
			insts: make([]trace.Inst, opts.Interval),
		})
	}
	return sys, nil
}

// Run executes nIntervals on every core and returns the report.
func (s *System) Run(nIntervals int) (*Report, error) {
	if nIntervals <= 0 {
		return nil, fmt.Errorf("multicore: interval count %d must be positive", nIntervals)
	}
	rep := &Report{Cores: make([]CoreReport, len(s.cores))}
	for i, c := range s.cores {
		rep.Cores[i].Spec = c.spec
	}
	stretchSum := 0.0
	for iv := 0; iv < nIntervals; iv++ {
		// Re-partition the shared L2 from last interval's miss pressure.
		misses := make([]uint64, len(s.cores))
		for i, c := range s.cores {
			misses[i] = c.lastL2Misses
		}
		quotas := s.opts.Partition(s.opts.L2BudgetKB, misses)
		if err := s.checkQuotas(quotas); err != nil {
			return nil, err
		}

		// Run each core's interval privately.
		type ivRes struct {
			seconds float64
			energyJ float64
			memAcc  uint64
			leakW   float64
		}
		results := make([]ivRes, len(s.cores))
		for i, c := range s.cores {
			c.quotaKB = quotas[i]
			target := c.cfg.With(arch.L2CacheKB, quotas[i])
			res, err := s.runCoreInterval(c, iv, target, &rep.Cores[i])
			if err != nil {
				return nil, fmt.Errorf("multicore: core %d (%s): %w", i, c.spec.Program, err)
			}
			results[i] = ivRes{
				seconds: res.SecondsSim,
				energyJ: res.EnergyJ,
				memAcc:  res.L2Misses,
				leakW:   res.Energy.LeakageJ / math.Max(res.SecondsSim, 1e-18),
			}
			c.lastL2Misses = res.L2Misses
			rep.Cores[i].AvgL2QuotaKB += float64(quotas[i]) / float64(nIntervals)
		}

		// Shared-memory contention: if the cores' combined DRAM traffic
		// exceeds the chip bandwidth, every interval stretches by the
		// overload factor (and leakage accrues over the longer time).
		var traffic, span float64
		for _, r := range results {
			span = math.Max(span, r.seconds)
			traffic += float64(r.memAcc)
		}
		stretch := 1.0
		if span > 0 {
			rate := traffic / (span * 1e9) // accesses per ns
			if rate > s.opts.MemAccessesPerNs {
				stretch = rate / s.opts.MemAccessesPerNs
			}
		}
		stretchSum += stretch
		for i, r := range results {
			sec := r.seconds * stretch
			extraLeak := r.leakW * (sec - r.seconds)
			rep.Cores[i].Seconds += sec
			rep.Cores[i].EnergyJ += r.energyJ + extraLeak
			rep.Cores[i].TotalInsts += uint64(s.opts.Interval)
		}
	}

	// Finalise.
	var totIPS, totW float64
	for i := range rep.Cores {
		cr := &rep.Cores[i]
		cr.FinalConfig = s.cores[i].cfg
		if cr.Seconds > 0 {
			cr.IPS = float64(cr.TotalInsts) / cr.Seconds
			w := cr.EnergyJ / cr.Seconds
			if w > 0 {
				cr.Efficiency = cr.IPS * cr.IPS * cr.IPS / w
			}
			totIPS += cr.IPS
			totW += w
		}
	}
	rep.TotalIPS = totIPS
	rep.TotalWatts = totW
	rep.ContentionStretch = stretchSum / float64(nIntervals)
	rep.Heterogeneity = heterogeneity(s.cores)
	return rep, nil
}

// runCoreInterval advances one core by one interval, re-predicting its
// configuration on its cadence.
func (s *System) runCoreInterval(c *coreState, iv int, target arch.Config, cr *CoreReport) (*cpu.Result, error) {
	for i := range c.insts {
		c.insts[i] = c.gen.Next()
	}
	body := c.insts
	var stall uint64
	var energy float64
	if iv%s.opts.RepredictEvery == 0 {
		// Profile a slice of the interval on the (quota-clamped) profiling
		// configuration, predict, and adopt the prediction.
		prof := arch.Profiling().With(arch.L2CacheKB, c.quotaKB)
		n := len(c.insts) / 8
		if n < 1 {
			n = 1
		}
		cost := core.Overhead(c.cfg, prof, c.sim.Power())
		if err := c.sim.Reconfigure(prof); err != nil {
			return nil, err
		}
		pres, err := c.sim.Run(cpu.NewSliceSource(c.insts[:n]), n, cpu.Options{
			Collect:       true,
			SampledSets:   s.opts.SampledSets,
			StartStall:    uint64(float64(cost.StallCycles) * s.opts.OverheadScale),
			ExtraEnergyPJ: cost.EnergyPJ * s.opts.OverheadScale,
		})
		if err != nil {
			return nil, err
		}
		next := s.pred.Predict(counters.Features(pres, s.pred.Set))
		next[arch.L2CacheKB] = c.quotaKB // the partition owns this knob
		swCost := core.Overhead(prof, next, c.sim.Power())
		stall = uint64(float64(swCost.StallCycles) * s.opts.OverheadScale)
		energy = swCost.EnergyPJ * s.opts.OverheadScale
		c.cfg = next
		cr.Repredicts++
		target = next
		body = c.insts[n:]
		// Account the profiling slice's cost to this interval directly.
		cr.EnergyJ += pres.EnergyJ
		cr.Seconds += pres.SecondsSim
	}
	if c.sim.Config() != target {
		if err := c.sim.Reconfigure(target); err != nil {
			return nil, err
		}
		c.cfg = target
	}
	return c.sim.Run(cpu.NewSliceSource(body), len(body), cpu.Options{
		StartStall:    stall,
		ExtraEnergyPJ: energy,
	})
}

// checkQuotas validates a partition policy's output.
func (s *System) checkQuotas(quotas []int) error {
	if len(quotas) != len(s.cores) {
		return fmt.Errorf("multicore: policy returned %d quotas for %d cores", len(quotas), len(s.cores))
	}
	sum := 0
	for _, q := range quotas {
		if arch.IndexOf(arch.L2CacheKB, q) < 0 {
			return fmt.Errorf("multicore: policy returned illegal L2 size %d", q)
		}
		sum += q
	}
	if sum > s.opts.L2BudgetKB {
		return fmt.Errorf("multicore: partition total %dKB exceeds budget %dKB", sum, s.opts.L2BudgetKB)
	}
	return nil
}

// heterogeneity computes the mean pairwise normalised config distance.
func heterogeneity(cores []*coreState) float64 {
	if len(cores) < 2 {
		return 0
	}
	total, pairs := 0.0, 0
	for i := 0; i < len(cores); i++ {
		for j := i + 1; j < len(cores); j++ {
			total += configDistance(cores[i].cfg, cores[j].cfg)
			pairs++
		}
	}
	return total / float64(pairs)
}

// configDistance is the mean per-parameter normalised index distance.
func configDistance(a, b arch.Config) float64 {
	d := 0.0
	for p := arch.Param(0); p < arch.NumParams; p++ {
		span := float64(arch.DomainSize(p) - 1)
		if span == 0 {
			continue
		}
		d += math.Abs(float64(arch.IndexOf(p, a[p])-arch.IndexOf(p, b[p]))) / span
	}
	return d / float64(arch.NumParams)
}
