package render_test

import (
	"fmt"

	"repro/internal/render"
)

// ExampleSparkline renders a series as block glyphs.
func ExampleSparkline() {
	fmt.Println(render.Sparkline([]float64{1, 2, 4, 8, 4, 2, 1}))
	// Output: ▁▂▄█▄▂▁
}

// ExampleViolinStrip renders a distribution summary.
func ExampleViolinStrip() {
	fmt.Printf("[%s]\n", render.ViolinStrip(0, 0.25, 0.5, 0.75, 1.0, 21))
	// Output: [-----#####o#####-----]
}
