package render

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestBarChartBasics(t *testing.T) {
	out := BarChart("title", []Bar{{"aa", 2}, {"b", 1}}, 20, 1)
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[1], "####") {
		t.Errorf("no bar drawn: %q", lines[1])
	}
	// The longer value's bar must be longer.
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths not ordered: %q vs %q", lines[1], lines[2])
	}
	// Reference line appears in the shorter bar's row.
	if !strings.Contains(lines[2], "|") {
		t.Errorf("reference line missing: %q", lines[2])
	}
	if !strings.Contains(lines[1], "2.00") {
		t.Errorf("value missing: %q", lines[1])
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	if out := BarChart("x", nil, 20, 0); !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %q", out)
	}
	// Zero values must not panic or draw negative bars.
	out := BarChart("x", []Bar{{"z", 0}}, 4, 0)
	if strings.Contains(out, "#") {
		t.Errorf("zero value drew a bar: %q", out)
	}
	// Tiny width clamps.
	_ = BarChart("x", []Bar{{"z", 5}}, 1, 0)
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Fatalf("sparkline length %d, want 4", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	// Constant series renders at the lowest level without dividing by 0.
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series rendered %q", flat)
		}
	}
}

func TestViolinStrip(t *testing.T) {
	s := ViolinStrip(0.1, 0.3, 0.5, 0.7, 0.9, 40)
	if len(s) != 40 {
		t.Fatalf("strip length %d", len(s))
	}
	if !strings.Contains(s, "o") {
		t.Errorf("median marker missing: %q", s)
	}
	if !strings.Contains(s, "#") || !strings.Contains(s, "-") {
		t.Errorf("box or whiskers missing: %q", s)
	}
	oIdx := strings.Index(s, "o")
	firstHash := strings.Index(s, "#")
	lastHash := strings.LastIndex(s, "#")
	if oIdx < firstHash || oIdx > lastHash {
		t.Errorf("median outside the box: %q", s)
	}
	// Clamped inputs must not panic.
	_ = ViolinStrip(-1, 0, 0.5, 1, 2, 10)
	_ = ViolinStrip(0, 0, 0, 0, 0, 5)
}
