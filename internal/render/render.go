// Package render draws the report's figures as text: horizontal bar
// charts (Figures 4 and 6), sparkline series (Figure 1) and violin strips
// (Figure 8). Pure functions from data to strings, used by cmd/report so
// the regenerated figures read like figures rather than tables.
package render

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters, with the
// numeric value on the right. A reference line (e.g. 1.0 for ratio charts)
// is marked with '|' when it falls inside the plotted range.
func BarChart(title string, bars []Bar, width int, reference float64) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(bars) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	maxVal := 0.0
	maxLabel := 0
	for _, bar := range bars {
		if bar.Value > maxVal {
			maxVal = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	if reference > maxVal {
		maxVal = reference
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	refCol := -1
	if reference > 0 && reference <= maxVal {
		refCol = int(reference / maxVal * float64(width))
		if refCol >= width {
			refCol = width - 1
		}
	}
	for _, bar := range bars {
		n := int(math.Round(bar.Value / maxVal * float64(width)))
		if n > width {
			n = width
		}
		if n < 0 {
			n = 0
		}
		row := make([]byte, width)
		for i := range row {
			switch {
			case i < n:
				row[i] = '#'
			case i == refCol:
				row[i] = '|'
			default:
				row[i] = ' '
			}
		}
		fmt.Fprintf(&b, "  %-*s %s %6.2f\n", maxLabel, bar.Label, string(row), bar.Value)
	}
	return b.String()
}

// sparkGlyphs are the eight levels of a sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as one line of block glyphs scaled
// between the series' min and max. Empty input yields an empty string.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	var b strings.Builder
	for _, x := range xs {
		level := 0
		if hi > lo {
			level = int((x - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		if level < 0 {
			level = 0
		}
		if level >= len(sparkGlyphs) {
			level = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[level])
	}
	return b.String()
}

// ViolinStrip renders a [0,1]-normalised distribution summary as a strip:
// min/max whiskers, an interquartile box and the median marker, like one
// violin of the paper's Figure 8 turned on its side.
//
//	value  ··----[####o####]-----··
func ViolinStrip(min, q1, median, q3, max float64, width int) string {
	if width < 10 {
		width = 10
	}
	col := func(v float64) int {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		c := int(v * float64(width-1))
		return c
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	for i := col(min); i <= col(max) && i < width; i++ {
		row[i] = '-'
	}
	for i := col(q1); i <= col(q3) && i < width; i++ {
		row[i] = '#'
	}
	if m := col(median); m < width {
		row[m] = 'o'
	}
	return string(row)
}
