package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/power"
)

// Profiling hardware cost model (paper §VIII "Gathering Hardware
// Counters", Figure 9). Building the block and set reuse histograms is the
// dominant counter-gathering overhead: per monitored block the hardware
// keeps two timestamps (fill time, last hit) and a hit counter; per
// monitored set, a hit counter. Dynamic set sampling [27] monitors only a
// subset of sets (Table IV), scaling both the bookkeeping energy and the
// extra storage (and hence leakage) down proportionally.

// ReuseFeature selects which histogram's gathering cost is modelled.
type ReuseFeature int

// Features whose gathering cost Figure 9 reports.
const (
	SetReuse ReuseFeature = iota
	BlockReuse
)

// String names the feature as in Figure 9.
func (f ReuseFeature) String() string {
	if f == SetReuse {
		return "set-reuse"
	}
	return "block-reuse"
}

// Bits of profiling state per monitored unit.
const (
	timestampBits  = 16
	hitCounterBits = 16
	blockStateBits = 2*timestampBits + hitCounterBits // per monitored block
	setStateBits   = hitCounterBits                   // per monitored set
	// Energy of updating profiling state on one monitored access relative
	// to one data-array access of the same cache: timestamp read+compare,
	// timestamp write and histogram-bin increment, calibrated so the
	// D-cache block-reuse overhead lands at the paper's ~1.55%.
	updateEnergyFraction = 0.25
)

// ProfilingOverhead is the energy cost of gathering one reuse histogram on
// one cache, as a percentage of that cache's own energy (Figure 9's
// y-axes).
type ProfilingOverhead struct {
	DynamicPct float64 // extra dynamic energy / cache dynamic energy
	LeakagePct float64 // extra leakage / cache leakage
}

// ProfilingCost models the overhead of gathering the given feature's
// histogram on a cache of cacheKB kilobytes with the given line size when
// sampledSets of totalSets sets are monitored.
func ProfilingCost(cacheKB, lineBytes, sampledSets, totalSets int, feature ReuseFeature) (ProfilingOverhead, error) {
	if cacheKB <= 0 || lineBytes <= 0 || totalSets <= 0 {
		return ProfilingOverhead{}, fmt.Errorf("core: bad profiling geometry %dKB/%dB/%d sets", cacheKB, lineBytes, totalSets)
	}
	if sampledSets <= 0 || sampledSets > totalSets {
		return ProfilingOverhead{}, fmt.Errorf("core: sampledSets %d out of range 1..%d", sampledSets, totalSets)
	}
	frac := float64(sampledSets) / float64(totalSets)
	ways := cacheKB * 1024 / lineBytes / totalSets
	if ways < 1 {
		ways = 1
	}

	// Dynamic: monitored accesses update profiling state; block reuse
	// updates per-block state (wider), set reuse a single counter.
	var widthFactor float64
	var extraBitsPerSet float64
	switch feature {
	case BlockReuse:
		widthFactor = 1.0
		extraBitsPerSet = float64(blockStateBits * ways)
	default:
		widthFactor = 0.35
		extraBitsPerSet = float64(setStateBits)
	}
	dynamic := frac * updateEnergyFraction * widthFactor

	// Leakage: extra storage bits relative to the cache's own bits.
	cacheBitsPerSet := float64(ways * lineBytes * 8)
	leak := frac * extraBitsPerSet / cacheBitsPerSet

	return ProfilingOverhead{DynamicPct: dynamic * 100, LeakagePct: leak * 100}, nil
}

// Figure9Row is one bar group of Figure 9: the overhead of one feature on
// one cache at its Table IV sampling level.
type Figure9Row struct {
	Cache       string
	Feature     ReuseFeature
	SampledSets int
	TotalSets   int
	Overhead    ProfilingOverhead
}

// TableIVSampling returns the per-cache, per-feature sampled-set counts of
// Table IV of the paper.
func TableIVSampling() map[string]map[ReuseFeature]int {
	return map[string]map[ReuseFeature]int{
		"ICache": {SetReuse: 256, BlockReuse: 16},
		"DCache": {SetReuse: 4, BlockReuse: 128},
		"L2":     {SetReuse: 16, BlockReuse: 32},
	}
}

// Figure9 computes the profiling-overhead rows of Figure 9 for the
// profiling configuration's cache geometry, using Table IV's sampling.
func Figure9(pm *power.Model) ([]Figure9Row, error) {
	type geom struct {
		name      string
		sizeKB    int
		lineBytes int
		totalSets int
	}
	cfg := pm.Cfg
	ic, dc, l2 := cfg[arch.ICacheKB], cfg[arch.DCacheKB], cfg[arch.L2CacheKB]
	geoms := []geom{
		{"ICache", ic, cache.L1LineBytes, ic * 1024 / cache.L1LineBytes / 2},
		{"DCache", dc, cache.L1LineBytes, dc * 1024 / cache.L1LineBytes / 2},
		{"L2", l2, cache.L2LineBytes, l2 * 1024 / cache.L2LineBytes / 8},
	}
	sampling := TableIVSampling()
	var rows []Figure9Row
	for _, g := range geoms {
		for _, f := range []ReuseFeature{SetReuse, BlockReuse} {
			n := sampling[g.name][f]
			if n > g.totalSets {
				n = g.totalSets
			}
			ov, err := ProfilingCost(g.sizeKB, g.lineBytes, n, g.totalSets, f)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Figure9Row{
				Cache: g.name, Feature: f,
				SampledSets: n, TotalSets: g.totalSets, Overhead: ov,
			})
		}
	}
	return rows, nil
}
