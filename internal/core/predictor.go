// Package core implements the paper's contribution: the predictive
// adaptivity controller. It bundles fourteen per-parameter soft-max models
// into a configuration predictor (Section IV), models the cost of
// reconfiguring each hardware structure (Section VIII, Table V), and runs
// the monitor -> profile -> predict -> reconfigure loop of Figure 2 on top
// of the cycle-level simulator.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/counters"
	"repro/internal/softmax"
)

// PhaseExample is one training phase: its profiling-configuration feature
// vector and the set of good configurations (within 5% of the best found,
// paper §IV-D).
type PhaseExample struct {
	Features []float64
	Good     []arch.Config
}

// Predictor maps a phase's hardware-counter features to the predicted best
// configuration, one independent soft-max model per parameter (paper
// eq. 1: parameters are conditionally independent given the counters).
type Predictor struct {
	Set    counters.Set
	Models [arch.NumParams]*softmax.Model
}

// TrainPredictor fits the fourteen per-parameter models on the given
// phases. Each phase contributes one example per good configuration, per
// parameter.
func TrainPredictor(set counters.Set, phases []PhaseExample, opts softmax.Options) (*Predictor, error) {
	return TrainPredictorCtx(context.Background(), set, phases, opts)
}

// TrainPredictorCtx is TrainPredictor with cooperative cancellation,
// checked between the fourteen per-parameter trainings (each is a full
// conjugate-gradient run, so this is the useful granularity).
func TrainPredictorCtx(ctx context.Context, set counters.Set, phases []PhaseExample, opts softmax.Options) (*Predictor, error) {
	if len(phases) == 0 {
		return nil, errors.New("core: no training phases")
	}
	d := counters.Dim(set)
	p := &Predictor{Set: set}
	for param := arch.Param(0); param < arch.NumParams; param++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: training cancelled: %w", err)
		}
		var exs []softmax.Example
		for i, ph := range phases {
			if len(ph.Features) != d {
				return nil, fmt.Errorf("core: phase %d features have dim %d, want %d", i, len(ph.Features), d)
			}
			if len(ph.Good) == 0 {
				return nil, fmt.Errorf("core: phase %d has no good configurations", i)
			}
			for _, cfg := range ph.Good {
				k := arch.IndexOf(param, cfg[param])
				if k < 0 {
					return nil, fmt.Errorf("core: phase %d good config has invalid %s=%d", i, param, cfg[param])
				}
				exs = append(exs, softmax.Example{X: ph.Features, Y: k})
			}
		}
		m, err := softmax.Train(d, arch.DomainSize(param), exs, opts)
		if err != nil {
			return nil, fmt.Errorf("core: training %s model: %w", param, err)
		}
		p.Models[param] = m
	}
	return p, nil
}

// Predict returns the configuration whose every parameter maximises its
// per-parameter model score for the given features (paper eq. 2, 8-9).
func (p *Predictor) Predict(features []float64) arch.Config {
	var ix [arch.NumParams]int
	for param := arch.Param(0); param < arch.NumParams; param++ {
		ix[param] = p.Models[param].Predict(features)
	}
	return arch.FromIndices(ix)
}

// WeightCount returns the total number of weights across all fourteen
// models (the paper counts ~2000 for its counter set).
func (p *Predictor) WeightCount() int {
	n := 0
	for _, m := range p.Models {
		if m != nil {
			n += len(m.W)
		}
	}
	return n
}

// QuantizedPredictor is the 8-bit hardware form of the predictor (§VIII).
type QuantizedPredictor struct {
	Set    counters.Set
	Models [arch.NumParams]*softmax.Quantized
}

// Quantize converts every per-parameter model to 8-bit weights.
func (p *Predictor) Quantize() *QuantizedPredictor {
	q := &QuantizedPredictor{Set: p.Set}
	for i, m := range p.Models {
		if m != nil {
			q.Models[i] = m.Quantize()
		}
	}
	return q
}

// Predict is the 8-bit prediction path.
func (q *QuantizedPredictor) Predict(features []float64) arch.Config {
	var ix [arch.NumParams]int
	for param := arch.Param(0); param < arch.NumParams; param++ {
		ix[param] = q.Models[param].Predict(features)
	}
	return arch.FromIndices(ix)
}

// StorageBytes returns the total weight storage of the quantised
// predictor.
func (q *QuantizedPredictor) StorageBytes() int {
	n := 0
	for _, m := range q.Models {
		if m != nil {
			n += m.StorageBytes()
		}
	}
	return n
}
