package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/arch"
	"repro/internal/counters"
)

func TestSaveWritesVersionedHeader(t *testing.T) {
	pred := trainToyPredictor(t, counters.Basic)
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < 5 || !bytes.Equal(b[:4], wireMagic[:]) {
		t.Fatalf("saved predictor does not start with magic %q: % x", wireMagic, b[:min(8, len(b))])
	}
	if b[4] != wireVersion {
		t.Errorf("format version byte = %d, want %d", b[4], wireVersion)
	}
}

func TestLoadPredictorLegacyBareGob(t *testing.T) {
	// Files written before the header existed are bare gob; they must
	// still load.
	pred := trainToyPredictor(t, counters.Basic)
	wire := predictorWire{Set: int(pred.Set)}
	for _, m := range pred.Models {
		wire.Dims = append(wire.Dims, m.D)
		wire.Ks = append(wire.Ks, m.K)
		wire.Floats = append(wire.Floats, m.W)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatalf("legacy bare-gob predictor rejected: %v", err)
	}
	if loaded.Set != pred.Set {
		t.Errorf("set mismatch: %v vs %v", loaded.Set, pred.Set)
	}
}

func TestLoadPredictorRejectsFutureVersion(t *testing.T) {
	pred := trainToyPredictor(t, counters.Basic)
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = wireVersion + 9
	_, err := LoadPredictor(bytes.NewReader(b))
	if err == nil {
		t.Fatal("future format version accepted")
	}
}

func TestLoadPredictorRejectsShortFile(t *testing.T) {
	for _, b := range [][]byte{nil, {'A'}, {'A', 'D', 'P'}, append(wireMagic[:], wireVersion)} {
		if _, err := LoadPredictor(bytes.NewReader(b)); err == nil {
			t.Errorf("short file % x accepted", b)
		}
	}
}

func TestValidateCatchesShapeMismatches(t *testing.T) {
	pred := trainToyPredictor(t, counters.Basic)
	if err := pred.Validate(); err != nil {
		t.Fatalf("trained predictor invalid: %v", err)
	}

	wrongSet := *pred
	wrongSet.Set = counters.Advanced // basic-dimension models under the advanced set
	if err := wrongSet.Validate(); err == nil {
		t.Error("set/dimension mismatch not caught")
	}

	var missing Predictor
	missing.Set = counters.Basic
	if err := missing.Validate(); err == nil {
		t.Error("missing models not caught")
	}
}

func TestLoadPredictorRejectsForeignShape(t *testing.T) {
	// A structurally consistent wire payload whose class counts do not
	// match the design space must be rejected at load time.
	var wire predictorWire
	d := counters.Dim(counters.Basic)
	for i := 0; i < int(arch.NumParams); i++ {
		k := arch.DomainSize(arch.Param(i)) + 1
		wire.Dims = append(wire.Dims, d)
		wire.Ks = append(wire.Ks, k)
		wire.Floats = append(wire.Floats, make([]float64, d*k))
	}
	var buf bytes.Buffer
	buf.Write(append(wireMagic[:], wireVersion))
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictor(&buf); err == nil {
		t.Fatal("foreign-shape predictor accepted")
	}
}
