package core

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/trace"
)

// Options configure the runtime controller.
type Options struct {
	// Interval is the monitoring interval in instructions (stage 1 of
	// Figure 2 operates at interval granularity).
	Interval int
	// SignatureBits and Threshold parameterise the online phase-change
	// detector.
	SignatureBits int
	Threshold     float64
	// SampledSets bounds cache profiler sampling during profiling
	// intervals (0 = all sets).
	SampledSets int
	// Start is the configuration the machine boots in.
	Start arch.Config
	// Cadence, if non-nil, restricts which parameters may be reconfigured
	// at each reconfiguration event (the paper's future-work extension:
	// per-structure adaptation frequencies). Nil adapts everything.
	Cadence CadencePolicy
	// OverheadScale scales reconfiguration stall cycles and energy. The
	// Table V costs are absolute (the paper amortises them over
	// 10M-instruction intervals); when running scaled-down intervals,
	// scale the overheads by the same factor to preserve the paper's
	// overhead-to-interval ratio. Zero means 1 (unscaled).
	OverheadScale float64
}

// DefaultOptions returns sensible controller settings for scaled runs.
func DefaultOptions() Options {
	return Options{
		Interval:      20000,
		SignatureBits: 1024,
		Threshold:     0.5,
		Start:         arch.Baseline(),
		OverheadScale: 1,
	}
}

// CadencePolicy decides, at the r-th reconfiguration event, which
// parameters may change. It enables the paper's proposed extension of
// adapting different structures at different frequencies.
type CadencePolicy func(reconfigIndex int, p arch.Param) bool

// EveryNth returns a cadence that adapts cheap structures every event but
// expensive ones (caches) only every n-th event.
func EveryNth(n int) CadencePolicy {
	return func(r int, p arch.Param) bool {
		switch p {
		case arch.ICacheKB, arch.DCacheKB, arch.L2CacheKB:
			return r%n == 0
		default:
			return true
		}
	}
}

// IntervalRecord summarises one monitoring interval of a controller run.
type IntervalRecord struct {
	Index        int
	Config       arch.Config
	PhaseChange  bool
	Profiled     bool
	Reconfigured bool
	Cycles       uint64
	EnergyJ      float64
	Seconds      float64
	IPS          float64
	Efficiency   float64
	StallCycles  uint64
}

// Report aggregates a controller run.
type Report struct {
	Records      []IntervalRecord
	TotalInsts   uint64
	TotalSeconds float64
	TotalEnergyJ float64
	PhaseChanges int
	Reconfigs    int
	Profiles     int

	// Aggregate metrics over the whole run.
	IPS        float64
	Watts      float64
	Efficiency float64
}

// Controller runs the paper's monitor -> profile -> predict -> reconfigure
// loop (Figure 2) over a live instruction stream.
type Controller struct {
	pred *Predictor
	opts Options

	det     *phase.Detector
	current arch.Config
	sim     *cpu.Sim
	recfg   int

	// Pending reconfiguration cost, charged to the next interval.
	pendingStall  uint64
	pendingEnergy float64
}

// NewController builds a controller around a trained predictor.
func NewController(pred *Predictor, opts Options) (*Controller, error) {
	if pred == nil {
		return nil, errors.New("core: nil predictor")
	}
	if opts.Interval <= 0 {
		return nil, fmt.Errorf("core: interval %d must be positive", opts.Interval)
	}
	if err := opts.Start.Check(); err != nil {
		return nil, err
	}
	det, err := phase.NewDetector(opts.SignatureBits, opts.Threshold)
	if err != nil {
		return nil, err
	}
	sim, err := cpu.New(opts.Start)
	if err != nil {
		return nil, err
	}
	return &Controller{
		pred:    pred,
		opts:    opts,
		det:     det,
		current: opts.Start,
		sim:     sim,
	}, nil
}

// Current returns the configuration the machine is currently in.
func (c *Controller) Current() arch.Config { return c.current }

// simFor reconfigures the single machine in place, preserving the state
// of structures that did not change (Sim.Reconfigure).
func (c *Controller) simFor(cfg arch.Config) (*cpu.Sim, error) {
	if c.sim.Config() != cfg {
		if err := c.sim.Reconfigure(cfg); err != nil {
			return nil, err
		}
	}
	return c.sim, nil
}

// Run executes nIntervals monitoring intervals from src and returns the
// report. The first interval always profiles (the machine knows nothing
// about the incoming program).
func (c *Controller) Run(src cpu.Source, nIntervals int) (*Report, error) {
	if nIntervals <= 0 {
		return nil, fmt.Errorf("core: interval count %d must be positive", nIntervals)
	}
	rep := &Report{}
	insts := make([]trace.Inst, c.opts.Interval)
	for iv := 0; iv < nIntervals; iv++ {
		// Stage 1: monitor. Pull the interval and update the detector.
		for i := range insts {
			insts[i] = src.Next()
			c.det.Observe(insts[i])
		}
		changed := c.det.EndInterval()
		rec := IntervalRecord{Index: iv, PhaseChange: changed}
		if changed {
			rep.PhaseChanges++
		}

		if changed || iv == 0 {
			// Stage 2: profile on the profiling configuration.
			if err := c.profileAndPredict(insts, &rec, rep); err != nil {
				return nil, err
			}
		} else {
			if err := c.runInterval(insts, c.current, cpu.Options{}, &rec); err != nil {
				return nil, err
			}
		}
		rec.Config = c.current
		rep.Records = append(rep.Records, rec)
		rep.TotalInsts += uint64(c.opts.Interval)
		rep.TotalSeconds += rec.Seconds
		rep.TotalEnergyJ += rec.EnergyJ
	}
	if rep.TotalSeconds > 0 {
		rep.IPS = float64(rep.TotalInsts) / rep.TotalSeconds
		rep.Watts = rep.TotalEnergyJ / rep.TotalSeconds
		rep.Efficiency = rep.IPS * rep.IPS * rep.IPS / rep.Watts
	}
	return rep, nil
}

// Profiling slice sizing: the paper profiles "briefly" (§III-B1) and
// amortises the cost over the phase (§VIII), but the counters need enough
// instructions to be statistically stable — temporal histograms gathered
// over a few hundred instructions are noise. An eighth of the interval,
// floored at profileMinInsts, balances the two at scaled interval sizes.
const (
	profileFraction = 8    // one eighth of the interval
	profileMinInsts = 3000 // histogram stability floor
)

// scaledOverhead computes the reconfiguration cost scaled per
// Options.OverheadScale.
func (c *Controller) scaledOverhead(from, to arch.Config) Cost {
	cost := Overhead(from, to, power.New(to))
	scale := c.opts.OverheadScale
	if scale == 0 {
		scale = 1
	}
	cost.StallCycles = uint64(float64(cost.StallCycles) * scale)
	cost.EnergyPJ *= scale
	return cost
}

// profileAndPredict runs stages 2-4 of Figure 2 within one interval:
// reconfigure to the profiling configuration, gather counters on the first
// eighth of the interval, predict, reconfigure, and run the remainder of
// the interval on the predicted configuration. All reconfiguration costs
// are charged to this interval.
func (c *Controller) profileAndPredict(insts []trace.Inst, rec *IntervalRecord, rep *Report) error {
	prof := arch.Profiling()
	cost := c.scaledOverhead(c.current, prof)
	n := len(insts) / profileFraction
	if n < profileMinInsts {
		n = profileMinInsts
	}
	if n > len(insts) {
		n = len(insts)
	}
	// Cache state migration across the resize is handled by
	// Sim.Reconfigure (surviving partitions keep their lines), so no
	// explicit flush is requested here; the stall and energy costs remain.
	opts := cpu.Options{
		Collect:       true,
		SampledSets:   c.opts.SampledSets,
		StartStall:    cost.StallCycles + c.pendingStall,
		ExtraEnergyPJ: cost.EnergyPJ + c.pendingEnergy,
	}
	c.pendingStall, c.pendingEnergy = 0, 0
	var profRec IntervalRecord
	res, err := c.runIntervalRes(insts[:n], prof, opts, &profRec)
	if err != nil {
		return err
	}
	rec.Profiled = true
	rec.StallCycles += cost.StallCycles
	rep.Profiles++

	// Stage 3: predict.
	feats := counters.Features(res, c.pred.Set)
	next := c.pred.Predict(feats)
	if c.opts.Cadence != nil {
		for p := arch.Param(0); p < arch.NumParams; p++ {
			if !c.opts.Cadence(c.recfg, p) {
				next[p] = c.current[p]
			}
		}
	}
	// Stage 4: reconfigure, then finish the interval on the new machine.
	swCost := c.scaledOverhead(prof, next)
	if next != c.current {
		rep.Reconfigs++
		rec.Reconfigured = true
		c.recfg++
	}
	c.current = next
	var runRec IntervalRecord
	if len(insts) > n {
		runOpts := cpu.Options{
			StartStall:    swCost.StallCycles,
			ExtraEnergyPJ: swCost.EnergyPJ,
		}
		if _, err := c.runIntervalRes(insts[n:], c.current, runOpts, &runRec); err != nil {
			return err
		}
	} else {
		c.pendingStall = swCost.StallCycles
		c.pendingEnergy = swCost.EnergyPJ
	}
	rec.StallCycles += swCost.StallCycles

	// Merge the profiling and post-reconfiguration sub-runs.
	rec.Cycles = profRec.Cycles + runRec.Cycles
	rec.EnergyJ = profRec.EnergyJ + runRec.EnergyJ
	rec.Seconds = profRec.Seconds + runRec.Seconds
	if rec.Seconds > 0 {
		rec.IPS = float64(len(insts)) / rec.Seconds
		watts := rec.EnergyJ / rec.Seconds
		if watts > 0 {
			rec.Efficiency = rec.IPS * rec.IPS * rec.IPS / watts
		}
	}
	return nil
}

// runInterval runs insts on cfg, applying any pending reconfiguration
// cost, and fills the record.
func (c *Controller) runInterval(insts []trace.Inst, cfg arch.Config, opts cpu.Options, rec *IntervalRecord) error {
	if c.pendingStall > 0 || c.pendingEnergy > 0 {
		opts.StartStall += c.pendingStall
		opts.ExtraEnergyPJ += c.pendingEnergy
		rec.StallCycles += c.pendingStall
		c.pendingStall, c.pendingEnergy = 0, 0
	}
	_, err := c.runIntervalRes(insts, cfg, opts, rec)
	return err
}

// runIntervalRes is runInterval returning the raw result.
func (c *Controller) runIntervalRes(insts []trace.Inst, cfg arch.Config, opts cpu.Options, rec *IntervalRecord) (*cpu.Result, error) {
	sim, err := c.simFor(cfg)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cpu.NewSliceSource(insts), len(insts), opts)
	if err != nil {
		return nil, err
	}
	rec.Cycles = res.Cycles
	rec.EnergyJ = res.EnergyJ
	rec.Seconds = res.SecondsSim
	rec.IPS = res.IPS
	rec.Efficiency = res.Efficiency
	return res, nil
}
