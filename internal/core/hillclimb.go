package core

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/trace"
)

// HillClimber is the runtime-exploration baseline the paper argues against
// (Section IX "Runtime Exploration", cf. [3], [38], [39]): instead of
// predicting the best configuration in one shot, it perturbs one parameter
// per interval, keeps the move when measured efficiency improves and
// reverts it otherwise. It inevitably spends intervals in poor
// configurations — the cost the predictive model avoids.
type HillClimber struct {
	opts HillClimbOptions
	sim  *cpu.Sim
	rng  *rand.Rand

	current arch.Config
	prevEff float64
	// The last speculative move, to revert on regression.
	moved     bool
	movedFrom arch.Config
}

// HillClimbOptions configure the explorer.
type HillClimbOptions struct {
	// Interval is the evaluation interval in instructions.
	Interval int
	// Start is the initial configuration.
	Start arch.Config
	// Seed drives the random walk.
	Seed uint64
	// OverheadScale scales reconfiguration costs, as in Options.
	OverheadScale float64
}

// NewHillClimber builds the explorer.
func NewHillClimber(opts HillClimbOptions) (*HillClimber, error) {
	if opts.Interval <= 0 {
		return nil, fmt.Errorf("core: interval %d must be positive", opts.Interval)
	}
	if err := opts.Start.Check(); err != nil {
		return nil, err
	}
	if opts.OverheadScale == 0 {
		opts.OverheadScale = 1
	}
	sim, err := cpu.New(opts.Start)
	if err != nil {
		return nil, err
	}
	return &HillClimber{
		opts:    opts,
		sim:     sim,
		rng:     rand.New(rand.NewPCG(opts.Seed, 0xc11b5eed)),
		current: opts.Start,
	}, nil
}

// Run executes nIntervals, climbing between them, and returns the report.
func (h *HillClimber) Run(src cpu.Source, nIntervals int) (*Report, error) {
	if nIntervals <= 0 {
		return nil, fmt.Errorf("core: interval count %d must be positive", nIntervals)
	}
	rep := &Report{}
	insts := make([]trace.Inst, h.opts.Interval)
	var pendingStall uint64
	var pendingEnergy float64
	for iv := 0; iv < nIntervals; iv++ {
		for i := range insts {
			insts[i] = src.Next()
		}
		if h.sim.Config() != h.current {
			if err := h.sim.Reconfigure(h.current); err != nil {
				return nil, err
			}
		}
		res, err := h.sim.Run(cpu.NewSliceSource(insts), len(insts), cpu.Options{
			StartStall:    pendingStall,
			ExtraEnergyPJ: pendingEnergy,
		})
		if err != nil {
			return nil, err
		}
		pendingStall, pendingEnergy = 0, 0

		rec := IntervalRecord{
			Index:      iv,
			Config:     h.current,
			Cycles:     res.Cycles,
			EnergyJ:    res.EnergyJ,
			Seconds:    res.SecondsSim,
			IPS:        res.IPS,
			Efficiency: res.Efficiency,
		}
		rep.Records = append(rep.Records, rec)
		rep.TotalInsts += uint64(len(insts))
		rep.TotalSeconds += res.SecondsSim
		rep.TotalEnergyJ += res.EnergyJ

		// Decide the next move.
		next := h.current
		if h.moved && res.Efficiency < h.prevEff {
			next = h.movedFrom // regression: revert
			h.moved = false
		} else {
			h.prevEff = res.Efficiency
			h.movedFrom = h.current
			next = arch.Neighbor(h.current, h.rng)
			h.moved = true
		}
		if next != h.current {
			cost := Overhead(h.current, next, h.sim.Power())
			pendingStall = uint64(float64(cost.StallCycles) * h.opts.OverheadScale)
			pendingEnergy = cost.EnergyPJ * h.opts.OverheadScale
			h.current = next
			rep.Reconfigs++
		}
	}
	if rep.TotalSeconds > 0 {
		rep.IPS = float64(rep.TotalInsts) / rep.TotalSeconds
		rep.Watts = rep.TotalEnergyJ / rep.TotalSeconds
		rep.Efficiency = rep.IPS * rep.IPS * rep.IPS / rep.Watts
	}
	return rep, nil
}

// Current returns the explorer's current configuration.
func (h *HillClimber) Current() arch.Config { return h.current }
