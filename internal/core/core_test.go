package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/softmax"
	"repro/internal/trace"
)

// trainToyPredictor builds a predictor over synthetic features where
// feature 0 indicates "memory bound" and feature 1 "compute bound", with
// good configs that differ accordingly. It exercises the full training
// path cheaply.
func trainToyPredictor(t *testing.T, set counters.Set) *Predictor {
	t.Helper()
	d := counters.Dim(set)
	memFeat := make([]float64, d)
	memFeat[0] = 1
	memFeat[d-1] = 1
	cpuFeat := make([]float64, d)
	cpuFeat[1] = 1
	cpuFeat[d-1] = 1

	memCfg := arch.Baseline().With(arch.L2CacheKB, 4096).With(arch.Width, 2)
	cpuCfg := arch.Baseline().With(arch.L2CacheKB, 256).With(arch.Width, 8)
	phases := []PhaseExample{
		{Features: memFeat, Good: []arch.Config{memCfg}},
		{Features: cpuFeat, Good: []arch.Config{cpuCfg}},
	}
	opts := softmax.DefaultOptions()
	opts.MaxIter = 60
	pred, err := TrainPredictor(set, phases, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func TestTrainPredictorLearnsSeparation(t *testing.T) {
	pred := trainToyPredictor(t, counters.Basic)
	d := counters.Dim(counters.Basic)
	memFeat := make([]float64, d)
	memFeat[0] = 1
	memFeat[d-1] = 1
	cpuFeat := make([]float64, d)
	cpuFeat[1] = 1
	cpuFeat[d-1] = 1

	mem := pred.Predict(memFeat)
	cpuc := pred.Predict(cpuFeat)
	if mem[arch.L2CacheKB] != 4096 || mem[arch.Width] != 2 {
		t.Errorf("memory-bound prediction wrong: %v", mem)
	}
	if cpuc[arch.L2CacheKB] != 256 || cpuc[arch.Width] != 8 {
		t.Errorf("compute-bound prediction wrong: %v", cpuc)
	}
	if !mem.Valid() || !cpuc.Valid() {
		t.Error("invalid predicted config")
	}
}

func TestTrainPredictorValidation(t *testing.T) {
	if _, err := TrainPredictor(counters.Basic, nil, softmax.DefaultOptions()); err == nil {
		t.Error("no phases accepted")
	}
	bad := []PhaseExample{{Features: []float64{1}, Good: []arch.Config{arch.Baseline()}}}
	if _, err := TrainPredictor(counters.Basic, bad, softmax.DefaultOptions()); err == nil {
		t.Error("wrong feature dim accepted")
	}
	d := counters.Dim(counters.Basic)
	noGood := []PhaseExample{{Features: make([]float64, d)}}
	if _, err := TrainPredictor(counters.Basic, noGood, softmax.DefaultOptions()); err == nil {
		t.Error("phase without good configs accepted")
	}
	badCfg := arch.Baseline()
	badCfg[arch.Width] = 5
	invalid := []PhaseExample{{Features: make([]float64, d), Good: []arch.Config{badCfg}}}
	if _, err := TrainPredictor(counters.Basic, invalid, softmax.DefaultOptions()); err == nil {
		t.Error("invalid good config accepted")
	}
}

func TestPredictorWeightCountAndQuantization(t *testing.T) {
	pred := trainToyPredictor(t, counters.Basic)
	want := counters.Dim(counters.Basic) * arch.TotalValues()
	if got := pred.WeightCount(); got != want {
		t.Errorf("weight count %d, want D*sum(K) = %d", got, want)
	}
	q := pred.Quantize()
	if q.StorageBytes() != want {
		t.Errorf("quantized storage %d bytes, want %d", q.StorageBytes(), want)
	}
	d := counters.Dim(counters.Basic)
	f := make([]float64, d)
	f[0] = 1
	f[d-1] = 1
	qc := q.Predict(f)
	if !qc.Valid() {
		t.Error("quantized prediction invalid")
	}
}

func TestTableVMatchesPaperAtBaseline(t *testing.T) {
	want := map[string]uint64{
		"Width": 443, "RF": 487, "Bpred": 154, "ROB": 255,
		"IQ": 234, "LSQ": 275, "ICache": 478, "DCache": 620, "UCache": 18322,
	}
	for _, row := range TableV() {
		if got := want[row.Structure]; got != row.Cycles {
			t.Errorf("Table V %s = %d cycles, want %d", row.Structure, row.Cycles, got)
		}
	}
}

func TestStructureCyclesScaleWithSize(t *testing.T) {
	small := StructureCycles(arch.L2CacheKB, 256)
	big := StructureCycles(arch.L2CacheKB, 4096)
	if big <= small {
		t.Errorf("L2 reconfig cycles not monotone: %d vs %d", small, big)
	}
	if d := StructureCycles(arch.DepthFO4, 12); d == 0 {
		t.Error("depth reconfig free")
	}
	if p := StructureCycles(arch.RFReadPorts, 8); p == 0 {
		t.Error("port reconfig free")
	}
	if b := StructureCycles(arch.BTBSize, 2048); b == 0 {
		t.Error("BTB reconfig free")
	}
}

func TestOverheadZeroForSameConfig(t *testing.T) {
	c := Overhead(arch.Baseline(), arch.Baseline(), power.New(arch.Baseline()))
	if c.StallCycles != 0 || c.EnergyPJ != 0 || c.Changed != 0 || c.FlushCaches {
		t.Errorf("same-config overhead nonzero: %+v", c)
	}
}

func TestOverheadDetectsCacheFlush(t *testing.T) {
	from := arch.Baseline()
	to := from.With(arch.DCacheKB, 64)
	c := Overhead(from, to, power.New(to))
	if !c.FlushCaches {
		t.Error("cache size change did not flush")
	}
	if c.Changed != 1 || c.StallCycles == 0 || c.EnergyPJ <= 0 {
		t.Errorf("unexpected overhead: %+v", c)
	}
	// Non-cache change must not flush.
	c2 := Overhead(from, from.With(arch.IQSize, 64), power.New(from))
	if c2.FlushCaches {
		t.Error("IQ change flushed caches")
	}
}

func TestOverheadDominatedByLargestStructure(t *testing.T) {
	from := arch.Baseline()
	to := from.With(arch.IQSize, 64).With(arch.L2CacheKB, 4096)
	both := Overhead(from, to, power.New(to))
	justL2 := Overhead(from, from.With(arch.L2CacheKB, 4096), power.New(to))
	if both.StallCycles != justL2.StallCycles {
		t.Errorf("stall should be dominated by L2: %d vs %d", both.StallCycles, justL2.StallCycles)
	}
}

func TestProfilingCostShape(t *testing.T) {
	// Figure 9's shape: block reuse on the D-cache is the most expensive,
	// everything stays below ~2%.
	rows, err := Figure9(power.New(arch.Profiling()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 caches x 2 features)", len(rows))
	}
	var maxDyn, maxLeak float64
	for _, r := range rows {
		if r.Overhead.DynamicPct < 0 || r.Overhead.DynamicPct > 2.5 {
			t.Errorf("%s %s dynamic overhead %.2f%% outside [0, 2.5]",
				r.Cache, r.Feature, r.Overhead.DynamicPct)
		}
		if r.Overhead.LeakagePct < 0 || r.Overhead.LeakagePct > 2.5 {
			t.Errorf("%s %s leakage overhead %.2f%% outside [0, 2.5]",
				r.Cache, r.Feature, r.Overhead.LeakagePct)
		}
		if r.Overhead.DynamicPct > maxDyn {
			maxDyn = r.Overhead.DynamicPct
		}
		if r.Overhead.LeakagePct > maxLeak {
			maxLeak = r.Overhead.LeakagePct
		}
	}
	if maxDyn < 0.5 {
		t.Errorf("max dynamic overhead %.2f%% suspiciously low (paper: ~1.6%%)", maxDyn)
	}
}

func TestProfilingCostValidation(t *testing.T) {
	if _, err := ProfilingCost(0, 32, 1, 16, SetReuse); err == nil {
		t.Error("zero cache accepted")
	}
	if _, err := ProfilingCost(32, 32, 0, 16, SetReuse); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := ProfilingCost(32, 32, 64, 16, SetReuse); err == nil {
		t.Error("oversampling accepted")
	}
	if SetReuse.String() != "set-reuse" || BlockReuse.String() != "block-reuse" {
		t.Error("feature names wrong")
	}
}

func TestProfilingSamplingReducesCost(t *testing.T) {
	full, _ := ProfilingCost(32, 32, 512, 512, BlockReuse)
	sampled, _ := ProfilingCost(32, 32, 16, 512, BlockReuse)
	if sampled.DynamicPct >= full.DynamicPct || sampled.LeakagePct >= full.LeakagePct {
		t.Errorf("sampling did not reduce cost: %+v vs %+v", sampled, full)
	}
}

func TestControllerValidation(t *testing.T) {
	pred := trainToyPredictor(t, counters.Basic)
	if _, err := NewController(nil, DefaultOptions()); err == nil {
		t.Error("nil predictor accepted")
	}
	bad := DefaultOptions()
	bad.Interval = 0
	if _, err := NewController(pred, bad); err == nil {
		t.Error("zero interval accepted")
	}
	bad = DefaultOptions()
	bad.Start[arch.Width] = 5
	if _, err := NewController(pred, bad); err == nil {
		t.Error("invalid start config accepted")
	}
	ctl, err := NewController(pred, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Run(nil, 0); err == nil {
		t.Error("zero intervals accepted")
	}
}

func TestControllerEndToEnd(t *testing.T) {
	// A full controller run over a program that switches phases: the
	// controller must profile at least once, produce a valid report, and
	// keep running configurations from the design space.
	pred := trainToyPredictor(t, counters.Advanced)
	opts := DefaultOptions()
	opts.Interval = 4000
	opts.SampledSets = 32
	ctl, err := NewController(pred, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator("galgel", 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 6 {
		t.Fatalf("%d records, want 6", len(rep.Records))
	}
	if rep.Profiles == 0 {
		t.Error("controller never profiled")
	}
	if !rep.Records[0].Profiled {
		t.Error("first interval must profile")
	}
	if rep.TotalInsts != 6*4000 {
		t.Errorf("total insts %d, want %d", rep.TotalInsts, 6*4000)
	}
	if rep.Efficiency <= 0 || rep.Watts <= 0 || rep.IPS <= 0 {
		t.Errorf("bad aggregate metrics: %+v", rep)
	}
	for _, r := range rep.Records {
		if !r.Config.Valid() {
			t.Errorf("interval %d ran invalid config %v", r.Index, r.Config)
		}
		if r.Cycles == 0 || r.EnergyJ <= 0 {
			t.Errorf("interval %d has zero cost", r.Index)
		}
	}
	if ctl.Current() != rep.Records[len(rep.Records)-1].Config {
		t.Error("Current() inconsistent with last record")
	}
}

func TestControllerCadencePolicy(t *testing.T) {
	// With a cadence that freezes caches except every 2nd reconfig, cache
	// parameters must not change on odd reconfiguration events.
	pred := trainToyPredictor(t, counters.Advanced)
	opts := DefaultOptions()
	opts.Interval = 3000
	opts.Cadence = EveryNth(2)
	ctl, err := NewController(pred, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator("gap", 0)
	if _, err := ctl.Run(g, 4); err != nil {
		t.Fatal(err)
	}
	// The policy itself:
	pol := EveryNth(3)
	if pol(1, arch.L2CacheKB) || !pol(3, arch.L2CacheKB) || !pol(1, arch.IQSize) {
		t.Error("EveryNth policy wrong")
	}
}

func TestControllerRunsProfilingOnProfilingConfig(t *testing.T) {
	pred := trainToyPredictor(t, counters.Advanced)
	opts := DefaultOptions()
	opts.Interval = 2500
	ctl, _ := NewController(pred, opts)
	g, _ := trace.NewGenerator("eon", 0)
	rep, err := ctl.Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	// The profiled interval is executed on some configuration and the
	// second interval must run on the predicted (current) config.
	if rep.Records[1].Profiled && rep.PhaseChanges == 0 {
		t.Error("second interval profiled without a phase change")
	}
}

var _ = cpu.Options{} // keep cpu import if assertions above change
