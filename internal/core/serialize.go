package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/counters"
	"repro/internal/softmax"
)

// Serialization of trained predictors, so a model trained once (an
// expensive, simulation-heavy step) can be shipped to and loaded by the
// runtime controller — the software analogue of burning the weights into
// the §VIII hardware tables.
//
// The on-disk format is a fixed magic + one version byte followed by a gob
// payload, so LoadPredictor can reject corrupt or foreign files with a
// clear error instead of a raw gob decode failure. Files written before
// the header existed (bare gob) are still readable via a legacy path.

// wireMagic identifies a predictor file; wireVersion is the current format.
var wireMagic = [4]byte{'A', 'D', 'P', 'T'}

const wireVersion = 1

// predictorWire is the gob wire format, kept separate from the live type
// so the in-memory representation can evolve.
type predictorWire struct {
	Set    int
	Dims   []int
	Ks     []int
	Floats [][]float64
}

// Save writes the predictor to w in a self-describing binary format:
// magic, format version, then the gob-encoded weights.
func (p *Predictor) Save(w io.Writer) error {
	wire := predictorWire{Set: int(p.Set)}
	for _, m := range p.Models {
		if m == nil {
			return fmt.Errorf("core: cannot save incomplete predictor")
		}
		wire.Dims = append(wire.Dims, m.D)
		wire.Ks = append(wire.Ks, m.K)
		wire.Floats = append(wire.Floats, m.W)
	}
	if _, err := w.Write(append(wireMagic[:], wireVersion)); err != nil {
		return fmt.Errorf("core: writing predictor header: %w", err)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadPredictor reads a predictor previously written by Save. It accepts
// the current headered format and, as a legacy path, the bare-gob files
// written before the format was versioned.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(wireMagic) + 1)
	switch {
	case err == nil && bytes.Equal(head[:len(wireMagic)], wireMagic[:]):
		if v := head[len(wireMagic)]; v != wireVersion {
			return nil, fmt.Errorf("core: predictor format version %d not supported (want %d)", v, wireVersion)
		}
		if _, err := br.Discard(len(wireMagic) + 1); err != nil {
			return nil, fmt.Errorf("core: reading predictor header: %w", err)
		}
	case err != nil && err != io.EOF && err != bufio.ErrBufferFull:
		return nil, fmt.Errorf("core: reading predictor header: %w", err)
	default:
		// No magic: fall through and try the legacy bare-gob format.
	}
	var wire predictorWire
	if err := gob.NewDecoder(br).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: not a predictor file (missing %q header) and not a legacy gob predictor: %w", wireMagic, err)
	}
	if len(wire.Dims) != len(p0Models) || len(wire.Ks) != len(p0Models) || len(wire.Floats) != len(p0Models) {
		return nil, fmt.Errorf("core: predictor has %d models, want %d", len(wire.Dims), len(p0Models))
	}
	p := &Predictor{Set: counters.Set(wire.Set)}
	for i := range p.Models {
		d, k := wire.Dims[i], wire.Ks[i]
		if d <= 0 || k <= 0 || len(wire.Floats[i]) != d*k {
			return nil, fmt.Errorf("core: model %d has inconsistent shape %dx%d with %d weights", i, d, k, len(wire.Floats[i]))
		}
		m, err := softmax.NewModel(d, k, 0)
		if err != nil {
			return nil, err
		}
		copy(m.W, wire.Floats[i])
		p.Models[i] = m
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks that the predictor's shape matches the design space and
// its counter set: a known Set, one model per parameter, every model's
// input dimension equal to the set's feature dimension and its class count
// equal to the parameter's domain size. A loaded predictor that fails this
// was trained against a different feature encoding or parameter space and
// would mis-dimension every prediction.
func (p *Predictor) Validate() error {
	if p.Set != counters.Basic && p.Set != counters.Advanced {
		return fmt.Errorf("core: predictor has unknown counter set %d", int(p.Set))
	}
	d := counters.Dim(p.Set)
	for param := arch.Param(0); param < arch.NumParams; param++ {
		m := p.Models[param]
		if m == nil {
			return fmt.Errorf("core: predictor is missing the %s model", param)
		}
		if m.D != d {
			return fmt.Errorf("core: %s model expects %d features but the %s counter set has %d", param, m.D, p.Set, d)
		}
		if k := arch.DomainSize(param); m.K != k {
			return fmt.Errorf("core: %s model has %d classes but the parameter domain has %d values", param, m.K, k)
		}
	}
	return nil
}

// p0Models is a zero predictor used only for its model count.
var p0Models [len(Predictor{}.Models)]struct{}
