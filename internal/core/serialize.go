package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/counters"
	"repro/internal/softmax"
)

// Serialization of trained predictors, so a model trained once (an
// expensive, simulation-heavy step) can be shipped to and loaded by the
// runtime controller — the software analogue of burning the weights into
// the §VIII hardware tables.

// predictorWire is the gob wire format, kept separate from the live type
// so the in-memory representation can evolve.
type predictorWire struct {
	Set    int
	Dims   []int
	Ks     []int
	Floats [][]float64
}

// Save writes the predictor to w in a self-describing binary format.
func (p *Predictor) Save(w io.Writer) error {
	wire := predictorWire{Set: int(p.Set)}
	for _, m := range p.Models {
		if m == nil {
			return fmt.Errorf("core: cannot save incomplete predictor")
		}
		wire.Dims = append(wire.Dims, m.D)
		wire.Ks = append(wire.Ks, m.K)
		wire.Floats = append(wire.Floats, m.W)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadPredictor reads a predictor previously written by Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var wire predictorWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	if len(wire.Dims) != len(p0Models) || len(wire.Ks) != len(p0Models) || len(wire.Floats) != len(p0Models) {
		return nil, fmt.Errorf("core: predictor has %d models, want %d", len(wire.Dims), len(p0Models))
	}
	p := &Predictor{Set: counters.Set(wire.Set)}
	for i := range p.Models {
		d, k := wire.Dims[i], wire.Ks[i]
		if d <= 0 || k <= 0 || len(wire.Floats[i]) != d*k {
			return nil, fmt.Errorf("core: model %d has inconsistent shape %dx%d with %d weights", i, d, k, len(wire.Floats[i]))
		}
		m, err := softmax.NewModel(d, k, 0)
		if err != nil {
			return nil, err
		}
		copy(m.W, wire.Floats[i])
		p.Models[i] = m
	}
	return p, nil
}

// p0Models is a zero predictor used only for its model count.
var p0Models [len(Predictor{}.Models)]struct{}
