package core

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/trace"
)

func TestHillClimberValidation(t *testing.T) {
	if _, err := NewHillClimber(HillClimbOptions{Interval: 0, Start: arch.Baseline()}); err == nil {
		t.Error("zero interval accepted")
	}
	bad := arch.Baseline()
	bad[arch.Width] = 3
	if _, err := NewHillClimber(HillClimbOptions{Interval: 100, Start: bad}); err == nil {
		t.Error("invalid start accepted")
	}
	hc, err := NewHillClimber(HillClimbOptions{Interval: 100, Start: arch.Baseline(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Run(nil, 0); err == nil {
		t.Error("zero intervals accepted")
	}
}

func TestHillClimberExploresAndReports(t *testing.T) {
	hc, err := NewHillClimber(HillClimbOptions{
		Interval: 3000, Start: arch.Baseline(), Seed: 7, OverheadScale: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator("gzip", 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hc.Run(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 10 {
		t.Fatalf("%d records, want 10", len(rep.Records))
	}
	if rep.Reconfigs == 0 {
		t.Error("hill climber never moved")
	}
	for _, r := range rep.Records {
		if !r.Config.Valid() {
			t.Errorf("interval %d on invalid config", r.Index)
		}
		if r.Efficiency <= 0 {
			t.Errorf("interval %d efficiency %v", r.Index, r.Efficiency)
		}
	}
	if rep.Efficiency <= 0 || !hc.Current().Valid() {
		t.Error("bad aggregate or final state")
	}
}

func TestHillClimberRevertsRegressions(t *testing.T) {
	// Over a steady workload the climber must not drift into terrible
	// configurations: its aggregate efficiency should stay within a
	// reasonable factor of the starting configuration's.
	g, _ := trace.NewGenerator("sixtrack", 0)
	insts := g.Interval(3000 * 12)
	base, err := cpu.New(arch.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	res, err := base.Run(cpu.NewSliceSource(insts), len(insts), cpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hc, _ := NewHillClimber(HillClimbOptions{
		Interval: 3000, Start: arch.Baseline(), Seed: 3, OverheadScale: 0.02,
	})
	rep, err := hc.Run(cpu.NewSliceSource(insts), 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Efficiency < res.Efficiency/4 {
		t.Errorf("climber collapsed: %.3e vs static %.3e", rep.Efficiency, res.Efficiency)
	}
}

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	pred := trainToyPredictor(t, counters.Basic)
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Set != pred.Set {
		t.Errorf("set mismatch: %v vs %v", loaded.Set, pred.Set)
	}
	d := counters.Dim(counters.Basic)
	for trial := 0; trial < 20; trial++ {
		f := make([]float64, d)
		f[trial%d] = 1
		f[d-1] = 1
		if loaded.Predict(f) != pred.Predict(f) {
			t.Fatalf("prediction mismatch after round trip (trial %d)", trial)
		}
	}
}

func TestLoadPredictorRejectsGarbage(t *testing.T) {
	if _, err := LoadPredictor(bytes.NewReader([]byte("not a predictor"))); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated stream.
	pred := trainToyPredictor(t, counters.Basic)
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictor(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestSaveIncompletePredictorFails(t *testing.T) {
	var p Predictor
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		t.Error("incomplete predictor saved")
	}
}
