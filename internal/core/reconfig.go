package core

import (
	"math"

	"repro/internal/arch"
	"repro/internal/power"
)

// Reconfiguration cost model (paper §VIII "Resource Reconfiguration").
// Structures adapt through bitline segmentation; powering partitions up or
// down takes 200ns per 1.2 million transistors, and caches must flush
// dirty state. Most of the power-up time is hidden behind continued
// execution; the visible per-structure cycle overheads the paper reports
// in Table V are reproduced here at the baseline structure sizes, and the
// model scales them with the amount of state switched so bigger
// reconfigurations cost proportionally more.

// reconfigUnit describes the visible reconfiguration cost of one
// structure: visible cycles at the paper's baseline size, scaled linearly
// with the ratio of the switched size to the baseline size.
type reconfigUnit struct {
	param      arch.Param
	name       string
	baseCycles float64 // Table V value at the baseline size
	baseSize   float64 // baseline (Table III) size in the parameter's units
	flushes    bool    // reconfiguring flushes cached state
}

// reconfigUnits lists the structures of Table V. Width and depth changes
// reconfigure the datapath; RF read/write port changes are folded into the
// RF entry.
var reconfigUnits = []reconfigUnit{
	{arch.Width, "Width", 443, 4, false},
	{arch.RFSize, "RF", 487, 160, false},
	{arch.GshareSize, "Bpred", 154, 16 * 1024, false},
	{arch.ROBSize, "ROB", 255, 144, false},
	{arch.IQSize, "IQ", 234, 48, false},
	{arch.LSQSize, "LSQ", 275, 32, false},
	{arch.ICacheKB, "ICache", 478, 64, true},
	{arch.DCacheKB, "DCache", 620, 32, true},
	{arch.L2CacheKB, "UCache", 18322, 1024, true},
}

// transistorsPerUnit estimates switched transistors per unit of each
// parameter, used for reconfiguration energy (0.09 pJ per transistor
// switched, calibrated so a typical full reconfiguration costs ~3% of an
// interval's energy, matching §VIII).
const reconfigEnergyPerTransistorPJ = 0.09

func transistorsOf(p arch.Param, value int) float64 {
	switch p {
	case arch.Width:
		return float64(value) * 240_000 // datapath slice per issue lane
	case arch.ROBSize:
		return float64(value) * 6 * 160 // entries x 6T x ~160 bits
	case arch.IQSize:
		return float64(value) * 6 * 220 // CAM-heavy entries
	case arch.LSQSize:
		return float64(value) * 6 * 200
	case arch.RFSize:
		return float64(value) * 2 * 6 * 64 // two banks of 64-bit registers
	case arch.RFReadPorts, arch.RFWritePorts:
		return float64(value) * 40_000
	case arch.GshareSize:
		return float64(value) * 6 * 2 // 2-bit counters
	case arch.BTBSize:
		return float64(value) * 6 * 64
	case arch.MaxBranches:
		return float64(value) * 4_000
	case arch.ICacheKB, arch.DCacheKB, arch.L2CacheKB:
		return float64(value) * 1024 * 8 * 6
	default: // DepthFO4: clock distribution retune
		return 500_000
	}
}

// Cost is the modelled cost of one reconfiguration.
type Cost struct {
	// StallCycles is the visible pipeline stall while structures
	// repartition (power-up of the largest change; reconfigurations of
	// different structures overlap, so the maximum dominates).
	StallCycles uint64
	// EnergyPJ is the switching energy of repartitioning.
	EnergyPJ float64
	// FlushCaches reports whether any cache changed size (contents are
	// lost).
	FlushCaches bool
	// Changed counts how many of the fourteen parameters changed.
	Changed int
}

// StructureCycles returns the visible reconfiguration overhead in cycles
// for changing the given parameter to newValue (Table V's per-structure
// rows, evaluated at any size). Parameters not in Table V (ports, BTB,
// branch limit, depth) return small constants folded into Width/RF
// entries by the paper; we model them explicitly but cheaply.
func StructureCycles(p arch.Param, newValue int) uint64 {
	for _, u := range reconfigUnits {
		if u.param == p {
			c := u.baseCycles * float64(newValue) / u.baseSize
			if c < 1 {
				c = 1
			}
			return uint64(math.Round(c))
		}
	}
	// Ports, BTB, branch limit, pipeline depth: short control-register
	// style reconfigurations.
	switch p {
	case arch.BTBSize:
		return uint64(math.Round(154 * float64(newValue) / (16 * 1024) * 4)) // shares the Bpred path
	case arch.DepthFO4:
		return 200 // clock retune + pipeline drain
	default:
		return 60
	}
}

// Overhead computes the cost of switching from one configuration to
// another under the timing model pm (which should be the model of the
// destination configuration). Matching configurations cost nothing.
func Overhead(from, to arch.Config, pm *power.Model) Cost {
	var c Cost
	for p := arch.Param(0); p < arch.NumParams; p++ {
		if from[p] == to[p] {
			continue
		}
		c.Changed++
		cyc := StructureCycles(p, maxInt(from[p], to[p]))
		if cyc > c.StallCycles {
			c.StallCycles = cyc
		}
		delta := math.Abs(transistorsOf(p, to[p]) - transistorsOf(p, from[p]))
		if delta == 0 {
			delta = transistorsOf(p, to[p]) * 0.1
		}
		c.EnergyPJ += delta * reconfigEnergyPerTransistorPJ
		if p == arch.ICacheKB || p == arch.DCacheKB || p == arch.L2CacheKB {
			c.FlushCaches = true
		}
	}
	// Much of the power-up time is hidden behind continued execution on
	// the old partitioning (paper: "the majority of this time is hidden");
	// the visible stall is a fraction of the largest structure's time.
	c.StallCycles = uint64(float64(c.StallCycles) * 0.25)
	_ = pm
	return c
}

// TableV returns the paper's Table V: the visible reconfiguration overhead
// per structure at the baseline sizes, in cycles, in the paper's row
// order. The IQ/LSQ row of the paper is split into two entries here.
func TableV() []struct {
	Structure string
	Cycles    uint64
} {
	base := arch.Baseline()
	rows := make([]struct {
		Structure string
		Cycles    uint64
	}, 0, len(reconfigUnits))
	for _, u := range reconfigUnits {
		rows = append(rows, struct {
			Structure string
			Cycles    uint64
		}{u.name, StructureCycles(u.param, base[u.param])})
	}
	return rows
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
