package cache

import (
	"math/rand/v2"
	"testing"
)

// benchAddrs builds a deterministic access stream with realistic locality:
// mostly a hot region with a cold tail, the shape Profiler and Cache see
// from the workload generator.
func benchAddrs(n int) []uint32 {
	rng := rand.New(rand.NewPCG(11, 13))
	addrs := make([]uint32, n)
	for i := range addrs {
		if rng.Float64() < 0.9 {
			addrs[i] = uint32(rng.Uint64N(64<<10)) &^ 3
		} else {
			addrs[i] = uint32(rng.Uint64N(8<<20)) &^ 3
		}
	}
	return addrs
}

// BenchmarkCacheAccess times the raw set-associative lookup/fill path.
func BenchmarkCacheAccess(b *testing.B) {
	addrs := benchAddrs(1 << 16)
	c := MustNewCache(64, 2, L1LineBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<16-1)])
	}
}

// BenchmarkHierarchyAccess times a full L1D->L2 data lookup.
func BenchmarkHierarchyAccess(b *testing.B) {
	addrs := benchAddrs(1 << 16)
	h, err := NewHierarchy(32, 32, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessData(addrs[i&(1<<16-1)])
	}
}

// BenchmarkProfilerObserve times the reuse-distance profiling path (the
// per-access cost of counter collection).
func BenchmarkProfilerObserve(b *testing.B) {
	addrs := benchAddrs(1 << 16)
	p, err := NewProfiler(32, L1LineBytes, 8, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(addrs[i&(1<<16-1)])
	}
}
