package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewCacheValidation(t *testing.T) {
	bad := [][3]int{
		{0, 2, 32},  // zero size
		{32, 0, 32}, // zero ways
		{32, 2, 33}, // non-power-of-two line
		{32, 2, 0},  // zero line
		{1, 64, 32}, // more ways than lines
	}
	for _, b := range bad {
		if _, err := NewCache(b[0], b[1], b[2]); err == nil {
			t.Errorf("NewCache(%v) accepted", b)
		}
	}
	if _, err := NewCache(32, 2, 32); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestMustNewCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewCache did not panic")
		}
	}()
	MustNewCache(0, 2, 32)
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNewCache(8, 2, 32)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	if !c.Access(0x1010) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1020) {
		t.Error("next-line access hit cold")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("stats = %d/%d, want 4/2", c.Accesses, c.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache: three conflicting lines evict in LRU order.
	c := MustNewCache(8, 2, 32)
	sets := uint32(c.Sets())
	stride := sets * 32 // same set, different tags
	a, b, d := uint32(0x1000), 0x1000+stride, 0x1000+2*stride
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b LRU
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Error("a should have survived")
	}
	if c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestCapacityBehaviour(t *testing.T) {
	// A working set that fits in 64KB but not in 8KB must show a lower
	// miss rate on the larger cache.
	run := func(sizeKB int) float64 {
		c := MustNewCache(sizeKB, 2, 32)
		rng := rand.New(rand.NewPCG(1, 1))
		const wset = 48 * 1024
		for i := 0; i < 200000; i++ {
			c.Access(uint32(rng.IntN(wset)))
		}
		return c.MissRate()
	}
	small, big := run(8), run(128)
	if big >= small {
		t.Errorf("128KB miss rate %.4f not below 8KB %.4f", big, small)
	}
	if big > 0.05 {
		t.Errorf("128KB cache should nearly contain 48KB set; miss rate %.4f", big)
	}
}

func TestFlushAndResetStats(t *testing.T) {
	c := MustNewCache(8, 2, 32)
	c.Access(0x2000)
	c.Flush()
	if c.Access(0x2000) {
		t.Error("hit after flush")
	}
	c.ResetStats()
	if c.Accesses != 0 || c.Misses != 0 || c.MissRate() != 0 {
		t.Error("reset incomplete")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(8, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.AccessData(0x5000); lvl != Memory {
		t.Errorf("cold access level = %v, want Memory", lvl)
	}
	if lvl := h.AccessData(0x5000); lvl != L1Hit {
		t.Errorf("warm access level = %v, want L1Hit", lvl)
	}
	// Evict from L1 by walking far past its capacity; the block should
	// still be in the 256KB L2.
	for i := uint32(0); i < 64*1024; i += 32 {
		h.AccessData(0x100000 + i)
	}
	if lvl := h.AccessData(0x5000); lvl != L2Hit {
		t.Errorf("L1-evicted access level = %v, want L2Hit", lvl)
	}
	if lvl := h.AccessFetch(0x400000); lvl != Memory {
		t.Errorf("cold fetch = %v, want Memory", lvl)
	}
	if lvl := h.AccessFetch(0x400000); lvl != L1Hit {
		t.Errorf("warm fetch = %v, want L1Hit", lvl)
	}
	if L1Hit.String() != "L1" || L2Hit.String() != "L2" || Memory.String() != "Mem" {
		t.Error("level names wrong")
	}
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(0, 8, 256); err == nil {
		t.Error("bad L1I accepted")
	}
	if _, err := NewHierarchy(8, 0, 256); err == nil {
		t.Error("bad L1D accepted")
	}
	if _, err := NewHierarchy(8, 8, 0); err == nil {
		t.Error("bad L2 accepted")
	}
}

func TestProfilerValidation(t *testing.T) {
	if _, err := NewProfiler(32, 32, 8, 10000); err == nil {
		t.Error("oversampled profiler accepted")
	}
	if _, err := NewProfiler(32, 32, 8, 0); err == nil {
		t.Error("zero-sample profiler accepted")
	}
	if _, err := NewProfiler(32, 33, 8, 4); err == nil {
		t.Error("bad line size accepted")
	}
	if _, err := NewProfiler(0, 32, 8, 1); err == nil {
		t.Error("zero size accepted")
	}
}

func TestProfilerStackDistanceSmallLoop(t *testing.T) {
	// A tight loop over 4 blocks has stack distance <= 4 for all
	// reaccesses: everything lands in low bins.
	p, err := NewProfiler(32, 32, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		p.Observe(uint32((i % 4) * 32))
	}
	h := p.StackDist
	low := h.Counts[0] + h.Counts[1] + h.Counts[2] + h.Counts[3]
	if frac := float64(low) / float64(h.Total); frac < 0.95 {
		t.Errorf("small-loop stack distances not concentrated low: %.3f (%v)", frac, h.Counts)
	}
}

func TestProfilerStreamHasColdMisses(t *testing.T) {
	// A pure stream never reuses blocks: every block access is cold and
	// lands in the overflow bin.
	p, _ := NewProfiler(32, 32, 8, 512)
	for i := 0; i < 20000; i++ {
		p.Observe(uint32(i * 32))
	}
	if p.StackDist.Counts[HistBins-1] != p.StackDist.Total {
		t.Errorf("stream should be all cold: %v", p.StackDist.Counts)
	}
	if p.Observations() != 20000 {
		t.Errorf("observations = %d", p.Observations())
	}
}

func TestProfilerBlockVsSetReuse(t *testing.T) {
	// Two blocks that conflict in the same set: set reuse distance is
	// short (every access hits the same set), block reuse longer.
	p, _ := NewProfiler(8, 32, 8, 128) // 128 sets, sample all
	sets := uint32(128)
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			p.Observe(0)
		} else {
			p.Observe(sets * 32) // same set, different block
		}
	}
	if p.SetReuse.Mean() >= p.BlockReuse.Mean() {
		t.Errorf("set reuse mean %.2f not below block reuse mean %.2f",
			p.SetReuse.Mean(), p.BlockReuse.Mean())
	}
}

func TestProfilerReducedSetsExposeConflicts(t *testing.T) {
	// Blocks that map to distinct sets in a large cache but collide in the
	// smallest cache: reduced-set reuse shows shorter distances than the
	// full-size set reuse would at the large geometry.
	p, _ := NewProfiler(128, 32, 8, 2048) // full: 2048 sets, reduced: 128
	full := uint32(2048)
	red := uint32(128)
	// Alternate between two blocks 128 sets apart: distinct in full
	// mapping, same reduced set.
	for i := 0; i < 5000; i++ {
		if i%2 == 0 {
			p.Observe(0)
		} else {
			p.Observe(red * 32)
		}
	}
	_ = full
	if p.ReducedSets.Total == 0 {
		t.Fatal("reduced-set histogram empty")
	}
	if p.ReducedSets.Mean() > 3 {
		t.Errorf("reduced-set distances should be short (conflict): mean bin %.2f", p.ReducedSets.Mean())
	}
}

func TestProfilerSamplingReducesObservations(t *testing.T) {
	full, _ := NewProfiler(32, 32, 8, 512)
	sampled, _ := NewProfiler(32, 32, 8, 16)
	rng := rand.New(rand.NewPCG(5, 5))
	// Working set of 4096 blocks (128KB): inside the full profiler's stack
	// cap, so the two estimators see the same underlying distribution.
	for i := 0; i < 50000; i++ {
		a := uint32(rng.IntN(1 << 17))
		full.Observe(a)
		sampled.Observe(a)
	}
	if sampled.StackDist.Total >= full.StackDist.Total {
		t.Errorf("sampling did not reduce stack histogram volume: %d vs %d",
			sampled.StackDist.Total, full.StackDist.Total)
	}
	// But the *shape* must be similar: compare normalized overflow mass.
	fo := full.StackDist.Normalized()[HistBins-1]
	so := sampled.StackDist.Normalized()[HistBins-1]
	if diff := fo - so; diff > 0.15 || diff < -0.15 {
		t.Errorf("sampled shape diverged: overflow %.3f vs %.3f", so, fo)
	}
}

// Property: a cache never reports more misses than accesses, and hits on
// immediately repeated addresses.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := MustNewCache(16, 2, 32)
		for _, a := range addrs {
			c.Access(a)
			if !c.Access(a) { // immediate re-access must hit
				return false
			}
		}
		return c.Misses <= c.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: hierarchy levels are consistent — an L1 hit implies the block
// was just accessed, and repeated access is never slower than the first.
func TestQuickHierarchyMonotone(t *testing.T) {
	f := func(addrs []uint32) bool {
		h, err := NewHierarchy(8, 8, 256)
		if err != nil {
			return false
		}
		for _, a := range addrs {
			first := h.AccessData(a)
			second := h.AccessData(a)
			if second > first { // levels ordered L1 < L2 < Memory
				return false
			}
			if second != L1Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFillFromPreservesHotLines(t *testing.T) {
	old := MustNewCache(8, 2, 32)
	for i := uint32(0); i < 8*1024; i += 32 {
		old.Access(0x1000 + i) // fill the whole cache
	}
	grown := MustNewCache(32, 2, 32)
	grown.FillFrom(old)
	if grown.Accesses != 0 || grown.Misses != 0 {
		t.Error("FillFrom leaked statistics")
	}
	hits := 0
	for i := uint32(0); i < 8*1024; i += 32 {
		if grown.Access(0x1000 + i) {
			hits++
		}
	}
	if hits < 200 { // 256 lines were resident; most must survive growth
		t.Errorf("only %d/256 lines survived growth", hits)
	}
	grown.ResetStats()

	// Shrinking keeps the subset that fits.
	shrunk := MustNewCache(8, 2, 32)
	shrunk.FillFrom(grown)
	hits = 0
	for i := uint32(0); i < 8*1024; i += 32 {
		if shrunk.Access(0x1000 + i) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no lines survived shrink")
	}
}
