// Canonical byte encoding of warm cache state for the warmup-checkpoint
// machinery (cpu.Sim.Snapshot/Restore). The encoding covers exactly what
// survives warmup into measurement — tags and LRU ages — never the
// statistics counters, which the simulator resets after warmup anyway.
// Layout is fixed little-endian so the same state always produces the
// same bytes (content-addressed storage depends on this).
package cache

import (
	"encoding/binary"
	"fmt"
)

// SnapshotSize returns the exact encoded size of this cache's snapshot.
func (c *Cache) SnapshotSize() int {
	lines := int(c.sets * c.ways)
	return 12 + 8*lines + lines
}

// AppendSnapshot appends the canonical encoding of the cache's warm state
// (geometry header, tags, LRU ages) to buf and returns the extended slice.
// Statistics are deliberately excluded.
func (c *Cache) AppendSnapshot(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, c.sets)
	buf = binary.LittleEndian.AppendUint32(buf, c.ways)
	buf = binary.LittleEndian.AppendUint32(buf, c.lineShift)
	for _, tag := range c.tags {
		buf = binary.LittleEndian.AppendUint64(buf, tag)
	}
	buf = append(buf, c.lru...)
	return buf
}

// RestoreSnapshot overwrites the cache's tags and LRU ages from the
// encoding at the front of buf and returns the remainder. The snapshot's
// geometry must match the cache's exactly — a snapshot is only valid for
// the configuration it was taken under. Statistics are left untouched.
func (c *Cache) RestoreSnapshot(buf []byte) ([]byte, error) {
	if len(buf) < 12 {
		return nil, fmt.Errorf("cache: snapshot truncated (header)")
	}
	sets := binary.LittleEndian.Uint32(buf[0:])
	ways := binary.LittleEndian.Uint32(buf[4:])
	shift := binary.LittleEndian.Uint32(buf[8:])
	if sets != c.sets || ways != c.ways || shift != c.lineShift {
		return nil, fmt.Errorf("cache: snapshot geometry %d/%d/%d does not match cache %d/%d/%d",
			sets, ways, shift, c.sets, c.ways, c.lineShift)
	}
	buf = buf[12:]
	lines := int(c.sets * c.ways)
	if len(buf) < 8*lines+lines {
		return nil, fmt.Errorf("cache: snapshot truncated (%d bytes for %d lines)", len(buf), lines)
	}
	for i := 0; i < lines; i++ {
		c.tags[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	buf = buf[8*lines:]
	copy(c.lru, buf[:lines])
	return buf[lines:], nil
}
