package cache

// ReuseTable is an open-addressed hash table from uint64 keys to uint64
// clock values, replacing the map[uint64]uint64 last-touch tables on the
// profiling hot path. It only supports the one operation the profilers
// need — atomically fetch the previous clock for a key and store the new
// one — which keeps the probe sequence branch-light. Keys are stored
// biased by +1 so the zero word means "empty slot".
type ReuseTable struct {
	keys  []uint64 // key+1; 0 = empty
	vals  []uint64
	n     int
	shift uint // Fibonacci-hash shift: index = (key*phi) >> shift
}

// NewReuseTable returns a table pre-sized for about capacity entries.
func NewReuseTable(capacity int) *ReuseTable {
	size := 16
	for size < capacity*2 {
		size <<= 1
	}
	t := &ReuseTable{}
	t.init(size)
	return t
}

func (t *ReuseTable) init(size int) {
	t.keys = make([]uint64, size)
	t.vals = make([]uint64, size)
	t.n = 0
	t.shift = 64
	for s := size; s > 1; s >>= 1 {
		t.shift--
	}
}

// Swap stores clock for key and returns the previously stored clock, with
// ok reporting whether the key was present.
func (t *ReuseTable) Swap(key, clock uint64) (prev uint64, ok bool) {
	k := key + 1
	mask := uint64(len(t.keys) - 1)
	i := (k * 0x9E3779B97F4A7C15) >> t.shift
	for {
		stored := t.keys[i]
		if stored == k {
			prev = t.vals[i]
			t.vals[i] = clock
			return prev, true
		}
		if stored == 0 {
			t.keys[i] = k
			t.vals[i] = clock
			t.n++
			if t.n*4 > len(t.keys)*3 {
				t.grow()
			}
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table and reinserts every live entry.
func (t *ReuseTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldKeys) * 2)
	mask := uint64(len(t.keys) - 1)
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := (k * 0x9E3779B97F4A7C15) >> t.shift
		for t.keys[i] != 0 {
			i = (i + 1) & mask
		}
		t.keys[i] = k
		t.vals[i] = oldVals[j]
		t.n++
	}
}
