// Package cache implements the simulated memory hierarchy — set-associative
// L1 instruction, L1 data and unified L2 caches with true-LRU replacement —
// plus the cache profiling machinery of the paper: stack distance, block
// reuse distance, set reuse distance and reduced-set reuse distance
// histograms, optionally gathered over a dynamically sampled subset of sets
// (Table IV, Figure 9).
package cache

import (
	"fmt"

	"repro/internal/stats"
)

// Line sizes used throughout, matching SimpleScalar-era defaults.
const (
	L1LineBytes = 32
	L2LineBytes = 64
)

// Level identifies where an access was satisfied.
type Level int

// Access outcomes.
const (
	L1Hit Level = iota
	L2Hit
	Memory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	default:
		return "Mem"
	}
}

// Cache is one set-associative cache with true-LRU replacement.
type Cache struct {
	sets      uint32
	ways      uint32
	lineShift uint32
	tags      []uint64 // sets*ways; tag==invalidTag means empty
	lru       []uint8  // age counters per line, 0 = most recent

	Accesses uint64
	Misses   uint64
}

const invalidTag = ^uint64(0)

// NewCache constructs a cache of sizeKB kilobytes with the given
// associativity and line size (bytes, power of two).
func NewCache(sizeKB, ways, lineBytes int) (*Cache, error) {
	if sizeKB <= 0 || ways <= 0 || lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: bad geometry sizeKB=%d ways=%d line=%d", sizeKB, ways, lineBytes)
	}
	lines := sizeKB * 1024 / lineBytes
	if lines < ways {
		return nil, fmt.Errorf("cache: %dKB/%dB has %d lines, fewer than %d ways", sizeKB, lineBytes, lines, ways)
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	c := &Cache{
		sets: uint32(sets),
		ways: uint32(ways),
	}
	for ls := lineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	c.tags = make([]uint64, sets*ways)
	c.lru = make([]uint8, sets*ways)
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c, nil
}

// MustNewCache is NewCache but panics on error.
func MustNewCache(sizeKB, ways, lineBytes int) *Cache {
	c, err := NewCache(sizeKB, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.sets) }

// SetOf returns the set index addr maps to.
func (c *Cache) SetOf(addr uint32) uint32 {
	return (addr >> c.lineShift) % c.sets
}

// BlockOf returns the block (line) address of addr.
func (c *Cache) BlockOf(addr uint32) uint64 {
	return uint64(addr) >> c.lineShift
}

// Access looks up addr, fills on miss, and reports whether the line was
// present before the access (a hit).
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	set := c.SetOf(addr)
	tag := c.BlockOf(addr)
	base := set * c.ways
	hitWay := int32(-1)
	for w := uint32(0); w < c.ways; w++ {
		if c.tags[base+w] == tag {
			hitWay = int32(w)
			break
		}
	}
	hit := hitWay >= 0
	if !hit {
		c.Misses++
		// Victim: an empty way if any, else the way with the highest age.
		victim, oldest := uint32(0), uint8(0)
		for w := uint32(0); w < c.ways; w++ {
			if c.tags[base+w] == invalidTag {
				victim = w
				break
			}
			if c.lru[base+w] >= oldest {
				oldest, victim = c.lru[base+w], w
			}
		}
		c.tags[base+victim] = tag
		hitWay = int32(victim)
	}
	for w := uint32(0); w < c.ways; w++ {
		if c.lru[base+w] < 255 {
			c.lru[base+w]++
		}
	}
	c.lru[base+uint32(hitWay)] = 0
	return hit
}

// MissRate returns misses/accesses (0 if no accesses).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears access statistics but keeps cache contents.
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }

// Flush invalidates all lines (used when the cache is reconfigured).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
		c.lru[i] = 0
	}
}

// Hierarchy is the three-level memory system of the simulated processor.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// NewHierarchy builds the hierarchy for the given Table I cache sizes (KB).
// Associativities are fixed at 2/2/8 as in the paper's era of machines.
func NewHierarchy(icacheKB, dcacheKB, l2KB int) (*Hierarchy, error) {
	l1i, err := NewCache(icacheKB, 2, L1LineBytes)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l1d, err := NewCache(dcacheKB, 2, L1LineBytes)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l2, err := NewCache(l2KB, 8, L2LineBytes)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2}, nil
}

// AccessData looks up a data address through the hierarchy and returns the
// level that satisfied it.
func (h *Hierarchy) AccessData(addr uint32) Level {
	if h.L1D.Access(addr) {
		return L1Hit
	}
	if h.L2.Access(addr) {
		return L2Hit
	}
	return Memory
}

// AccessFetch looks up an instruction address through the hierarchy and
// returns the level that satisfied it.
func (h *Hierarchy) AccessFetch(pc uint32) Level {
	if h.L1I.Access(pc) {
		return L1Hit
	}
	if h.L2.Access(pc) {
		return L2Hit
	}
	return Memory
}

// Flush invalidates all three caches.
func (h *Hierarchy) Flush() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
}

// Profiler gathers the paper's cache locality histograms for one access
// stream (one cache's address stream on the profiling configuration):
//
//   - stack distance: LRU-stack depth of each reaccessed block, the
//     classical capacity signature [19, 20];
//   - block reuse distance: accesses since the same block was last touched;
//   - set reuse distance: accesses since the same set was last touched;
//   - reduced set reuse distance: set reuse computed after mapping
//     addresses onto the *smallest* configurable cache's set count,
//     "emulating" the smallest size to expose conflicts (paper §III-B2).
//
// All histograms use log2-spaced bins. Set-indexed histograms honour
// dynamic set sampling [27]: only sampled sets contribute, cutting profiling
// energy (Table IV, Figure 9).
type Profiler struct {
	lineShift   uint32
	sets        uint32
	reducedSets uint32

	StackDist   *stats.Histogram
	BlockReuse  *stats.Histogram
	SetReuse    *stats.Histogram
	ReducedSets *stats.Histogram

	sampleEvery uint32 // sample sets where set % sampleEvery == 0

	clock uint64
	// Last-touch tables: an open-addressed table for the sparse block
	// space, direct-indexed arrays (clock value, 0 = never seen; the
	// clock is pre-incremented so 0 is unambiguous) for the dense set
	// spaces. All were Go maps before the hot-path overhaul.
	lastBlock    *ReuseTable
	lastSet      []uint64 // indexed by set
	lastReduced  []uint64 // indexed by reduced set
	stack        []uint64 // LRU stack of block addresses, most recent first
	maxStackSize int
}

// HistBins is the number of log2 bins in each profiler histogram.
const HistBins = 22

// NewProfiler builds a profiler for a cache with the given geometry.
// reducedSets is the set count of the smallest configurable cache of that
// kind; sampledSets (power of two, <= sets) selects how many sets are
// monitored — pass sets to monitor all.
func NewProfiler(sizeKB, lineBytes, reducedSizeKB, sampledSets int) (*Profiler, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: bad line size %d", lineBytes)
	}
	sets := sizeKB * 1024 / lineBytes / 2 // 2-way geometry for set mapping
	redSets := reducedSizeKB * 1024 / lineBytes / 2
	if sets <= 0 || redSets <= 0 {
		return nil, fmt.Errorf("cache: bad profiler sizes %dKB/%dKB", sizeKB, reducedSizeKB)
	}
	if sampledSets <= 0 || sampledSets > sets {
		return nil, fmt.Errorf("cache: sampledSets %d out of range (1..%d)", sampledSets, sets)
	}
	p := &Profiler{
		sets:         uint32(sets),
		reducedSets:  uint32(redSets),
		StackDist:    stats.NewHistogram(HistBins),
		BlockReuse:   stats.NewHistogram(HistBins),
		SetReuse:     stats.NewHistogram(HistBins),
		ReducedSets:  stats.NewHistogram(HistBins),
		sampleEvery:  uint32(sets / sampledSets),
		lastBlock:    NewReuseTable(1024),
		lastSet:      make([]uint64, sets),
		lastReduced:  make([]uint64, redSets),
		maxStackSize: 8192,
	}
	for ls := lineBytes; ls > 1; ls >>= 1 {
		p.lineShift++
	}
	return p, nil
}

// Observe records one access to addr.
func (p *Profiler) Observe(addr uint32) {
	p.clock++
	block := uint64(addr) >> p.lineShift
	set := uint32(block) % p.sets
	red := uint32(block) % p.reducedSets

	sampled := set%p.sampleEvery == 0

	// Stack distance over all blocks (the stack itself is what a real
	// implementation would approximate; we sample by set like the rest).
	if sampled {
		depth := -1
		for i, b := range p.stack {
			if b == block {
				depth = i
				break
			}
		}
		if depth >= 0 {
			// The stack holds only sampled blocks, compressing depths by
			// the sampling factor; rescale to estimate the true distance.
			est := (uint64(depth) + 1) * uint64(p.sampleEvery)
			p.StackDist.Add(stats.Log2Bin(est, HistBins-1))
			copy(p.stack[1:depth+1], p.stack[:depth])
			p.stack[0] = block
		} else {
			p.StackDist.Add(HistBins - 1) // cold/overflow bin
			if len(p.stack) < p.maxStackSize {
				p.stack = append(p.stack, 0)
			}
			copy(p.stack[1:], p.stack)
			p.stack[0] = block
		}

		if last, ok := p.lastBlock.Swap(block, p.clock); ok {
			p.BlockReuse.Add(stats.Log2Bin(p.clock-last, HistBins-1))
		} else {
			p.BlockReuse.Add(HistBins - 1)
		}

		if last := p.lastSet[set]; last != 0 {
			p.SetReuse.Add(stats.Log2Bin(p.clock-last, HistBins-1))
		} else {
			p.SetReuse.Add(HistBins - 1)
		}
		p.lastSet[set] = p.clock
	}

	// Reduced-set histogram samples on the reduced mapping so every
	// reduced set observed maps deterministically.
	if red%p.sampleEvery == 0 || p.sampleEvery >= p.reducedSets {
		if last := p.lastReduced[red]; last != 0 {
			p.ReducedSets.Add(stats.Log2Bin(p.clock-last, HistBins-1))
		} else {
			p.ReducedSets.Add(HistBins - 1)
		}
		p.lastReduced[red] = p.clock
	}
}

// Observations returns how many accesses have been recorded.
func (p *Profiler) Observations() uint64 { return p.clock }

// FillFrom re-inserts the resident blocks of old into c, emulating a
// bitline-segmentation resize: lines whose (new) set still exists survive
// the reconfiguration, the rest fall out via replacement. Tags store full
// block addresses, so migration is exact. Statistics are not transferred.
func (c *Cache) FillFrom(old *Cache) {
	for _, tag := range old.tags {
		if tag == invalidTag {
			continue
		}
		c.Access(uint32(tag << old.lineShift))
	}
	c.ResetStats()
}
