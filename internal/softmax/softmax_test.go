package softmax

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// separable builds a linearly separable 3-class problem in 4 dimensions
// (3 indicator features + bias).
func separable(n int, rng *rand.Rand) []Example {
	exs := make([]Example, n)
	for i := range exs {
		y := rng.IntN(3)
		x := []float64{0, 0, 0, 1}
		x[y] = 1 + 0.1*rng.Float64()
		exs[i] = Example{X: x, Y: y}
	}
	return exs
}

func TestTrainSeparable(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	exs := separable(300, rng)
	m, err := Train(4, 3, exs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ex := range exs {
		if m.Predict(ex.X) == ex.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(exs)); acc < 0.98 {
		t.Errorf("training accuracy %.3f on separable data, want >= 0.98", acc)
	}
}

func TestGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	m, err := Train(4, 3, separable(300, rng), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	test := separable(200, rand.New(rand.NewPCG(99, 99)))
	correct := 0
	for _, ex := range test {
		if m.Predict(ex.X) == ex.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.98 {
		t.Errorf("held-out accuracy %.3f, want >= 0.98", acc)
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng1 := rand.New(rand.NewPCG(3, 3))
	rng2 := rand.New(rand.NewPCG(3, 3))
	m1, _ := Train(4, 3, separable(100, rng1), DefaultOptions())
	m2, _ := Train(4, 3, separable(100, rng2), DefaultOptions())
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatalf("weight %d differs: %v vs %v", i, m1.W[i], m2.W[i])
		}
	}
}

func TestRegularizationShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	exs := separable(200, rng)
	weak, _ := Train(4, 3, exs, Options{Lambda: 0.01, InitWeight: 1, MaxIter: 200, Tol: 1e-6})
	strong, _ := Train(4, 3, exs, Options{Lambda: 10, InitWeight: 1, MaxIter: 200, Tol: 1e-6})
	nw, ns := 0.0, 0.0
	for i := range weak.W {
		nw += weak.W[i] * weak.W[i]
		ns += strong.W[i] * strong.W[i]
	}
	if ns >= nw {
		t.Errorf("strong-lambda norm %.3f not below weak-lambda norm %.3f", ns, nw)
	}
}

func TestMultiLabelExamples(t *testing.T) {
	// A phase with two good classes should get high probability on both:
	// same X appears with Y=0 and Y=1, never 2.
	var exs []Example
	for i := 0; i < 100; i++ {
		x := []float64{1, 0.5, 1}
		exs = append(exs, Example{X: x, Y: 0}, Example{X: x, Y: 1})
	}
	m, err := Train(3, 3, exs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := m.Probabilities([]float64{1, 0.5, 1})
	if p[2] > p[0] || p[2] > p[1] {
		t.Errorf("never-good class has top probability: %v", p)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Train(3, 2, nil, DefaultOptions()); err == nil {
		t.Error("no examples accepted")
	}
	if _, err := Train(3, 2, []Example{{X: []float64{1}, Y: 0}}, DefaultOptions()); err == nil {
		t.Error("wrong feature length accepted")
	}
	if _, err := Train(3, 2, []Example{{X: []float64{1, 2, 3}, Y: 5}}, DefaultOptions()); err == nil {
		t.Error("label out of range accepted")
	}
	if _, err := NewModel(0, 3, 1); err == nil {
		t.Error("zero-dim model accepted")
	}
}

func TestPredictPanicsOnBadLength(t *testing.T) {
	m, _ := NewModel(3, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong feature length")
		}
	}()
	m.Predict([]float64{1})
}

func TestProbabilitiesSumToOne(t *testing.T) {
	m, _ := NewModel(4, 5, 0.3)
	p := m.Probabilities([]float64{0.2, -1, 3, 0.5})
	s := 0.0
	for _, v := range p {
		if v < 0 {
			t.Errorf("negative probability %v", v)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", s)
	}
}

func TestProbabilitiesNumericallyStable(t *testing.T) {
	m, _ := NewModel(2, 3, 0)
	// Huge scores must not overflow.
	m.W[0], m.W[1], m.W[2] = 1000, -1000, 0
	p := m.Probabilities([]float64{1, 0})
	if math.IsNaN(p[0]) || math.IsInf(p[0], 0) {
		t.Errorf("unstable probabilities: %v", p)
	}
	if p[0] < 0.999 {
		t.Errorf("dominant class probability %v, want ~1", p[0])
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	exs := separable(300, rng)
	m, _ := Train(4, 3, exs, DefaultOptions())
	q := m.Quantize()
	if q.StorageBytes() != 4*3 {
		t.Errorf("storage %d bytes, want 12", q.StorageBytes())
	}
	agree := 0
	for _, ex := range exs {
		if q.Predict(ex.X) == m.Predict(ex.X) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(exs)); frac < 0.95 {
		t.Errorf("8-bit model agrees with float on only %.3f of examples", frac)
	}
}

func TestQuantizedScoresScaledToFloatUnits(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	exs := separable(200, rng)
	m, _ := Train(4, 3, exs, DefaultOptions())
	q := m.Quantize()
	// Scores are Scale * integer accumulator: close to the float scores,
	// within the per-weight quantisation error bound.
	for _, ex := range exs[:20] {
		fs := m.Scores(ex.X, nil)
		qs := q.Scores(ex.X, nil)
		var xsum float64
		for _, xi := range ex.X {
			xsum += math.Abs(xi)
		}
		bound := q.Scale/2*xsum + 1e-9
		for k := range fs {
			if d := math.Abs(fs[k] - qs[k]); d > bound {
				t.Fatalf("class %d: quantized score %v vs float %v (err %v > bound %v)", k, qs[k], fs[k], d, bound)
			}
		}
	}
}

func TestQuantizedProbabilities(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	exs := separable(200, rng)
	m, _ := Train(4, 3, exs, DefaultOptions())
	q := m.Quantize()
	for _, ex := range exs[:20] {
		p := q.Probabilities(ex.X)
		sum := 0.0
		argmax := 0
		for k, v := range p {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad probability %v", v)
			}
			sum += v
			if v > p[argmax] {
				argmax = k
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("probabilities sum to %v", sum)
		}
		if argmax != q.Predict(ex.X) {
			t.Errorf("probability argmax %d disagrees with Predict %d", argmax, q.Predict(ex.X))
		}
	}
}

func TestQuantizeZeroModel(t *testing.T) {
	m, _ := NewModel(2, 2, 0)
	q := m.Quantize()
	if q.Scale != 1 {
		t.Errorf("zero-model scale %v, want 1", q.Scale)
	}
	if got := q.Predict([]float64{1, 1}); got != 0 {
		t.Errorf("zero model predicts %d, want 0 (ties break low)", got)
	}
}

// Property: Predict always returns a class in range, for arbitrary finite
// inputs.
func TestQuickPredictInRange(t *testing.T) {
	m, _ := NewModel(3, 4, 0.5)
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		y := m.Predict([]float64{a, b, c})
		return y >= 0 && y < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: training on K=1 trivially predicts class 0.
func TestSingleClass(t *testing.T) {
	exs := []Example{{X: []float64{1, 2}, Y: 0}, {X: []float64{0, 1}, Y: 0}}
	m, err := Train(2, 1, exs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{3, 4}) != 0 {
		t.Error("single-class model failed")
	}
}

// Property: Predict agrees with the argmax of Probabilities.
func TestQuickPredictMatchesProbabilities(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	m, _ := NewModel(5, 4, 0)
	for i := range m.W {
		m.W[i] = rng.Float64()*4 - 2
	}
	f := func(a, b, c, d, e float64) bool {
		for _, v := range []float64{a, b, c, d, e} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		x := []float64{a, b, c, d, e}
		p := m.Probabilities(x)
		best, bi := -1.0, 0
		for k, v := range p {
			if v > best {
				best, bi = v, k
			}
		}
		return m.Predict(x) == bi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	exs := separable(200, rng)
	init, _ := NewModel(4, 3, 1)
	trained, _ := Train(4, 3, exs, DefaultOptions())
	ll := func(m *Model) float64 {
		s := 0.0
		for _, ex := range exs {
			s += math.Log(m.Probabilities(ex.X)[ex.Y] + 1e-300)
		}
		return s
	}
	if ll(trained) <= ll(init) {
		t.Errorf("training did not improve log-likelihood: %.2f vs %.2f", ll(trained), ll(init))
	}
}

// randomBatch draws n dense feature vectors (with some exact zeros, which
// the kernels skip) of dimension d.
func randomBatch(d, n int, rng *rand.Rand) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		v := make([]float64, d)
		for j := range v {
			if rng.IntN(4) == 0 {
				continue // exercise the xi==0 skip path
			}
			v[j] = rng.NormFloat64()
		}
		v[d-1] = 1
		xs[i] = v
	}
	return xs
}

// TestScoresBatchBitIdentical pins the batched kernel's contract: for every
// vector, ScoresBatch must produce the exact bits Scores produces, so that
// batching is an amortisation, never an approximation.
func TestScoresBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	m, err := Train(4, 3, separable(300, rng), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := m.Quantize()
	for _, n := range []int{1, 2, 7, 64} {
		xs := randomBatch(4, n, rng)
		batch := m.ScoresBatch(xs, nil)
		qbatch := q.ScoresBatch(xs, nil)
		if len(batch) != n*3 || len(qbatch) != n*3 {
			t.Fatalf("n=%d: batch score length %d/%d, want %d", n, len(batch), len(qbatch), n*3)
		}
		var single, qsingle []float64
		for i, x := range xs {
			single = m.Scores(x, single)
			qsingle = q.Scores(x, qsingle)
			for k := 0; k < 3; k++ {
				if got, want := batch[i*3+k], single[k]; got != want {
					t.Errorf("n=%d float vector %d class %d: batch %v != single %v", n, i, k, got, want)
				}
				if got, want := qbatch[i*3+k], qsingle[k]; got != want {
					t.Errorf("n=%d quantized vector %d class %d: batch %v != single %v", n, i, k, got, want)
				}
			}
		}
	}
}

// TestScoresBatchReusesBuffer checks the preallocation contract.
func TestScoresBatchReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	m, err := Train(4, 3, separable(100, rng), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs := randomBatch(4, 5, rng)
	buf := make([]float64, 0, 64)
	out := m.ScoresBatch(xs, buf)
	if &out[:1][0] != &buf[:1][0] {
		t.Error("ScoresBatch did not reuse the provided buffer despite sufficient capacity")
	}
}

// TestSoftmaxInPlaceMatchesProbabilities ties the shared normaliser to the
// historical Probabilities output.
func TestSoftmaxInPlaceMatchesProbabilities(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	m, err := Train(4, 3, separable(100, rng), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range randomBatch(4, 10, rng) {
		want := m.Probabilities(x)
		s := m.Scores(x, nil)
		SoftmaxInPlace(s)
		for k := range want {
			if s[k] != want[k] {
				t.Errorf("SoftmaxInPlace diverges from Probabilities at class %d: %v != %v", k, s[k], want[k])
			}
		}
		sum := 0.0
		for _, p := range s {
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("probabilities sum to %v", sum)
		}
	}
}
