// Package softmax implements the paper's predictive model: a multinomial
// logistic regression (soft-max) classifier per microarchitectural
// parameter, trained off-line by regularised maximum likelihood with
// conjugate-gradient optimisation (Section IV).
//
// The model is deliberately generic — D input features, K classes — so the
// same code trains all fourteen per-parameter models. Prediction follows
// the paper's equation (8)-(9): a hard argmax over the linear scores,
// avoiding exponentiation at runtime, which is what makes the hardware
// implementation (a multiclass perceptron, §VIII) cheap.
package softmax

import (
	"errors"
	"fmt"
	"math"
)

// Example is one training observation: feature vector X (length D) and the
// index Y of a "good" class. Phases with several good configurations
// contribute several examples, implementing the paper's Ñ over
// within-5%-of-best configurations.
type Example struct {
	X []float64
	Y int
}

// Options control training.
type Options struct {
	// Lambda is the weight-norm regularisation strength; the paper uses
	// 0.5.
	Lambda float64
	// InitWeight is the deterministic initial value of every weight; the
	// paper uses 1.
	InitWeight float64
	// MaxIter bounds conjugate-gradient iterations.
	MaxIter int
	// Tol stops training when the gradient norm falls below it.
	Tol float64
}

// DefaultOptions returns the paper's training settings.
func DefaultOptions() Options {
	return Options{Lambda: 0.5, InitWeight: 1, MaxIter: 200, Tol: 1e-5}
}

// Model is a trained soft-max classifier: a D x K weight matrix, stored
// row-major by feature (W[i*K+k] is feature i's weight for class k).
type Model struct {
	D, K int
	W    []float64
}

// NewModel returns an untrained model with all weights set to init.
func NewModel(d, k int, init float64) (*Model, error) {
	if d <= 0 || k <= 0 {
		return nil, fmt.Errorf("softmax: invalid shape D=%d K=%d", d, k)
	}
	m := &Model{D: d, K: k, W: make([]float64, d*k)}
	for i := range m.W {
		m.W[i] = init
	}
	return m, nil
}

// Scores computes the K linear scores w_k . x into out (allocated if nil).
func (m *Model) Scores(x []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, m.K)
	} else {
		for k := range out {
			out[k] = 0
		}
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.W[i*m.K : i*m.K+m.K]
		for k, w := range row {
			out[k] += w * xi
		}
	}
	return out
}

// ScoresBatch computes the linear scores of n feature vectors in a single
// pass over the weight matrix: out is (or becomes) an n x K row-major
// matrix, row i holding the scores of xs[i]. The weight row for feature i
// is loaded once and applied to every vector while it is hot, which is
// what makes batched serving cheaper than n Scores calls. Per vector, the
// accumulation order over features is exactly the one Scores uses, so the
// batched scores are bit-identical to the per-vector ones.
func (m *Model) ScoresBatch(xs [][]float64, out []float64) []float64 {
	need := len(xs) * m.K
	if cap(out) < need {
		out = make([]float64, need)
	}
	out = out[:need]
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < m.D; i++ {
		row := m.W[i*m.K : i*m.K+m.K]
		for n, x := range xs {
			xi := x[i]
			if xi == 0 {
				continue
			}
			dst := out[n*m.K : n*m.K+m.K]
			for k, w := range row {
				dst[k] += w * xi
			}
		}
	}
	return out
}

// Predict returns the argmax class for x (paper eq. 8-9: the hard decision
// needs no exponentiation).
func (m *Model) Predict(x []float64) int {
	if len(x) != m.D {
		panic(fmt.Sprintf("softmax: feature length %d, model expects %d", len(x), m.D))
	}
	s := m.Scores(x, nil)
	best, bi := math.Inf(-1), 0
	for k, v := range s {
		if v > best {
			best, bi = v, k
		}
	}
	return bi
}

// SoftmaxInPlace normalises a score vector into the soft-max distribution
// it implies, in place. Both Probabilities methods and the batched serving
// path funnel through it so their float operations (and therefore their
// serialized output) are identical.
func SoftmaxInPlace(s []float64) {
	maxS := math.Inf(-1)
	for _, v := range s {
		if v > maxS {
			maxS = v
		}
	}
	total := 0.0
	for k, v := range s {
		s[k] = math.Exp(v - maxS)
		total += s[k]
	}
	for k := range s {
		s[k] /= total
	}
}

// Probabilities returns the full soft-max distribution for x.
func (m *Model) Probabilities(x []float64) []float64 {
	s := m.Scores(x, nil)
	SoftmaxInPlace(s)
	return s
}

// Train fits a model to the examples by maximising the regularised data
// log-likelihood (paper eq. 6-7) with Polak-Ribiere conjugate gradients
// and a backtracking line search. Training is deterministic.
func Train(d, k int, examples []Example, opts Options) (*Model, error) {
	if len(examples) == 0 {
		return nil, errors.New("softmax: no training examples")
	}
	for i, ex := range examples {
		if len(ex.X) != d {
			return nil, fmt.Errorf("softmax: example %d has %d features, want %d", i, len(ex.X), d)
		}
		if ex.Y < 0 || ex.Y >= k {
			return nil, fmt.Errorf("softmax: example %d label %d out of range [0,%d)", i, ex.Y, k)
		}
	}
	m, err := NewModel(d, k, opts.InitWeight)
	if err != nil {
		return nil, err
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-5
	}

	n := d * k
	grad := make([]float64, n)
	prevGrad := make([]float64, n)
	dir := make([]float64, n)
	trial := make([]float64, n)
	scores := make([]float64, k)

	f := objective(m, examples, opts.Lambda, grad, scores)
	for i := range dir {
		dir[i] = -grad[i]
	}
	alpha := 1.0 / (1 + float64(len(examples)))

	for it := 0; it < opts.MaxIter; it++ {
		gnorm := norm(grad)
		if gnorm < opts.Tol {
			break
		}
		// Ensure a descent direction; restart on failure.
		if dot(grad, dir) >= 0 {
			for i := range dir {
				dir[i] = -grad[i]
			}
		}
		// Backtracking line search (Armijo).
		slope := dot(grad, dir)
		step := alpha * 4
		var fNew float64
		accepted := false
		for ls := 0; ls < 40; ls++ {
			for i := range trial {
				trial[i] = m.W[i] + step*dir[i]
			}
			fNew = objectiveAt(trial, m, examples, opts.Lambda, scores)
			if fNew <= f+1e-4*step*slope {
				accepted = true
				break
			}
			step *= 0.5
		}
		if !accepted {
			break // no further progress possible along any tried step
		}
		alpha = step
		copy(m.W, trial)
		copy(prevGrad, grad)
		f = objective(m, examples, opts.Lambda, grad, scores)

		// Polak-Ribiere beta with automatic restart.
		num := 0.0
		for i := range grad {
			num += grad[i] * (grad[i] - prevGrad[i])
		}
		den := dot(prevGrad, prevGrad)
		beta := 0.0
		if den > 0 {
			beta = num / den
		}
		if beta < 0 {
			beta = 0
		}
		for i := range dir {
			dir[i] = -grad[i] + beta*dir[i]
		}
	}
	return m, nil
}

// objective computes f = -L + lambda*||W||^2 and the gradient into grad.
func objective(m *Model, examples []Example, lambda float64, grad, scores []float64) float64 {
	for i := range grad {
		grad[i] = 0
	}
	f := 0.0
	for _, ex := range examples {
		m.Scores(ex.X, scores)
		maxS := math.Inf(-1)
		for _, v := range scores {
			if v > maxS {
				maxS = v
			}
		}
		logZ := 0.0
		for _, v := range scores {
			logZ += math.Exp(v - maxS)
		}
		logZ = math.Log(logZ) + maxS
		f -= scores[ex.Y] - logZ
		// Gradient of -log-likelihood: (sigma_k - delta_k) * x.
		for k := range scores {
			p := math.Exp(scores[k] - logZ)
			coeff := p
			if k == ex.Y {
				coeff -= 1
			}
			if coeff == 0 {
				continue
			}
			for i, xi := range ex.X {
				if xi != 0 {
					grad[i*m.K+k] += coeff * xi
				}
			}
		}
	}
	for i, w := range m.W {
		f += lambda * w * w
		grad[i] += 2 * lambda * w
	}
	return f
}

// objectiveAt evaluates the objective at weights w without touching m.W
// and without computing the gradient.
func objectiveAt(w []float64, m *Model, examples []Example, lambda float64, scores []float64) float64 {
	saved := m.W
	m.W = w
	f := 0.0
	for _, ex := range examples {
		m.Scores(ex.X, scores)
		maxS := math.Inf(-1)
		for _, v := range scores {
			if v > maxS {
				maxS = v
			}
		}
		logZ := 0.0
		for _, v := range scores {
			logZ += math.Exp(v - maxS)
		}
		logZ = math.Log(logZ) + maxS
		f -= scores[ex.Y] - logZ
	}
	for _, wi := range w {
		f += lambda * wi * wi
	}
	m.W = saved
	return f
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// Quantized is the 8-bit fixed-point form of a model, matching the
// perceptron-style hardware implementation the paper sketches in §VIII
// (signed 8-bit weights, ~2KB storage for the basic counter set).
type Quantized struct {
	D, K  int
	Scale float64 // weight = Scale * int8 value
	W     []int8
}

// Quantize converts the model to 8-bit weights with a single shared scale.
func (m *Model) Quantize() *Quantized {
	maxAbs := 0.0
	for _, w := range m.W {
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	q := &Quantized{D: m.D, K: m.K, W: make([]int8, len(m.W))}
	if maxAbs == 0 {
		q.Scale = 1
		return q
	}
	q.Scale = maxAbs / 127
	for i, w := range m.W {
		v := math.Round(w / q.Scale)
		if v > 127 {
			v = 127
		}
		if v < -127 {
			v = -127
		}
		q.W[i] = int8(v)
	}
	return q
}

// Scores computes the K linear scores in float weight units (the integer
// accumulator times Scale) into out (allocated if nil). Scaling does not
// change the argmax but makes the scores comparable to the float model's,
// so the soft-max distribution over them is meaningful.
func (q *Quantized) Scores(x []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, q.K)
	} else {
		for k := range out {
			out[k] = 0
		}
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := q.W[i*q.K : i*q.K+q.K]
		for k, w := range row {
			out[k] += float64(w) * xi
		}
	}
	for k := range out {
		out[k] *= q.Scale
	}
	return out
}

// ScoresBatch is the 8-bit counterpart of Model.ScoresBatch: one pass over
// the int8 weight matrix scoring every vector, bit-identical per vector to
// Scores (same accumulation order, same trailing Scale multiply).
func (q *Quantized) ScoresBatch(xs [][]float64, out []float64) []float64 {
	need := len(xs) * q.K
	if cap(out) < need {
		out = make([]float64, need)
	}
	out = out[:need]
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < q.D; i++ {
		row := q.W[i*q.K : i*q.K+q.K]
		for n, x := range xs {
			xi := x[i]
			if xi == 0 {
				continue
			}
			dst := out[n*q.K : n*q.K+q.K]
			for k, w := range row {
				dst[k] += float64(w) * xi
			}
		}
	}
	for i := range out {
		out[i] *= q.Scale
	}
	return out
}

// Predict returns the argmax class using the quantised weights.
func (q *Quantized) Predict(x []float64) int {
	scores := q.Scores(x, nil)
	best, bi := math.Inf(-1), 0
	for k, v := range scores {
		if v > best {
			best, bi = v, k
		}
	}
	return bi
}

// Probabilities returns the soft-max distribution implied by the quantised
// scores — the serving path's confidence estimate for 8-bit deployments.
func (q *Quantized) Probabilities(x []float64) []float64 {
	s := q.Scores(x, nil)
	SoftmaxInPlace(s)
	return s
}

// StorageBytes returns the storage footprint of the quantised weights.
func (q *Quantized) StorageBytes() int { return len(q.W) }
