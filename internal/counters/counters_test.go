package counters

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/trace"
)

// profiledResult runs a small profiled simulation once per test binary.
func profiledResult(t *testing.T, program string, phase int) *cpu.Result {
	t.Helper()
	g, err := trace.NewGenerator(program, phase)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cpu.New(arch.Profiling())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(g, 5000, cpu.Options{Collect: true, WarmupInsts: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSetStrings(t *testing.T) {
	if Basic.String() != "basic" || Advanced.String() != "advanced" {
		t.Error("set names wrong")
	}
	if Set(9).String() != "Set(9)" {
		t.Error("unknown set name wrong")
	}
}

func TestDimsStableAndDistinct(t *testing.T) {
	db, da := Dim(Basic), Dim(Advanced)
	if db < 10 || db > 32 {
		t.Errorf("basic dim %d outside expected scalar-counter range", db)
	}
	if da < 300 {
		t.Errorf("advanced dim %d too small for full temporal histograms", da)
	}
	if da <= db {
		t.Errorf("advanced dim %d not larger than basic %d", da, db)
	}
	// Stable across calls.
	if Dim(Basic) != db || Dim(Advanced) != da {
		t.Error("dims unstable")
	}
}

func TestFeatureVectorsMatchDim(t *testing.T) {
	res := profiledResult(t, "vortex", 0)
	for _, set := range []Set{Basic, Advanced} {
		f := Features(res, set)
		if len(f) != Dim(set) {
			t.Errorf("%s features len %d, want %d", set, len(f), Dim(set))
		}
	}
}

func TestFeaturesBounded(t *testing.T) {
	res := profiledResult(t, "mcf", 0)
	for _, set := range []Set{Basic, Advanced} {
		for i, v := range Features(res, set) {
			if v < 0 || v > 1.0001 {
				t.Errorf("%s feature %d = %v outside [0,1]", set, i, v)
			}
		}
	}
}

func TestBiasIsLast(t *testing.T) {
	res := profiledResult(t, "gzip", 1)
	for _, set := range []Set{Basic, Advanced} {
		f := Features(res, set)
		if f[len(f)-1] != 1 {
			t.Errorf("%s bias feature = %v, want 1", set, f[len(f)-1])
		}
	}
}

func TestPanicsWithoutCounters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Features did not panic on missing counters")
		}
	}()
	Features(&cpu.Result{}, Advanced)
}

func TestDifferentPhasesDifferentFeatures(t *testing.T) {
	a := Features(profiledResult(t, "mcf", 0), Advanced)
	b := Features(profiledResult(t, "swim", 0), Advanced)
	diff := 0.0
	for i := range a {
		d := a[i] - b[i]
		diff += d * d
	}
	if diff < 1e-3 {
		t.Errorf("mcf and swim advanced features nearly identical (L2^2 = %g)", diff)
	}
}

func TestAdvancedCarriesCacheSignal(t *testing.T) {
	// A pointer chase over megabytes almost never revisits a block, so its
	// stack-distance mass must sit in the cold/overflow bin far more than
	// a program whose working set is tens of KB; this is the capacity
	// signal the model uses for cache sizing.
	chase := profiledResult(t, "mcf", 0)
	small := profiledResult(t, "eon", 0)
	cCold := chase.Counters.DCache.StackDist.Normalized()
	eCold := small.Counters.DCache.StackDist.Normalized()
	last := len(cCold) - 1
	if cCold[last] <= eCold[last] {
		t.Errorf("mcf cold-bin mass %.3f not above eon %.3f", cCold[last], eCold[last])
	}
}

func TestSegmentsTileAdvancedVector(t *testing.T) {
	segs := Segments()
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	pos := 0
	for _, s := range segs {
		if s.Start != pos {
			t.Fatalf("segment %s starts at %d, want %d (gap or overlap)", s.Name, s.Start, pos)
		}
		if s.Len <= 0 {
			t.Fatalf("segment %s has length %d", s.Name, s.Len)
		}
		pos += s.Len
	}
	if pos != Dim(Advanced) {
		t.Fatalf("segments cover %d features, want %d", pos, Dim(Advanced))
	}
	if segs[len(segs)-1].Name != "bias" {
		t.Fatalf("last segment %q, want bias", segs[len(segs)-1].Name)
	}
}

func TestAblateFamily(t *testing.T) {
	res := profiledResult(t, "gzip", 0)
	f := Features(res, Advanced)
	ab := AblateFamily(f, "caches/")
	// Original untouched.
	changed := false
	for i := range f {
		if f[i] != ab[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("ablation changed nothing")
	}
	for _, s := range Segments() {
		isCache := len(s.Name) >= 7 && s.Name[:7] == "caches/"
		for i := s.Start; i < s.Start+s.Len; i++ {
			if isCache && ab[i] != 0 {
				t.Fatalf("cache segment %s not zeroed at %d", s.Name, i)
			}
			if !isCache && ab[i] != f[i] {
				t.Fatalf("non-cache segment %s modified at %d", s.Name, i)
			}
		}
	}
}
