package counters

import "sync"

// Segment names a contiguous slice of a feature vector belonging to one
// counter family (one Table II row group). It supports the counter-family
// ablation experiments: zeroing a segment removes that family's
// information from the model's view.
type Segment struct {
	Name  string
	Start int
	Len   int
}

var (
	segOnce sync.Once
	segAdv  []Segment
)

// Segments returns the named feature segments of the Advanced set, in
// vector order. The Basic set is all scalars and is not segmented.
func Segments() []Segment {
	segOnce.Do(func() {
		res := probeResult()
		c := res.Counters
		pos := 0
		add := func(name string, n int) {
			segAdv = append(segAdv, Segment{Name: name, Start: pos, Len: n})
			pos += n
		}
		add("width/alu", c.ALUUsage.Bins())
		add("width/memport", c.MemPortUsage.Bins())
		add("queues/rob", c.ROBOcc.Bins())
		add("queues/iq", c.IQOcc.Bins())
		add("queues/lsq", c.LSQOcc.Bins())
		add("queues/spec", 4)
		add("rf/int", c.IntRegUsage.Bins())
		add("rf/fp", c.FpRegUsage.Bins())
		add("rf/rdports", c.RdPortUsage.Bins())
		add("rf/wrports", c.WrPortUsage.Bins())
		for _, cacheName := range []string{"icache", "dcache", "l2"} {
			add("caches/"+cacheName+"/stack", c.ICache.StackDist.Bins())
			add("caches/"+cacheName+"/blockreuse", c.ICache.BlockReuse.Bins())
			add("caches/"+cacheName+"/setreuse", c.ICache.SetReuse.Bins())
			add("caches/"+cacheName+"/reducedset", c.ICache.ReducedSets.Bins())
		}
		add("bpred/btbreuse", c.BTBReuse.Bins())
		add("bpred/mispredict", 1)
		add("depth/cpi", 1)
		add("bias", 1)
	})
	return segAdv
}

// AblateFamily returns a copy of an Advanced feature vector with every
// segment whose name starts with prefix zeroed out.
func AblateFamily(features []float64, prefix string) []float64 {
	out := append([]float64(nil), features...)
	for _, s := range Segments() {
		if len(s.Name) >= len(prefix) && s.Name[:len(prefix)] == prefix {
			for i := s.Start; i < s.Start+s.Len; i++ {
				out[i] = 0
			}
		}
	}
	return out
}
