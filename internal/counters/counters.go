// Package counters converts the raw hardware counters gathered on the
// profiling configuration (internal/cpu.RawCounters) into the feature
// vectors consumed by the predictive model.
//
// Two sets are provided, mirroring the paper's Figure 4 comparison:
//
//   - Basic: the standard performance counters available on processors of
//     the era — average occupancies, access and miss rates, IPC. Scalars
//     only.
//   - Advanced: the paper's novel temporal-histogram counters (Table II) —
//     full usage histograms for the width, queues and register file, stack
//     and reuse distance histograms for the caches, BTB reuse and
//     speculation fractions.
//
// All features are normalised into roughly [0, 1] so a single regulariser
// works across dimensions, and every vector carries a trailing constant
// bias feature.
package counters

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/stats"
)

// Set selects which feature encoding to build.
type Set int

// Feature sets.
const (
	Basic Set = iota
	Advanced
)

// String names the set.
func (s Set) String() string {
	switch s {
	case Basic:
		return "basic"
	case Advanced:
		return "advanced"
	default:
		return fmt.Sprintf("Set(%d)", int(s))
	}
}

// Features builds the feature vector for res under the given set. The
// result must come from a run with counter collection enabled
// (res.Counters != nil); Features panics otherwise, as that is a
// harness-programming error.
func Features(res *cpu.Result, set Set) []float64 {
	if res.Counters == nil {
		panic("counters: result has no collected counters; run with Options.Collect")
	}
	switch set {
	case Basic:
		return basicFeatures(res)
	default:
		return advancedFeatures(res)
	}
}

// Dim returns the dimensionality of the given set's vectors.
var dimCache [2]int

// Dim returns the feature dimension of the set. It is constant per set.
func Dim(set Set) int {
	i := 0
	if set == Advanced {
		i = 1
	}
	if dimCache[i] == 0 {
		dimCache[i] = len(Features(probeResult(), set))
	}
	return dimCache[i]
}

// probeResult builds a minimal synthetic result for dimension probing.
func probeResult() *cpu.Result {
	return &cpu.Result{Counters: cpu.EmptyRawCounters()}
}

// rate returns num/den, 0 when den is 0.
func rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// basicFeatures: conventional scalar performance counters.
func basicFeatures(res *cpu.Result) []float64 {
	c := res.Counters
	insts := res.Committed
	f := []float64{
		c.ROBOcc.Mean() / float64(cpu.OccBins),      // avg ROB occupancy
		c.IQOcc.Mean() / float64(cpu.OccBins),       // avg IQ occupancy
		c.LSQOcc.Mean() / float64(cpu.OccBins),      // avg LSQ occupancy
		c.ALUUsage.Mean() / float64(cpu.ALUBins),    // avg ALU ops per cycle
		c.IntRegUsage.Mean() / float64(cpu.OccBins), // avg int RF usage
		c.FpRegUsage.Mean() / float64(cpu.OccBins),  // avg fp RF usage
		clamp01(rate(res.L1IAccesses, insts)),       // I-cache access rate
		clamp01(rate(res.L1IMisses, res.L1IAccesses)),
		clamp01(rate(res.L1DAccesses, insts)), // D-cache access rate
		clamp01(rate(res.L1DMisses, res.L1DAccesses)),
		clamp01(rate(res.L2Accesses, insts)), // L2 access rate
		clamp01(rate(res.L2Misses, res.L2Accesses)),
		clamp01(rate(res.BranchLookups, insts)), // bpred access rate
		c.MispredictRate,
		ipcFeature(c.CPI),
		1, // bias
	}
	return f
}

// advancedFeatures: the temporal-histogram counter set of Table II.
func advancedFeatures(res *cpu.Result) []float64 {
	c := res.Counters
	f := make([]float64, 0, 512)
	// Width.
	f = appendHist(f, c.ALUUsage)
	f = appendHist(f, c.MemPortUsage)
	// Queues.
	f = appendHist(f, c.ROBOcc)
	f = appendHist(f, c.IQOcc)
	f = appendHist(f, c.LSQOcc)
	f = append(f, c.IQSpecFrac, c.IQMisspecFrac, c.LSQSpecFrac, c.LSQMisspecFrac)
	// Register file.
	f = appendHist(f, c.IntRegUsage)
	f = appendHist(f, c.FpRegUsage)
	f = appendHist(f, c.RdPortUsage)
	f = appendHist(f, c.WrPortUsage)
	// Caches: stack distance, block reuse, set reuse, reduced-set reuse.
	for _, p := range []*cache.Profiler{c.ICache, c.DCache, c.L2} {
		f = appendHist(f, p.StackDist)
		f = appendHist(f, p.BlockReuse)
		f = appendHist(f, p.SetReuse)
		f = appendHist(f, p.ReducedSets)
	}
	// Branch predictor.
	f = appendHist(f, c.BTBReuse)
	f = append(f, c.MispredictRate)
	// Pipeline depth: cycles per instruction.
	f = append(f, ipcFeature(c.CPI))
	f = append(f, 1) // bias
	return f
}

// appendHist appends the normalised histogram bins.
func appendHist(f []float64, h *stats.Histogram) []float64 {
	return append(f, h.Normalized()...)
}

// ipcFeature maps CPI into (0, 1]: IPC normalised by the maximum width.
func ipcFeature(cpi float64) float64 {
	if cpi <= 0 {
		return 0
	}
	v := (1 / cpi) / 8
	return clamp01(v)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
