// Canonical byte encoding of warm predictor state for the
// warmup-checkpoint machinery (cpu.Sim.Snapshot/Restore): the gshare PHT
// and history register plus the BTB tags, targets and LRU ages. The
// statistics counters are excluded — the simulator resets them after
// warmup. Fixed little-endian layout; content-addressed storage depends
// on the same state always producing the same bytes.
package branch

import (
	"encoding/binary"
	"fmt"
)

// SnapshotSize returns the exact encoded size of this predictor's snapshot.
func (p *Predictor) SnapshotSize() int {
	btb := len(p.btbTags)
	return 4 + len(p.pht) + 4 + 4 + 4 + 4*btb + 4*btb + btb
}

// AppendSnapshot appends the canonical encoding of the predictor's
// learned state to buf and returns the extended slice.
func (p *Predictor) AppendSnapshot(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.pht)))
	buf = append(buf, p.pht...)
	buf = binary.LittleEndian.AppendUint32(buf, p.ghr)
	buf = binary.LittleEndian.AppendUint32(buf, p.btbSets)
	buf = binary.LittleEndian.AppendUint32(buf, p.btbWays)
	for _, t := range p.btbTags {
		buf = binary.LittleEndian.AppendUint32(buf, t)
	}
	for _, t := range p.btbTargets {
		buf = binary.LittleEndian.AppendUint32(buf, t)
	}
	buf = append(buf, p.btbLRU...)
	return buf
}

// RestoreSnapshot overwrites the predictor's learned state from the
// encoding at the front of buf and returns the remainder. The snapshot's
// geometry (PHT entries, BTB sets/ways) must match the predictor's
// exactly. Statistics are left untouched.
func (p *Predictor) RestoreSnapshot(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("branch: snapshot truncated (PHT header)")
	}
	phtLen := int(binary.LittleEndian.Uint32(buf))
	if phtLen != len(p.pht) {
		return nil, fmt.Errorf("branch: snapshot PHT size %d does not match predictor %d", phtLen, len(p.pht))
	}
	buf = buf[4:]
	if len(buf) < phtLen+12 {
		return nil, fmt.Errorf("branch: snapshot truncated (PHT body)")
	}
	copy(p.pht, buf[:phtLen])
	buf = buf[phtLen:]
	p.ghr = binary.LittleEndian.Uint32(buf[0:])
	sets := binary.LittleEndian.Uint32(buf[4:])
	ways := binary.LittleEndian.Uint32(buf[8:])
	if sets != p.btbSets || ways != p.btbWays {
		return nil, fmt.Errorf("branch: snapshot BTB geometry %dx%d does not match predictor %dx%d",
			sets, ways, p.btbSets, p.btbWays)
	}
	buf = buf[12:]
	btb := len(p.btbTags)
	if len(buf) < 4*btb+4*btb+btb {
		return nil, fmt.Errorf("branch: snapshot truncated (%d bytes for %d BTB entries)", len(buf), btb)
	}
	for i := 0; i < btb; i++ {
		p.btbTags[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	buf = buf[4*btb:]
	for i := 0; i < btb; i++ {
		p.btbTargets[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	buf = buf[4*btb:]
	copy(p.btbLRU, buf[:btb])
	return buf[btb:], nil
}
