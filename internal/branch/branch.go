// Package branch implements the configurable front-end branch prediction
// hardware of the simulated processor: a gshare direction predictor with
// 2-bit saturating counters and a set-associative branch target buffer.
// Both structures' sizes are design-space parameters (Table I).
package branch

import "fmt"

// Predictor is the combined gshare + BTB unit. It is deterministic and not
// safe for concurrent use.
type Predictor struct {
	pht     []uint8 // 2-bit saturating counters
	phtMask uint32
	ghr     uint32 // global history register

	btbTags    []uint32
	btbTargets []uint32
	btbSets    uint32
	btbWays    uint32
	btbLRU     []uint8

	// Statistics.
	Lookups     uint64
	Mispredicts uint64
	BTBMisses   uint64
}

const btbAssoc = 4

// New builds a predictor with the given gshare PHT entry count and BTB
// entry count. Both must be powers of two (all Table I values are).
func New(gshareEntries, btbEntries int) (*Predictor, error) {
	if gshareEntries <= 0 || gshareEntries&(gshareEntries-1) != 0 {
		return nil, fmt.Errorf("branch: gshare size %d not a positive power of two", gshareEntries)
	}
	if btbEntries < btbAssoc || btbEntries&(btbEntries-1) != 0 {
		return nil, fmt.Errorf("branch: BTB size %d not a positive power of two >= %d", btbEntries, btbAssoc)
	}
	p := &Predictor{
		pht:     make([]uint8, gshareEntries),
		phtMask: uint32(gshareEntries - 1),
		btbSets: uint32(btbEntries / btbAssoc),
		btbWays: btbAssoc,
	}
	for i := range p.pht {
		p.pht[i] = 2 // weakly taken: loop-closing branches dominate
	}
	n := btbEntries
	p.btbTags = make([]uint32, n)
	p.btbTargets = make([]uint32, n)
	p.btbLRU = make([]uint8, n)
	for i := range p.btbTags {
		p.btbTags[i] = 0xffffffff
	}
	return p, nil
}

// MustNew is New but panics on error; for configurations that come from the
// validated design space.
func MustNew(gshareEntries, btbEntries int) *Predictor {
	p, err := New(gshareEntries, btbEntries)
	if err != nil {
		panic(err)
	}
	return p
}

// phtIndex computes the gshare index: PC xor global history.
func (p *Predictor) phtIndex(pc uint32) uint32 {
	return ((pc >> 2) ^ p.ghr) & p.phtMask
}

// Predict returns the predicted direction and, when the BTB hits, the
// predicted target. A taken prediction with a BTB miss cannot redirect
// fetch and behaves as a (cheaper) misfetch; the caller decides the
// penalty. Predict does not modify predictor state; call Update with the
// outcome afterwards.
func (p *Predictor) Predict(pc uint32) (taken bool, target uint32, btbHit bool) {
	taken = p.pht[p.phtIndex(pc)] >= 2
	set := (pc >> 2) % p.btbSets
	tag := pc
	base := set * p.btbWays
	for w := uint32(0); w < p.btbWays; w++ {
		if p.btbTags[base+w] == tag {
			return taken, p.btbTargets[base+w], true
		}
	}
	return taken, 0, false
}

// Update trains the predictor with the actual outcome of the branch at pc
// and accumulates misprediction statistics against the prediction that
// Predict would have returned. It returns whether the overall prediction
// (direction, and target when taken) was correct.
func (p *Predictor) Update(pc uint32, taken bool, target uint32) bool {
	p.Lookups++
	idx := p.phtIndex(pc)
	predTaken := p.pht[idx] >= 2

	// BTB lookup/fill.
	set := (pc >> 2) % p.btbSets
	tag := pc
	base := set * p.btbWays
	hitWay := -1
	for w := uint32(0); w < p.btbWays; w++ {
		if p.btbTags[base+w] == tag {
			hitWay = int(w)
			break
		}
	}
	correct := predTaken == taken
	if taken {
		if hitWay < 0 {
			p.BTBMisses++
			correct = false
		} else if p.btbTargets[base+uint32(hitWay)] != target {
			correct = correct && false
		}
	}
	if !correct {
		p.Mispredicts++
	}

	// Train the 2-bit counter.
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	// Update history.
	p.ghr = (p.ghr << 1) | b2u(taken)

	// Allocate/refresh the BTB entry for taken branches (LRU victim).
	if taken {
		if hitWay < 0 {
			victim := uint32(0)
			oldest := uint8(0)
			for w := uint32(0); w < p.btbWays; w++ {
				if p.btbLRU[base+w] >= oldest {
					oldest = p.btbLRU[base+w]
					victim = w
				}
			}
			hitWay = int(victim)
			p.btbTags[base+uint32(hitWay)] = tag
		}
		p.btbTargets[base+uint32(hitWay)] = target
		for w := uint32(0); w < p.btbWays; w++ {
			if p.btbLRU[base+w] < 255 {
				p.btbLRU[base+w]++
			}
		}
		p.btbLRU[base+uint32(hitWay)] = 0
	}
	return correct
}

// MispredictRate returns the fraction of updated branches that were
// mispredicted so far (0 if no branches seen).
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

// ResetStats clears the statistics counters but keeps the learned state.
func (p *Predictor) ResetStats() {
	p.Lookups, p.Mispredicts, p.BTBMisses = 0, 0, 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
