package branch

import (
	"math/rand/v2"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1000, 1024); err == nil {
		t.Error("non-power-of-two gshare accepted")
	}
	if _, err := New(1024, 3); err == nil {
		t.Error("tiny BTB accepted")
	}
	if _, err := New(0, 1024); err == nil {
		t.Error("zero gshare accepted")
	}
	if _, err := New(1024, 1024); err != nil {
		t.Errorf("valid sizes rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on bad size")
		}
	}()
	MustNew(3, 1024)
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := MustNew(4096, 1024)
	const pc, target = 0x400100, 0x400040
	// Train past the point where the global history register saturates to
	// all-taken, so the prediction-time gshare index has been trained.
	for i := 0; i < 50; i++ {
		p.Update(pc, true, target)
	}
	taken, tgt, hit := p.Predict(pc)
	if !taken || !hit || tgt != target {
		t.Fatalf("after training: taken=%v hit=%v tgt=%#x", taken, hit, tgt)
	}
}

func TestLearnsLoopPattern(t *testing.T) {
	// A loop branch taken 15 of 16 times: gshare with enough history should
	// do far better than 1/16 mispredict floor would suggest for a simple
	// bimodal, and at minimum should beat always-wrong.
	p := MustNew(16384, 1024)
	const pc, target = 0x400200, 0x400180
	for i := 0; i < 20000; i++ {
		p.Update(pc, i%16 != 15, target)
	}
	if r := p.MispredictRate(); r > 0.20 {
		t.Errorf("loop pattern mispredict rate %.3f, want <= 0.20", r)
	}
}

func TestRandomBranchesHard(t *testing.T) {
	p := MustNew(16384, 1024)
	rng := rand.New(rand.NewPCG(9, 9))
	const pc, target = 0x400300, 0x400280
	for i := 0; i < 20000; i++ {
		p.Update(pc, rng.IntN(2) == 0, target)
	}
	if r := p.MispredictRate(); r < 0.35 {
		t.Errorf("random branch mispredict rate %.3f suspiciously low", r)
	}
}

func TestBiggerGshareHelpsManyBranches(t *testing.T) {
	// Many distinct patterned branches alias in a tiny PHT but fit in a
	// large one.
	run := func(entries int) float64 {
		p := MustNew(entries, 4096)
		for i := 0; i < 120000; i++ {
			pc := uint32(0x400000 + (i%512)*4)
			taken := (i/512+i%7)%5 != 0
			p.Update(pc, taken, pc-64)
		}
		return p.MispredictRate()
	}
	small, big := run(1024), run(32768)
	if big >= small {
		t.Errorf("32K gshare rate %.4f not better than 1K rate %.4f", big, small)
	}
}

func TestBTBMissesOnColdTakenBranch(t *testing.T) {
	p := MustNew(1024, 1024)
	if ok := p.Update(0x400400, true, 0x400000); ok {
		t.Error("cold taken branch counted as fully correct despite BTB miss")
	}
	if p.BTBMisses != 1 {
		t.Errorf("BTBMisses = %d, want 1", p.BTBMisses)
	}
}

func TestBTBCapacityPressure(t *testing.T) {
	// More distinct taken branches than a small BTB holds must miss more
	// than in a big BTB.
	run := func(entries int) uint64 {
		p := MustNew(4096, entries)
		for round := 0; round < 30; round++ {
			for i := 0; i < 3000; i++ {
				pc := uint32(0x400000 + i*4)
				p.Update(pc, true, pc+128)
			}
		}
		return p.BTBMisses
	}
	small, big := run(1024), run(4096)
	if small <= big {
		t.Errorf("1K BTB misses %d not above 4K BTB misses %d", small, big)
	}
}

func TestPredictDoesNotMutate(t *testing.T) {
	p := MustNew(1024, 1024)
	p.Update(0x400500, true, 0x400000)
	before := p.Lookups
	for i := 0; i < 100; i++ {
		p.Predict(0x400500)
	}
	if p.Lookups != before {
		t.Error("Predict changed statistics")
	}
}

func TestResetStats(t *testing.T) {
	p := MustNew(1024, 1024)
	for i := 0; i < 100; i++ {
		p.Update(uint32(0x400000+i*4), i%2 == 0, 0x400000)
	}
	p.ResetStats()
	if p.Lookups != 0 || p.Mispredicts != 0 || p.BTBMisses != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if p.MispredictRate() != 0 {
		t.Error("MispredictRate nonzero after reset with no lookups")
	}
}

func TestDeterministicPredictor(t *testing.T) {
	run := func() (uint64, uint64) {
		p := MustNew(4096, 1024)
		for i := 0; i < 5000; i++ {
			pc := uint32(0x400000 + (i%97)*4)
			p.Update(pc, (i/97+i%13)%3 != 0, pc+64)
		}
		return p.Mispredicts, p.BTBMisses
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("nondeterministic predictor: %d/%d vs %d/%d", m1, b1, m2, b2)
	}
}

func TestResetStatsKeepsTraining(t *testing.T) {
	p := MustNew(4096, 1024)
	const pc, target = 0x400700, 0x400100
	for i := 0; i < 100; i++ {
		p.Update(pc, true, target)
	}
	p.ResetStats()
	// The branch is still learned: the next updates should be correct.
	wrong := uint64(0)
	for i := 0; i < 20; i++ {
		if !p.Update(pc, true, target) {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("%d mispredicts on a learned branch after ResetStats", wrong)
	}
}
