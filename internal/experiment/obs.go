package experiment

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide harness series (obs.DefaultRegistry): how much simulation
// the pipeline has paid for and how much the memo table saved. These are
// observability only — nothing in the experiment protocol reads them.
var (
	obsSims = obs.DefaultRegistry().Counter("repro_experiment_simulations_total",
		"Simulations executed by the harness (memoisation misses).")
	obsMemoHits = obs.DefaultRegistry().Counter("repro_experiment_memo_hits_total",
		"Dataset results answered from the memo table.")
	obsSampleConfigs = obs.DefaultRegistry().Counter("repro_experiment_sample_configs_total",
		"(phase, config) evaluations that joined the sample space.")
)

// MemoStats returns the process-lifetime memoisation hits and misses
// (misses are simulations actually run) — the hit rate cmd/report's
// progress lines display.
func MemoStats() (hits, misses uint64) {
	return obsMemoHits.Value(), obsSims.Value()
}

// ProgressFunc receives live progress events from the long pipeline
// stages: stage is "search", "profile" or "loocv <set>", done/total count
// phases or folds. Callbacks must not touch dataset state.
type ProgressFunc func(stage string, done, total int)

var progressFn atomic.Pointer[ProgressFunc]

// SetProgress installs (or, with nil, removes) the process-wide progress
// callback. cmd/report and the benchmark harness use it for live
// progress/ETA lines; it has no effect on results.
func SetProgress(fn ProgressFunc) {
	if fn == nil {
		progressFn.Store(nil)
		return
	}
	progressFn.Store(&fn)
}

// reportProgress invokes the installed callback, if any.
func reportProgress(stage string, done, total int) {
	if fn := progressFn.Load(); fn != nil {
		(*fn)(stage, done, total)
	}
}
