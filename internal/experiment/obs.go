package experiment

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide harness series (obs.DefaultRegistry): how much simulation
// the pipeline has paid for and how much the memo table saved. These are
// observability only — nothing in the experiment protocol reads them.
var (
	obsSims = obs.DefaultRegistry().Counter("repro_experiment_simulations_total",
		"Simulations executed by the harness (memoisation misses).")
	obsMemoHits = obs.DefaultRegistry().Counter("repro_experiment_memo_hits_total",
		"Dataset results answered from the memo table.")
	obsSampleConfigs = obs.DefaultRegistry().Counter("repro_experiment_sample_configs_total",
		"(phase, config) evaluations that joined the sample space.")
)

// Surrogate-search series (see WithSurrogate and internal/surrogate).
// repro_sims_exact counts the exact simulations the three-stage search
// paid for — the budget the surrogate prunes and the denominator of its
// >=2x reduction claim; it advances identically-defined with the
// surrogate off, so two report runs are directly comparable. The pruned/
// audited counters and the quality gauges only move on surrogate builds.
var (
	obsSimsExact = obs.DefaultRegistry().Counter("repro_sims_exact",
		"Exact simulations spent on design-space search candidates.")
	obsSurrogatePruned = obs.DefaultRegistry().Counter("repro_surrogate_pruned",
		"Candidate evaluations skipped on the surrogate's ranking.")
	obsSurrogateAudited = obs.DefaultRegistry().Counter("repro_surrogate_audited",
		"Pruned candidates exact-simulated anyway as the seeded audit slice.")
	obsSurrogateRankCorr = obs.DefaultRegistry().Gauge("repro_surrogate_rank_corr",
		"Mean Spearman correlation of predicted vs exact ordering over audited batches.")
	obsSurrogateRegret = obs.DefaultRegistry().Gauge("repro_surrogate_regret",
		"Mean efficiency fraction the shortlist's best gave up vs the audited best.")
	obsSurrogateCalibMAE = obs.DefaultRegistry().Gauge("repro_surrogate_calib_mae",
		"Surrogate prequential mean absolute error in log-efficiency.")
)

// SearchSimCount returns the process-lifetime count of exact simulations
// spent on search candidates (repro_sims_exact) — what cmd/report logs so
// scripts/verify.sh can compare surrogate-off and -on runs.
func SearchSimCount() uint64 { return obsSimsExact.Value() }

// MemoStats returns the process-lifetime memoisation hits and misses
// (misses are simulations actually run) — the hit rate cmd/report's
// progress lines display.
func MemoStats() (hits, misses uint64) {
	return obsMemoHits.Value(), obsSims.Value()
}

// ProgressFunc receives live progress events from the long pipeline
// stages: stage is "search", "profile" or "loocv <set>", done/total count
// phases or folds. Callbacks must not touch dataset state.
type ProgressFunc func(stage string, done, total int)

var progressFn atomic.Pointer[ProgressFunc]

// SetProgress installs (or, with nil, removes) the process-wide progress
// callback. cmd/report and the benchmark harness use it for live
// progress/ETA lines; it has no effect on results.
func SetProgress(fn ProgressFunc) {
	if fn == nil {
		progressFn.Store(nil)
		return
	}
	progressFn.Store(&fn)
}

// reportProgress invokes the installed callback, if any.
func reportProgress(stage string, done, total int) {
	if fn := progressFn.Load(); fn != nil {
		(*fn)(stage, done, total)
	}
}
