package experiment

import (
	"context"
	"os"
	"testing"

	"repro/internal/store"
)

// BenchmarkDatasetBuildCold measures the full test-scale dataset build
// against a fresh (cold) store with checkpoints off — the all-simulation
// baseline the warmup-checkpoint benchmark is compared against. Both
// benchmarks attach a store so they pay the identical result-persistence
// cost and differ only in how warmups are executed.
func BenchmarkDatasetBuildCold(b *testing.B) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Build(ctx, TestScale(), WithStore(st)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkDatasetBuildWarmCkpt measures the same build replayed against
// a store holding only the warmup-snapshot sidecar: every measurement
// still simulates (there are no result records to replay), but every
// warmup restores from its checkpoint — isolating the amortisation the
// snapshot store buys, warmup instructions being roughly a third of the
// test-scale instruction volume.
func BenchmarkDatasetBuildWarmCkpt(b *testing.B) {
	ctx := context.Background()
	seed := b.TempDir()
	st, err := store.Open(seed)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Build(ctx, TestScale(), WithStore(st), WithWarmupCheckpoints()); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	snap, err := os.ReadFile(store.SnapLog(seed))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		if err := os.WriteFile(store.SnapLog(dir), snap, 0o644); err != nil {
			b.Fatal(err)
		}
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Build(ctx, TestScale(), WithStore(st), WithWarmupCheckpoints()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
