package experiment

import (
	"math"
	"math/rand/v2"
	"sort"
	"strconv"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/surrogate"
	"repro/internal/trace"
)

// WithSurrogate turns on surrogate-guided pruning of the design-space
// search: each candidate batch is ranked by a ridge model trained
// incrementally on every exact result the build produces, and only the
// top-K shortlist plus a seeded random audit slice is exact-simulated.
//
// The surrogate is an accelerator, never an authority. Its estimates are
// used solely to *choose which configurations to simulate* (and to order
// the best-static scan); they never enter the memo table, the sample
// space or the good sets — those see exact simulator results only, so the
// oracle and Figure-7b semantics are unchanged. Pruning does shrink the
// sample space (that is the point), so datasets built with the surrogate
// are not byte-identical to plain builds; builds without this option are
// untouched. Everything remains deterministic per seed, for any worker
// count, and independent of result-store state: the shortlist is decided
// before the store is consulted, so cold and warm builds select — and
// therefore produce — exactly the same dataset.
func WithSurrogate(cfg surrogate.Config) Option {
	return func(o *buildOptions) { o.surrogate = &cfg }
}

// surrogateState is the per-build pruning state.
type surrogateState struct {
	cfg   surrogate.Config
	model *surrogate.Model
	rng   *rand.Rand // audit draws only; the search rng is untouched

	feats    map[PhaseID][]float64            // Featurize(trace.Measure) cache
	observed map[PhaseID]map[arch.Config]bool // guards double-training

	// Telemetry sums (mirrored into the obs gauges as running means).
	pruned, audited, exact uint64
	corrSum                float64
	corrN                  int
	regretSum              float64
	regretN                int
}

func newSurrogateState(cfg surrogate.Config, scaleSeed uint64) *surrogateState {
	cfg = cfg.Normalized()
	seed := cfg.Seed
	if seed == 0 {
		seed = scaleSeed
	}
	return &surrogateState{
		cfg:      cfg,
		model:    surrogate.NewModel(surrogate.PhaseDim, cfg),
		rng:      rand.New(rand.NewPCG(seed, 0xa0d17ca11)),
		feats:    map[PhaseID][]float64{},
		observed: map[PhaseID]map[arch.Config]bool{},
	}
}

// countExact attributes one exact in-sample simulation to the search
// budget (see obsSimsExact).
func (ds *Dataset) countExact() {
	if !ds.inSearch {
		return
	}
	obsSimsExact.Inc()
	if ds.sur != nil {
		ds.sur.exact++
	}
}

// phaseFeatures returns the cached surrogate feature vector for a phase.
// Trace statistics are available before any simulation, unlike profiling
// counters (profiling runs after the search), so the surrogate can rank
// from the very first batch.
func (s *surrogateState) phaseFeatures(ds *Dataset, id PhaseID) []float64 {
	if f, ok := s.feats[id]; ok {
		return f
	}
	f := surrogate.Featurize(trace.Measure(ds.traces[id]))
	s.feats[id] = f
	return f
}

// maybeFit refits the ridge model if enough observations arrived. A solve
// failure (numerically impossible with lambda > 0, but cheap to tolerate)
// just leaves the previous weights in place — or, before the first fit,
// keeps the model un-ready, which disables pruning: the safe fallback.
func (s *surrogateState) maybeFit() {
	m := s.model
	if m.Observations() < s.cfg.MinTrain {
		return
	}
	if m.Ready() && m.SinceFit() < s.cfg.Refit {
		return
	}
	// Span args stay deterministic: the observation count is a pure
	// function of the build's progress, never of timing or store state.
	sp := obs.DefaultTracer().Start("surrogate.fit").
		SetArg("observations", strconv.Itoa(m.Observations()))
	_ = m.Fit()
	sp.Finish()
}

// observe trains the model on one exact result, at most once per
// (phase, config) so repeated promotions don't double-weight a sample.
func (s *surrogateState) observe(ds *Dataset, id PhaseID, cfg arch.Config) {
	seen := s.observed[id]
	if seen == nil {
		seen = map[arch.Config]bool{}
		s.observed[id] = seen
	}
	if seen[cfg] {
		return
	}
	e := ds.results[id][cfg]
	if e == nil {
		return
	}
	seen[cfg] = true
	s.model.Observe(s.phaseFeatures(ds, id), cfg, e.res.Efficiency)
}

// pickAudit draws k distinct elements from pool without replacement
// (partial Fisher-Yates on a copy), returning them sorted ascending so
// downstream evaluation order is position-stable.
func pickAudit(rng *rand.Rand, pool []int, k int) []int {
	if k >= len(pool) {
		out := append([]int(nil), pool...)
		sort.Ints(out)
		return out
	}
	tmp := append([]int(nil), pool...)
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		j := i + rng.IntN(len(tmp)-i)
		tmp[i], tmp[j] = tmp[j], tmp[i]
		out = append(out, tmp[i])
	}
	sort.Ints(out)
	return out
}

// surveyBatch is the surrogate-mode replacement for runBatch: it decides
// which of cfgs deserve exact simulation, runs exactly those, and trains
// the model on the results.
//
// The selection depends only on the memo table, the model and the audit
// rng — never on the result store — so cold and warm builds choose the
// same shortlist (store hits then merely make the chosen simulations
// free, exactly as CLAUDE.md requires of them). Memoised candidates are
// always promoted: their exact result is already paid for, pruning it
// would discard information.
func (ds *Dataset) surveyBatch(id PhaseID, cfgs []arch.Config) error {
	s := ds.sur
	s.maybeFit()

	ph := s.phaseFeatures(ds, id)
	seen := make(map[arch.Config]bool, len(cfgs))
	known := make([]int, 0, len(cfgs))
	unknown := make([]int, 0, len(cfgs))
	for i, cfg := range cfgs {
		if seen[cfg] {
			continue
		}
		seen[cfg] = true
		if m := ds.results[id]; m != nil {
			if _, hit := m[cfg]; hit {
				known = append(known, i)
				continue
			}
		}
		unknown = append(unknown, i)
	}

	selected := unknown
	var scores []float64 // predicted log-eff by batch index, nil when not pruning
	var topk map[arch.Config]bool
	if s.model.Ready() && len(unknown) > s.cfg.ShortlistSize(len(unknown)) {
		cands := make([]arch.Config, len(unknown))
		for i, idx := range unknown {
			cands[i] = cfgs[idx]
		}
		sp := obs.DefaultTracer().Start("surrogate.rank "+id.String()).
			SetArg("candidates", strconv.Itoa(len(unknown)))
		order, candScores := s.model.Rank(ph, cands)
		k := s.cfg.ShortlistSize(len(unknown))
		keep, rest := order[:k], order[k:]
		a := s.cfg.AuditSize(len(rest))
		audit := pickAudit(s.rng, rest, a)
		sp.SetArg("shortlist", strconv.Itoa(k)).SetArg("audit", strconv.Itoa(a))
		sp.Finish()
		topk = make(map[arch.Config]bool, k)
		for _, j := range keep {
			topk[cands[j]] = true
		}
		sel := append(append([]int(nil), keep...), audit...)
		sort.Ints(sel) // back to batch order: evaluation order stays position-stable
		selected = make([]int, len(sel))
		for i, j := range sel {
			selected[i] = unknown[j]
		}
		nPruned := uint64(len(rest) - a)
		s.pruned += nPruned
		s.audited += uint64(a)
		obsSurrogatePruned.Add(nPruned)
		obsSurrogateAudited.Add(uint64(a))
		scores = make([]float64, len(cfgs))
		for i, idx := range unknown {
			scores[idx] = candScores[i]
		}
	}

	// Evaluate promotions and the shortlist in batch order through
	// runBatch, which handles memo, store and the worker fan-out with the
	// usual byte-identical side-effect ordering.
	eval := append(append([]int(nil), known...), selected...)
	sort.Ints(eval)
	evalCfgs := make([]arch.Config, len(eval))
	for i, idx := range eval {
		evalCfgs[i] = cfgs[idx]
	}
	if err := ds.runBatch(id, evalCfgs); err != nil {
		return err
	}
	for _, cfg := range evalCfgs {
		s.observe(ds, id, cfg)
	}

	// Audit metrics: over the exact-simulated slice, compare the model's
	// ordering with reality (rank correlation) and measure what the
	// shortlist left on the table against the audited candidates (regret).
	if scores != nil && len(selected) >= 2 {
		pred := make([]float64, 0, len(selected))
		actual := make([]float64, 0, len(selected))
		bestAll, bestKeep := math.Inf(-1), math.Inf(-1)
		for _, idx := range selected {
			cfg := cfgs[idx]
			e := ds.results[id][cfg]
			if e == nil {
				continue
			}
			pred = append(pred, scores[idx])
			actual = append(actual, e.res.Efficiency)
			if e.res.Efficiency > bestAll {
				bestAll = e.res.Efficiency
			}
			if topk[cfg] && e.res.Efficiency > bestKeep {
				bestKeep = e.res.Efficiency
			}
		}
		if len(pred) >= 3 {
			s.corrSum += surrogate.Spearman(pred, actual)
			s.corrN++
			obsSurrogateRankCorr.Set(s.corrSum / float64(s.corrN))
		}
		if bestAll > 0 && !math.IsInf(bestKeep, -1) {
			regret := 1 - bestKeep/bestAll
			if regret < 0 {
				regret = 0
			}
			s.regretSum += regret
			s.regretN++
			obsSurrogateRegret.Set(s.regretSum / float64(s.regretN))
		}
		if mae, n := s.model.Calibration(); n > 0 {
			obsSurrogateCalibMAE.Set(mae)
		}
	}
	return nil
}

// searchPhaseSurrogate is searchPhase with every stage routed through
// surveyBatch. Stage 2 draws all its neighbours of the post-stage-1
// incumbent up front (the off-mode path refines Best draw by draw; under
// pruning a single ranked batch spends the same budget better). The
// search rng consumption therefore differs from the plain build — allowed,
// because surrogate-on builds are a different (still deterministic)
// protocol; the plain path is untouched.
func (ds *Dataset) searchPhaseSurrogate(id PhaseID, rng *rand.Rand) error {
	if err := ds.surveyBatch(id, ds.SharedConfigs); err != nil {
		return err
	}
	if n := ds.Scale.LocalSamples; n > 0 {
		cands := make([]arch.Config, 0, n)
		for i := 0; i < n; i++ {
			cands = append(cands, arch.Neighbor(ds.Best[id], rng))
		}
		if err := ds.surveyBatch(id, cands); err != nil {
			return err
		}
	}
	for _, p := range ds.Scale.SweepParams {
		if err := ds.surveyBatch(id, arch.Sweep(ds.Best[id], p)); err != nil {
			return err
		}
	}
	return nil
}

// computeBestStaticSurrogate picks the best overall static configuration
// when pruning has left holes in the shared-sample results: every shared
// config is scored by mean log efficiency across phases using exact
// results where memoised and surrogate estimates elsewhere, then the top
// few are validated with fully exact geometric means (via Result, so the
// validation sims stay out of the sample space) and the winner of that
// exact comparison becomes BestStatic. Estimates influence which configs
// get validated — a search decision — never the recorded score.
func (ds *Dataset) computeBestStaticSurrogate() {
	s := ds.sur
	sp := obs.DefaultTracer().Start("surrogate.best-static").
		SetArg("shared", strconv.Itoa(len(ds.SharedConfigs)))
	defer sp.Finish()
	s.maybeFit()
	type scored struct {
		idx   int
		score float64
	}
	ranked := make([]scored, 0, len(ds.SharedConfigs))
	for i, cfg := range ds.SharedConfigs {
		sum, n := 0.0, 0
		for _, id := range ds.Phases {
			if m := ds.results[id]; m != nil {
				if e, ok := m[cfg]; ok {
					if e.res.Efficiency > 0 {
						sum += math.Log(e.res.Efficiency)
						n++
					}
					continue
				}
			}
			if s.model.Ready() {
				sum += s.model.Predict(s.phaseFeatures(ds, id), cfg)
				n++
			}
		}
		sc := math.Inf(-1)
		if n > 0 {
			sum /= float64(n)
			sc = sum
		}
		ranked = append(ranked, scored{i, sc})
	}
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].score > ranked[b].score })

	const validate = 3
	bestScore := -1.0
	for i := 0; i < len(ranked) && i < validate; i++ {
		cfg := ds.SharedConfigs[ranked[i].idx]
		var effs []float64
		for _, id := range ds.Phases {
			res, err := ds.Result(id, cfg)
			if err != nil {
				return
			}
			effs = append(effs, res.Efficiency)
		}
		if score := stats.GeoMean(effs); score > bestScore {
			bestScore = score
			ds.BestStatic = cfg
		}
	}
}

// perProgramStaticSurrogate prunes the per-program limit study the same
// way the search is pruned: candidates are ranked by mean (exact where
// known, estimated elsewhere) log efficiency over the program's phases,
// and only the shortlist plus an audit slice is exact-evaluated. The
// best-overall-static configuration is always evaluated too, anchoring
// the argmax so the per-program row can never fall below 1.0, and every
// exact evaluation joins the sample space exactly as in the plain path,
// keeping the oracle an upper bound.
func (ds *Dataset) perProgramStaticSurrogate(program string) arch.Config {
	s := ds.sur
	s.maybeFit()
	phases := ds.ProgramPhases(program)

	candidates := append([]arch.Config{}, ds.SharedConfigs...)
	for _, id := range phases {
		candidates = append(candidates, ds.Best[id])
	}
	seen := map[arch.Config]bool{}
	evaluate := map[arch.Config]bool{ds.BestStatic: true}
	var unknown []int
	for i, cfg := range candidates {
		if seen[cfg] {
			continue
		}
		seen[cfg] = true
		if cfg == ds.BestStatic {
			continue
		}
		unknown = append(unknown, i)
	}

	if s.model.Ready() && len(unknown) > s.cfg.ShortlistSize(len(unknown)) {
		sp := obs.DefaultTracer().Start("surrogate.shortlist "+program).
			SetArg("candidates", strconv.Itoa(len(unknown)))
		score := func(cfg arch.Config) float64 {
			sum, n := 0.0, 0
			for _, id := range phases {
				if m := ds.results[id]; m != nil {
					if e, ok := m[cfg]; ok && e.res.Efficiency > 0 {
						sum += math.Log(e.res.Efficiency)
						n++
						continue
					}
				}
				sum += s.model.Predict(s.phaseFeatures(ds, id), cfg)
				n++
			}
			if n == 0 {
				return math.Inf(-1)
			}
			return sum / float64(n)
		}
		order := append([]int(nil), unknown...)
		scores := map[int]float64{}
		for _, i := range unknown {
			scores[i] = score(candidates[i])
		}
		sort.SliceStable(order, func(a, b int) bool {
			if scores[order[a]] != scores[order[b]] {
				return scores[order[a]] > scores[order[b]]
			}
			return order[a] < order[b]
		})
		k := s.cfg.ShortlistSize(len(unknown))
		keep, rest := order[:k], order[k:]
		a := s.cfg.AuditSize(len(rest))
		audit := pickAudit(s.rng, rest, a)
		for _, i := range keep {
			evaluate[candidates[i]] = true
		}
		for _, i := range audit {
			evaluate[candidates[i]] = true
		}
		nPruned := uint64(len(rest) - a)
		s.pruned += nPruned
		s.audited += uint64(a)
		obsSurrogatePruned.Add(nPruned)
		obsSurrogateAudited.Add(uint64(a))
		sp.SetArg("shortlist", strconv.Itoa(k)).SetArg("audit", strconv.Itoa(a))
		sp.Finish()
	} else {
		for _, i := range unknown {
			evaluate[candidates[i]] = true
		}
	}

	bestScore := -1.0
	best := ds.BestStatic
	done := map[arch.Config]bool{}
	scan := append([]arch.Config{ds.BestStatic}, candidates...)
	for _, cfg := range scan {
		if !evaluate[cfg] || done[cfg] {
			continue
		}
		done[cfg] = true
		for _, id := range phases {
			if _, err := ds.SampleResult(id, cfg); err != nil {
				return ds.BestStatic
			}
			s.observe(ds, id, cfg)
		}
		score := ds.RatioMean(phases, Static(cfg))
		if score > bestScore {
			bestScore = score
			best = cfg
		}
	}
	return best
}

// SurrogateSummary reports the surrogate's lifetime statistics for this
// dataset build (nil when the build ran without WithSurrogate). Exact is
// the number of exact simulations the three-stage search paid for —
// repro_sims_exact, the counter the >=2x reduction claim is measured on;
// Pruned and Audited count candidate evaluations skipped and
// spot-checked across the search and the per-program limit study.
type SurrogateSummary struct {
	Exact        uint64
	Pruned       uint64
	Audited      uint64
	Observations int
	Fits         int
	// RankCorr is the mean Spearman correlation between predicted and
	// exact orderings over audited batches; Regret the mean efficiency
	// the shortlist's best gave up against the audited best (0 = the
	// shortlist always contained the winner). CalibMAE is the model's
	// prequential mean absolute error in log-efficiency.
	RankCorr float64
	Regret   float64
	CalibMAE float64
}

// SurrogateSummary returns the build's surrogate statistics, or nil for a
// plain build.
func (ds *Dataset) SurrogateSummary() *SurrogateSummary {
	s := ds.sur
	if s == nil {
		return nil
	}
	out := &SurrogateSummary{
		Exact:        s.exact,
		Pruned:       s.pruned,
		Audited:      s.audited,
		Observations: s.model.Observations(),
		Fits:         s.model.Fits(),
	}
	if s.corrN > 0 {
		out.RankCorr = s.corrSum / float64(s.corrN)
	}
	if s.regretN > 0 {
		out.Regret = s.regretSum / float64(s.regretN)
	}
	out.CalibMAE, _ = s.model.Calibration()
	return out
}
