package experiment

import (
	"bytes"
	"context"
	"os"
	"testing"

	"repro/internal/store"
)

// TestWithSearchLimitPrefix pins the property the fabric shards lean on:
// a build stopped after the first n phases simulates exactly the same
// units, in the same order, as the prefix of a full build — its store log
// is a byte-prefix of the full build's log — and skips every stage after
// the search (best-static, good sets, profiling, features).
func TestWithSearchLimitPrefix(t *testing.T) {
	sc := TestScale()
	ctx := context.Background()

	fullDir := t.TempDir()
	fullStore, err := store.Open(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(ctx, sc, WithStore(fullStore))
	if err != nil {
		t.Fatal(err)
	}
	if err := fullStore.Close(); err != nil {
		t.Fatal(err)
	}

	partDir := t.TempDir()
	partStore, err := store.Open(partDir)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Build(ctx, sc, WithStore(partStore), WithSearchLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := partStore.Close(); err != nil {
		t.Fatal(err)
	}

	if len(part.Phases) != 3 {
		t.Fatalf("partial build holds %d phases, want 3", len(part.Phases))
	}
	if got, want := part.Phases[0], full.Phases[0]; got != want {
		t.Fatalf("partial build starts at %v, full at %v", got, want)
	}
	if len(part.Good) != 0 || len(part.ProfileRes) != 0 || len(part.FeaturesAdv) != 0 {
		t.Fatalf("partial build ran post-search stages: %d good sets, %d profiles, %d feature vectors",
			len(part.Good), len(part.ProfileRes), len(part.FeaturesAdv))
	}

	fullLog, err := os.ReadFile(store.HeadLog(fullDir))
	if err != nil {
		t.Fatal(err)
	}
	partLog, err := os.ReadFile(store.HeadLog(partDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(partLog) >= len(fullLog) {
		t.Fatalf("partial log (%d bytes) is not shorter than the full log (%d bytes)", len(partLog), len(fullLog))
	}
	if !bytes.Equal(partLog, fullLog[:len(partLog)]) {
		t.Fatal("partial build's store log is not a byte-prefix of the full build's")
	}
}

// TestWithSearchLimitFullIsNoOp: a limit covering every phase (or <= 0)
// leaves the build byte-identical to one without the option.
func TestWithSearchLimitFullIsNoOp(t *testing.T) {
	sc := TestScale()
	ctx := context.Background()
	plain, err := Build(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := Build(ctx, sc, WithSearchLimit(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := limited.Digest(), plain.Digest(); got != want {
		t.Fatalf("WithSearchLimit(0) digest %s != plain digest %s", got, want)
	}
}

// TestPhaseIDsOrder pins the canonical phase order Partition windows cut:
// programs in Scale order, phases 0..PhasesPerProgram-1 within each.
func TestPhaseIDsOrder(t *testing.T) {
	sc := TestScale()
	ids := sc.PhaseIDs()
	if len(ids) != len(sc.Programs)*sc.PhasesPerProgram {
		t.Fatalf("%d phase IDs, want %d", len(ids), len(sc.Programs)*sc.PhasesPerProgram)
	}
	k := 0
	for _, prog := range sc.Programs {
		for ph := 0; ph < sc.PhasesPerProgram; ph++ {
			if ids[k].Program != prog || ids[k].Phase != ph {
				t.Fatalf("PhaseIDs[%d] = %+v, want {%s %d}", k, ids[k], prog, ph)
			}
			k++
		}
	}
}
