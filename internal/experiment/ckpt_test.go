package experiment

import (
	"bytes"
	"context"
	"os"
	"testing"

	"repro/internal/cpu"
	"repro/internal/store"
)

// ckptScale is a reduced build for the checkpoint identity tests: large
// enough to exercise every stage (shared batch, local refinement,
// profiling), small enough to build several times in one test run.
func ckptScale() Scale {
	sc := TestScale()
	sc.Programs = []string{"mcf", "crafty"}
	sc.PhasesPerProgram = 1
	sc.UniformSamples = 6
	sc.LocalSamples = 2
	return sc
}

// buildLogs builds at ckptScale with a store and returns the dataset, the
// result log's bytes and the snapshot sidecar's bytes (nil when absent).
func buildLogs(t *testing.T, opts ...Option) (*Dataset, []byte, []byte) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Build(context.Background(), ckptScale(), append([]Option{WithStore(st)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := os.ReadFile(store.HeadLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(store.SnapLog(dir))
	if os.IsNotExist(err) {
		snap = nil
	} else if err != nil {
		t.Fatal(err)
	}
	return ds, res, snap
}

// TestWarmupCheckpointsIdentity is the amortisation-never-approximation
// contract at the build level: a checkpointed build must produce the
// byte-identical dataset, result log and search-simulation count as the
// plain build — only warmup execution is allowed to move — and with the
// option off no snapshot sidecar may even exist.
func TestWarmupCheckpointsIdentity(t *testing.T) {
	sims0 := SearchSimCount()
	plain, plainRes, plainSnap := buildLogs(t)
	plainSims := SearchSimCount() - sims0

	sims0 = SearchSimCount()
	ck, ckRes, ckSnap := buildLogs(t, WithWarmupCheckpoints())
	ckSims := SearchSimCount() - sims0

	if plainSnap != nil {
		t.Error("checkpoint-off build wrote a snapshot sidecar")
	}
	if len(ckSnap) == 0 {
		t.Error("checkpointed build wrote no snapshot sidecar")
	}
	if got, want := ck.Digest(), plain.Digest(); got != want {
		t.Errorf("dataset digest: checkpointed %s, plain %s", got, want)
	}
	if !bytes.Equal(ckRes, plainRes) {
		t.Errorf("results.log differs: plain %d bytes, checkpointed %d bytes", len(plainRes), len(ckRes))
	}
	if ckSims != plainSims {
		t.Errorf("searchSims: checkpointed %d, plain %d", ckSims, plainSims)
	}
}

// TestWarmupCheckpointsWorkersIdentity extends the WithWorkers contract
// to the snapshot sidecar: any worker count must produce byte-identical
// results.log AND snapshots.log — snapshot commits stay serialised in
// the sequential build's order.
func TestWarmupCheckpointsWorkersIdentity(t *testing.T) {
	seq, seqRes, seqSnap := buildLogs(t, WithWarmupCheckpoints(), WithWorkers(1))
	par, parRes, parSnap := buildLogs(t, WithWarmupCheckpoints(), WithWorkers(4))
	if got, want := par.Digest(), seq.Digest(); got != want {
		t.Errorf("dataset digest: workers=4 %s, sequential %s", got, want)
	}
	if !bytes.Equal(seqRes, parRes) {
		t.Errorf("results.log differs: sequential %d bytes, workers=4 %d bytes", len(seqRes), len(parRes))
	}
	if !bytes.Equal(seqSnap, parSnap) {
		t.Errorf("snapshots.log differs: sequential %d bytes, workers=4 %d bytes", len(seqSnap), len(parSnap))
	}
	if len(seqSnap) == 0 {
		t.Error("checkpointed builds wrote no snapshots")
	}
}

// TestWarmupCheckpointsWarmReplay is the payoff: a second build against
// the same store must restore every warmup it needs (profiling included)
// instead of re-executing it, cutting executed warmup instructions by far
// more than 2x while reproducing the byte-identical dataset.
func TestWarmupCheckpointsWarmReplay(t *testing.T) {
	dir := t.TempDir()
	build := func() (*Dataset, uint64, uint64) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		w0, r0 := cpu.WarmupInstructions(), cpu.WarmupRestores()
		ds, err := Build(context.Background(), ckptScale(), WithStore(st), WithWarmupCheckpoints())
		if err != nil {
			t.Fatal(err)
		}
		return ds, cpu.WarmupInstructions() - w0, cpu.WarmupRestores() - r0
	}
	cold, coldWarm, coldRestores := build()
	warm, warmWarm, warmRestores := build()

	if got, want := warm.Digest(), cold.Digest(); got != want {
		t.Errorf("warm replay digest %s, cold build %s", got, want)
	}
	if coldWarm == 0 {
		t.Fatal("cold build executed no warmup instructions")
	}
	if coldRestores != 0 {
		t.Errorf("cold build restored %d warmups from an empty store", coldRestores)
	}
	if warmRestores == 0 {
		t.Error("warm replay restored no warmups")
	}
	// The warm replay answers measurement runs from the result store and
	// profiling warmups from the snapshot sidecar, so executed warmup
	// instructions collapse — >=2x is the acceptance floor, the expected
	// value is zero.
	if warmWarm*2 > coldWarm {
		t.Errorf("warm replay executed %d warmup insts vs %d cold — less than a 2x cut", warmWarm, coldWarm)
	}
}

// TestWarmupCheckpointsSnapshotOnlyReplay exercises the pure-amortisation
// replay the benchmark measures: a store holding only the snapshot
// sidecar (no results) forces every measurement to re-simulate, but every
// warmup restores — the build digest must still match and the executed
// warmup instructions must collapse.
func TestWarmupCheckpointsSnapshotOnlyReplay(t *testing.T) {
	seed := t.TempDir()
	st, err := store.Open(seed)
	if err != nil {
		t.Fatal(err)
	}
	w0 := cpu.WarmupInstructions()
	cold, err := Build(context.Background(), ckptScale(), WithStore(st), WithWarmupCheckpoints())
	if err != nil {
		t.Fatal(err)
	}
	coldWarm := cpu.WarmupInstructions() - w0
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store directory seeded with the sidecar alone.
	snapOnly := t.TempDir()
	snap, err := os.ReadFile(store.SnapLog(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.SnapLog(snapOnly), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(snapOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	w0 = cpu.WarmupInstructions()
	replay, err := Build(context.Background(), ckptScale(), WithStore(st2), WithWarmupCheckpoints())
	if err != nil {
		t.Fatal(err)
	}
	replayWarm := cpu.WarmupInstructions() - w0

	if got, want := replay.Digest(), cold.Digest(); got != want {
		t.Errorf("snapshot-only replay digest %s, cold build %s", got, want)
	}
	if replayWarm*2 > coldWarm {
		t.Errorf("snapshot-only replay executed %d warmup insts vs %d cold", replayWarm, coldWarm)
	}
}
