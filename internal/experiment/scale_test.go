package experiment

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/surrogate"
)

// TestScaleBudget pins the per-phase candidate counts each preset implies
// — the budget every cost estimate (and the surrogate's reduction claim)
// is stated against.
func TestScaleBudget(t *testing.T) {
	cases := []struct {
		name string
		sc   Scale
		want SearchBudget
	}{
		{"test", TestScale(), SearchBudget{Uniform: 10, Local: 4, Sweep: 0}},
		{"default", DefaultScale(), SearchBudget{Uniform: 36, Local: 10, Sweep: 34}},
		{"zero-defaults", Scale{}, SearchBudget{Uniform: 16, Local: 0, Sweep: 0}},
		{
			"custom-sweeps",
			Scale{UniformSamples: 5, LocalSamples: 2, SweepParams: []arch.Param{arch.Width, arch.LSQSize}},
			SearchBudget{Uniform: 5, Local: 2, Sweep: arch.DomainSize(arch.Width) + arch.DomainSize(arch.LSQSize)},
		},
	}
	for _, tc := range cases {
		got := tc.sc.Budget()
		if got != tc.want {
			t.Errorf("%s: Budget() = %+v, want %+v", tc.name, got, tc.want)
		}
		if got.PerPhase() != got.Uniform+got.Local+got.Sweep {
			t.Errorf("%s: PerPhase() = %d, want the stage sum", tc.name, got.PerPhase())
		}
	}
	// DefaultScale's sweep budget must track the parameter domains it names.
	want := 0
	for _, p := range DefaultScale().SweepParams {
		want += arch.DomainSize(p)
	}
	if got := DefaultScale().Budget().Sweep; got != want {
		t.Errorf("default sweep budget = %d, want %d", got, want)
	}
}

// TestSurrogateSlicesRespectBudget asserts that for every stage batch a
// scale can produce, the surrogate's shortlist and audit slices fit
// inside the batch (never inflating the exact-simulation budget) and
// that the audit selection is deterministic per seed.
func TestSurrogateSlicesRespectBudget(t *testing.T) {
	cfg := surrogate.DefaultConfig()
	for _, sc := range []Scale{TestScale(), DefaultScale(), {}} {
		b := sc.Budget()
		batches := []int{b.Uniform, b.Local}
		for _, p := range sc.withDefaults().SweepParams {
			batches = append(batches, arch.DomainSize(p))
		}
		for _, n := range batches {
			k := cfg.ShortlistSize(n)
			a := cfg.AuditSize(n - k)
			if n > 0 && (k < 1 || k > n) {
				t.Errorf("batch %d: shortlist %d outside [1, n]", n, k)
			}
			if a < 0 || a > n-k {
				t.Errorf("batch %d: audit %d outside [0, pruned]", n, a)
			}
			if k+a > n {
				t.Errorf("batch %d: shortlist %d + audit %d exceeds the batch", n, k, a)
			}
			if n > 0 && k+a >= n && n > 2*cfg.MinKeep+2 {
				t.Errorf("batch %d: shortlist %d + audit %d leaves nothing to prune", n, k, a)
			}
		}
	}

	// Deterministic per seed: the same seed draws the same audit slice
	// from the same pruned pool; the slice always stays inside the pool.
	pool := make([]int, 28)
	for i := range pool {
		pool[i] = i
	}
	for _, seed := range []uint64{1, 2010, 0xfeed} {
		k := surrogate.DefaultConfig().AuditSize(len(pool))
		a := pickAudit(rand.New(rand.NewPCG(seed, 0xa0d17ca11)), pool, k)
		b := pickAudit(rand.New(rand.NewPCG(seed, 0xa0d17ca11)), pool, k)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: audit slice not deterministic: %v vs %v", seed, a, b)
		}
		if len(a) != k {
			t.Errorf("seed %d: audit slice size %d, want %d", seed, len(a), k)
		}
	}
}
