package experiment

import (
	"context"
	"sync"
	"testing"

	"repro/internal/altmodel"
	"repro/internal/arch"
	"repro/internal/counters"
)

// The dataset build is the expensive step; share one across tests.
var (
	dsOnce sync.Once
	dsVal  *Dataset
	dsErr  error
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsVal, dsErr = Build(context.Background(), TestScale())
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func TestBuildDatasetShape(t *testing.T) {
	ds := testDataset(t)
	sc := TestScale()
	wantPhases := len(sc.Programs) * sc.PhasesPerProgram
	if len(ds.Phases) != wantPhases {
		t.Fatalf("%d phases, want %d", len(ds.Phases), wantPhases)
	}
	if len(ds.SharedConfigs) != sc.UniformSamples {
		t.Errorf("%d shared configs, want %d", len(ds.SharedConfigs), sc.UniformSamples)
	}
	if ds.SharedConfigs[0] != arch.Baseline() {
		t.Errorf("shared configs must include the paper baseline first")
	}
	for _, id := range ds.Phases {
		if _, ok := ds.Best[id]; !ok {
			t.Errorf("phase %s has no best config", id)
		}
		if len(ds.Good[id]) == 0 {
			t.Errorf("phase %s has no good configs", id)
		}
		if len(ds.FeaturesAdv[id]) != counters.Dim(counters.Advanced) {
			t.Errorf("phase %s advanced features wrong dim", id)
		}
		if len(ds.FeaturesBasic[id]) != counters.Dim(counters.Basic) {
			t.Errorf("phase %s basic features wrong dim", id)
		}
	}
	if !ds.BestStatic.Valid() {
		t.Error("best static invalid")
	}
	if ds.SimCount() == 0 {
		t.Error("no simulations memoised")
	}
}

func TestGoodSetsContainBestAndRespectThreshold(t *testing.T) {
	ds := testDataset(t)
	for _, id := range ds.Phases {
		best := ds.Best[id]
		bestRes, _ := ds.Result(id, best)
		found := false
		for _, g := range ds.Good[id] {
			res, _ := ds.Result(id, g)
			if res.Efficiency < bestRes.Efficiency*ds.Scale.GoodThreshold-1e-9 {
				t.Errorf("phase %s good config below threshold", id)
			}
			if g == best {
				found = true
			}
		}
		if !found {
			t.Errorf("phase %s good set missing its best config", id)
		}
	}
}

func TestOracleBeatsStaticPerPhase(t *testing.T) {
	ds := testDataset(t)
	// By construction the per-phase best is at least as good as the best
	// static on every phase.
	for _, id := range ds.Phases {
		b, _ := ds.Result(id, ds.Best[id])
		s, _ := ds.Result(id, ds.BestStatic)
		if b.Efficiency < s.Efficiency-1e-9 {
			t.Errorf("phase %s: oracle %.3e below static %.3e", id, b.Efficiency, s.Efficiency)
		}
	}
	// And as a mean ratio.
	oracle := ds.RatioMean(ds.Phases, ds.Oracle())
	static := ds.RatioMean(ds.Phases, Static(ds.BestStatic))
	if oracle < static {
		t.Errorf("oracle mean ratio %.3f below static %.3f", oracle, static)
	}
	if static < 0.999 || static > 1.001 {
		t.Errorf("static self-ratio %.3f, want 1", static)
	}
}

func TestPerProgramStaticBetweenStaticAndOracle(t *testing.T) {
	ds := testDataset(t)
	for _, prog := range ds.Programs() {
		phases := ds.ProgramPhases(prog)
		static := ds.RatioMean(phases, Static(ds.BestStatic))
		perProg := ds.RatioMean(phases, Static(ds.PerProgramStatic(prog)))
		oracle := ds.RatioMean(phases, ds.Oracle())
		if perProg < static-1e-9 {
			t.Errorf("%s: per-program static %.3f below overall static %.3f", prog, perProg, static)
		}
		if oracle < perProg-1e-9 {
			t.Errorf("%s: oracle %.3f below per-program static %.3f", prog, oracle, perProg)
		}
	}
}

func TestEvaluateModelProducesValidConfigs(t *testing.T) {
	ds := testDataset(t)
	for _, set := range []counters.Set{counters.Basic, counters.Advanced} {
		ev, err := ds.EvaluateModel(set)
		if err != nil {
			t.Fatal(err)
		}
		if len(ev.Predicted) != len(ds.Phases) {
			t.Fatalf("%s: predicted %d phases, want %d", set, len(ev.Predicted), len(ds.Phases))
		}
		for id, cfg := range ev.Predicted {
			if !cfg.Valid() {
				t.Errorf("%s: phase %s predicted invalid config", set, id)
			}
		}
	}
}

func TestSuiteReportStructure(t *testing.T) {
	ds := testDataset(t)
	adv, err := ds.EvaluateModel(counters.Advanced)
	if err != nil {
		t.Fatal(err)
	}
	basic, err := ds.EvaluateModel(counters.Basic)
	if err != nil {
		t.Fatal(err)
	}
	rep := ds.Suite(adv, basic)
	if len(rep.Rows) != len(ds.Programs()) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(ds.Programs()))
	}
	for _, row := range rep.Rows {
		if row.Oracle < row.PerProgram-1e-9 || row.PerProgram < 1-1e-9 {
			t.Errorf("%s: ordering violated: perProg=%.2f oracle=%.2f", row.Program, row.PerProgram, row.Oracle)
		}
		if row.ModelAdvanced <= 0 || row.ModelBasic <= 0 {
			t.Errorf("%s: nonpositive model ratios", row.Program)
		}
		if row.PerfRatio <= 0 || row.EnergyRatio <= 0 {
			t.Errorf("%s: nonpositive breakdown ratios", row.Program)
		}
	}
	if rep.GeoOracle < 1 {
		t.Errorf("oracle geomean %.3f below 1", rep.GeoOracle)
	}
	if rep.Render() == "" || ds.TableIII().Render() == "" {
		t.Error("empty renders")
	}
}

func TestFigure7(t *testing.T) {
	ds := testDataset(t)
	adv, err := ds.EvaluateModel(counters.Advanced)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ds.Figure7(adv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.VsBaseline) != len(ds.Phases) || len(rep.VsBest) != len(ds.Phases) {
		t.Fatalf("distribution sizes wrong: %d/%d", len(rep.VsBaseline), len(rep.VsBest))
	}
	for _, v := range rep.VsBest {
		if v < 0 {
			t.Errorf("negative ratio %v", v)
		}
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure8(t *testing.T) {
	ds := testDataset(t)
	rep := ds.Figure8(arch.Width)
	if len(rep.Values) == 0 {
		t.Fatal("no width values covered")
	}
	totalPct := 0.0
	for _, v := range rep.Values {
		if v.Violin.Max > 1+1e-9 {
			t.Errorf("pinned-best ratio above 1: %+v", v)
		}
		totalPct += v.BestPct
	}
	if totalPct < 99 || totalPct > 101 {
		t.Errorf("best%% sums to %.1f, want 100", totalPct)
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure3(t *testing.T) {
	ds := testDataset(t)
	ids := []PhaseID{{"mcf", 0}, {"swim", 0}}
	rep, err := ds.Figure3(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("%d phases, want 2", len(rep.Phases))
	}
	for _, ph := range rep.Phases {
		maxEff := 0.0
		for _, e := range ph.Efficiency {
			if e > maxEff {
				maxEff = e
			}
		}
		if maxEff < 0.999 || maxEff > 1.001 {
			t.Errorf("%s: sweep not normalised to 1 (max %.3f)", ph.ID, maxEff)
		}
		if arch.IndexOf(arch.LSQSize, ph.BestLSQ) < 0 {
			t.Errorf("%s: bad best LSQ %d", ph.ID, ph.BestLSQ)
		}
	}
	if _, err := ds.Figure3([]PhaseID{{"nonexistent", 0}}); err == nil {
		t.Error("unknown phase accepted")
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

func TestTableIV(t *testing.T) {
	ds := testDataset(t)
	rep, err := ds.TableIV([]int{4, 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Agreement < 0 || row.Agreement > 1 {
			t.Errorf("agreement %v out of range", row.Agreement)
		}
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

func TestStorageAnalysis(t *testing.T) {
	ds := testDataset(t)
	rep, err := ds.StorageAnalysis(counters.Basic)
	if err != nil {
		t.Fatal(err)
	}
	wantWeights := counters.Dim(counters.Basic) * arch.TotalValues()
	if rep.Weights != wantWeights || rep.QuantBytes != wantWeights {
		t.Errorf("weights/bytes = %d/%d, want %d", rep.Weights, rep.QuantBytes, wantWeights)
	}
	if rep.AgreementPct < 50 {
		t.Errorf("8-bit agreement only %.1f%%", rep.AgreementPct)
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure1Small(t *testing.T) {
	rep, err := Figure1("gap", 1, 2000, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 10 { // 10 phases x 1 interval
		t.Fatalf("%d points, want 10", len(rep.Points))
	}
	for _, pt := range rep.Points {
		for _, w := range []int{4, 8} {
			if arch.IndexOf(arch.IQSize, pt.BestIQ[w]) < 0 {
				t.Errorf("interval %d width %d: bad IQ %d", pt.Interval, w, pt.BestIQ[w])
			}
			if arch.IndexOf(arch.RFSize, pt.BestRF[w]) < 0 {
				t.Errorf("interval %d width %d: bad RF %d", pt.Interval, w, pt.BestRF[w])
			}
		}
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

func TestScaleDefaults(t *testing.T) {
	var sc Scale
	d := sc.withDefaults()
	if len(d.Programs) != 26 || d.PhasesPerProgram != 10 || d.GoodThreshold != 0.95 {
		t.Errorf("defaults wrong: %+v", d)
	}
	if PhaseID.String(PhaseID{"mcf", 3}) != "mcf/3" {
		t.Error("PhaseID string wrong")
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	sc := TestScale()
	sc.Programs = []string{"gzip", "eon"}
	sc.PhasesPerProgram = 1
	sc.UniformSamples = 6
	sc.LocalSamples = 2
	a, err := Build(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestStatic != b.BestStatic {
		t.Errorf("best static differs: %v vs %v", a.BestStatic, b.BestStatic)
	}
	for _, id := range a.Phases {
		if a.Best[id] != b.Best[id] {
			t.Errorf("%s best differs", id)
		}
		fa, fb := a.FeaturesAdv[id], b.FeaturesAdv[id]
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("%s feature %d differs: %v vs %v", id, i, fa[i], fb[i])
			}
		}
	}
}

func TestRatioMeanOfStaticIsOne(t *testing.T) {
	ds := testDataset(t)
	if r := ds.RatioMean(ds.Phases, Static(ds.BestStatic)); r < 0.999 || r > 1.001 {
		t.Errorf("static self ratio %v", r)
	}
	// Ratios over a subset still positive and finite.
	sub := ds.Phases[:3]
	if r := ds.RatioMean(sub, ds.Oracle()); r < 1-1e-9 {
		t.Errorf("oracle subset ratio %v below 1", r)
	}
}

func TestEvaluateAltModels(t *testing.T) {
	ds := testDataset(t)
	for name, build := range map[string]func([]altmodel.TrainingPhase) (altmodel.Predictor, error){
		"knn":   func(tr []altmodel.TrainingPhase) (altmodel.Predictor, error) { return altmodel.NewKNN(1, tr) },
		"ridge": func(tr []altmodel.TrainingPhase) (altmodel.Predictor, error) { return altmodel.NewRidge(0.5, tr) },
		"table": func(tr []altmodel.TrainingPhase) (altmodel.Predictor, error) { return altmodel.NewTable(6, tr) },
	} {
		ev, err := ds.EvaluateAltModel(build)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ev.Predicted) != len(ds.Phases) {
			t.Fatalf("%s predicted %d phases", name, len(ev.Predicted))
		}
		for id, cfg := range ev.Predicted {
			if !cfg.Valid() {
				t.Errorf("%s: invalid prediction for %s", name, id)
			}
		}
		if r := ds.RatioMean(ds.Phases, ev.Choose()); r <= 0 {
			t.Errorf("%s: nonpositive ratio %v", name, r)
		}
	}
}

func TestAggregateEfficiencyConsistentWithPerf(t *testing.T) {
	ds := testDataset(t)
	choose := Static(ds.BestStatic)
	eff := ds.AggregateEfficiency(ds.Phases, choose)
	ips, joules := ds.AggregatePerf(ds.Phases, choose)
	if eff <= 0 || ips <= 0 || joules <= 0 {
		t.Fatalf("degenerate aggregates: eff=%v ips=%v J=%v", eff, ips, joules)
	}
	// eff = ips^3 / (J / seconds); recompute seconds from ips.
	var insts float64
	for _, id := range ds.Phases {
		res, _ := ds.Result(id, ds.BestStatic)
		insts += float64(res.Committed)
	}
	seconds := insts / ips
	watts := joules / seconds
	want := ips * ips * ips / watts
	if rel := (eff - want) / want; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("AggregateEfficiency %.6e inconsistent with AggregatePerf-derived %.6e", eff, want)
	}
}
