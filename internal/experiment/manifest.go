package experiment

import (
	"strings"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/store"
)

// FillBuildManifest records a finished dataset build into a run manifest,
// with the section split the manifest contract requires. Deterministic:
// the resolved scale, the store schema version and the dataset digest —
// everything a replay of the same configuration (cold or warm store, any
// worker count, surrogate flag held fixed) reproduces byte-for-byte,
// including the surrogate's selection statistics, which depend only on
// the seed. Timing: the simulation/memoisation counters, which depend on
// store warm state (a warm replay pays for fewer simulations — that is
// the point) and so must never be diffed exactly.
func FillBuildManifest(m *obs.Manifest, ds *Dataset) {
	sc := ds.Scale
	m.SetDet("scale.programs", strings.Join(sc.Programs, ","))
	m.SetDet("scale.phasesPerProgram", sc.PhasesPerProgram)
	m.SetDet("scale.intervalInsts", sc.IntervalInsts)
	m.SetDet("scale.warmupInsts", sc.WarmupInsts)
	m.SetDet("scale.uniformSamples", sc.UniformSamples)
	m.SetDet("scale.localSamples", sc.LocalSamples)
	m.SetDet("scale.sweepParams", len(sc.SweepParams))
	m.SetDet("scale.goodThreshold", sc.GoodThreshold)
	m.SetDet("scale.sampledSets", sc.SampledSets)
	m.SetDet("scale.seed", sc.Seed)
	m.SetDet("simVersion", store.SimVersion)
	m.SetDet("datasetDigest", ds.Digest())
	m.SetDet("phases", len(ds.Phases))
	m.SetDet("sharedConfigs", len(ds.SharedConfigs))
	m.SetDet("simCount", ds.SimCount())
	m.SetDet("surrogate", ds.sur != nil)
	m.SetDet("warmupCheckpoints", ds.ckpt != nil)
	if sum := ds.SurrogateSummary(); sum != nil {
		m.SetDet("surrogate.pruned", sum.Pruned)
		m.SetDet("surrogate.audited", sum.Audited)
		m.SetDet("surrogate.observations", sum.Observations)
		m.SetDet("surrogate.fits", sum.Fits)
		m.SetDet("surrogate.rankCorr", sum.RankCorr)
		m.SetDet("surrogate.regret", sum.Regret)
		m.SetDet("surrogate.calibMAE", sum.CalibMAE)
		m.SetTiming("surrogateExactSims", float64(sum.Exact))
	}
	hits, sims := MemoStats()
	m.SetTiming("memoHits", float64(hits))
	m.SetTiming("simulationsRun", float64(sims))
	m.SetTiming("searchSims", float64(SearchSimCount()))
	// Timing, not deterministic, even though they are integers: how many
	// warmup instructions actually executed (vs restored from a
	// checkpoint) depends on snapshot-store warm state, exactly like the
	// store hit counters above.
	m.SetTiming("warmupInsts", float64(cpu.WarmupInstructions()))
	m.SetTiming("warmupRestores", float64(cpu.WarmupRestores()))
}
