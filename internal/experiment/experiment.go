// Package experiment is the harness that reproduces the paper's
// evaluation: it gathers training data with the paper's three-stage design
// space search (Section V-C), derives the baselines (best overall static,
// per-program static, per-phase oracle), trains and evaluates the
// predictor with leave-one-out cross-validation (Section V-D), and
// regenerates every table and figure of the evaluation (see DESIGN.md's
// per-experiment index).
//
// Everything is parameterised by Scale, because the paper's 300,000
// ten-million-instruction simulations are far beyond a single-core budget:
// tests run a tiny scale, benchmarks a moderate one. All randomness is
// seeded; a Dataset build is deterministic for a given Scale.
package experiment

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/surrogate"
	"repro/internal/trace"
)

// Scale bounds the cost of dataset construction.
type Scale struct {
	// Programs to include (default: the full 26-benchmark suite).
	Programs []string
	// PhasesPerProgram <= trace.PhasesPerProgram phases per benchmark.
	PhasesPerProgram int
	// IntervalInsts is the measured instructions per phase simulation;
	// WarmupInsts run first to warm caches and predictors.
	IntervalInsts int
	WarmupInsts   int
	// UniformSamples configurations are drawn once and shared by all
	// phases (stage 1 of the paper's search; sharing makes "best overall
	// static" computable). LocalSamples neighbour configurations refine
	// each phase's incumbent (stage 2). SweepParams, if non-empty, runs
	// the one-at-a-time sweep (stage 3) over those parameters only.
	UniformSamples int
	LocalSamples   int
	SweepParams    []arch.Param
	// GoodThreshold selects training targets: configs within this factor
	// of the phase best (paper: 5% -> 0.95).
	GoodThreshold float64
	// SampledSets bounds profiling-run cache sampling (0 = all).
	SampledSets int
	// Seed drives all sampling.
	Seed uint64
}

// TestScale returns a tiny scale for unit tests.
func TestScale() Scale {
	return Scale{
		Programs:         []string{"mcf", "swim", "crafty", "gzip"},
		PhasesPerProgram: 2,
		IntervalInsts:    2500,
		WarmupInsts:      1200,
		UniformSamples:   10,
		LocalSamples:     4,
		GoodThreshold:    0.95,
		SampledSets:      16,
		Seed:             1,
	}
}

// DefaultScale returns the benchmark-harness scale: the full suite at a
// budget a single core can sustain.
func DefaultScale() Scale {
	return Scale{
		Programs:         trace.Benchmarks(),
		PhasesPerProgram: trace.PhasesPerProgram,
		IntervalInsts:    8000,
		WarmupInsts:      8000,
		UniformSamples:   36,
		LocalSamples:     10,
		SweepParams:      []arch.Param{arch.Width, arch.IQSize, arch.ICacheKB, arch.L2CacheKB, arch.DepthFO4},
		GoodThreshold:    0.95,
		SampledSets:      32,
		Seed:             2010,
	}
}

// SearchBudget is the per-phase exact-simulation budget a Scale implies
// for the three-stage search: how many candidate evaluations stage 1
// (shared uniform sample), stage 2 (local neighbours) and stage 3
// (one-at-a-time sweeps) request per phase. The surrogate's shortlist and
// audit slices (surrogate.Config.ShortlistSize / AuditSize) carve their
// budgets out of these counts.
type SearchBudget struct {
	Uniform int
	Local   int
	Sweep   int
}

// PerPhase is the total candidate evaluations per phase.
func (b SearchBudget) PerPhase() int { return b.Uniform + b.Local + b.Sweep }

// Budget returns the scale's per-phase search budget (after defaulting,
// exactly as Build would see it).
func (sc Scale) Budget() SearchBudget {
	sc = sc.withDefaults()
	b := SearchBudget{Uniform: sc.UniformSamples, Local: sc.LocalSamples}
	for _, p := range sc.SweepParams {
		b.Sweep += arch.DomainSize(p)
	}
	return b
}

func (sc Scale) withDefaults() Scale {
	if len(sc.Programs) == 0 {
		sc.Programs = trace.Benchmarks()
	}
	if sc.PhasesPerProgram <= 0 || sc.PhasesPerProgram > trace.PhasesPerProgram {
		sc.PhasesPerProgram = trace.PhasesPerProgram
	}
	if sc.IntervalInsts <= 0 {
		sc.IntervalInsts = 8000
	}
	if sc.WarmupInsts < 0 {
		sc.WarmupInsts = 0
	}
	if sc.UniformSamples <= 0 {
		sc.UniformSamples = 16
	}
	if sc.GoodThreshold <= 0 || sc.GoodThreshold >= 1 {
		sc.GoodThreshold = 0.95
	}
	return sc
}

// Resolved returns the scale with every defaulted field made explicit —
// the exact configuration Build runs. Fabric shard specs fingerprint this
// form, so a driver and a worker with nominally different zero values
// still agree on what they are building.
func (sc Scale) Resolved() Scale { return sc.withDefaults() }

// PhaseIDs returns the build's phase list — programs in configured order,
// phases in index order within each program, after defaulting. This is the
// canonical order Build simulates in and the order fabric shard windows
// index into.
func (sc Scale) PhaseIDs() []PhaseID {
	sc = sc.withDefaults()
	out := make([]PhaseID, 0, len(sc.Programs)*sc.PhasesPerProgram)
	for _, prog := range sc.Programs {
		for ph := 0; ph < sc.PhasesPerProgram; ph++ {
			out = append(out, PhaseID{prog, ph})
		}
	}
	return out
}

// PhaseID identifies one program phase.
type PhaseID struct {
	Program string
	Phase   int
}

// String renders "program/phase".
func (p PhaseID) String() string { return fmt.Sprintf("%s/%d", p.Program, p.Phase) }

// Dataset holds everything the evaluation needs: per-phase traces, all
// simulated (phase, configuration) results, per-phase bests and good sets,
// profiling features, and the shared candidate pool.
type Dataset struct {
	Scale  Scale
	Phases []PhaseID

	// SharedConfigs is the uniform sample evaluated on every phase.
	SharedConfigs []arch.Config

	results map[PhaseID]map[arch.Config]*entry
	traces  map[PhaseID][]trace.Inst

	// store, when non-nil, is the persistent result cache behind the
	// in-memory memo table: measurement-mode simulations are answered
	// from it when possible and appended to it when not. It supplies
	// result *values* only — the in-sample flag is always decided by
	// the caller, so a store hit and a fresh simulation are
	// indistinguishable to the search protocol and the oracle.
	store *store.Store

	// Best is the most efficient in-sample configuration found per phase
	// (the paper's "best dynamic" from the sample space). Model
	// predictions never update it, so Figure 7b can exceed 1 exactly as
	// the paper observes.
	Best map[PhaseID]arch.Config
	Good map[PhaseID][]arch.Config // within GoodThreshold of best at build time

	FeaturesAdv   map[PhaseID][]float64
	FeaturesBasic map[PhaseID][]float64
	ProfileRes    map[PhaseID]*cpu.Result

	trained map[counters.Set]*core.Predictor // TrainAll memo

	// workers bounds the simulation fan-out (see WithWorkers); 1 means
	// the fully sequential build.
	workers int

	// sur, when non-nil, is the surrogate-guided pruning state (see
	// WithSurrogate). nil keeps every code path byte-identical to the
	// plain build.
	sur *surrogateState

	// ckpt, when non-nil, is the warmup-checkpoint state (see
	// WithWarmupCheckpoints in ckpt.go). nil keeps every code path
	// byte-identical to the plain build.
	ckpt *ckptState

	// inSearch marks the three-stage search window of Build; exact
	// in-sample simulations inside it are the search budget the
	// repro_sims_exact counter (and the surrogate's >=2x claim) measures.
	inSearch bool

	// BestStatic is the shared configuration with the highest aggregate
	// efficiency across all phases (the paper's baseline, Table III).
	BestStatic arch.Config
}

// Option configures a dataset build. The zero configuration (no options)
// is a plain in-memory build.
type Option func(*buildOptions)

type buildOptions struct {
	store       *store.Store
	workers     int
	surrogate   *surrogate.Config
	searchLimit int
	warmCkpt    bool
}

// WithStore attaches a persistent result store to the build (nil is
// allowed and disables it, so callers can pass an optional store through
// unconditionally). Every measurement-mode simulation is first looked up
// in the store and, on a miss, appended to it immediately after running —
// a build interrupted mid-dataset resumes where it stopped on the next
// run, and a repeat run at the same scale replays from disk instead of
// simulating.
func WithStore(st *store.Store) Option {
	return func(o *buildOptions) { o.store = st }
}

// WithWorkers bounds the build's simulation fan-out: independent
// simulations within one batch (the shared uniform sample, each sweep
// batch, and the profiling pass) run on up to n goroutines. All side
// effects — memo inserts, sample-space promotion, best updates, store
// appends and telemetry spans — are applied strictly in the sequential
// build's order, so any worker count produces the byte-identical dataset
// and store log. Values below 1 (and the default) mean fully sequential,
// the right choice on a one-core machine.
func WithWorkers(n int) Option {
	return func(o *buildOptions) { o.workers = n }
}

// WithSearchLimit stops the build after the design-space search of the
// first n phases (in PhaseIDs order) and skips every later stage —
// best-static, good sets, profiling, features. The returned Dataset is
// deliberately partial: fabric shard workers (internal/fabric) use it to
// pay for exactly their phase window's simulations while the shared
// prefix [0, lo) replays warm from a seeded store, keeping the rng stream
// and every result byte-identical to the plain sequential build. Values
// <= 0 (and the default) run the full build.
func WithSearchLimit(n int) Option {
	return func(o *buildOptions) { o.searchLimit = n }
}

// Build runs the full data-gathering pipeline at the given scale: the
// single entry point (the deprecated BuildDataset/BuildDatasetCtx/
// BuildDatasetStore trio it replaced is gone). The pipeline checks ctx
// between phases (the per-phase granularity keeps a SIGINT during adaptd's
// first-boot training prompt without threading ctx into the simulator's
// inner loop); a cancelled build returns ctx.Err() wrapped with the stage
// it was in. Behaviour beyond that is opted into per call — see WithStore,
// WithWorkers and WithSurrogate.
func Build(ctx context.Context, sc Scale, opts ...Option) (*Dataset, error) {
	var bo buildOptions
	for _, opt := range opts {
		opt(&bo)
	}
	sc = sc.withDefaults()
	ds := &Dataset{
		Scale:         sc,
		results:       map[PhaseID]map[arch.Config]*entry{},
		traces:        map[PhaseID][]trace.Inst{},
		Best:          map[PhaseID]arch.Config{},
		Good:          map[PhaseID][]arch.Config{},
		FeaturesAdv:   map[PhaseID][]float64{},
		FeaturesBasic: map[PhaseID][]float64{},
		ProfileRes:    map[PhaseID]*cpu.Result{},
		store:         bo.store,
		workers:       bo.workers,
	}
	if ds.workers < 1 {
		ds.workers = 1
	}
	if bo.surrogate != nil {
		ds.sur = newSurrogateState(*bo.surrogate, sc.Seed)
	}
	if bo.warmCkpt {
		ds.ckpt = &ckptState{cache: map[store.Key][]byte{}}
	}

	tr := obs.DefaultTracer()
	root := tr.Start("experiment.build-dataset").
		SetArg("programs", strconv.Itoa(len(sc.Programs))).
		SetArg("phases-per-program", strconv.Itoa(sc.PhasesPerProgram))
	defer root.Finish()

	// Phase list and traces. A search limit (fabric shard worker) keeps
	// only the prefix — phases past the limit are never touched.
	phaseIDs := sc.PhaseIDs()
	limit := len(phaseIDs)
	partial := bo.searchLimit > 0
	if partial && bo.searchLimit < limit {
		limit = bo.searchLimit
	}
	sp := tr.Start("tracegen")
	for _, id := range phaseIDs[:limit] {
		g, err := trace.NewGenerator(id.Program, id.Phase)
		if err != nil {
			sp.Finish()
			return nil, err
		}
		ds.traces[id] = g.Interval(sc.IntervalInsts)
		ds.Phases = append(ds.Phases, id)
	}
	sp.Finish()

	// Stage 1: shared uniform sample.
	var rng *rand.Rand
	ds.SharedConfigs, rng = sharedSample(sc)

	// Simulate shared configs on every phase; refine per phase.
	ds.inSearch = true
	sp = tr.Start("search")
	for i, id := range ds.Phases {
		if err := ctx.Err(); err != nil {
			sp.Finish()
			return nil, fmt.Errorf("experiment: search cancelled: %w", err)
		}
		psp := tr.Start("search " + id.String())
		if err := ds.searchPhase(id, rng); err != nil {
			psp.Finish()
			sp.Finish()
			return nil, fmt.Errorf("experiment: phase %s: %w", id, err)
		}
		psp.Finish()
		reportProgress("search", i+1, len(ds.Phases))
	}
	sp.Finish()
	ds.inSearch = false

	// A limited build stops here: everything downstream of the search is
	// the final (merged-store) build's job.
	if partial {
		return ds, nil
	}

	sp = tr.Start("best-static")
	ds.computeBestStatic()
	sp.Finish()
	sp = tr.Start("good-sets")
	ds.computeGoodSets()
	sp.Finish()

	// Profile every phase on the profiling configuration. Profiling runs
	// are pure — never memoised, never stored — so with WithWorkers they
	// fan out as-is; spans, assignments and progress still land in phase
	// order, keeping the span tree and the dataset byte-identical.
	sp = tr.Start("profile")
	profOpts := cpu.Options{
		Collect:     true,
		SampledSets: sc.SampledSets,
		WarmupInsts: sc.WarmupInsts,
	}
	profRes := make([]*cpu.Result, len(ds.Phases))
	profErr := make([]error, len(ds.Phases))
	profCap := make([][]byte, len(ds.Phases))
	profKey := make([]store.Key, len(ds.Phases))
	profCk := make([]bool, len(ds.Phases))
	if ds.workers > 1 && len(ds.Phases) > 1 {
		// With checkpoints on, snapshot fetches happen here — before the
		// fan-out — and captured snapshots are handed back for the ordered
		// loop below to commit: the snapshot cache and sidecar are only
		// ever touched from sequential sections, so the sidecar's bytes
		// stay identical for any worker count.
		profSnap := make([][]byte, len(ds.Phases))
		if ds.ckpt != nil {
			for i, id := range ds.Phases {
				if key, ok := ds.ckptKey(id, arch.Profiling(), ds.traces[id], profOpts); ok {
					profCk[i], profKey[i] = true, key
					profSnap[i] = ds.ckptFetch(key)
				}
			}
		}
		work := make(chan int, len(ds.Phases))
		for i := range ds.Phases {
			work <- i
		}
		close(work)
		nw := ds.workers
		if nw > len(ds.Phases) {
			nw = len(ds.Phases)
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if profCk[i] {
						profRes[i], profCap[i], profErr[i] = ckptExec(arch.Profiling(), ds.traces[ds.Phases[i]], profOpts, profSnap[i])
						if profErr[i] == nil {
							obsSims.Inc()
						}
						continue
					}
					profRes[i], profErr[i] = ds.simulate(ds.Phases[i], arch.Profiling(), profOpts, false)
				}
			}()
		}
		wg.Wait()
	}
	for i, id := range ds.Phases {
		if err := ctx.Err(); err != nil {
			sp.Finish()
			return nil, fmt.Errorf("experiment: profiling cancelled: %w", err)
		}
		psp := tr.Start("profile " + id.String())
		res, err := profRes[i], profErr[i]
		if res == nil && err == nil {
			res, err = ds.simulate(id, arch.Profiling(), profOpts, false)
		}
		if err == nil && profCk[i] {
			err = ds.ckptCommit(profKey[i], profCap[i])
		}
		if err != nil {
			psp.Finish()
			sp.Finish()
			return nil, fmt.Errorf("experiment: profiling %s: %w", id, err)
		}
		psp.Finish()
		ds.ProfileRes[id] = res
		ds.FeaturesAdv[id] = counters.Features(res, counters.Advanced)
		ds.FeaturesBasic[id] = counters.Features(res, counters.Basic)
		reportProgress("profile", i+1, len(ds.Phases))
	}
	sp.Finish()
	return ds, nil
}

// sharedSample draws the stage-1 shared uniform candidate pool (always
// anchored on the paper's published baseline so comparisons have a common
// anchor) and returns the rng advanced exactly past those draws. The
// per-phase search stages continue on the same stream — the pool and the
// stream position are one deterministic unit, which is what lets a fabric
// shard worker replay the search prefix bit-for-bit before paying for its
// own window.
func sharedSample(sc Scale) ([]arch.Config, *rand.Rand) {
	rng := rand.New(rand.NewPCG(sc.Seed, 0x5ca1ab1e))
	seen := map[arch.Config]bool{}
	var shared []arch.Config
	add := func(c arch.Config) {
		if !seen[c] {
			seen[c] = true
			shared = append(shared, c)
		}
	}
	add(arch.Baseline())
	for len(shared) < sc.UniformSamples {
		add(arch.Random(rng))
	}
	return shared, rng
}

// SharedSample returns the stage-1 shared uniform sample a build at sc
// evaluates on every phase — the deterministically known-upfront slice of
// the search's work units, exposed for the fabric work partitioner and for
// tests.
func SharedSample(sc Scale) []arch.Config {
	shared, _ := sharedSample(sc.withDefaults())
	return shared
}

// entry is one memoised simulation result, tagged by whether it belongs to
// the sample space (search protocol and limit studies) or was evaluated
// only to score a model prediction.
type entry struct {
	res      *cpu.Result
	inSample bool
}

// searchPhase runs the three-stage search for one phase.
func (ds *Dataset) searchPhase(id PhaseID, rng *rand.Rand) error {
	if ds.sur != nil {
		return ds.searchPhaseSurrogate(id, rng)
	}
	// Stage 1: the shared uniform sample — a fixed batch, fanned across
	// the worker pool.
	if err := ds.runBatch(id, ds.SharedConfigs); err != nil {
		return err
	}
	// Stage 2: local neighbours of the incumbent. Inherently sequential:
	// each draw refines the Best the previous one may have moved.
	for i := 0; i < ds.Scale.LocalSamples; i++ {
		if _, err := ds.SampleResult(id, arch.Neighbor(ds.Best[id], rng)); err != nil {
			return err
		}
	}
	// Stage 3: one-at-a-time sweep of selected parameters. Each
	// parameter's batch is fixed by the incumbent before the batch runs,
	// exactly like the sequential loop (Best can only move between
	// parameters, never mid-sweep input).
	for _, p := range ds.Scale.SweepParams {
		if err := ds.runBatch(id, arch.Sweep(ds.Best[id], p)); err != nil {
			return err
		}
	}
	return nil
}

// batchElem classifies one batch configuration: already memoised, answered
// by the store, or needing a fresh simulation.
type batchElem struct {
	cfg  arch.Config
	res  *cpu.Result
	err  error
	kind uint8 // 0 memo hit, 1 store hit, 2 simulate

	// Warmup-checkpoint state for kind-2 elems when checkpointing is on
	// (ck). snap is the known snapshot prefetched at classification time
	// (nil runs the warmup); captured is the snapshot that warmup
	// produced, handed back for the ordered side-effect loop to commit.
	ck       bool
	skey     store.Key
	snap     []byte
	captured []byte
}

// runBatch evaluates cfgs on one phase in sample mode. With one worker it
// is exactly the sequential SampleResult loop. With more, it classifies
// every configuration first (no side effects), fans the fresh simulations
// across the pool, then applies all side effects — sample-space promotion,
// best updates, memo inserts and store appends — strictly in cfgs order:
// the dataset and the store log come out byte-identical to the sequential
// build for any worker count.
func (ds *Dataset) runBatch(id PhaseID, cfgs []arch.Config) error {
	if ds.workers <= 1 || len(cfgs) < 2 {
		for _, cfg := range cfgs {
			if _, err := ds.SampleResult(id, cfg); err != nil {
				return err
			}
		}
		return nil
	}
	insts, ok := ds.traces[id]
	if !ok {
		return fmt.Errorf("experiment: unknown phase %s", id)
	}
	opts := cpu.Options{WarmupInsts: ds.Scale.WarmupInsts}
	elems := make([]batchElem, len(cfgs))
	batchSeen := make(map[arch.Config]bool, len(cfgs))
	nmiss := 0
	for i, cfg := range cfgs {
		elems[i].cfg = cfg
		if batchSeen[cfg] {
			continue // duplicate: kind 0 resolves via SampleResult after the first lands
		}
		batchSeen[cfg] = true
		if m := ds.results[id]; m != nil {
			if _, hit := m[cfg]; hit {
				continue // kind 0
			}
		}
		if ds.store != nil {
			key := store.Fingerprint(id.Program, id.Phase, cfg, len(insts), opts.WarmupInsts)
			if res, hit := ds.store.Get(key); hit {
				elems[i].kind = 1
				elems[i].res = res
				continue
			}
		}
		elems[i].kind = 2
		// Snapshot prefetch happens here, sequentially: within a batch
		// every kind-2 config is distinct and the key pins the full
		// config, so batch "groups" by warmup key are singletons — each
		// elem is its own leader, warming once and committing below. If
		// the key projection is ever narrowed (see store.SnapshotKey),
		// later elems of a group restore what earlier elems committed in
		// the preceding batch, never mid-batch.
		if key, ok := ds.ckptKey(id, cfg, insts, opts); ok {
			elems[i].ck, elems[i].skey = true, key
			elems[i].snap = ds.ckptFetch(key)
		}
		nmiss++
	}
	if nmiss > 0 {
		work := make(chan int, nmiss)
		for i := range elems {
			if elems[i].kind == 2 {
				work <- i
			}
		}
		close(work)
		nw := ds.workers
		if nw > nmiss {
			nw = nmiss
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					e := &elems[i]
					if e.ck {
						e.res, e.captured, e.err = ckptExec(e.cfg, insts, opts, e.snap)
						continue
					}
					sim, err := cpu.New(e.cfg)
					if err != nil {
						e.err = err
						continue
					}
					e.res, e.err = sim.Run(cpu.NewSliceSource(insts), len(insts), opts)
				}
			}()
		}
		wg.Wait()
	}
	for i := range elems {
		e := &elems[i]
		switch e.kind {
		case 0:
			// Memo hit: SampleResult replays the promotion side effects.
			if _, err := ds.SampleResult(id, e.cfg); err != nil {
				return err
			}
		case 1:
			ds.memoize(id, e.cfg, e.res, true)
		default:
			if e.err != nil {
				return fmt.Errorf("experiment: phase %s: %w", id, e.err)
			}
			obsSims.Inc()
			ds.countExact()
			ds.memoize(id, e.cfg, e.res, true)
			if ds.store != nil {
				key := store.Fingerprint(id.Program, id.Phase, e.cfg, len(insts), opts.WarmupInsts)
				if err := ds.store.Put(key, e.res); err != nil {
					return fmt.Errorf("experiment: persisting %s result: %w", id, err)
				}
			}
			if e.ck {
				if err := ds.ckptCommit(e.skey, e.captured); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Result simulates (memoised) the phase under cfg with the dataset's
// measurement options and no counter collection. Results obtained this way
// do not join the sample space (use SampleResult for that).
func (ds *Dataset) Result(id PhaseID, cfg arch.Config) (*cpu.Result, error) {
	if m := ds.results[id]; m != nil {
		if e, ok := m[cfg]; ok {
			obsMemoHits.Inc()
			return e.res, nil
		}
	}
	return ds.simulate(id, cfg, cpu.Options{WarmupInsts: ds.Scale.WarmupInsts}, false)
}

// SampleResult is Result, but the configuration joins the phase's sample
// space and may become its new Best.
func (ds *Dataset) SampleResult(id PhaseID, cfg arch.Config) (*cpu.Result, error) {
	if m := ds.results[id]; m != nil {
		if e, ok := m[cfg]; ok {
			obsMemoHits.Inc()
			if !e.inSample {
				e.inSample = true
				obsSampleConfigs.Inc()
				ds.updateBest(id, cfg, e.res)
			}
			return e.res, nil
		}
	}
	return ds.simulate(id, cfg, cpu.Options{WarmupInsts: ds.Scale.WarmupInsts}, true)
}

// updateBest promotes cfg to the phase's best if it wins.
func (ds *Dataset) updateBest(id PhaseID, cfg arch.Config, res *cpu.Result) {
	cur, ok := ds.Best[id]
	if !ok {
		ds.Best[id] = cfg
		return
	}
	if e := ds.results[id][cur]; e == nil || res.Efficiency > e.res.Efficiency {
		ds.Best[id] = cfg
	}
}

// simulate runs and memoises one (phase, config) simulation. With a
// store attached, measurement-mode runs are read-through/write-behind:
// a stored result short-circuits the simulator, a fresh one is appended
// to the log right away (so an interrupted build loses nothing already
// paid for). Profiling runs (opts.Collect) are never cached — their
// RawCounters are not part of the record format — and, as before, never
// memoised.
func (ds *Dataset) simulate(id PhaseID, cfg arch.Config, opts cpu.Options, inSample bool) (*cpu.Result, error) {
	insts, ok := ds.traces[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown phase %s", id)
	}
	var key store.Key
	if !opts.Collect && ds.store != nil {
		key = store.Fingerprint(id.Program, id.Phase, cfg, len(insts), opts.WarmupInsts)
		if res, ok := ds.store.Get(key); ok {
			ds.memoize(id, cfg, res, inSample)
			return res, nil
		}
	}
	var res *cpu.Result
	if skey, ck := ds.ckptKey(id, cfg, insts, opts); ck {
		r, captured, err := ckptExec(cfg, insts, opts, ds.ckptFetch(skey))
		if err != nil {
			return nil, err
		}
		if err := ds.ckptCommit(skey, captured); err != nil {
			return nil, err
		}
		res = r
	} else {
		sim, err := cpu.New(cfg)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(cpu.NewSliceSource(insts), len(insts), opts)
		if err != nil {
			return nil, err
		}
		res = r
	}
	obsSims.Inc()
	if inSample && !opts.Collect {
		ds.countExact()
	}
	if !opts.Collect { // only cache the measurement-mode results
		ds.memoize(id, cfg, res, inSample)
		if ds.store != nil {
			if err := ds.store.Put(key, res); err != nil {
				return nil, fmt.Errorf("experiment: persisting %s result: %w", id, err)
			}
		}
	}
	return res, nil
}

// memoize records one measurement-mode result in the in-memory table,
// applying the sample-space side effects exactly as a fresh simulation
// would — store hits must be indistinguishable from simulations here, or
// the oracle/Figure-7b semantics drift between cold and warm runs.
func (ds *Dataset) memoize(id PhaseID, cfg arch.Config, res *cpu.Result, inSample bool) {
	m := ds.results[id]
	if m == nil {
		m = map[arch.Config]*entry{}
		ds.results[id] = m
	}
	m[cfg] = &entry{res: res, inSample: inSample}
	if inSample {
		obsSampleConfigs.Inc()
		ds.updateBest(id, cfg, res)
	}
}

// SimCount returns the number of memoised simulations (for reporting).
func (ds *Dataset) SimCount() int {
	n := 0
	for _, m := range ds.results {
		n += len(m)
	}
	return n
}

// SampleSpace returns the phase's in-sample configurations in a
// deterministic (lexicographic) order — the exact partition the search
// protocol and limit studies draw from, exposed so tests can assert that
// warm store rebuilds reproduce it bit for bit.
func (ds *Dataset) SampleSpace(id PhaseID) []arch.Config {
	var out []arch.Config
	for cfg, e := range ds.results[id] {
		if e.inSample {
			out = append(out, cfg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for p := arch.Param(0); p < arch.NumParams; p++ {
			if out[i][p] != out[j][p] {
				return out[i][p] < out[j][p]
			}
		}
		return false
	})
	return out
}

// computeBestStatic picks the shared configuration with the best average
// energy-efficiency across all phases (geometric mean of per-phase
// efficiencies, matching the paper's "best energy-efficiency on average
// across the benchmarks"; a time-weighted total would instead be dominated
// by the slowest phases).
func (ds *Dataset) computeBestStatic() {
	if ds.sur != nil {
		ds.computeBestStaticSurrogate()
		return
	}
	bestScore := -1.0
	for _, cfg := range ds.SharedConfigs {
		var effs []float64
		for _, id := range ds.Phases {
			res, err := ds.Result(id, cfg)
			if err != nil {
				return
			}
			effs = append(effs, res.Efficiency)
		}
		if score := stats.GeoMean(effs); score > bestScore {
			bestScore = score
			ds.BestStatic = cfg
		}
	}
}

// computeGoodSets fills Good with every in-sample config within
// GoodThreshold of the phase best.
func (ds *Dataset) computeGoodSets() {
	for _, id := range ds.Phases {
		bestRes := ds.results[id][ds.Best[id]].res
		cut := bestRes.Efficiency * ds.Scale.GoodThreshold
		var good []arch.Config
		for cfg, e := range ds.results[id] {
			if e.inSample && e.res.Efficiency >= cut {
				good = append(good, cfg)
			}
		}
		// Tie-break equal efficiencies lexicographically: good comes out
		// of map iteration, so without a total order its layout (and
		// anything downstream that reads Good[0], like training targets)
		// would vary run to run.
		sort.Slice(good, func(i, j int) bool {
			ei, ej := ds.results[id][good[i]].res.Efficiency, ds.results[id][good[j]].res.Efficiency
			if ei != ej {
				return ei > ej
			}
			for p := arch.Param(0); p < arch.NumParams; p++ {
				if good[i][p] != good[j][p] {
					return good[i][p] < good[j][p]
				}
			}
			return false
		})
		ds.Good[id] = good
	}
}

// AggregateEfficiency computes the physically aggregated ips^3/Watt of
// running each phase under choose(phase): total instructions and energy
// over total simulated time.
func (ds *Dataset) AggregateEfficiency(phases []PhaseID, choose func(PhaseID) arch.Config) float64 {
	var insts float64
	var seconds, energy float64
	for _, id := range phases {
		res, err := ds.Result(id, choose(id))
		if err != nil {
			return 0
		}
		insts += float64(res.Committed)
		seconds += res.SecondsSim
		energy += res.EnergyJ
	}
	if seconds == 0 || energy == 0 {
		return 0
	}
	ips := insts / seconds
	watts := energy / seconds
	return ips * ips * ips / watts
}

// AggregatePerf returns (ips, joules) aggregated over phases under
// choose(phase) — the Figure 5 breakdown inputs.
func (ds *Dataset) AggregatePerf(phases []PhaseID, choose func(PhaseID) arch.Config) (ips, joules float64) {
	var insts, seconds, energy float64
	for _, id := range phases {
		res, err := ds.Result(id, choose(id))
		if err != nil {
			return 0, 0
		}
		insts += float64(res.Committed)
		seconds += res.SecondsSim
		energy += res.EnergyJ
	}
	if seconds == 0 {
		return 0, 0
	}
	return insts / seconds, energy
}

// RatioMean returns the geometric mean over phases of the per-phase
// efficiency ratio of choose(phase) against the best overall static
// configuration — the normalisation the paper's Figures 4 and 6 bars use.
func (ds *Dataset) RatioMean(phases []PhaseID, choose func(PhaseID) arch.Config) float64 {
	var ratios []float64
	for _, id := range phases {
		num, err := ds.Result(id, choose(id))
		if err != nil {
			return 0
		}
		den, err := ds.Result(id, ds.BestStatic)
		if err != nil || den.Efficiency <= 0 {
			return 0
		}
		ratios = append(ratios, num.Efficiency/den.Efficiency)
	}
	return stats.GeoMean(ratios)
}

// ProgramPhases returns the dataset's phases belonging to program.
func (ds *Dataset) ProgramPhases(program string) []PhaseID {
	var out []PhaseID
	for _, id := range ds.Phases {
		if id.Program == program {
			out = append(out, id)
		}
	}
	return out
}

// Programs returns the distinct program names in dataset order.
func (ds *Dataset) Programs() []string {
	var out []string
	seen := map[string]bool{}
	for _, id := range ds.Phases {
		if !seen[id.Program] {
			seen[id.Program] = true
			out = append(out, id.Program)
		}
	}
	return out
}
