package experiment

import (
	"context"
	"fmt"

	"repro/internal/altmodel"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/obs"
	"repro/internal/softmax"
)

// features returns the phase's feature vector for the chosen counter set.
func (ds *Dataset) features(set counters.Set, id PhaseID) []float64 {
	if set == counters.Basic {
		return ds.FeaturesBasic[id]
	}
	return ds.FeaturesAdv[id]
}

// PerProgramStatic returns the best single configuration for one program:
// the candidate (shared pool plus the program's own per-phase bests) with
// the highest mean per-phase efficiency ratio over the program's phases
// (the specialised-static limit study of Figure 6). Candidate evaluations
// join the sample space, keeping the oracle an upper bound.
func (ds *Dataset) PerProgramStatic(program string) arch.Config {
	if ds.sur != nil {
		return ds.perProgramStaticSurrogate(program)
	}
	phases := ds.ProgramPhases(program)
	candidates := append([]arch.Config{}, ds.SharedConfigs...)
	for _, id := range phases {
		candidates = append(candidates, ds.Best[id])
	}
	bestScore := -1.0
	var best arch.Config
	for _, cfg := range candidates {
		for _, id := range phases {
			if _, err := ds.SampleResult(id, cfg); err != nil {
				return ds.BestStatic
			}
		}
		score := ds.RatioMean(phases, Static(cfg))
		if score > bestScore {
			bestScore = score
			best = cfg
		}
	}
	return best
}

// Oracle returns the per-phase best chooser (the ideal dynamic scheme of
// Figure 6).
func (ds *Dataset) Oracle() func(PhaseID) arch.Config {
	return func(id PhaseID) arch.Config { return ds.Best[id] }
}

// Static returns a chooser that always picks cfg.
func Static(cfg arch.Config) func(PhaseID) arch.Config {
	return func(PhaseID) arch.Config { return cfg }
}

// Evaluation holds a leave-one-out model evaluation: the configuration
// predicted for every phase by a model that never saw that phase's
// program during training.
type Evaluation struct {
	Set       counters.Set
	Predicted map[PhaseID]arch.Config
}

// Choose returns the evaluation's per-phase chooser.
func (e *Evaluation) Choose() func(PhaseID) arch.Config {
	return func(id PhaseID) arch.Config { return e.Predicted[id] }
}

// TrainOptions returns the soft-max options used throughout the harness:
// the paper's settings (lambda = 0.5, weights initialised to 1,
// Polak-Ribiere conjugate gradients), run close to convergence as the
// paper's off-line training does.
func TrainOptions() softmax.Options {
	o := softmax.DefaultOptions()
	o.MaxIter = 150
	return o
}

// phaseExamples assembles the training examples for the given phases.
func (ds *Dataset) phaseExamples(set counters.Set, phases []PhaseID) []core.PhaseExample {
	out := make([]core.PhaseExample, 0, len(phases))
	for _, id := range phases {
		out = append(out, core.PhaseExample{
			Features: ds.features(set, id),
			Good:     ds.Good[id],
		})
	}
	return out
}

// TrainAll trains a predictor on every phase in the dataset (no held-out
// program) — used by the controller examples and the storage analysis.
// The result is memoised per counter set, since several experiments share
// it.
func (ds *Dataset) TrainAll(set counters.Set) (*core.Predictor, error) {
	return ds.TrainAllCtx(context.Background(), set)
}

// TrainAllCtx is TrainAll with cooperative cancellation, forwarded to the
// per-parameter training loop.
func (ds *Dataset) TrainAllCtx(ctx context.Context, set counters.Set) (*core.Predictor, error) {
	if ds.trained == nil {
		ds.trained = map[counters.Set]*core.Predictor{}
	}
	if p, ok := ds.trained[set]; ok {
		return p, nil
	}
	sp := obs.DefaultTracer().Start("experiment.train " + set.String())
	defer sp.Finish()
	p, err := core.TrainPredictorCtx(ctx, set, ds.phaseExamples(set, ds.Phases), TrainOptions())
	if err != nil {
		return nil, err
	}
	ds.trained[set] = p
	return p, nil
}

// EvaluateModel performs the paper's leave-one-out cross-validation: for
// each program, a predictor trained on all other programs predicts each of
// its phases.
func (ds *Dataset) EvaluateModel(set counters.Set) (*Evaluation, error) {
	return ds.EvaluateModelCtx(context.Background(), set)
}

// EvaluateModelCtx is EvaluateModel with cooperative cancellation, checked
// per fold and forwarded into training.
func (ds *Dataset) EvaluateModelCtx(ctx context.Context, set counters.Set) (*Evaluation, error) {
	tr := obs.DefaultTracer()
	stage := "loocv " + set.String()
	sp := tr.Start("experiment." + stage)
	defer sp.Finish()
	ev := &Evaluation{Set: set, Predicted: map[PhaseID]arch.Config{}}
	progs := ds.Programs()
	for i, held := range progs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: LOOCV cancelled: %w", err)
		}
		fsp := tr.Start("fold " + held)
		var trainPhases []PhaseID
		for _, id := range ds.Phases {
			if id.Program != held {
				trainPhases = append(trainPhases, id)
			}
		}
		if len(trainPhases) == 0 {
			fsp.Finish()
			return nil, fmt.Errorf("experiment: no training phases when holding out %s", held)
		}
		pred, err := core.TrainPredictorCtx(ctx, set, ds.phaseExamples(set, trainPhases), TrainOptions())
		if err != nil {
			fsp.Finish()
			return nil, fmt.Errorf("experiment: LOOCV fold %s: %w", held, err)
		}
		for _, id := range ds.ProgramPhases(held) {
			ev.Predicted[id] = pred.Predict(ds.features(set, id))
		}
		fsp.Finish()
		reportProgress(stage, i+1, len(progs))
	}
	return ev, nil
}

// EvaluateModelAblated performs a grouped held-out evaluation with one
// counter family removed (zeroed) from the Advanced features in both
// training and prediction — the ablation study quantifying what each
// family of Table II counters contributes. Programs are held out in
// groups of up to six (instead of the full leave-one-out) to keep the
// five-family sweep affordable; predictions remain honest (a program's
// phases are never in its own training set).
func (ds *Dataset) EvaluateModelAblated(prefix string) (*Evaluation, error) {
	ablated := map[PhaseID][]float64{}
	for _, id := range ds.Phases {
		ablated[id] = counters.AblateFamily(ds.FeaturesAdv[id], prefix)
	}
	progs := ds.Programs()
	const groupSize = 6
	ev := &Evaluation{Set: counters.Advanced, Predicted: map[PhaseID]arch.Config{}}
	for start := 0; start < len(progs); start += groupSize {
		end := start + groupSize
		if end > len(progs) {
			end = len(progs)
		}
		held := map[string]bool{}
		for _, p := range progs[start:end] {
			held[p] = true
		}
		var phases []core.PhaseExample
		var heldIDs []PhaseID
		for _, id := range ds.Phases {
			if held[id.Program] {
				heldIDs = append(heldIDs, id)
				continue
			}
			phases = append(phases, core.PhaseExample{Features: ablated[id], Good: ds.Good[id]})
		}
		if len(phases) == 0 {
			return nil, fmt.Errorf("experiment: ablation fold %d has no training phases", start/groupSize)
		}
		pred, err := core.TrainPredictor(counters.Advanced, phases, TrainOptions())
		if err != nil {
			return nil, fmt.Errorf("experiment: ablated fold %d: %w", start/groupSize, err)
		}
		for _, id := range heldIDs {
			ev.Predicted[id] = pred.Predict(ablated[id])
		}
	}
	return ev, nil
}

// EvaluateAltModel runs the leave-one-out evaluation for one of the
// alternative predictors (internal/altmodel), fed the same advanced
// features and per-phase best configurations — the comparison behind the
// paper's footnote that soft-max beat the other approaches tried.
func (ds *Dataset) EvaluateAltModel(build func([]altmodel.TrainingPhase) (altmodel.Predictor, error)) (*Evaluation, error) {
	ev := &Evaluation{Set: counters.Advanced, Predicted: map[PhaseID]arch.Config{}}
	for _, held := range ds.Programs() {
		var train []altmodel.TrainingPhase
		var heldIDs []PhaseID
		for _, id := range ds.Phases {
			if id.Program == held {
				heldIDs = append(heldIDs, id)
				continue
			}
			train = append(train, altmodel.TrainingPhase{
				Features: ds.FeaturesAdv[id],
				Best:     ds.Best[id],
			})
		}
		m, err := build(train)
		if err != nil {
			return nil, fmt.Errorf("experiment: alt model fold %s: %w", held, err)
		}
		for _, id := range heldIDs {
			ev.Predicted[id] = m.Predict(ds.FeaturesAdv[id])
		}
	}
	return ev, nil
}
