package experiment

import (
	"context"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/counters"
	"repro/internal/store"
	"repro/internal/surrogate"
)

// TestSurrogateReducesExactSims is the tentpole acceptance criterion: at
// TestScale the surrogate must cut the search's exact simulations
// (repro_sims_exact) by at least 2x while the dataset keeps the shapes
// the downstream experiments rely on.
func TestSurrogateReducesExactSims(t *testing.T) {
	sc := TestScale()

	before := SearchSimCount()
	off, err := Build(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	offSims := SearchSimCount() - before

	before = SearchSimCount()
	on, err := Build(context.Background(), sc, WithSurrogate(surrogate.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	onSims := SearchSimCount() - before

	if offSims == 0 || onSims == 0 {
		t.Fatalf("search sims off=%d on=%d: counter not advancing", offSims, onSims)
	}
	if 2*onSims > offSims {
		t.Errorf("surrogate search sims = %d, plain = %d: reduction %.2fx < 2x",
			onSims, offSims, float64(offSims)/float64(onSims))
	}
	sum := on.SurrogateSummary()
	if sum == nil {
		t.Fatal("surrogate build has no summary")
	}
	if sum.Exact != onSims {
		t.Errorf("summary.Exact = %d, counter delta = %d", sum.Exact, onSims)
	}
	if sum.Pruned == 0 || sum.Audited == 0 {
		t.Errorf("pruned=%d audited=%d: surrogate never pruned or never audited", sum.Pruned, sum.Audited)
	}
	if off.SurrogateSummary() != nil {
		t.Error("plain build reports a surrogate summary")
	}

	// Shape invariants the EXPERIMENTS.md comparisons rest on.
	for _, id := range on.Phases {
		if _, ok := on.Best[id]; !ok {
			t.Fatalf("%s has no best", id)
		}
		if len(on.Good[id]) == 0 {
			t.Errorf("%s has an empty good set", id)
		}
		if len(on.SampleSpace(id)) >= len(off.SampleSpace(id)) {
			t.Errorf("%s: surrogate sample space (%d) not smaller than plain (%d)",
				id, len(on.SampleSpace(id)), len(off.SampleSpace(id)))
		}
	}
	foundStatic := false
	for _, cfg := range on.SharedConfigs {
		if cfg == on.BestStatic {
			foundStatic = true
		}
	}
	if !foundStatic {
		t.Error("surrogate BestStatic not in the shared pool")
	}

	// The full downstream pipeline (LOOCV + suite) must hold the paper's
	// orderings: per-program static between best static and the oracle.
	ev, err := on.EvaluateModel(counters.Basic)
	if err != nil {
		t.Fatal(err)
	}
	rep := on.Suite(ev, ev)
	for _, row := range rep.Rows {
		if row.PerProgram < 1-1e-9 {
			t.Errorf("%s: per-program %f < 1 (best-static anchor lost)", row.Program, row.PerProgram)
		}
		if row.Oracle < row.PerProgram-1e-9 {
			t.Errorf("%s: oracle %f < per-program %f", row.Program, row.Oracle, row.PerProgram)
		}
	}
}

// TestSurrogateDeterministic asserts the surrogate build is reproducible:
// the same seed gives the same shortlist — hence the same sample space,
// bests and counters — for any worker count.
func TestSurrogateDeterministic(t *testing.T) {
	sc := TestScale()
	sc.Programs = []string{"mcf", "swim", "crafty"}
	sc.UniformSamples = 8
	sc.LocalSamples = 3
	sc.SweepParams = DefaultScale().SweepParams[:2] // exercise stage 3 too

	cfg := surrogate.Config{}
	a, err := Build(context.Background(), sc, WithSurrogate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(context.Background(), sc, WithSurrogate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(context.Background(), sc, WithSurrogate(cfg), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]*Dataset{"rerun": b, "workers=4": w} {
		if a.BestStatic != other.BestStatic {
			t.Errorf("%s: best static differs: %v vs %v", name, a.BestStatic, other.BestStatic)
		}
		for _, id := range a.Phases {
			if a.Best[id] != other.Best[id] {
				t.Errorf("%s: %s best differs", name, id)
			}
			if !reflect.DeepEqual(a.SampleSpace(id), other.SampleSpace(id)) {
				t.Errorf("%s: %s sample space differs", name, id)
			}
		}
		sa, so := a.SurrogateSummary(), other.SurrogateSummary()
		if sa.Exact != so.Exact || sa.Pruned != so.Pruned || sa.Audited != so.Audited {
			t.Errorf("%s: summaries differ: %+v vs %+v", name, sa, so)
		}
	}
}

// TestSurrogateWarmStoreIdentical pins the design rule that makes the
// surrogate compose with the persistent store: the shortlist is selected
// before the store is consulted, so a warm rebuild chooses the same
// configurations — every one a store hit, zero fresh simulations — and
// reproduces the dataset exactly.
func TestSurrogateWarmStoreIdentical(t *testing.T) {
	sc := TestScale()
	sc.Programs = []string{"mcf", "gzip"}
	sc.UniformSamples = 8
	sc.LocalSamples = 3

	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Build(context.Background(), sc, WithStore(st1), WithSurrogate(surrogate.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	before := SearchSimCount()
	_, misses0 := MemoStats()
	warm, err := Build(context.Background(), sc, WithStore(st2), WithSurrogate(surrogate.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if d := SearchSimCount() - before; d != 0 {
		t.Errorf("warm surrogate build ran %d fresh search simulations, want 0", d)
	}
	if cold.BestStatic != warm.BestStatic {
		t.Errorf("best static differs cold/warm: %v vs %v", cold.BestStatic, warm.BestStatic)
	}
	for _, id := range cold.Phases {
		if cold.Best[id] != warm.Best[id] {
			t.Errorf("%s: best differs cold/warm", id)
		}
		if !reflect.DeepEqual(cold.SampleSpace(id), warm.SampleSpace(id)) {
			t.Errorf("%s: sample space differs cold/warm", id)
		}
	}
	// The warm build still pays for profiling (never stored); but every
	// measurement simulation must have been answered from disk.
	_, misses1 := MemoStats()
	if fresh := misses1 - misses0; fresh != uint64(len(warm.Phases)) {
		t.Errorf("warm build ran %d simulations, want %d (profiling only)", fresh, len(warm.Phases))
	}
}

// TestSurrogateEstimatesStayOutOfSample guards the in-sample discipline:
// everything the surrogate build exposes as a sample-space member must be
// backed by a real simulator result, and the good sets must be drawn from
// the sample space.
func TestSurrogateEstimatesStayOutOfSample(t *testing.T) {
	sc := TestScale()
	sc.Programs = []string{"mcf", "swim"}
	ds, err := Build(context.Background(), sc, WithSurrogate(surrogate.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ds.Phases {
		space := map[arch.Config]bool{}
		for _, cfg := range ds.SampleSpace(id) {
			e := ds.results[id][cfg]
			if e == nil || e.res == nil {
				t.Fatalf("%s: in-sample config without an exact result", id)
			}
			if !(e.res.Efficiency > 0) {
				t.Errorf("%s: in-sample result with non-positive efficiency", id)
			}
			space[cfg] = true
		}
		for _, cfg := range ds.Good[id] {
			if !space[cfg] {
				t.Errorf("%s: good config %v not in the sample space", id, cfg)
			}
		}
	}
}

// TestPickAuditDeterministicPerSeed pins the audit draw: the same seed
// must select the same slice, and the draw must stay inside the pool.
func TestPickAuditDeterministicPerSeed(t *testing.T) {
	pool := []int{3, 1, 4, 1, 5, 9, 2, 6, 8, 7}
	a := pickAudit(rand.New(rand.NewPCG(11, 0xa0d17ca11)), pool, 3)
	b := pickAudit(rand.New(rand.NewPCG(11, 0xa0d17ca11)), pool, 3)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed picked %v then %v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("picked %d, want 3", len(a))
	}
	in := map[int]bool{}
	for _, v := range pool {
		in[v] = true
	}
	for _, v := range a {
		if !in[v] {
			t.Errorf("picked %d not in pool", v)
		}
	}
	if got := pickAudit(rand.New(rand.NewPCG(1, 2)), pool, 99); len(got) != len(pool) {
		t.Errorf("overdraw returned %d elements, want the whole pool", len(got))
	}
}
