package experiment

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/store"
)

// renderPipeline builds a dataset against st and renders a representative
// slice of the paper outputs (Table III, the suite comparison, Figure 7)
// into one string, returning it with the dataset.
func renderPipeline(t *testing.T, st *store.Store) (string, *Dataset) {
	t.Helper()
	ds, err := Build(context.Background(), obsScale(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ds.EvaluateModel(counters.Basic)
	if err != nil {
		t.Fatal(err)
	}
	fig7, err := ds.Figure7(ev)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(ds.TableIII().Render())
	b.WriteString(ds.Suite(ev, ev).Render())
	b.WriteString(fig7.Render())
	return b.String(), ds
}

// TestWarmStoreDeterminism is the acceptance contract for the persistent
// store: a cold build that populates the store and a warm rebuild that
// replays from it must produce byte-identical tables/figures, the same
// in-sample partitioning, and the warm run must answer every
// measurement-mode simulation from disk.
func TestWarmStoreDeterminism(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldOut, coldDS := renderPipeline(t, st1)
	coldStats := st1.Stats()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	if coldStats.Hits != 0 {
		t.Errorf("cold build hit the store %d times", coldStats.Hits)
	}
	if coldStats.Records == 0 {
		t.Fatal("cold build stored no records")
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warmOut, warmDS := renderPipeline(t, st2)
	warmStats := st2.Stats()

	if warmOut != coldOut {
		t.Errorf("warm rebuild output differs from cold build:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}
	if warmStats.Hits == 0 {
		t.Error("warm rebuild never hit the store")
	}
	if warmStats.Misses != 0 {
		t.Errorf("warm rebuild missed the store %d times (records not shared?)", warmStats.Misses)
	}

	// The in-sample partition — what the oracle and good sets are allowed
	// to see — must be identical, phase by phase, config by config.
	if !reflect.DeepEqual(coldDS.Phases, warmDS.Phases) {
		t.Fatalf("phase lists differ: %v vs %v", coldDS.Phases, warmDS.Phases)
	}
	for _, id := range coldDS.Phases {
		if !reflect.DeepEqual(coldDS.SampleSpace(id), warmDS.SampleSpace(id)) {
			t.Errorf("in-sample partition differs for %s", id)
		}
		if coldDS.Best[id] != warmDS.Best[id] {
			t.Errorf("best config differs for %s: %v vs %v", id, coldDS.Best[id], warmDS.Best[id])
		}
		if !reflect.DeepEqual(coldDS.Good[id], warmDS.Good[id]) {
			t.Errorf("good set differs for %s", id)
		}
	}
	if coldDS.BestStatic != warmDS.BestStatic {
		t.Errorf("best static differs: %v vs %v", coldDS.BestStatic, warmDS.BestStatic)
	}
	if coldDS.SimCount() != warmDS.SimCount() {
		t.Errorf("memo sizes differ: %d vs %d", coldDS.SimCount(), warmDS.SimCount())
	}
}

// TestStoreKeepsPredictionsOutOfSample asserts the contract CLAUDE.md
// pins: results fetched through Dataset.Result — the model-prediction
// path — stay out of the sample space even when they come from the
// store, and a later SampleResult for the same config still promotes it.
func TestStoreKeepsPredictionsOutOfSample(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Build(context.Background(), obsScale(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	id := ds.Phases[0]
	probe := ds.Best[id].With(0, 2) // width=2 variant; may or may not be sampled already
	inSampleBefore := len(ds.SampleSpace(id))
	if _, err := ds.Result(id, probe); err != nil {
		t.Fatal(err)
	}
	afterResult := len(ds.SampleSpace(id))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Rebuild warm: the probe's record is now in the store. Result must
	// still not add it to the sample space; SampleResult must.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ds2, err := Build(context.Background(), obsScale(), WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds2.SampleSpace(id)); got != inSampleBefore {
		t.Fatalf("warm build in-sample size = %d, want %d", got, inSampleBefore)
	}
	if _, err := ds2.Result(id, probe); err != nil {
		t.Fatal(err)
	}
	if got := len(ds2.SampleSpace(id)); got != afterResult {
		t.Errorf("store-served Result changed the sample space: %d, want %d", got, afterResult)
	}
	if _, err := ds2.SampleResult(id, probe); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cfg := range ds2.SampleSpace(id) {
		if cfg == probe {
			found = true
		}
	}
	if !found {
		t.Error("SampleResult did not promote a store-served config into the sample space")
	}
}
