// Warmup checkpointing: amortise the warmup prefix of simulations by
// snapshotting the warm micro-architectural state (cpu.Sim.Snapshot)
// the first time a given warmup executes and restoring it on every later
// simulation with the same warmup key — in-memory within one build,
// through the store's snapshot sidecar across runs.
//
// This is an amortisation, never an approximation: a restored warmup
// must produce the byte-identical Result a re-executed warmup would
// (internal/cpu's golden sweep proves the equivalence; the tests here
// prove the build-level identities). With the option off, ds.ckpt is nil
// and every code path is byte-identical to a build without this file.
package experiment

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/store"
	"repro/internal/trace"
)

// WithWarmupCheckpoints makes the build snapshot the state each distinct
// warmup prefix produces and restore it instead of re-executing the
// prefix: in-memory within the build, and — with a store attached —
// persisted to the store's snapshot sidecar (snapshots.log) so later
// runs skip the warmup too. Results are bit-for-bit unchanged; only
// repro_warmup_insts / repro_warmup_restores and wall-clock move. The
// profiling pass benefits most: its runs are never result-cached, so a
// warm replay re-pays every profiling warmup unless it restores here.
func WithWarmupCheckpoints() Option {
	return func(o *buildOptions) { o.warmCkpt = true }
}

// ckptState is the per-build snapshot cache. It is only ever touched
// from sequential sections of the build (classification and ordered
// side-effect loops) — never from worker goroutines — which both keeps
// it lock-free and makes the snapshot sidecar's write order (and so its
// bytes) identical for any WithWorkers count.
type ckptState struct {
	cache map[store.Key][]byte
}

// ckptKey reports whether checkpointing applies to this simulation and,
// if so, its snapshot key. Profiling runs participate: Run executes its
// warmup prefix with collection off, so the warm state — and therefore
// the snapshot — is independent of opts.Collect and opts.SampledSets.
func (ds *Dataset) ckptKey(id PhaseID, cfg arch.Config, insts []trace.Inst, opts cpu.Options) (store.Key, bool) {
	if ds.ckpt == nil || opts.WarmupInsts <= 0 {
		return store.Key{}, false
	}
	return store.SnapshotKey(id.Program, id.Phase, cfg, len(insts), opts.WarmupInsts), true
}

// ckptFetch returns the known snapshot for key, consulting the build's
// cache and then the store sidecar, or nil when the warmup has to run.
// Sequential sections only.
func (ds *Dataset) ckptFetch(key store.Key) []byte {
	if snap, ok := ds.ckpt.cache[key]; ok {
		return snap
	}
	if ds.store != nil {
		if snap, ok := ds.store.GetSnapshot(key); ok {
			ds.ckpt.cache[key] = snap
			return snap
		}
	}
	return nil
}

// ckptCommit records a freshly captured snapshot in the build cache and,
// with a store attached, the snapshot sidecar. Sequential sections only —
// commit order is the deterministic cfgs/phase order of the surrounding
// loop, so the sidecar comes out byte-identical for any worker count.
func (ds *Dataset) ckptCommit(key store.Key, captured []byte) error {
	if captured == nil {
		return nil
	}
	ds.ckpt.cache[key] = captured
	if ds.store != nil {
		if err := ds.store.PutSnapshot(key, captured); err != nil {
			return fmt.Errorf("experiment: persisting warmup snapshot: %w", err)
		}
	}
	return nil
}

// ckptExec runs one simulation with its warmup prefix either restored
// from snap or executed and captured. Pure — safe from worker
// goroutines. Returns the captured snapshot when this call executed the
// warmup itself (nil when it restored); persisting it is the caller's
// job via ckptCommit at a deterministically sequenced point.
//
// A restore failure is an error, not a fallback: the key pins the full
// configuration and SimVersion, and the store CRC-checks every read, so
// an incompatible snapshot here means a real contract violation that
// must surface, not be papered over by silently re-warming.
func ckptExec(cfg arch.Config, insts []trace.Inst, opts cpu.Options, snap []byte) (*cpu.Result, []byte, error) {
	sim, err := cpu.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	src := cpu.NewSliceSource(insts)
	var captured []byte
	if snap != nil {
		if err := sim.Restore(snap); err != nil {
			return nil, nil, fmt.Errorf("experiment: restoring warmup snapshot: %w", err)
		}
		src.Skip(opts.WarmupInsts)
	} else {
		if err := sim.Warmup(src, opts.WarmupInsts, opts); err != nil {
			return nil, nil, err
		}
		captured = sim.Snapshot()
	}
	meas := opts
	meas.WarmupInsts = 0
	meas.FlushCaches = false // the warmup prefix consumed any flush
	res, err := sim.Run(src, len(insts), meas)
	if err != nil {
		return nil, nil, err
	}
	return res, captured, nil
}
