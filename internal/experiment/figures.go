package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/render"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// Table III: the best overall static configuration.

// TableIIIReport is the derived best-static configuration next to the
// paper's published one.
type TableIIIReport struct {
	Derived arch.Config
	Paper   arch.Config
}

// TableIII derives the report from the dataset.
func (ds *Dataset) TableIII() TableIIIReport {
	return TableIIIReport{Derived: ds.BestStatic, Paper: arch.Baseline()}
}

// Render formats the table.
func (r TableIIIReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: best overall static configuration\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "Param", "derived", "paper")
	for p := arch.Param(0); p < arch.NumParams; p++ {
		fmt.Fprintf(&b, "%-10s %12d %12d\n", p, r.Derived[p], r.Paper[p])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 4, 5 and 6: suite-wide comparisons against the best static.

// ProgramRow is one benchmark's entry in the suite-wide figures.
type ProgramRow struct {
	Program string
	// Efficiency ratios vs the best overall static configuration.
	ModelAdvanced float64 // Figure 4/6: the paper's headline scheme
	ModelBasic    float64 // Figure 4: standard counters
	PerProgram    float64 // Figure 6: specialised static per program
	Oracle        float64 // Figure 6: ideal per-phase dynamic
	// Figure 5 breakdown (advanced model vs best static).
	PerfRatio   float64 // ips ratio (>1 is faster)
	EnergyRatio float64 // joules ratio (<1 uses less energy)
}

// SuiteReport aggregates the suite-wide figures' data.
type SuiteReport struct {
	Rows []ProgramRow
	// Geometric means across programs.
	GeoModelAdvanced, GeoModelBasic, GeoPerProgram, GeoOracle float64
	GeoPerfRatio, GeoEnergyRatio                              float64
	// ShareOfOracle = (advanced model mean gain) / (oracle mean gain),
	// the paper's "74% of the improvement available".
	ShareOfOracle float64
}

// Suite computes Figures 4, 5 and 6 from the dataset and the two LOOCV
// evaluations.
func (ds *Dataset) Suite(adv, basic *Evaluation) SuiteReport {
	var rep SuiteReport
	staticChoose := Static(ds.BestStatic)
	var rAdv, rBasic, rPer, rOrc, rPerf, rEn []float64
	for _, prog := range ds.Programs() {
		phases := ds.ProgramPhases(prog)
		row := ProgramRow{Program: prog}
		row.ModelAdvanced = ds.RatioMean(phases, adv.Choose())
		row.ModelBasic = ds.RatioMean(phases, basic.Choose())
		// Per-program static first: its candidate evaluations enter the
		// sample space before the oracle row reads the per-phase bests.
		row.PerProgram = ds.RatioMean(phases, Static(ds.PerProgramStatic(prog)))
		row.Oracle = ds.RatioMean(phases, ds.Oracle())
		ipsB, enB := ds.AggregatePerf(phases, staticChoose)
		ipsM, enM := ds.AggregatePerf(phases, adv.Choose())
		if ipsB > 0 && enB > 0 {
			row.PerfRatio = ipsM / ipsB
			row.EnergyRatio = enM / enB
		}
		rep.Rows = append(rep.Rows, row)
		rAdv = append(rAdv, row.ModelAdvanced)
		rBasic = append(rBasic, row.ModelBasic)
		rPer = append(rPer, row.PerProgram)
		rOrc = append(rOrc, row.Oracle)
		rPerf = append(rPerf, row.PerfRatio)
		rEn = append(rEn, row.EnergyRatio)
	}
	rep.GeoModelAdvanced = stats.GeoMean(rAdv)
	rep.GeoModelBasic = stats.GeoMean(rBasic)
	rep.GeoPerProgram = stats.GeoMean(rPer)
	rep.GeoOracle = stats.GeoMean(rOrc)
	rep.GeoPerfRatio = stats.GeoMean(rPerf)
	rep.GeoEnergyRatio = stats.GeoMean(rEn)
	if rep.GeoOracle > 1 {
		rep.ShareOfOracle = (rep.GeoModelAdvanced - 1) / (rep.GeoOracle - 1)
	}
	return rep
}

// Render formats the suite report as the three figures' data tables.
func (r SuiteReport) Render() string {
	var b strings.Builder
	b.WriteString("Figures 4/5/6: efficiency vs best overall static (ratios, higher is better)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s | %7s %7s\n",
		"program", "adv", "basic", "perProg", "oracle", "perf", "energy")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %8.2f %8.2f %8.2f %8.2f | %7.2f %7.2f\n",
			row.Program, row.ModelAdvanced, row.ModelBasic, row.PerProgram, row.Oracle,
			row.PerfRatio, row.EnergyRatio)
	}
	fmt.Fprintf(&b, "%-10s %8.2f %8.2f %8.2f %8.2f | %7.2f %7.2f\n",
		"GEOMEAN", r.GeoModelAdvanced, r.GeoModelBasic, r.GeoPerProgram, r.GeoOracle,
		r.GeoPerfRatio, r.GeoEnergyRatio)
	fmt.Fprintf(&b, "share of oracle improvement captured: %.0f%% (paper: 74%%)\n", 100*r.ShareOfOracle)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7: per-phase distribution of the model's efficiency.

// Figure7Report holds the per-phase ratios and their histogram/ECDF.
type Figure7Report struct {
	// VsBaseline: phase efficiency under the predicted config, relative
	// to the best static on that phase (Figure 7a).
	VsBaseline []float64
	// VsBest: relative to the best configuration found for the phase
	// (Figure 7b).
	VsBest []float64

	// BetterThanBaselineFrac is the fraction of phases where the model
	// beats the baseline (the paper reports 80%).
	BetterThanBaselineFrac float64
	// AtLeast74PctOfBestFrac is the fraction of phases achieving >= 74%
	// of the best (the paper reports ~50%).
	AtLeast74PctOfBestFrac float64
	// BeatsSampledBestFrac is the fraction of phases where the prediction
	// beats the best found in the sample space (paper: ~9%).
	BeatsSampledBestFrac float64
}

// Figure7 computes the per-phase ratio distributions for the advanced
// model evaluation.
func (ds *Dataset) Figure7(adv *Evaluation) (Figure7Report, error) {
	var rep Figure7Report
	for _, id := range ds.Phases {
		pres, err := ds.Result(id, adv.Predicted[id])
		if err != nil {
			return rep, err
		}
		bres, err := ds.Result(id, ds.BestStatic)
		if err != nil {
			return rep, err
		}
		best, err := ds.Result(id, ds.Best[id])
		if err != nil {
			return rep, err
		}
		if bres.Efficiency > 0 {
			rep.VsBaseline = append(rep.VsBaseline, pres.Efficiency/bres.Efficiency)
		}
		if best.Efficiency > 0 {
			rep.VsBest = append(rep.VsBest, pres.Efficiency/best.Efficiency)
		}
	}
	n := float64(len(rep.VsBaseline))
	for _, v := range rep.VsBaseline {
		if v > 1 {
			rep.BetterThanBaselineFrac += 1 / n
		}
	}
	m := float64(len(rep.VsBest))
	for _, v := range rep.VsBest {
		if v >= 0.74 {
			rep.AtLeast74PctOfBestFrac += 1 / m
		}
		if v > 1 {
			rep.BeatsSampledBestFrac += 1 / m
		}
	}
	return rep, nil
}

// Render formats Figure 7 as histogram rows plus the ECDF summary.
func (r Figure7Report) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7a: phase efficiency vs baseline (histogram + ECDF-from-right)\n")
	renderDist(&b, r.VsBaseline, []float64{0.5, 1, 1.5, 2, 3, 4, 8, 16, 32})
	b.WriteString("Figure 7b: phase efficiency vs per-phase best\n")
	renderDist(&b, r.VsBest, []float64{0.2, 0.4, 0.6, 0.74, 0.9, 1.0})
	fmt.Fprintf(&b, "phases better than baseline: %.0f%% (paper: 80%%)\n", 100*r.BetterThanBaselineFrac)
	fmt.Fprintf(&b, "phases at >= 74%% of best:    %.0f%% (paper: ~50%%)\n", 100*r.AtLeast74PctOfBestFrac)
	fmt.Fprintf(&b, "phases beating sampled best: %.0f%% (paper: ~9%%)\n", 100*r.BeatsSampledBestFrac)
	return b.String()
}

func renderDist(b *strings.Builder, xs, thresholds []float64) {
	ecdf := stats.ECDF(xs, thresholds)
	for i, t := range thresholds {
		fmt.Fprintf(b, "  >= %5.2fx: %5.1f%%\n", t, 100*ecdf[i])
	}
}

// ---------------------------------------------------------------------------
// Figure 8: best achievable efficiency when one parameter is pinned.

// Figure8Value is one violin: the distribution over phases of the best
// efficiency achievable with parameter fixed at Value, relative to the
// phase's overall best.
type Figure8Value struct {
	Value    int
	Violin   stats.Violin
	BestPct  float64 // % of phases for which this value is optimal
	Coverage int     // phases with at least one sampled config at Value
}

// Figure8Report holds the violins for one parameter.
type Figure8Report struct {
	Param  arch.Param
	Values []Figure8Value
}

// Figure8 computes the pinned-parameter distributions for one parameter.
func (ds *Dataset) Figure8(p arch.Param) Figure8Report {
	rep := Figure8Report{Param: p}
	bestCount := map[int]int{}
	for _, id := range ds.Phases {
		bestCount[ds.Best[id][p]]++
	}
	for _, v := range arch.Domain(p) {
		var ratios []float64
		for _, id := range ds.Phases {
			bestOverall := ds.results[id][ds.Best[id]].res.Efficiency
			bestPinned := -1.0
			for cfg, e := range ds.results[id] {
				if e.inSample && cfg[p] == v && e.res.Efficiency > bestPinned {
					bestPinned = e.res.Efficiency
				}
			}
			if bestPinned >= 0 && bestOverall > 0 {
				ratios = append(ratios, bestPinned/bestOverall)
			}
		}
		if len(ratios) == 0 {
			continue
		}
		rep.Values = append(rep.Values, Figure8Value{
			Value:    v,
			Violin:   stats.Summarize(ratios),
			BestPct:  100 * float64(bestCount[v]) / float64(len(ds.Phases)),
			Coverage: len(ratios),
		})
	}
	sort.Slice(rep.Values, func(i, j int) bool { return rep.Values[i].Value < rep.Values[j].Value })
	return rep
}

// Render formats the violins, one strip per value as in the paper's plot.
func (r Figure8Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: best achievable efficiency with %s pinned (1.0 = phase best)\n", r.Param)
	fmt.Fprintf(&b, "%8s %6s %6s %6s %6s %6s %7s %5s  %s\n",
		"value", "min", "q1", "med", "q3", "max", "best%", "n", "0 ........ 1")
	for _, v := range r.Values {
		fmt.Fprintf(&b, "%8d %6.2f %6.2f %6.2f %6.2f %6.2f %6.1f%% %5d  %s\n",
			v.Value, v.Violin.Min, v.Violin.Q1, v.Violin.Median, v.Violin.Q3, v.Violin.Max,
			v.BestPct, v.Coverage,
			render.ViolinStrip(v.Violin.Min, v.Violin.Q1, v.Violin.Median, v.Violin.Q3, v.Violin.Max, 30))
	}
	return b.String()
}
