package experiment

import (
	"context"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/obs"
)

// obsScale is a deliberately tiny pipeline: the determinism test runs it
// twice.
func obsScale() Scale {
	return Scale{
		Programs:         []string{"mcf", "swim"},
		PhasesPerProgram: 1,
		IntervalInsts:    800,
		WarmupInsts:      400,
		UniformSamples:   4,
		LocalSamples:     2,
		GoodThreshold:    0.95,
		SampledSets:      8,
		Seed:             7,
	}
}

// runTracedPipeline builds a dataset and runs a LOOCV evaluation with the
// process tracer capturing spans, returning the duration-free span tree.
func runTracedPipeline(t *testing.T) string {
	t.Helper()
	tr := obs.DefaultTracer()
	tr.Reset()
	tr.Enable()
	defer tr.Disable()
	ds, err := Build(context.Background(), obsScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.EvaluateModel(counters.Basic); err != nil {
		t.Fatal(err)
	}
	tree := tr.Tree()
	tr.Reset()
	return tree
}

// TestPipelineSpanTreeDeterministic is the reproducibility contract for
// tracing: two seeded runs of the same pipeline must emit byte-identical
// span trees (names, args, ordering, hierarchy — durations excluded).
func TestPipelineSpanTreeDeterministic(t *testing.T) {
	first := runTracedPipeline(t)
	second := runTracedPipeline(t)
	if first != second {
		t.Errorf("span trees differ between seeded runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	for _, want := range []string{
		"experiment.build-dataset", "tracegen", "search mcf/0",
		"best-static", "good-sets", "profile swim/0",
		"experiment.loocv basic", "fold mcf", "fold swim",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("span tree missing %q:\n%s", want, first)
		}
	}
}

// TestBuildCancelled asserts a pre-cancelled context aborts the
// build promptly with a wrapped context error.
func TestBuildCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, obsScale()); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("Build with cancelled ctx: err = %v, want cancellation", err)
	}
	ds, err := Build(context.Background(), obsScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.EvaluateModelCtx(ctx, counters.Basic); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("EvaluateModelCtx with cancelled ctx: err = %v, want cancellation", err)
	}
}

// TestMemoStatsAdvance asserts the memoisation counters move when a
// dataset is built (hits come from the repeated Result reads in the
// aggregate helpers and the search protocol's shared configs).
func TestMemoStatsAdvance(t *testing.T) {
	h0, m0 := MemoStats()
	ds, err := Build(context.Background(), obsScale())
	if err != nil {
		t.Fatal(err)
	}
	ds.RatioMean(ds.Phases, ds.Oracle())
	h1, m1 := MemoStats()
	if m1 <= m0 {
		t.Errorf("simulation counter did not advance: %d -> %d", m0, m1)
	}
	if h1 <= h0 {
		t.Errorf("memo-hit counter did not advance: %d -> %d", h0, h1)
	}
}
