package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/cpu"
)

// Digest returns a hex SHA-256 fingerprint of the dataset's deterministic
// content: the phase list, every phase's sample space with the simulated
// results attached to it, the per-phase bests, the shared candidate pool
// and the best-static pick. Replays of the same configuration — cold or
// warm store, any WithWorkers count, surrogate flag held fixed — must
// reproduce it bit for bit; run manifests record it in their
// deterministic section, where cmd/obsdiff compares it exactly.
//
// Only result fields that are pure simulator output join the hash
// (counters and float64 bit patterns). Anything wall-clock or
// store-state-dependent stays out by construction.
func (ds *Dataset) Digest() string {
	h := sha256.New()
	writeU64 := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeF64 := func(v float64) { writeU64(math.Float64bits(v)) }
	writeCfg := func(c arch.Config) {
		for p := arch.Param(0); p < arch.NumParams; p++ {
			writeU64(uint64(int64(c[p])))
		}
	}
	writeRes := func(r *cpu.Result) {
		writeU64(r.Cycles)
		writeU64(r.Committed)
		writeF64(r.Efficiency)
		writeF64(r.SecondsSim)
		writeF64(r.EnergyJ)
	}

	fmt.Fprintf(h, "phases=%d\n", len(ds.Phases))
	for _, id := range ds.Phases {
		fmt.Fprintf(h, "phase %s\n", id)
		space := ds.SampleSpace(id)
		writeU64(uint64(len(space)))
		for _, cfg := range space {
			writeCfg(cfg)
			if e := ds.results[id][cfg]; e != nil && e.res != nil {
				writeRes(e.res)
			}
		}
		if best, ok := ds.Best[id]; ok {
			writeCfg(best)
		}
	}
	fmt.Fprintf(h, "shared=%d\n", len(ds.SharedConfigs))
	for _, cfg := range ds.SharedConfigs {
		writeCfg(cfg)
	}
	writeCfg(ds.BestStatic)
	return hex.EncodeToString(h.Sum(nil))
}
