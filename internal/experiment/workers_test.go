package experiment

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/store"
)

// TestWithWorkersDeterminism is the acceptance contract for WithWorkers:
// a build fanned across four goroutines must be indistinguishable from the
// sequential build — same bests, same sample-space partition, same
// memoised result values, same features — and, with a store attached, must
// append the byte-identical results.log.
func TestWithWorkersDeterminism(t *testing.T) {
	// Build a private sequential reference rather than using the shared
	// testDataset: other tests in the package promote extra configs into
	// the shared dataset's sample space, which would leak into the
	// comparison.
	seq, err := Build(context.Background(), TestScale())
	if err != nil {
		t.Fatal(err)
	}

	par, err := Build(context.Background(), TestScale(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}

	if par.BestStatic != seq.BestStatic {
		t.Errorf("BestStatic: workers=4 %v, sequential %v", par.BestStatic, seq.BestStatic)
	}
	if par.SimCount() != seq.SimCount() {
		t.Errorf("SimCount: workers=4 %d, sequential %d", par.SimCount(), seq.SimCount())
	}
	for _, id := range seq.Phases {
		if par.Best[id] != seq.Best[id] {
			t.Errorf("%s Best: workers=4 %v, sequential %v", id, par.Best[id], seq.Best[id])
		}
		if !reflect.DeepEqual(par.SampleSpace(id), seq.SampleSpace(id)) {
			t.Errorf("%s sample space differs between workers=4 and sequential", id)
		}
		if !reflect.DeepEqual(par.Good[id], seq.Good[id]) {
			t.Errorf("%s good set differs between workers=4 and sequential", id)
		}
		if !reflect.DeepEqual(par.FeaturesAdv[id], seq.FeaturesAdv[id]) {
			t.Errorf("%s advanced features differ between workers=4 and sequential", id)
		}
		if !reflect.DeepEqual(par.FeaturesBasic[id], seq.FeaturesBasic[id]) {
			t.Errorf("%s basic features differ between workers=4 and sequential", id)
		}
		// Every memoised result value must match bit for bit.
		for _, cfg := range seq.SampleSpace(id) {
			rs, err := seq.Result(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := par.Result(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rs, rp) {
				t.Errorf("%s %v: result differs between workers=4 and sequential", id, cfg)
			}
		}
	}
}

// TestWithWorkersStoreLog asserts the stronger store property: the
// append-only results.log written by a four-worker cold build is
// byte-identical to the sequential one — store writes stay serialised in
// the sequential build's order.
func TestWithWorkersStoreLog(t *testing.T) {
	logBytes := func(workers int) []byte {
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Build(context.Background(), TestScale(), WithStore(st), WithWorkers(workers)); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "results.log"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := logBytes(1)
	par := logBytes(4)
	if !bytes.Equal(seq, par) {
		t.Errorf("results.log differs: sequential %d bytes, workers=4 %d bytes", len(seq), len(par))
	}
}
