package experiment

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 1: how the optimal IQ and RF sizes change over a program's
// lifetime, for pipeline widths 8 and 4.

// Figure1Point is one time step: the efficiency-optimal IQ and RF sizes at
// each width.
type Figure1Point struct {
	Interval int
	BestIQ   map[int]int // width -> best IQ size
	BestRF   map[int]int // width -> best RF size
}

// Figure1Report is the optimal-size time series for one program.
type Figure1Report struct {
	Program string
	Points  []Figure1Point
}

// Figure1 sweeps the IQ and RF sizes per interval of the program's
// phase sequence at widths 4 and 8, everything else held at the baseline.
func Figure1(program string, intervalsPerPhase, intervalInsts, warmup int) (*Figure1Report, error) {
	rep := &Figure1Report{Program: program}
	widths := []int{4, 8}
	idx := 0
	for ph := 0; ph < trace.PhasesPerProgram; ph++ {
		g, err := trace.NewGenerator(program, ph)
		if err != nil {
			return nil, err
		}
		for iv := 0; iv < intervalsPerPhase; iv++ {
			insts := g.Interval(intervalInsts)
			pt := Figure1Point{Interval: idx, BestIQ: map[int]int{}, BestRF: map[int]int{}}
			idx++
			for _, w := range widths {
				base := arch.Baseline().With(arch.Width, w)
				bi, err := bestValue(insts, base, arch.IQSize, warmup)
				if err != nil {
					return nil, err
				}
				br, err := bestValue(insts, base, arch.RFSize, warmup)
				if err != nil {
					return nil, err
				}
				pt.BestIQ[w] = bi
				pt.BestRF[w] = br
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

// bestValue returns the value of p maximising efficiency on insts with all
// other parameters from base.
func bestValue(insts []trace.Inst, base arch.Config, p arch.Param, warmup int) (int, error) {
	bestEff, bestV := -1.0, 0
	for _, v := range arch.Domain(p) {
		sim, err := cpu.New(base.With(p, v))
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(cpu.NewSliceSource(insts), len(insts), cpu.Options{WarmupInsts: warmup})
		if err != nil {
			return 0, err
		}
		if res.Efficiency > bestEff {
			bestEff, bestV = res.Efficiency, v
		}
	}
	return bestV, nil
}

// Render formats the time series.
func (r *Figure1Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 (%s): optimal structure sizes over time\n", r.Program)
	fmt.Fprintf(&b, "%8s %8s %8s %8s %8s\n", "interval", "IQ(w=8)", "IQ(w=4)", "RF(w=8)", "RF(w=4)")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%8d %8d %8d %8d %8d\n",
			pt.Interval, pt.BestIQ[8], pt.BestIQ[4], pt.BestRF[8], pt.BestRF[4])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 3: load/store queue counters and efficiency sweeps for example
// phases.

// Figure3Phase is one subfigure: the LSQ-size efficiency curve for the
// phase plus the profiling counters a controller would see.
type Figure3Phase struct {
	ID          PhaseID
	LSQValues   []int
	Efficiency  []float64 // normalised to the best point of the sweep
	BestLSQ     int
	UsageHist   []float64 // normalised LSQ occupancy histogram
	SpecFrac    float64
	MisspecFrac float64
}

// Figure3Report collects the example phases.
type Figure3Report struct {
	Phases []Figure3Phase
}

// Figure3 sweeps the LSQ size on each phase's best-found configuration and
// reports the profiling counters (the paper uses mgrid, swim, parser and
// vortex phases).
func (ds *Dataset) Figure3(ids []PhaseID) (*Figure3Report, error) {
	rep := &Figure3Report{}
	for _, id := range ids {
		base, ok := ds.Best[id]
		if !ok {
			return nil, fmt.Errorf("experiment: phase %s not in dataset", id)
		}
		ph := Figure3Phase{ID: id, LSQValues: arch.Domain(arch.LSQSize)}
		bestEff := -1.0
		for _, v := range ph.LSQValues {
			res, err := ds.Result(id, base.With(arch.LSQSize, v))
			if err != nil {
				return nil, err
			}
			ph.Efficiency = append(ph.Efficiency, res.Efficiency)
			if res.Efficiency > bestEff {
				bestEff = res.Efficiency
				ph.BestLSQ = v
			}
		}
		for i := range ph.Efficiency {
			if bestEff > 0 {
				ph.Efficiency[i] /= bestEff
			}
		}
		prof := ds.ProfileRes[id]
		if prof == nil || prof.Counters == nil {
			return nil, fmt.Errorf("experiment: phase %s has no profiling counters", id)
		}
		ph.UsageHist = prof.Counters.LSQOcc.Normalized()
		ph.SpecFrac = prof.Counters.LSQSpecFrac
		ph.MisspecFrac = prof.Counters.LSQMisspecFrac
		rep.Phases = append(rep.Phases, ph)
	}
	return rep, nil
}

// Render formats the subfigures.
func (r *Figure3Report) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: LSQ efficiency sweeps and counters per phase\n")
	for _, ph := range r.Phases {
		fmt.Fprintf(&b, "%s: best LSQ=%d  spec=%.0f%%  mis-spec=%.0f%%\n",
			ph.ID, ph.BestLSQ, 100*ph.SpecFrac, 100*ph.MisspecFrac)
		b.WriteString("  size:eff ")
		for i, v := range ph.LSQValues {
			fmt.Fprintf(&b, " %d:%.2f", v, ph.Efficiency[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table IV: dynamic set sampling levels that preserve prediction accuracy.

// TableIVRow is one sampling level's outcome.
type TableIVRow struct {
	SampledSets int
	// Agreement is the mean fraction of the fourteen parameters whose
	// prediction from sampled-profile features matches the full-profile
	// prediction.
	Agreement float64
	// EffPreserved is the mean ratio of the sampled-profile prediction's
	// efficiency to the full-profile prediction's efficiency — the
	// criterion that matters: sampling may flip irrelevant parameters
	// without costing anything.
	EffPreserved float64
}

// TableIVReport is the sampling sweep plus the chosen level.
type TableIVReport struct {
	Rows      []TableIVRow
	Chosen    int     // smallest level with Agreement >= Target
	Target    float64 // agreement target
	PaperNote string
}

// TableIV sweeps global profiling set-sampling levels on a subset of
// phases and finds the smallest level that keeps the model's predictions
// in agreement with full profiling. (The paper tunes per-cache, per-feature
// sampling — Table IV; our profiler exposes one global level, so this
// reproduces the mechanism and the conclusion that aggressive sampling
// preserves accuracy.)
func (ds *Dataset) TableIV(levels []int, maxPhases int) (*TableIVReport, error) {
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		return nil, err
	}
	phases := ds.Phases
	if maxPhases > 0 && len(phases) > maxPhases {
		phases = phases[:maxPhases]
	}
	// Reference predictions come from *unsampled* profiling (all sets
	// monitored), so each sweep level is judged against the true full
	// histograms rather than the dataset's own sampled ones.
	full := map[PhaseID]arch.Config{}
	for _, id := range phases {
		res, err := ds.simulate(id, arch.Profiling(), cpu.Options{
			Collect:     true,
			WarmupInsts: ds.Scale.WarmupInsts,
		}, false)
		if err != nil {
			return nil, err
		}
		full[id] = pred.Predict(counters.Features(res, counters.Advanced))
	}
	rep := &TableIVReport{Target: 0.95, PaperNote: "paper Table IV: 4..256 sets suffice per cache/feature"}
	rep.Chosen = -1
	for _, lvl := range levels {
		agree, preserved := 0.0, 0.0
		for _, id := range phases {
			res, err := ds.simulate(id, arch.Profiling(), cpu.Options{
				Collect:     true,
				SampledSets: lvl,
				WarmupInsts: ds.Scale.WarmupInsts,
			}, false)
			if err != nil {
				return nil, err
			}
			pcfg := pred.Predict(counters.Features(res, counters.Advanced))
			same := 0
			for p := arch.Param(0); p < arch.NumParams; p++ {
				if pcfg[p] == full[id][p] {
					same++
				}
			}
			agree += float64(same) / float64(arch.NumParams)
			sres, err := ds.Result(id, pcfg)
			if err != nil {
				return nil, err
			}
			fres, err := ds.Result(id, full[id])
			if err != nil {
				return nil, err
			}
			if fres.Efficiency > 0 {
				r := sres.Efficiency / fres.Efficiency
				if r > 1 {
					r = 1 // sampling got lucky; cap at parity
				}
				preserved += r
			}
		}
		agree /= float64(len(phases))
		preserved /= float64(len(phases))
		rep.Rows = append(rep.Rows, TableIVRow{SampledSets: lvl, Agreement: agree, EffPreserved: preserved})
		if rep.Chosen < 0 && preserved >= rep.Target {
			rep.Chosen = lvl
		}
	}
	return rep, nil
}

// Render formats the sweep.
func (r *TableIVReport) Render() string {
	var b strings.Builder
	b.WriteString("Table IV: set sampling vs prediction quality\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %4d sets: %.1f%% parameter agreement, %.1f%% efficiency preserved\n",
			row.SampledSets, 100*row.Agreement, 100*row.EffPreserved)
	}
	fmt.Fprintf(&b, "  chosen: %d sets (efficiency target %.0f%%); %s\n", r.Chosen, 100*r.Target, r.PaperNote)
	return b.String()
}

// ---------------------------------------------------------------------------
// Model storage (paper §VIII): 8-bit weights.

// StorageReport quantifies the predictor's hardware cost.
type StorageReport struct {
	Set          counters.Set
	Weights      int
	QuantBytes   int
	AgreementPct float64 // quantised vs float predictions over all phases
}

// StorageAnalysis trains on all phases, quantises to 8 bits, and measures
// how often the 8-bit predictor matches the float one.
func (ds *Dataset) StorageAnalysis(set counters.Set) (*StorageReport, error) {
	pred, err := ds.TrainAll(set)
	if err != nil {
		return nil, err
	}
	q := pred.Quantize()
	same, total := 0, 0
	for _, id := range ds.Phases {
		f := ds.features(set, id)
		a, b := pred.Predict(f), q.Predict(f)
		for p := arch.Param(0); p < arch.NumParams; p++ {
			if a[p] == b[p] {
				same++
			}
			total++
		}
	}
	return &StorageReport{
		Set:          set,
		Weights:      pred.WeightCount(),
		QuantBytes:   q.StorageBytes(),
		AgreementPct: 100 * float64(same) / float64(total),
	}, nil
}

// Render formats the report.
func (r *StorageReport) Render() string {
	return fmt.Sprintf("Model storage (%s counters): %d weights, %d bytes at 8 bits, %.1f%% prediction agreement with float (paper: ~2000 weights / 2KB)\n",
		r.Set, r.Weights, r.QuantBytes, r.AgreementPct)
}
