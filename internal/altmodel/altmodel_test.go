package altmodel

import (
	"math/rand/v2"
	"testing"

	"repro/internal/arch"
)

// twoClusterData builds training phases in two well-separated feature
// clusters with distinct best configurations.
func twoClusterData(n int, rng *rand.Rand) (phases []TrainingPhase, cfgA, cfgB arch.Config) {
	cfgA = arch.Baseline().With(arch.Width, 2).With(arch.L2CacheKB, 4096)
	cfgB = arch.Baseline().With(arch.Width, 8).With(arch.L2CacheKB, 256)
	for i := 0; i < n; i++ {
		fa := []float64{1 + 0.05*rng.Float64(), 0, 1}
		fb := []float64{0, 1 + 0.05*rng.Float64(), 1}
		phases = append(phases,
			TrainingPhase{Features: fa, Best: cfgA},
			TrainingPhase{Features: fb, Best: cfgB},
		)
	}
	return phases, cfgA, cfgB
}

func TestKNNSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	phases, cfgA, cfgB := twoClusterData(20, rng)
	for _, k := range []int{1, 3, 5} {
		m, err := NewKNN(k, phases)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Predict([]float64{1, 0.02, 1}); got != cfgA {
			t.Errorf("k=%d: cluster A predicted %v", k, got)
		}
		if got := m.Predict([]float64{0.02, 1, 1}); got != cfgB {
			t.Errorf("k=%d: cluster B predicted %v", k, got)
		}
	}
}

func TestKNNValidation(t *testing.T) {
	if _, err := NewKNN(1, nil); err == nil {
		t.Error("empty training accepted")
	}
	ph := []TrainingPhase{{Features: []float64{1}, Best: arch.Baseline()}}
	if _, err := NewKNN(0, ph); err == nil {
		t.Error("k=0 accepted")
	}
	bad := []TrainingPhase{
		{Features: []float64{1}, Best: arch.Baseline()},
		{Features: []float64{1, 2}, Best: arch.Baseline()},
	}
	if _, err := NewKNN(1, bad); err == nil {
		t.Error("inconsistent dims accepted")
	}
	// k larger than the training set clamps rather than fails.
	m, err := NewKNN(99, ph)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5}); got != arch.Baseline() {
		t.Error("clamped k-NN wrong")
	}
}

func TestRidgeLearnsMonotoneTarget(t *testing.T) {
	// Best width grows with feature 0: regression should recover the
	// trend.
	var phases []TrainingPhase
	widths := arch.Domain(arch.Width)
	for i, w := range widths {
		x := float64(i) / float64(len(widths)-1)
		for r := 0; r < 10; r++ {
			phases = append(phases, TrainingPhase{
				Features: []float64{x, 1},
				Best:     arch.Baseline().With(arch.Width, w),
			})
		}
	}
	m, err := NewRidge(1e-3, phases)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0, 1})[arch.Width]; got != 2 {
		t.Errorf("low feature -> width %d, want 2", got)
	}
	if got := m.Predict([]float64{1, 1})[arch.Width]; got != 8 {
		t.Errorf("high feature -> width %d, want 8", got)
	}
	mid := m.Predict([]float64{0.5, 1})[arch.Width]
	if mid != 4 && mid != 6 {
		t.Errorf("mid feature -> width %d, want 4 or 6", mid)
	}
}

func TestRidgePredictionsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	phases, _, _ := twoClusterData(10, rng)
	m, err := NewRidge(0.1, phases)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		f := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2, 1}
		if cfg := m.Predict(f); !cfg.Valid() {
			t.Fatalf("invalid prediction %v for %v", cfg, f)
		}
	}
}

func TestRidgeValidation(t *testing.T) {
	if _, err := NewRidge(0.1, nil); err == nil {
		t.Error("empty training accepted")
	}
	ph := []TrainingPhase{{Features: []float64{1}, Best: arch.Baseline()}}
	if _, err := NewRidge(0, ph); err == nil {
		t.Error("zero lambda accepted")
	}
	bad := []TrainingPhase{
		{Features: []float64{1}, Best: arch.Baseline()},
		{Features: []float64{1, 2}, Best: arch.Baseline()},
	}
	if _, err := NewRidge(0.1, bad); err == nil {
		t.Error("inconsistent dims accepted")
	}
}

func TestCholeskySolvesKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
	a := []float64{4, 2, 2, 3}
	l, err := cholesky(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := cholSolve(l, 2, []float64{10, 8})
	if diff := x[0] - 1.75; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("x0 = %v, want 1.75", x[0])
	}
	if diff := x[1] - 1.5; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("x1 = %v, want 1.5", x[1])
	}
	// Non-PD matrix must fail.
	if _, err := cholesky([]float64{1, 2, 2, 1}, 2); err == nil {
		t.Error("non-PD matrix accepted")
	}
}

func TestTablePredictor(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	phases, cfgA, cfgB := twoClusterData(20, rng)
	m, err := NewTable(6, phases)
	if err != nil {
		t.Fatal(err)
	}
	gotA := m.Predict([]float64{1, 0.01, 1})
	gotB := m.Predict([]float64{0.01, 1, 1})
	if gotA != cfgA && gotA != cfgB {
		t.Errorf("table prediction outside training configs: %v", gotA)
	}
	// An unseen bucket falls back to the overall majority, which must be
	// one of the training configs.
	got := m.Predict([]float64{0, 0, 0})
	if got != cfgA && got != cfgB {
		t.Errorf("fallback prediction %v not a training config", got)
	}
	_ = gotB
}

func TestTableValidation(t *testing.T) {
	ph := []TrainingPhase{{Features: []float64{1, 2, 3}, Best: arch.Baseline()}}
	if _, err := NewTable(6, nil); err == nil {
		t.Error("empty training accepted")
	}
	if _, err := NewTable(1, ph); err == nil {
		t.Error("too few bits accepted")
	}
	if _, err := NewTable(20, ph); err == nil {
		t.Error("too many bits accepted")
	}
}

func TestTableDeterministicTies(t *testing.T) {
	// Two configs with equal votes in the same bucket: tie-break must be
	// deterministic.
	a := arch.Baseline().With(arch.Width, 2)
	b := arch.Baseline().With(arch.Width, 8)
	phases := []TrainingPhase{
		{Features: []float64{1, 1, 1}, Best: a},
		{Features: []float64{1, 1, 1}, Best: b},
	}
	m1, _ := NewTable(6, phases)
	m2, _ := NewTable(6, phases)
	if m1.Predict([]float64{1, 1, 1}) != m2.Predict([]float64{1, 1, 1}) {
		t.Error("tie-break nondeterministic")
	}
}
