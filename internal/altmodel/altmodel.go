// Package altmodel implements the alternative predictors the paper's
// footnote 1 alludes to ("Other approaches were tried and we found that a
// soft-max model led to the best results"): a nearest-neighbour predictor,
// a per-parameter ridge-regression predictor, and a table-driven predictor
// in the spirit of Kontorinis et al. [32]. They share the soft-max
// predictor's interface so the model-comparison ablation can swap them in.
package altmodel

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
)

// TrainingPhase is one training observation: the phase's profiling
// features and its best known configuration.
type TrainingPhase struct {
	Features []float64
	Best     arch.Config
}

// Predictor is anything that maps profiling features to a configuration.
type Predictor interface {
	Predict(features []float64) arch.Config
}

// ---------------------------------------------------------------------------
// k-nearest-neighbour predictor.

// KNN predicts the configuration of the nearest training phases: each
// parameter takes the majority value among the k nearest neighbours'
// best configurations (ties break toward the nearer neighbour).
type KNN struct {
	k      int
	phases []TrainingPhase
}

// NewKNN builds a k-NN predictor. k is clamped to the training size.
func NewKNN(k int, phases []TrainingPhase) (*KNN, error) {
	if len(phases) == 0 {
		return nil, errors.New("altmodel: no training phases")
	}
	if k <= 0 {
		return nil, fmt.Errorf("altmodel: k = %d must be positive", k)
	}
	if k > len(phases) {
		k = len(phases)
	}
	d := len(phases[0].Features)
	for i, p := range phases {
		if len(p.Features) != d {
			return nil, fmt.Errorf("altmodel: phase %d has %d features, want %d", i, len(p.Features), d)
		}
	}
	return &KNN{k: k, phases: phases}, nil
}

// Predict returns the per-parameter majority configuration of the k
// nearest neighbours under L1 distance.
func (m *KNN) Predict(features []float64) arch.Config {
	type scored struct {
		dist float64
		idx  int
	}
	ds := make([]scored, len(m.phases))
	for i, p := range m.phases {
		ds[i] = scored{l1(features, p.Features), i}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].dist < ds[j].dist })
	var cfg arch.Config
	for p := arch.Param(0); p < arch.NumParams; p++ {
		votes := map[int]float64{}
		for n := 0; n < m.k; n++ {
			// Nearer neighbours get slightly heavier votes.
			votes[m.phases[ds[n].idx].Best[p]] += 1 + 1e-6*float64(m.k-n)
		}
		bestV, bestW := 0, -1.0
		for v, w := range votes {
			if w > bestW {
				bestV, bestW = v, w
			}
		}
		cfg[p] = bestV
	}
	return cfg
}

func l1(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// ---------------------------------------------------------------------------
// Ridge-regression predictor.

// Ridge predicts each parameter's *value* with an independent ridge
// regression over the features (targets are the domain index, scaled to
// [0,1]), then rounds to the nearest legal value. Regression treats the
// discrete design space as a continuum — precisely the mismatch that makes
// it weaker than classification for this problem.
type Ridge struct {
	d       int
	weights [arch.NumParams][]float64 // one weight vector per parameter
}

// NewRidge fits the per-parameter regressions with regularisation lambda.
func NewRidge(lambda float64, phases []TrainingPhase) (*Ridge, error) {
	if len(phases) == 0 {
		return nil, errors.New("altmodel: no training phases")
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("altmodel: lambda %v must be positive", lambda)
	}
	d := len(phases[0].Features)
	for i, p := range phases {
		if len(p.Features) != d {
			return nil, fmt.Errorf("altmodel: phase %d has %d features, want %d", i, len(p.Features), d)
		}
	}
	m := &Ridge{d: d}

	// Normal equations: (X^T X + lambda I) w = X^T y, shared Gram matrix.
	n := len(phases)
	gram := make([]float64, d*d)
	for _, p := range phases {
		x := p.Features
		for i := 0; i < d; i++ {
			if x[i] == 0 {
				continue
			}
			row := gram[i*d : i*d+d]
			for j := 0; j < d; j++ {
				row[j] += x[i] * x[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		gram[i*d+i] += lambda
	}
	chol, err := cholesky(gram, d)
	if err != nil {
		return nil, err
	}

	xty := make([]float64, d)
	for p := arch.Param(0); p < arch.NumParams; p++ {
		for i := range xty {
			xty[i] = 0
		}
		kmax := float64(arch.DomainSize(p) - 1)
		for _, ph := range phases {
			y := 0.0
			if kmax > 0 {
				y = float64(arch.IndexOf(p, ph.Best[p])) / kmax
			}
			for i, xi := range ph.Features {
				xty[i] += xi * y
			}
		}
		m.weights[p] = cholSolve(chol, d, xty)
	}
	_ = n
	return m, nil
}

// Predict evaluates each regression and rounds to the nearest legal value.
func (m *Ridge) Predict(features []float64) arch.Config {
	var cfg arch.Config
	for p := arch.Param(0); p < arch.NumParams; p++ {
		y := 0.0
		for i, xi := range features {
			y += m.weights[p][i] * xi
		}
		kmax := arch.DomainSize(p) - 1
		idx := int(math.Round(y * float64(kmax)))
		if idx < 0 {
			idx = 0
		}
		if idx > kmax {
			idx = kmax
		}
		cfg[p] = arch.Domain(p)[idx]
	}
	return cfg
}

// cholesky factors the symmetric positive-definite matrix a (d x d,
// row-major) in place into L (lower triangular).
func cholesky(a []float64, d int) ([]float64, error) {
	l := append([]float64(nil), a...)
	for j := 0; j < d; j++ {
		sum := l[j*d+j]
		for k := 0; k < j; k++ {
			sum -= l[j*d+k] * l[j*d+k]
		}
		if sum <= 0 {
			return nil, errors.New("altmodel: Gram matrix not positive definite")
		}
		l[j*d+j] = math.Sqrt(sum)
		for i := j + 1; i < d; i++ {
			s := l[i*d+j]
			for k := 0; k < j; k++ {
				s -= l[i*d+k] * l[j*d+k]
			}
			l[i*d+j] = s / l[j*d+j]
		}
	}
	return l, nil
}

// cholSolve solves L L^T w = b.
func cholSolve(l []float64, d int, b []float64) []float64 {
	y := make([]float64, d)
	for i := 0; i < d; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*d+k] * y[k]
		}
		y[i] = s / l[i*d+i]
	}
	w := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < d; k++ {
			s -= l[k*d+i] * w[k]
		}
		w[i] = s / l[i*d+i]
	}
	return w
}

// ---------------------------------------------------------------------------
// Table-driven predictor (Kontorinis et al. [32] style).

// Table quantises a few summary statistics of the feature vector into a
// small index and stores the majority best-configuration per bucket. It is
// cheap in hardware but coarse: distinct behaviours that share a bucket
// collide.
type Table struct {
	buckets map[int]arch.Config
	def     arch.Config // majority config overall, for empty buckets
	bits    int
}

// NewTable builds a table predictor with 2^bits buckets (bits in [2, 12]).
func NewTable(bits int, phases []TrainingPhase) (*Table, error) {
	if len(phases) == 0 {
		return nil, errors.New("altmodel: no training phases")
	}
	if bits < 2 || bits > 12 {
		return nil, fmt.Errorf("altmodel: bits = %d out of range [2,12]", bits)
	}
	t := &Table{buckets: map[int]arch.Config{}, bits: bits}
	votes := map[int]map[arch.Config]int{}
	defVotes := map[arch.Config]int{}
	for _, p := range phases {
		b := t.bucket(p.Features)
		if votes[b] == nil {
			votes[b] = map[arch.Config]int{}
		}
		votes[b][p.Best]++
		defVotes[p.Best]++
	}
	pickMajority := func(vs map[arch.Config]int) arch.Config {
		var best arch.Config
		bestN := -1
		for cfg, n := range vs {
			if n > bestN || (n == bestN && cfg.String() < best.String()) {
				best, bestN = cfg, n
			}
		}
		return best
	}
	for b, vs := range votes {
		t.buckets[b] = pickMajority(vs)
	}
	t.def = pickMajority(defVotes)
	return t, nil
}

// bucket hashes coarse feature statistics into the table index.
func (t *Table) bucket(features []float64) int {
	// Three summary statistics: mass in the low third, middle third and
	// top third of the vector — a crude behaviour fingerprint.
	n := len(features)
	third := n / 3
	if third == 0 {
		third = 1
	}
	sums := [3]float64{}
	for i, v := range features {
		sums[min(i/third, 2)] += v
	}
	total := sums[0] + sums[1] + sums[2]
	if total == 0 {
		return 0
	}
	levels := 1 << (t.bits / 3)
	if levels < 2 {
		levels = 2
	}
	idx := 0
	for _, s := range sums {
		q := int(s / total * float64(levels))
		if q >= levels {
			q = levels - 1
		}
		idx = idx*levels + q
	}
	return idx % (1 << t.bits)
}

// Predict looks the bucket up, falling back to the global majority.
func (t *Table) Predict(features []float64) arch.Config {
	if cfg, ok := t.buckets[t.bucket(features)]; ok {
		return cfg
	}
	return t.def
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
