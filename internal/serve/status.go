package serve

import (
	"net/http"
	"strconv"
)

// StatusResponse is the GET /v1/status payload: the SLO view of the
// server. Unlike /healthz it carries no uptime — every field is either a
// monotonic counter, a derived rate, or a windowed latency quantile, so
// two status snapshots diff cleanly without a wall-clock term.
type StatusResponse struct {
	Status   string         `json:"status"`
	Model    ModelInfo      `json:"model"`
	Requests []RequestCount `json:"requests"`
	// ErrorRate is the share of requests answered 4xx/5xx; ServerErrorRate
	// counts 5xx only.
	ErrorRate       float64         `json:"errorRate"`
	ServerErrorRate float64         `json:"serverErrorRate"`
	Saturated       uint64          `json:"saturated"`
	Reloads         uint64          `json:"reloads"`
	Cache           CacheStatus     `json:"cache"`
	Batch           BatchStatus     `json:"batch"`
	Latency         []RouteLatency  `json:"latency"`
	Admission       AdmissionStatus `json:"admission"`
	Shadow          *ShadowStatus   `json:"shadow,omitempty"`
}

// RequestCount is one (path, status code) request counter.
type RequestCount struct {
	Path  string `json:"path"`
	Code  string `json:"code"`
	Count uint64 `json:"count"`
}

// CacheStatus summarises the LRU decision cache.
type CacheStatus struct {
	Entries int     `json:"entries"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hitRate"`
}

// BatchStatus summarises batching and coalescing.
type BatchStatus struct {
	Requests  uint64 `json:"requests"`
	Items     uint64 `json:"items"`
	Kernels   uint64 `json:"kernels"`
	Coalesced uint64 `json:"coalesced"`
}

// RouteLatency is one route's windowed latency quantiles (seconds, over
// roughly the last minute of traffic) plus its window and lifetime counts.
type RouteLatency struct {
	Path        string  `json:"path"`
	WindowCount uint64  `json:"windowCount"`
	TotalCount  uint64  `json:"totalCount"`
	P50Seconds  float64 `json:"p50Seconds"`
	P99Seconds  float64 `json:"p99Seconds"`
	P999Seconds float64 `json:"p999Seconds"`
}

// AdmissionStatus is the per-class admission view: one row per class in
// shed order (most important first), with per-class windowed latency even
// when admission control itself is disabled.
type AdmissionStatus struct {
	Enabled          bool          `json:"enabled"`
	TargetP99Seconds float64       `json:"targetP99Seconds,omitempty"`
	Classes          []ClassStatus `json:"classes"`
}

// ClassStatus is one admission class's counters and windowed latency.
type ClassStatus struct {
	Class       string            `json:"class"`
	Requests    uint64            `json:"requests"`
	Shed        uint64            `json:"shed"`
	ShedByCause map[string]uint64 `json:"shedByCause,omitempty"`
	Inflight    int64             `json:"inflight"`
	WindowCount uint64            `json:"windowCount"`
	TotalCount  uint64            `json:"totalCount"`
	P50Seconds  float64           `json:"p50Seconds"`
	P99Seconds  float64           `json:"p99Seconds"`
}

// handleStatus serves the SLO snapshot. Request counts come from the same
// vec /metrics exposes (CounterVec.Each iterates deterministically), and
// each route's three quantiles are read from one consistent histogram
// snapshot so a p50/p99/p999 row can never be torn.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	resp := StatusResponse{
		Status:    "ok",
		Model:     modelInfo(s.engine.Load()),
		Saturated: s.metrics.saturated.Value(),
		Reloads:   s.metrics.reloads.Value(),
		Cache: CacheStatus{
			Entries: s.cache.len(),
			Hits:    s.metrics.hits.Value(),
			Misses:  s.metrics.misses.Value(),
			HitRate: s.metrics.hitRate(),
		},
		Batch: BatchStatus{
			Requests:  s.metrics.batchRequests.Value(),
			Items:     s.metrics.batchItems.Value(),
			Kernels:   s.metrics.batches.Value(),
			Coalesced: s.metrics.coalesced.Value(),
		},
	}
	var total, errs, serverErrs uint64
	s.metrics.requests.Each(func(values []string, count uint64) {
		resp.Requests = append(resp.Requests, RequestCount{Path: values[0], Code: values[1], Count: count})
		total += count
		if code, err := strconv.Atoi(values[1]); err == nil {
			if code >= 400 {
				errs += count
			}
			if code >= 500 {
				serverErrs += count
			}
		}
	})
	if total > 0 {
		resp.ErrorRate = float64(errs) / float64(total)
		resp.ServerErrorRate = float64(serverErrs) / float64(total)
	}
	for _, path := range routePaths {
		h := s.metrics.routeLat[path]
		qs := h.Quantiles(0.5, 0.99, 0.999)
		resp.Latency = append(resp.Latency, RouteLatency{
			Path:        path,
			WindowCount: h.Count(),
			TotalCount:  h.TotalCount(),
			P50Seconds:  qs[0],
			P99Seconds:  qs[1],
			P999Seconds: qs[2],
		})
	}
	resp.Admission = s.admissionStatus()
	resp.Shadow = s.shadow.status()
	writeJSON(w, http.StatusOK, resp)
}

// admissionStatus assembles the per-class rows, most important class
// first (the reverse of shed order).
func (s *Server) admissionStatus() AdmissionStatus {
	st := AdmissionStatus{Enabled: s.adm != nil}
	if s.adm != nil {
		st.TargetP99Seconds = s.adm.target
	}
	shed := map[string]map[string]uint64{}
	s.metrics.shed.Each(func(values []string, count uint64) {
		byCause := shed[values[0]]
		if byCause == nil {
			byCause = map[string]uint64{}
			shed[values[0]] = byCause
		}
		byCause[values[1]] += count
	})
	requests := map[string]uint64{}
	s.metrics.classRequests.Each(func(values []string, count uint64) {
		requests[values[0]] += count
	})
	for c := NumClasses; c > 0; {
		c--
		name := c.String()
		h := s.metrics.classLat[c]
		qs := h.Quantiles(0.5, 0.99)
		row := ClassStatus{
			Class:       name,
			Requests:    requests[name],
			ShedByCause: shed[name],
			WindowCount: h.Count(),
			TotalCount:  h.TotalCount(),
			P50Seconds:  qs[0],
			P99Seconds:  qs[1],
		}
		for _, n := range row.ShedByCause {
			row.Shed += n
		}
		if s.adm != nil {
			row.Inflight = s.adm.inflightOf(c)
		}
		st.Classes = append(st.Classes, row)
	}
	return st
}
