package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
)

// shadowJob is one primary decision duplicated for shadow evaluation:
// the feature vector, the decision the active engine made, and which
// engine made it (so comparisons across a hot-swap are discarded instead
// of polluting the agreement stats).
type shadowJob struct {
	eng      *Engine
	features []float64
	config   arch.Config
}

// shadowState evaluates a candidate engine on duplicated production
// traffic, strictly off the request path: the predict handlers enqueue
// finished decisions with a non-blocking send (a full queue drops the
// duplicate, never delays the response) and a single worker goroutine
// replays them against the shadow. Counters are epoch-scoped: promotion
// resets them so the next candidate starts clean.
type shadowState struct {
	eng    atomic.Pointer[Engine]
	source atomic.Pointer[string]

	jobs     chan shadowJob
	stop     chan struct{}
	stopOnce sync.Once
	stopped  chan struct{}

	enqueued   atomic.Uint64 // jobs accepted into the queue
	processed  atomic.Uint64 // jobs consumed by the worker (compared + stale)
	dropped    atomic.Uint64 // duplicates lost to a full queue
	stale      atomic.Uint64 // jobs skipped: engine swapped or dimensions differ
	compared   atomic.Uint64 // decisions actually replayed on the shadow
	matched    atomic.Uint64 // compared decisions with every parameter equal
	paramAgree atomic.Uint64 // per-parameter agreements across compared decisions
	paramTotal atomic.Uint64 // per-parameter comparisons (compared * NumParams)
}

// newShadowState starts the evaluation worker.
func newShadowState(eng *Engine, source string, queue int, active func() *Engine) *shadowState {
	st := &shadowState{
		jobs:    make(chan shadowJob, queue),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	st.eng.Store(eng)
	st.source.Store(&source)
	go st.run(active)
	return st
}

// observe duplicates one finished primary decision. Non-blocking: the
// primary response is already (or about to be) on the wire, and nothing
// here may delay the next request.
func (st *shadowState) observe(eng *Engine, features []float64, cfg arch.Config) {
	select {
	case st.jobs <- shadowJob{eng: eng, features: features, config: cfg}:
		st.enqueued.Add(1)
	default:
		st.dropped.Add(1)
	}
}

// run is the evaluation worker; active reports the current primary engine
// so comparisons straddling a hot-swap are discarded as stale.
func (st *shadowState) run(active func() *Engine) {
	defer close(st.stopped)
	for {
		select {
		case j := <-st.jobs:
			st.compare(j, active())
		case <-st.stop:
			return
		}
	}
}

// compare replays one duplicated decision on the shadow engine.
func (st *shadowState) compare(j shadowJob, primary *Engine) {
	defer st.processed.Add(1)
	sh := st.eng.Load()
	if sh == nil || j.eng != primary || sh.Dim() != j.eng.Dim() {
		st.stale.Add(1)
		return
	}
	got, _ := sh.Predict(j.features)
	agree := uint64(0)
	for p := arch.Param(0); p < arch.NumParams; p++ {
		if got[p] == j.config[p] {
			agree++
		}
	}
	st.compared.Add(1)
	st.paramAgree.Add(agree)
	st.paramTotal.Add(uint64(arch.NumParams))
	if agree == uint64(arch.NumParams) {
		st.matched.Add(1)
	}
}

// close stops the worker. Enqueues after close fall into the queue until
// it fills, then drop — the predict path never notices.
func (st *shadowState) close() {
	st.stopOnce.Do(func() { close(st.stop) })
	<-st.stopped
}

// clear empties the shadow slot and resets the epoch counters (called on
// promotion: the promoted model is now primary, and a future candidate
// must not inherit its stats).
func (st *shadowState) clear() {
	st.eng.Store(nil)
	st.source.Store(nil)
	st.compared.Store(0)
	st.matched.Store(0)
	st.paramAgree.Store(0)
	st.paramTotal.Store(0)
	st.stale.Store(0)
}

// ShadowStatus is the shadow section of GET /v1/status and /v1/models:
// the candidate's identity plus its agreement with the active model over
// the duplicated traffic evaluated so far.
type ShadowStatus struct {
	Model  ModelInfo `json:"model"`
	Source string    `json:"source,omitempty"`
	// Compared counts decisions replayed on the shadow; Dropped the
	// duplicates lost to a full queue; Stale the ones discarded because
	// the primary swapped mid-flight.
	Compared uint64 `json:"compared"`
	Dropped  uint64 `json:"dropped"`
	Stale    uint64 `json:"stale"`
	// ParamAgreement is the fraction of per-parameter decisions the
	// shadow agreed on; DecisionMatchRate the fraction of whole
	// configurations that matched exactly; Divergence the count that did
	// not.
	ParamAgreement    float64 `json:"paramAgreement"`
	DecisionMatchRate float64 `json:"decisionMatchRate"`
	Divergence        uint64  `json:"divergence"`
}

// status snapshots the shadow slot; nil when the slot is empty.
func (st *shadowState) status() *ShadowStatus {
	if st == nil {
		return nil
	}
	sh := st.eng.Load()
	if sh == nil {
		return nil
	}
	out := &ShadowStatus{
		Model:    modelInfo(sh),
		Compared: st.compared.Load(),
		Dropped:  st.dropped.Load(),
		Stale:    st.stale.Load(),
	}
	if src := st.source.Load(); src != nil {
		out.Source = *src
	}
	if pt := st.paramTotal.Load(); pt > 0 {
		out.ParamAgreement = float64(st.paramAgree.Load()) / float64(pt)
	}
	if out.Compared > 0 {
		out.DecisionMatchRate = float64(st.matched.Load()) / float64(out.Compared)
		out.Divergence = out.Compared - st.matched.Load()
	}
	return out
}

// ShadowStats snapshots the shadow slot (nil when no shadow is loaded).
func (s *Server) ShadowStats() *ShadowStatus { return s.shadow.status() }

// ShadowDrain blocks until every duplicated decision enqueued so far has
// been evaluated (or timeout passes), reporting whether the queue
// drained. Benchmarks call it before reading agreement stats; the serving
// path never waits on anything shadow-related.
func (s *Server) ShadowDrain(timeout time.Duration) bool {
	if s.shadow == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for s.shadow.processed.Load() < s.shadow.enqueued.Load() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}
