package serve

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
)

// decisionCache is a bounded LRU cache of predict decisions keyed by the
// quantized feature vector. Two feature vectors that agree to the key
// resolution share a decision — phases repeat, so a hot serving path sees
// the same (or nearly the same) counters over and over and should not pay
// the 14-model argmax each time.
type decisionCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one cached decision. It remembers the engine that made it
// so a decision computed just before a hot-swap can never be served after
// it: get compares the entry's engine against the current one.
type cacheEntry struct {
	key    string
	eng    *Engine
	config arch.Config
	probs  [arch.NumParams][]float64
	// rendered memoises the hit response body (cached:true, which every
	// lookup after the first produces) per variant: [0] default, [1]
	// ?probs=1. A decision never changes once cached, so neither do its
	// bytes; concurrent first renders race benignly to store identical
	// slices. Keeps the JSON encoder off the hot hit path.
	rendered [2]atomic.Pointer[[]byte]
}

// newDecisionCache returns a cache holding up to max entries; max <= 0
// disables caching (lookups miss, stores drop).
func newDecisionCache(max int) *decisionCache {
	return &decisionCache{max: max, order: list.New(), items: map[string]*list.Element{}}
}

// enabled reports whether the cache stores anything at all; the batch path
// uses it to decide whether intra-batch duplicates would have hit.
func (c *decisionCache) enabled() bool { return c.max > 0 }

// keyQuantBits is the fixed-point resolution of the cache key: features
// (normalised into roughly [0,1]) are rounded to 1/2^keyQuantBits. Coarse
// enough to absorb measurement jitter, fine enough that genuinely
// different phases do not collide.
const keyQuantBits = 12

// cacheKey quantizes a feature vector into a compact string key: each
// feature becomes a little-endian int16 of its fixed-point value.
func cacheKey(features []float64) string {
	b := make([]byte, 0, 2*len(features))
	for _, v := range features {
		q := math.Round(v * (1 << keyQuantBits))
		if q > math.MaxInt16 {
			q = math.MaxInt16
		}
		if q < math.MinInt16 {
			q = math.MinInt16
		}
		u := uint16(int16(q))
		b = append(b, byte(u), byte(u>>8))
	}
	return string(b)
}

// get returns the cached decision for key, if any, marking it recently
// used.
func (c *decisionCache) get(key string) (*cacheEntry, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores a decision, evicting the least recently used entry when full.
func (c *decisionCache) put(e *cacheEntry) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.items[e.key] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// purge drops every entry (called on model hot-swap: a new model's
// decisions may differ for the same features).
func (c *decisionCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}

// len returns the current entry count.
func (c *decisionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
