package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/softmax"
)

// trainDivergentPredictor trains on the same features as
// trainTestPredictor but with the phase labels swapped, so the two models
// disagree on the training vectors by construction.
func trainDivergentPredictor(t testing.TB) *core.Predictor {
	t.Helper()
	d := counters.Dim(counters.Basic)
	memFeat := make([]float64, d)
	memFeat[0] = 1
	memFeat[d-1] = 1
	cpuFeat := make([]float64, d)
	cpuFeat[1] = 1
	cpuFeat[d-1] = 1
	phases := []core.PhaseExample{
		{Features: memFeat, Good: []arch.Config{arch.Baseline().With(arch.L2CacheKB, 256).With(arch.Width, 8)}},
		{Features: cpuFeat, Good: []arch.Config{arch.Baseline().With(arch.L2CacheKB, 4096).With(arch.Width, 2)}},
	}
	opts := softmax.DefaultOptions()
	opts.MaxIter = 40
	pred, err := core.TrainPredictor(counters.Basic, phases, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

// newShadowServer boots a server whose shadow slot holds an engine built
// from pred (the primary is the usual test predictor).
func newShadowServer(t testing.TB, pred *core.Predictor, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	sh, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	return newTestServer(t, append([]Option{WithShadow(sh, "test-shadow.bin")}, opts...)...)
}

// TestShadowByteIdenticalResponses is the tentpole's isolation contract:
// a server with a shadow loaded must produce byte-identical responses to
// an identically configured server without one — singles, batches, both
// probs variants, cached flags included.
func TestShadowByteIdenticalResponses(t *testing.T) {
	_, plainTS := newTestServer(t, WithCacheSize(64))
	_, shadowTS := newShadowServer(t, trainDivergentPredictor(t), WithCacheSize(64))

	pool := SyntheticFeatures(counters.Dim(counters.Basic), 6, 33)
	fire := func(ts *httptest.Server) []byte {
		var out bytes.Buffer
		for _, probs := range []string{"", "?probs=1"} {
			for _, f := range pool {
				body, err := json.Marshal(PredictRequest{Features: f})
				if err != nil {
					t.Fatal(err)
				}
				resp, data := postPath(t, ts, "/v1/predict"+probs, body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("predict -> %d: %s", resp.StatusCode, data)
				}
				out.Write(data)
			}
			batch, err := json.Marshal(PredictRequest{Batch: pool})
			if err != nil {
				t.Fatal(err)
			}
			resp, data := postPath(t, ts, "/v1/predict"+probs, batch)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("batch -> %d: %s", resp.StatusCode, data)
			}
			out.Write(data)
		}
		return out.Bytes()
	}
	want := fire(plainTS)
	got := fire(shadowTS)
	if !bytes.Equal(got, want) {
		t.Errorf("shadow-on responses differ from shadow-off:\n--- shadow ---\n%s\n--- plain ---\n%s", got, want)
	}
}

// TestShadowAgreementIdenticalModel: a shadow built from the same weights
// as the primary must report perfect agreement once the queue drains.
func TestShadowAgreementIdenticalModel(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	sh, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, WithShadow(sh, "same.bin"), WithCacheSize(16))
	pool := SyntheticFeatures(counters.Dim(counters.Basic), 4, 5)
	for _, f := range pool {
		body, err := json.Marshal(PredictRequest{Features: f})
		if err != nil {
			t.Fatal(err)
		}
		postPredict(t, ts, body)
		postPredict(t, ts, body) // the cache-hit path must also duplicate
	}
	if !s.ShadowDrain(10 * time.Second) {
		t.Fatal("shadow queue did not drain")
	}
	st := s.ShadowStats()
	if st == nil {
		t.Fatal("no shadow stats")
	}
	if st.Compared != uint64(2*len(pool)) {
		t.Errorf("compared = %d, want %d (hits duplicated too)", st.Compared, 2*len(pool))
	}
	if st.ParamAgreement != 1 || st.DecisionMatchRate != 1 || st.Divergence != 0 {
		t.Errorf("identical shadow disagreed: %+v", st)
	}
	if st.Source != "same.bin" || st.Model.Version != s.Engine().Version() {
		t.Errorf("shadow identity wrong: %+v", st)
	}
	// The same numbers surface on /v1/status and /v1/models.
	sr := getStatus(t, ts.URL)
	if sr.Shadow == nil || sr.Shadow.ParamAgreement != 1 {
		t.Errorf("status shadow section = %+v", sr.Shadow)
	}
}

// TestShadowDivergenceDetected: a shadow trained with swapped labels must
// disagree on the training vectors.
func TestShadowDivergenceDetected(t *testing.T) {
	s, ts := newShadowServer(t, trainDivergentPredictor(t), WithCacheSize(16))
	d := counters.Dim(counters.Basic)
	memFeat := make([]float64, d)
	memFeat[0] = 1
	memFeat[d-1] = 1
	body, err := json.Marshal(PredictRequest{Features: memFeat})
	if err != nil {
		t.Fatal(err)
	}
	postPredict(t, ts, body)
	if !s.ShadowDrain(10 * time.Second) {
		t.Fatal("shadow queue did not drain")
	}
	st := s.ShadowStats()
	if st.Compared != 1 || st.Divergence != 1 || st.DecisionMatchRate != 0 {
		t.Errorf("divergent shadow stats = %+v, want 1 compared / 1 divergence", st)
	}
	if st.ParamAgreement >= 1 {
		t.Errorf("paramAgreement = %v, want < 1", st.ParamAgreement)
	}
}

// TestModelsEndpoint covers GET /v1/models with and without a shadow.
func TestModelsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, WithActiveSource("active.bin"))
	resp, data := getJSON(t, ts.URL+"/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/models -> %d: %s", resp.StatusCode, data)
	}
	var mr ModelsResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Active.Source != "active.bin" || mr.Active.Model.Version != s.Engine().Version() {
		t.Errorf("active section = %+v", mr.Active)
	}
	if mr.Shadow != nil {
		t.Errorf("shadow section present without a shadow: %+v", mr.Shadow)
	}

	s2, ts2 := newShadowServer(t, trainTestPredictor(t, counters.Basic))
	_, data2 := getJSON(t, ts2.URL+"/v1/models")
	var mr2 ModelsResponse
	if err := json.Unmarshal(data2, &mr2); err != nil {
		t.Fatal(err)
	}
	if mr2.Shadow == nil || mr2.Shadow.Source != "test-shadow.bin" {
		t.Fatalf("shadow section = %+v", mr2.Shadow)
	}
	if mr2.Shadow.Model.Version != s2.shadow.eng.Load().Version() {
		t.Errorf("shadow version mismatch: %+v", mr2.Shadow.Model)
	}
}

// getJSON GETs a URL and returns the response and body.
func getJSON(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestPromote covers the full promotion lifecycle: no shadow (409), gates
// unmet (412), success (hot-swap + cache purge + source update + slot
// cleared), and repeat promotion without a shadow (409 again).
func TestPromote(t *testing.T) {
	// 409 without a shadow.
	_, plainTS := newTestServer(t)
	resp, data := postPath(t, plainTS, "/v1/models/promote", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote without shadow -> %d: %s", resp.StatusCode, data)
	}

	pred := trainTestPredictor(t, counters.Basic)
	s, ts := newShadowServer(t, pred, WithCacheSize(16))
	shadowEng := s.shadow.eng.Load()
	primary := s.Engine()

	d := counters.Dim(counters.Basic)
	postPredict(t, ts, predictBody(t, d, 1))
	if !s.ShadowDrain(10 * time.Second) {
		t.Fatal("shadow queue did not drain")
	}

	// 412: not enough evidence.
	gates, _ := json.Marshal(PromoteRequest{MinCompared: 1000})
	resp, data = postPath(t, ts, "/v1/models/promote", gates)
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("promote with unmet compared gate -> %d: %s", resp.StatusCode, data)
	}
	gates, _ = json.Marshal(PromoteRequest{MinAgreement: 2}) // unreachable
	resp, data = postPath(t, ts, "/v1/models/promote", gates)
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("promote with unmet agreement gate -> %d: %s", resp.StatusCode, data)
	}
	if s.Engine() != primary {
		t.Fatal("failed promotion swapped the engine")
	}

	// Success, with satisfiable gates.
	gates, _ = json.Marshal(PromoteRequest{MinAgreement: 0.99, MinCompared: 1})
	resp, data = postPath(t, ts, "/v1/models/promote", gates)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote -> %d: %s", resp.StatusCode, data)
	}
	var pr PromoteResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Promoted || pr.Model.Version != shadowEng.Version() || pr.Previous.Version != primary.Version() {
		t.Errorf("promote payload = %+v", pr)
	}
	if s.Engine() != shadowEng {
		t.Error("engine not swapped to the shadow")
	}
	if s.cache.len() != 0 {
		t.Error("decision cache not purged by promotion")
	}
	if s.ActiveSource() != "test-shadow.bin" {
		t.Errorf("active source = %q, want test-shadow.bin", s.ActiveSource())
	}
	if s.ShadowStats() != nil {
		t.Error("shadow slot not cleared by promotion")
	}
	if s.metrics.promotes.Value() != 1 {
		t.Errorf("promotes counter = %d, want 1", s.metrics.promotes.Value())
	}
	// The slot is empty now: promoting again conflicts.
	resp, _ = postPath(t, ts, "/v1/models/promote", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("second promote -> %d, want 409", resp.StatusCode)
	}
	// And the promoted engine still answers.
	if resp, _ := postPredict(t, ts, predictBody(t, d, 1)); resp.StatusCode != http.StatusOK {
		t.Error("predict after promotion failed")
	}
}

// TestShadowZeroAllocOnPrimaryPath pins the acceptance bar: duplicating
// a decision to the shadow adds zero allocations to the primary cache-hit
// path. The worker is stopped and the 1-slot queue pre-filled so every
// observe takes the drop branch (a channel send of a value struct), which
// is the steady state under overload.
func TestShadowZeroAllocOnPrimaryPath(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	measure := func(s *Server) float64 {
		f := SyntheticFeatures(counters.Dim(counters.Basic), 1, 9)[0]
		eng := s.Engine()
		s.resolveSingle(eng, f) // warm the cache entry
		s.renderResponse(eng, mustHit(t, s, f), true, false)
		return testing.AllocsPerRun(200, func() {
			entry, hit := s.resolveSingle(eng, f)
			if !hit {
				t.Fatal("expected cache hit")
			}
			s.renderResponse(eng, entry, true, false)
		})
	}
	plain, _ := newTestServer(t, WithCacheSize(16))
	sh, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	shadowed, _ := newTestServer(t, WithCacheSize(16), WithShadow(sh, "x.bin"), WithShadowQueue(1))
	shadowed.Close()                                                                                                    // stop the worker (its own allocs would pollute the count)
	shadowed.shadow.observe(shadowed.Engine(), SyntheticFeatures(counters.Dim(counters.Basic), 1, 9)[0], arch.Config{}) // fill the 1-slot queue

	base := measure(plain)
	withShadow := measure(shadowed)
	if withShadow > base {
		t.Errorf("shadow adds allocations to the primary hot path: %v vs %v per op", withShadow, base)
	}
	if shadowed.shadow.dropped.Load() == 0 {
		t.Error("expected drops on the pre-filled queue")
	}
}

// mustHit returns the live cache entry for f.
func mustHit(t testing.TB, s *Server, f []float64) *cacheEntry {
	t.Helper()
	entry, hit := s.cache.get(cacheKey(f))
	if !hit {
		t.Fatal("no cache entry")
	}
	return entry
}
