package serve

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"repro/internal/obs"
)

// debugHandler mounts the introspection endpoints next to the API mux.
// They sit outside the per-request timeout: CPU profiles and execution
// traces legitimately run for tens of seconds.
func (s *Server) debugHandler(api http.Handler) http.Handler {
	outer := http.NewServeMux()
	outer.Handle("/", api)
	outer.HandleFunc("/debug/pprof/", pprof.Index)
	outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
	outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
	outer.HandleFunc("/debug/vars", s.handleVars)
	outer.HandleFunc("/debug/trace", s.handleTrace)
	return outer
}

// VarsResponse is the GET /debug/vars payload: an expvar-style JSON
// snapshot of the server's own metrics, the process-wide registry, and
// basic runtime stats.
type VarsResponse struct {
	Server        map[string]any `json:"server"`
	Process       map[string]any `json:"process"`
	Runtime       RuntimeVars    `json:"runtime"`
	UptimeSeconds float64        `json:"uptimeSeconds"`
}

// RuntimeVars summarises the Go runtime.
type RuntimeVars struct {
	Goroutines      int    `json:"goroutines"`
	HeapAllocBytes  uint64 `json:"heapAllocBytes"`
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	NumGC           uint32 `json:"numGC"`
}

// registryVars unmarshals a registry snapshot back into a generic map so
// it nests inside the vars payload.
func registryVars(r *obs.Registry) (map[string]any, error) {
	data, err := r.JSON()
	if err != nil {
		return nil, err
	}
	out := map[string]any{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// handleVars serves the expvar-style snapshot.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	server, err := registryVars(s.metrics.reg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rendering server metrics: %v", err)
		return
	}
	process, err := registryVars(obs.DefaultRegistry())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rendering process metrics: %v", err)
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, VarsResponse{
		Server:  server,
		Process: process,
		Runtime: RuntimeVars{
			Goroutines:      runtime.NumGoroutine(),
			HeapAllocBytes:  ms.HeapAlloc,
			TotalAllocBytes: ms.TotalAlloc,
			NumGC:           ms.NumGC,
		},
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleTrace serves a Chrome trace_event snapshot of the attached
// tracer (open with chrome://tracing or ui.perfetto.dev).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	t := s.opt.tracer
	if t == nil {
		writeError(w, http.StatusNotFound, "no tracer attached (run adaptd with -debug)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := t.WriteChrome(w); err != nil {
		writeError(w, http.StatusInternalServerError, "writing trace: %v", err)
	}
}
