package serve

import (
	"testing"

	"repro/internal/arch"
)

func entryFor(key string) *cacheEntry {
	return &cacheEntry{key: key, config: arch.Baseline()}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newDecisionCache(2)
	c.put(entryFor("a"))
	c.put(entryFor("b"))
	if _, ok := c.get("a"); !ok { // touch a -> b becomes LRU
		t.Fatal("a missing")
	}
	c.put(entryFor("c")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be present")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newDecisionCache(0)
	c.put(entryFor("a"))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

func TestCachePurge(t *testing.T) {
	c := newDecisionCache(8)
	c.put(entryFor("a"))
	c.put(entryFor("b"))
	c.purge()
	if c.len() != 0 {
		t.Errorf("len after purge = %d", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Error("purged entry still readable")
	}
	c.put(entryFor("c"))
	if _, ok := c.get("c"); !ok {
		t.Error("cache unusable after purge")
	}
}

func TestCacheKeyQuantization(t *testing.T) {
	a := []float64{0.5, 0.25, 1}
	b := []float64{0.5 + 1e-9, 0.25, 1} // sub-resolution jitter
	c := []float64{0.5, 0.26, 1}        // a real difference
	if cacheKey(a) != cacheKey(b) {
		t.Error("sub-resolution jitter changed the key")
	}
	if cacheKey(a) == cacheKey(c) {
		t.Error("distinct features collided")
	}
	// Out-of-range values must clamp, not wrap.
	if cacheKey([]float64{1e9}) != cacheKey([]float64{1e12}) {
		t.Error("clamped extremes should share a key")
	}
	if cacheKey([]float64{1e9}) == cacheKey([]float64{-1e9}) {
		t.Error("opposite extremes should not collide")
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := newDecisionCache(2)
	c.put(entryFor("a"))
	e2 := entryFor("a")
	e2.config = arch.MinConfig()
	c.put(e2)
	if c.len() != 1 {
		t.Errorf("duplicate key grew the cache: len=%d", c.len())
	}
	got, ok := c.get("a")
	if !ok || got.config != arch.MinConfig() {
		t.Error("update did not replace the entry")
	}
}
