package serve

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/counters"
)

func TestSyntheticFeaturesDeterministic(t *testing.T) {
	a := SyntheticFeatures(16, 4, 7)
	b := SyntheticFeatures(16, 4, 7)
	if len(a) != 4 || len(a[0]) != 16 {
		t.Fatalf("wrong shape: %dx%d", len(a), len(a[0]))
	}
	for i := range a {
		if a[i][15] != 1 {
			t.Errorf("vector %d bias = %f", i, a[i][15])
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed produced different features at [%d][%d]", i, j)
			}
		}
	}
	c := SyntheticFeatures(16, 4, 8)
	if a[0][0] == c[0][0] {
		t.Error("different seeds produced identical features")
	}
}

func TestLoadGenDeterministicCounts(t *testing.T) {
	run := func() LoadReport {
		_, ts := newTestServer(t, Config{CacheSize: 64, MaxInflight: 32})
		lg := LoadGen{
			Requests:    120,
			Concurrency: 4,
			Seed:        42,
			Pool:        SyntheticFeatures(counters.Dim(counters.Basic), 8, 42),
		}
		rep, err := lg.Run(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if r1.Requests != 120 || r1.OK != 120 || r1.Rejected != 0 || r1.ServerErr != 0 || r1.Transport != 0 {
		t.Errorf("unexpected counts: %+v", r1)
	}
	if r1.Requests != r2.Requests || r1.OK != r2.OK {
		t.Errorf("seeded runs disagree: %d/%d vs %d/%d", r1.Requests, r1.OK, r2.Requests, r2.OK)
	}
	// 120 requests over an 8-vector pool: the cache must get hot.
	if r1.CacheHits == 0 {
		t.Error("no cache hits on a heavily repeated pool")
	}
}

func TestLoadGenEmptyPool(t *testing.T) {
	if _, err := (LoadGen{Requests: 1}).Run("http://127.0.0.1:0", nil); err == nil {
		t.Error("empty pool accepted")
	}
}

// TestQuantizedAgreesWithFloatServer asserts the §VIII deployment claim at
// the serving layer: across a seeded feature batch, the 8-bit engine must
// make the same per-parameter decision as the float engine almost always
// (>= 90% of parameter decisions).
func TestQuantizedAgreesWithFloatServer(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	floatEng, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	quantEng, err := NewEngine(pred, true)
	if err != nil {
		t.Fatal(err)
	}
	if !quantEng.Quantized() || floatEng.Quantized() {
		t.Fatal("engine modes wrong")
	}
	batch := SyntheticFeatures(counters.Dim(counters.Basic), 64, 2010)
	agree, total := 0, 0
	for _, f := range batch {
		fc, _ := floatEng.Predict(f)
		qc, _ := quantEng.Predict(f)
		for p := arch.Param(0); p < arch.NumParams; p++ {
			total++
			if fc[p] == qc[p] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Errorf("quantized/float agreement %.1f%% (%d/%d), want >= 90%%", 100*frac, agree, total)
	}
}
