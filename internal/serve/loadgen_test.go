package serve

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/counters"
)

func TestSyntheticFeaturesDeterministic(t *testing.T) {
	a := SyntheticFeatures(16, 4, 7)
	b := SyntheticFeatures(16, 4, 7)
	if len(a) != 4 || len(a[0]) != 16 {
		t.Fatalf("wrong shape: %dx%d", len(a), len(a[0]))
	}
	for i := range a {
		if a[i][15] != 1 {
			t.Errorf("vector %d bias = %f", i, a[i][15])
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed produced different features at [%d][%d]", i, j)
			}
		}
	}
	c := SyntheticFeatures(16, 4, 8)
	if a[0][0] == c[0][0] {
		t.Error("different seeds produced identical features")
	}
}

func TestLoadGenDeterministicCounts(t *testing.T) {
	run := func() LoadReport {
		_, ts := newTestServer(t, WithCacheSize(64), WithMaxInflight(32))
		lg := LoadGen{
			Requests:    120,
			Concurrency: 4,
			Seed:        42,
			Pool:        SyntheticFeatures(counters.Dim(counters.Basic), 8, 42),
		}
		rep, err := lg.Run(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if r1.Requests != 120 || r1.OK != 120 || r1.Rejected != 0 || r1.ServerErr != 0 || r1.Transport != 0 {
		t.Errorf("unexpected counts: %+v", r1)
	}
	if r1.Requests != r2.Requests || r1.OK != r2.OK {
		t.Errorf("seeded runs disagree: %d/%d vs %d/%d", r1.Requests, r1.OK, r2.Requests, r2.OK)
	}
	// 120 requests over an 8-vector pool: the cache must get hot.
	if r1.CacheHits == 0 {
		t.Error("no cache hits on a heavily repeated pool")
	}
}

func TestLoadGenEmptyPool(t *testing.T) {
	if _, err := (LoadGen{Requests: 1}).Run("http://127.0.0.1:0", nil); err == nil {
		t.Error("empty pool accepted")
	}
}

// TestQuantizedAgreesWithFloatServer asserts the §VIII deployment claim at
// the serving layer: across a seeded feature batch, the 8-bit engine must
// make the same per-parameter decision as the float engine almost always
// (>= 90% of parameter decisions).
func TestQuantizedAgreesWithFloatServer(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	floatEng, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	quantEng, err := NewEngine(pred, true)
	if err != nil {
		t.Fatal(err)
	}
	if !quantEng.Quantized() || floatEng.Quantized() {
		t.Fatal("engine modes wrong")
	}
	batch := SyntheticFeatures(counters.Dim(counters.Basic), 64, 2010)
	agree, total := 0, 0
	for _, f := range batch {
		fc, _ := floatEng.Predict(f)
		qc, _ := quantEng.Predict(f)
		for p := arch.Param(0); p < arch.NumParams; p++ {
			total++
			if fc[p] == qc[p] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Errorf("quantized/float agreement %.1f%% (%d/%d), want >= 90%%", 100*frac, agree, total)
	}
}

// TestLoadGenScheduleDeterministic: the schedule is a pure function of the
// configuration — same seed, same arrivals; different seed, different ones.
func TestLoadGenScheduleDeterministic(t *testing.T) {
	lg := LoadGen{
		Requests: 200,
		Seed:     11,
		Pool:     SyntheticFeatures(counters.Dim(counters.Basic), 32, 11),
		Mode:     "open",
		RPS:      500,
		ZipfS:    1.1,
	}
	s1, err := lg.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := lg.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 200 {
		t.Fatalf("schedule length %d, want 200", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverged at arrival %d: %+v vs %+v", i, s1[i], s2[i])
		}
		if s1[i].Index < 0 || s1[i].Index >= 32 || s1[i].Class >= NumClasses {
			t.Fatalf("arrival %d out of range: %+v", i, s1[i])
		}
		if i > 0 && s1[i].At < s1[i-1].At {
			t.Fatalf("arrival times not monotone at %d", i)
		}
	}
	lg.Seed = 12
	s3, err := lg.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range s1 {
		if s1[i] == s3[i] {
			same++
		}
	}
	if same == len(s1) {
		t.Error("different seeds produced the identical schedule")
	}
	// Pareto arrivals draw a different (heavier-tailed) gap sequence.
	lg.Seed = 11
	lg.Arrivals = "pareto"
	s4, err := lg.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if s4[len(s4)-1].At == s1[len(s1)-1].At {
		t.Error("pareto arrivals identical to poisson")
	}
}

// TestLoadGenScheduleClassMix: the default mix covers all classes roughly
// proportionally, and a single-class mix stays single-class.
func TestLoadGenScheduleClassMix(t *testing.T) {
	lg := LoadGen{
		Requests: 1000,
		Seed:     3,
		Pool:     SyntheticFeatures(counters.Dim(counters.Basic), 8, 3),
	}
	sched, err := lg.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	var counts [NumClasses]int
	for _, a := range sched {
		counts[a.Class]++
	}
	if counts[ClassInteractive] < counts[ClassBatch] || counts[ClassBatch] < counts[ClassBackground] {
		t.Errorf("default mix out of order: %v", counts)
	}
	for c := Class(0); c < NumClasses; c++ {
		if counts[c] == 0 {
			t.Errorf("class %s absent from default mix", c)
		}
	}
	var mix ClassMix
	mix[ClassBatch] = 1
	lg.Mix = mix
	sched, err = lg.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sched {
		if a.Class != ClassBatch {
			t.Fatalf("single-class mix produced class %s", a.Class)
		}
	}
}

// TestLoadGenZipfSkew: a Zipf-skewed pool concentrates draws on the low
// indices.
func TestLoadGenZipfSkew(t *testing.T) {
	lg := LoadGen{
		Requests: 2000,
		Seed:     4,
		Pool:     SyntheticFeatures(counters.Dim(counters.Basic), 64, 4),
		ZipfS:    1.2,
	}
	sched, err := lg.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 64)
	for _, a := range sched {
		counts[a.Index]++
	}
	head := counts[0] + counts[1] + counts[2] + counts[3]
	if head < len(sched)/4 {
		t.Errorf("zipf head (top 4 of 64) drew only %d of %d", head, len(sched))
	}
	if counts[0] <= counts[63] {
		t.Errorf("index 0 (%d draws) not hotter than index 63 (%d)", counts[0], counts[63])
	}
}

// TestLoadGenOpenLoopDeterministicCounts runs the open loop twice against
// unsaturated servers: every count — total and per class — must repeat
// exactly, with nothing shed or rejected.
func TestLoadGenOpenLoopDeterministicCounts(t *testing.T) {
	run := func() LoadReport {
		_, ts := newTestServer(t, WithCacheSize(64), WithMaxInflight(64))
		lg := LoadGen{
			Requests: 150,
			Seed:     42,
			Pool:     SyntheticFeatures(counters.Dim(counters.Basic), 8, 42),
			Mode:     "open",
			RPS:      2000, // fast run; far below server capacity per-request
			ZipfS:    1.1,
		}
		rep, err := lg.Run(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if r1.Requests != 150 || r1.OK != 150 || r1.Shed != 0 || r1.Rejected != 0 || r1.Transport != 0 {
		t.Fatalf("unexpected counts: %+v", r1)
	}
	if len(r1.Classes) != len(r2.Classes) {
		t.Fatalf("class row counts differ: %d vs %d", len(r1.Classes), len(r2.Classes))
	}
	for i := range r1.Classes {
		a, b := r1.Classes[i], r2.Classes[i]
		if a.Class != b.Class || a.Requests != b.Requests || a.OK != b.OK || a.Shed != b.Shed {
			t.Errorf("class row %d differs between seeded runs: %+v vs %+v", i, a, b)
		}
	}
}

// TestLoadGenValidation rejects inconsistent configurations.
func TestLoadGenValidation(t *testing.T) {
	pool := SyntheticFeatures(counters.Dim(counters.Basic), 2, 1)
	cases := []LoadGen{
		{Requests: 1, Pool: pool, Mode: "open"},                    // no RPS
		{Requests: 1, Pool: pool, Mode: "open", RPS: 10, Batch: 4}, // open + batch
		{Requests: 1, Pool: pool, Mode: "ajar"},                    // unknown mode
		{Requests: 1, Pool: pool, Arrivals: "bursty"},              // unknown law
		{Requests: 1, Pool: pool, Mix: ClassMix{0, -1, 0}},         // negative share
	}
	for i, lg := range cases {
		if _, err := lg.Schedule(); err == nil {
			t.Errorf("case %d accepted: %+v", i, lg)
		}
	}
}
