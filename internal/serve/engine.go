package serve

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
)

// Engine is one immutable, swappable serving model: a validated predictor
// plus, optionally, its 8-bit quantised form (§VIII) used for the actual
// decisions. Engines are never mutated after construction, so the server
// can hot-swap them through an atomic pointer with no locking on the
// predict path.
type Engine struct {
	pred      *core.Predictor
	quant     *core.QuantizedPredictor
	quantized bool
	dim       int
}

// NewEngine validates the predictor and wraps it for serving. When
// quantized is true, decisions and probabilities are computed from the
// 8-bit weights — the hardware-table deployment mode.
func NewEngine(pred *core.Predictor, quantized bool) (*Engine, error) {
	if pred == nil {
		return nil, fmt.Errorf("serve: nil predictor")
	}
	if err := pred.Validate(); err != nil {
		return nil, fmt.Errorf("serve: predictor rejected: %w", err)
	}
	e := &Engine{pred: pred, quantized: quantized, dim: counters.Dim(pred.Set)}
	if quantized {
		e.quant = pred.Quantize()
	}
	return e, nil
}

// Set returns the counter set the engine's features must come from.
func (e *Engine) Set() counters.Set { return e.pred.Set }

// Dim returns the expected feature-vector length.
func (e *Engine) Dim() int { return e.dim }

// Quantized reports whether decisions use the 8-bit weights.
func (e *Engine) Quantized() bool { return e.quantized }

// WeightCount returns the model's total weight count.
func (e *Engine) WeightCount() int { return e.pred.WeightCount() }

// Predict returns the predicted configuration and, for every parameter,
// the soft-max distribution over its domain values.
func (e *Engine) Predict(features []float64) (arch.Config, [arch.NumParams][]float64) {
	var probs [arch.NumParams][]float64
	var ix [arch.NumParams]int
	for param := arch.Param(0); param < arch.NumParams; param++ {
		if e.quantized {
			probs[param] = e.quant.Models[param].Probabilities(features)
		} else {
			probs[param] = e.pred.Models[param].Probabilities(features)
		}
		best, bi := -1.0, 0
		for k, p := range probs[param] {
			if p > best {
				best, bi = p, k
			}
		}
		ix[param] = bi
	}
	return arch.FromIndices(ix), probs
}
