package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/softmax"
)

// Engine is one immutable, swappable serving model: a validated predictor
// plus, optionally, its 8-bit quantised form (§VIII) used for the actual
// decisions. Engines are never mutated after construction, so the server
// can hot-swap them through an atomic pointer with no locking on the
// predict path.
type Engine struct {
	pred      *core.Predictor
	quant     *core.QuantizedPredictor
	quantized bool
	dim       int
	version   string
}

// NewEngine validates the predictor and wraps it for serving. When
// quantized is true, decisions and probabilities are computed from the
// 8-bit weights — the hardware-table deployment mode.
func NewEngine(pred *core.Predictor, quantized bool) (*Engine, error) {
	if pred == nil {
		return nil, fmt.Errorf("serve: nil predictor")
	}
	if err := pred.Validate(); err != nil {
		return nil, fmt.Errorf("serve: predictor rejected: %w", err)
	}
	e := &Engine{pred: pred, quantized: quantized, dim: counters.Dim(pred.Set)}
	if quantized {
		e.quant = pred.Quantize()
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		return nil, fmt.Errorf("serve: fingerprinting predictor: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	e.version = hex.EncodeToString(sum[:6])
	if quantized {
		e.version += "-q8"
	}
	return e, nil
}

// Version returns the model fingerprint: a short SHA-256 of the
// predictor's serialised form (core.Predictor.Save is deterministic, so
// the same weights always fingerprint identically), suffixed "-q8" when
// decisions come from the 8-bit weights. /v1/status and /v1/designspace
// report it so operators can tell which model answered.
func (e *Engine) Version() string { return e.version }

// Set returns the counter set the engine's features must come from.
func (e *Engine) Set() counters.Set { return e.pred.Set }

// Dim returns the expected feature-vector length.
func (e *Engine) Dim() int { return e.dim }

// Quantized reports whether decisions use the 8-bit weights.
func (e *Engine) Quantized() bool { return e.quantized }

// WeightCount returns the model's total weight count.
func (e *Engine) WeightCount() int { return e.pred.WeightCount() }

// batchScratch is the reusable per-call working set of PredictBatch: the
// n x K score matrix the kernels write into. Pooled so a serving hot loop
// issuing batch after batch allocates nothing for scratch.
type batchScratch struct {
	scores []float64
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// Predict returns the predicted configuration and, for every parameter,
// the soft-max distribution over its domain values. It is the batch-of-one
// special case of PredictBatch, so single and batched requests run the
// exact same float operations.
func (e *Engine) Predict(features []float64) (arch.Config, [arch.NumParams][]float64) {
	cfgs, probs := e.PredictBatch([][]float64{features})
	return cfgs[0], probs[0]
}

// PredictBatch evaluates n feature vectors together: per parameter, one
// batched pass over the weight matrix scores every vector (the weight rows
// stay hot instead of being re-streamed n times), then each vector gets
// its argmax decision and soft-max distribution. Every vector must have
// length Dim. Results are bit-identical to n Predict calls — batching is
// an amortisation, never an approximation — so callers may freely group
// and regroup requests.
func (e *Engine) PredictBatch(features [][]float64) ([]arch.Config, [][arch.NumParams][]float64) {
	n := len(features)
	for i, f := range features {
		if len(f) != e.dim {
			panic(fmt.Sprintf("serve: batch item %d has dimension %d, engine expects %d", i, len(f), e.dim))
		}
	}
	configs := make([]arch.Config, n)
	probs := make([][arch.NumParams][]float64, n)
	indices := make([][arch.NumParams]int, n)
	sc := scratchPool.Get().(*batchScratch)
	defer scratchPool.Put(sc)
	for param := arch.Param(0); param < arch.NumParams; param++ {
		var k int
		if e.quantized {
			m := e.quant.Models[param]
			k = m.K
			sc.scores = m.ScoresBatch(features, sc.scores)
		} else {
			m := e.pred.Models[param]
			k = m.K
			sc.scores = m.ScoresBatch(features, sc.scores)
		}
		// One backing array per parameter holds every vector's
		// distribution: softmax preserves the argmax, so the decision is
		// read from the normalised row exactly as Predict always has.
		flat := make([]float64, n*k)
		copy(flat, sc.scores)
		for i := 0; i < n; i++ {
			row := flat[i*k : i*k+k]
			softmax.SoftmaxInPlace(row)
			best, bi := -1.0, 0
			for j, p := range row {
				if p > best {
					best, bi = p, j
				}
			}
			probs[i][param] = row
			indices[i][param] = bi
		}
	}
	for i := range configs {
		configs[i] = arch.FromIndices(indices[i])
	}
	return configs, probs
}
