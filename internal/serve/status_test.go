package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/counters"
)

// getStatus fetches and decodes /v1/status.
func getStatus(t *testing.T, url string) StatusResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr StatusResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("invalid status JSON %s: %v", data, err)
	}
	return sr
}

// TestStatusEndpoint drives traffic (good and bad) through the server and
// asserts /v1/status reports counts, error rates, cache stats, the model
// fingerprint and non-zero windowed latency quantiles.
func TestStatusEndpoint(t *testing.T) {
	s, ts := newTestServer(t, WithCacheSize(16))
	d := counters.Dim(counters.Basic)
	for i := 0; i < 3; i++ {
		resp, _ := postPredict(t, ts, predictBody(t, d, 1)) // 1 miss + 2 hits
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
	}
	if resp, _ := postPredict(t, ts, []byte("{broken")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed predict status %d, want 400", resp.StatusCode)
	}

	sr := getStatus(t, ts.URL)
	if sr.Status != "ok" {
		t.Errorf("status = %q", sr.Status)
	}
	if sr.Model.Version == "" || sr.Model.Version != s.Engine().Version() {
		t.Errorf("model version %q, engine says %q", sr.Model.Version, s.Engine().Version())
	}
	counts := map[string]uint64{}
	for _, rc := range sr.Requests {
		counts[rc.Path+" "+rc.Code] += rc.Count
	}
	if counts["/v1/predict 200"] != 3 || counts["/v1/predict 400"] != 1 {
		t.Errorf("request counts = %v", counts)
	}
	// 1 error out of 4 requests at snapshot time (the in-flight status
	// request itself is not yet counted).
	if sr.ErrorRate != 0.25 || sr.ServerErrorRate != 0 {
		t.Errorf("errorRate = %g serverErrorRate = %g, want 0.25/0", sr.ErrorRate, sr.ServerErrorRate)
	}
	if sr.Cache.Hits != 2 || sr.Cache.Misses != 1 || sr.Cache.Entries != 1 {
		t.Errorf("cache = %+v, want 2 hits / 1 miss / 1 entry", sr.Cache)
	}

	var predictLat *RouteLatency
	for i := range sr.Latency {
		if sr.Latency[i].Path == "/v1/predict" {
			predictLat = &sr.Latency[i]
		}
	}
	if predictLat == nil {
		t.Fatal("no /v1/predict latency row")
	}
	if predictLat.WindowCount != 4 || predictLat.TotalCount != 4 {
		t.Errorf("latency counts = %d/%d, want 4/4", predictLat.WindowCount, predictLat.TotalCount)
	}
	if predictLat.P50Seconds <= 0 || predictLat.P99Seconds <= 0 || predictLat.P999Seconds <= 0 {
		t.Errorf("latency quantiles not positive: %+v", predictLat)
	}
	if predictLat.P50Seconds > predictLat.P99Seconds || predictLat.P99Seconds > predictLat.P999Seconds {
		t.Errorf("latency quantiles not monotone: %+v", predictLat)
	}

	// The status request itself shows up on the next snapshot.
	sr2 := getStatus(t, ts.URL)
	counts2 := map[string]uint64{}
	for _, rc := range sr2.Requests {
		counts2[rc.Path+" "+rc.Code] += rc.Count
	}
	if counts2["/v1/status 200"] != 1 {
		t.Errorf("status request not counted: %v", counts2)
	}
}

// TestEngineVersionDeterministic asserts the fingerprint is a pure
// function of the weights and flags the quantized mode.
func TestEngineVersionDeterministic(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	e1, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version() == "" || e1.Version() != e2.Version() {
		t.Errorf("versions differ for identical weights: %q vs %q", e1.Version(), e2.Version())
	}
	q, err := NewEngine(pred, true)
	if err != nil {
		t.Fatal(err)
	}
	if q.Version() != e1.Version()+"-q8" {
		t.Errorf("quantized version = %q, want %q", q.Version(), e1.Version()+"-q8")
	}
	other, err := NewEngine(trainTestPredictor(t, counters.Advanced), false)
	if err != nil {
		t.Fatal(err)
	}
	if other.Version() == e1.Version() {
		t.Error("different models share a version fingerprint")
	}
}
