// Package serve turns the trained adaptivity predictor into an always-on,
// low-latency inference service: the software analogue of the paper's
// §VIII deployment, where the trained soft-max weights are shipped into
// hardware tables and consulted at every phase change. Here the weights
// are shipped into a daemon (cmd/adaptd) that answers counter-feature
// vectors with predicted 14-parameter configurations over JSON/HTTP.
//
// The server is built for production shapes rather than batch use: an LRU
// decision cache keyed by quantized feature vectors (phases repeat, so
// decisions do too), lock-free engine hot-swap for zero-downtime model
// reload, bounded concurrency with 429 backpressure, per-request timeouts
// and body-size limits, and Prometheus-text metrics through the shared
// internal/obs registry (the predict hot path records everything with
// atomic counters — no mutex). Stdlib only, like the rest of the
// repository.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/obs"
)

// Config bounds the server's resource use.
type Config struct {
	// ModelPath is the predictor file re-read by POST /v1/reload; empty
	// disables reload.
	ModelPath string
	// Quantized routes decisions through the 8-bit weights (§VIII).
	Quantized bool
	// CacheSize is the LRU decision-cache capacity; <= 0 disables it.
	CacheSize int
	// MaxBody is the request-body byte limit (default 1 MiB).
	MaxBody int64
	// Timeout is the per-request handler deadline (default 5s).
	Timeout time.Duration
	// MaxInflight bounds concurrent predict requests; excess requests are
	// rejected with 429 (default 64).
	MaxInflight int
	// Debug mounts the introspection endpoints on the handler: pprof
	// under /debug/pprof/, an expvar-style metrics snapshot at
	// /debug/vars, and (with a Tracer) a Chrome trace_event snapshot at
	// /debug/trace. Off by default; the debug mux bypasses the
	// per-request timeout because CPU profiles run for tens of seconds.
	Debug bool
	// Tracer, when non-nil, records one detached span per request (only
	// while the tracer is enabled) and backs /debug/trace.
	Tracer *obs.Tracer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	return c
}

// Server serves one hot-swappable Engine.
type Server struct {
	cfg     Config
	engine  atomic.Pointer[Engine]
	cache   *decisionCache
	metrics *metrics
	sem     chan struct{}
	start   time.Time
}

// New returns a server for the given engine.
func New(e *Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newDecisionCache(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.MaxInflight),
		start: time.Now(),
	}
	s.metrics = newMetrics(s.cache.len)
	s.engine.Store(e)
	return s
}

// Engine returns the currently serving engine.
func (s *Server) Engine() *Engine { return s.engine.Load() }

// Swap atomically replaces the serving engine and purges the decision
// cache (the new model's decisions may differ for identical features).
// In-flight requests finish on whichever engine they loaded — zero
// downtime.
func (s *Server) Swap(e *Engine) {
	s.engine.Store(e)
	s.cache.purge()
}

// HitRate returns the decision-cache hit rate so far.
func (s *Server) HitRate() float64 { return s.metrics.hitRate() }

// MetricsText returns the Prometheus exposition served at /metrics: the
// server's own series plus the process-wide obs.DefaultRegistry series
// (simulated instructions, experiment memoisation, phase detections —
// populated when the daemon trained its model in-process).
func (s *Server) MetricsText() string {
	return s.metrics.reg.Text() + obs.DefaultRegistry().Text()
}

// Handler returns the service's HTTP handler: every endpoint, wrapped with
// request accounting and the per-request timeout. With Config.Debug the
// introspection endpoints are mounted alongside, outside the timeout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	mux.HandleFunc("/v1/designspace", s.instrument("/v1/designspace", s.handleDesignSpace))
	mux.HandleFunc("/v1/reload", s.instrument("/v1/reload", s.handleReload))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	h := http.TimeoutHandler(mux, s.cfg.Timeout, "request deadline exceeded\n")
	if !s.cfg.Debug {
		return h
	}
	return s.debugHandler(h)
}

// statusWriter records the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-(path, status) request counting and,
// when a tracer is attached and enabled, a detached span per request.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var sp *obs.Span
		if s.cfg.Tracer != nil {
			sp = s.cfg.Tracer.StartDetached("http " + path)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if sp != nil {
			sp.SetArg("code", strconv.Itoa(sw.code)).Finish()
		}
		s.metrics.observeRequest(path, sw.code)
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// PredictRequest is the POST /v1/predict payload: a counter feature
// vector, optionally tagged with the counter set it was built from so the
// server can reject features from the wrong encoding.
type PredictRequest struct {
	Features []float64 `json:"features"`
	Set      string    `json:"set,omitempty"`
}

// PredictResponse is the decision: the predicted configuration (parameter
// name -> Table I value) and the per-parameter soft-max distributions over
// each parameter's domain.
type PredictResponse struct {
	Config        map[string]int       `json:"config"`
	Probabilities map[string][]float64 `json:"probabilities"`
	Set           string               `json:"set"`
	Quantized     bool                 `json:"quantized"`
	Cached        bool                 `json:"cached"`
}

// handlePredict answers one feature vector with a configuration decision.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.metrics.saturated.Inc()
		writeError(w, http.StatusTooManyRequests, "server saturated (%d predicts in flight); retry", s.cfg.MaxInflight)
		return
	}
	started := time.Now()

	var req PredictRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBody)
			return
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}

	eng := s.engine.Load()
	if req.Set != "" && req.Set != eng.Set().String() {
		writeError(w, http.StatusBadRequest, "features are from the %q counter set but the model serves %q", req.Set, eng.Set())
		return
	}
	if len(req.Features) != eng.Dim() {
		writeError(w, http.StatusBadRequest, "feature vector has dimension %d, model expects %d (%s counter set)", len(req.Features), eng.Dim(), eng.Set())
		return
	}

	key := cacheKey(req.Features)
	entry, hit := s.cache.get(key)
	if hit && entry.eng == eng {
		s.metrics.hits.Inc()
	} else {
		cfg, probs := eng.Predict(req.Features)
		entry = &cacheEntry{key: key, eng: eng, config: cfg, probs: probs}
		s.cache.put(entry)
		s.metrics.misses.Inc()
		hit = false
	}

	resp := PredictResponse{
		Config:        map[string]int{},
		Probabilities: map[string][]float64{},
		Set:           eng.Set().String(),
		Quantized:     eng.Quantized(),
		Cached:        hit,
	}
	for p := arch.Param(0); p < arch.NumParams; p++ {
		resp.Config[p.String()] = entry.config[p]
		resp.Probabilities[p.String()] = entry.probs[p]
	}
	s.metrics.latency.Observe(time.Since(started).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

// DesignSpaceResponse is the GET /v1/designspace payload: Table I.
type DesignSpaceResponse struct {
	Parameters  []ParameterInfo  `json:"parameters"`
	SpacePoints uint64           `json:"spacePoints"`
	CounterSets []CounterSetInfo `json:"counterSets"`
	Model       ModelInfo        `json:"model"`
}

// ParameterInfo describes one Table I row.
type ParameterInfo struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// CounterSetInfo names a feature encoding and its dimension.
type CounterSetInfo struct {
	Name string `json:"name"`
	Dim  int    `json:"dim"`
}

// ModelInfo describes the serving model.
type ModelInfo struct {
	Set       string `json:"set"`
	Dim       int    `json:"dim"`
	Weights   int    `json:"weights"`
	Quantized bool   `json:"quantized"`
}

// handleDesignSpace serves Table I metadata plus the serving model shape.
func (s *Server) handleDesignSpace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	eng := s.engine.Load()
	resp := DesignSpaceResponse{
		SpacePoints: arch.SpaceSize(),
		CounterSets: []CounterSetInfo{
			{Name: counters.Basic.String(), Dim: counters.Dim(counters.Basic)},
			{Name: counters.Advanced.String(), Dim: counters.Dim(counters.Advanced)},
		},
		Model: ModelInfo{
			Set:       eng.Set().String(),
			Dim:       eng.Dim(),
			Weights:   eng.WeightCount(),
			Quantized: eng.Quantized(),
		},
	}
	for p := arch.Param(0); p < arch.NumParams; p++ {
		resp.Parameters = append(resp.Parameters, ParameterInfo{
			Name:   p.String(),
			Values: append([]int(nil), arch.Domain(p)...),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReloadResponse reports a successful hot-swap.
type ReloadResponse struct {
	Reloaded bool      `json:"reloaded"`
	Model    ModelInfo `json:"model"`
}

// handleReload re-reads the model file and swaps it in atomically.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.cfg.ModelPath == "" {
		writeError(w, http.StatusConflict, "server has no -model path; reload disabled")
		return
	}
	f, err := os.Open(s.cfg.ModelPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening model file: %v", err)
		return
	}
	defer f.Close()
	pred, err := core.LoadPredictor(f)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading model: %v", err)
		return
	}
	eng, err := NewEngine(pred, s.cfg.Quantized)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building engine: %v", err)
		return
	}
	s.Swap(eng)
	s.metrics.reloads.Inc()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Reloaded: true,
		Model: ModelInfo{
			Set:       eng.Set().String(),
			Dim:       eng.Dim(),
			Weights:   eng.WeightCount(),
			Quantized: eng.Quantized(),
		},
	})
}

// HealthResponse is the GET /healthz payload.
type HealthResponse struct {
	Status        string    `json:"status"`
	Model         ModelInfo `json:"model"`
	UptimeSeconds float64   `json:"uptimeSeconds"`
	CacheEntries  int       `json:"cacheEntries"`
	CacheHitRate  float64   `json:"cacheHitRate"`
}

// handleHealthz reports liveness and the serving model.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	eng := s.engine.Load()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok",
		Model: ModelInfo{
			Set:       eng.Set().String(),
			Dim:       eng.Dim(),
			Weights:   eng.WeightCount(),
			Quantized: eng.Quantized(),
		},
		UptimeSeconds: time.Since(s.start).Seconds(),
		CacheEntries:  s.cache.len(),
		CacheHitRate:  s.metrics.hitRate(),
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.MetricsText())
}
