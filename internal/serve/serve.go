// Package serve turns the trained adaptivity predictor into an always-on,
// low-latency inference service: the software analogue of the paper's
// §VIII deployment, where the trained soft-max weights are shipped into
// hardware tables and consulted at every phase change. Here the weights
// are shipped into a daemon (cmd/adaptd) that answers counter-feature
// vectors with predicted 14-parameter configurations over JSON/HTTP.
//
// The server is built for production shapes rather than batch use: an LRU
// decision cache keyed by quantized feature vectors (phases repeat, so
// decisions do too), lock-free engine hot-swap for zero-downtime model
// reload, bounded concurrency with 429 backpressure, per-class admission
// control that sheds the lowest class first under pressure, a shadow
// slot that evaluates a candidate model on duplicated traffic strictly
// off the request path, per-request timeouts and body-size limits, and
// Prometheus-text metrics through the shared internal/obs registry (the
// predict hot path records everything with atomic counters — no mutex).
// Stdlib only, like the rest of the repository.
//
// Servers are composed with functional options: serve.New(engine,
// serve.WithCacheSize(4096), serve.WithAdmission(cfg), ...) — the same
// shape as experiment.Build.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/obs"
)

// Server serves one hot-swappable Engine.
type Server struct {
	opt     options
	engine  atomic.Pointer[Engine]
	cache   *decisionCache
	metrics *metrics
	co      *coalescer
	adm     *admission
	shadow  *shadowState
	sem     chan struct{}
	start   time.Time
	source  atomic.Pointer[string] // where the active engine came from
}

// New returns a server for the given engine, configured by options; see
// the With* constructors. The zero-option server uses the defaults
// documented on each option.
func New(e *Engine, opts ...Option) *Server {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	o = o.withDefaults()
	s := &Server{
		opt:   o,
		cache: newDecisionCache(o.cacheSize),
		sem:   make(chan struct{}, o.maxInflight),
		start: time.Now(),
	}
	s.metrics = newMetrics(s.cache.len)
	s.engine.Store(e)
	s.setActiveSource(o.activeSource)
	if o.coWindow > 0 {
		s.co = newCoalescer(o.coWindow, o.coMax, s.metrics, o.tracer)
	}
	if o.admission != nil {
		s.adm = newAdmission(*o.admission, o.maxInflight, func() float64 {
			return s.metrics.predictP99()
		})
	}
	if o.shadow != nil {
		s.shadow = newShadowState(o.shadow, o.shadowSource, o.shadowQueue, s.Engine)
		s.metrics.registerShadow(s.shadow)
	}
	return s
}

// Close stops the coalescer's dispatcher and the shadow worker, if they
// were started. The server keeps answering (in-flight and later coalesced
// requests fall back to the direct kernel; shadow duplicates queue until
// full, then drop); Close is goroutine hygiene for shutdown and tests,
// not a way to refuse traffic.
func (s *Server) Close() {
	if s.co != nil {
		s.co.close()
	}
	if s.shadow != nil {
		s.shadow.close()
	}
}

// Engine returns the currently serving engine.
func (s *Server) Engine() *Engine { return s.engine.Load() }

// ActiveSource names where the active engine was loaded from ("" when
// unknown).
func (s *Server) ActiveSource() string {
	if p := s.source.Load(); p != nil {
		return *p
	}
	return ""
}

func (s *Server) setActiveSource(src string) { s.source.Store(&src) }

// Swap atomically replaces the serving engine and purges the decision
// cache (the new model's decisions may differ for identical features).
// In-flight requests finish on whichever engine they loaded — zero
// downtime.
func (s *Server) Swap(e *Engine) {
	s.engine.Store(e)
	s.cache.purge()
}

// HitRate returns the decision-cache hit rate so far.
func (s *Server) HitRate() float64 { return s.metrics.hitRate() }

// MetricsText returns the Prometheus exposition served at /metrics: the
// server's own series plus the process-wide obs.DefaultRegistry series
// (simulated instructions, experiment memoisation, phase detections —
// populated when the daemon trained its model in-process).
func (s *Server) MetricsText() string {
	return s.metrics.reg.Text() + obs.DefaultRegistry().Text()
}

// Handler returns the service's HTTP handler: every endpoint, wrapped with
// request accounting and the per-request timeout. With WithDebug the
// introspection endpoints are mounted alongside, outside the timeout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	mux.HandleFunc("/v1/designspace", s.instrument("/v1/designspace", s.handleDesignSpace))
	mux.HandleFunc("/v1/reload", s.instrument("/v1/reload", s.handleReload))
	mux.HandleFunc("/v1/models", s.instrument("/v1/models", s.handleModels))
	mux.HandleFunc("/v1/models/promote", s.instrument("/v1/models/promote", s.handlePromote))
	mux.HandleFunc("/v1/status", s.instrument("/v1/status", s.handleStatus))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	h := http.TimeoutHandler(mux, s.opt.timeout, "{\n  \"error\": \"request deadline exceeded\"\n}\n")
	if !s.opt.debug {
		return h
	}
	return s.debugHandler(h)
}

// statusWriter records the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-(path, status) request counting,
// the route's windowed latency histogram (the /v1/status quantiles) and,
// when a tracer is attached and enabled, a detached span per request.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var sp *obs.Span
		if s.opt.tracer != nil {
			sp = s.opt.tracer.StartDetached("http " + path)
		}
		started := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if sp != nil {
			sp.SetArg("code", strconv.Itoa(sw.code)).Finish()
		}
		s.metrics.observeRequest(path, sw.code)
		s.metrics.observeLatency(path, time.Since(started).Seconds())
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// allowMethod enforces a handler's single allowed method. On a mismatch it
// answers 405 with the uniform JSON error envelope and a correct Allow
// header (RFC 9110 §15.5.6 requires one) — every route shares this path,
// so no handler can drift back to a bare text error.
func allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s; use %s", r.Method, r.URL.Path, method)
	return false
}

// PredictRequest is the POST /v1/predict payload: either one counter
// feature vector (Features) or several (Batch) — never both — optionally
// tagged with the counter set they were built from so the server can
// reject features from the wrong encoding, and with an admission class
// (the X-Request-Class header wins when both are present).
type PredictRequest struct {
	Features []float64   `json:"features,omitempty"`
	Batch    [][]float64 `json:"batch,omitempty"`
	Set      string      `json:"set,omitempty"`
	Class    string      `json:"class,omitempty"`
}

// PredictResponse is the decision: the predicted configuration (parameter
// name -> Table I value) and, when the request asked for them with
// ?probs=1, the per-parameter soft-max distributions over each parameter's
// domain (they dominate the response size, so they are opt-in).
type PredictResponse struct {
	Config        map[string]int       `json:"config"`
	Probabilities map[string][]float64 `json:"probabilities,omitempty"`
	Set           string               `json:"set"`
	Quantized     bool                 `json:"quantized"`
	Cached        bool                 `json:"cached"`
}

// shedHeader tells shed clients (and the load generator) which class was
// refused and why, without parsing the error body.
const shedHeader = "X-Adaptd-Shed"

// handlePredict answers one feature vector — or a batch of them — with
// configuration decisions. The pipeline is: decode, resolve the admission
// class, per-class admission (shed with 429 + X-Adaptd-Shed), the shared
// concurrency semaphore (429 when saturated), then the kernel. Admission
// runs ahead of the semaphore so a shed costs a JSON decode, never a
// slot.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	started := time.Now()

	var req PredictRequest
	body := http.MaxBytesReader(w, r.Body, s.opt.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.opt.maxBody)
			return
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	wantProbs := r.URL.Query().Get("probs") == "1"

	name := r.Header.Get("X-Request-Class")
	if name == "" {
		name = req.Class
	}
	class, ok := ParseClass(name)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown request class %q (want interactive, batch or background)", name)
		return
	}
	s.metrics.classRequests.With(class.String()).Inc()
	if s.adm != nil {
		release, reason := s.adm.admit(class)
		if release == nil {
			s.metrics.shed.With(class.String(), reason).Inc()
			w.Header().Set(shedHeader, class.String()+":"+reason)
			writeError(w, http.StatusTooManyRequests, "request class %q shed (%s); retry", class, reason)
			return
		}
		defer release()
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.metrics.saturated.Inc()
		writeError(w, http.StatusTooManyRequests, "server saturated (%d predicts in flight); retry", s.opt.maxInflight)
		return
	}
	defer func() {
		s.metrics.observeClassLatency(class, time.Since(started).Seconds())
	}()

	eng := s.engine.Load()
	if req.Set != "" && req.Set != eng.Set().String() {
		writeError(w, http.StatusBadRequest, "features are from the %q counter set but the model serves %q", req.Set, eng.Set())
		return
	}
	if req.Batch != nil {
		if req.Features != nil {
			writeError(w, http.StatusBadRequest, `"features" and "batch" are mutually exclusive`)
			return
		}
		s.handlePredictBatch(w, eng, req.Batch, wantProbs, started)
		return
	}
	if len(req.Features) != eng.Dim() {
		writeError(w, http.StatusBadRequest, "feature vector has dimension %d, model expects %d (%s counter set)", len(req.Features), eng.Dim(), eng.Set())
		return
	}

	entry, hit := s.resolveSingle(eng, req.Features)
	s.metrics.latency.Observe(time.Since(started).Seconds())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.renderResponse(eng, entry, hit, wantProbs))
}

// resolveSingle answers one feature vector through the decision cache and,
// on a miss, the coalescer (when enabled) or the direct kernel. Every
// resolved decision — hit or miss — is duplicated to the shadow evaluator
// with a non-blocking enqueue; the primary path never waits on it.
func (s *Server) resolveSingle(eng *Engine, features []float64) (entry *cacheEntry, hit bool) {
	if entry, hit := s.cache.get(cacheKey(features)); hit && entry.eng == eng {
		s.metrics.hits.Inc()
		if s.shadow != nil {
			s.shadow.observe(eng, features, entry.config)
		}
		return entry, true
	}
	var cfg arch.Config
	var probs [arch.NumParams][]float64
	if s.co != nil {
		cfg, probs = s.co.predict(eng, features)
		s.metrics.coalesced.Inc()
	} else {
		cfg, probs = eng.Predict(features)
	}
	entry = &cacheEntry{key: cacheKey(features), eng: eng, config: cfg, probs: probs}
	s.cache.put(entry)
	s.metrics.misses.Inc()
	if s.shadow != nil {
		s.shadow.observe(eng, features, cfg)
	}
	return entry, false
}

// handlePredictBatch answers a validated batch request: items are resolved
// against the decision cache individually, every miss is evaluated in one
// batched kernel call, and the results stream back as one JSON document
// per item (NDJSON) — each document byte-identical to the response a
// single-vector request for that item would have produced, cached flag
// included. A dimension error anywhere rejects the whole batch, naming the
// offending index.
func (s *Server) handlePredictBatch(w http.ResponseWriter, eng *Engine, batch [][]float64, wantProbs bool, started time.Time) {
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	for i, f := range batch {
		if len(f) != eng.Dim() {
			writeError(w, http.StatusBadRequest, "batch item %d has dimension %d, model expects %d (%s counter set); whole batch rejected", i, len(f), eng.Dim(), eng.Set())
			return
		}
	}
	s.metrics.batchRequests.Inc()
	s.metrics.batchItems.Add(uint64(len(batch)))

	type batchSlot struct {
		entry  *cacheEntry
		cached bool
	}
	slots := make([]batchSlot, len(batch))
	var missFeats [][]float64
	var missEntries []*cacheEntry
	// firstMiss makes intra-batch duplicates behave exactly as sequential
	// single requests would: the first occurrence computes, later ones
	// report cached — but only while the cache is enabled, because with it
	// disabled sequential singles recompute every time.
	var firstMiss map[string]*cacheEntry
	if s.cache.enabled() {
		firstMiss = map[string]*cacheEntry{}
	}
	for i, f := range batch {
		key := cacheKey(f)
		if entry, hit := s.cache.get(key); hit && entry.eng == eng {
			s.metrics.hits.Inc()
			slots[i] = batchSlot{entry, true}
			continue
		}
		if entry, dup := firstMiss[key]; dup {
			s.metrics.hits.Inc()
			slots[i] = batchSlot{entry, true}
			continue
		}
		entry := &cacheEntry{key: key, eng: eng}
		if firstMiss != nil {
			firstMiss[key] = entry
		}
		missFeats = append(missFeats, f)
		missEntries = append(missEntries, entry)
		slots[i] = batchSlot{entry, false}
	}

	if len(missFeats) > 0 {
		var sp *obs.Span
		if s.opt.tracer != nil {
			sp = s.opt.tracer.StartDetached("predict batch")
		}
		configs, probs := eng.PredictBatch(missFeats)
		if sp != nil {
			sp.SetArg("mode", "batch").SetArg("n", strconv.Itoa(len(missFeats))).Finish()
		}
		s.metrics.batchSize.Observe(float64(len(missFeats)))
		s.metrics.batches.Inc()
		for i, entry := range missEntries {
			entry.config = configs[i]
			entry.probs = probs[i]
			s.cache.put(entry)
			s.metrics.misses.Inc()
		}
	}
	if s.shadow != nil {
		// Duplicate after the response is fully resolved: one enqueue per
		// item, hits included, so shadow coverage matches primary traffic.
		for i, f := range batch {
			s.shadow.observe(eng, f, slots[i].entry.config)
		}
	}

	s.metrics.latency.Observe(time.Since(started).Seconds())
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Flush periodically rather than per item: one flush per item is one
	// syscall per item, which on a single-core host erases the batching
	// win. Chunks of 64 keep results streaming on huge batches while the
	// common case goes out in one write.
	flusher, _ := w.(http.Flusher)
	for i, slot := range slots {
		_, _ = w.Write(s.renderResponse(eng, slot.entry, slot.cached, wantProbs))
		if flusher != nil && (i+1)%64 == 0 {
			flusher.Flush()
		}
	}
}

// renderResponse returns the JSON body for one decision — exactly the bytes
// writeJSON would emit. Hit responses (cached:true) are memoised on the
// entry per probs variant, so a hot cache also skips the encoder, not just
// the kernel; miss responses (cached:false, produced once per decision) are
// rendered fresh.
func (s *Server) renderResponse(eng *Engine, entry *cacheEntry, cached, wantProbs bool) []byte {
	variant := 0
	if wantProbs {
		variant = 1
	}
	if cached {
		if b := entry.rendered[variant].Load(); b != nil {
			return *b
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.predictResponse(eng, entry, cached, wantProbs))
	b := buf.Bytes()
	if cached {
		entry.rendered[variant].Store(&b)
	}
	return b
}

// predictResponse renders one decision; probabilities only on request.
func (s *Server) predictResponse(eng *Engine, entry *cacheEntry, cached, wantProbs bool) PredictResponse {
	resp := PredictResponse{
		Config:    map[string]int{},
		Set:       eng.Set().String(),
		Quantized: eng.Quantized(),
		Cached:    cached,
	}
	if wantProbs {
		resp.Probabilities = map[string][]float64{}
	}
	for p := arch.Param(0); p < arch.NumParams; p++ {
		resp.Config[p.String()] = entry.config[p]
		if wantProbs {
			resp.Probabilities[p.String()] = entry.probs[p]
		}
	}
	return resp
}

// DesignSpaceResponse is the GET /v1/designspace payload: Table I.
type DesignSpaceResponse struct {
	Parameters  []ParameterInfo  `json:"parameters"`
	SpacePoints uint64           `json:"spacePoints"`
	CounterSets []CounterSetInfo `json:"counterSets"`
	Model       ModelInfo        `json:"model"`
}

// ParameterInfo describes one Table I row.
type ParameterInfo struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// CounterSetInfo names a feature encoding and its dimension.
type CounterSetInfo struct {
	Name string `json:"name"`
	Dim  int    `json:"dim"`
}

// ModelInfo describes the serving model. Version is the engine's
// deterministic weight fingerprint (see Engine.Version).
type ModelInfo struct {
	Set       string `json:"set"`
	Dim       int    `json:"dim"`
	Weights   int    `json:"weights"`
	Quantized bool   `json:"quantized"`
	Version   string `json:"version"`
}

// modelInfo renders the one ModelInfo shape every endpoint shares.
func modelInfo(eng *Engine) ModelInfo {
	return ModelInfo{
		Set:       eng.Set().String(),
		Dim:       eng.Dim(),
		Weights:   eng.WeightCount(),
		Quantized: eng.Quantized(),
		Version:   eng.Version(),
	}
}

// handleDesignSpace serves Table I metadata plus the serving model shape.
func (s *Server) handleDesignSpace(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	eng := s.engine.Load()
	resp := DesignSpaceResponse{
		SpacePoints: arch.SpaceSize(),
		CounterSets: []CounterSetInfo{
			{Name: counters.Basic.String(), Dim: counters.Dim(counters.Basic)},
			{Name: counters.Advanced.String(), Dim: counters.Dim(counters.Advanced)},
		},
		Model: modelInfo(eng),
	}
	for p := arch.Param(0); p < arch.NumParams; p++ {
		resp.Parameters = append(resp.Parameters, ParameterInfo{
			Name:   p.String(),
			Values: append([]int(nil), arch.Domain(p)...),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReloadResponse reports a successful hot-swap.
type ReloadResponse struct {
	Reloaded bool      `json:"reloaded"`
	Model    ModelInfo `json:"model"`
}

// handleReload re-reads the model file and swaps it in atomically. The
// quantized mode follows the engine being replaced, so a reload never
// silently changes the weight format.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	if s.opt.modelPath == "" {
		writeError(w, http.StatusConflict, "server has no -model path; reload disabled")
		return
	}
	f, err := os.Open(s.opt.modelPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening model file: %v", err)
		return
	}
	defer f.Close()
	pred, err := core.LoadPredictor(f)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading model: %v", err)
		return
	}
	eng, err := NewEngine(pred, s.engine.Load().Quantized())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building engine: %v", err)
		return
	}
	s.Swap(eng)
	s.setActiveSource(s.opt.modelPath)
	s.metrics.reloads.Inc()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Reloaded: true,
		Model:    modelInfo(eng),
	})
}

// HealthResponse is the GET /healthz payload.
type HealthResponse struct {
	Status        string    `json:"status"`
	Model         ModelInfo `json:"model"`
	UptimeSeconds float64   `json:"uptimeSeconds"`
	CacheEntries  int       `json:"cacheEntries"`
	CacheHitRate  float64   `json:"cacheHitRate"`
}

// handleHealthz reports liveness and the serving model.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	eng := s.engine.Load()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Model:         modelInfo(eng),
		UptimeSeconds: time.Since(s.start).Seconds(),
		CacheEntries:  s.cache.len(),
		CacheHitRate:  s.metrics.hitRate(),
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.MetricsText())
}
