// Package serve turns the trained adaptivity predictor into an always-on,
// low-latency inference service: the software analogue of the paper's
// §VIII deployment, where the trained soft-max weights are shipped into
// hardware tables and consulted at every phase change. Here the weights
// are shipped into a daemon (cmd/adaptd) that answers counter-feature
// vectors with predicted 14-parameter configurations over JSON/HTTP.
//
// The server is built for production shapes rather than batch use: an LRU
// decision cache keyed by quantized feature vectors (phases repeat, so
// decisions do too), lock-free engine hot-swap for zero-downtime model
// reload, bounded concurrency with 429 backpressure, per-request timeouts
// and body-size limits, and Prometheus-text metrics through the shared
// internal/obs registry (the predict hot path records everything with
// atomic counters — no mutex). Stdlib only, like the rest of the
// repository.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/obs"
)

// Config bounds the server's resource use.
type Config struct {
	// ModelPath is the predictor file re-read by POST /v1/reload; empty
	// disables reload.
	ModelPath string
	// Quantized routes decisions through the 8-bit weights (§VIII).
	Quantized bool
	// CacheSize is the LRU decision-cache capacity; <= 0 disables it.
	CacheSize int
	// MaxBody is the request-body byte limit (default 1 MiB).
	MaxBody int64
	// Timeout is the per-request handler deadline (default 5s).
	Timeout time.Duration
	// MaxInflight bounds concurrent predict requests; excess requests are
	// rejected with 429 (default 64).
	MaxInflight int
	// CoalesceWindow enables server-side micro-batching: single-vector
	// predicts that miss the decision cache are held up to this long and
	// evaluated together in one batched kernel call. 0 disables
	// coalescing. Grouping is timing-dependent; results are not — every
	// response is byte-identical to the unbatched path.
	CoalesceWindow time.Duration
	// CoalesceMax caps the vectors per coalesced kernel call (default 64).
	CoalesceMax int
	// Debug mounts the introspection endpoints on the handler: pprof
	// under /debug/pprof/, an expvar-style metrics snapshot at
	// /debug/vars, and (with a Tracer) a Chrome trace_event snapshot at
	// /debug/trace. Off by default; the debug mux bypasses the
	// per-request timeout because CPU profiles run for tens of seconds.
	Debug bool
	// Tracer, when non-nil, records one detached span per request (only
	// while the tracer is enabled) and backs /debug/trace.
	Tracer *obs.Tracer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	return c
}

// Server serves one hot-swappable Engine.
type Server struct {
	cfg     Config
	engine  atomic.Pointer[Engine]
	cache   *decisionCache
	metrics *metrics
	co      *coalescer
	sem     chan struct{}
	start   time.Time
}

// New returns a server for the given engine.
func New(e *Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newDecisionCache(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.MaxInflight),
		start: time.Now(),
	}
	s.metrics = newMetrics(s.cache.len)
	s.engine.Store(e)
	if cfg.CoalesceWindow > 0 {
		s.co = newCoalescer(cfg.CoalesceWindow, cfg.CoalesceMax, s.metrics, cfg.Tracer)
	}
	return s
}

// Close stops the coalescer's dispatcher goroutine, if one was started.
// The server keeps answering (in-flight and later coalesced requests fall
// back to the direct kernel); Close is goroutine hygiene for shutdown and
// tests, not a way to refuse traffic.
func (s *Server) Close() {
	if s.co != nil {
		s.co.close()
	}
}

// Engine returns the currently serving engine.
func (s *Server) Engine() *Engine { return s.engine.Load() }

// Swap atomically replaces the serving engine and purges the decision
// cache (the new model's decisions may differ for identical features).
// In-flight requests finish on whichever engine they loaded — zero
// downtime.
func (s *Server) Swap(e *Engine) {
	s.engine.Store(e)
	s.cache.purge()
}

// HitRate returns the decision-cache hit rate so far.
func (s *Server) HitRate() float64 { return s.metrics.hitRate() }

// MetricsText returns the Prometheus exposition served at /metrics: the
// server's own series plus the process-wide obs.DefaultRegistry series
// (simulated instructions, experiment memoisation, phase detections —
// populated when the daemon trained its model in-process).
func (s *Server) MetricsText() string {
	return s.metrics.reg.Text() + obs.DefaultRegistry().Text()
}

// Handler returns the service's HTTP handler: every endpoint, wrapped with
// request accounting and the per-request timeout. With Config.Debug the
// introspection endpoints are mounted alongside, outside the timeout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	mux.HandleFunc("/v1/designspace", s.instrument("/v1/designspace", s.handleDesignSpace))
	mux.HandleFunc("/v1/reload", s.instrument("/v1/reload", s.handleReload))
	mux.HandleFunc("/v1/status", s.instrument("/v1/status", s.handleStatus))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	h := http.TimeoutHandler(mux, s.cfg.Timeout, "{\n  \"error\": \"request deadline exceeded\"\n}\n")
	if !s.cfg.Debug {
		return h
	}
	return s.debugHandler(h)
}

// statusWriter records the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-(path, status) request counting,
// the route's windowed latency histogram (the /v1/status quantiles) and,
// when a tracer is attached and enabled, a detached span per request.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var sp *obs.Span
		if s.cfg.Tracer != nil {
			sp = s.cfg.Tracer.StartDetached("http " + path)
		}
		started := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if sp != nil {
			sp.SetArg("code", strconv.Itoa(sw.code)).Finish()
		}
		s.metrics.observeRequest(path, sw.code)
		s.metrics.observeLatency(path, time.Since(started).Seconds())
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// allowMethod enforces a handler's single allowed method. On a mismatch it
// answers 405 with the uniform JSON error envelope and a correct Allow
// header (RFC 9110 §15.5.6 requires one) — every route shares this path,
// so no handler can drift back to a bare text error.
func allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s; use %s", r.Method, r.URL.Path, method)
	return false
}

// PredictRequest is the POST /v1/predict payload: either one counter
// feature vector (Features) or several (Batch) — never both — optionally
// tagged with the counter set they were built from so the server can
// reject features from the wrong encoding.
type PredictRequest struct {
	Features []float64   `json:"features,omitempty"`
	Batch    [][]float64 `json:"batch,omitempty"`
	Set      string      `json:"set,omitempty"`
}

// PredictResponse is the decision: the predicted configuration (parameter
// name -> Table I value) and, when the request asked for them with
// ?probs=1, the per-parameter soft-max distributions over each parameter's
// domain (they dominate the response size, so they are opt-in).
type PredictResponse struct {
	Config        map[string]int       `json:"config"`
	Probabilities map[string][]float64 `json:"probabilities,omitempty"`
	Set           string               `json:"set"`
	Quantized     bool                 `json:"quantized"`
	Cached        bool                 `json:"cached"`
}

// handlePredict answers one feature vector — or a batch of them — with
// configuration decisions.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.metrics.saturated.Inc()
		writeError(w, http.StatusTooManyRequests, "server saturated (%d predicts in flight); retry", s.cfg.MaxInflight)
		return
	}
	started := time.Now()

	var req PredictRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBody)
			return
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	wantProbs := r.URL.Query().Get("probs") == "1"

	eng := s.engine.Load()
	if req.Set != "" && req.Set != eng.Set().String() {
		writeError(w, http.StatusBadRequest, "features are from the %q counter set but the model serves %q", req.Set, eng.Set())
		return
	}
	if req.Batch != nil {
		if req.Features != nil {
			writeError(w, http.StatusBadRequest, `"features" and "batch" are mutually exclusive`)
			return
		}
		s.handlePredictBatch(w, eng, req.Batch, wantProbs, started)
		return
	}
	if len(req.Features) != eng.Dim() {
		writeError(w, http.StatusBadRequest, "feature vector has dimension %d, model expects %d (%s counter set)", len(req.Features), eng.Dim(), eng.Set())
		return
	}

	entry, hit := s.resolveSingle(eng, req.Features)
	s.metrics.latency.Observe(time.Since(started).Seconds())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.renderResponse(eng, entry, hit, wantProbs))
}

// resolveSingle answers one feature vector through the decision cache and,
// on a miss, the coalescer (when enabled) or the direct kernel.
func (s *Server) resolveSingle(eng *Engine, features []float64) (entry *cacheEntry, hit bool) {
	key := cacheKey(features)
	if entry, hit := s.cache.get(key); hit && entry.eng == eng {
		s.metrics.hits.Inc()
		return entry, true
	}
	var cfg arch.Config
	var probs [arch.NumParams][]float64
	if s.co != nil {
		cfg, probs = s.co.predict(eng, features)
		s.metrics.coalesced.Inc()
	} else {
		cfg, probs = eng.Predict(features)
	}
	entry = &cacheEntry{key: key, eng: eng, config: cfg, probs: probs}
	s.cache.put(entry)
	s.metrics.misses.Inc()
	return entry, false
}

// handlePredictBatch answers a validated batch request: items are resolved
// against the decision cache individually, every miss is evaluated in one
// batched kernel call, and the results stream back as one JSON document
// per item (NDJSON) — each document byte-identical to the response a
// single-vector request for that item would have produced, cached flag
// included. A dimension error anywhere rejects the whole batch, naming the
// offending index.
func (s *Server) handlePredictBatch(w http.ResponseWriter, eng *Engine, batch [][]float64, wantProbs bool, started time.Time) {
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	for i, f := range batch {
		if len(f) != eng.Dim() {
			writeError(w, http.StatusBadRequest, "batch item %d has dimension %d, model expects %d (%s counter set); whole batch rejected", i, len(f), eng.Dim(), eng.Set())
			return
		}
	}
	s.metrics.batchRequests.Inc()
	s.metrics.batchItems.Add(uint64(len(batch)))

	type batchSlot struct {
		entry  *cacheEntry
		cached bool
	}
	slots := make([]batchSlot, len(batch))
	var missFeats [][]float64
	var missEntries []*cacheEntry
	// firstMiss makes intra-batch duplicates behave exactly as sequential
	// single requests would: the first occurrence computes, later ones
	// report cached — but only while the cache is enabled, because with it
	// disabled sequential singles recompute every time.
	var firstMiss map[string]*cacheEntry
	if s.cache.enabled() {
		firstMiss = map[string]*cacheEntry{}
	}
	for i, f := range batch {
		key := cacheKey(f)
		if entry, hit := s.cache.get(key); hit && entry.eng == eng {
			s.metrics.hits.Inc()
			slots[i] = batchSlot{entry, true}
			continue
		}
		if entry, dup := firstMiss[key]; dup {
			s.metrics.hits.Inc()
			slots[i] = batchSlot{entry, true}
			continue
		}
		entry := &cacheEntry{key: key, eng: eng}
		if firstMiss != nil {
			firstMiss[key] = entry
		}
		missFeats = append(missFeats, f)
		missEntries = append(missEntries, entry)
		slots[i] = batchSlot{entry, false}
	}

	if len(missFeats) > 0 {
		var sp *obs.Span
		if s.cfg.Tracer != nil {
			sp = s.cfg.Tracer.StartDetached("predict batch")
		}
		configs, probs := eng.PredictBatch(missFeats)
		if sp != nil {
			sp.SetArg("mode", "batch").SetArg("n", strconv.Itoa(len(missFeats))).Finish()
		}
		s.metrics.batchSize.Observe(float64(len(missFeats)))
		s.metrics.batches.Inc()
		for i, entry := range missEntries {
			entry.config = configs[i]
			entry.probs = probs[i]
			s.cache.put(entry)
			s.metrics.misses.Inc()
		}
	}

	s.metrics.latency.Observe(time.Since(started).Seconds())
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Flush periodically rather than per item: one flush per item is one
	// syscall per item, which on a single-core host erases the batching
	// win. Chunks of 64 keep results streaming on huge batches while the
	// common case goes out in one write.
	flusher, _ := w.(http.Flusher)
	for i, slot := range slots {
		_, _ = w.Write(s.renderResponse(eng, slot.entry, slot.cached, wantProbs))
		if flusher != nil && (i+1)%64 == 0 {
			flusher.Flush()
		}
	}
}

// renderResponse returns the JSON body for one decision — exactly the bytes
// writeJSON would emit. Hit responses (cached:true) are memoised on the
// entry per probs variant, so a hot cache also skips the encoder, not just
// the kernel; miss responses (cached:false, produced once per decision) are
// rendered fresh.
func (s *Server) renderResponse(eng *Engine, entry *cacheEntry, cached, wantProbs bool) []byte {
	variant := 0
	if wantProbs {
		variant = 1
	}
	if cached {
		if b := entry.rendered[variant].Load(); b != nil {
			return *b
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.predictResponse(eng, entry, cached, wantProbs))
	b := buf.Bytes()
	if cached {
		entry.rendered[variant].Store(&b)
	}
	return b
}

// predictResponse renders one decision; probabilities only on request.
func (s *Server) predictResponse(eng *Engine, entry *cacheEntry, cached, wantProbs bool) PredictResponse {
	resp := PredictResponse{
		Config:    map[string]int{},
		Set:       eng.Set().String(),
		Quantized: eng.Quantized(),
		Cached:    cached,
	}
	if wantProbs {
		resp.Probabilities = map[string][]float64{}
	}
	for p := arch.Param(0); p < arch.NumParams; p++ {
		resp.Config[p.String()] = entry.config[p]
		if wantProbs {
			resp.Probabilities[p.String()] = entry.probs[p]
		}
	}
	return resp
}

// DesignSpaceResponse is the GET /v1/designspace payload: Table I.
type DesignSpaceResponse struct {
	Parameters  []ParameterInfo  `json:"parameters"`
	SpacePoints uint64           `json:"spacePoints"`
	CounterSets []CounterSetInfo `json:"counterSets"`
	Model       ModelInfo        `json:"model"`
}

// ParameterInfo describes one Table I row.
type ParameterInfo struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// CounterSetInfo names a feature encoding and its dimension.
type CounterSetInfo struct {
	Name string `json:"name"`
	Dim  int    `json:"dim"`
}

// ModelInfo describes the serving model. Version is the engine's
// deterministic weight fingerprint (see Engine.Version).
type ModelInfo struct {
	Set       string `json:"set"`
	Dim       int    `json:"dim"`
	Weights   int    `json:"weights"`
	Quantized bool   `json:"quantized"`
	Version   string `json:"version"`
}

// modelInfo renders the one ModelInfo shape every endpoint shares.
func modelInfo(eng *Engine) ModelInfo {
	return ModelInfo{
		Set:       eng.Set().String(),
		Dim:       eng.Dim(),
		Weights:   eng.WeightCount(),
		Quantized: eng.Quantized(),
		Version:   eng.Version(),
	}
}

// handleDesignSpace serves Table I metadata plus the serving model shape.
func (s *Server) handleDesignSpace(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	eng := s.engine.Load()
	resp := DesignSpaceResponse{
		SpacePoints: arch.SpaceSize(),
		CounterSets: []CounterSetInfo{
			{Name: counters.Basic.String(), Dim: counters.Dim(counters.Basic)},
			{Name: counters.Advanced.String(), Dim: counters.Dim(counters.Advanced)},
		},
		Model: modelInfo(eng),
	}
	for p := arch.Param(0); p < arch.NumParams; p++ {
		resp.Parameters = append(resp.Parameters, ParameterInfo{
			Name:   p.String(),
			Values: append([]int(nil), arch.Domain(p)...),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReloadResponse reports a successful hot-swap.
type ReloadResponse struct {
	Reloaded bool      `json:"reloaded"`
	Model    ModelInfo `json:"model"`
}

// handleReload re-reads the model file and swaps it in atomically.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	if s.cfg.ModelPath == "" {
		writeError(w, http.StatusConflict, "server has no -model path; reload disabled")
		return
	}
	f, err := os.Open(s.cfg.ModelPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening model file: %v", err)
		return
	}
	defer f.Close()
	pred, err := core.LoadPredictor(f)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading model: %v", err)
		return
	}
	eng, err := NewEngine(pred, s.cfg.Quantized)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building engine: %v", err)
		return
	}
	s.Swap(eng)
	s.metrics.reloads.Inc()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Reloaded: true,
		Model:    modelInfo(eng),
	})
}

// HealthResponse is the GET /healthz payload.
type HealthResponse struct {
	Status        string    `json:"status"`
	Model         ModelInfo `json:"model"`
	UptimeSeconds float64   `json:"uptimeSeconds"`
	CacheEntries  int       `json:"cacheEntries"`
	CacheHitRate  float64   `json:"cacheHitRate"`
}

// handleHealthz reports liveness and the serving model.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	eng := s.engine.Load()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Model:         modelInfo(eng),
		UptimeSeconds: time.Since(s.start).Seconds(),
		CacheEntries:  s.cache.len(),
		CacheHitRate:  s.metrics.hitRate(),
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.MetricsText())
}
