package serve

import (
	"time"

	"repro/internal/obs"
)

// options is the server's resolved configuration. It is private: callers
// compose a Server with New(engine, ...Option), the same functional-option
// shape as experiment.Build — the positional Config struct this replaced
// could not grow admission control and shadow models without every caller
// churning.
type options struct {
	// modelPath is the predictor file re-read by POST /v1/reload; empty
	// disables reload.
	modelPath string
	// cacheSize is the LRU decision-cache capacity; <= 0 disables it.
	cacheSize int
	// maxBody is the request-body byte limit (default 1 MiB).
	maxBody int64
	// timeout is the per-request handler deadline (default 5s).
	timeout time.Duration
	// maxInflight bounds concurrent predict requests; excess requests are
	// rejected with 429 (default 64).
	maxInflight int
	// coWindow/coMax configure server-side micro-batching (see
	// WithCoalescing). coWindow 0 disables coalescing.
	coWindow time.Duration
	coMax    int
	// debug mounts the introspection endpoints (see WithDebug).
	debug bool
	// tracer, when non-nil, records one detached span per request.
	tracer *obs.Tracer
	// admission enables per-class admission control (see WithAdmission).
	admission *AdmissionConfig
	// shadow is the candidate engine evaluated off the request path (see
	// WithShadow); shadowSource names where it was loaded from.
	shadow       *Engine
	shadowSource string
	// shadowQueue bounds the shadow duplication queue (default 1024).
	shadowQueue int
	// activeSource names where the active engine was loaded from; shown on
	// GET /v1/models. Defaults to modelPath.
	activeSource string
}

// Option configures a Server. The zero configuration (no options) is a
// plain server with defaults: 1 MiB bodies, 5s timeout, 64 in-flight,
// no cache, no coalescing, no admission control, no shadow.
type Option func(*options)

// withDefaults fills unset fields.
func (o options) withDefaults() options {
	if o.maxBody <= 0 {
		o.maxBody = 1 << 20
	}
	if o.timeout <= 0 {
		o.timeout = 5 * time.Second
	}
	if o.maxInflight <= 0 {
		o.maxInflight = 64
	}
	if o.shadowQueue <= 0 {
		o.shadowQueue = 1024
	}
	if o.activeSource == "" {
		o.activeSource = o.modelPath
	}
	return o
}

// WithModelPath names the predictor file POST /v1/reload re-reads; without
// it reload answers 409.
func WithModelPath(path string) Option {
	return func(o *options) { o.modelPath = path }
}

// WithCacheSize bounds the LRU decision cache; n <= 0 disables caching.
func WithCacheSize(n int) Option {
	return func(o *options) { o.cacheSize = n }
}

// WithMaxBody sets the request-body byte limit (default 1 MiB).
func WithMaxBody(n int64) Option {
	return func(o *options) { o.maxBody = n }
}

// WithTimeout sets the per-request handler deadline (default 5s).
func WithTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithMaxInflight bounds concurrent predict requests; excess requests are
// rejected with 429 (default 64).
func WithMaxInflight(n int) Option {
	return func(o *options) { o.maxInflight = n }
}

// WithCoalescing enables server-side micro-batching: single-vector
// predicts that miss the decision cache are held up to window and
// evaluated together in one batched kernel call of at most max vectors
// (max <= 0 means 64). Grouping is timing-dependent; results are not —
// every response is byte-identical to the unbatched path.
func WithCoalescing(window time.Duration, max int) Option {
	return func(o *options) { o.coWindow, o.coMax = window, max }
}

// WithDebug mounts the introspection endpoints on the handler: pprof
// under /debug/pprof/, an expvar-style metrics snapshot at /debug/vars,
// and (with a Tracer attached) a Chrome trace_event snapshot at
// /debug/trace. The debug mux bypasses the per-request timeout because
// CPU profiles run for tens of seconds.
func WithDebug() Option {
	return func(o *options) { o.debug = true }
}

// WithTracer records one detached span per request (only while the tracer
// is enabled) and backs /debug/trace.
func WithTracer(tr *obs.Tracer) Option {
	return func(o *options) { o.tracer = tr }
}

// WithAdmission enables per-class admission control ahead of the
// concurrency semaphore: each request carries a Class (X-Request-Class
// header or the payload's "class" field, interactive by default) and is
// admitted through its class's token bucket, in-flight share cap and
// SLO-shedding threshold. See AdmissionConfig.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(o *options) { o.admission = &cfg }
}

// WithShadow loads a candidate engine that serves duplicated traffic
// asynchronously off the request path: every primary decision is queued
// (never blocking — the queue drops under pressure) and replayed against
// the shadow, streaming per-parameter agreement and decision-divergence
// metrics through the registry. POST /v1/models/promote swaps the shadow
// in once agreement clears the caller's threshold. Shadow evaluation
// never alters, delays or reorders primary responses. source names where
// the candidate was loaded from, for GET /v1/models.
func WithShadow(eng *Engine, source string) Option {
	return func(o *options) { o.shadow, o.shadowSource = eng, source }
}

// WithShadowQueue bounds the shadow duplication queue (default 1024);
// a full queue drops duplicates (counted) rather than delaying primaries.
func WithShadowQueue(n int) Option {
	return func(o *options) { o.shadowQueue = n }
}

// WithActiveSource names where the active engine was loaded from, shown
// on GET /v1/models (defaults to the WithModelPath value).
func WithActiveSource(source string) Option {
	return func(o *options) { o.activeSource = source }
}
