package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/counters"
)

// batchBody marshals a batch predict payload.
func batchBody(t testing.TB, batch [][]float64) []byte {
	t.Helper()
	b, err := json.Marshal(PredictRequest{Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// testBatch builds n distinct basic-set vectors, with index dup (if >= 0)
// duplicating index 0 to exercise intra-batch dedup.
func testBatch(n, dup int) [][]float64 {
	d := counters.Dim(counters.Basic)
	batch := SyntheticFeatures(d, n, 99)
	if dup >= 0 {
		batch[dup] = batch[0]
	}
	return batch
}

// TestPredictBatchByteIdentical is the tentpole's correctness contract: a
// batched response must be byte-identical to the concatenation of the
// responses the same vectors produce when sent individually, in order —
// cached flags included. Two identically configured servers start from the
// same (empty) cache state; one takes the batch, the other the singles.
func TestPredictBatchByteIdentical(t *testing.T) {
	for _, probs := range []string{"", "?probs=1"} {
		for _, quantized := range []bool{false, true} {
			name := fmt.Sprintf("quantized=%v%s", quantized, probs)
			t.Run(name, func(t *testing.T) {
				batch := testBatch(6, 4) // item 4 duplicates item 0
				_, batchTS := newTestServerQ(t, quantized, WithCacheSize(64))
				_, singleTS := newTestServerQ(t, quantized, WithCacheSize(64))

				resp, got := postPath(t, batchTS, "/v1/predict"+probs, batchBody(t, batch))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("batch status %d: %s", resp.StatusCode, got)
				}
				if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
					t.Errorf("batch Content-Type %q, want application/x-ndjson", ct)
				}

				var want bytes.Buffer
				for _, f := range batch {
					body, err := json.Marshal(PredictRequest{Features: f})
					if err != nil {
						t.Fatal(err)
					}
					r, data := postPath(t, singleTS, "/v1/predict"+probs, body)
					if r.StatusCode != http.StatusOK {
						t.Fatalf("single status %d: %s", r.StatusCode, data)
					}
					want.Write(data)
				}
				if !bytes.Equal(got, want.Bytes()) {
					t.Errorf("batch response differs from concatenated singles:\n--- batch ---\n%s\n--- singles ---\n%s", got, want.Bytes())
				}
				// The duplicated item must report cached, as its single twin did.
				dec := json.NewDecoder(bytes.NewReader(got))
				var items []PredictResponse
				for {
					var pr PredictResponse
					if dec.Decode(&pr) != nil {
						break
					}
					items = append(items, pr)
				}
				if len(items) != len(batch) {
					t.Fatalf("decoded %d batch items, want %d", len(items), len(batch))
				}
				if items[0].Cached || !items[4].Cached {
					t.Errorf("cached flags: item0=%v item4=%v, want false,true", items[0].Cached, items[4].Cached)
				}
			})
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := postPredict(t, ts, []byte(`{"batch": []}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch -> %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || !strings.Contains(eb.Error, "empty batch") {
		t.Errorf("unhelpful empty-batch error: %s", data)
	}
}

func TestPredictBatchOverMaxBody(t *testing.T) {
	_, ts := newTestServer(t, WithMaxBody(512))
	resp, data := postPredict(t, ts, batchBody(t, testBatch(64, -1)))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch -> %d: %s", resp.StatusCode, data)
	}
}

func TestPredictBatchMixedDimensions(t *testing.T) {
	_, ts := newTestServer(t, WithCacheSize(16))
	batch := testBatch(4, -1)
	batch[2] = []float64{1, 2, 3} // wrong dimension mid-batch
	resp, data := postPredict(t, ts, batchBody(t, batch))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed-dimension batch -> %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("non-envelope error: %s", data)
	}
	if !strings.Contains(eb.Error, "batch item 2") || !strings.Contains(eb.Error, "whole batch rejected") {
		t.Errorf("error does not name the offending index: %q", eb.Error)
	}
}

// TestPredictBatchRejectionComputesNothing asserts a rejected batch leaves
// no trace: no cache entries, no kernel calls.
func TestPredictBatchRejectionComputesNothing(t *testing.T) {
	s, ts := newTestServer(t, WithCacheSize(16))
	batch := testBatch(4, -1)
	batch[3] = []float64{1}
	postPredict(t, ts, batchBody(t, batch))
	if n := s.cache.len(); n != 0 {
		t.Errorf("rejected batch cached %d entries", n)
	}
	if got := s.metrics.batches.Value(); got != 0 {
		t.Errorf("rejected batch ran %d kernel calls", got)
	}
}

// TestPredictBatchHitsSingleRequestCache asserts the LRU is shared between
// the single and batch paths: a batch item identical to a previously
// cached single request must hit.
func TestPredictBatchHitsSingleRequestCache(t *testing.T) {
	s, ts := newTestServer(t, WithCacheSize(16))
	batch := testBatch(3, -1)
	single, err := json.Marshal(PredictRequest{Features: batch[1]})
	if err != nil {
		t.Fatal(err)
	}
	if resp, data := postPredict(t, ts, single); resp.StatusCode != http.StatusOK {
		t.Fatalf("single status %d: %s", resp.StatusCode, data)
	}
	resp, data := postPredict(t, ts, batchBody(t, batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var items []PredictResponse
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var pr PredictResponse
		if dec.Decode(&pr) != nil {
			break
		}
		items = append(items, pr)
	}
	if len(items) != 3 {
		t.Fatalf("decoded %d items, want 3", len(items))
	}
	if items[0].Cached || !items[1].Cached || items[2].Cached {
		t.Errorf("cached flags %v,%v,%v; want false,true,false", items[0].Cached, items[1].Cached, items[2].Cached)
	}
	if hits := s.metrics.hits.Value(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	// And the reverse: a single request identical to a batch-computed item
	// must hit the entries the batch populated.
	if resp, _ := postPredict(t, ts, single); resp.StatusCode != http.StatusOK {
		t.Fatal("single after batch failed")
	}
	if hits := s.metrics.hits.Value(); hits != 2 {
		t.Errorf("cache hits after single-after-batch = %d, want 2", hits)
	}
}

func TestPredictBatchAndFeaturesMutuallyExclusive(t *testing.T) {
	_, ts := newTestServer(t)
	d := counters.Dim(counters.Basic)
	f := make([]float64, d)
	b, err := json.Marshal(PredictRequest{Features: f, Batch: [][]float64{f}})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postPredict(t, ts, b)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("features+batch -> %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "mutually exclusive") {
		t.Errorf("unhelpful error: %s", data)
	}
}

// TestCoalescingByteIdentical fires concurrent single-vector requests at a
// coalescing server and a plain one: every response body must match, and
// the coalescing server must actually have batched something.
func TestCoalescingByteIdentical(t *testing.T) {
	co, coTS := newTestServer(t, WithCoalescing(2*time.Millisecond, 8), WithMaxInflight(64))
	_, plainTS := newTestServer(t, WithMaxInflight(64))
	d := counters.Dim(counters.Basic)
	pool := SyntheticFeatures(d, 16, 7)

	// Collect the expected body for each distinct vector from the plain
	// server (cache off on both servers: every request recomputes, so
	// responses are position-independent).
	want := make([]string, len(pool))
	for i, f := range pool {
		body, err := json.Marshal(PredictRequest{Features: f})
		if err != nil {
			t.Fatal(err)
		}
		_, data := postPath(t, plainTS, "/v1/predict?probs=1", body)
		want[i] = string(data)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				idx := (w*8 + i) % len(pool)
				body, err := json.Marshal(PredictRequest{Features: pool[idx]})
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(coTS.URL+"/v1/predict?probs=1", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("coalesced predict -> %d: %s", resp.StatusCode, data)
					continue
				}
				if string(data) != want[idx] {
					errs <- fmt.Errorf("coalesced response for vector %d differs from unbatched:\n%s\nvs\n%s", idx, data, want[idx])
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if co.metrics.coalesced.Value() == 0 {
		t.Error("no requests went through the coalescer")
	}
	if co.metrics.batchSize.Count() == 0 {
		t.Error("coalescer recorded no kernel calls in the batch-size histogram")
	}
}

// TestCoalescerCloseFallsBack asserts requests after Close still answer
// (direct kernel) rather than hanging.
func TestCoalescerCloseFallsBack(t *testing.T) {
	s, ts := newTestServer(t, WithCoalescing(time.Millisecond, 0))
	s.Close()
	d := counters.Dim(counters.Basic)
	resp, data := postPredict(t, ts, predictBody(t, d, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after Close -> %d: %s", resp.StatusCode, data)
	}
}

// TestErrorEnvelopeAndAllow is the table-driven contract for the unified
// error surface: every route answers a disallowed method with 405, the
// JSON {"error": ...} envelope, and a correct Allow header.
func TestErrorEnvelopeAndAllow(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		path   string
		method string // the wrong method to send
		allow  string // what Allow must advertise
	}{
		{"/v1/predict", http.MethodGet, http.MethodPost},
		{"/v1/designspace", http.MethodPost, http.MethodGet},
		{"/v1/reload", http.MethodGet, http.MethodPost},
		{"/v1/models", http.MethodPost, http.MethodGet},
		{"/v1/models/promote", http.MethodGet, http.MethodPost},
		{"/healthz", http.MethodDelete, http.MethodGet},
		{"/metrics", http.MethodPost, http.MethodGet},
	}
	for _, tc := range cases {
		t.Run(tc.method+" "+tc.path, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("status %d, want 405: %s", resp.StatusCode, data)
			}
			if got := resp.Header.Get("Allow"); got != tc.allow {
				t.Errorf("Allow = %q, want %q", got, tc.allow)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			var eb errorBody
			if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
				t.Errorf("no JSON error envelope: %s", data)
			}
		})
	}
}

// TestEnginePredictBatchMatchesPredict pins the bit-identity claim at the
// engine layer, for both weight formats.
func TestEnginePredictBatchMatchesPredict(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	for _, quantized := range []bool{false, true} {
		eng, err := NewEngine(pred, quantized)
		if err != nil {
			t.Fatal(err)
		}
		batch := SyntheticFeatures(eng.Dim(), 16, 11)
		cfgs, probs := eng.PredictBatch(batch)
		for i, f := range batch {
			wantCfg, wantProbs := eng.Predict(f)
			if cfgs[i] != wantCfg {
				t.Errorf("quantized=%v item %d: batch config %v != single %v", quantized, i, cfgs[i], wantCfg)
			}
			for p := arch.Param(0); p < arch.NumParams; p++ {
				for k := range wantProbs[p] {
					if probs[i][p][k] != wantProbs[p][k] {
						t.Fatalf("quantized=%v item %d param %s class %d: prob %g != %g (not bit-identical)",
							quantized, i, p, k, probs[i][p][k], wantProbs[p][k])
					}
				}
			}
		}
	}
}

// TestLoadGenBatchMode drives the loadgen's batch payloads end to end.
func TestLoadGenBatchMode(t *testing.T) {
	_, ts := newTestServer(t, WithCacheSize(64), WithMaxInflight(32))
	lg := LoadGen{
		Requests:    120,
		Concurrency: 4,
		Seed:        42,
		Pool:        SyntheticFeatures(counters.Dim(counters.Basic), 8, 42),
		Batch:       16,
	}
	rep, err := lg.Run(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 120 || rep.OK != 120 || rep.ServerErr != 0 || rep.Transport != 0 {
		t.Errorf("unexpected counts: %+v", rep)
	}
	if want := (120 + 15) / 16; rep.Batches != want {
		t.Errorf("batches = %d, want %d", rep.Batches, want)
	}
	// 120 requests over an 8-vector pool: most items repeat.
	if rep.CacheHits == 0 {
		t.Error("no cache hits in batch mode over a tiny pool")
	}
}
