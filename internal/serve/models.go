package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// ActiveModel describes the serving engine on GET /v1/models.
type ActiveModel struct {
	Model  ModelInfo `json:"model"`
	Source string    `json:"source,omitempty"`
}

// ModelsResponse is the GET /v1/models payload: the active engine and,
// when one is loaded, the shadow candidate with its agreement stats.
type ModelsResponse struct {
	Active ActiveModel   `json:"active"`
	Shadow *ShadowStatus `json:"shadow"`
}

// handleModels reports the active and shadow models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, ModelsResponse{
		Active: ActiveModel{
			Model:  modelInfo(s.engine.Load()),
			Source: s.ActiveSource(),
		},
		Shadow: s.shadow.status(),
	})
}

// PromoteRequest is the POST /v1/models/promote payload. Both gates are
// optional: an empty body promotes unconditionally. MinAgreement is the
// per-parameter agreement rate the shadow must have reached; MinCompared
// the number of duplicated decisions it must have been evaluated on
// (agreement over a handful of requests proves nothing).
type PromoteRequest struct {
	MinAgreement float64 `json:"minAgreement,omitempty"`
	MinCompared  uint64  `json:"minCompared,omitempty"`
}

// PromoteResponse reports a successful promotion.
type PromoteResponse struct {
	Promoted bool      `json:"promoted"`
	Previous ModelInfo `json:"previous"`
	Model    ModelInfo `json:"model"`
	// Agreement and Compared snapshot the evidence the promotion was
	// judged on.
	Agreement float64 `json:"agreement"`
	Compared  uint64  `json:"compared"`
}

// handlePromote atomically promotes the shadow to active through the same
// hot-swap path as /v1/reload — in-flight requests finish on whichever
// engine they loaded, the decision cache is purged, and the shadow slot
// empties (its epoch stats reset with it). 409 without a shadow; 412 when
// the caller's agreement evidence gates are not met.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req PromoteRequest
	body := http.MaxBytesReader(w, r.Body, s.opt.maxBody)
	// An empty body decodes as io.EOF and means "no gates".
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	st := s.shadow.status()
	if st == nil {
		writeError(w, http.StatusConflict, "no shadow model loaded; start adaptd with -shadow")
		return
	}
	if req.MinCompared > 0 && st.Compared < req.MinCompared {
		writeError(w, http.StatusPreconditionFailed,
			"shadow evaluated on %d decisions, promotion requires %d", st.Compared, req.MinCompared)
		return
	}
	if req.MinAgreement > 0 && st.ParamAgreement < req.MinAgreement {
		writeError(w, http.StatusPreconditionFailed,
			"shadow agreement %.4f below the %.4f promotion threshold (over %d decisions)",
			st.ParamAgreement, req.MinAgreement, st.Compared)
		return
	}
	prev := modelInfo(s.engine.Load())
	sh := s.shadow.eng.Load()
	s.Swap(sh)
	s.setActiveSource(st.Source)
	s.shadow.clear()
	s.metrics.promotes.Inc()
	writeJSON(w, http.StatusOK, PromoteResponse{
		Promoted:  true,
		Previous:  prev,
		Model:     modelInfo(sh),
		Agreement: st.ParamAgreement,
		Compared:  st.Compared,
	})
}
