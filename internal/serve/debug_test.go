package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/obs"
)

func TestDebugEndpointsHiddenByDefault(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/debug/vars", "/debug/trace", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s -> %d without Debug, want 404", path, resp.StatusCode)
		}
	}
}

func TestDebugVarsSnapshot(t *testing.T) {
	_, ts := newTestServer(t, WithDebug())
	d := counters.Dim(counters.Basic)
	postPredict(t, ts, predictBody(t, d, 1))

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars -> %d", resp.StatusCode)
	}
	var vars VarsResponse
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Runtime.Goroutines <= 0 || vars.Runtime.HeapAllocBytes == 0 {
		t.Errorf("implausible runtime stats: %+v", vars.Runtime)
	}
	if v, ok := vars.Server["adaptd_cache_misses_total"].(float64); !ok || v != 1 {
		t.Errorf("server metrics missing predict miss: %v", vars.Server["adaptd_cache_misses_total"])
	}
	if vars.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", vars.UptimeSeconds)
	}
}

func TestDebugTraceSnapshot(t *testing.T) {
	tr := obs.NewTracer()
	tr.Enable()
	_, ts := newTestServer(t, WithDebug(), WithTracer(tr))
	d := counters.Dim(counters.Basic)
	postPredict(t, ts, predictBody(t, d, 1))

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, data)
	}
	found := false
	for _, ev := range out.TraceEvents {
		if ev.Name == "http /v1/predict" {
			found = true
		}
	}
	if !found {
		t.Errorf("no predict span in trace: %s", data)
	}
}

func TestDebugTraceWithoutTracer(t *testing.T) {
	_, ts := newTestServer(t, WithDebug())
	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/trace without tracer -> %d, want 404", resp.StatusCode)
	}
}

func TestDebugPprofIndex(t *testing.T) {
	_, ts := newTestServer(t, WithDebug())
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "goroutine") {
		t.Errorf("pprof index -> %d:\n%.200s", resp.StatusCode, data)
	}
}

// TestMetricsIncludesProcessRegistry asserts /metrics is a superset of
// the server series: the process-wide registry (sim counters etc.) is
// appended.
func TestMetricsIncludesProcessRegistry(t *testing.T) {
	c := obs.DefaultRegistry().Counter("repro_obs_test_total", "Test-only counter.")
	c.Inc()
	s, _ := newTestServer(t)
	text := s.MetricsText()
	if !strings.Contains(text, "adaptd_requests_total") {
		t.Error("server series missing from /metrics text")
	}
	if !strings.Contains(text, "repro_obs_test_total") {
		t.Error("process registry series missing from /metrics text")
	}
}
