package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/counters"
)

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", ClassInteractive, true},
		{"interactive", ClassInteractive, true},
		{"batch", ClassBatch, true},
		{"background", ClassBackground, true},
		{"BATCH", ClassInteractive, false},
		{"bulk", ClassInteractive, false},
	}
	for _, tc := range cases {
		got, ok := ParseClass(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseClass(%q) = %v,%v; want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	for c := Class(0); c < NumClasses; c++ {
		rt, ok := ParseClass(c.String())
		if !ok || rt != c {
			t.Errorf("class %d does not round-trip through its name %q", c, c.String())
		}
	}
}

// classedBody builds a predict payload carrying the class in the JSON
// body rather than the header.
func classedBody(t testing.TB, d int, v float64, class string) []byte {
	t.Helper()
	f := make([]float64, d)
	f[0] = v
	f[d-1] = 1
	b, err := json.Marshal(PredictRequest{Features: f, Class: class})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postClassed POSTs a predict with an X-Request-Class header.
func postClassed(t testing.TB, url string, body []byte, class string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if class != "" {
		req.Header.Set("X-Request-Class", class)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestAdmissionInvalidClassRejected(t *testing.T) {
	_, ts := newTestServer(t, WithAdmission(DefaultAdmissionConfig()))
	d := counters.Dim(counters.Basic)
	if resp := postClassed(t, ts.URL, predictBody(t, d, 1), "bulk"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown header class -> %d, want 400", resp.StatusCode)
	}
	resp, data := postPredict(t, ts, classedBody(t, d, 1, "bulk"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown payload class -> %d, want 400: %s", resp.StatusCode, data)
	}
}

// TestAdmissionSLOShedsLowestClassFirst injects a windowed p99 between the
// background and batch shed thresholds: background must shed with the slo
// reason while batch and interactive keep answering 200.
func TestAdmissionSLOShedsLowestClassFirst(t *testing.T) {
	cfg := DefaultAdmissionConfig()
	cfg.TargetP99 = 100 * time.Millisecond
	s, ts := newTestServer(t, WithAdmission(cfg))
	// Injected p99, atomically updatable mid-test (handler goroutines read
	// it concurrently under -race).
	var p99 atomic.Uint64
	s.adm.readP99 = func() float64 { return math.Float64frombits(p99.Load()) }
	s.adm.p99Every = 0
	// p99 = 0.6*target: past background's 0.5 ladder rung, short of
	// batch's 0.8 and interactive's (none).
	p99.Store(math.Float64bits(0.06))

	d := counters.Dim(counters.Basic)
	body := predictBody(t, d, 1)
	resp := postClassed(t, ts.URL, body, "background")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("background under SLO pressure -> %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(shedHeader); got != "background:slo" {
		t.Errorf("shed header = %q, want background:slo", got)
	}
	for _, class := range []string{"batch", "interactive", ""} {
		if resp := postClassed(t, ts.URL, body, class); resp.StatusCode != http.StatusOK {
			t.Errorf("class %q under background-only pressure -> %d, want 200", class, resp.StatusCode)
		}
	}
	if !strings.Contains(s.MetricsText(), `adaptd_admission_shed_total{class="background",reason="slo"} 1`) {
		t.Error("shed not counted per class/reason in metrics")
	}

	// Status reports the shed per class and the per-class quantiles.
	sr := getStatus(t, ts.URL)
	if !sr.Admission.Enabled || sr.Admission.TargetP99Seconds != 0.1 {
		t.Errorf("admission status = %+v", sr.Admission)
	}
	rows := map[string]ClassStatus{}
	for _, c := range sr.Admission.Classes {
		rows[c.Class] = c
	}
	if rows["background"].Shed != 1 || rows["background"].ShedByCause["slo"] != 1 {
		t.Errorf("background row = %+v, want 1 slo shed", rows["background"])
	}
	if rows["batch"].Shed != 0 || rows["interactive"].Shed != 0 {
		t.Errorf("higher classes shed: batch=%+v interactive=%+v", rows["batch"], rows["interactive"])
	}
	if rows["interactive"].P50Seconds <= 0 || rows["interactive"].P99Seconds <= 0 {
		t.Errorf("interactive quantiles not positive: %+v", rows["interactive"])
	}
	if sr.Admission.Classes[0].Class != "interactive" || sr.Admission.Classes[2].Class != "background" {
		t.Errorf("class rows not in importance order: %+v", sr.Admission.Classes)
	}

	// Pressure past every rung sheds batch too; interactive still answers.
	p99.Store(math.Float64bits(0.2))
	if resp := postClassed(t, ts.URL, body, "batch"); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("batch past its rung -> %d, want 429", resp.StatusCode)
	}
	if resp := postClassed(t, ts.URL, body, "interactive"); resp.StatusCode != http.StatusOK {
		t.Errorf("interactive past every rung -> %d, want 200", resp.StatusCode)
	}
}

// TestAdmissionShareCapProtectsInteractive pins the headroom guarantee:
// with background capped at half the in-flight slots, a fully parked
// background load can never make the semaphore 429 an admitted interactive
// request.
func TestAdmissionShareCapProtectsInteractive(t *testing.T) {
	s, ts := newTestServer(t, WithAdmission(DefaultAdmissionConfig()), WithMaxInflight(4))
	// Park two background requests: occupy their admitted inflight share
	// and the semaphore slots they would hold inside the handler.
	bg := &s.adm.classes[ClassBackground]
	if bg.capInflight != 2 {
		t.Fatalf("background capInflight = %d, want 2 (0.5 * 4)", bg.capInflight)
	}
	bg.inflight.Add(2)
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	defer func() { bg.inflight.Add(-2); <-s.sem; <-s.sem }()

	d := counters.Dim(counters.Basic)
	body := predictBody(t, d, 1)
	resp := postClassed(t, ts.URL, body, "background")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("background over its share -> %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(shedHeader); got != "background:inflight-share" {
		t.Errorf("shed header = %q, want background:inflight-share", got)
	}
	// The two slots background cannot take keep interactive admissible.
	for i := 0; i < 4; i++ {
		if resp := postClassed(t, ts.URL, body, "interactive"); resp.StatusCode != http.StatusOK {
			t.Fatalf("interactive with background parked -> %d, want 200", resp.StatusCode)
		}
	}
	if s.metrics.saturated.Value() != 0 {
		t.Error("semaphore 429'd an admitted request despite the share cap")
	}
}

// TestAdmissionTokenBucket drives a rate-limited class with a fake clock.
func TestAdmissionTokenBucket(t *testing.T) {
	cfg := AdmissionConfig{Classes: map[Class]ClassPolicy{
		ClassBackground: {Rate: 2, Burst: 2},
	}}
	s, ts := newTestServer(t, WithAdmission(cfg))
	base := time.Unix(1000, 0)
	var offsetNanos atomic.Int64
	s.adm.now = func() time.Time { return base.Add(time.Duration(offsetNanos.Load())) }
	// Re-anchor the bucket to the fake clock (construction stamped it with
	// the real one).
	bg := &s.adm.classes[ClassBackground]
	bg.mu.Lock()
	bg.last = base
	bg.mu.Unlock()

	d := counters.Dim(counters.Basic)
	body := predictBody(t, d, 1)
	for i := 0; i < 2; i++ {
		if resp := postClassed(t, ts.URL, body, "background"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d -> %d, want 200", i, resp.StatusCode)
		}
	}
	resp := postClassed(t, ts.URL, body, "background")
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get(shedHeader) != "background:rate" {
		t.Fatalf("empty bucket -> %d (%q), want 429 background:rate", resp.StatusCode, resp.Header.Get(shedHeader))
	}
	// Unlimited classes never consult the bucket.
	if resp := postClassed(t, ts.URL, body, "interactive"); resp.StatusCode != http.StatusOK {
		t.Errorf("interactive -> %d, want 200", resp.StatusCode)
	}
	// Half a second refills one token at 2/s.
	offsetNanos.Store(int64(500 * time.Millisecond))
	if resp := postClassed(t, ts.URL, body, "background"); resp.StatusCode != http.StatusOK {
		t.Errorf("after refill -> %d, want 200", resp.StatusCode)
	}
	if resp := postClassed(t, ts.URL, body, "background"); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("bucket drained again -> %d, want 429", resp.StatusCode)
	}
}

// TestAdmissionDisabledByDefault: without WithAdmission nothing sheds and
// the status section says so (class latency rows still render).
func TestAdmissionDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t)
	d := counters.Dim(counters.Basic)
	for _, class := range []string{"background", "batch", "interactive"} {
		if resp := postClassed(t, ts.URL, predictBody(t, d, 1), class); resp.StatusCode != http.StatusOK {
			t.Errorf("class %q without admission -> %d, want 200", class, resp.StatusCode)
		}
	}
	sr := getStatus(t, ts.URL)
	if sr.Admission.Enabled {
		t.Error("admission reported enabled without WithAdmission")
	}
	if len(sr.Admission.Classes) != int(NumClasses) {
		t.Fatalf("%d class rows, want %d", len(sr.Admission.Classes), NumClasses)
	}
	for _, c := range sr.Admission.Classes {
		if c.Requests != 1 || c.Shed != 0 {
			t.Errorf("class row %+v, want 1 request / 0 shed", c)
		}
	}
}

// TestLoadGenCountsShedSeparately drives the loadgen against a server
// whose background bucket is empty: background 429s land in Shed (the
// X-Adaptd-Shed header distinguishes them), never in Rejected.
func TestLoadGenCountsShedSeparately(t *testing.T) {
	cfg := AdmissionConfig{Classes: map[Class]ClassPolicy{
		ClassBackground: {Rate: 1e-9, Burst: 1e-9}, // effectively zero
	}}
	_, ts := newTestServer(t, WithAdmission(cfg), WithCacheSize(64), WithMaxInflight(32))
	lg := LoadGen{
		Requests:    90,
		Concurrency: 4,
		Seed:        7,
		Pool:        SyntheticFeatures(counters.Dim(counters.Basic), 8, 7),
	}
	rep, err := lg.Run(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 || rep.Rejected != 0 {
		t.Fatalf("shed=%d rejected=%d, want shed>0 rejected=0", rep.Shed, rep.Rejected)
	}
	if rep.OK+rep.Shed != rep.Requests {
		t.Errorf("ok=%d shed=%d requests=%d do not add up", rep.OK, rep.Shed, rep.Requests)
	}
	for _, c := range rep.Classes {
		switch c.Class {
		case "background":
			if c.Shed != c.Requests || c.OK != 0 {
				t.Errorf("background row %+v, want all shed", c)
			}
		default:
			if c.Shed != 0 || c.OK != c.Requests {
				t.Errorf("%s row %+v, want all ok", c.Class, c)
			}
		}
	}
	if !strings.Contains(rep.String(), "shed=") {
		t.Error("report string does not mention shed")
	}
}
