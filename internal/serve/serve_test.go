package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/softmax"
)

// trainTestPredictor builds a cheap two-phase predictor on real feature
// dimensions (same pattern as internal/core's toy trainer).
func trainTestPredictor(t testing.TB, set counters.Set) *core.Predictor {
	t.Helper()
	d := counters.Dim(set)
	memFeat := make([]float64, d)
	memFeat[0] = 1
	memFeat[d-1] = 1
	cpuFeat := make([]float64, d)
	cpuFeat[1] = 1
	cpuFeat[d-1] = 1
	phases := []core.PhaseExample{
		{Features: memFeat, Good: []arch.Config{arch.Baseline().With(arch.L2CacheKB, 4096).With(arch.Width, 2)}},
		{Features: cpuFeat, Good: []arch.Config{arch.Baseline().With(arch.L2CacheKB, 256).With(arch.Width, 8)}},
	}
	opts := softmax.DefaultOptions()
	opts.MaxIter = 40
	pred, err := core.TrainPredictor(set, phases, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

// newTestServer boots a server (basic counters: small feature dimension)
// and its httptest frontend.
func newTestServer(t testing.TB, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServerQ(t, false, opts...)
}

// newTestServerQ is newTestServer with an explicit weight format.
func newTestServerQ(t testing.TB, quantized bool, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	pred := trainTestPredictor(t, counters.Basic)
	eng, err := NewEngine(pred, quantized)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, opts...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// predictBody builds a predict payload for a dim-d vector with v at index 0.
func predictBody(t testing.TB, d int, v float64) []byte {
	t.Helper()
	f := make([]float64, d)
	f[0] = v
	f[d-1] = 1
	b, err := json.Marshal(PredictRequest{Features: f})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postPath POSTs a JSON body to the given path (query string allowed).
func postPath(t testing.TB, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func postPredict(t testing.TB, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	return postPath(t, ts, "/v1/predict", body)
}

func TestPredictReturnsValidConfig(t *testing.T) {
	_, ts := newTestServer(t)
	d := counters.Dim(counters.Basic)
	resp, data := postPath(t, ts, "/v1/predict?probs=1", predictBody(t, d, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Cached {
		t.Error("first request reported as cached")
	}
	if pr.Set != "basic" || pr.Quantized {
		t.Errorf("wrong model info: set=%q quantized=%v", pr.Set, pr.Quantized)
	}
	var cfg arch.Config
	for p := arch.Param(0); p < arch.NumParams; p++ {
		v, ok := pr.Config[p.String()]
		if !ok {
			t.Fatalf("response missing parameter %s", p)
		}
		cfg[p] = v
		probs := pr.Probabilities[p.String()]
		if len(probs) != arch.DomainSize(p) {
			t.Errorf("%s has %d probabilities, want %d", p, len(probs), arch.DomainSize(p))
		}
		sum := 0.0
		for _, q := range probs {
			sum += q
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s probabilities sum to %f", p, sum)
		}
	}
	if err := cfg.Check(); err != nil {
		t.Errorf("predicted config invalid: %v", err)
	}
}

// TestPredictProbabilitiesOptIn asserts the distributions only appear with
// ?probs=1: the default response omits the field entirely, and the opted-in
// body is unchanged by the flag's existence for everything else.
func TestPredictProbabilitiesOptIn(t *testing.T) {
	_, ts := newTestServer(t)
	d := counters.Dim(counters.Basic)
	body := predictBody(t, d, 1)
	_, plain := postPredict(t, ts, body)
	if strings.Contains(string(plain), `"probabilities"`) {
		t.Errorf("default response carries probabilities:\n%s", plain)
	}
	_, withProbs := postPath(t, ts, "/v1/predict?probs=1", body)
	var pr PredictResponse
	if err := json.Unmarshal(withProbs, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Probabilities) != int(arch.NumParams) {
		t.Errorf("?probs=1 returned %d distributions, want %d", len(pr.Probabilities), arch.NumParams)
	}
	if len(plain) >= len(withProbs) {
		t.Errorf("default response (%d bytes) not smaller than ?probs=1 (%d bytes)", len(plain), len(withProbs))
	}
	// The two responses agree on everything but the distributions.
	var plainPR PredictResponse
	if err := json.Unmarshal(plain, &plainPR); err != nil {
		t.Fatal(err)
	}
	for name, v := range pr.Config {
		if plainPR.Config[name] != v {
			t.Errorf("config differs between probs modes for %s", name)
		}
	}
}

func TestPredictCacheHitOnRepeat(t *testing.T) {
	s, ts := newTestServer(t, WithCacheSize(16))
	d := counters.Dim(counters.Basic)
	body := predictBody(t, d, 0.5)
	_, first := postPredict(t, ts, body)
	resp, second := postPredict(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr1, pr2 PredictResponse
	if err := json.Unmarshal(first, &pr1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &pr2); err != nil {
		t.Fatal(err)
	}
	if pr1.Cached || !pr2.Cached {
		t.Errorf("cached flags = %v, %v; want false, true", pr1.Cached, pr2.Cached)
	}
	for name, v := range pr1.Config {
		if pr2.Config[name] != v {
			t.Errorf("cached decision differs for %s: %d vs %d", name, v, pr2.Config[name])
		}
	}
	if s.HitRate() <= 0 {
		t.Error("hit rate not positive after repeat")
	}
}

func TestPredictMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := postPredict(t, ts, []byte(`{"features": [1, 2,`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for malformed JSON: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
		t.Errorf("no JSON error payload: %s", data)
	}
}

func TestPredictWrongDimension(t *testing.T) {
	_, ts := newTestServer(t)
	b, _ := json.Marshal(PredictRequest{Features: []float64{1, 2, 3}})
	resp, data := postPredict(t, ts, b)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for wrong dimension", resp.StatusCode)
	}
	if !strings.Contains(string(data), "dimension") {
		t.Errorf("unhelpful error: %s", data)
	}
}

func TestPredictWrongSetTag(t *testing.T) {
	_, ts := newTestServer(t)
	d := counters.Dim(counters.Basic)
	f := make([]float64, d)
	b, _ := json.Marshal(PredictRequest{Features: f, Set: "advanced"})
	resp, data := postPredict(t, ts, b)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for mismatched set tag: %s", resp.StatusCode, data)
	}
}

func TestPredictOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, WithMaxBody(256))
	big := make([]float64, 4096)
	b, _ := json.Marshal(PredictRequest{Features: big})
	resp, data := postPredict(t, ts, b)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d for oversized body: %s", resp.StatusCode, data)
	}
}

func TestPredictMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict -> %d, want 405", resp.StatusCode)
	}
}

func TestPredictSaturationReturns429(t *testing.T) {
	// MaxInflight 1 plus a request that parks inside the handler forces
	// the next request onto the backpressure path.
	s, ts := newTestServer(t, WithMaxInflight(1), WithTimeout(5*time.Second))
	release := make(chan struct{})
	s.sem <- struct{}{} // occupy the only slot, as a parked request would
	go func() {
		<-release
		<-s.sem
	}()
	d := counters.Dim(counters.Basic)
	resp, data := postPredict(t, ts, predictBody(t, d, 1))
	close(release)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d under saturation: %s", resp.StatusCode, data)
	}
	if !strings.Contains(s.MetricsText(), "adaptd_saturated_total 1") {
		t.Error("saturation not counted in metrics")
	}
}

func TestDesignSpaceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/designspace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ds DesignSpaceResponse
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	if len(ds.Parameters) != int(arch.NumParams) {
		t.Errorf("%d parameters, want %d", len(ds.Parameters), arch.NumParams)
	}
	if ds.SpacePoints != arch.SpaceSize() {
		t.Errorf("space points %d, want %d", ds.SpacePoints, arch.SpaceSize())
	}
	if ds.Model.Set != "basic" || ds.Model.Dim != counters.Dim(counters.Basic) {
		t.Errorf("bad model info: %+v", ds.Model)
	}
	for i, p := range ds.Parameters {
		if p.Name != arch.Param(i).String() || len(p.Values) != arch.DomainSize(arch.Param(i)) {
			t.Errorf("parameter %d wrong: %+v", i, p)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Model.Weights <= 0 {
		t.Errorf("bad health payload: %+v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, WithCacheSize(8))
	d := counters.Dim(counters.Basic)
	body := predictBody(t, d, 1)
	postPredict(t, ts, body)
	postPredict(t, ts, body)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		`adaptd_requests_total{path="/v1/predict",code="200"} 2`,
		"adaptd_cache_hits_total 1",
		"adaptd_cache_misses_total 1",
		"adaptd_predict_latency_seconds_count 2",
		`adaptd_predict_latency_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// writeModel saves a predictor to a temp file and returns the path.
func writeModel(t testing.TB, pred *core.Predictor) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReloadHotSwapsAndPurgesCache(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	path := writeModel(t, pred)
	eng, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, WithModelPath(path), WithCacheSize(8))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := counters.Dim(counters.Basic)
	postPredict(t, ts, predictBody(t, d, 1))
	if s.cache.len() == 0 {
		t.Fatal("no cache entry before reload")
	}
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("reload status %d: %s", resp.StatusCode, data)
	}
	var rr ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Reloaded || rr.Model.Set != "basic" {
		t.Errorf("bad reload payload: %+v", rr)
	}
	if s.cache.len() != 0 {
		t.Error("cache not purged by reload")
	}
	if s.Engine() == eng {
		t.Error("engine pointer not swapped")
	}
	// And the swapped engine still answers.
	r2, data := postPredict(t, ts, predictBody(t, d, 1))
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("predict after reload: %d %s", r2.StatusCode, data)
	}
}

func TestReloadWithoutModelPath(t *testing.T) {
	_, ts := newTestServer(t) // no ModelPath
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload without path -> %d, want 409", resp.StatusCode)
	}
}

func TestReloadRejectsCorruptFile(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := os.WriteFile(path, []byte("definitely not a predictor"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, WithModelPath(path))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload -> %d, want 500", resp.StatusCode)
	}
	if s.Engine() != eng {
		t.Error("engine swapped despite failed reload")
	}
}

// TestConcurrentPredictAndReload hammers predict from many goroutines
// while hot-swapping the model, under -race via scripts/verify.sh. Every
// response must be 200 — zero downtime — and every decision internally
// consistent.
func TestConcurrentPredictAndReload(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	path := writeModel(t, pred)
	eng, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, WithModelPath(path), WithCacheSize(64), WithMaxInflight(128))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := counters.Dim(counters.Basic)
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := predictBody(t, d, float64(w%4)/4)
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("predict -> %d: %s", resp.StatusCode, data)
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reload -> %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineRejectsInvalidPredictor(t *testing.T) {
	if _, err := NewEngine(nil, false); err == nil {
		t.Error("nil predictor accepted")
	}
	bad := &core.Predictor{Set: counters.Basic} // no models
	if _, err := NewEngine(bad, false); err == nil {
		t.Error("incomplete predictor accepted")
	}
}

func TestEnginePredictMatchesCore(t *testing.T) {
	pred := trainTestPredictor(t, counters.Basic)
	eng, err := NewEngine(pred, false)
	if err != nil {
		t.Fatal(err)
	}
	d := counters.Dim(counters.Basic)
	for trial := 0; trial < 10; trial++ {
		f := make([]float64, d)
		f[trial%d] = 1
		f[d-1] = 1
		got, _ := eng.Predict(f)
		if want := pred.Predict(f); got != want {
			t.Errorf("engine decision %v != core decision %v", got, want)
		}
	}
}
