package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Class is a request's admission class. Higher values are more important:
// under pressure the server sheds the lowest class first, so interactive
// traffic keeps its latency while background traffic absorbs the loss —
// the serving-side analogue of the paper's premise that the adaptive core
// must keep reacting to the phases that matter even when the pipeline is
// saturated.
type Class uint8

const (
	ClassBackground Class = iota
	ClassBatch
	ClassInteractive
	// NumClasses bounds the class space; iterate Class(0)..NumClasses-1.
	NumClasses
)

// String returns the wire name carried in X-Request-Class.
func (c Class) String() string {
	switch c {
	case ClassBackground:
		return "background"
	case ClassBatch:
		return "batch"
	case ClassInteractive:
		return "interactive"
	}
	return "unknown"
}

// ParseClass resolves a wire name; the empty string is the default
// (interactive — untagged callers are presumed latency-sensitive).
func ParseClass(s string) (Class, bool) {
	switch s {
	case "":
		return ClassInteractive, true
	case "background":
		return ClassBackground, true
	case "batch":
		return ClassBatch, true
	case "interactive":
		return ClassInteractive, true
	}
	return ClassInteractive, false
}

// ClassPolicy is one class's admission policy. The zero policy admits
// everything.
type ClassPolicy struct {
	// Rate is the class's token-bucket refill rate in requests/second;
	// <= 0 disables rate limiting for the class.
	Rate float64
	// Burst is the bucket capacity; <= 0 defaults to max(1, Rate).
	Burst float64
	// MaxShare caps the class's concurrent in-flight predicts at this
	// fraction of the server's MaxInflight (at least 1 slot). Values
	// <= 0 or >= 1 leave the class bounded only by the shared semaphore.
	// Lower classes keep a smaller share, so an admitted higher-class
	// request always finds semaphore headroom the lower classes cannot
	// occupy.
	MaxShare float64
	// ShedFrac sheds the class while the windowed /v1/predict p99
	// latency is at or above ShedFrac * TargetP99 — the lowest class gets
	// the smallest fraction, so it sheds first as the p99 approaches the
	// target. <= 0 disables SLO shedding for the class.
	ShedFrac float64
}

// AdmissionConfig configures per-class admission control.
type AdmissionConfig struct {
	// TargetP99 is the windowed p99 latency target for /v1/predict that
	// SLO shedding defends; 0 disables SLO shedding (token buckets and
	// share caps still apply).
	TargetP99 time.Duration
	// Classes overrides the per-class policies; classes absent from the
	// map keep the defaults (see DefaultAdmissionConfig).
	Classes map[Class]ClassPolicy
}

// DefaultAdmissionConfig is the shed-lowest-first ladder: background may
// hold half the in-flight slots and sheds at half the p99 target, batch
// three quarters of each, interactive is never SLO-shed and bounded only
// by the shared semaphore.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		Classes: map[Class]ClassPolicy{
			ClassBackground:  {MaxShare: 0.5, ShedFrac: 0.5},
			ClassBatch:       {MaxShare: 0.75, ShedFrac: 0.8},
			ClassInteractive: {},
		},
	}
}

// admitReason* name why a request was shed; they label the
// adaptd_admission_shed_total counter and the X-Adaptd-Shed header.
const (
	admitReasonShare = "inflight-share"
	admitReasonRate  = "rate"
	admitReasonSLO   = "slo"
)

// classGate is one class's runtime admission state.
type classGate struct {
	policy      ClassPolicy
	capInflight int64 // resolved MaxShare cap; 0 = uncapped
	inflight    atomic.Int64

	mu     sync.Mutex // guards the token bucket
	tokens float64
	last   time.Time
}

// admission is the per-class gate ahead of the concurrency semaphore.
// Everything timing-dependent about it (bucket refill, windowed p99) is
// serving telemetry only — admission decisions never feed back into any
// memoised result (CLAUDE.md).
type admission struct {
	target  float64 // TargetP99 in seconds; 0 = SLO shedding off
	classes [NumClasses]classGate

	// readP99 returns the current windowed /v1/predict p99 in seconds;
	// injectable in tests. Reads are cached for p99Every to keep the
	// admit path from merging histogram buckets per request.
	readP99  func() float64
	p99Every time.Duration
	p99Bits  atomic.Uint64
	p99Last  atomic.Int64 // unix nanos of the last refresh

	// now is the bucket clock; injectable in tests.
	now func() time.Time
}

// newAdmission resolves the config against the server's inflight bound.
func newAdmission(cfg AdmissionConfig, maxInflight int, readP99 func() float64) *admission {
	a := &admission{
		target:   cfg.TargetP99.Seconds(),
		readP99:  readP99,
		p99Every: 100 * time.Millisecond,
		now:      time.Now,
	}
	defaults := DefaultAdmissionConfig().Classes
	start := time.Now()
	for c := Class(0); c < NumClasses; c++ {
		pol, ok := cfg.Classes[c]
		if !ok {
			pol = defaults[c]
		}
		g := &a.classes[c]
		g.policy = pol
		if pol.MaxShare > 0 && pol.MaxShare < 1 {
			g.capInflight = int64(math.Max(1, math.Floor(pol.MaxShare*float64(maxInflight))))
		}
		if pol.Rate > 0 {
			g.tokens = pol.burst()
			g.last = start
		}
	}
	return a
}

// burst returns the effective bucket capacity.
func (p ClassPolicy) burst() float64 {
	if p.Burst > 0 {
		return p.Burst
	}
	return math.Max(1, p.Rate)
}

// admit decides one request. On admission it returns a release func that
// MUST be called when the request leaves the handler; on shed it returns
// nil and the reason. Checks run cheapest-and-most-deterministic first:
// the in-flight share cap, then the SLO threshold (before the bucket, so
// an SLO shed never burns a token), then the token bucket.
func (a *admission) admit(c Class) (release func(), reason string) {
	g := &a.classes[c]
	if g.capInflight > 0 {
		if n := g.inflight.Add(1); n > g.capInflight {
			g.inflight.Add(-1)
			return nil, admitReasonShare
		}
	} else {
		g.inflight.Add(1)
	}
	release = func() { g.inflight.Add(-1) }
	if a.target > 0 && g.policy.ShedFrac > 0 {
		if a.currentP99() >= g.policy.ShedFrac*a.target {
			release()
			return nil, admitReasonSLO
		}
	}
	if g.policy.Rate > 0 && !g.takeToken(a.now()) {
		release()
		return nil, admitReasonRate
	}
	return release, ""
}

// takeToken refills the class bucket by the elapsed wall clock and takes
// one token if available.
func (g *classGate) takeToken(now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if dt := now.Sub(g.last).Seconds(); dt > 0 {
		g.tokens = math.Min(g.policy.burst(), g.tokens+dt*g.policy.Rate)
		g.last = now
	}
	if g.tokens < 1 {
		return false
	}
	g.tokens--
	return true
}

// currentP99 returns the cached windowed p99, refreshing it at most once
// per p99Every (one winner per interval via CAS; losers read the cache).
func (a *admission) currentP99() float64 {
	now := a.now().UnixNano()
	last := a.p99Last.Load()
	if now-last >= int64(a.p99Every) && a.p99Last.CompareAndSwap(last, now) {
		a.p99Bits.Store(math.Float64bits(a.readP99()))
	}
	return math.Float64frombits(a.p99Bits.Load())
}

// inflightOf reports a class's current admitted in-flight count.
func (a *admission) inflightOf(c Class) int64 { return a.classes[c].inflight.Load() }
