package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// latencyBuckets are the upper bounds (seconds) of the predict-latency
// histogram, Prometheus-style; an implicit +Inf bucket follows.
var latencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 1,
}

// metrics is the server's hand-rolled instrumentation: request counts per
// (path, status), a predict-latency histogram backed by a stats.Histogram
// (one bin per bucket plus overflow), and cache/saturation/reload
// counters. Everything is guarded by one mutex — the predict path takes it
// twice per request, which is noise next to the 14-model argmax.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]uint64 // "path\x00code" -> count
	latency   *stats.Histogram  // bin i = latencyBuckets[i], last bin = +Inf
	latSum    float64
	hits      uint64
	misses    uint64
	saturated uint64
	reloads   uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]uint64{},
		latency:  stats.NewHistogram(len(latencyBuckets) + 1),
	}
}

// observeRequest counts one completed request.
func (m *metrics) observeRequest(path string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s\x00%d", path, code)]++
}

// observeLatency records one predict latency in seconds.
func (m *metrics) observeLatency(seconds float64) {
	bin := len(latencyBuckets) // +Inf
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			bin = i
			break
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latency.Add(bin)
	m.latSum += seconds
}

func (m *metrics) addHit()       { m.mu.Lock(); m.hits++; m.mu.Unlock() }
func (m *metrics) addMiss()      { m.mu.Lock(); m.misses++; m.mu.Unlock() }
func (m *metrics) addSaturated() { m.mu.Lock(); m.saturated++; m.mu.Unlock() }
func (m *metrics) addReload()    { m.mu.Lock(); m.reloads++; m.mu.Unlock() }

// hitRate returns hits/(hits+misses), 0 before any predict.
func (m *metrics) hitRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hits+m.misses == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.hits+m.misses)
}

// render writes the Prometheus text exposition of every metric.
func (m *metrics) render(cacheLen int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	b.WriteString("# HELP adaptd_requests_total Requests served, by path and status code.\n")
	b.WriteString("# TYPE adaptd_requests_total counter\n")
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		path, code, _ := strings.Cut(k, "\x00")
		fmt.Fprintf(&b, "adaptd_requests_total{path=%q,code=%q} %d\n", path, code, m.requests[k])
	}

	b.WriteString("# HELP adaptd_predict_latency_seconds Predict handler latency.\n")
	b.WriteString("# TYPE adaptd_predict_latency_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBuckets {
		cum += m.latency.Counts[i]
		fmt.Fprintf(&b, "adaptd_predict_latency_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	fmt.Fprintf(&b, "adaptd_predict_latency_seconds_bucket{le=\"+Inf\"} %d\n", m.latency.Total)
	fmt.Fprintf(&b, "adaptd_predict_latency_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(&b, "adaptd_predict_latency_seconds_count %d\n", m.latency.Total)

	fmt.Fprintf(&b, "# HELP adaptd_cache_hits_total Predict decisions answered from the LRU cache.\n")
	fmt.Fprintf(&b, "# TYPE adaptd_cache_hits_total counter\n")
	fmt.Fprintf(&b, "adaptd_cache_hits_total %d\n", m.hits)
	fmt.Fprintf(&b, "# HELP adaptd_cache_misses_total Predict decisions computed by the model.\n")
	fmt.Fprintf(&b, "# TYPE adaptd_cache_misses_total counter\n")
	fmt.Fprintf(&b, "adaptd_cache_misses_total %d\n", m.misses)
	fmt.Fprintf(&b, "# HELP adaptd_cache_entries Current LRU cache entries.\n")
	fmt.Fprintf(&b, "# TYPE adaptd_cache_entries gauge\n")
	fmt.Fprintf(&b, "adaptd_cache_entries %d\n", cacheLen)
	fmt.Fprintf(&b, "# HELP adaptd_saturated_total Requests rejected with 429 by the concurrency limiter.\n")
	fmt.Fprintf(&b, "# TYPE adaptd_saturated_total counter\n")
	fmt.Fprintf(&b, "adaptd_saturated_total %d\n", m.saturated)
	fmt.Fprintf(&b, "# HELP adaptd_reloads_total Successful predictor hot-swaps.\n")
	fmt.Fprintf(&b, "# TYPE adaptd_reloads_total counter\n")
	fmt.Fprintf(&b, "adaptd_reloads_total %d\n", m.reloads)
	return b.String()
}

// trimFloat formats a bucket bound the way Prometheus clients do.
func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }
