package serve

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// slo* shape the per-route windowed latency histograms behind /v1/status:
// 1 microsecond to 10 seconds with 16 linear sub-buckets per power of two
// (<= 6.25% relative quantile error), quantiles read over roughly the
// last minute of traffic (4 rotating 15s sub-windows).
const (
	sloMinLatency = 1e-6
	sloMaxLatency = 10.0
	sloSubBuckets = 16
	sloWindow     = time.Minute
	sloSlots      = 4
)

// routePaths are the instrumented endpoints, in the order /v1/status
// reports them.
var routePaths = []string{
	"/healthz", "/metrics", "/v1/designspace", "/v1/predict", "/v1/reload", "/v1/status",
}

// latencyBuckets are the upper bounds (seconds) of the predict-latency
// histogram, Prometheus-style; an implicit +Inf bucket follows.
var latencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 1,
}

// batchSizeBuckets are the upper bounds of the kernel batch-size
// histogram: powers of two up to the default coalescing cap and beyond,
// so the exposition shows how well micro-batching is amortising calls.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// metrics is the server's instrumentation, held in a per-server
// obs.Registry (servers must not share series — tests boot several). All
// counters and the histogram are atomic, so the predict hot path records
// hits, misses, saturation and latency without taking any lock; the one
// remaining lock is the request vec's child lookup (a read lock on a
// small map). PR 1's hand-rolled map+mutex version took the mutex twice
// per predict.
type metrics struct {
	reg           *obs.Registry
	requests      *obs.CounterVec
	latency       *obs.Histogram
	hits          *obs.Counter
	misses        *obs.Counter
	saturated     *obs.Counter
	reloads       *obs.Counter
	batchSize     *obs.Histogram
	batches       *obs.Counter
	batchRequests *obs.Counter
	batchItems    *obs.Counter
	coalesced     *obs.Counter

	// routeLat holds one windowed latency histogram per known route —
	// built once at construction, so the request path reads a plain map
	// with no locking. Unknown paths (the debug mux) are simply not
	// windowed; they still count in the request vec.
	routeLat map[string]*obs.WindowedHistogram
}

// newMetrics builds the server's registry; cacheLen is sampled at
// exposition time for the entries gauge.
func newMetrics(cacheLen func() int) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:       reg,
		requests:  reg.CounterVec("adaptd_requests_total", "Requests served, by path and status code.", "path", "code"),
		latency:   reg.Histogram("adaptd_predict_latency_seconds", "Predict handler latency.", latencyBuckets),
		hits:      reg.Counter("adaptd_cache_hits_total", "Predict decisions answered from the LRU cache."),
		misses:    reg.Counter("adaptd_cache_misses_total", "Predict decisions computed by the model."),
		saturated: reg.Counter("adaptd_saturated_total", "Requests rejected with 429 by the concurrency limiter."),
		reloads:   reg.Counter("adaptd_reloads_total", "Successful predictor hot-swaps."),
		batchSize: reg.Histogram("adaptd_batch_size",
			"Feature vectors evaluated per batched kernel call (batch requests and coalesced singles).", batchSizeBuckets),
		batches:       reg.Counter("adaptd_batches_total", "Batched kernel calls."),
		batchRequests: reg.Counter("adaptd_batch_requests_total", "Predict requests that carried a batch payload."),
		batchItems:    reg.Counter("adaptd_batch_items_total", "Feature vectors received inside batch payloads."),
		coalesced:     reg.Counter("adaptd_coalesced_total", "Single-vector predicts answered through the micro-batching coalescer."),
	}
	reg.GaugeFunc("adaptd_cache_entries", "Current LRU cache entries.", func() float64 {
		return float64(cacheLen())
	})
	m.routeLat = make(map[string]*obs.WindowedHistogram, len(routePaths))
	for _, p := range routePaths {
		m.routeLat[p] = obs.NewWindowedHistogram(sloMinLatency, sloMaxLatency, sloSubBuckets, sloWindow, sloSlots)
	}
	return m
}

// observeLatency records one request's wall-clock seconds against its
// route's windowed histogram.
func (m *metrics) observeLatency(path string, seconds float64) {
	if h := m.routeLat[path]; h != nil {
		h.Observe(seconds)
	}
}

// observeRequest counts one completed request.
func (m *metrics) observeRequest(path string, code int) {
	m.requests.With(path, strconv.Itoa(code)).Inc()
}

// hitRate returns hits/(hits+misses), 0 before any predict.
func (m *metrics) hitRate() float64 {
	h, mi := m.hits.Value(), m.misses.Value()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}
