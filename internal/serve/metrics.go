package serve

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// slo* shape the per-route windowed latency histograms behind /v1/status:
// 1 microsecond to 10 seconds with 16 linear sub-buckets per power of two
// (<= 6.25% relative quantile error), quantiles read over roughly the
// last minute of traffic (4 rotating 15s sub-windows).
const (
	sloMinLatency = 1e-6
	sloMaxLatency = 10.0
	sloSubBuckets = 16
	sloWindow     = time.Minute
	sloSlots      = 4
)

// routePaths are the instrumented endpoints, in the order /v1/status
// reports them.
var routePaths = []string{
	"/healthz", "/metrics", "/v1/designspace", "/v1/models", "/v1/models/promote",
	"/v1/predict", "/v1/reload", "/v1/status",
}

// latencyBuckets are the upper bounds (seconds) of the predict-latency
// histogram, Prometheus-style; an implicit +Inf bucket follows.
var latencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 1,
}

// batchSizeBuckets are the upper bounds of the kernel batch-size
// histogram: powers of two up to the default coalescing cap and beyond,
// so the exposition shows how well micro-batching is amortising calls.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// metrics is the server's instrumentation, held in a per-server
// obs.Registry (servers must not share series — tests boot several). All
// counters and the histogram are atomic, so the predict hot path records
// hits, misses, saturation and latency without taking any lock; the one
// remaining lock is the request vec's child lookup (a read lock on a
// small map). PR 1's hand-rolled map+mutex version took the mutex twice
// per predict.
type metrics struct {
	reg           *obs.Registry
	requests      *obs.CounterVec
	latency       *obs.Histogram
	hits          *obs.Counter
	misses        *obs.Counter
	saturated     *obs.Counter
	reloads       *obs.Counter
	batchSize     *obs.Histogram
	batches       *obs.Counter
	batchRequests *obs.Counter
	batchItems    *obs.Counter
	coalesced     *obs.Counter
	promotes      *obs.Counter
	classRequests *obs.CounterVec
	shed          *obs.CounterVec

	// routeLat holds one windowed latency histogram per known route —
	// built once at construction, so the request path reads a plain map
	// with no locking. Unknown paths (the debug mux) are simply not
	// windowed; they still count in the request vec.
	routeLat map[string]*obs.WindowedHistogram
	// classLat windows admitted predict latency per admission class, so
	// /v1/status can show who is actually meeting the SLO when shedding
	// starts.
	classLat [NumClasses]*obs.WindowedHistogram
}

// newMetrics builds the server's registry; cacheLen is sampled at
// exposition time for the entries gauge.
func newMetrics(cacheLen func() int) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:       reg,
		requests:  reg.CounterVec("adaptd_requests_total", "Requests served, by path and status code.", "path", "code"),
		latency:   reg.Histogram("adaptd_predict_latency_seconds", "Predict handler latency.", latencyBuckets),
		hits:      reg.Counter("adaptd_cache_hits_total", "Predict decisions answered from the LRU cache."),
		misses:    reg.Counter("adaptd_cache_misses_total", "Predict decisions computed by the model."),
		saturated: reg.Counter("adaptd_saturated_total", "Requests rejected with 429 by the concurrency limiter."),
		reloads:   reg.Counter("adaptd_reloads_total", "Successful predictor hot-swaps."),
		batchSize: reg.Histogram("adaptd_batch_size",
			"Feature vectors evaluated per batched kernel call (batch requests and coalesced singles).", batchSizeBuckets),
		batches:       reg.Counter("adaptd_batches_total", "Batched kernel calls."),
		batchRequests: reg.Counter("adaptd_batch_requests_total", "Predict requests that carried a batch payload."),
		batchItems:    reg.Counter("adaptd_batch_items_total", "Feature vectors received inside batch payloads."),
		coalesced:     reg.Counter("adaptd_coalesced_total", "Single-vector predicts answered through the micro-batching coalescer."),
		promotes:      reg.Counter("adaptd_promotes_total", "Shadow models promoted to active."),
		classRequests: reg.CounterVec("adaptd_class_requests_total", "Predict requests received, by admission class.", "class"),
		shed:          reg.CounterVec("adaptd_admission_shed_total", "Predict requests shed by admission control, by class and reason.", "class", "reason"),
	}
	reg.GaugeFunc("adaptd_cache_entries", "Current LRU cache entries.", func() float64 {
		return float64(cacheLen())
	})
	m.routeLat = make(map[string]*obs.WindowedHistogram, len(routePaths))
	for _, p := range routePaths {
		m.routeLat[p] = obs.NewWindowedHistogram(sloMinLatency, sloMaxLatency, sloSubBuckets, sloWindow, sloSlots)
	}
	for c := Class(0); c < NumClasses; c++ {
		m.classLat[c] = obs.NewWindowedHistogram(sloMinLatency, sloMaxLatency, sloSubBuckets, sloWindow, sloSlots)
	}
	return m
}

// registerShadow exposes the shadow evaluator's agreement stats as
// registry series; the worker writes plain atomics and exposition samples
// them, so the shadow path itself never touches the registry.
func (m *metrics) registerShadow(st *shadowState) {
	m.reg.GaugeFunc("adaptd_shadow_compared_total", "Decisions replayed on the shadow model.", func() float64 {
		return float64(st.compared.Load())
	})
	m.reg.GaugeFunc("adaptd_shadow_dropped_total", "Shadow duplicates dropped on a full queue.", func() float64 {
		return float64(st.dropped.Load())
	})
	m.reg.GaugeFunc("adaptd_shadow_param_agreement", "Per-parameter agreement rate between shadow and active decisions.", func() float64 {
		if pt := st.paramTotal.Load(); pt > 0 {
			return float64(st.paramAgree.Load()) / float64(pt)
		}
		return 0
	})
	m.reg.GaugeFunc("adaptd_shadow_decision_divergence_total", "Compared decisions where the shadow disagreed on at least one parameter.", func() float64 {
		return float64(st.compared.Load() - st.matched.Load())
	})
}

// observeLatency records one request's wall-clock seconds against its
// route's windowed histogram.
func (m *metrics) observeLatency(path string, seconds float64) {
	if h := m.routeLat[path]; h != nil {
		h.Observe(seconds)
	}
}

// observeRequest counts one completed request.
func (m *metrics) observeRequest(path string, code int) {
	m.requests.With(path, strconv.Itoa(code)).Inc()
}

// observeClassLatency records one admitted predict's wall-clock seconds
// against its admission class.
func (m *metrics) observeClassLatency(c Class, seconds float64) {
	m.classLat[c].Observe(seconds)
}

// predictP99 reads the current windowed /v1/predict p99 in seconds; it is
// the signal SLO shedding defends.
func (m *metrics) predictP99() float64 {
	return m.routeLat["/v1/predict"].Quantile(0.99)
}

// hitRate returns hits/(hits+misses), 0 before any predict.
func (m *metrics) hitRate() float64 {
	h, mi := m.hits.Value(), m.misses.Value()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}
