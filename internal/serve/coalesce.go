package serve

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/obs"
)

// pendingPredict is one cache-missed single-vector request parked in the
// coalescer, waiting to ride a batched kernel call.
type pendingPredict struct {
	eng      *Engine
	features []float64
	done     chan coalesceResult
}

// coalesceResult carries one request's decision back to its handler.
type coalesceResult struct {
	config arch.Config
	probs  [arch.NumParams][]float64
}

// coalescer implements server-side micro-batching: concurrent
// single-vector predict requests that miss the decision cache are held for
// at most the configured window (or until the batch is full) and evaluated
// in one Engine.PredictBatch call, amortising the pass over the weights.
// The batched kernel is bit-identical to the per-vector one, so coalescing
// changes request *grouping* and nothing else: every response is
// byte-identical to the unbatched path, whatever batches timing produces.
type coalescer struct {
	in       chan *pendingPredict
	stop     chan struct{}
	stopOnce sync.Once
	stopped  chan struct{}
	window   time.Duration
	max      int
	metrics  *metrics
	tracer   *obs.Tracer
}

// newCoalescer starts the dispatcher goroutine.
func newCoalescer(window time.Duration, max int, m *metrics, tr *obs.Tracer) *coalescer {
	if max <= 0 {
		max = 64
	}
	c := &coalescer{
		in:      make(chan *pendingPredict),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		window:  window,
		max:     max,
		metrics: m,
		tracer:  tr,
	}
	go c.run()
	return c
}

// predict parks one request until its batch executes. After close it falls
// back to the direct kernel — same result, no batching.
func (c *coalescer) predict(eng *Engine, features []float64) (arch.Config, [arch.NumParams][]float64) {
	p := &pendingPredict{eng: eng, features: features, done: make(chan coalesceResult, 1)}
	select {
	case c.in <- p:
		r := <-p.done
		return r.config, r.probs
	case <-c.stop:
		return eng.Predict(features)
	}
}

// close stops the dispatcher and waits for it to drain. Idempotent.
func (c *coalescer) close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.stopped
}

// run is the dispatcher: block for the first pending request, gather more
// until the window expires or the batch is full, then flush.
func (c *coalescer) run() {
	defer close(c.stopped)
	for {
		var first *pendingPredict
		select {
		case first = <-c.in:
		case <-c.stop:
			return
		}
		batch := []*pendingPredict{first}
		timer := time.NewTimer(c.window)
	gather:
		for len(batch) < c.max {
			select {
			case p := <-c.in:
				batch = append(batch, p)
			case <-timer.C:
				break gather
			case <-c.stop:
				break gather
			}
		}
		timer.Stop()
		c.flush(batch)
	}
}

// flush runs the gathered requests, one kernel call per distinct engine: a
// hot-swap can land mid-window, and each request must be answered by the
// engine its handler validated the feature dimension against.
func (c *coalescer) flush(batch []*pendingPredict) {
	for len(batch) > 0 {
		eng := batch[0].eng
		var group, rest []*pendingPredict
		var feats [][]float64
		for _, p := range batch {
			if p.eng == eng {
				group = append(group, p)
				feats = append(feats, p.features)
			} else {
				rest = append(rest, p)
			}
		}
		var sp *obs.Span
		if c.tracer != nil {
			sp = c.tracer.StartDetached("predict batch")
		}
		configs, probs := eng.PredictBatch(feats)
		if sp != nil {
			sp.SetArg("mode", "coalesce").SetArg("n", strconv.Itoa(len(group))).Finish()
		}
		c.metrics.batchSize.Observe(float64(len(group)))
		c.metrics.batches.Inc()
		for i, p := range group {
			p.done <- coalesceResult{config: configs[i], probs: probs[i]}
		}
		batch = rest
	}
}
