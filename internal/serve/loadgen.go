package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// LoadGen is a deterministic, seeded load generator. It fixes the entire
// request schedule up front — arrival times, feature vectors, admission
// classes — as a pure function of the seed, then replays it against a
// running server, so a loadgen run doubles as a reproducible benchmark:
// the same seed always issues the same requests with the same class mix
// (only the measured timings differ between runs).
//
// Two replay modes. The default closed loop ("closed") keeps Concurrency
// workers busy back-to-back — throughput is bounded by the server, so an
// overloaded server just slows the generator down. The open loop ("open")
// dispatches each request at its scheduled arrival time regardless of
// whether earlier ones finished — the offered load stays at RPS even when
// the server cannot keep up, which is what exposes queueing, saturation
// and admission shedding the way production traffic does.
type LoadGen struct {
	// Requests is the total number of predict calls to issue.
	Requests int
	// Concurrency is the number of closed-loop worker goroutines. Keep it
	// at or below the server's MaxInflight for a zero-429 run. Open-loop
	// runs ignore it (concurrency there is however many arrivals overlap).
	Concurrency int
	// Seed drives the request schedule.
	Seed uint64
	// Pool is the feature vectors sampled from. Smaller pools mean more
	// repeats and a hotter decision cache.
	Pool [][]float64
	// Batch, when >= 2, groups the schedule into batch requests of this
	// size (the final one may be smaller): each POST carries Batch feature
	// vectors and streams back one result document per vector. All report
	// counts stay per-vector, so batched and unbatched runs compare
	// directly. Batched runs are closed-loop and all-interactive (one
	// class per POST).
	Batch int

	// Mode selects the replay discipline: "closed" (default) or "open".
	Mode string
	// RPS is the open-loop target arrival rate (required when Mode is
	// "open", ignored otherwise).
	RPS float64
	// Arrivals selects the open-loop inter-arrival law: "poisson"
	// (default; exponential gaps) or "pareto" (heavy-tailed bursts,
	// alpha = 1.5 with the same mean gap).
	Arrivals string
	// ZipfS, when > 0, skews pool selection with a Zipf(s) popularity law
	// (lower indices are hotter) instead of uniform draws — phases repeat
	// in practice, and a skewed pool exercises the decision cache the way
	// production traffic would.
	ZipfS float64
	// Mix is the per-class share of the schedule; a zero Mix means
	// DefaultClassMix. Shares are normalised, so they need not sum to 1.
	Mix ClassMix
}

// ClassMix is the per-class share of generated requests, indexed by Class.
type ClassMix [NumClasses]float64

// DefaultClassMix is the fleet-shaped default: mostly interactive, a
// batch share, a background trickle.
func DefaultClassMix() ClassMix {
	var m ClassMix
	m[ClassInteractive] = 0.7
	m[ClassBatch] = 0.2
	m[ClassBackground] = 0.1
	return m
}

// Arrival is one scheduled request: when it is dispatched (offset from
// the run start; always 0 in closed mode), which pool vector it carries,
// and its admission class.
type Arrival struct {
	At    time.Duration
	Index int
	Class Class
}

// loadgenStream is the PCG stream constant for the request schedule.
const loadgenStream = 0x10ad6e4

// Schedule fixes the run's request schedule: a pure function of the
// LoadGen configuration, independent of the server and of wall-clock
// time. Run replays exactly this schedule; tests and reports can audit it.
func (lg LoadGen) Schedule() ([]Arrival, error) {
	if len(lg.Pool) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs a non-empty feature pool")
	}
	n := lg.Requests
	if n <= 0 {
		n = 1000
	}
	open := false
	switch lg.Mode {
	case "", "closed":
	case "open":
		open = true
		if lg.RPS <= 0 {
			return nil, fmt.Errorf("serve: open-loop loadgen needs -rps > 0")
		}
		if lg.Batch > 1 {
			return nil, fmt.Errorf("serve: open-loop loadgen does not support batch payloads")
		}
	default:
		return nil, fmt.Errorf("serve: unknown loadgen mode %q (want closed or open)", lg.Mode)
	}
	pareto := false
	switch lg.Arrivals {
	case "", "poisson":
	case "pareto":
		pareto = true
	default:
		return nil, fmt.Errorf("serve: unknown arrival law %q (want poisson or pareto)", lg.Arrivals)
	}

	// Zipf popularity over pool indices via the inverse CDF: cumulative
	// weights once, a binary search per draw. ZipfS <= 0 keeps the legacy
	// uniform draws (and their exact rng consumption).
	var cum []float64
	if lg.ZipfS > 0 {
		cum = make([]float64, len(lg.Pool))
		total := 0.0
		for i := range cum {
			total += math.Pow(float64(i+1), -lg.ZipfS)
			cum[i] = total
		}
	}

	mix := lg.Mix
	if mix == (ClassMix{}) {
		mix = DefaultClassMix()
	}
	var mixCum [NumClasses]float64
	mixTotal := 0.0
	for c := Class(0); c < NumClasses; c++ {
		if mix[c] < 0 {
			return nil, fmt.Errorf("serve: negative class mix share for %s", c)
		}
		mixTotal += mix[c]
		mixCum[c] = mixTotal
	}
	if mixTotal <= 0 {
		return nil, fmt.Errorf("serve: class mix has no positive share")
	}

	// Per arrival the rng is consumed in a fixed order — gap (open mode
	// only), pool index, class (unbatched only) — so every configuration
	// knob changes the schedule deterministically.
	rng := rand.New(rand.NewPCG(lg.Seed, loadgenStream))
	mean := 0.0
	if open {
		mean = 1 / lg.RPS
	}
	const paretoAlpha = 1.5
	arrivals := make([]Arrival, n)
	at := 0.0
	for i := range arrivals {
		if open {
			var gap float64
			if pareto {
				// Pareto(alpha, xm) with xm chosen so the mean gap is
				// 1/RPS; one gap is capped at 100 means so a single
				// astronomical draw cannot stall the whole run.
				xm := mean * (paretoAlpha - 1) / paretoAlpha
				gap = xm / math.Pow(1-rng.Float64(), 1/paretoAlpha)
				gap = math.Min(gap, 100*mean)
			} else {
				gap = rng.ExpFloat64() * mean
			}
			at += gap
			arrivals[i].At = time.Duration(at * float64(time.Second))
		}
		if cum != nil {
			u := rng.Float64() * cum[len(cum)-1]
			arrivals[i].Index = sort.SearchFloat64s(cum, u)
		} else {
			arrivals[i].Index = rng.IntN(len(lg.Pool))
		}
		if lg.Batch > 1 {
			arrivals[i].Class = ClassInteractive
		} else {
			u := rng.Float64() * mixTotal
			c := ClassInteractive
			for k := Class(0); k < NumClasses; k++ {
				if u < mixCum[k] {
					c = k
					break
				}
			}
			arrivals[i].Class = c
		}
	}
	return arrivals, nil
}

// LoadReport aggregates one load-generation run. The count fields are a
// pure function of (Seed, Requests, Pool, Mix) and the server's limits;
// the latency fields are wall-clock measurements.
type LoadReport struct {
	Requests  int // predictions issued (batch items count individually)
	Batches   int // HTTP calls that carried a batch payload (0 unbatched)
	OK        int // 200
	Shed      int // 429 by admission control (X-Adaptd-Shed present)
	Rejected  int // 429 by the concurrency limiter
	ClientErr int // other 4xx
	ServerErr int // 5xx
	Transport int // transport-level failures (and truncated batch streams)
	CacheHits int // responses answered from the decision cache

	Elapsed        time.Duration
	P50, P95, Max  time.Duration
	RequestsPerSec float64 // predictions per second

	// Classes breaks the run down per admission class, most important
	// class first; empty rows are omitted.
	Classes []ClassReport
}

// ClassReport is one admission class's slice of the run.
type ClassReport struct {
	Class     string
	Requests  int
	OK        int
	Shed      int
	Rejected  int
	Errors    int // client + server + transport
	CacheHits int
	P50, P99  time.Duration
}

// String renders the report; the first line is deterministic for a seeded
// run against an unsaturated server.
func (r LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b,
		"requests=%d ok=%d rejected=%d clientErr=%d serverErr=%d transportErr=%d batches=%d shed=%d\n"+
			"throughput=%.0f pred/s  p50=%v p95=%v max=%v  cacheHits=%d",
		r.Requests, r.OK, r.Rejected, r.ClientErr, r.ServerErr, r.Transport, r.Batches, r.Shed,
		r.RequestsPerSec, r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.Max.Round(time.Microsecond), r.CacheHits)
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "\nclass %-12s requests=%d ok=%d shed=%d rejected=%d errors=%d cacheHits=%d p50=%v p99=%v",
			c.Class, c.Requests, c.OK, c.Shed, c.Rejected, c.Errors, c.CacheHits,
			c.P50.Round(time.Microsecond), c.P99.Round(time.Microsecond))
	}
	return b.String()
}

// SyntheticFeatures builds n deterministic pseudo-feature vectors of the
// given dimension: values in [0, 1) with the trailing bias fixed at 1,
// matching the shape of real counter features. Used when a loadgen run has
// no profiled phases at hand.
func SyntheticFeatures(dim, n int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 0xfea70e55))
	pool := make([][]float64, n)
	for i := range pool {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		v[dim-1] = 1
		pool[i] = v
	}
	return pool
}

// loadgenJob is one HTTP call of the replay.
type loadgenJob struct {
	body  []byte
	items int
	batch bool
	class Class
	at    time.Duration
}

// loadgenTally accumulates outcomes under one mutex (the generator is not
// the thing under measurement).
type loadgenTally struct {
	mu        sync.Mutex
	rep       LoadReport
	latencies []float64
	perClass  [NumClasses]struct {
		r         ClassReport
		latencies []float64
	}
}

// Run replays the schedule against baseURL (e.g. "http://127.0.0.1:8080")
// using client (http.DefaultClient if nil) and aggregates the outcome.
func (lg LoadGen) Run(baseURL string, client *http.Client) (LoadReport, error) {
	schedule, err := lg.Schedule()
	if err != nil {
		return LoadReport{}, err
	}
	if client == nil {
		client = http.DefaultClient
		if lg.Mode == "open" {
			// The open loop runs as many connections as arrivals overlap;
			// the default transport keeps only 2 idle conns per host and
			// would churn sockets under burst.
			tr := http.DefaultTransport.(*http.Transport).Clone()
			tr.MaxIdleConnsPerHost = 256
			client = &http.Client{Transport: tr}
		}
	}

	// Pre-encode every request body up front, so the request stream is a
	// pure function of the configuration regardless of interleaving.
	var jobsList []loadgenJob
	if lg.Batch > 1 {
		for start := 0; start < len(schedule); start += lg.Batch {
			end := min(start+lg.Batch, len(schedule))
			b := make([][]float64, 0, end-start)
			for _, a := range schedule[start:end] {
				b = append(b, lg.Pool[a.Index])
			}
			body, err := json.Marshal(PredictRequest{Batch: b})
			if err != nil {
				return LoadReport{}, err
			}
			jobsList = append(jobsList, loadgenJob{body: body, items: end - start, batch: true, class: ClassInteractive})
		}
	} else {
		bodies := make([][]byte, len(lg.Pool))
		for i, f := range lg.Pool {
			b, err := json.Marshal(PredictRequest{Features: f})
			if err != nil {
				return LoadReport{}, err
			}
			bodies[i] = b
		}
		for _, a := range schedule {
			jobsList = append(jobsList, loadgenJob{body: bodies[a.Index], items: 1, class: a.Class, at: a.At})
		}
	}

	tally := &loadgenTally{}
	url := baseURL + "/v1/predict"
	var wg sync.WaitGroup
	start := time.Now()
	if lg.Mode == "open" {
		// Open loop: fire each request at its scheduled arrival offset, on
		// its own goroutine, whether or not earlier ones have finished.
		for _, j := range jobsList {
			if wait := j.at - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
			wg.Add(1)
			go func(j loadgenJob) {
				defer wg.Done()
				lg.do(client, url, j, tally)
			}(j)
		}
	} else {
		conc := lg.Concurrency
		if conc <= 0 {
			conc = 4
		}
		jobs := make(chan loadgenJob)
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					lg.do(client, url, j, tally)
				}
			}()
		}
		for _, j := range jobsList {
			jobs <- j
		}
		close(jobs)
	}
	wg.Wait()

	rep := tally.rep
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	rep.P50 = time.Duration(stats.Quantile(tally.latencies, 0.50))
	rep.P95 = time.Duration(stats.Quantile(tally.latencies, 0.95))
	rep.Max = time.Duration(stats.Quantile(tally.latencies, 1))
	for c := NumClasses; c > 0; {
		c--
		pc := &tally.perClass[c]
		if pc.r.Requests == 0 {
			continue
		}
		pc.r.Class = c.String()
		pc.r.P50 = time.Duration(stats.Quantile(pc.latencies, 0.50))
		pc.r.P99 = time.Duration(stats.Quantile(pc.latencies, 0.99))
		rep.Classes = append(rep.Classes, pc.r)
	}
	return rep, nil
}

// do issues one HTTP call and records its outcome.
func (lg LoadGen) do(client *http.Client, url string, j loadgenJob, tally *loadgenTally) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(j.body))
	if err == nil {
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Class", j.class.String())
	}
	t0 := time.Now()
	var resp *http.Response
	if err == nil {
		resp, err = client.Do(req)
	}
	lat := time.Since(t0)

	tally.mu.Lock()
	defer tally.mu.Unlock()
	rep := &tally.rep
	pc := &tally.perClass[j.class]
	rep.Requests += j.items
	pc.r.Requests += j.items
	if j.batch {
		rep.Batches++
	}
	tally.latencies = append(tally.latencies, float64(lat))
	pc.latencies = append(pc.latencies, float64(lat))
	if err != nil {
		rep.Transport += j.items
		pc.r.Errors += j.items
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		// Single responses are one JSON document; batch responses stream
		// one per item. The same decode loop reads both. Only the cached
		// flag is inspected, so the decode target skips the
		// config/probability maps and the client stays cheap relative to
		// the server under measurement.
		dec := json.NewDecoder(resp.Body)
		n := 0
		for n < j.items {
			var pr struct {
				Cached bool `json:"cached"`
			}
			if dec.Decode(&pr) != nil {
				break
			}
			n++
			if pr.Cached {
				rep.CacheHits++
				pc.r.CacheHits++
			}
		}
		rep.OK += n
		pc.r.OK += n
		rep.Transport += j.items - n // truncated stream
		pc.r.Errors += j.items - n
	case resp.StatusCode == http.StatusTooManyRequests:
		if resp.Header.Get(shedHeader) != "" {
			rep.Shed += j.items
			pc.r.Shed += j.items
		} else {
			rep.Rejected += j.items
			pc.r.Rejected += j.items
		}
	case resp.StatusCode >= 500:
		rep.ServerErr += j.items
		pc.r.Errors += j.items
	default:
		rep.ClientErr += j.items
		pc.r.Errors += j.items
	}
}
