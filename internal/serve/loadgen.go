package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"repro/internal/stats"
)

// LoadGen is a deterministic, seeded load generator: it replays a fixed
// request schedule (feature vectors drawn from a pool with a seeded PCG)
// against a running server, so a loadgen run doubles as a reproducible
// throughput/latency benchmark — the same seed always issues the same
// requests in the same per-worker order.
type LoadGen struct {
	// Requests is the total number of predict calls to issue.
	Requests int
	// Concurrency is the number of worker goroutines. Keep it at or below
	// the server's MaxInflight for a zero-429 run.
	Concurrency int
	// Seed drives the request schedule.
	Seed uint64
	// Pool is the feature vectors sampled from. Smaller pools mean more
	// repeats and a hotter decision cache.
	Pool [][]float64
	// Batch, when >= 2, groups the schedule into batch requests of this
	// size (the final one may be smaller): each POST carries Batch feature
	// vectors and streams back one result document per vector. All report
	// counts stay per-vector, so batched and unbatched runs compare
	// directly.
	Batch int
}

// LoadReport aggregates one load-generation run. The count fields are a
// pure function of (Seed, Requests, Pool) and the server's limits; the
// latency fields are wall-clock measurements.
type LoadReport struct {
	Requests  int // predictions issued (batch items count individually)
	Batches   int // HTTP calls that carried a batch payload (0 unbatched)
	OK        int // 200
	Rejected  int // 429 (saturation backpressure)
	ClientErr int // other 4xx
	ServerErr int // 5xx
	Transport int // transport-level failures (and truncated batch streams)
	CacheHits int // responses answered from the decision cache

	Elapsed        time.Duration
	P50, P95, Max  time.Duration
	RequestsPerSec float64 // predictions per second
}

// String renders the report; the first line is deterministic for a seeded
// run against an unsaturated server.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"requests=%d ok=%d rejected=%d clientErr=%d serverErr=%d transportErr=%d batches=%d\n"+
			"throughput=%.0f pred/s  p50=%v p95=%v max=%v  cacheHits=%d",
		r.Requests, r.OK, r.Rejected, r.ClientErr, r.ServerErr, r.Transport, r.Batches,
		r.RequestsPerSec, r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.Max.Round(time.Microsecond), r.CacheHits)
}

// SyntheticFeatures builds n deterministic pseudo-feature vectors of the
// given dimension: values in [0, 1) with the trailing bias fixed at 1,
// matching the shape of real counter features. Used when a loadgen run has
// no profiled phases at hand.
func SyntheticFeatures(dim, n int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 0xfea70e55))
	pool := make([][]float64, n)
	for i := range pool {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		v[dim-1] = 1
		pool[i] = v
	}
	return pool
}

// Run replays the schedule against baseURL (e.g. "http://127.0.0.1:8080")
// using client (http.DefaultClient if nil) and aggregates the outcome.
func (lg LoadGen) Run(baseURL string, client *http.Client) (LoadReport, error) {
	if len(lg.Pool) == 0 {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs a non-empty feature pool")
	}
	if lg.Requests <= 0 {
		lg.Requests = 1000
	}
	if lg.Concurrency <= 0 {
		lg.Concurrency = 4
	}
	if client == nil {
		client = http.DefaultClient
	}

	// Pre-encode every request body and fix the whole schedule up front,
	// so the request stream is a pure function of (Seed, Requests, Pool,
	// Batch) regardless of worker interleaving.
	rng := rand.New(rand.NewPCG(lg.Seed, 0x10ad6e4))
	schedule := make([]int, lg.Requests)
	for i := range schedule {
		schedule[i] = rng.IntN(len(lg.Pool))
	}
	type job struct {
		body  []byte
		items int
		batch bool
	}
	var jobsList []job
	if lg.Batch > 1 {
		for start := 0; start < len(schedule); start += lg.Batch {
			end := min(start+lg.Batch, len(schedule))
			b := make([][]float64, 0, end-start)
			for _, idx := range schedule[start:end] {
				b = append(b, lg.Pool[idx])
			}
			body, err := json.Marshal(PredictRequest{Batch: b})
			if err != nil {
				return LoadReport{}, err
			}
			jobsList = append(jobsList, job{body: body, items: end - start, batch: true})
		}
	} else {
		bodies := make([][]byte, len(lg.Pool))
		for i, f := range lg.Pool {
			b, err := json.Marshal(PredictRequest{Features: f})
			if err != nil {
				return LoadReport{}, err
			}
			bodies[i] = b
		}
		for _, idx := range schedule {
			jobsList = append(jobsList, job{body: bodies[idx], items: 1})
		}
	}

	var (
		mu        sync.Mutex
		rep       LoadReport
		latencies []float64
	)
	url := baseURL + "/v1/predict"
	jobs := make(chan job)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < lg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(j.body))
				lat := time.Since(t0)
				mu.Lock()
				rep.Requests += j.items
				if j.batch {
					rep.Batches++
				}
				latencies = append(latencies, float64(lat))
				if err != nil {
					rep.Transport += j.items
					mu.Unlock()
					continue
				}
				switch {
				case resp.StatusCode == http.StatusOK:
					// Single responses are one JSON document; batch
					// responses stream one per item. The same decode loop
					// reads both. Only the cached flag is inspected, so the
					// decode target skips the config/probability maps and
					// the client stays cheap relative to the server under
					// measurement.
					dec := json.NewDecoder(resp.Body)
					n := 0
					for n < j.items {
						var pr struct {
							Cached bool `json:"cached"`
						}
						if dec.Decode(&pr) != nil {
							break
						}
						n++
						if pr.Cached {
							rep.CacheHits++
						}
					}
					rep.OK += n
					rep.Transport += j.items - n // truncated stream
				case resp.StatusCode == http.StatusTooManyRequests:
					rep.Rejected += j.items
				case resp.StatusCode >= 500:
					rep.ServerErr += j.items
				default:
					rep.ClientErr += j.items
				}
				mu.Unlock()
				resp.Body.Close()
			}
		}()
	}
	for _, j := range jobsList {
		jobs <- j
	}
	close(jobs)
	wg.Wait()

	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	rep.P50 = time.Duration(stats.Quantile(latencies, 0.50))
	rep.P95 = time.Duration(stats.Quantile(latencies, 0.95))
	rep.Max = time.Duration(stats.Quantile(latencies, 1))
	return rep, nil
}
