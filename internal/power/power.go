// Package power models the timing, energy and area consequences of a
// microarchitectural configuration, standing in for the Wattch and Cacti
// models the paper uses. The model is analytic: access energies grow
// sublinearly with structure size and superlinearly with port count,
// leakage grows linearly with stored bits, and access latencies grow
// logarithmically with array size — the characteristic shapes Cacti
// produces — with constants calibrated so the paper's baseline
// configuration lands at a plausible clock (~2.8 GHz) and power budget
// (tens of watts).
//
// All dynamic energies are in picojoules per event; leakage is in watts.
package power

import (
	"fmt"
	"math"

	"repro/internal/arch"
)

// Structure identifies a power-accounted processor structure. The CPU
// simulator attributes every picojoule to one of these, enabling the
// per-structure breakdowns of Figures 5 and 9.
type Structure int

// Power-accounted structures.
const (
	StructROB Structure = iota
	StructIQ
	StructLSQ
	StructRF
	StructBpred
	StructICache
	StructDCache
	StructL2
	StructFU
	StructRename
	StructClock
	NumStructures
)

var structureNames = [NumStructures]string{
	"ROB", "IQ", "LSQ", "RF", "Bpred", "ICache", "DCache", "L2", "FU", "Rename", "Clock",
}

// String returns the structure's display name.
func (s Structure) String() string {
	if s < 0 || s >= NumStructures {
		return fmt.Sprintf("Structure(%d)", int(s))
	}
	return structureNames[s]
}

// Process constants for the modelled technology node (90nm-class, matching
// the Wattch/Cacti vintage the paper used).
const (
	fo4Picoseconds = 30.0  // delay of one fanout-of-4 inverter
	pipelineFO4    = 240.0 // total logic depth of the scalar pipeline in FO4
	memLatencyNs   = 60.0  // main memory access latency
	minStages      = 5     // floor on pipeline stages at the shallowest design
)

// Model holds every derived timing and energy quantity for one
// configuration. Construct it with New; all fields are read-only
// afterwards.
type Model struct {
	Cfg arch.Config

	// Timing.
	FrequencyHz      float64 // clock frequency implied by FO4 per stage
	PeriodPs         float64 // clock period in picoseconds
	Stages           int     // pipeline stages implied by depth
	FrontEndStages   int     // fetch-to-dispatch stages (refill after flush)
	MispredictCycles int     // branch misprediction resolution penalty
	L1ILatency       int     // I-cache hit latency, cycles
	L1DLatency       int     // D-cache hit latency, cycles
	L2Latency        int     // L2 hit latency, cycles
	MemLatency       int     // main memory latency, cycles

	// Per-event dynamic energies, picojoules.
	ROBAccess    float64 // one ROB read or write
	IQInsert     float64 // dispatch into the issue queue
	IQWakeup     float64 // one tag broadcast across the issue queue
	IQIssue      float64 // selection + readout of one entry
	LSQAccess    float64 // one LSQ insert/search/remove
	RFRead       float64 // one register file read
	RFWrite      float64 // one register file write
	BpredLookup  float64 // one gshare lookup/update
	BTBLookup    float64 // one BTB lookup/update
	ICacheAccess float64 // one I-cache access
	DCacheAccess float64 // one D-cache access
	L2Access     float64 // one L2 access
	MemAccess    float64 // one DRAM access (controller + bus)
	RenameOp     float64 // one rename-table read/write pair
	IntOp        float64 // one integer ALU operation
	FpOp         float64 // one FP operation
	MulOp        float64 // one multiply/divide
	ClockPerCyc  float64 // clock tree + global wires, per cycle
	IdlePerCyc   float64 // conditional-clocking floor for idle structures

	// Leakage, watts, per structure and total.
	Leakage      [NumStructures]float64
	TotalLeakage float64
}

// New derives the full timing/energy model for cfg.
func New(cfg arch.Config) *Model {
	m := &Model{Cfg: cfg}

	fo4 := float64(cfg[arch.DepthFO4])
	m.PeriodPs = fo4 * fo4Picoseconds
	m.FrequencyHz = 1e12 / m.PeriodPs
	m.Stages = int(math.Round(pipelineFO4 / fo4))
	if m.Stages < minStages {
		m.Stages = minStages
	}
	m.FrontEndStages = maxInt(2, int(math.Round(float64(m.Stages)*0.45)))
	// Resolution = refill the front end + drain to the branch unit.
	m.MispredictCycles = m.FrontEndStages + 3

	// Array access times (ps), Cacti-shaped: constant + log term.
	icPs := 260 + 95*math.Log2(float64(cfg[arch.ICacheKB]))
	dcPs := 260 + 95*math.Log2(float64(cfg[arch.DCacheKB]))
	l2Ps := 2200 + 650*math.Log2(float64(cfg[arch.L2CacheKB])/256)
	m.L1ILatency = cyc(icPs, m.PeriodPs)
	m.L1DLatency = cyc(dcPs, m.PeriodPs)
	m.L2Latency = cyc(l2Ps, m.PeriodPs)
	m.MemLatency = cyc(memLatencyNs*1000, m.PeriodPs)

	w := float64(cfg[arch.Width])
	rob := float64(cfg[arch.ROBSize])
	iq := float64(cfg[arch.IQSize])
	lsq := float64(cfg[arch.LSQSize])
	rf := float64(cfg[arch.RFSize])
	rd := float64(cfg[arch.RFReadPorts])
	wr := float64(cfg[arch.RFWritePorts])
	gsh := float64(cfg[arch.GshareSize])
	btb := float64(cfg[arch.BTBSize])
	icKB := float64(cfg[arch.ICacheKB])
	dcKB := float64(cfg[arch.DCacheKB])
	l2KB := float64(cfg[arch.L2CacheKB])

	// Dynamic energies. RAM-like structures: e0 * size^a * portFactor.
	// Port factor grows superlinearly: wordlines lengthen and bitline
	// capacitance multiplies with each added port.
	dispatchPorts := w
	m.ROBAccess = 0.9 * math.Pow(rob, 0.55) * portFactor(2*dispatchPorts)
	m.IQInsert = 1.4 * math.Pow(iq, 0.6) * portFactor(dispatchPorts)
	m.IQWakeup = 0.12 * iq // CAM broadcast touches every entry
	m.IQIssue = 1.1 * math.Pow(iq, 0.6) * portFactor(w)
	m.LSQAccess = 1.6*math.Pow(lsq, 0.6) + 0.10*lsq // RAM + address CAM search
	m.RFRead = 0.55 * math.Pow(rf, 0.5) * portFactor(rd)
	m.RFWrite = 0.75 * math.Pow(rf, 0.5) * portFactor(wr)
	m.BpredLookup = 1.3 * math.Pow(gsh/1024, 0.55)
	m.BTBLookup = 2.0 * math.Pow(btb/1024, 0.55)
	m.ICacheAccess = 24 * math.Pow(icKB, 0.58)
	m.DCacheAccess = 24*math.Pow(dcKB, 0.58) + 6 // +write buffers
	m.L2Access = 95 * math.Pow(l2KB/256, 0.58)
	m.MemAccess = 4200 // controller, bus, DRAM activate amortised
	m.RenameOp = 1.8 * math.Pow(rf, 0.35) * portFactor(dispatchPorts)
	m.IntOp = 28
	m.FpOp = 76
	m.MulOp = 115

	// Clock tree and global interconnect scale with machine extent:
	// wider and deeper machines drive more latches and wire.
	m.ClockPerCyc = 130 + 24*w + 16*float64(m.Stages) + 5*w*float64(m.Stages)/4
	// Conditional clocking (Wattch cc3): gated structures still burn ~12%
	// of their nominal energy when idle; we charge a flat floor per cycle
	// proportional to total capacity.
	cap := rob + iq + lsq + 2*rf + (icKB+dcKB)*4 + l2KB/4
	m.IdlePerCyc = 0.012 * cap

	// Leakage: proportional to stored bits (and ports, for the RF).
	const (
		leakPerEntryW = 9e-6  // ROB/IQ/LSQ entry
		leakPerRegW   = 11e-6 // per register per port-pair
		leakPerKBW    = 2.4e-3
		leakPerBpKW   = 0.9e-3
	)
	m.Leakage[StructROB] = rob * leakPerEntryW * 4
	m.Leakage[StructIQ] = iq * leakPerEntryW * 6
	m.Leakage[StructLSQ] = lsq * leakPerEntryW * 5
	m.Leakage[StructRF] = 2 * rf * leakPerRegW * (1 + 0.2*(rd+wr))
	m.Leakage[StructBpred] = (gsh/1024 + btb/1024) * leakPerBpKW
	m.Leakage[StructICache] = icKB * leakPerKBW
	m.Leakage[StructDCache] = dcKB * leakPerKBW
	m.Leakage[StructL2] = l2KB * leakPerKBW * 0.55 // slower, lower-leak cells
	m.Leakage[StructFU] = 0.11 * w
	m.Leakage[StructRename] = 0.05 * w
	m.Leakage[StructClock] = 0.3 + 0.05*w
	for _, l := range m.Leakage {
		m.TotalLeakage += l
	}
	return m
}

// portFactor models the superlinear growth of array energy with ports.
func portFactor(ports float64) float64 {
	if ports < 1 {
		ports = 1
	}
	return math.Pow(ports, 0.85)
}

func cyc(ps, periodPs float64) int {
	n := int(math.Ceil(ps / periodPs))
	if n < 1 {
		n = 1
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Account accumulates per-structure dynamic energy during a simulation.
// The zero value is ready to use.
type Account struct {
	DynamicPJ [NumStructures]float64
}

// Add charges pj picojoules of dynamic energy to structure s.
func (a *Account) Add(s Structure, pj float64) { a.DynamicPJ[s] += pj }

// TotalDynamicPJ returns the total dynamic energy charged so far.
func (a *Account) TotalDynamicPJ() float64 {
	t := 0.0
	for _, v := range a.DynamicPJ {
		t += v
	}
	return t
}

// Summary converts an account plus elapsed cycles into joules, adding
// leakage for the elapsed wall-clock time.
type Summary struct {
	Cycles        uint64
	DynamicJ      float64
	LeakageJ      float64
	TotalJ        float64
	PerStructureJ [NumStructures]float64 // dynamic + leakage per structure
	AvgPowerW     float64
}

// Summarize produces the energy summary for a run of the given cycle count
// under model m.
func (m *Model) Summarize(acc *Account, cycles uint64) Summary {
	s := Summary{Cycles: cycles}
	seconds := float64(cycles) * m.PeriodPs * 1e-12
	for st := Structure(0); st < NumStructures; st++ {
		dyn := acc.DynamicPJ[st] * 1e-12
		leak := m.Leakage[st] * seconds
		s.PerStructureJ[st] = dyn + leak
		s.DynamicJ += dyn
		s.LeakageJ += leak
	}
	s.TotalJ = s.DynamicJ + s.LeakageJ
	if seconds > 0 {
		s.AvgPowerW = s.TotalJ / seconds
	}
	return s
}
