package power

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestBaselineTimingSane(t *testing.T) {
	m := New(arch.Baseline())
	if m.FrequencyHz < 2.5e9 || m.FrequencyHz > 3.1e9 {
		t.Errorf("baseline frequency = %.2f GHz, want ~2.8", m.FrequencyHz/1e9)
	}
	if m.Stages != 20 {
		t.Errorf("baseline stages = %d, want 20 (240 FO4 / 12 FO4-per-stage)", m.Stages)
	}
	if m.MispredictCycles < 8 || m.MispredictCycles > 20 {
		t.Errorf("baseline mispredict penalty = %d cycles, want 8..20", m.MispredictCycles)
	}
	if m.L1DLatency < 1 || m.L1DLatency > 4 {
		t.Errorf("baseline L1D latency = %d, want 1..4", m.L1DLatency)
	}
	if m.L2Latency <= m.L1DLatency {
		t.Errorf("L2 latency %d not greater than L1D %d", m.L2Latency, m.L1DLatency)
	}
	if m.MemLatency <= m.L2Latency {
		t.Errorf("memory latency %d not greater than L2 %d", m.MemLatency, m.L2Latency)
	}
}

func TestDepthControlsFrequencyAndPenalty(t *testing.T) {
	base := arch.Baseline()
	deep := New(base.With(arch.DepthFO4, 9))     // deepest pipeline, fastest clock
	shallow := New(base.With(arch.DepthFO4, 36)) // shallowest, slowest
	if deep.FrequencyHz <= shallow.FrequencyHz {
		t.Errorf("deep pipeline frequency %.2e not above shallow %.2e", deep.FrequencyHz, shallow.FrequencyHz)
	}
	if deep.Stages <= shallow.Stages {
		t.Errorf("deep stages %d not above shallow %d", deep.Stages, shallow.Stages)
	}
	if deep.MispredictCycles <= shallow.MispredictCycles {
		t.Errorf("deep mispredict %d not above shallow %d", deep.MispredictCycles, shallow.MispredictCycles)
	}
}

func TestEnergyMonotoneInSize(t *testing.T) {
	base := arch.Baseline()
	cases := []struct {
		p      arch.Param
		lo, hi int
		field  func(*Model) float64
	}{
		{arch.ROBSize, 32, 160, func(m *Model) float64 { return m.ROBAccess }},
		{arch.IQSize, 8, 80, func(m *Model) float64 { return m.IQIssue }},
		{arch.LSQSize, 8, 80, func(m *Model) float64 { return m.LSQAccess }},
		{arch.RFSize, 40, 160, func(m *Model) float64 { return m.RFRead }},
		{arch.RFReadPorts, 2, 16, func(m *Model) float64 { return m.RFRead }},
		{arch.RFWritePorts, 1, 8, func(m *Model) float64 { return m.RFWrite }},
		{arch.GshareSize, 1024, 32768, func(m *Model) float64 { return m.BpredLookup }},
		{arch.ICacheKB, 8, 128, func(m *Model) float64 { return m.ICacheAccess }},
		{arch.DCacheKB, 8, 128, func(m *Model) float64 { return m.DCacheAccess }},
		{arch.L2CacheKB, 256, 4096, func(m *Model) float64 { return m.L2Access }},
	}
	for _, c := range cases {
		small := New(base.With(c.p, c.lo))
		big := New(base.With(c.p, c.hi))
		if !(c.field(big) > c.field(small)) {
			t.Errorf("%s: energy not monotone: small=%.3f big=%.3f", c.p, c.field(small), c.field(big))
		}
	}
}

func TestLeakageMonotoneInTotalCapacity(t *testing.T) {
	min := New(arch.MinConfig())
	max := New(arch.Profiling())
	if !(max.TotalLeakage > min.TotalLeakage) {
		t.Errorf("max-config leakage %.3f W not above min-config %.3f W", max.TotalLeakage, min.TotalLeakage)
	}
}

func TestBaselinePowerPlausible(t *testing.T) {
	// Simulate a fake run: width*0.7 useful ops per cycle for 1M cycles on
	// the baseline, with typical per-instruction structure activity, and
	// check the implied average power is in the tens of watts —
	// Wattch-class for a 90nm high-performance core.
	m := New(arch.Baseline())
	var acc Account
	const cycles = 1_000_000
	ipc := 0.7 * float64(m.Cfg[arch.Width])
	insns := ipc * cycles
	acc.Add(StructClock, (m.ClockPerCyc+m.IdlePerCyc)*cycles)
	acc.Add(StructROB, 2*m.ROBAccess*insns)
	acc.Add(StructIQ, (m.IQInsert+m.IQIssue+2*m.IQWakeup)*insns)
	acc.Add(StructLSQ, m.LSQAccess*insns*0.35)
	acc.Add(StructRF, (1.6*m.RFRead+0.8*m.RFWrite)*insns)
	acc.Add(StructRename, m.RenameOp*insns)
	acc.Add(StructBpred, (m.BpredLookup+m.BTBLookup)*insns*0.2)
	acc.Add(StructICache, m.ICacheAccess*cycles)
	acc.Add(StructDCache, m.DCacheAccess*insns*0.3)
	acc.Add(StructL2, m.L2Access*insns*0.01)
	acc.Add(StructFU, m.IntOp*insns)
	sum := m.Summarize(&acc, cycles)
	if sum.AvgPowerW < 8 || sum.AvgPowerW > 150 {
		t.Errorf("baseline synthetic power = %.1f W, want 8..150", sum.AvgPowerW)
	}
	if sum.TotalJ <= 0 || sum.DynamicJ <= 0 || sum.LeakageJ <= 0 {
		t.Errorf("energy components must be positive: %+v", sum)
	}
}

func TestSummarizeAdds(t *testing.T) {
	m := New(arch.Baseline())
	var acc Account
	acc.Add(StructROB, 1e12) // 1 J dynamic
	sum := m.Summarize(&acc, 1000)
	if sum.DynamicJ < 0.999 || sum.DynamicJ > 1.001 {
		t.Errorf("dynamic J = %v, want ~1", sum.DynamicJ)
	}
	wantLeak := m.TotalLeakage * 1000 * m.PeriodPs * 1e-12
	if diff := sum.LeakageJ - wantLeak; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("leakage J = %v, want %v", sum.LeakageJ, wantLeak)
	}
	if got := sum.TotalJ; got != sum.DynamicJ+sum.LeakageJ {
		t.Errorf("total %v != dynamic %v + leakage %v", got, sum.DynamicJ, sum.LeakageJ)
	}
}

func TestZeroCycleSummary(t *testing.T) {
	m := New(arch.Baseline())
	var acc Account
	sum := m.Summarize(&acc, 0)
	if sum.AvgPowerW != 0 || sum.TotalJ != 0 {
		t.Errorf("zero-cycle summary should be zero: %+v", sum)
	}
}

func TestStructureString(t *testing.T) {
	if StructROB.String() != "ROB" || StructClock.String() != "Clock" {
		t.Errorf("unexpected structure names")
	}
	if got := Structure(-1).String(); got != "Structure(-1)" {
		t.Errorf("out-of-range structure string = %q", got)
	}
}

// Property: every energy field and latency is strictly positive for every
// valid configuration.
func TestQuickAllQuantitiesPositive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		m := New(arch.Random(rng))
		ok := m.FrequencyHz > 0 && m.Stages >= minStages &&
			m.MispredictCycles > 0 &&
			m.L1ILatency >= 1 && m.L1DLatency >= 1 &&
			m.L2Latency >= 1 && m.MemLatency > m.L2Latency &&
			m.ROBAccess > 0 && m.IQInsert > 0 && m.IQWakeup > 0 &&
			m.IQIssue > 0 && m.LSQAccess > 0 && m.RFRead > 0 &&
			m.RFWrite > 0 && m.BpredLookup > 0 && m.BTBLookup > 0 &&
			m.ICacheAccess > 0 && m.DCacheAccess > 0 && m.L2Access > 0 &&
			m.MemAccess > 0 && m.IntOp > 0 && m.FpOp > 0 && m.MulOp > 0 &&
			m.ClockPerCyc > 0 && m.IdlePerCyc > 0 && m.TotalLeakage > 0
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
