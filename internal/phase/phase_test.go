package phase

import (
	"testing"

	"repro/internal/trace"
)

func intervalOf(t *testing.T, program string, phase, n int) []trace.Inst {
	t.Helper()
	g, err := trace.NewGenerator(program, phase)
	if err != nil {
		t.Fatal(err)
	}
	return g.Interval(n)
}

func TestBBVNormalised(t *testing.T) {
	iv := intervalOf(t, "gcc", 0, 5000)
	v := BBV(iv)
	if len(v) != BBVDim {
		t.Fatalf("BBV dim %d, want %d", len(v), BBVDim)
	}
	s := 0.0
	for _, x := range v {
		if x < 0 {
			t.Fatalf("negative BBV component %v", x)
		}
		s += x
	}
	if s < 0.999 || s > 1.001 {
		t.Fatalf("BBV sums to %v, want 1", s)
	}
	if z := BBV(nil); len(z) != BBVDim {
		t.Fatal("empty BBV wrong length")
	}
}

func TestManhattanDistance(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	if d := ManhattanDistance(a, b); d != 2 {
		t.Errorf("distance = %v, want 2", d)
	}
	if d := ManhattanDistance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched lengths")
		}
	}()
	ManhattanDistance(a, []float64{1})
}

func TestSamePhaseIntervalsCloserThanCrossPhase(t *testing.T) {
	a1 := BBV(intervalOf(t, "mcf", 0, 30000))
	g, _ := trace.NewGenerator("mcf", 0)
	g.Interval(30000) // skip ahead within the same phase
	a2 := BBV(g.Interval(30000))
	b := BBV(intervalOf(t, "mcf", 5, 30000))
	within := ManhattanDistance(a1, a2)
	across := ManhattanDistance(a1, b)
	if within >= across {
		t.Errorf("within-phase distance %.4f not below cross-phase %.4f", within, across)
	}
}

func TestExtractClusters(t *testing.T) {
	// Build 30 intervals: 10 each from three very different programs; the
	// extraction should separate them into distinct phases.
	var bbvs [][]float64
	for _, prog := range []string{"mcf", "swim", "crafty"} {
		g, err := trace.NewGenerator(prog, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			// Intervals must cover the programs' loop structure (tens of
			// thousands of instructions) for BBVs to be phase-stable,
			// mirroring SimPoint's large interval sizes.
			bbvs = append(bbvs, BBV(g.Interval(25000)))
		}
	}
	ex, err := Extract(bbvs, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Phases() < 2 {
		t.Fatalf("found %d phases, want >= 2", ex.Phases())
	}
	// All intervals of one program should mostly share a cluster.
	for p := 0; p < 3; p++ {
		counts := map[int]int{}
		for i := 0; i < 10; i++ {
			counts[ex.Assignments[p*10+i]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if best < 8 {
			t.Errorf("program %d intervals split badly across clusters: %v", p, counts)
		}
	}
	// Weights sum to 1; representatives valid and in their own cluster.
	sum := 0.0
	for c, w := range ex.Weights {
		sum += w
		r := ex.Representatives[c]
		if r < 0 || r >= len(bbvs) {
			t.Fatalf("representative %d out of range", r)
		}
		if ex.Assignments[r] != c {
			t.Errorf("representative of cluster %d assigned to %d", c, ex.Assignments[r])
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract(nil, 3, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Extract([][]float64{{1}}, 0, 1); err == nil {
		t.Error("zero clusters accepted")
	}
	// k > n clamps.
	ex, err := Extract([][]float64{{1, 0}, {0, 1}}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Phases() > 2 {
		t.Errorf("more phases than intervals: %d", ex.Phases())
	}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := NewDetector(0, 0.5); err == nil {
		t.Error("zero-bit detector accepted")
	}
	if _, err := NewDetector(64, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewDetector(64, 1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestDetectorFiresOnProgramSwitch(t *testing.T) {
	d, err := NewDetector(1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(prog string, phase, intervals, n int) int {
		g, _ := trace.NewGenerator(prog, phase)
		fired := 0
		for i := 0; i < intervals; i++ {
			for _, in := range g.Interval(n) {
				d.Observe(in)
			}
			if d.EndInterval() {
				fired++
			}
		}
		return fired
	}
	// Steady phase: few firings after the first interval.
	steady := feed("swim", 0, 6, 40000)
	// Switch to a totally different program: must fire on the first
	// interval of the new code.
	g, _ := trace.NewGenerator("crafty", 0)
	for _, in := range g.Interval(40000) {
		d.Observe(in)
	}
	if !d.EndInterval() {
		t.Error("detector missed a program switch")
	}
	if steady > 2 {
		t.Errorf("detector fired %d times within a steady phase", steady)
	}
	if d.Intervals != 7 {
		t.Errorf("interval count %d, want 7", d.Intervals)
	}
}

func TestDetectorFirstIntervalNeverFires(t *testing.T) {
	d, _ := NewDetector(256, 0.5)
	g, _ := trace.NewGenerator("gzip", 0)
	for _, in := range g.Interval(1000) {
		d.Observe(in)
	}
	if d.EndInterval() {
		t.Error("first interval reported a phase change")
	}
}

func TestExtractSingleCluster(t *testing.T) {
	bbvs := [][]float64{{1, 0}, {0.9, 0.1}, {0.95, 0.05}}
	ex, err := Extract(bbvs, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Phases() != 1 {
		t.Fatalf("phases = %d, want 1", ex.Phases())
	}
	for _, a := range ex.Assignments {
		if a != 0 {
			t.Errorf("assignment %d", a)
		}
	}
	if ex.Weights[0] < 0.999 {
		t.Errorf("weight %v", ex.Weights[0])
	}
}

func TestDetectorThresholdOneNeverFires(t *testing.T) {
	d, err := NewDetector(256, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	progs := []string{"gzip", "mcf", "swim"}
	for _, prog := range progs {
		g, _ := trace.NewGenerator(prog, 0)
		for _, in := range g.Interval(5000) {
			d.Observe(in)
		}
		if d.EndInterval() {
			t.Fatalf("threshold-1 detector fired on %s", prog)
		}
	}
}
