// Package phase provides the program phase analysis the paper's controller
// depends on: SimPoint-style offline phase extraction (basic-block vectors
// clustered with k-means) and an online phase-change detector based on
// working-set signatures (Dhodapkar & Smith), which stage 1 of the paper's
// runtime scheme uses to decide when to re-profile and reconfigure.
package phase

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Process-wide detector telemetry (obs.DefaultRegistry), aggregated over
// every Detector instance; per-detector numbers stay in Intervals/Changes.
var (
	obsIntervals = obs.DefaultRegistry().Counter("repro_phase_intervals_total",
		"Intervals closed by online phase-change detectors.")
	obsChanges = obs.DefaultRegistry().Counter("repro_phase_changes_total",
		"Phase changes flagged by online phase-change detectors.")
)

// BBVDim is the dimensionality basic-block vectors are hashed down to,
// following SimPoint's random-projection practice.
const BBVDim = 32

// BBV computes the normalised basic-block vector of an instruction
// interval: execution counts per basic block, hashed into BBVDim buckets
// and normalised to sum to 1.
func BBV(insts []trace.Inst) []float64 {
	v := make([]float64, BBVDim)
	if len(insts) == 0 {
		return v
	}
	for i := range insts {
		h := uint64(insts[i].BB) * 0x9e3779b97f4a7c15
		v[h%BBVDim]++
	}
	total := float64(len(insts))
	for i := range v {
		v[i] /= total
	}
	return v
}

// ManhattanDistance returns the L1 distance between two equal-length
// vectors (SimPoint's BBV metric).
func ManhattanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("phase: vector lengths differ: %d vs %d", len(a), len(b)))
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// Extraction is the result of offline phase extraction over a sequence of
// intervals.
type Extraction struct {
	// Assignments maps each interval to its phase (cluster) id.
	Assignments []int
	// Representatives holds, per phase, the index of the interval closest
	// to the cluster centroid — the SimPoint.
	Representatives []int
	// Weights holds, per phase, the fraction of intervals it covers.
	Weights []float64
}

// Phases returns the number of phases found.
func (e *Extraction) Phases() int { return len(e.Representatives) }

// Extract clusters interval BBVs into at most k phases and picks a
// representative interval per phase, like SimPoint. It is deterministic
// for a given input and seed.
func Extract(bbvs [][]float64, k int, seed uint64) (*Extraction, error) {
	if len(bbvs) == 0 {
		return nil, errors.New("phase: no intervals to extract from")
	}
	if k <= 0 {
		return nil, fmt.Errorf("phase: cluster count %d must be positive", k)
	}
	if k > len(bbvs) {
		k = len(bbvs)
	}
	assign, centroids := stats.KMeans(bbvs, k, seed, 100)

	// Drop empty clusters, renumber densely.
	counts := make([]int, len(centroids))
	for _, a := range assign {
		counts[a]++
	}
	remap := make([]int, len(centroids))
	next := 0
	for c := range centroids {
		if counts[c] > 0 {
			remap[c] = next
			next++
		} else {
			remap[c] = -1
		}
	}
	ex := &Extraction{
		Assignments:     make([]int, len(bbvs)),
		Representatives: make([]int, next),
		Weights:         make([]float64, next),
	}
	bestDist := make([]float64, next)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
		ex.Representatives[i] = -1
	}
	for i, a := range assign {
		c := remap[a]
		ex.Assignments[i] = c
		ex.Weights[c] += 1 / float64(len(bbvs))
		d := ManhattanDistance(bbvs[i], centroids[a])
		if d < bestDist[c] {
			bestDist[c] = d
			ex.Representatives[c] = i
		}
	}
	return ex, nil
}

// Detector is the online phase-change detector: it accumulates a
// working-set signature (a bit vector of touched code regions) per
// interval and compares it against the accumulated signature of the
// current phase (the union of its intervals' signatures, as in Dhodapkar
// & Smith). Comparing against the phase signature rather than just the
// previous interval makes detection robust to intervals shorter than the
// program's loop-walk period: once the phase signature covers the walk,
// in-phase intervals are subsets of it.
type Detector struct {
	bits      []uint64 // current interval's signature
	phaseSig  []uint64 // accumulated signature of the current phase
	nbits     uint32
	threshold float64
	primed    bool
	// Stats.
	Intervals uint64
	Changes   uint64
}

// NewDetector builds a detector with a signature of size signatureBits
// (rounded up to a multiple of 64) firing at the given relative-distance
// threshold (0..1; Dhodapkar & Smith use ~0.5).
func NewDetector(signatureBits int, threshold float64) (*Detector, error) {
	if signatureBits <= 0 {
		return nil, fmt.Errorf("phase: signature size %d must be positive", signatureBits)
	}
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("phase: threshold %v must be in (0,1]", threshold)
	}
	words := (signatureBits + 63) / 64
	return &Detector{
		bits:      make([]uint64, words),
		phaseSig:  make([]uint64, words),
		nbits:     uint32(words * 64),
		threshold: threshold,
	}, nil
}

// Observe folds one instruction into the current interval's signature.
// Only instruction-location bits are used (working set of code), which is
// what a cheap hardware signature would hash.
func (d *Detector) Observe(in trace.Inst) {
	// Hash the instruction's 64-byte code region.
	h := (uint64(in.PC) >> 6) * 0x9e3779b97f4a7c15
	bit := uint32(h>>32) % d.nbits
	d.bits[bit/64] |= 1 << (bit % 64)
}

// EndInterval closes the current interval, reports whether a phase change
// was detected, and starts a new one. A change is flagged when the share
// of the interval's working set that lies outside the accumulated phase
// signature exceeds the threshold; on a change the phase signature resets
// to the new interval's, otherwise it absorbs it. The first interval never
// reports a change.
func (d *Detector) EndInterval() bool {
	d.Intervals++
	changed := false
	if d.primed {
		novel, cur := 0, 0
		for i := range d.bits {
			novel += popcount(d.bits[i] &^ d.phaseSig[i])
			cur += popcount(d.bits[i])
		}
		if cur > 0 && float64(novel)/float64(cur) > d.threshold {
			changed = true
		}
	}
	if changed || !d.primed {
		copy(d.phaseSig, d.bits)
	} else {
		for i := range d.bits {
			d.phaseSig[i] |= d.bits[i]
		}
	}
	for i := range d.bits {
		d.bits[i] = 0
	}
	d.primed = true
	obsIntervals.Inc()
	if changed {
		d.Changes++
		obsChanges.Inc()
	}
	return changed
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
