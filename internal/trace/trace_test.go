package trace

import (
	"testing"
	"testing/quick"
)

func TestBenchmarkSuiteComplete(t *testing.T) {
	names := Benchmarks()
	if len(names) != 26 {
		t.Fatalf("suite has %d benchmarks, want 26 (SPEC CPU 2000)", len(names))
	}
	// The canonical SPEC 2000 suite.
	want := []string{
		"ammp", "applu", "apsi", "art", "bzip2", "crafty", "eon", "equake",
		"facerec", "fma3d", "galgel", "gap", "gcc", "gzip", "lucas", "mcf",
		"mesa", "mgrid", "parser", "perlbmk", "sixtrack", "swim", "twolf",
		"vortex", "vpr", "wupwise",
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("benchmark[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestUnknownProgramRejected(t *testing.T) {
	if _, err := NewGenerator("notabenchmark", 0); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if _, err := NewGenerator("mcf", -1); err == nil {
		t.Fatal("expected error for negative phase")
	}
	if _, err := NewGenerator("mcf", PhasesPerProgram); err == nil {
		t.Fatal("expected error for out-of-range phase")
	}
	if IsBenchmark("notabenchmark") {
		t.Fatal("IsBenchmark accepted garbage")
	}
	if !IsBenchmark("gzip") {
		t.Fatal("IsBenchmark rejected gzip")
	}
}

func TestDeterminism(t *testing.T) {
	g1, err := NewGenerator("gcc", 3)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator("gcc", 3)
	for i := 0; i < 20000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestPhasesDiffer(t *testing.T) {
	// Different phases of the same program must produce different streams.
	g0, _ := NewGenerator("mcf", 0)
	g1, _ := NewGenerator("mcf", 1)
	same := 0
	for i := 0; i < 5000; i++ {
		if g0.Next() == g1.Next() {
			same++
		}
	}
	if same > 4500 {
		t.Fatalf("phases 0 and 1 of mcf nearly identical: %d/5000 equal instructions", same)
	}
}

func TestProgramsDiffer(t *testing.T) {
	ga, _ := NewGenerator("swim", 0)
	gb, _ := NewGenerator("parser", 0)
	same := 0
	for i := 0; i < 5000; i++ {
		if ga.Next() == gb.Next() {
			same++
		}
	}
	if same > 2500 {
		t.Fatalf("swim and parser streams nearly identical: %d/5000", same)
	}
}

func TestInstructionWellFormed(t *testing.T) {
	for _, name := range Benchmarks() {
		g, err := NewGenerator(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		branches, mems := 0, 0
		for i := 0; i < 20000; i++ {
			in := g.Next()
			if in.Op >= NumOpClasses {
				t.Fatalf("%s: bad op class %d", name, in.Op)
			}
			if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
				t.Fatalf("%s: register out of range: %+v", name, in)
			}
			switch in.Op {
			case Branch:
				branches++
				if in.Dst != -1 {
					t.Fatalf("%s: branch with destination: %+v", name, in)
				}
			case Load:
				mems++
				if in.Dst < 0 {
					t.Fatalf("%s: load without destination: %+v", name, in)
				}
				if in.Addr == 0 {
					t.Fatalf("%s: load without address: %+v", name, in)
				}
			case Store:
				mems++
				if in.Dst != -1 {
					t.Fatalf("%s: store with destination: %+v", name, in)
				}
			}
		}
		if branches == 0 {
			t.Errorf("%s: no branches in 20k instructions", name)
		}
		if mems == 0 {
			t.Errorf("%s: no memory ops in 20k instructions", name)
		}
		// Typical branch density: 5-25% of instructions.
		if frac := float64(branches) / 20000; frac < 0.03 || frac > 0.35 {
			t.Errorf("%s: branch fraction %.3f outside [0.03, 0.35]", name, frac)
		}
	}
}

func TestOpClassHelpers(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || Branch.IsMem() || IntALU.IsMem() {
		t.Error("IsMem misclassifies")
	}
	if !FpALU.IsFp() || !FpMul.IsFp() || Load.IsFp() {
		t.Error("IsFp misclassifies")
	}
	if Load.String() != "Load" || Branch.String() != "Branch" {
		t.Error("op names wrong")
	}
	if OpClass(200).String() != "OpClass(200)" {
		t.Error("out-of-range op name wrong")
	}
}

func TestIntervalLength(t *testing.T) {
	g, _ := NewGenerator("gzip", 0)
	iv := g.Interval(1234)
	if len(iv) != 1234 {
		t.Fatalf("Interval(1234) returned %d instructions", len(iv))
	}
}

func TestPersonalitiesExpressed(t *testing.T) {
	// mcf must be far more memory-intensive per instruction than crafty,
	// and swim must be far more FP-heavy than gzip.
	memFrac := func(name string) float64 {
		g, _ := NewGenerator(name, 0)
		m := 0
		const n = 30000
		for i := 0; i < n; i++ {
			if g.Next().Op.IsMem() {
				m++
			}
		}
		return float64(m) / n
	}
	fpFrac := func(name string) float64 {
		g, _ := NewGenerator(name, 0)
		m := 0
		const n = 30000
		for i := 0; i < n; i++ {
			if g.Next().Op.IsFp() {
				m++
			}
		}
		return float64(m) / n
	}
	if mcf, crafty := memFrac("mcf"), memFrac("crafty"); mcf <= crafty {
		t.Errorf("mcf mem fraction %.3f not above crafty %.3f", mcf, crafty)
	}
	if swim, gzip := fpFrac("swim"), fpFrac("gzip"); swim <= gzip+0.2 {
		t.Errorf("swim fp fraction %.3f not well above gzip %.3f", swim, gzip)
	}
}

func TestGeneratorAccessors(t *testing.T) {
	g, _ := NewGenerator("art", 7)
	if g.Program() != "art" || g.Phase() != 7 {
		t.Fatalf("accessors wrong: %s %d", g.Program(), g.Phase())
	}
}

// Property: for any benchmark and phase, the stream restarts identically
// after recreating the generator (pure function of program+phase).
func TestQuickStreamPurity(t *testing.T) {
	names := Benchmarks()
	f := func(pick uint8, phase uint8) bool {
		name := names[int(pick)%len(names)]
		ph := int(phase) % PhasesPerProgram
		a, err := NewGenerator(name, ph)
		if err != nil {
			return false
		}
		b, _ := NewGenerator(name, ph)
		for i := 0; i < 500; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureBasics(t *testing.T) {
	g, _ := NewGenerator("swim", 0)
	s := Measure(g.Interval(20000))
	if s.Insts != 20000 {
		t.Fatalf("insts %d", s.Insts)
	}
	sum := 0.0
	for _, m := range s.Mix {
		if m < 0 {
			t.Fatalf("negative mix %v", s.Mix)
		}
		sum += m
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("mix sums to %v", sum)
	}
	if s.FpFrac < 0.3 {
		t.Errorf("swim fp fraction %.2f too low", s.FpFrac)
	}
	if s.MemFrac <= 0 || s.BranchDensity <= 0 || s.TakenFrac <= 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
	if s.DataFootprintKB <= 0 || s.CodeFootprintKB <= 0 || s.DistinctBlocks == 0 {
		t.Errorf("footprints empty: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
	if z := Measure(nil); z.Insts != 0 {
		t.Error("empty measure nonzero")
	}
}

func TestMeasureSeparatesFootprints(t *testing.T) {
	// mcf's data footprint per instruction must exceed eon's, and gcc's
	// code footprint must exceed lucas's.
	fp := func(name string) (data, code float64) {
		g, _ := NewGenerator(name, 0)
		s := Measure(g.Interval(30000))
		return s.DataFootprintKB, s.CodeFootprintKB
	}
	mcfD, _ := fp("mcf")
	eonD, _ := fp("eon")
	if mcfD <= eonD {
		t.Errorf("mcf data footprint %.0fKB not above eon %.0fKB", mcfD, eonD)
	}
	_, gccC := fp("gcc")
	_, lucasC := fp("lucas")
	if gccC <= lucasC {
		t.Errorf("gcc code footprint %.0fKB not above lucas %.0fKB", gccC, lucasC)
	}
}
