// Package trace generates the synthetic workloads that stand in for SPEC
// CPU 2000. Each of the paper's 26 benchmarks is modelled as a small set of
// kernels — loop nests with a characteristic operation mix, dependency
// structure (ILP), data working set and access pattern, code footprint and
// branch behaviour — and each of the 10 phases per benchmark is a mixture
// over those kernels with phase-specific scaling. The generator emits a
// deterministic instruction stream (seeded per program and phase), so the
// same phase can be replayed identically under every hardware
// configuration.
//
// Control flow is structured as real loop nests are: each kernel owns a
// set of basic blocks at stable addresses; a block's terminating branch
// loops back on itself for LoopPeriod iterations, then exits to the next
// (or, occasionally, a distant) block. Stable branch PCs make the stream
// learnable by a BTB and gshare to exactly the degree the kernel's
// Predictability dictates.
//
// See DESIGN.md §3 for why this substitution preserves the behaviour the
// paper's evaluation exercises: diverse, phase-varying resource demands.
package trace

import (
	"fmt"
	"math/rand/v2"
)

// OpClass is the class of an instruction, determining which functional
// unit executes it and its base latency.
type OpClass uint8

// Instruction classes.
const (
	IntALU OpClass = iota // single-cycle integer op
	IntMul                // integer multiply/divide
	FpALU                 // FP add/sub/convert
	FpMul                 // FP multiply/divide/sqrt
	Load                  // memory read
	Store                 // memory write
	Branch                // conditional branch (block terminator)
	NumOpClasses
)

var opNames = [NumOpClasses]string{"IntALU", "IntMul", "FpALU", "FpMul", "Load", "Store", "Branch"}

// String returns the class name.
func (c OpClass) String() string {
	if c >= NumOpClasses {
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
	return opNames[c]
}

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == Load || c == Store }

// IsFp reports whether the class executes on FP units and uses FP
// registers.
func (c OpClass) IsFp() bool { return c == FpALU || c == FpMul }

// Register file banks. Registers 0..31 are integer, 32..63 floating point;
// -1 means "no register".
const (
	NumIntRegs = 32
	NumFpRegs  = 32
	NumRegs    = NumIntRegs + NumFpRegs
)

// Inst is one dynamic instruction in a trace.
type Inst struct {
	PC     uint32 // instruction address (byte)
	Addr   uint32 // effective address for Load/Store
	Target uint32 // branch target for Branch
	BB     uint32 // basic block identifier (for basic-block vectors)
	Op     OpClass
	Dst    int8 // destination register or -1
	Src1   int8 // first source register or -1
	Src2   int8 // second source register or -1
	Taken  bool // actual branch outcome
}

// AccessPattern selects how a kernel generates data addresses.
type AccessPattern uint8

// Access patterns.
const (
	PatternStride AccessPattern = iota // unit/short-stride streaming
	PatternRandom                      // uniform within the working set
	PatternChase                       // dependent pointer chasing
	PatternMixed                       // alternating stride and random
)

// Kernel describes one loop nest's behaviour.
type Kernel struct {
	Name string
	// Mix holds relative weights for IntALU..Store (Branch is generated
	// as the block terminator, not drawn from the mix).
	Mix [int(Store) + 1]float64
	// BlockLen is the mean basic-block body length in instructions.
	BlockLen int
	// DepDist is the mean backward distance (in instructions) of register
	// dependencies: larger means more ILP.
	DepDist float64
	// WSKB is the data working-set size in KB.
	WSKB int
	// Pattern selects the address generator; Stride is the byte stride
	// for PatternStride/PatternMixed.
	Pattern AccessPattern
	Stride  int
	// CodeKB is the instruction footprint in KB.
	CodeKB int
	// TakenBias is the probability that a loop-back branch actually stays
	// in the loop when the pattern says so (loop irregularity).
	TakenBias float64
	// Predictability is the fraction of branch outcomes that follow the
	// learnable loop pattern (the rest are random coin flips).
	Predictability float64
	// LoopPeriod is the trip count of the modelled loop: a loop branch
	// exits once every LoopPeriod executions.
	LoopPeriod int
}

// blockSlot is the address space reserved per basic block; block bodies
// are shorter than the slot so blocks never overlap.
func (k *Kernel) blockSlot() uint32 { return uint32(k.BlockLen+4) * 4 }

// numBlocks returns how many basic blocks the kernel's code footprint
// holds.
func (k *Kernel) numBlocks() uint32 {
	n := uint32(k.CodeKB) * 1024 / k.blockSlot()
	if n == 0 {
		n = 1
	}
	return n
}

// kernelState is the mutable per-kernel control/address state inside a
// generator.
type kernelState struct {
	cursor     uint32 // streaming cursor for stride pattern
	windowBase uint32 // sliding-window base for the mixed pattern
	chasePtr   uint32 // current pointer for chase pattern
	chaseReg   int8   // register holding the last chase-loaded pointer

	blockIdx  uint32 // current basic block within the kernel
	bodyLeft  int    // body instructions remaining in the current block
	bodyPos   uint32 // next instruction offset within the block
	loopCount int    // iterations of the current loop branch

	codeBase uint32 // base address of the kernel's code region
	dataBase uint32 // base address of the kernel's data region
	bbBase   uint32 // first basic-block id of this kernel
}

// Generator produces the deterministic instruction stream for one phase of
// one program. It is not safe for concurrent use; create one per goroutine.
type Generator struct {
	program string
	phase   int
	spec    phaseSpec
	rng     *rand.Rand
	states  []kernelState

	kernel     int       // current kernel index
	burstLeft  int       // instructions left in the current kernel burst
	mixTotals  []float64 // per-kernel Mix weight sums, hoisted out of drawOp
	recentDst  [32]int8  // ring of recent destination registers
	recentHead int
	emitted    uint64
}

// phaseSpec is the resolved description of one phase: kernel weights plus
// phase-level scaling applied to the program's kernels.
type phaseSpec struct {
	kernels []Kernel
	weights []float64 // same length as kernels, sums to 1
	burst   int       // mean kernel burst length in instructions
}

// NewGenerator returns the generator for the given program and phase
// (phase in [0, PhasesPerProgram)). The stream is a pure function of
// (program, phase).
func NewGenerator(program string, phase int) (*Generator, error) {
	spec, err := resolvePhase(program, phase)
	if err != nil {
		return nil, err
	}
	g := &Generator{
		program: program,
		phase:   phase,
		spec:    spec,
		rng:     rand.New(rand.NewPCG(hashString(program), uint64(phase)*0x9e3779b97f4a7c15+1)),
	}
	g.states = make([]kernelState, len(spec.kernels))
	// Hoist the mix-weight totals out of the per-instruction draw. The
	// summation order matches the original in-loop accumulation, so the
	// totals (and every drawn op) are bit-identical.
	g.mixTotals = make([]float64, len(spec.kernels))
	for i := range spec.kernels {
		total := 0.0
		for _, w := range spec.kernels[i].Mix {
			total += w
		}
		g.mixTotals[i] = total
	}
	var code uint32 = 0x0040_0000
	var data uint32 = 0x1000_0000
	var bb uint32
	for i, k := range spec.kernels {
		g.states[i] = kernelState{
			codeBase: code,
			dataBase: data,
			chasePtr: data,
			chaseReg: -1,
			bbBase:   bb,
		}
		g.states[i].bodyLeft = g.bodyLen(&spec.kernels[i], 0)
		code += uint32(k.CodeKB)*1024 + 4096
		data += uint32(k.WSKB)*1024 + 4096
		bb += k.numBlocks()
	}
	for i := range g.recentDst {
		g.recentDst[i] = int8(i % NumIntRegs)
	}
	g.pickKernel()
	return g, nil
}

// Program returns the program name this generator was built for.
func (g *Generator) Program() string { return g.program }

// Phase returns the phase index this generator was built for.
func (g *Generator) Phase() int { return g.phase }

// bodyLen returns the fixed body length of block i of kernel k.
func (g *Generator) bodyLen(k *Kernel, i uint32) int {
	// Deterministic per-block variation of +-1 around BlockLen.
	h := (uint64(i)*2654435761 + 12345) >> 7
	return k.BlockLen - 1 + int(h%3)
}

// blockStart returns the first instruction address of block i.
func (g *Generator) blockStart(k *Kernel, st *kernelState, i uint32) uint32 {
	return st.codeBase + i*k.blockSlot()
}

// Next returns the next instruction in the stream.
func (g *Generator) Next() Inst {
	if g.burstLeft <= 0 {
		g.pickKernel()
	}
	k := &g.spec.kernels[g.kernel]
	st := &g.states[g.kernel]

	if st.bodyLeft <= 0 {
		return g.emitBranch(k, st)
	}
	st.bodyLeft--
	g.burstLeft--
	g.emitted++
	op := g.drawOp(k)
	in := Inst{
		PC:   g.blockStart(k, st, st.blockIdx) + st.bodyPos,
		BB:   st.bbBase + st.blockIdx,
		Op:   op,
		Dst:  -1,
		Src1: -1,
		Src2: -1,
	}
	st.bodyPos += 4

	switch op {
	case Load:
		in.Addr = g.dataAddr(k, st)
		in.Dst = g.pickDst(k)
		if k.Pattern == PatternChase && st.chaseReg >= 0 {
			in.Src1 = st.chaseReg // serialised dependent load
		} else {
			in.Src1 = g.pickSrc(k)
		}
		if k.Pattern == PatternChase {
			st.chaseReg = in.Dst
		}
	case Store:
		in.Addr = g.dataAddr(k, st)
		in.Src1 = g.pickSrc(k) // data
		in.Src2 = g.pickSrc(k) // address base
	default:
		in.Dst = g.pickDst(k)
		in.Src1 = g.pickSrc(k)
		if g.rng.Float64() < 0.72 {
			in.Src2 = g.pickSrc(k)
		}
	}
	if in.Dst >= 0 {
		g.recentDst[g.recentHead&31] = in.Dst
		g.recentHead++
	}
	return in
}

// emitBranch produces the block-terminating branch and decides the next
// block. Branch PCs are stable per block, so predictors can learn them.
func (g *Generator) emitBranch(k *Kernel, st *kernelState) Inst {
	g.burstLeft--
	g.emitted++
	blockStart := g.blockStart(k, st, st.blockIdx)
	in := Inst{
		PC:   blockStart + st.bodyPos,
		BB:   st.bbBase + st.blockIdx,
		Op:   Branch,
		Dst:  -1,
		Src1: g.pickSrc(k),
		Src2: -1,
	}

	st.loopCount++
	nextBlock := st.blockIdx
	patterned := g.rng.Float64() < k.Predictability
	stay := st.loopCount%k.LoopPeriod != 0
	if patterned && stay && g.rng.Float64() > k.TakenBias {
		stay = false // irregular early exit
	}
	if !patterned {
		stay = g.rng.Float64() < 0.5 // genuinely data-dependent branch
	}
	if stay {
		in.Taken = true
		in.Target = blockStart // loop back to the top of this block
	} else {
		st.loopCount = 0
		// Exit the loop. Usually fall through to the next block; a
		// deterministic subset of blocks instead jump to a distant block
		// (call/return-like control transfer).
		n := k.numBlocks()
		if st.blockIdx%7 == 3 {
			in.Taken = true
			nextBlock = (st.blockIdx*2654435761 + 97) % n
			in.Target = g.blockStart(k, st, nextBlock)
		} else {
			in.Taken = false
			nextBlock = (st.blockIdx + 1) % n
		}
	}
	if nextBlock != st.blockIdx || !stay {
		st.blockIdx = nextBlock
	}
	st.bodyLeft = g.bodyLen(k, st.blockIdx)
	st.bodyPos = 0
	return in
}

// drawOp samples a non-branch op class from the kernel mix.
func (g *Generator) drawOp(k *Kernel) OpClass {
	x := g.rng.Float64() * g.mixTotals[g.kernel]
	for c, w := range k.Mix {
		if x < w {
			return OpClass(c)
		}
		x -= w
	}
	return IntALU
}

// pickDst chooses a destination register in the bank matching the kernel's
// dominant datatype.
func (g *Generator) pickDst(k *Kernel) int8 {
	fp := k.Mix[FpALU]+k.Mix[FpMul] > k.Mix[IntALU]+k.Mix[IntMul]
	if fp && g.rng.Float64() < 0.8 {
		return int8(NumIntRegs + g.rng.IntN(NumFpRegs))
	}
	return int8(g.rng.IntN(NumIntRegs))
}

// pickSrc chooses a source register: usually a recently written register at
// a geometric backward distance controlled by DepDist (small distance =
// long dependency chains = low ILP).
func (g *Generator) pickSrc(k *Kernel) int8 {
	if g.recentHead == 0 {
		return int8(g.rng.IntN(NumIntRegs))
	}
	// Geometric distance with mean DepDist, capped by ring size.
	p := 1.0 / k.DepDist
	d := 1
	for d < 32 && g.rng.Float64() > p {
		d++
	}
	if d > g.recentHead {
		d = g.recentHead
	}
	return g.recentDst[(g.recentHead-d)&31]
}

// dataAddr produces the next data address for the kernel.
func (g *Generator) dataAddr(k *Kernel, st *kernelState) uint32 {
	ws := uint32(k.WSKB) * 1024
	if ws == 0 {
		ws = 1024
	}
	switch k.Pattern {
	case PatternStride:
		st.cursor += uint32(k.Stride)
		if st.cursor >= ws {
			st.cursor %= ws
		}
		return st.dataBase + st.cursor
	case PatternRandom:
		return st.dataBase + g.skewedOffset(ws)
	case PatternChase:
		// Deterministic scramble within the working set: the next pointer
		// is a hash of the current one, as in a shuffled linked list.
		st.chasePtr = st.chasePtr*2654435761 + 12345
		return st.dataBase + (st.chasePtr%ws)&^7
	default: // PatternMixed
		if g.rng.Float64() < 0.5 {
			// Strided walk over a sliding window (a compressor's dictionary,
			// a solver's current tile) that drifts slowly through the
			// working set.
			window := ws/6 + 256
			if window > ws {
				window = ws
			}
			st.cursor += uint32(k.Stride)
			if st.cursor >= window {
				st.cursor = 0
				st.windowBase = (st.windowBase + window/2) % ws
			}
			return st.dataBase + (st.windowBase+st.cursor)%ws
		}
		return st.dataBase + g.skewedOffset(ws)
	}
}

// skewedOffset draws a working-set offset with realistic 80/20 locality:
// the bulk of accesses fall in a hot eighth of the working set, a cold
// tail anywhere.
// The hot region scales with the working set, preserving the capacity
// signal the cache counters rely on.
func (g *Generator) skewedOffset(ws uint32) uint32 {
	span := ws
	if g.rng.Float64() < 0.93 {
		span = ws/8 + 256
		if span > ws {
			span = ws
		}
	}
	return uint32(g.rng.Uint64N(uint64(span))) &^ 7
}

// pickKernel starts a new kernel burst according to the phase mixture.
func (g *Generator) pickKernel() {
	x := g.rng.Float64()
	g.kernel = len(g.spec.weights) - 1
	for i, w := range g.spec.weights {
		if x < w {
			g.kernel = i
			break
		}
		x -= w
	}
	g.burstLeft = g.spec.burst/2 + g.rng.IntN(g.spec.burst)
}

// Interval generates the next n instructions as a slice.
func (g *Generator) Interval(n int) []Inst {
	out := make([]Inst, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// hashString is a 64-bit FNV-1a hash used to seed per-program generators.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
