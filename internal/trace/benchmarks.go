// Benchmark personality definitions: the 26 SPEC CPU 2000 programs the
// paper evaluates, each modelled as a set of kernels whose parameters
// follow the programs' published characterisations (memory-boundness,
// branch behaviour, FP/ILP character, code footprint). Phase mixtures vary
// per phase with a per-program diversity knob: programs the paper reports
// as highly phase-variable (mcf, equake, art, galgel, gap) swing widely
// between kernels; programs it reports as stable (eon, lucas) barely move.
package trace

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// PhasesPerProgram is the number of phases extracted per benchmark,
// matching the paper's SimPoint setup (10 phases x 26 programs = 260).
const PhasesPerProgram = 10

// programSpec describes one benchmark: its kernels and how much its phase
// mixtures vary.
type programSpec struct {
	kernels   []Kernel
	diversity float64 // 0..1: how far phase mixtures swing between kernels
	burst     int     // mean kernel burst length in instructions
}

// Benchmarks returns the 26 SPEC CPU 2000 benchmark names in the paper's
// suite, sorted.
func Benchmarks() []string {
	names := make([]string, 0, len(programs))
	for n := range programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsBenchmark reports whether name is one of the modelled benchmarks.
func IsBenchmark(name string) bool {
	_, ok := programs[name]
	return ok
}

// Kernel archetype constructors. Each returns a kernel with the archetype's
// op mix and behaviour, scaled by the supplied working set and code
// footprint.

func kChase(name string, wsKB int) Kernel {
	return Kernel{
		Name:     name,
		Mix:      mix(4, 0.2, 0, 0, 3.4, 0.9),
		BlockLen: 6, DepDist: 3.0,
		WSKB: wsKB, Pattern: PatternChase, Stride: 8,
		CodeKB: 12, TakenBias: 0.97, Predictability: 0.85, LoopPeriod: 9,
	}
}

func kStreamFP(name string, wsKB, stride int) Kernel {
	return Kernel{
		Name:     name,
		Mix:      mix(1.2, 0.1, 3.4, 1.7, 2.6, 1.2),
		BlockLen: 18, DepDist: 22.0,
		WSKB: wsKB, Pattern: PatternStride, Stride: stride,
		CodeKB: 8, TakenBias: 0.995, Predictability: 0.98, LoopPeriod: 48,
	}
}

func kLoopFP(name string, wsKB int) Kernel {
	return Kernel{
		Name:     name,
		Mix:      mix(1.4, 0.15, 3.0, 2.1, 2.0, 0.9),
		BlockLen: 15, DepDist: 16.0,
		WSKB: wsKB, Pattern: PatternMixed, Stride: 16,
		CodeKB: 16, TakenBias: 0.99, Predictability: 0.97, LoopPeriod: 24,
	}
}

func kBranchyInt(name string, wsKB, codeKB int, pred float64) Kernel {
	return Kernel{
		Name:     name,
		Mix:      mix(4.6, 0.25, 0.05, 0, 2.4, 1.1),
		BlockLen: 6, DepDist: 5.5,
		WSKB: wsKB, Pattern: PatternRandom, Stride: 8,
		CodeKB: codeKB, TakenBias: 0.95, Predictability: pred, LoopPeriod: 7,
	}
}

func kCompress(name string, wsKB int) Kernel {
	return Kernel{
		Name:     name,
		Mix:      mix(4.2, 0.4, 0, 0, 2.6, 1.4),
		BlockLen: 8, DepDist: 4.5,
		WSKB: wsKB, Pattern: PatternMixed, Stride: 4,
		CodeKB: 10, TakenBias: 0.96, Predictability: 0.92, LoopPeriod: 12,
	}
}

func kComputeInt(name string, wsKB int) Kernel {
	return Kernel{
		Name:     name,
		Mix:      mix(5.2, 0.9, 0.1, 0, 1.6, 0.7),
		BlockLen: 10, DepDist: 9.0,
		WSKB: wsKB, Pattern: PatternStride, Stride: 8,
		CodeKB: 14, TakenBias: 0.97, Predictability: 0.95, LoopPeriod: 16,
	}
}

func kRandomFP(name string, wsKB int) Kernel {
	return Kernel{
		Name:     name,
		Mix:      mix(1.6, 0.1, 2.8, 1.5, 2.8, 1.0),
		BlockLen: 11, DepDist: 8.0,
		WSKB: wsKB, Pattern: PatternRandom, Stride: 8,
		CodeKB: 12, TakenBias: 0.97, Predictability: 0.95, LoopPeriod: 20,
	}
}

// mix builds an op-class weight vector for IntALU..Store.
func mix(ialu, imul, falu, fmul, ld, st float64) [int(Store) + 1]float64 {
	return [int(Store) + 1]float64{ialu, imul, falu, fmul, ld, st}
}

// programs is the benchmark personality table. Working sets and code
// footprints follow the programs' published memory characterisations
// (e.g. mcf/art/swim stress memory, gcc/crafty/vortex/perlbmk stress the
// I-cache, eon/mesa are cache-friendly).
var programs = map[string]programSpec{
	// --- SPECint 2000 ---
	"gzip": {
		kernels:   []Kernel{kCompress("deflate", 192), kComputeInt("crc", 64)},
		diversity: 0.45, burst: 900,
	},
	"vpr": {
		kernels:   []Kernel{kBranchyInt("route", 192, 24, 0.89), kComputeInt("place", 96)},
		diversity: 0.5, burst: 700,
	},
	"gcc": {
		kernels:   []Kernel{kBranchyInt("parse", 256, 96, 0.88), kBranchyInt("rtl", 128, 128, 0.90), kComputeInt("alloc", 96)},
		diversity: 0.6, burst: 600,
	},
	"mcf": {
		kernels:   []Kernel{kChase("simplex", 224), kChase("arcs", 96), kComputeInt("price", 48)},
		diversity: 0.9, burst: 1100,
	},
	"crafty": {
		kernels:   []Kernel{kBranchyInt("search", 384, 80, 0.92), kComputeInt("evalbits", 128)},
		diversity: 0.35, burst: 800,
	},
	"parser": {
		kernels:   []Kernel{kBranchyInt("link", 96, 40, 0.85), kChase("dict", 128)},
		diversity: 0.55, burst: 650,
	},
	"eon": {
		kernels:   []Kernel{kRandomFP("raytrace", 96), kComputeInt("shade", 64)},
		diversity: 0.12, burst: 1000,
	},
	"perlbmk": {
		kernels:   []Kernel{kBranchyInt("interp", 160, 112, 0.89), kCompress("regex", 96)},
		diversity: 0.5, burst: 700,
	},
	"gap": {
		kernels:   []Kernel{kComputeInt("grouporder", 96), kChase("bags", 192), kBranchyInt("eval", 64, 48, 0.91)},
		diversity: 0.85, burst: 900,
	},
	"vortex": {
		kernels:   []Kernel{kBranchyInt("oodb", 160, 96, 0.88), kChase("index", 144)},
		diversity: 0.55, burst: 750,
	},
	"bzip2": {
		kernels:   []Kernel{kCompress("bwt", 320), kComputeInt("huffman", 64)},
		diversity: 0.5, burst: 900,
	},
	"twolf": {
		kernels:   []Kernel{kBranchyInt("anneal", 384, 32, 0.90), kComputeInt("cost", 96)},
		diversity: 0.4, burst: 800,
	},

	// --- SPECfp 2000 ---
	"wupwise": {
		kernels:   []Kernel{kLoopFP("zgemm", 256), kStreamFP("gammul", 768, 16)},
		diversity: 0.35, burst: 1000,
	},
	"swim": {
		kernels:   []Kernel{kStreamFP("calc1", 7168, 8), kStreamFP("calc2", 7168, 8)},
		diversity: 0.3, burst: 1200,
	},
	"mgrid": {
		kernels:   []Kernel{kLoopFP("resid", 768), kStreamFP("interp", 2048, 8)},
		diversity: 0.4, burst: 1100,
	},
	"applu": {
		kernels:   []Kernel{kLoopFP("blts", 512), kLoopFP("buts", 640), kStreamFP("rhs", 1536, 8)},
		diversity: 0.45, burst: 1000,
	},
	"mesa": {
		kernels:   []Kernel{kRandomFP("rasterize", 192), kComputeInt("clip", 64)},
		diversity: 0.3, burst: 900,
	},
	"galgel": {
		kernels:   []Kernel{kStreamFP("syshtn", 2048, 8), kLoopFP("bifg", 96), kComputeInt("setup", 48)},
		diversity: 0.9, burst: 1000,
	},
	"art": {
		kernels:   []Kernel{kStreamFP("match", 320, 8), kRandomFP("f1layer", 160)},
		diversity: 0.8, burst: 1200,
	},
	"equake": {
		kernels:   []Kernel{kChase("smvp", 256), kStreamFP("time_integ", 1024, 8)},
		diversity: 0.85, burst: 1000,
	},
	"facerec": {
		kernels:   []Kernel{kLoopFP("gabor", 512), kRandomFP("graph", 192)},
		diversity: 0.45, burst: 900,
	},
	"ammp": {
		kernels:   []Kernel{kChase("mmfv", 256), kLoopFP("forces", 384)},
		diversity: 0.55, burst: 900,
	},
	"lucas": {
		kernels:   []Kernel{kStreamFP("fftsquare", 2048, 16)},
		diversity: 0.08, burst: 1400,
	},
	"fma3d": {
		kernels:   []Kernel{kLoopFP("platq", 448), kRandomFP("scatter", 256)},
		diversity: 0.4, burst: 900,
	},
	"sixtrack": {
		kernels:   []Kernel{kLoopFP("thin6d", 384), kComputeInt("track", 96)},
		diversity: 0.25, burst: 1000,
	},
	"apsi": {
		kernels:   []Kernel{kLoopFP("dctdx", 448), kStreamFP("wcont", 1024, 8), kRandomFP("setall", 128)},
		diversity: 0.5, burst: 900,
	},
}

// resolvePhase computes the phase specification (kernel weights and
// phase-scaled kernels) for program/phase. Deterministic in its arguments.
func resolvePhase(program string, phase int) (phaseSpec, error) {
	spec, ok := programs[program]
	if !ok {
		return phaseSpec{}, fmt.Errorf("trace: unknown benchmark %q (want one of %v)", program, Benchmarks())
	}
	if phase < 0 || phase >= PhasesPerProgram {
		return phaseSpec{}, fmt.Errorf("trace: phase %d out of range [0,%d) for %q", phase, PhasesPerProgram, program)
	}
	rng := rand.New(rand.NewPCG(hashString(program)^0xabcdef, uint64(phase)+101))

	n := len(spec.kernels)
	weights := make([]float64, n)
	// Base: uniform mixture. Each phase tilts towards one dominant kernel;
	// the tilt strength is the program's diversity.
	dom := phase % n
	for i := range weights {
		weights[i] = (1 - spec.diversity) / float64(n)
	}
	weights[dom] += spec.diversity
	// Small deterministic jitter so phases with the same dominant kernel
	// still differ.
	total := 0.0
	for i := range weights {
		weights[i] *= 0.85 + 0.3*rng.Float64()
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}

	// Phase-level scaling of kernel working sets and branch behaviour:
	// diversity also widens how much resource demand itself moves.
	kernels := make([]Kernel, n)
	for i, k := range spec.kernels {
		scale := 1.0 + spec.diversity*(rng.Float64()*2.4-1.1)
		if scale < 0.15 {
			scale = 0.15
		}
		k.WSKB = int(float64(k.WSKB) * scale)
		if k.WSKB < 8 {
			k.WSKB = 8
		}
		// Predictability drifts a little per phase.
		k.Predictability += spec.diversity * (rng.Float64()*0.16 - 0.08)
		if k.Predictability > 0.99 {
			k.Predictability = 0.99
		}
		if k.Predictability < 0.5 {
			k.Predictability = 0.5
		}
		// ILP drifts too: some phases of a program are more serial.
		k.DepDist *= 1.0 + spec.diversity*(rng.Float64()*0.8-0.4)
		if k.DepDist < 1.2 {
			k.DepDist = 1.2
		}
		kernels[i] = k
	}
	return phaseSpec{kernels: kernels, weights: weights, burst: spec.burst}, nil
}
