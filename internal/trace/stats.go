package trace

import (
	"fmt"
	"strings"
)

// Stats summarises the static character of an instruction stream: the
// quantities an architect reads off a workload before sizing hardware for
// it. Used by the tools to sanity-check that the synthetic benchmarks
// express their intended personalities.
type Stats struct {
	Insts uint64

	// Mix fractions by op class (sum to 1).
	Mix [NumOpClasses]float64

	// BranchDensity is branches per instruction; TakenFrac the fraction
	// of branches taken.
	BranchDensity float64
	TakenFrac     float64

	// MemFrac is loads+stores per instruction.
	MemFrac float64

	// DataFootprintKB estimates the touched data working set (distinct
	// 64-byte blocks); CodeFootprintKB the touched code region.
	DataFootprintKB float64
	CodeFootprintKB float64

	// DistinctBlocks is the number of distinct basic blocks executed.
	DistinctBlocks int

	// FpFrac is the fraction of instructions executing on FP units.
	FpFrac float64
}

// Measure computes statistics over insts.
func Measure(insts []Inst) Stats {
	var s Stats
	s.Insts = uint64(len(insts))
	if len(insts) == 0 {
		return s
	}
	var branches, taken, mem, fp uint64
	dataBlocks := map[uint32]bool{}
	codeBlocks := map[uint32]bool{}
	bbs := map[uint32]bool{}
	var counts [NumOpClasses]uint64
	for i := range insts {
		in := &insts[i]
		counts[in.Op]++
		codeBlocks[in.PC>>6] = true
		bbs[in.BB] = true
		switch {
		case in.Op == Branch:
			branches++
			if in.Taken {
				taken++
			}
		case in.Op.IsMem():
			mem++
			dataBlocks[in.Addr>>6] = true
		}
		if in.Op.IsFp() {
			fp++
		}
	}
	n := float64(len(insts))
	for c := range counts {
		s.Mix[c] = float64(counts[c]) / n
	}
	s.BranchDensity = float64(branches) / n
	if branches > 0 {
		s.TakenFrac = float64(taken) / float64(branches)
	}
	s.MemFrac = float64(mem) / n
	s.FpFrac = float64(fp) / n
	s.DataFootprintKB = float64(len(dataBlocks)) * 64 / 1024
	s.CodeFootprintKB = float64(len(codeBlocks)) * 64 / 1024
	s.DistinctBlocks = len(bbs)
	return s
}

// String renders the summary on one block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d insts: mem %.0f%%, fp %.0f%%, branches %.1f%% (%.0f%% taken)\n",
		s.Insts, 100*s.MemFrac, 100*s.FpFrac, 100*s.BranchDensity, 100*s.TakenFrac)
	fmt.Fprintf(&b, "footprints: data %.0fKB, code %.0fKB, %d basic blocks",
		s.DataFootprintKB, s.CodeFootprintKB, s.DistinctBlocks)
	return b.String()
}
