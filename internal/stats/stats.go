// Package stats provides the small statistical substrate shared by the
// simulator and the experiment harness: fixed-bin and logarithmic
// histograms (the paper's "temporal histograms"), empirical CDFs,
// quantiles, violin-plot summaries (Figure 8) and k-means clustering
// (SimPoint-style phase extraction).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Histogram is a fixed-bin counting histogram. Bin semantics (linear
// occupancy bins, log2 distance bins, ...) are the caller's; the histogram
// just counts and normalises.
type Histogram struct {
	Counts []uint64
	Total  uint64
}

// NewHistogram returns a histogram with n bins.
func NewHistogram(n int) *Histogram {
	return &Histogram{Counts: make([]uint64, n)}
}

// Add increments bin i (clamped into range) by 1.
func (h *Histogram) Add(i int) { h.AddN(i, 1) }

// AddN increments bin i (clamped into range) by n.
func (h *Histogram) AddN(i int, n uint64) {
	if len(h.Counts) == 0 {
		return
	}
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i] += n
	h.Total += n
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// Normalized returns the histogram as fractions summing to 1 (all zeros if
// empty). This is the feature encoding fed to the model.
func (h *Histogram) Normalized() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// Mean returns the count-weighted mean bin index.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	s := 0.0
	for i, c := range h.Counts {
		s += float64(i) * float64(c)
	}
	return s / float64(h.Total)
}

// PercentileBin returns the smallest bin index at which the cumulative
// fraction reaches p (0 < p <= 1).
func (h *Histogram) PercentileBin(p float64) int {
	if h.Total == 0 {
		return 0
	}
	target := p * float64(h.Total)
	cum := 0.0
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			return i
		}
	}
	return len(h.Counts) - 1
}

// Reset zeroes all bins.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Total = 0
}

// Log2Bin returns the logarithmic bin index for a distance value:
// 0 for d<=1, otherwise floor(log2(d))+1, clamped to maxBin.
func Log2Bin(d uint64, maxBin int) int {
	if d <= 1 {
		return 0
	}
	b := bits.Len64(d) // == floor(log2(d)) + 1
	if b > maxBin {
		return maxBin
	}
	return b
}

// ECDF returns the empirical CDF evaluated at each of the supplied
// thresholds: out[i] = fraction of xs >= thresholds[i] (the paper's
// Figure 7 accumulates from the right).
func ECDF(xs, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, t := range thresholds {
		// count of xs >= t
		idx := sort.SearchFloat64s(sorted, t)
		out[i] = float64(len(sorted)-idx) / float64(len(sorted))
	}
	return out
}

// Quantile returns the q-quantile (0<=q<=1) of xs by linear interpolation.
// It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive xs (0 if empty or
// any x <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Violin summarises a distribution the way the paper's Figure 8 violins
// are read: median, quartiles, extremes and mean.
type Violin struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes the violin summary of xs.
func Summarize(xs []float64) Violin {
	if len(xs) == 0 {
		return Violin{}
	}
	return Violin{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// String renders the violin compactly.
func (v Violin) String() string {
	return fmt.Sprintf("n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
		v.N, v.Min, v.Q1, v.Median, v.Q3, v.Max, v.Mean)
}

// KMeans clusters the rows of points into k clusters using Lloyd's
// algorithm with deterministic k-means++-style seeding driven by the given
// seed. It returns the assignment of each point and the centroids.
// It panics if k <= 0; if k >= len(points) each point gets its own cluster.
func KMeans(points [][]float64, k int, seed uint64, iters int) (assign []int, centroids [][]float64) {
	n := len(points)
	if k <= 0 {
		panic("stats: KMeans k must be positive")
	}
	assign = make([]int, n)
	if n == 0 {
		return assign, nil
	}
	if k >= n {
		centroids = make([][]float64, n)
		for i := range points {
			assign[i] = i
			centroids[i] = append([]float64(nil), points[i]...)
		}
		return assign, centroids
	}
	d := len(points[0])

	// Deterministic k-means++ seeding with an xorshift generator.
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	centroids = make([][]float64, 0, k)
	first := int(next() % uint64(n))
	centroids = append(centroids, append([]float64(nil), points[first]...))
	dist2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d2 := sqDist(p, c); d2 < best {
					best = d2
				}
			}
			dist2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[0]...))
			continue
		}
		x := float64(next()%1e9) / 1e9 * total
		pick := 0
		for i, w := range dist2 {
			x -= w
			if x <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}

	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bi := math.Inf(1), 0
			for j, c := range centroids {
				if d2 := sqDist(p, c); d2 < best {
					best, bi = d2, j
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		for j := range centroids {
			for x := range centroids[j] {
				centroids[j][x] = 0
			}
			counts[j] = 0
		}
		for i, p := range points {
			j := assign[i]
			counts[j]++
			for x := 0; x < d; x++ {
				centroids[j][x] += p[x]
			}
		}
		for j := range centroids {
			if counts[j] == 0 {
				continue // keep the stale centroid; empty cluster
			}
			for x := range centroids[j] {
				centroids[j][x] /= float64(counts[j])
			}
		}
		if !changed {
			break
		}
	}
	return assign, centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
