package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0)
	h.Add(1)
	h.Add(1)
	h.AddN(3, 4)
	if h.Total != 7 {
		t.Fatalf("total = %d, want 7", h.Total)
	}
	n := h.Normalized()
	want := []float64{1.0 / 7, 2.0 / 7, 0, 4.0 / 7}
	for i := range want {
		if math.Abs(n[i]-want[i]) > 1e-12 {
			t.Errorf("normalized[%d] = %v, want %v", i, n[i], want[i])
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(3)
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 1 || h.Counts[2] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	h := NewHistogram(3)
	for _, v := range h.Normalized() {
		if v != 0 {
			t.Fatal("empty histogram normalizes nonzero")
		}
	}
	if h.Mean() != 0 || h.PercentileBin(0.9) != 0 {
		t.Fatal("empty histogram stats nonzero")
	}
	h.Add(2)
	h.Reset()
	if h.Total != 0 || h.Counts[2] != 0 {
		t.Fatal("reset incomplete")
	}
	// Zero-bin histogram must not panic.
	z := NewHistogram(0)
	z.Add(1)
	if z.Total != 0 {
		t.Fatal("zero-bin histogram counted")
	}
}

func TestHistogramMeanAndPercentile(t *testing.T) {
	h := NewHistogram(10)
	h.AddN(2, 50)
	h.AddN(8, 50)
	if got := h.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := h.PercentileBin(0.5); got != 2 {
		t.Errorf("p50 bin = %d, want 2", got)
	}
	if got := h.PercentileBin(0.9); got != 8 {
		t.Errorf("p90 bin = %d, want 8", got)
	}
}

func TestLog2Bin(t *testing.T) {
	cases := []struct {
		d    uint64
		want int
	}{{0, 0}, {1, 0}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 20, 21}}
	for _, c := range cases {
		if got := Log2Bin(c.d, 30); got != c.want {
			t.Errorf("Log2Bin(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	if got := Log2Bin(1<<40, 16); got != 16 {
		t.Errorf("Log2Bin clamp = %d, want 16", got)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := ECDF(xs, []float64{0.5, 2, 3.5, 10})
	want := []float64{1, 0.75, 0.25, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("ECDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := ECDF(nil, []float64{1}); out[0] != 0 {
		t.Error("empty ECDF should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

func TestMeans(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean = %v, want 2", got)
	}
	if got := GeoMean([]float64{1, -1}); got != 0 {
		t.Errorf("geomean with nonpositive = %v, want 0", got)
	}
}

func TestViolin(t *testing.T) {
	v := Summarize([]float64{1, 2, 3, 4, 5})
	if v.Median != 3 || v.Min != 1 || v.Max != 5 || v.N != 5 {
		t.Errorf("violin = %+v", v)
	}
	if v.String() == "" {
		t.Error("violin string empty")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty violin nonzero")
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	// Two well-separated blobs must land in different clusters.
	rng := rand.New(rand.NewPCG(42, 1))
	var pts [][]float64
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{rng.Float64() * 0.1, rng.Float64() * 0.1})
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{10 + rng.Float64()*0.1, 10 + rng.Float64()*0.1})
	}
	assign, cent := KMeans(pts, 2, 7, 50)
	if len(cent) != 2 {
		t.Fatalf("centroids = %d, want 2", len(cent))
	}
	first := assign[0]
	for i := 1; i < 50; i++ {
		if assign[i] != first {
			t.Fatalf("blob 1 split between clusters")
		}
	}
	for i := 50; i < 100; i++ {
		if assign[i] == first {
			t.Fatalf("blobs merged into one cluster")
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	var pts [][]float64
	for i := 0; i < 40; i++ {
		pts = append(pts, []float64{rng.Float64(), rng.Float64()})
	}
	a1, _ := KMeans(pts, 4, 11, 30)
	a2, _ := KMeans(pts, 4, 11, 30)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed produced different assignments at %d", i)
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	assign, cent := KMeans(nil, 3, 1, 10)
	if len(assign) != 0 || cent != nil {
		t.Error("empty input should return empty")
	}
	pts := [][]float64{{1}, {2}}
	assign, cent = KMeans(pts, 5, 1, 10)
	if len(cent) != 2 || assign[0] == assign[1] {
		t.Error("k>n should give each point its own cluster")
	}
	// Identical points must not hang seeding.
	same := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	assign, _ = KMeans(same, 2, 9, 10)
	if len(assign) != 4 {
		t.Error("identical-point clustering failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("k<=0 should panic")
		}
	}()
	KMeans(pts, 0, 1, 1)
}

// Property: normalized histogram sums to ~1 whenever nonempty.
func TestQuickNormalizedSumsToOne(t *testing.T) {
	f := func(adds []uint8) bool {
		h := NewHistogram(8)
		for _, a := range adds {
			h.Add(int(a) % 8)
		}
		if h.Total == 0 {
			return true
		}
		s := 0.0
		for _, v := range h.Normalized() {
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ECDF evaluated at increasing thresholds is non-increasing.
func TestQuickECDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		th := []float64{-2, -1, 0, 1, 2}
		out := ECDF(xs, th)
		for i := 1; i < len(out); i++ {
			if out[i] > out[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PercentileBin is monotone in p.
func TestQuickPercentileBinMonotone(t *testing.T) {
	f := func(adds []uint8) bool {
		h := NewHistogram(16)
		for _, a := range adds {
			h.Add(int(a) % 16)
		}
		prev := -1
		for p := 0.1; p <= 1.0; p += 0.1 {
			b := h.PercentileBin(p)
			if b < prev {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: KMeans assignments always index valid centroids.
func TestQuickKMeansAssignmentsValid(t *testing.T) {
	f := func(seed uint64, n uint8, k uint8) bool {
		pts := make([][]float64, int(n%20)+1)
		state := seed | 1
		for i := range pts {
			state = state*6364136223846793005 + 1
			pts[i] = []float64{float64(state % 97), float64((state >> 8) % 89)}
		}
		kk := int(k%6) + 1
		assign, cents := KMeans(pts, kk, seed, 20)
		if len(assign) != len(pts) {
			return false
		}
		for _, a := range assign {
			if a < 0 || a >= len(cents) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
