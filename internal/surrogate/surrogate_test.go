package surrogate

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

func TestConfigNormalized(t *testing.T) {
	var zero Config
	if got, want := zero.Normalized(), DefaultConfig(); got != want {
		t.Errorf("zero config normalised to %+v, want defaults %+v", got, want)
	}
	c := Config{KeepFrac: 0.5, Seed: 7}.Normalized()
	if c.KeepFrac != 0.5 || c.Seed != 7 {
		t.Errorf("overrides lost: %+v", c)
	}
	if c.MinTrain != DefaultConfig().MinTrain {
		t.Errorf("unset field not defaulted: %+v", c)
	}
}

func TestShortlistAndAuditSizes(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		n, keep, audit int // audit computed on n-keep pruned
	}{
		{0, 0, 0},
		{1, 1, 0},
		{4, 1, 1},
		{10, 2, 1},
		{36, 8, 4},
		{100, 20, 10},
	}
	for _, tc := range cases {
		if got := cfg.ShortlistSize(tc.n); got != tc.keep {
			t.Errorf("ShortlistSize(%d) = %d, want %d", tc.n, got, tc.keep)
		}
		if got := cfg.AuditSize(tc.n - tc.keep); got != tc.audit {
			t.Errorf("AuditSize(%d) = %d, want %d", tc.n-tc.keep, got, tc.audit)
		}
		if k, a := cfg.ShortlistSize(tc.n), cfg.AuditSize(tc.n-tc.keep); k+a > tc.n && tc.n > 0 {
			t.Errorf("n=%d: shortlist %d + audit %d exceeds batch", tc.n, k, a)
		}
	}
}

func TestFeaturizeDim(t *testing.T) {
	if got := len(Featurize(trace.Stats{})); got != PhaseDim {
		t.Fatalf("Featurize length %d != PhaseDim %d", got, PhaseDim)
	}
	f := Featurize(trace.Stats{MemFrac: 0.3, FpFrac: 0.2, BranchDensity: 0.15,
		TakenFrac: 0.6, DataFootprintKB: 128, CodeFootprintKB: 8, DistinctBlocks: 40})
	for i, v := range f {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("feature %d = %v outside [0,1]", i, v)
		}
	}
}

// synthEff is a deterministic ground truth with an interior optimum along
// one parameter and a phase-dependent preference along another — the two
// structures the quadratic and interaction terms exist to capture.
func synthEff(phase []float64, cfg arch.Config) float64 {
	w := float64(arch.IndexOf(arch.Width, cfg[arch.Width])) / float64(arch.DomainSize(arch.Width)-1)
	l2 := float64(arch.IndexOf(arch.L2CacheKB, cfg[arch.L2CacheKB])) / float64(arch.DomainSize(arch.L2CacheKB)-1)
	y := -2*(w-0.5)*(w-0.5) + (2*phase[0]-1)*l2
	return math.Exp(y)
}

func trainSynthetic(m *Model, n int, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 1))
	phases := [][]float64{
		Featurize(trace.Stats{MemFrac: 0.45, TakenFrac: 0.5, DataFootprintKB: 512}),
		Featurize(trace.Stats{MemFrac: 0.05, FpFrac: 0.4, TakenFrac: 0.9, DataFootprintKB: 16}),
	}
	for i := 0; i < n; i++ {
		ph := phases[i%2]
		cfg := arch.Random(rng)
		m.Observe(ph, cfg, synthEff(ph, cfg))
	}
}

func TestModelRanksSynthetic(t *testing.T) {
	m := NewModel(PhaseDim, Config{})
	trainSynthetic(m, 300, 42)
	if err := m.Fit(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 0))
	ph := Featurize(trace.Stats{MemFrac: 0.45, TakenFrac: 0.5, DataFootprintKB: 512})
	cands := make([]arch.Config, 40)
	truth := make([]float64, len(cands))
	for i := range cands {
		cands[i] = arch.Random(rng)
		truth[i] = math.Log(synthEff(ph, cands[i]))
	}
	_, scores := m.Rank(ph, cands)
	if rho := Spearman(scores, truth); rho < 0.5 {
		t.Errorf("rank correlation on synthetic ground truth = %.3f, want >= 0.5", rho)
	}
}

func TestModelDeterministic(t *testing.T) {
	a := NewModel(PhaseDim, Config{})
	b := NewModel(PhaseDim, Config{})
	trainSynthetic(a, 120, 9)
	trainSynthetic(b, 120, 9)
	if err := a.Fit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 0))
	ph := Featurize(trace.Stats{MemFrac: 0.2, TakenFrac: 0.7, DataFootprintKB: 64})
	cands := make([]arch.Config, 25)
	for i := range cands {
		cands[i] = arch.Random(rng)
	}
	oa, sa := a.Rank(ph, cands)
	ob, sb := b.Rank(ph, cands)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("rank order differs at %d: %d vs %d", i, oa[i], ob[i])
		}
		if sa[i] != sb[i] {
			t.Fatalf("score %d differs: %v vs %v", i, sa[i], sb[i])
		}
	}
}

func TestRankTieBreaksOnIndex(t *testing.T) {
	m := NewModel(PhaseDim, Config{})
	trainSynthetic(m, 60, 5)
	if err := m.Fit(); err != nil {
		t.Fatal(err)
	}
	ph := Featurize(trace.Stats{MemFrac: 0.3, TakenFrac: 0.5})
	cfg := arch.Baseline()
	order, _ := m.Rank(ph, []arch.Config{cfg, cfg, cfg})
	for i, o := range order {
		if o != i {
			t.Fatalf("equal scores must keep index order, got %v", order)
		}
	}
}

func TestUnfittedModelIsNotReady(t *testing.T) {
	m := NewModel(PhaseDim, Config{})
	if m.Ready() {
		t.Fatal("empty model claims ready")
	}
	ph := Featurize(trace.Stats{})
	if p := m.Predict(ph, arch.Baseline()); !math.IsInf(p, -1) {
		t.Errorf("unfitted Predict = %v, want -Inf", p)
	}
	if err := m.Fit(); err == nil {
		t.Error("Fit with no observations must error")
	}
}

func TestCalibrationIsPrequential(t *testing.T) {
	m := NewModel(PhaseDim, Config{})
	if _, n := m.Calibration(); n != 0 {
		t.Fatal("calibration counted before any fit")
	}
	trainSynthetic(m, 80, 11)
	if _, n := m.Calibration(); n != 0 {
		t.Fatal("calibration counted before the first fit")
	}
	if err := m.Fit(); err != nil {
		t.Fatal(err)
	}
	trainSynthetic(m, 40, 12)
	mae, n := m.Calibration()
	if n != 40 {
		t.Fatalf("calibration n = %d, want 40 (post-fit observations only)", n)
	}
	if math.IsNaN(mae) || mae < 0 {
		t.Fatalf("calibration MAE = %v", mae)
	}
	// The synthetic target spans roughly [-1.5, 1.5] in log space; a
	// fitted model must do far better than the ~0.75 a constant would.
	if mae > 0.5 {
		t.Errorf("calibration MAE = %.3f, want < 0.5 on synthetic data", mae)
	}
}

func TestSpearman(t *testing.T) {
	if rho := Spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(rho-1) > 1e-12 {
		t.Errorf("perfect agreement: rho = %v", rho)
	}
	if rho := Spearman([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}); math.Abs(rho+1) > 1e-12 {
		t.Errorf("perfect disagreement: rho = %v", rho)
	}
	if rho := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); rho != 0 {
		t.Errorf("no variance: rho = %v, want 0", rho)
	}
	if rho := Spearman([]float64{1}, []float64{1}); rho != 0 {
		t.Errorf("single point: rho = %v, want 0", rho)
	}
	// Ties on one side: monotone apart from the tie, still positive.
	if rho := Spearman([]float64{1, 2, 2, 4}, []float64{1, 2, 3, 4}); rho <= 0.8 {
		t.Errorf("tied ranks: rho = %v, want > 0.8", rho)
	}
}
