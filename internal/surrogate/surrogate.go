// Package surrogate implements a cheap learned proxy for the exact
// simulator: a ridge-regression model over trace-derived phase statistics
// and normalised configuration parameters that predicts log
// energy-efficiency well enough to *rank* candidate configurations. The
// experiment harness (internal/experiment, WithSurrogate) uses it to prune
// the three-stage design-space search: the surrogate orders each candidate
// batch, only a top-K shortlist plus a seeded random audit slice is
// exact-simulated, and the audit results measure how much ranking quality
// the pruning cost (rank correlation, regret).
//
// The model is an accelerator, never an authority: its estimates must not
// enter the sample space, the memo table or any memoised experiment result
// — only exact simulator results do (see CLAUDE.md). Everything here is
// deterministic: training is incremental least squares (no stochastic
// optimiser), ranking ties break on index, and the only randomness — the
// audit draw — happens in the caller through a seeded math/rand/v2 PCG.
package surrogate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/trace"
)

// Config tunes the surrogate-guided pruning. The zero value means "use the
// defaults" field by field, so callers can override just one knob.
type Config struct {
	// KeepFrac is the fraction of each candidate batch that is
	// exact-simulated from the top of the surrogate's ranking.
	KeepFrac float64
	// MinKeep floors the shortlist so every batch contributes at least
	// this many exact results (and the incumbent search can always move).
	MinKeep int
	// AuditFrac is the fraction of the pruned remainder exact-simulated
	// anyway, as a seeded random audit slice. Audits keep the model
	// honest: they feed the rank-correlation and regret metrics and stop
	// a miscalibrated model from silently discarding good regions.
	AuditFrac float64
	// MinTrain is the number of exact observations required before the
	// model is allowed to prune; until then every candidate is simulated.
	MinTrain int
	// Refit re-solves the ridge system after this many new observations.
	Refit int
	// Lambda is the ridge strength, scaled by the observation count so
	// regularisation stays proportional to the Gram matrix.
	Lambda float64
	// Seed drives the audit draw; 0 derives it from the experiment seed.
	Seed uint64
}

// DefaultConfig returns the tuning used by cmd/report -surrogate and the
// bench harness's REPRO_SURROGATE mode.
func DefaultConfig() Config {
	return Config{
		KeepFrac:  0.2,
		MinKeep:   1,
		AuditFrac: 0.125,
		MinTrain:  10,
		Refit:     8,
		Lambda:    1e-2,
	}
}

// Normalized fills zero fields with their defaults.
func (c Config) Normalized() Config {
	d := DefaultConfig()
	if c.KeepFrac <= 0 || c.KeepFrac > 1 {
		c.KeepFrac = d.KeepFrac
	}
	if c.MinKeep <= 0 {
		c.MinKeep = d.MinKeep
	}
	if c.AuditFrac <= 0 || c.AuditFrac > 1 {
		c.AuditFrac = d.AuditFrac
	}
	if c.MinTrain <= 0 {
		c.MinTrain = d.MinTrain
	}
	if c.Refit <= 0 {
		c.Refit = d.Refit
	}
	if c.Lambda <= 0 {
		c.Lambda = d.Lambda
	}
	return c
}

// ShortlistSize returns how many of n ranked candidates are
// exact-simulated from the top of the ranking.
func (c Config) ShortlistSize(n int) int {
	c = c.Normalized()
	if n <= 0 {
		return 0
	}
	k := int(math.Ceil(c.KeepFrac * float64(n)))
	if k < c.MinKeep {
		k = c.MinKeep
	}
	if k > n {
		k = n
	}
	return k
}

// AuditSize returns how many of pruned candidates are exact-simulated as
// the audit slice.
func (c Config) AuditSize(pruned int) int {
	c = c.Normalized()
	if pruned <= 0 {
		return 0
	}
	k := int(math.Ceil(c.AuditFrac * float64(pruned)))
	if k > pruned {
		k = pruned
	}
	return k
}

// PhaseDim is the length of the phase feature vector Featurize produces.
const PhaseDim = 7

// Featurize maps a trace summary to the surrogate's phase feature vector:
// the workload-personality axes (memory pressure, FP share, branchiness)
// plus log-compressed footprints, all roughly in [0, 1] so the ridge
// penalty treats the dimensions evenly.
func Featurize(st trace.Stats) []float64 {
	return []float64{
		st.MemFrac,
		st.FpFrac,
		clamp01(4 * st.BranchDensity),
		st.TakenFrac,
		logNorm(st.DataFootprintKB, 4096),
		logNorm(st.CodeFootprintKB, 4096),
		logNorm(float64(st.DistinctBlocks), 4096),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// logNorm compresses v into [0, 1] on a log scale saturating at hi.
func logNorm(v, hi float64) float64 {
	if v <= 0 {
		return 0
	}
	return clamp01(math.Log2(1+v) / math.Log2(1+hi))
}

// Model predicts log energy-efficiency from (phase features, config) pairs
// by incremental ridge regression: Observe accumulates the normal
// equations, Fit solves them by Cholesky. The feature map is phase stats,
// normalised per-parameter domain indices, their squares (efficiency peaks
// in the interior of most domains — bigger structures buy IPS but charge
// energy), and phase x config interaction terms so rankings specialise per
// phase. Not safe for concurrent use; the experiment build drives it from
// one goroutine.
type Model struct {
	cfg      Config
	phaseDim int
	dim      int

	n    int       // observations accumulated
	gram []float64 // dim x dim, sum of x xT
	xty  []float64 // sum of x*y

	w    []float64 // solved weights; nil until the first successful Fit
	fitN int       // observations at the last Fit
	fits int

	// Prequential calibration: every observation made while the model is
	// fitted is first predicted, so the error is always out-of-fit.
	calibSum float64
	calibN   int

	feat []float64 // scratch feature buffer
}

// NewModel returns an empty model for the given phase-feature
// dimensionality (use PhaseDim with Featurize).
func NewModel(phaseDim int, cfg Config) *Model {
	if phaseDim <= 0 {
		phaseDim = PhaseDim
	}
	np := int(arch.NumParams)
	d := 1 + phaseDim + 2*np + phaseDim*np
	return &Model{
		cfg:      cfg.Normalized(),
		phaseDim: phaseDim,
		dim:      d,
		gram:     make([]float64, d*d),
		xty:      make([]float64, d),
		feat:     make([]float64, 0, d),
	}
}

// Config returns the model's normalised tuning.
func (m *Model) Config() Config { return m.cfg }

// features builds the joint feature vector into the scratch buffer.
func (m *Model) features(phase []float64, cfg arch.Config) []float64 {
	if len(phase) != m.phaseDim {
		panic(fmt.Sprintf("surrogate: phase vector has %d features, model wants %d", len(phase), m.phaseDim))
	}
	x := m.feat[:0]
	x = append(x, 1)
	x = append(x, phase...)
	var cf [arch.NumParams]float64
	for p := arch.Param(0); p < arch.NumParams; p++ {
		if n := arch.DomainSize(p); n > 1 {
			cf[p] = float64(arch.IndexOf(p, cfg[p])) / float64(n-1)
		}
	}
	for _, v := range cf {
		x = append(x, v)
	}
	for _, v := range cf {
		x = append(x, v*v)
	}
	for _, ph := range phase {
		for _, v := range cf {
			x = append(x, ph*v)
		}
	}
	m.feat = x
	return x
}

// logEff is the regression target: log efficiency spans the orders of
// magnitude between configurations far more evenly than raw ips^3/Watt.
func logEff(eff float64) float64 {
	if eff < 1e-300 {
		eff = 1e-300
	}
	return math.Log(eff)
}

// Observe accumulates one exact simulator result. Only exact results may
// be observed — the model must never train on its own estimates.
func (m *Model) Observe(phase []float64, cfg arch.Config, efficiency float64) {
	y := logEff(efficiency)
	x := m.features(phase, cfg)
	if m.w != nil {
		m.calibSum += math.Abs(m.predict(x) - y)
		m.calibN++
	}
	d := m.dim
	for i := 0; i < d; i++ {
		xi := x[i]
		m.xty[i] += xi * y
		row := m.gram[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] += xi * x[j]
		}
	}
	m.n++
}

// Observations returns how many exact results have been observed.
func (m *Model) Observations() int { return m.n }

// SinceFit returns how many observations arrived after the last Fit.
func (m *Model) SinceFit() int { return m.n - m.fitN }

// Fits returns how many times the ridge system has been solved.
func (m *Model) Fits() int { return m.fits }

// Ready reports whether the model has been fitted and may rank.
func (m *Model) Ready() bool { return m.w != nil }

// Calibration returns the prequential mean absolute error of the model's
// log-efficiency predictions (each observation after the first fit is
// predicted before it is trained on) and the number of such predictions.
func (m *Model) Calibration() (mae float64, n int) {
	if m.calibN == 0 {
		return 0, 0
	}
	return m.calibSum / float64(m.calibN), m.calibN
}

// Fit solves the ridge system (Gram + lambda*n*I) w = X^T y by Cholesky.
// With lambda > 0 the system is symmetric positive definite, so failure
// indicates numerical trouble; the previous weights (if any) are kept.
func (m *Model) Fit() error {
	if m.n == 0 {
		return fmt.Errorf("surrogate: fit with no observations")
	}
	d := m.dim
	a := make([]float64, d*d)
	copy(a, m.gram)
	ridge := m.cfg.Lambda * float64(m.n)
	for i := 0; i < d; i++ {
		a[i*d+i] += ridge
	}
	l, err := cholesky(a, d)
	if err != nil {
		return err
	}
	m.w = cholSolve(l, d, m.xty)
	m.fitN = m.n
	m.fits++
	return nil
}

// predict evaluates the fitted model on a feature vector.
func (m *Model) predict(x []float64) float64 {
	s := 0.0
	for i, wi := range m.w {
		s += wi * x[i]
	}
	return s
}

// Predict returns the predicted log efficiency of cfg on the phase.
// Callers must check Ready first; an unfitted model predicts -Inf.
func (m *Model) Predict(phase []float64, cfg arch.Config) float64 {
	if m.w == nil {
		return math.Inf(-1)
	}
	return m.predict(m.features(phase, cfg))
}

// Rank orders cfgs by predicted efficiency, best first, ties broken
// toward the lower index so the ordering is fully deterministic. It
// returns the candidate indices in rank order and the per-candidate
// predicted log efficiencies (indexed like cfgs, not like order).
func (m *Model) Rank(phase []float64, cfgs []arch.Config) (order []int, scores []float64) {
	scores = make([]float64, len(cfgs))
	for i, cfg := range cfgs {
		scores[i] = m.Predict(phase, cfg)
	}
	order = make([]int, len(cfgs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	return order, scores
}

// cholesky factors the symmetric positive definite matrix a (row-major,
// d x d) into lower-triangular L with a = L L^T.
func cholesky(a []float64, d int) ([]float64, error) {
	l := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*d+j]
			for k := 0; k < j; k++ {
				sum -= l[i*d+k] * l[j*d+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("surrogate: matrix not positive definite at %d", i)
				}
				l[i*d+i] = math.Sqrt(sum)
			} else {
				l[i*d+j] = sum / l[j*d+j]
			}
		}
	}
	return l, nil
}

// cholSolve solves L L^T x = b given the Cholesky factor.
func cholSolve(l []float64, d int, b []float64) []float64 {
	y := make([]float64, d)
	for i := 0; i < d; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*d+k] * y[k]
		}
		y[i] = sum / l[i*d+i]
	}
	x := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < d; k++ {
			sum -= l[k*d+i] * x[k]
		}
		x[i] = sum / l[i*d+i]
	}
	return x
}

// Spearman returns the Spearman rank correlation of a and b (ties get
// average ranks). It is the audit-quality metric: how well the
// surrogate's predicted ordering agrees with the exact one. Returns 0
// when either side has no variance or fewer than two points.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// ranks assigns 1-based ranks with ties averaged.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
