// Package fabric shards a dataset build across workers that share nothing
// but result-store directories — the "any fleet, minutes" half of the
// reproduction's scaling story.
//
// The unit of distribution is a contiguous window of the build's phase
// list (experiment.Scale.PhaseIDs order). That shape is forced by the
// search protocol: one seeded rng stream feeds the shared uniform sample
// and then every per-phase search in sequence, and the stage-2 neighbour
// draws depend on each phase's incumbent — so phase k's random draws
// depend on the *results* of phases 0..k-1. Splitting the stream would
// change what gets simulated and break the byte-identity contract with
// the plain sequential build. Instead, a shard worker runs the standard
// sequential protocol over phases [0, Hi): the prefix [0, Lo) replays
// warm from a store seeded with its predecessors' records (store hits are
// indistinguishable from fresh simulations to the protocol, per the store
// contract), so the worker pays fresh simulation only for its own window
// [Lo, Hi). Summed over shards, the fleet pays exactly the sequential
// build's search simulations — no unit simulated twice, none skipped.
//
// After the shards finish, their partial stores are merged into one
// canonical registry (store.Merge: CRC + SimVersion checked, identical
// duplicates collapsed, divergent ones fatal) and a normal full build
// runs warm against it, replaying byte-identically to the single-process
// sequential build: same Dataset.Digest, same manifest deterministic
// section, zero fresh search simulations.
//
// Every work unit a shard ultimately simulates is a (program, phase,
// config, interval) tuple; the config axis is discovered adaptively by
// stages 2 and 3, which is why specs name phase windows rather than
// enumerating tuples. Specs are self-validating: they embed a fingerprint
// of the resolved Scale, the shard count and store.SimVersion, so a
// worker handed a spec cut for a different configuration refuses to run.
package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/store"
)

// specVersion prefixes the spec wire form; bump when the encoding or the
// digest recipe changes.
const specVersion = "v1"

// ShardSpec names one shard of an n-way fabric build: the phase window
// [Lo, Hi) of the resolved scale's PhaseIDs list, plus a digest binding
// the spec to the exact configuration it was cut for.
type ShardSpec struct {
	Index  int // this shard's position, in [0, Shards)
	Shards int // total shards in the partition
	Lo, Hi int // phase window [Lo, Hi)

	// ScaleDigest fingerprints (resolved Scale, Shards, store.SimVersion).
	// Validate recomputes it, so a spec cannot silently run against a
	// different scale, seed or simulator version than it was cut for.
	ScaleDigest string
}

// Phases returns the number of phases in the shard's own window.
func (s ShardSpec) Phases() int { return s.Hi - s.Lo }

// String renders the spec in its wire form, "v1:INDEX/SHARDS:LO-HI:DIGEST"
// — what report -fabric logs and report -fabric-worker accepts.
func (s ShardSpec) String() string {
	return fmt.Sprintf("%s:%d/%d:%d-%d:%s", specVersion, s.Index, s.Shards, s.Lo, s.Hi, s.ScaleDigest)
}

// Parse decodes a spec from its wire form.
func Parse(text string) (ShardSpec, error) {
	var s ShardSpec
	bad := func(why string) (ShardSpec, error) {
		return s, fmt.Errorf("fabric: bad shard spec %q: %s", text, why)
	}
	parts := strings.Split(text, ":")
	if len(parts) != 4 {
		return bad("want v1:INDEX/SHARDS:LO-HI:DIGEST")
	}
	if parts[0] != specVersion {
		return bad("unknown spec version " + parts[0])
	}
	idx, n, ok := cutInts(parts[1], "/")
	if !ok || n < 1 || idx < 0 || idx >= n {
		return bad("bad INDEX/SHARDS")
	}
	lo, hi, ok := cutInts(parts[2], "-")
	if !ok || lo < 0 || hi <= lo {
		return bad("bad LO-HI window")
	}
	if len(parts[3]) != digestLen {
		return bad("bad digest")
	}
	s = ShardSpec{Index: idx, Shards: n, Lo: lo, Hi: hi, ScaleDigest: parts[3]}
	return s, nil
}

// cutInts splits "a<sep>b" into two ints.
func cutInts(text, sep string) (a, b int, ok bool) {
	as, bs, found := strings.Cut(text, sep)
	if !found {
		return 0, 0, false
	}
	a, errA := strconv.Atoi(as)
	b, errB := strconv.Atoi(bs)
	return a, b, errA == nil && errB == nil
}

// Validate checks that the spec was cut for exactly this scale (and this
// binary's store.SimVersion) and that its window fits the phase list.
func (s ShardSpec) Validate(sc experiment.Scale) error {
	if want := ScaleDigest(sc, s.Shards); s.ScaleDigest != want {
		return fmt.Errorf("fabric: shard spec %s was cut for a different configuration (spec digest %s, this scale/simulator is %s) — regenerate specs with report -fabric or fabric.Partition", s, s.ScaleDigest, want)
	}
	if total := len(sc.PhaseIDs()); s.Hi > total {
		return fmt.Errorf("fabric: shard spec %s window exceeds the scale's %d phases", s, total)
	}
	return nil
}

// Partition splits sc's phase list into n contiguous shard windows of
// near-equal size (the first total%n shards get one extra phase). The
// split is a pure function of (resolved scale, n) — any driver and any
// worker compute the same specs. n is clamped to [1, total phases].
func Partition(sc experiment.Scale, n int) []ShardSpec {
	sc = sc.Resolved()
	total := len(sc.PhaseIDs())
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	digest := ScaleDigest(sc, n)
	specs := make([]ShardSpec, n)
	base, rem := total/n, total%n
	lo := 0
	for k := range specs {
		size := base
		if k < rem {
			size++
		}
		specs[k] = ShardSpec{Index: k, Shards: n, Lo: lo, Hi: lo + size, ScaleDigest: digest}
		lo += size
	}
	return specs
}

const digestLen = 16

// ScaleDigest fingerprints the exact configuration a shard set belongs
// to: every resolved Scale field in a fixed canonical order, the shard
// count, and store.SimVersion. Two parties agree on the digest iff they
// would simulate the same work units under the same physics.
func ScaleDigest(sc experiment.Scale, n int) string {
	sc = sc.Resolved()
	h := sha256.New()
	io.WriteString(h, "repro.fabric.spec\x00")
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	u64(uint64(store.SimVersion))
	u64(uint64(n))
	u64(uint64(len(sc.Programs)))
	for _, p := range sc.Programs {
		u64(uint64(len(p)))
		io.WriteString(h, p)
	}
	u64(uint64(sc.PhasesPerProgram))
	u64(uint64(sc.IntervalInsts))
	u64(uint64(sc.WarmupInsts))
	u64(uint64(sc.UniformSamples))
	u64(uint64(sc.LocalSamples))
	u64(uint64(len(sc.SweepParams)))
	for _, p := range sc.SweepParams {
		u64(uint64(p))
	}
	u64(math.Float64bits(sc.GoodThreshold))
	u64(uint64(sc.SampledSets))
	u64(sc.Seed)
	return hex.EncodeToString(h.Sum(nil))[:digestLen]
}

// ShardResult summarises one executed shard.
type ShardResult struct {
	Spec            ShardSpec
	Dir             string      // the shard's private store directory
	FreshSearchSims uint64      // exact search simulations this shard paid
	Store           store.Stats // the shard store's final counters
}

// RunShard validates the spec, opens the shard's private store at dir and
// runs the sequential search protocol through the end of the shard's
// window (experiment.WithSearchLimit). With the prefix seeded into the
// store (AdoptSegment), the shard pays fresh simulation only for its own
// window; cold, it recomputes the prefix — correct either way, the seed
// is purely an optimisation. Extra build options (surrogate, workers)
// pass through and keep their own contracts.
func RunShard(ctx context.Context, sc experiment.Scale, spec ShardSpec, dir string, opts ...experiment.Option) (ShardResult, error) {
	res := ShardResult{Spec: spec, Dir: dir}
	sc = sc.Resolved()
	if err := spec.Validate(sc); err != nil {
		return res, err
	}
	sp := obs.DefaultTracer().Start(fmt.Sprintf("fabric.shard %d/%d", spec.Index, spec.Shards)).
		SetArg("lo", strconv.Itoa(spec.Lo)).
		SetArg("hi", strconv.Itoa(spec.Hi))
	defer sp.Finish()
	st, err := store.Open(dir)
	if err != nil {
		return res, err
	}
	before := experiment.SearchSimCount()
	buildOpts := append(append([]experiment.Option{}, opts...),
		experiment.WithStore(st), experiment.WithSearchLimit(spec.Hi))
	if _, err := experiment.Build(ctx, sc, buildOpts...); err != nil {
		st.Close()
		return res, fmt.Errorf("fabric: shard %d/%d: %w", spec.Index, spec.Shards, err)
	}
	res.FreshSearchSims = experiment.SearchSimCount() - before
	res.Store = st.Stats()
	obsShards.Inc()
	obsShardSearchSims.Add(res.FreshSearchSims)
	return res, st.Close()
}

// DriveResult summarises a Drive call.
type DriveResult struct {
	Specs           []ShardSpec
	Shards          []ShardResult
	FreshSearchSims uint64 // total across shards == the sequential build's
	Merge           store.MergeStats
}

// Drive executes an n-shard fabric build and merges the results into
// dstDir — the single-host, in-process-sequential form of the fabric (a
// fleet would run `report -fabric-worker <spec>` per shard on separate
// hosts and `storectl merge` afterwards; the protocol is identical, the
// parties share nothing but store directories). Shard k runs in
// dstDir/fabric/shard-NNN, seeded with the head logs of shards 0..k-1 —
// and dstDir's own head, if it exists — adopted as sealed segments so the
// prefix replays warm. Afterwards store.Merge folds every shard store
// (plus dstDir's prior records) into dstDir, ready for the warm final
// build.
func Drive(ctx context.Context, sc experiment.Scale, n int, dstDir string, opts ...experiment.Option) (*DriveResult, error) {
	sc = sc.Resolved()
	specs := Partition(sc, n)
	dr := &DriveResult{Specs: specs}
	sp := obs.DefaultTracer().Start("fabric.drive").
		SetArg("shards", strconv.Itoa(len(specs)))
	defer sp.Finish()

	var seeds []string
	if head := store.HeadLog(dstDir); fileExists(head) {
		seeds = append(seeds, head)
	}
	dirs := make([]string, 0, len(specs))
	for k, spec := range specs {
		dir := filepath.Join(dstDir, "fabric", fmt.Sprintf("shard-%03d", k))
		for _, seed := range seeds {
			if _, err := store.AdoptSegment(dir, seed); err != nil {
				return dr, err
			}
		}
		res, err := RunShard(ctx, sc, spec, dir, opts...)
		if err != nil {
			return dr, err
		}
		dr.Shards = append(dr.Shards, res)
		dr.FreshSearchSims += res.FreshSearchSims
		seeds = append(seeds, store.HeadLog(dir))
		dirs = append(dirs, dir)
	}
	ms, err := store.Merge(dstDir, dirs...)
	if err != nil {
		return dr, err
	}
	dr.Merge = ms
	obsDrives.Inc()
	return dr, nil
}

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
