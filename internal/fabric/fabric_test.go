package fabric

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/store"
)

func TestPartitionCoversAllPhases(t *testing.T) {
	sc := experiment.TestScale()
	total := len(sc.PhaseIDs())
	for _, n := range []int{1, 2, 3, 8, 100} {
		specs := Partition(sc, n)
		want := n
		if want > total {
			want = total // clamped: never more shards than phases
		}
		if len(specs) != want {
			t.Fatalf("Partition(n=%d) produced %d specs, want %d", n, len(specs), want)
		}
		lo := 0
		for k, s := range specs {
			if s.Index != k || s.Shards != len(specs) {
				t.Fatalf("n=%d shard %d: Index/Shards = %d/%d", n, k, s.Index, s.Shards)
			}
			if s.Lo != lo {
				t.Fatalf("n=%d shard %d: window starts at %d, want contiguous %d", n, k, s.Lo, lo)
			}
			if s.Phases() < total/len(specs) || s.Phases() > total/len(specs)+1 {
				t.Fatalf("n=%d shard %d: %d phases, want balanced around %d", n, k, s.Phases(), total/len(specs))
			}
			if err := s.Validate(sc); err != nil {
				t.Fatalf("n=%d shard %d: Validate: %v", n, k, err)
			}
			lo = s.Hi
		}
		if lo != total {
			t.Fatalf("n=%d: windows end at %d, want %d", n, lo, total)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	sc := experiment.TestScale()
	for _, spec := range Partition(sc, 3) {
		got, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec.String(), err)
		}
		if got != spec {
			t.Fatalf("round trip: %+v != %+v", got, spec)
		}
	}
	for _, bad := range []string{
		"",
		"v1:0/2:0-4",                        // missing digest
		"v2:0/2:0-4:0123456789abcdef",       // unknown version
		"v1:2/2:0-4:0123456789abcdef",       // index out of range
		"v1:0/2:4-4:0123456789abcdef",       // empty window
		"v1:0/2:0-4:short",                  // bad digest length
		"v1:x/2:0-4:0123456789abcdef",       // non-numeric
		"v1:0/2:0-4:0123456789abcdef:extra", // trailing part
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateRejectsWrongScale(t *testing.T) {
	sc := experiment.TestScale()
	spec := Partition(sc, 2)[0]
	other := sc
	other.Seed = sc.Seed + 1
	err := spec.Validate(other)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("Validate against a different seed: err = %v, want configuration mismatch", err)
	}
	// A window beyond the phase list is rejected even with the right digest.
	big := spec
	big.Hi = len(sc.PhaseIDs()) + 1
	if err := big.Validate(sc); err == nil {
		t.Fatal("Validate accepted a window past the phase list")
	}
}

// TestShardedBuildIdentity is the package's tentpole contract: an n-way
// fabric build (shards + merge + warm final build) must reproduce the
// plain sequential build exactly — same Dataset.Digest, the fleet paying
// in total exactly the sequential build's search simulations, and the
// final warm build paying zero.
func TestShardedBuildIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full TestScale builds")
	}
	sc := experiment.TestScale()
	ctx := context.Background()

	seqDir := t.TempDir()
	seqStore, err := store.Open(seqDir)
	if err != nil {
		t.Fatal(err)
	}
	before := experiment.SearchSimCount()
	seq, err := experiment.Build(ctx, sc, experiment.WithStore(seqStore))
	if err != nil {
		t.Fatal(err)
	}
	seqSims := experiment.SearchSimCount() - before
	if err := seqStore.Close(); err != nil {
		t.Fatal(err)
	}
	if seqSims == 0 {
		t.Fatal("sequential build paid no search sims; the test cannot discriminate")
	}

	dstDir := filepath.Join(t.TempDir(), "fabric-dst")
	dr, err := Drive(ctx, sc, 3, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Shards) != 3 {
		t.Fatalf("Drive ran %d shards, want 3", len(dr.Shards))
	}
	if dr.FreshSearchSims != seqSims {
		t.Fatalf("fabric paid %d fresh search sims, sequential build paid %d — units were re-simulated or skipped", dr.FreshSearchSims, seqSims)
	}
	// Each shard must have paid something: a zero shard means its window
	// replayed entirely from the seed, i.e. the partition is degenerate.
	for _, sh := range dr.Shards {
		if sh.FreshSearchSims == 0 {
			t.Fatalf("shard %d/%d paid no fresh search sims", sh.Spec.Index, sh.Spec.Shards)
		}
	}

	merged, err := store.Open(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	before = experiment.SearchSimCount()
	warm, err := experiment.Build(ctx, sc, experiment.WithStore(merged))
	if err != nil {
		t.Fatal(err)
	}
	warmSims := experiment.SearchSimCount() - before
	if err := merged.Close(); err != nil {
		t.Fatal(err)
	}
	if warmSims != 0 {
		t.Fatalf("warm final build paid %d fresh search sims, want 0 — the merged registry is missing records", warmSims)
	}
	if got, want := warm.Digest(), seq.Digest(); got != want {
		t.Fatalf("warm fabric build digest %s != sequential build digest %s", got, want)
	}
	if got, want := warm.SimCount(), seq.SimCount(); got != want {
		t.Fatalf("warm fabric build memoised %d results, sequential build %d", got, want)
	}
}

// TestDriveSeedsLaterShards checks the prefix-replay optimisation is
// actually wired: shard k's directory holds adopted segments from its
// predecessors.
func TestDriveSeedsLaterShards(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full fabric build")
	}
	sc := experiment.TestScale()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := Drive(context.Background(), sc, 2, dstDir); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dstDir, "fabric", "shard-001", "segment-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("shard-001 holds %d adopted segments, want 1 (shard-000's head)", len(segs))
	}
	if _, err := os.Stat(store.HeadLog(dstDir)); err != nil {
		t.Fatalf("merged destination head log: %v", err)
	}
}
