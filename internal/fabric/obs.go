package fabric

import "repro/internal/obs"

// Process-wide fabric series (obs.DefaultRegistry). Write-only telemetry:
// nothing in the fabric protocol reads these back, and none of them may
// influence partitioning or merging — shard specs are pure functions of
// (Scale, n) and merges are pure functions of their inputs.
var (
	obsShards = obs.DefaultRegistry().Counter("repro_fabric_shards_total",
		"Fabric shard builds executed.")
	obsShardSearchSims = obs.DefaultRegistry().Counter("repro_fabric_shard_search_sims_total",
		"Fresh search simulations paid across fabric shard builds.")
	obsDrives = obs.DefaultRegistry().Counter("repro_fabric_drives_total",
		"Fabric driver runs (shards + merge) completed.")
)
