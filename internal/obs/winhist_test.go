package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func newTestHist() *WindowedHistogram {
	return NewWindowedHistogram(1e-6, 10, 16, time.Minute, 4)
}

// TestWindowedHistogramBucketMath asserts the exact log-linear layout:
// indices are monotone in the value, bucket upper bounds bracket the
// values that land in them, and boundary values land in the inclusive
// bucket.
func TestWindowedHistogramBucketMath(t *testing.T) {
	h := newTestHist()
	prev := -1
	for _, v := range []float64{0, 1e-7, 1e-6, 1.5e-6, 2e-6, 1e-4, 0.003, 0.5, 9.99, 10, 11} {
		idx := h.bucketIndex(v)
		if idx < prev {
			t.Errorf("bucketIndex not monotone: v=%g idx=%d after idx=%d", v, idx, prev)
		}
		prev = idx
		if v > h.min && v < h.max {
			ub := h.upperBound(idx)
			if v > ub {
				t.Errorf("v=%g above its bucket bound %g (idx %d)", v, ub, idx)
			}
			if idx > 0 && v <= h.upperBound(idx-1) {
				t.Errorf("v=%g at or below previous bound %g (idx %d)", v, h.upperBound(idx-1), idx)
			}
		}
	}
	// Relative bucket width is bounded by 1/sub: upper/lower <= 1+1/sub
	// for every finite bucket.
	for idx := 2; idx < h.nb-1; idx++ {
		lo, hi := h.upperBound(idx-1), h.upperBound(idx)
		if ratio := hi / lo; ratio > 1+1.0/float64(h.sub)+1e-12 {
			t.Errorf("bucket %d too wide: %g/%g = %g", idx, hi, lo, ratio)
		}
	}
}

// TestWindowedHistogramEdgeObservations covers the contract for odd
// inputs: NaN is dropped, +Inf clamps to the overflow bucket, -Inf and
// negatives clamp to the underflow bucket.
func TestWindowedHistogramEdgeObservations(t *testing.T) {
	h := newTestHist()
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Errorf("NaN was counted: count=%d", h.Count())
	}
	h.Observe(math.Inf(1))
	if got := h.Quantile(1); got != h.max {
		t.Errorf("+Inf quantile = %g, want clamp to max %g", got, h.max)
	}
	h.Observe(math.Inf(-1))
	h.Observe(-3)
	if got := h.Quantile(0); got != h.min {
		t.Errorf("-Inf/negative quantile = %g, want clamp to min %g", got, h.min)
	}
	if h.Count() != 3 || h.TotalCount() != 3 {
		t.Errorf("count=%d total=%d, want 3/3", h.Count(), h.TotalCount())
	}
}

// TestWindowedHistogramEmptyWindow asserts quantiles of an empty window
// are 0, including after rotation expires every observation.
func TestWindowedHistogramEmptyWindow(t *testing.T) {
	h := newTestHist()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	// Fill, then advance the fake clock past the whole window: the ring
	// must be clean again while the all-time counts survive.
	var now int64
	h.clock = func() int64 { return now }
	h.lastRot.Store(0)
	h.Observe(0.001)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	now = int64(2 * time.Minute)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("expired window Quantile = %g, want 0", got)
	}
	if h.Count() != 0 || h.TotalCount() != 1 {
		t.Errorf("after expiry count=%d total=%d, want 0/1", h.Count(), h.TotalCount())
	}
}

// TestWindowedHistogramQuantileMonotone asserts Quantile is monotone
// non-decreasing in q over a spread of observations.
func TestWindowedHistogramQuantileMonotone(t *testing.T) {
	h := newTestHist()
	v := 1.1e-6
	for i := 0; i < 500; i++ {
		h.Observe(v)
		v *= 1.03
		if v > 9 {
			v = 1.1e-6
		}
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g", q, got, prev)
		}
		prev = got
	}
	qs := h.Quantiles(0.5, 0.99, 0.999)
	if qs[0] > qs[1] || qs[1] > qs[2] {
		t.Errorf("Quantiles snapshot not monotone: %v", qs)
	}
}

// TestWindowedHistogramExactQuantiles checks the quantile values
// themselves on a known multiset: ranks resolve to the upper bound of the
// bucket holding them.
func TestWindowedHistogramExactQuantiles(t *testing.T) {
	h := newTestHist()
	// 9 observations of 1ms, 1 observation of 1s.
	for i := 0; i < 9; i++ {
		h.Observe(0.001)
	}
	h.Observe(1.0)
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if p50 != h.upperBound(h.bucketIndex(0.001)) {
		t.Errorf("p50 = %g, want the 1ms bucket bound", p50)
	}
	if p90 != p50 {
		t.Errorf("p90 = %g, want same bucket as p50 (rank 9 of 10)", p90)
	}
	if p99 != h.upperBound(h.bucketIndex(1.0)) {
		t.Errorf("p99 = %g, want the 1s bucket bound", p99)
	}
	if p50 > 0.001*(1+1.0/16)+1e-15 || p50 < 0.001 {
		t.Errorf("p50 = %g outside the 1ms bucket error bound", p50)
	}
}

// TestWindowedHistogramConcurrent hammers Observe and the read side from
// many goroutines — exercised under -race by scripts/verify.sh.
func TestWindowedHistogramConcurrent(t *testing.T) {
	h := NewWindowedHistogram(1e-6, 10, 16, 10*time.Millisecond, 4)
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100+1) * 1e-5)
				if i%200 == 0 {
					_ = h.Quantile(0.99)
					_ = h.Count()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.TotalCount(); got != workers*per {
		t.Errorf("total count = %d, want %d", got, workers*per)
	}
}
