// Package obs is the repository's unified observability layer: a metrics
// registry (atomic counters, gauges and histograms with Prometheus text
// exposition), a deterministic span tracer (span ordering and hierarchy
// are as deterministic as the seeded pipeline that produces them; only
// wall-clock durations vary run to run), shared structured-logging setup
// on log/slog, and a throttled progress/ETA reporter for the long
// experiment runs.
//
// Everything is stdlib-only and safe for concurrent use. The simulation,
// training and serving subsystems register process-wide series into
// DefaultRegistry and emit spans through DefaultTracer; cmd/report exports
// the spans as Chrome trace_event JSON (-trace), and cmd/adaptd exposes
// the registry at /metrics and /debug/vars and the span snapshot at
// /debug/trace.
//
// Determinism contract: span names, arguments, ordering and hierarchy
// must be derived only from seeded state, never from clocks or
// durations — Tracer.WriteTree exists so tests can assert two seeded runs
// produce byte-identical span trees. Durations are attached to spans for
// the Chrome export but must never flow into memoised experiment results.
package obs

var (
	defaultRegistry = NewRegistry()
	defaultTracer   = NewTracer()
)

// DefaultRegistry returns the process-wide metrics registry that
// instrumented packages (cpu, experiment, phase, serve) register into.
func DefaultRegistry() *Registry { return defaultRegistry }

// DefaultTracer returns the process-wide tracer. It is disabled until a
// command opts in (cmd/report -trace, cmd/adaptd -debug); while disabled,
// Start returns a shared no-op span and costs one atomic load.
func DefaultTracer() *Tracer { return defaultTracer }
