package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full Prometheus text exposition: family
// ordering (sorted by name), vec child ordering (sorted by label values),
// HELP and label-value escaping, and histogram le buckets with the
// trailing +Inf, sum and count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_runs_total", "Runs.").Add(7)
	r.Gauge("test_temperature", "Degrees.").Set(-2.5)
	r.GaugeFunc("test_cache_entries", "Entries now.", func() float64 { return 3 })

	v := r.CounterVec("test_requests_total", "Requests by path and code.", "path", "code")
	v.With("/a", "200").Add(2)
	v.With("/a", "404").Inc()
	v.With("/b", "200").Add(5)

	esc := r.CounterVec("test_escape_total", "Weird help \\ with\nnewline", "path")
	esc.With("he\"llo\\wor\nld").Inc()

	// Binary-exact values so %g output is stable; 0.5 lands in the
	// le="0.5" bucket (le is inclusive).
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.25, 0.5, 2})
	for _, x := range []float64{0.125, 0.5, 1, 4} {
		h.Observe(x)
	}

	want := `# HELP test_cache_entries Entries now.
# TYPE test_cache_entries gauge
test_cache_entries 3
# HELP test_escape_total Weird help \\ with\nnewline
# TYPE test_escape_total counter
test_escape_total{path="he\"llo\\wor\nld"} 1
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.25"} 1
test_latency_seconds_bucket{le="0.5"} 2
test_latency_seconds_bucket{le="2"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.625
test_latency_seconds_count 4
# HELP test_requests_total Requests by path and code.
# TYPE test_requests_total counter
test_requests_total{path="/a",code="200"} 2
test_requests_total{path="/a",code="404"} 1
test_requests_total{path="/b",code="200"} 5
# HELP test_runs_total Runs.
# TYPE test_runs_total counter
test_runs_total 7
# HELP test_temperature Degrees.
# TYPE test_temperature gauge
test_temperature -2.5
`
	if got := r.Text(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// A second render must be byte-identical (stable ordering).
	if got2 := r.Text(); got2 != r.Text() {
		t.Error("exposition not stable across renders")
		_ = got2
	}
}

func TestRegistrationIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "X.")
	c1.Inc()
	if c2 := r.Counter("x_total", "X again."); c2 != c1 {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "wrong kind")
}

func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "H.", []float64{1, 10})
	h.Observe(1)    // le="1" (inclusive)
	h.Observe(10.5) // +Inf
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	text := r.Text()
	for _, want := range []string{`h_bucket{le="1"} 1`, `h_bucket{le="10"} 1`, `h_bucket{le="+Inf"} 2`} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(4)
	r.CounterVec("b_total", "B.", "k").With("v").Inc()
	r.Histogram("c_seconds", "C.", []float64{1}).Observe(0.5)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid JSON %s: %v", data, err)
	}
	if out["a_total"].(float64) != 4 {
		t.Errorf("a_total = %v", out["a_total"])
	}
	if out["b_total"].(map[string]any)["k=v"].(float64) != 1 {
		t.Errorf("b_total = %v", out["b_total"])
	}
	if out["c_seconds"].(map[string]any)["count"].(float64) != 1 {
		t.Errorf("c_seconds = %v", out["c_seconds"])
	}
}

// TestJSONGolden pins the full JSON exposition bytes: family ordering
// (map keys sorted by encoding/json), vec children as flat label=value
// keys, and histogram buckets as a numerically ordered cumulative array
// ending at +Inf. The old map-of-buckets form string-sorted its keys
// ("0.0001" before "1e-05") and omitted +Inf; this golden locks the
// repaired shape and any map-iteration nondeterminism would flake it.
func TestJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_runs_total", "Runs.").Add(7)
	r.Gauge("b_temperature", "Degrees.").Set(-2.5)
	r.GaugeFunc("c_entries", "Entries.", func() float64 { return 3 })
	v := r.CounterVec("d_requests_total", "Requests.", "path", "code")
	v.With("/a", "200").Add(2)
	v.With("/a", "404").Inc()
	// Bucket bounds chosen so %g renders cross a string-sort boundary:
	// numerically 1e-05 < 0.0001 but "0.0001" < "1e-05" as strings.
	h := r.Histogram("e_latency_seconds", "Latency.", []float64{1e-5, 1e-4, 0.5})
	for _, x := range []float64{1e-6, 2e-4, 0.25, 4} {
		h.Observe(x)
	}
	want := `{"a_runs_total":7,"b_temperature":-2.5,"c_entries":3,` +
		`"d_requests_total":{"path=/a,code=200":2,"path=/a,code=404":1},` +
		`"e_latency_seconds":{"buckets":[{"le":"1e-05","count":1},{"le":"0.0001","count":1},` +
		`{"le":"0.5","count":3},{"le":"+Inf","count":4}],"count":4,"sum":4.250201}}`
	got, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("JSON snapshot mismatch:\n got %s\nwant %s", got, want)
	}
	got2, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(got) {
		t.Error("JSON snapshot not stable across renders")
	}
}

// TestConcurrentMetricUse hammers every metric kind from many goroutines
// while rendering — exercised under -race by scripts/verify.sh.
func TestConcurrentMetricUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	v := r.CounterVec("v_total", "V.", "id")
	h := r.Histogram("h_seconds", "H.", []float64{0.25, 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(0.5)
				v.With(string(rune('a' + w%3))).Inc()
				h.Observe(float64(i%3) / 2)
				if i%100 == 0 {
					_ = r.Text()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Errorf("counter = %d, want %d", c.Value(), 8*500)
	}
	if g.Value() != 8*500*0.5 {
		t.Errorf("gauge = %v, want %v", g.Value(), 8*500*0.5)
	}
	if h.Count() != 8*500 {
		t.Errorf("histogram count = %d, want %d", h.Count(), 8*500)
	}
	var vecTotal uint64
	for _, id := range []string{"a", "b", "c"} {
		vecTotal += v.With(id).Value()
	}
	if vecTotal != 8*500 {
		t.Errorf("vec total = %d, want %d", vecTotal, 8*500)
	}
}
