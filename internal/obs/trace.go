package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanLimit caps the spans a tracer retains; starts beyond it are
// counted as dropped rather than growing memory without bound (adaptd's
// per-request spans under -debug would otherwise accumulate forever).
const DefaultSpanLimit = 1 << 16

// Span is one traced region. Its name, arguments, ordering and hierarchy
// are deterministic for a seeded run; only the wall-clock duration varies,
// and the duration must never flow into memoised experiment results.
type Span struct {
	tracer   *Tracer
	id       int
	parent   int // index into tracer.spans, -1 for roots
	name     string
	args     [][2]string
	detached bool
	start    time.Time
	dur      time.Duration
	finished bool
}

// noopSpan is returned while the tracer is disabled; all methods no-op.
var noopSpan = &Span{}

// SetArg attaches a key=value annotation. Values must be deterministic
// (counts, names, configs — never times or durations). Returns the span
// for chaining.
func (s *Span) SetArg(k, v string) *Span {
	if s.tracer == nil {
		return s
	}
	s.tracer.mu.Lock()
	s.args = append(s.args, [2]string{k, v})
	s.tracer.mu.Unlock()
	return s
}

// Finish closes the span, recording its wall-clock duration and popping
// it from the tracer's open-span stack.
func (s *Span) Finish() {
	if s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.finished {
		return
	}
	s.finished = true
	s.dur = time.Since(s.start)
	if s.detached {
		return
	}
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
}

// Tracer records spans. Disabled by default: Start then costs one atomic
// load and returns a shared no-op span. The sim -> train pipeline is
// single-goroutine, so implicit parenting via an open-span stack yields a
// deterministic tree; concurrent callers (the serving handlers) use
// StartDetached, which never touches the stack.
type Tracer struct {
	enabled atomic.Bool
	limit   int

	mu      sync.Mutex
	epoch   time.Time
	spans   []*Span
	stack   []*Span
	dropped uint64
}

// NewTracer returns a disabled tracer with the default span limit.
func NewTracer() *Tracer { return &Tracer{limit: DefaultSpanLimit} }

// Enable turns span recording on (idempotent).
func (t *Tracer) Enable() {
	t.mu.Lock()
	if t.epoch.IsZero() {
		t.epoch = time.Now()
	}
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable turns span recording off; recorded spans are retained.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Reset discards all recorded spans and restarts the epoch.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans, t.stack, t.dropped = nil, nil, 0
	t.epoch = time.Now()
	t.mu.Unlock()
}

// start records a new span with the given detachment.
func (t *Tracer) start(name string, detached bool) *Span {
	if !t.enabled.Load() {
		return noopSpan
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.limit {
		t.dropped++
		return noopSpan
	}
	s := &Span{tracer: t, id: len(t.spans), parent: -1, name: name, detached: detached, start: time.Now()}
	if !detached && len(t.stack) > 0 {
		s.parent = t.stack[len(t.stack)-1].id
	}
	t.spans = append(t.spans, s)
	if !detached {
		t.stack = append(t.stack, s)
	}
	return s
}

// Start opens a span as a child of the innermost open span (pipeline
// stages; single-goroutine callers only).
func (t *Tracer) Start(name string) *Span { return t.start(name, false) }

// StartDetached opens a root span that never joins the parent stack —
// safe for concurrent callers like HTTP handlers.
func (t *Tracer) StartDetached(name string) *Span { return t.start(name, true) }

// SpanCount returns the number of recorded spans.
func (t *Tracer) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded over the limit.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one Chrome trace_event ("X" = complete span; timestamps
// and durations in microseconds).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome writes the recorded spans as Chrome trace_event JSON
// (open with chrome://tracing or https://ui.perfetto.dev). Stack spans
// render on tid 1, detached (request) spans on tid 2; unfinished spans
// extend to the snapshot instant.
func (t *Tracer) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	now := time.Now()
	events := make([]chromeEvent, 0, len(t.spans)+1)
	for _, s := range t.spans {
		dur := s.dur
		if !s.finished {
			dur = now.Sub(s.start)
		}
		ev := chromeEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   float64(s.start.Sub(t.epoch).Nanoseconds()) / 1e3,
			Dur:  float64(dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  1,
		}
		if s.detached {
			ev.Tid = 2
		}
		if len(s.args) > 0 {
			ev.Args = map[string]string{}
			for _, kv := range s.args {
				ev.Args[kv[0]] = kv[1]
			}
		}
		events = append(events, ev)
	}
	if t.dropped > 0 {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("obs: %d spans dropped over limit", t.dropped),
			Ph:   "X", Ts: float64(now.Sub(t.epoch).Nanoseconds()) / 1e3, Pid: 1, Tid: 1,
		})
	}
	t.mu.Unlock()

	data, err := json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteTree writes the span hierarchy as indented text with names and
// args but no timestamps or durations — byte-identical across seeded runs
// of the same workload, which the determinism tests assert.
func (t *Tracer) WriteTree(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	children := make(map[int][]*Span, len(t.spans))
	var roots []*Span
	for _, s := range t.spans {
		if s.parent < 0 {
			roots = append(roots, s)
		} else {
			children[s.parent] = append(children[s.parent], s)
		}
	}
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fmt.Fprint(w, strings.Repeat("  ", depth), s.name)
		for _, kv := range s.args {
			fmt.Fprintf(w, " %s=%s", kv[0], kv[1])
		}
		fmt.Fprintln(w)
		for _, c := range children[s.id] {
			walk(c, depth+1)
		}
	}
	for _, s := range roots {
		walk(s, 0)
	}
	if t.dropped > 0 {
		fmt.Fprintf(w, "(dropped %d spans)\n", t.dropped)
	}
}

// Tree returns WriteTree's output as a string.
func (t *Tracer) Tree() string {
	var b strings.Builder
	t.WriteTree(&b)
	return b.String()
}
