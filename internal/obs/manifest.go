package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Manifest is a machine-readable run record with two strictly separated
// sections. Deterministic holds everything a replay of the same
// configuration must reproduce byte-for-byte: scale, seeds, flags,
// store.SimVersion, dataset digests, span-tree digest and per-stage span
// counts. Timing holds informational wall-clock measurements (per-stage
// seconds, ns/inst, store bytes/s) that — per the CLAUDE.md telemetry
// contract — must never feed back into any decision or memoised result.
// cmd/obsdiff compares two manifests: deterministic sections must match
// exactly, timing sections get a benchdiff-style regression gate.
//
// Values that depend on result-store warm state (store hits/misses, paid
// simulation counts) belong in Timing even though they are integers:
// cold and warm replays of the same configuration must produce identical
// Deterministic sections, and warm runs pay for fewer simulations by
// design.
type Manifest struct {
	Tool          string             `json:"tool"`
	Deterministic map[string]any     `json:"deterministic"`
	Timing        map[string]float64 `json:"timing"`
}

// NewManifest returns an empty manifest for the named tool.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:          tool,
		Deterministic: map[string]any{},
		Timing:        map[string]float64{},
	}
}

// SetDet records one deterministic field. The value must be a pure
// function of the run's configuration — never of wall-clock time, store
// warm state, or map iteration order.
func (m *Manifest) SetDet(key string, v any) { m.Deterministic[key] = v }

// SetTiming records one informational timing field.
func (m *Manifest) SetTiming(key string, v float64) { m.Timing[key] = v }

// WriteFile writes the manifest as indented JSON (map keys sorted by
// encoding/json, so the bytes themselves are deterministic given the
// values).
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}

// LoadManifest reads a manifest written by WriteFile.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parsing manifest %s: %w", path, err)
	}
	if m.Deterministic == nil {
		m.Deterministic = map[string]any{}
	}
	if m.Timing == nil {
		m.Timing = map[string]float64{}
	}
	return &m, nil
}

// DiffDeterministic compares two manifests' deterministic sections (and
// tool names) and returns the dotted path of the first differing field,
// or "" when they match. Values are normalised through a JSON round-trip
// first, so a freshly built manifest and one loaded from disk compare by
// content rather than by Go type.
func DiffDeterministic(a, b *Manifest) string {
	if a.Tool != b.Tool {
		return "tool"
	}
	av, err := normalizeJSON(a.Deterministic)
	if err != nil {
		return "deterministic"
	}
	bv, err := normalizeJSON(b.Deterministic)
	if err != nil {
		return "deterministic"
	}
	return diffValue("deterministic", av, bv)
}

// normalizeJSON round-trips v through encoding/json so every value is one
// of nil, bool, float64, string, []any or map[string]any.
func normalizeJSON(v any) (any, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var out any
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// diffValue walks two normalised JSON values and returns the dotted path
// of the first difference (map keys in sorted order), or "".
func diffValue(path string, a, b any) string {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			return path
		}
		keys := map[string]bool{}
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			sub := path + "." + k
			x, okA := av[k]
			y, okB := bv[k]
			if !okA || !okB {
				return sub
			}
			if d := diffValue(sub, x, y); d != "" {
				return d
			}
		}
		return ""
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return path
		}
		for i := range av {
			if d := diffValue(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); d != "" {
				return d
			}
		}
		return ""
	default:
		if a != b {
			return path
		}
		return ""
	}
}

// TimingDelta is one timing key present in both manifests.
type TimingDelta struct {
	Key      string
	Old, New float64
}

// TimingDeltas returns the timing keys shared by both manifests in sorted
// order.
func TimingDeltas(old, new *Manifest) []TimingDelta {
	keys := make([]string, 0, len(old.Timing))
	for k := range old.Timing {
		if _, ok := new.Timing[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]TimingDelta, 0, len(keys))
	for _, k := range keys {
		out = append(out, TimingDelta{Key: k, Old: old.Timing[k], New: new.Timing[k]})
	}
	return out
}

// TimingOnly returns the timing keys present in exactly one of the two
// manifests, each list sorted. New counters (store composition, fabric
// stats) surface here when diffing against a manifest from an older
// build, instead of silently vanishing from the shared-key table.
func TimingOnly(old, new *Manifest) (onlyOld, onlyNew []string) {
	for k := range old.Timing {
		if _, ok := new.Timing[k]; !ok {
			onlyOld = append(onlyOld, k)
		}
	}
	for k := range new.Timing {
		if _, ok := old.Timing[k]; !ok {
			onlyNew = append(onlyNew, k)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return onlyOld, onlyNew
}

// TimingGeomeanSpeedup returns the geometric mean of old/new over the
// wall-clock deltas (keys with a "Seconds" suffix where both sides are
// positive) — the headline a -threshold regression gate judges, in the
// spirit of scripts/benchdiff. Returns 0 when no such key exists.
func TimingGeomeanSpeedup(deltas []TimingDelta) float64 {
	logSum, n := 0.0, 0
	for _, d := range deltas {
		if !isWallClockKey(d.Key) || d.Old <= 0 || d.New <= 0 {
			continue
		}
		logSum += math.Log(d.Old / d.New)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// isWallClockKey reports whether a timing key measures wall-clock seconds
// (counts and rates are informational context, not regression-gated).
func isWallClockKey(key string) bool {
	const suffix = "Seconds"
	return len(key) >= len(suffix) && key[len(key)-len(suffix):] == suffix
}
