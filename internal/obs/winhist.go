package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// WindowedHistogram is a log-linear (HDR-style) latency histogram with a
// sliding time window: each power-of-two range between Min and Max is
// split into a fixed number of linear sub-buckets, so relative bucket
// error is bounded by 1/sub across the whole range while the bucket index
// is computed with exact float arithmetic (math.Frexp — no logarithms, no
// platform-dependent rounding). Observations land in both an all-time
// array and the current slot of a ring of sub-windows; quantiles are read
// from the merged ring, so they describe roughly the last Window of
// traffic rather than the process lifetime.
//
// Observes are lock-free (two atomic adds); ring rotation takes a mutex
// but only once per Window/slots interval. Which sub-window an
// observation lands in is wall-clock dependent — windowed quantiles are
// timing telemetry and must never feed back into any decision or memoised
// result (see CLAUDE.md). The bucket math itself is deterministic: the
// same multiset of observations in one window always yields the same
// quantiles.
type WindowedHistogram struct {
	min, max float64
	sub      int // linear sub-buckets per power-of-two major
	majors   int
	nb       int // total buckets: underflow + majors*sub + overflow

	window time.Duration // 0 disables rotation (all-time histogram)
	step   int64         // rotation period in nanoseconds

	mu      sync.Mutex
	cur     atomic.Int64 // current ring slot
	lastRot atomic.Int64 // monotonic ns of the last rotation
	clock   func() int64 // monotonic nanoseconds; swappable in tests

	slots [][]atomic.Uint64 // ring of per-sub-window bucket counts
	total []atomic.Uint64   // all-time bucket counts
}

// NewWindowedHistogram builds a histogram covering [min, max] with sub
// linear buckets per power-of-two and a sliding window of the given
// duration split into slots sub-windows. min must be > 0 and < max; sub
// and slots must be >= 1. window <= 0 disables rotation, making the
// window the whole process lifetime.
func NewWindowedHistogram(min, max float64, sub int, window time.Duration, slots int) *WindowedHistogram {
	if min <= 0 || max <= min || sub < 1 || slots < 1 {
		panic("obs: invalid WindowedHistogram shape")
	}
	majors := 0
	for upper := min; upper < max; upper *= 2 {
		majors++
	}
	h := &WindowedHistogram{
		min:    min,
		max:    max,
		sub:    sub,
		majors: majors,
		nb:     1 + majors*sub + 1,
		window: window,
	}
	if window > 0 {
		h.step = int64(window) / int64(slots)
		if h.step < 1 {
			h.step = 1
		}
	} else {
		slots = 1
	}
	h.slots = make([][]atomic.Uint64, slots)
	for i := range h.slots {
		h.slots[i] = make([]atomic.Uint64, h.nb)
	}
	h.total = make([]atomic.Uint64, h.nb)
	start := time.Now()
	h.clock = func() int64 { return int64(time.Since(start)) }
	h.lastRot.Store(h.clock())
	return h
}

// bucketIndex maps a value to its bucket with exact float arithmetic:
// v/min = frac * 2^exp with frac in [0.5, 1) (math.Frexp), so the major
// is exp-1 and the linear sub-bucket is floor((2*frac - 1) * sub). NaN
// maps to -1 (ignored); -Inf and everything <= min land in the underflow
// bucket, +Inf and everything >= max in the overflow bucket.
func (h *WindowedHistogram) bucketIndex(v float64) int {
	if math.IsNaN(v) {
		return -1
	}
	if v <= h.min {
		return 0
	}
	if v >= h.max {
		return h.nb - 1
	}
	frac, exp := math.Frexp(v / h.min)
	major := exp - 1
	s := int(frac*2*float64(h.sub)) - h.sub
	idx := 1 + major*h.sub + s
	if idx >= h.nb-1 {
		idx = h.nb - 1
	}
	// Upper bounds are inclusive (Prometheus le semantics): a value
	// sitting exactly on a bucket edge belongs to the bucket below it.
	if idx > 1 && h.upperBound(idx-1) == v {
		idx--
	}
	return idx
}

// upperBound returns the inclusive upper edge of a bucket — the value
// Quantile reports for ranks that land in it.
func (h *WindowedHistogram) upperBound(idx int) float64 {
	if idx <= 0 {
		return h.min
	}
	if idx >= h.nb-1 {
		return h.max
	}
	major := (idx - 1) / h.sub
	s := (idx - 1) % h.sub
	return h.min * math.Ldexp(1+float64(s+1)/float64(h.sub), major)
}

// Observe records one value. NaN observations are dropped; ±Inf clamp to
// the edge buckets.
func (h *WindowedHistogram) Observe(v float64) {
	idx := h.bucketIndex(v)
	if idx < 0 {
		return
	}
	h.maybeRotate()
	h.slots[h.cur.Load()][idx].Add(1)
	h.total[idx].Add(1)
}

// maybeRotate advances the ring when the current sub-window has expired,
// zeroing the slot being reused before publishing it.
func (h *WindowedHistogram) maybeRotate() {
	if h.step == 0 {
		return
	}
	now := h.clock()
	if now-h.lastRot.Load() < h.step {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now = h.clock()
	steps := (now - h.lastRot.Load()) / h.step
	if steps <= 0 {
		return
	}
	if steps >= int64(len(h.slots)) {
		// Quiet for longer than the whole window: everything is stale.
		for _, s := range h.slots {
			for i := range s {
				s[i].Store(0)
			}
		}
		h.lastRot.Store(now)
		return
	}
	for ; steps > 0; steps-- {
		next := (h.cur.Load() + 1) % int64(len(h.slots))
		s := h.slots[next]
		for i := range s {
			s[i].Store(0)
		}
		h.cur.Store(next)
		h.lastRot.Add(h.step)
	}
}

// snapshot merges the ring into one bucket array.
func (h *WindowedHistogram) snapshot() []uint64 {
	h.maybeRotate()
	out := make([]uint64, h.nb)
	for _, s := range h.slots {
		for i := range s {
			out[i] += s[i].Load()
		}
	}
	return out
}

// Count returns the number of observations in the current window.
func (h *WindowedHistogram) Count() uint64 {
	var n uint64
	for _, c := range h.snapshot() {
		n += c
	}
	return n
}

// TotalCount returns the all-time number of observations.
func (h *WindowedHistogram) TotalCount() uint64 {
	var n uint64
	for i := range h.total {
		n += h.total[i].Load()
	}
	return n
}

// Quantile returns the q-quantile (0 <= q <= 1) of the current window as
// the upper edge of the bucket holding that rank — an exact function of
// the windowed bucket counts, monotone in q. An empty window returns 0.
func (h *WindowedHistogram) Quantile(q float64) float64 {
	return quantileOf(h, h.snapshot(), q)
}

// quantileOf implements Quantile over an explicit bucket snapshot.
func quantileOf(h *WindowedHistogram, counts []uint64, q float64) float64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return h.upperBound(i)
		}
	}
	return h.max
}

// Quantiles returns several quantiles from one consistent snapshot, so a
// p50/p99/p999 row can never be torn by concurrent observes.
func (h *WindowedHistogram) Quantiles(qs ...float64) []float64 {
	counts := h.snapshot()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileOf(h, counts, q)
	}
	return out
}
