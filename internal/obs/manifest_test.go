package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func sampleManifest() *Manifest {
	m := NewManifest("report")
	m.SetDet("scale", "test")
	m.SetDet("seed", 1)
	m.SetDet("simVersion", 1)
	m.SetDet("datasetDigest", "abc123")
	m.SetDet("spanCounts", map[string]int{"search": 9, "profile": 9})
	m.SetTiming("totalSeconds", 12.5)
	m.SetTiming("stage.search.totalSeconds", 9.25)
	m.SetTiming("storeHits", 120)
	return m
}

// TestManifestRoundTrip asserts WriteFile/LoadManifest preserve both
// sections, the bytes are deterministic, and a round-tripped manifest
// diffs clean against the original despite the JSON type erasure
// (int -> float64).
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	m := sampleManifest()
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffDeterministic(m, loaded); d != "" {
		t.Errorf("round-trip diff at %q", d)
	}
	if loaded.Timing["totalSeconds"] != 12.5 {
		t.Errorf("timing lost: %v", loaded.Timing)
	}
	// Byte determinism: writing the same content twice is identical.
	path2 := filepath.Join(dir, "m2.json")
	if err := sampleManifest().WriteFile(path2); err != nil {
		t.Fatal(err)
	}
	b1, b2 := mustRead(t, path), mustRead(t, path2)
	if b1 != b2 {
		t.Errorf("manifest bytes differ between identical writes:\n%s\n---\n%s", b1, b2)
	}
}

// TestDiffDeterministicNamesFirstField asserts the diff reports the first
// differing dotted path in sorted key order, and ignores timing.
func TestDiffDeterministicNamesFirstField(t *testing.T) {
	a, b := sampleManifest(), sampleManifest()
	if d := DiffDeterministic(a, b); d != "" {
		t.Fatalf("identical manifests diff at %q", d)
	}
	b.SetTiming("totalSeconds", 99)
	if d := DiffDeterministic(a, b); d != "" {
		t.Errorf("timing change leaked into deterministic diff: %q", d)
	}
	b.SetDet("seed", 2)
	if d := DiffDeterministic(a, b); d != "deterministic.seed" {
		t.Errorf("diff = %q, want deterministic.seed", d)
	}
	b = sampleManifest()
	b.SetDet("spanCounts", map[string]int{"search": 9, "profile": 8})
	if d := DiffDeterministic(a, b); d != "deterministic.spanCounts.profile" {
		t.Errorf("nested diff = %q, want deterministic.spanCounts.profile", d)
	}
	b = sampleManifest()
	delete(b.Deterministic, "datasetDigest")
	if d := DiffDeterministic(a, b); d != "deterministic.datasetDigest" {
		t.Errorf("missing-key diff = %q, want deterministic.datasetDigest", d)
	}
	c := sampleManifest()
	c.Tool = "adaptd"
	if d := DiffDeterministic(a, c); d != "tool" {
		t.Errorf("tool diff = %q, want tool", d)
	}
}

// TestTimingGeomeanSpeedup asserts only "...Seconds" keys join the gate
// and the geomean is old/new.
func TestTimingGeomeanSpeedup(t *testing.T) {
	old, new := NewManifest("report"), NewManifest("report")
	old.SetTiming("totalSeconds", 10)
	new.SetTiming("totalSeconds", 20) // 2x slower
	old.SetTiming("stage.search.totalSeconds", 4)
	new.SetTiming("stage.search.totalSeconds", 2) // 2x faster
	old.SetTiming("storeHits", 100)
	new.SetTiming("storeHits", 1) // a count: must not join the gate
	deltas := TimingDeltas(old, new)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(deltas))
	}
	if g := TimingGeomeanSpeedup(deltas); g < 0.999 || g > 1.001 {
		t.Errorf("geomean = %g, want ~1.0 (0.5x and 2x cancel)", g)
	}
	if g := TimingGeomeanSpeedup(nil); g != 0 {
		t.Errorf("empty geomean = %g, want 0", g)
	}
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
