package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RollupRow is one stage of a span-tree rollup: every span whose name
// shares a first token ("search mcf/0" and "search swim/1" are both stage
// "search") aggregated into a count and self/total wall-clock time.
// Count is deterministic for a seeded run; SelfNS and TotalNS are timing
// telemetry and must never feed back into decisions or memoised results.
type RollupRow struct {
	Stage   string
	Count   int
	SelfNS  int64
	TotalNS int64
}

// stageOf maps a span name to its rollup stage: the first
// whitespace-delimited token.
func stageOf(name string) string {
	head, _, _ := strings.Cut(name, " ")
	return head
}

// Rollup aggregates the recorded spans into per-stage rows, sorted by
// stage name. Self time is a span's duration minus its direct children's;
// total time excludes spans nested under a same-stage ancestor, so a
// recursive stage ("search" containing "search mcf/0") is not counted
// twice. Unfinished spans extend to the call instant.
func (t *Tracer) Rollup() []RollupRow {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	durOf := func(s *Span) time.Duration {
		if s.finished {
			return s.dur
		}
		return now.Sub(s.start)
	}
	childSum := make(map[int]time.Duration, len(t.spans))
	for _, s := range t.spans {
		if s.parent >= 0 {
			childSum[s.parent] += durOf(s)
		}
	}
	agg := map[string]*RollupRow{}
	for _, s := range t.spans {
		stage := stageOf(s.name)
		row := agg[stage]
		if row == nil {
			row = &RollupRow{Stage: stage}
			agg[stage] = row
		}
		row.Count++
		d := durOf(s)
		if self := d - childSum[s.id]; self > 0 {
			row.SelfNS += int64(self)
		}
		nested := false
		for p := s.parent; p >= 0; p = t.spans[p].parent {
			if stageOf(t.spans[p].name) == stage {
				nested = true
				break
			}
		}
		if !nested {
			row.TotalNS += int64(d)
		}
	}
	out := make([]RollupRow, 0, len(agg))
	for _, row := range agg {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// WriteRollup renders the rollup as an aligned text table (the
// `report -span-summary` output).
func (t *Tracer) WriteRollup(w io.Writer) {
	rows := t.Rollup()
	fmt.Fprintf(w, "%-28s %7s %12s %12s\n", "stage", "spans", "self", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %7d %12s %12s\n", r.Stage, r.Count,
			time.Duration(r.SelfNS).Round(time.Microsecond),
			time.Duration(r.TotalNS).Round(time.Microsecond))
	}
}

// FillManifest records the tracer into a manifest: the span-tree digest,
// total span count and per-stage counts go in the deterministic section
// (they are pure functions of the seeded workload); per-stage self/total
// seconds go in the timing section.
func (t *Tracer) FillManifest(m *Manifest) {
	m.SetDet("spanTreeDigest", t.TreeDigest())
	m.SetDet("spanCount", t.SpanCount())
	counts := map[string]int{}
	for _, r := range t.Rollup() {
		counts[r.Stage] = r.Count
		m.SetTiming("stage."+r.Stage+".selfSeconds", float64(r.SelfNS)/1e9)
		m.SetTiming("stage."+r.Stage+".totalSeconds", float64(r.TotalNS)/1e9)
	}
	m.SetDet("spanCounts", counts)
}

// TreeDigest returns the hex SHA-256 of the duration-free span tree
// (WriteTree's bytes): a compact fingerprint of names, args, ordering and
// hierarchy that replays of the same configuration must reproduce
// byte-for-byte. Run manifests record it in their deterministic section.
func (t *Tracer) TreeDigest() string {
	sum := sha256.Sum256([]byte(t.Tree()))
	return hex.EncodeToString(sum[:])
}
