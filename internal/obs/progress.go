package obs

import (
	"log/slog"
	"sync"
	"time"
)

// Progress emits throttled progress/ETA log lines for long multi-stage
// runs (the ~40-minute report build). ETA is wall-clock and lives only in
// log output — it never touches memoised experiment results.
type Progress struct {
	// Logger receives the lines (required).
	Logger *slog.Logger
	// Every is the minimum interval between lines per stage (default 2s).
	// The final step of a stage always emits.
	Every time.Duration

	mu     sync.Mutex
	starts map[string]time.Time
	last   time.Time
}

// Observe records that done of total steps of stage are complete and
// logs a progress line if the stage finished or the throttle interval has
// elapsed. Extra attrs (e.g. memo hit rate) are appended to the line.
func (p *Progress) Observe(stage string, done, total int, attrs ...any) {
	if p.Logger == nil {
		return
	}
	every := p.Every
	if every <= 0 {
		every = 2 * time.Second
	}
	now := time.Now()
	p.mu.Lock()
	if p.starts == nil {
		p.starts = map[string]time.Time{}
	}
	start, ok := p.starts[stage]
	if !ok {
		start = now
		p.starts[stage] = now
	}
	finished := done >= total
	if !finished && now.Sub(p.last) < every {
		p.mu.Unlock()
		return
	}
	p.last = now
	p.mu.Unlock()

	args := []any{
		slog.String("stage", stage),
		slog.Int("done", done),
		slog.Int("total", total),
	}
	if total > 0 {
		args = append(args, slog.Int("pct", 100*done/total))
	}
	if done > 0 && !finished {
		eta := time.Duration(float64(now.Sub(start)) / float64(done) * float64(total-done))
		args = append(args, slog.Duration("eta", eta.Round(time.Second)))
	}
	args = append(args, attrs...)
	p.Logger.Info("progress", args...)
}
