package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use
// with no locking on the hot path.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64, stored as atomic bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) { addFloatBits(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloatBits atomically adds v to a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram with Prometheus semantics: bucket
// i counts observations <= bounds[i], with an implicit +Inf bucket last.
// Observations are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	addFloatBits(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a family of counters keyed by label values (e.g. requests
// by path and status code). Children are created on first use and cached;
// lookups take a read lock, increments are atomic.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Counter
}

// Each calls fn for every child in sorted label-value order with the
// label values (in declaration order) and the current count — the
// deterministic iteration both exposition paths and /v1/status use.
func (v *CounterVec) Each(fn func(values []string, count uint64)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	counts := make(map[string]uint64, len(keys))
	for _, k := range keys {
		counts[k] = v.children[k].Value()
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		fn(strings.Split(k, "\x00"), counts[k])
	}
}

// With returns the child counter for the given label values (one per
// declared label, in order).
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: counter vec got %d label values, want %d", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// family is one named metric in a registry.
type family struct {
	name, help string
	kind       metricKind

	counter *Counter
	vec     *CounterVec
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds named metric families and renders them in the
// Prometheus text exposition format with stable (sorted) ordering.
// Registration is idempotent: re-registering a name returns the existing
// metric; registering it as a different kind panics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry. Most code should register into
// DefaultRegistry instead; per-instance registries suit servers whose
// series must not be shared (internal/serve).
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register inserts fam, or returns the existing family with that name
// after checking the kind matches.
func (r *Registry) register(fam *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.families[fam.name]; ok {
		if old.kind != fam.kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", fam.name, fam.kind, old.kind))
		}
		return old
	}
	r.families[fam.name] = fam
	return fam
}

// Counter registers (or fetches) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(&family{name: name, help: help, kind: kindCounter, counter: &Counter{}}).counter
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	fam := r.register(&family{
		name: name, help: help, kind: kindCounter,
		vec: &CounterVec{labels: labels, children: map[string]*Counter{}},
	})
	if fam.vec == nil {
		panic(fmt.Sprintf("obs: metric %s re-registered as a vec (was plain)", name))
	}
	return fam.vec
}

// Gauge registers (or fetches) a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(&family{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}).gauge
}

// GaugeFunc registers a gauge evaluated at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	fam := r.register(&family{
		name: name, help: help, kind: kindHistogram,
		hist: &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)},
	})
	return fam.hist
}

// sorted returns the registry's families in name order.
func (r *Registry) sorted() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, fam := range r.families {
		out = append(out, fam)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// WriteText renders the Prometheus text exposition: families sorted by
// name, vec children sorted by label values, histogram buckets cumulative
// with a trailing +Inf, sum and count.
func (r *Registry) WriteText(w io.Writer) {
	for _, fam := range r.sorted() {
		fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind)
		switch {
		case fam.counter != nil:
			fmt.Fprintf(w, "%s %d\n", fam.name, fam.counter.Value())
		case fam.vec != nil:
			writeVec(w, fam.name, fam.vec)
		case fam.gauge != nil:
			fmt.Fprintf(w, "%s %g\n", fam.name, fam.gauge.Value())
		case fam.gaugeFn != nil:
			fmt.Fprintf(w, "%s %g\n", fam.name, fam.gaugeFn())
		case fam.hist != nil:
			writeHist(w, fam.name, fam.hist)
		}
	}
}

func writeVec(w io.Writer, name string, v *CounterVec) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var b strings.Builder
		for i, val := range strings.Split(k, "\x00") {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, v.labels[i], escapeLabel(val))
		}
		fmt.Fprintf(w, "%s{%s} %d\n", name, b.String(), v.children[k].Value())
	}
	v.mu.RUnlock()
}

func writeHist(w io.Writer, name string, h *Histogram) {
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// Text returns WriteText's output as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// bucketJSON is one cumulative histogram bucket in the JSON snapshot. A
// numerically ordered array replaced the old map[string]uint64 form: the
// map marshalled with string-sorted keys, which put "1e-05" after
// "0.0001" and silently dropped the +Inf bucket.
type bucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// JSON returns an expvar-style snapshot of every family: counters and
// gauges as numbers, vecs as {"label=value,...": n} objects, histograms
// as {count, sum, buckets} with buckets an array of cumulative counts in
// ascending bound order ending at +Inf. The bytes are deterministic for a
// given metric state: families and vec children are sorted, buckets keep
// registration order, and encoding/json sorts the map keys.
func (r *Registry) JSON() ([]byte, error) {
	out := map[string]any{}
	for _, fam := range r.sorted() {
		switch {
		case fam.counter != nil:
			out[fam.name] = fam.counter.Value()
		case fam.vec != nil:
			v := fam.vec
			m := map[string]uint64{}
			v.Each(func(values []string, count uint64) {
				parts := make([]string, len(values))
				for i, val := range values {
					parts[i] = v.labels[i] + "=" + val
				}
				m[strings.Join(parts, ",")] = count
			})
			out[fam.name] = m
		case fam.gauge != nil:
			out[fam.name] = fam.gauge.Value()
		case fam.gaugeFn != nil:
			out[fam.name] = fam.gaugeFn()
		case fam.hist != nil:
			h := fam.hist
			buckets := make([]bucketJSON, 0, len(h.bounds)+1)
			var cum uint64
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				buckets = append(buckets, bucketJSON{LE: fmt.Sprintf("%g", ub), Count: cum})
			}
			cum += h.counts[len(h.bounds)].Load()
			buckets = append(buckets, bucketJSON{LE: "+Inf", Count: cum})
			out[fam.name] = map[string]any{
				"count":   h.Count(),
				"sum":     h.Sum(),
				"buckets": buckets,
			}
		}
	}
	return json.Marshal(out)
}
