package obs

import (
	"strings"
	"testing"
)

// TestRollupStages asserts the stage grouping (first name token), counts,
// self/total accounting and deterministic row ordering.
func TestRollupStages(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	root := tr.Start("build")
	s1 := tr.Start("search mcf/0")
	s1.Finish()
	s2 := tr.Start("search swim/0")
	inner := tr.Start("search nested") // same stage nested: total counted once
	inner.Finish()
	s2.Finish()
	d := tr.StartDetached("http /v1/predict")
	d.Finish()
	root.Finish()

	rows := tr.Rollup()
	byStage := map[string]RollupRow{}
	var order []string
	for _, r := range rows {
		byStage[r.Stage] = r
		order = append(order, r.Stage)
	}
	if !sortedStrings(order) {
		t.Errorf("rows not sorted by stage: %v", order)
	}
	if r := byStage["search"]; r.Count != 3 {
		t.Errorf("search count = %d, want 3", r.Count)
	}
	if r := byStage["build"]; r.Count != 1 {
		t.Errorf("build count = %d, want 1", r.Count)
	}
	if r := byStage["http"]; r.Count != 1 {
		t.Errorf("http count = %d, want 1", r.Count)
	}
	// The nested same-stage span must not inflate the stage total beyond
	// the two top-level search spans' durations.
	sr := byStage["search"]
	if sr.TotalNS < sr.SelfNS {
		t.Errorf("search total %d < self %d", sr.TotalNS, sr.SelfNS)
	}
	var sb strings.Builder
	tr.WriteRollup(&sb)
	for _, want := range []string{"stage", "search", "http", "build"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rollup table missing %q:\n%s", want, sb.String())
		}
	}
}

func sortedStrings(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// TestTreeDigestDeterministic asserts the digest is a pure function of
// the duration-free tree: same spans -> same digest, different args ->
// different digest.
func TestTreeDigestDeterministic(t *testing.T) {
	build := func(arg string) string {
		tr := NewTracer()
		tr.Enable()
		sp := tr.Start("stage a").SetArg("k", arg)
		tr.Start("child").Finish()
		sp.Finish()
		return tr.TreeDigest()
	}
	if build("v") != build("v") {
		t.Error("identical trees produced different digests")
	}
	if build("v") == build("w") {
		t.Error("different args produced the same digest")
	}
	if len(build("v")) != 64 {
		t.Errorf("digest length %d, want 64 hex chars", len(build("v")))
	}
}
