package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestDisabledTracerIsNoop(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("nothing")
	sp.SetArg("k", "v")
	sp.Finish()
	if tr.SpanCount() != 0 {
		t.Errorf("disabled tracer recorded %d spans", tr.SpanCount())
	}
}

// workload records a fixed span shape: a root with two children, a
// grandchild, and one detached span.
func workload(tr *Tracer) {
	root := tr.Start("build").SetArg("phases", "2")
	a := tr.Start("search mcf/0")
	b := tr.Start("simulate")
	b.Finish()
	a.Finish()
	c := tr.Start("search swim/1")
	c.Finish()
	root.Finish()
	d := tr.StartDetached("http /v1/predict")
	d.Finish()
}

func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	workload(tr)
	want := `build phases=2
  search mcf/0
    simulate
  search swim/1
http /v1/predict
`
	if got := tr.Tree(); got != want {
		t.Errorf("tree mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTreeDeterminism asserts the property the pipeline relies on: two
// runs of the same seeded workload emit byte-identical span trees, even
// though wall-clock durations differ.
func TestTreeDeterminism(t *testing.T) {
	trees := make([]string, 2)
	for i := range trees {
		tr := NewTracer()
		tr.Enable()
		workload(tr)
		trees[i] = tr.Tree()
	}
	if trees[0] != trees[1] {
		t.Errorf("span trees differ across identical runs:\n%s\nvs\n%s", trees[0], trees[1])
	}
}

func TestWriteChromeIsValidTraceJSON(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	workload(tr)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 5 {
		t.Fatalf("%d events, want 5", len(out.TraceEvents))
	}
	byName := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = ev.Tid
	}
	if byName["build"] != 1 || byName["http /v1/predict"] != 2 {
		t.Errorf("tids wrong: %v", byName)
	}
	for _, ev := range out.TraceEvents {
		if ev.Name == "build" && ev.Args["phases"] != "2" {
			t.Errorf("build args = %v", ev.Args)
		}
	}
}

func TestSpanLimitDrops(t *testing.T) {
	tr := NewTracer()
	tr.limit = 2
	tr.Enable()
	for i := 0; i < 5; i++ {
		tr.StartDetached("s").Finish()
	}
	if tr.SpanCount() != 2 {
		t.Errorf("kept %d spans, want 2", tr.SpanCount())
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped %d, want 3", tr.Dropped())
	}
	if !strings.Contains(tr.Tree(), "dropped 3 spans") {
		t.Error("tree does not report the drop")
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	tr.Start("a").Finish()
	tr.Reset()
	if tr.SpanCount() != 0 || tr.Tree() != "" {
		t.Errorf("reset left %d spans: %q", tr.SpanCount(), tr.Tree())
	}
	tr.Start("b").Finish()
	if tr.SpanCount() != 1 {
		t.Errorf("tracer unusable after reset: %d spans", tr.SpanCount())
	}
}

// TestConcurrentDetachedSpans exercises tracer concurrency (detached
// starts, finishes, snapshots) under -race via scripts/verify.sh.
func TestConcurrentDetachedSpans(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartDetached("req")
				sp.SetArg("n", "1")
				sp.Finish()
				if i%50 == 0 {
					var buf bytes.Buffer
					if err := tr.WriteChrome(&buf); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if tr.SpanCount() != 8*200 {
		t.Errorf("recorded %d spans, want %d", tr.SpanCount(), 8*200)
	}
}

func TestLoggerAndProgress(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, false, slog.LevelInfo)
	lg.Info("hello", "k", "v")
	line := buf.String()
	if strings.Contains(line, "time=") {
		t.Errorf("text handler kept timestamps: %q", line)
	}
	if !strings.Contains(line, "msg=hello") || !strings.Contains(line, "k=v") {
		t.Errorf("unexpected text line: %q", line)
	}

	buf.Reset()
	jlg := NewLogger(&buf, true, slog.LevelInfo)
	jlg.Info("hello")
	var js map[string]any
	if err := json.Unmarshal(buf.Bytes(), &js); err != nil {
		t.Fatalf("JSON handler emitted invalid JSON: %v", err)
	}
	if js["msg"] != "hello" {
		t.Errorf("json line: %v", js)
	}

	if got := ParseLevel("DEBUG"); got != slog.LevelDebug {
		t.Errorf("ParseLevel(DEBUG) = %v", got)
	}
	if got := ParseLevel("bogus"); got != slog.LevelInfo {
		t.Errorf("ParseLevel(bogus) = %v", got)
	}

	buf.Reset()
	p := &Progress{Logger: NewLogger(&buf, false, slog.LevelInfo)}
	p.Observe("search", 3, 10)           // first call: emits (throttle window empty)
	p.Observe("search", 4, 10)           // throttled
	p.Observe("search", 10, 10, "hr", 1) // final: always emits
	out := buf.String()
	if n := strings.Count(out, "msg=progress"); n != 2 {
		t.Errorf("%d progress lines, want 2:\n%s", n, out)
	}
	if !strings.Contains(out, "stage=search") || !strings.Contains(out, "done=10") || !strings.Contains(out, "hr=1") {
		t.Errorf("final line missing fields:\n%s", out)
	}
	if !strings.Contains(out, "eta=") {
		t.Errorf("mid-run line missing ETA:\n%s", out)
	}
}
