package obs

import (
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the shared slog logger the cmd binaries use: a text
// handler for terminals (timestamps dropped — the CLIs' output is diffed
// and piped, and wall-clock stamps are noise there) or, with jsonFormat,
// a JSON handler with full timestamps for log shippers.
func NewLogger(w io.Writer, jsonFormat bool, level slog.Leveler) *slog.Logger {
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// ParseLevel maps a -log-level flag value (debug, info, warn, error;
// case-insensitive) to a slog.Level, defaulting to Info for anything
// unrecognised.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
