// Warmup checkpoints: a deterministic snapshot/restore of the
// micro-architectural state a warmup run produces and a measured run
// consumes. After warmup the only state that survives into measurement
// is the cache hierarchy's tags and LRU ages and the branch predictor's
// learned tables — Run resets every statistics counter after the warmup
// prefix and getState rebuilds all transient pipeline state — so a
// snapshot of exactly those structures, plus repositioning the source
// past the warmup prefix (SliceSource.Skip), reproduces the warm Sim
// bit-for-bit. This is an amortisation, never an approximation: a
// measured Run after Restore must produce the byte-identical Result a
// re-executed warmup would (golden sweep in snapshot_test.go).
package cpu

import (
	"errors"
	"fmt"
)

// snapshotVersion tags the Snapshot encoding; Restore refuses others.
const snapshotVersion = 1

// Skip advances the source by n instructions exactly as if they had been
// consumed by Next, wrapping like Next does. It lets a restored warmup
// reposition the stream without replaying the prefix.
func (s *SliceSource) Skip(n int) {
	if n < 0 {
		panic("cpu: negative skip")
	}
	s.pos = (s.pos + n) % len(s.insts)
}

// Warmup executes n instructions from src exactly as Run's built-in
// warmup prefix would — same option overrides, same accounting — leaving
// the Sim warm for a measurement Run with WarmupInsts == 0 and
// FlushCaches == false. opts should be the measurement options; only
// FlushCaches is honoured (flushing before warmup, as Run does).
func (s *Sim) Warmup(src Source, n int, opts Options) error {
	if n <= 0 {
		return errors.New("cpu: warmup instruction count must be positive")
	}
	warm := opts
	warm.WarmupInsts = 0
	warm.Collect = false
	warm.StartStall = 0
	warm.ExtraEnergyPJ = 0
	res, err := s.Run(src, n, warm)
	if err != nil {
		return err
	}
	obsWarmupInsts.Add(res.Committed)
	return nil
}

// Snapshot returns the canonical byte encoding of the Sim's warm
// micro-architectural state: L1I, L1D and L2 tags/LRU and the branch
// predictor's PHT, history register and BTB. Statistics counters and
// transient pipeline state are excluded — Run resets both before
// measurement. The encoding is a pure function of the warm state, so
// identical warmups always produce identical bytes (content-addressed
// storage depends on this).
func (s *Sim) Snapshot() []byte {
	size := 1 + s.hier.L1I.SnapshotSize() + s.hier.L1D.SnapshotSize() +
		s.hier.L2.SnapshotSize() + s.bp.SnapshotSize()
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotVersion)
	buf = s.hier.L1I.AppendSnapshot(buf)
	buf = s.hier.L1D.AppendSnapshot(buf)
	buf = s.hier.L2.AppendSnapshot(buf)
	buf = s.bp.AppendSnapshot(buf)
	return buf
}

// Restore overwrites the Sim's caches and branch predictor from a
// Snapshot taken on a Sim of the identical configuration. Geometry is
// validated structure by structure; a snapshot is only valid for the
// configuration it was taken under.
func (s *Sim) Restore(snap []byte) error {
	if len(snap) < 1 {
		return errors.New("cpu: empty snapshot")
	}
	if snap[0] != snapshotVersion {
		return fmt.Errorf("cpu: snapshot version %d, want %d", snap[0], snapshotVersion)
	}
	rest := snap[1:]
	var err error
	if rest, err = s.hier.L1I.RestoreSnapshot(rest); err != nil {
		return fmt.Errorf("cpu: restore L1I: %w", err)
	}
	if rest, err = s.hier.L1D.RestoreSnapshot(rest); err != nil {
		return fmt.Errorf("cpu: restore L1D: %w", err)
	}
	if rest, err = s.hier.L2.RestoreSnapshot(rest); err != nil {
		return fmt.Errorf("cpu: restore L2: %w", err)
	}
	if rest, err = s.bp.RestoreSnapshot(rest); err != nil {
		return fmt.Errorf("cpu: restore predictor: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("cpu: snapshot has %d trailing bytes", len(rest))
	}
	obsWarmupRestores.Inc()
	return nil
}
