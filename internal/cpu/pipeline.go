package cpu

import (
	"errors"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/power"
	"repro/internal/trace"
)

const (
	wbWindow         = 4096 // write-port scheduling horizon, cycles
	neverCycle       = ^uint64(0)
	wpRingSize       = 64   // fetch history replayed down the wrong path
	maxCyclesPerInst = 2000 // runaway guard
)

// fetchedInst is a fetch-buffer slot (fetched, not yet dispatched).
type fetchedInst struct {
	inst       trace.Inst
	fetchCycle uint64
	wrongPath  bool
	mispred    bool // this branch was mispredicted; fetch went wrong-path
}

// runState is the transient pipeline state for one Run.
type runState struct {
	rob      []entry // ring, capacity = ROB size
	headSeq  uint64  // sequence number of the oldest in-flight entry
	nextSeq  uint64  // sequence number the next dispatched entry gets
	robCount int
	iqCount  int
	lsqCount int

	allocInt, allocFp int // allocated physical registers beyond architectural

	regProducer [trace.NumRegs]int64 // seq of latest in-flight producer, -1 none

	fetchBuf []fetchedInst
	fbHead   int
	wbUsed   [wbWindow]uint16

	cycle           uint64
	fetchStallUntil uint64
	wrongPathMode   bool
	unresolved      int // in-flight correct-path branches not yet resolved

	stash      trace.Inst // branch refused by the in-flight limit, refetched later
	stashValid bool

	wpRing  [wpRingSize]trace.Inst
	wpCount int
	wpPos   int

	fetchedCorrect uint64

	acc power.Account
	res Result
	cnt *collector
}

// fbLen returns the number of fetched-but-undispatched instructions.
func (st *runState) fbLen() int { return len(st.fetchBuf) - st.fbHead }

// Run simulates n correct-path instructions from src under opts and
// returns the result. The simulation ends when all n instructions have
// committed and the pipeline has drained.
func (s *Sim) Run(src Source, n int, opts Options) (*Result, error) {
	if n <= 0 {
		return nil, errors.New("cpu: instruction count must be positive")
	}
	if opts.WarmupInsts > 0 {
		warm := opts
		warm.WarmupInsts = 0
		warm.Collect = false
		warm.StartStall = 0
		warm.FlushCaches = opts.FlushCaches
		warm.ExtraEnergyPJ = 0
		if _, err := s.Run(src, opts.WarmupInsts, warm); err != nil {
			return nil, err
		}
		opts.FlushCaches = false
	}
	if opts.FlushCaches {
		s.hier.Flush()
	}
	s.bp.ResetStats()
	s.hier.L1I.ResetStats()
	s.hier.L1D.ResetStats()
	s.hier.L2.ResetStats()

	st := &runState{
		rob:      make([]entry, s.cfg[arch.ROBSize]),
		fetchBuf: make([]fetchedInst, 0, s.cfg[arch.Width]*8),
	}
	for i := range st.regProducer {
		st.regProducer[i] = -1
	}
	st.fetchStallUntil = opts.StartStall
	if opts.Collect {
		c, err := newCollector(s.cfg, opts.SampledSets)
		if err != nil {
			return nil, err
		}
		st.cnt = c
	}
	if opts.ExtraEnergyPJ > 0 {
		st.acc.Add(power.StructClock, opts.ExtraEnergyPJ)
	}

	target := uint64(n)
	limit := uint64(n)*maxCyclesPerInst + 100_000
	for {
		st.cycle++
		if st.cycle > limit {
			return nil, errors.New("cpu: cycle limit exceeded (pipeline deadlock?)")
		}
		s.commit(st)
		s.scanWindow(st)
		s.dispatch(st)
		s.fetch(st, src, target)

		// Per-cycle energy: clock tree plus the conditional-clocking floor.
		st.acc.Add(power.StructClock, s.pm.ClockPerCyc+s.pm.IdlePerCyc)
		if st.cnt != nil {
			st.cnt.perCycle(s, st)
		}
		// Expire the write-port slot for the cycle that just passed; it is
		// not needed again until the ring wraps, far beyond any latency.
		st.wbUsed[st.cycle%wbWindow] = 0

		if st.res.Committed >= target && st.robCount == 0 && st.fbLen() == 0 && !st.stashValid {
			break
		}
	}

	st.res.Config = s.cfg
	st.res.Cycles = st.cycle
	st.res.BranchLookups = s.bp.Lookups
	st.res.Mispredicts = s.bp.Mispredicts
	st.res.BTBMisses = s.bp.BTBMisses
	st.res.L1IAccesses = s.hier.L1I.Accesses
	st.res.L1IMisses = s.hier.L1I.Misses
	st.res.L1DAccesses = s.hier.L1D.Accesses
	st.res.L1DMisses = s.hier.L1D.Misses
	st.res.L2Accesses = s.hier.L2.Accesses
	st.res.L2Misses = s.hier.L2.Misses
	st.res.Energy = s.pm.Summarize(&st.acc, st.cycle)
	st.res.finalize(s.pm)
	if st.cnt != nil {
		st.res.Counters = st.cnt.finish(s, &st.res)
	}
	obsRuns.Inc()
	obsInsts.Add(st.res.Committed)
	obsCycles.Add(st.res.Cycles)
	out := st.res
	return &out, nil
}

// slot returns the ROB ring slot for seq.
func (st *runState) slot(seq uint64) *entry {
	return &st.rob[seq%uint64(len(st.rob))]
}

// commit retires up to Width completed entries from the ROB head, in
// order.
func (s *Sim) commit(st *runState) {
	w := s.cfg[arch.Width]
	for k := 0; k < w && st.robCount > 0; k++ {
		e := st.slot(st.headSeq)
		if e.mispred && !e.resolved {
			return // wait for the flush this branch will trigger
		}
		if e.state != stCompleted || e.complete > st.cycle {
			return
		}
		if e.wrongPath {
			// Wrong-path entries are removed by the flush, never committed.
			return
		}
		if e.inLSQ {
			st.lsqCount--
		}
		if e.inst.Dst >= 0 && st.regProducer[e.inst.Dst] == int64(st.headSeq) {
			st.regProducer[e.inst.Dst] = -1
		}
		s.freeDst(st, e)
		st.acc.Add(power.StructROB, s.pm.ROBAccess) // retirement read
		st.headSeq++
		st.robCount--
		st.res.Committed++
	}
}

func (s *Sim) freeDst(st *runState, e *entry) {
	switch e.dstBank {
	case 0:
		st.allocInt--
	case 1:
		st.allocFp--
	}
	e.dstBank = -1
}

// scanWindow walks the in-flight window once per cycle: it transitions
// issued entries to completed, resolves branches (triggering the flush on
// a misprediction), and issues ready entries oldest-first subject to
// functional-unit, read-port and issue-width limits.
func (s *Sim) scanWindow(st *runState) {
	issueBudget := s.cfg[arch.Width]
	rdPorts := s.cfg[arch.RFReadPorts]
	intALU, intMul, fpALU, fpMul, memPort := s.nIntALU, s.nIntMul, s.nFpALU, s.nFpMul, s.nMemPort

	rdUsed := 0
	for seq := st.headSeq; seq < st.nextSeq; seq++ {
		e := st.slot(seq)
		// Writeback transition.
		if e.state == stIssued && e.complete <= st.cycle {
			e.state = stCompleted
			// Wakeup broadcast to the issue queue.
			st.acc.Add(power.StructIQ, s.pm.IQWakeup)
			if e.inst.Dst >= 0 && !e.wrongPath {
				st.acc.Add(power.StructRF, s.pm.RFWrite)
			}
			if e.inst.Op == trace.Branch && !e.resolved && !e.wrongPath {
				e.resolved = true
				st.unresolved--
				if e.mispred {
					s.flushAfter(st, seq)
					return // window contents changed; end this cycle's scan
				}
			}
		}
		if e.state != stDispatched || !e.inIQ {
			continue
		}
		if issueBudget == 0 {
			continue // keep walking: writeback transitions must still run
		}
		if !s.srcReady(st, e.srcSeq1) || !s.srcReady(st, e.srcSeq2) {
			continue
		}
		nsrc := 0
		if e.inst.Src1 >= 0 {
			nsrc++
		}
		if e.inst.Src2 >= 0 {
			nsrc++
		}
		if rdUsed+nsrc > rdPorts {
			continue
		}
		var fu *int
		switch e.inst.Op {
		case trace.IntALU, trace.Branch, trace.Store:
			fu = &intALU
		case trace.IntMul:
			fu = &intMul
		case trace.FpALU:
			fu = &fpALU
		case trace.FpMul:
			fu = &fpMul
		default: // Load
			fu = &memPort
		}
		if *fu == 0 {
			continue
		}
		if e.inst.Op == trace.Store && memPort == 0 {
			continue
		}
		*fu--
		if e.inst.Op == trace.Store {
			memPort--
		}
		rdUsed += nsrc
		issueBudget--

		lat := s.execLatency(e.inst.Op)
		st.acc.Add(power.StructIQ, s.pm.IQIssue)
		st.acc.Add(power.StructRF, float64(nsrc)*s.pm.RFRead)
		switch e.inst.Op {
		case trace.Load, trace.Store:
			lvl := s.hier.AccessData(e.inst.Addr)
			st.acc.Add(power.StructDCache, s.pm.DCacheAccess)
			st.acc.Add(power.StructLSQ, s.pm.LSQAccess)
			if e.inst.Op == trace.Load {
				switch lvl {
				case cache.L2Hit:
					lat = uint64(s.pm.L2Latency)
					st.acc.Add(power.StructL2, s.pm.L2Access)
				case cache.Memory:
					lat = uint64(s.pm.MemLatency)
					st.acc.Add(power.StructL2, s.pm.L2Access+s.pm.MemAccess)
				}
			} else if lvl != cache.L1Hit {
				st.acc.Add(power.StructL2, s.pm.L2Access)
			}
			if st.cnt != nil && !e.wrongPath {
				st.cnt.observeData(e.inst.Addr)
			}
		case trace.IntALU, trace.Branch:
			st.acc.Add(power.StructFU, s.pm.IntOp)
		case trace.IntMul, trace.FpMul:
			st.acc.Add(power.StructFU, s.pm.MulOp)
		case trace.FpALU:
			st.acc.Add(power.StructFU, s.pm.FpOp)
		}

		// Write-port scheduling: completion lands on the first cycle at or
		// after the nominal finish with a free write port.
		fin := st.cycle + lat
		if e.inst.Dst >= 0 {
			for st.wbUsed[fin%wbWindow] >= uint16(s.cfg[arch.RFWritePorts]) {
				fin++
			}
			st.wbUsed[fin%wbWindow]++
		}
		e.complete = fin
		e.state = stIssued
		e.inIQ = false
		st.iqCount--
		if st.cnt != nil {
			st.cnt.issued(st, e, nsrc)
		}
	}
}

// srcReady reports whether the operand produced by seq is available.
func (s *Sim) srcReady(st *runState, seq int64) bool {
	if seq < 0 || uint64(seq) < st.headSeq {
		return true // no producer, or producer already committed
	}
	p := st.slot(uint64(seq))
	return p.state != stDispatched && p.complete <= st.cycle
}

// flushAfter squashes every entry younger than seq (all wrong-path),
// restores resource counts, and redirects fetch to the correct path.
func (s *Sim) flushAfter(st *runState, seq uint64) {
	for q := seq + 1; q < st.nextSeq; q++ {
		e := st.slot(q)
		if e.inIQ {
			st.iqCount--
		}
		if e.inLSQ {
			st.lsqCount--
		}
		s.freeDst(st, e)
		st.robCount--
	}
	st.nextSeq = seq + 1
	// Producers among the squashed entries are gone.
	for r := range st.regProducer {
		if st.regProducer[r] > int64(seq) {
			st.regProducer[r] = -1
		}
	}
	st.fetchBuf = st.fetchBuf[:0]
	st.fbHead = 0
	st.wrongPathMode = false
	st.wpPos = 0
	// Redirect: the front-end refill delay is modelled by dispatch's
	// FrontEndStages latency on newly fetched instructions; the extra
	// stall covers resolution-to-redirect wiring.
	redirect := st.cycle + uint64(s.pm.MispredictCycles-s.pm.FrontEndStages)
	if redirect < st.cycle+1 {
		redirect = st.cycle + 1
	}
	if redirect > st.fetchStallUntil {
		st.fetchStallUntil = redirect
	}
}

// dispatch moves fetched instructions into the window, allocating ROB, IQ,
// LSQ and physical-register resources.
func (s *Sim) dispatch(st *runState) {
	w := s.cfg[arch.Width]
	fe := uint64(s.pm.FrontEndStages)
	freeInt := s.cfg[arch.RFSize] - trace.NumIntRegs
	freeFp := s.cfg[arch.RFSize] - trace.NumFpRegs
	for done := 0; done < w && st.fbHead < len(st.fetchBuf); done++ {
		f := &st.fetchBuf[st.fbHead]
		if f.fetchCycle+fe > st.cycle {
			break // still in the front-end pipeline
		}
		if st.robCount >= s.cfg[arch.ROBSize] || st.iqCount >= s.cfg[arch.IQSize] {
			break
		}
		if f.inst.Op.IsMem() && st.lsqCount >= s.cfg[arch.LSQSize] {
			break
		}
		bank := int8(-1)
		if f.inst.Dst >= 0 {
			if int(f.inst.Dst) < trace.NumIntRegs {
				if st.allocInt >= freeInt {
					break
				}
				st.allocInt++
				bank = 0
			} else {
				if st.allocFp >= freeFp {
					break
				}
				st.allocFp++
				bank = 1
			}
		}
		seq := st.nextSeq
		e := st.slot(seq)
		*e = entry{
			inst:      f.inst,
			state:     stDispatched,
			wrongPath: f.wrongPath,
			mispred:   f.mispred,
			complete:  neverCycle,
			dstBank:   bank,
			inIQ:      true,
			srcSeq1:   st.producerOf(f.inst.Src1),
			srcSeq2:   st.producerOf(f.inst.Src2),
		}
		if f.inst.Op.IsMem() {
			e.inLSQ = true
			st.lsqCount++
			st.acc.Add(power.StructLSQ, s.pm.LSQAccess)
		}
		if f.inst.Dst >= 0 {
			st.regProducer[f.inst.Dst] = int64(seq)
		}
		st.nextSeq++
		st.robCount++
		st.iqCount++
		st.acc.Add(power.StructROB, s.pm.ROBAccess)
		st.acc.Add(power.StructIQ, s.pm.IQInsert)
		st.acc.Add(power.StructRename, s.pm.RenameOp)
		if st.cnt != nil {
			st.cnt.dispatched(st, e)
		}
		if f.wrongPath {
			st.res.WrongPath++
		}
		st.fbHead++
	}
	if st.fbHead == len(st.fetchBuf) {
		st.fetchBuf = st.fetchBuf[:0]
		st.fbHead = 0
	}
}

// producerOf returns the in-flight producer seq for register r, or -1.
func (st *runState) producerOf(r int8) int64 {
	if r < 0 {
		return -1
	}
	return st.regProducer[r]
}

// fetch brings up to Width instructions into the fetch buffer, consulting
// the I-cache and the branch predictor, honouring the in-flight branch
// limit and injecting wrong-path instructions after a misprediction.
func (s *Sim) fetch(st *runState, src Source, target uint64) {
	if st.cycle < st.fetchStallUntil {
		return
	}
	w := s.cfg[arch.Width]
	for k := 0; k < w; k++ {
		if st.fbLen() >= w*7 {
			return // fetch buffer nearly full
		}
		var in trace.Inst
		wrong := st.wrongPathMode
		switch {
		case wrong:
			in = s.nextWrongPath(st)
		case st.stashValid:
			in = st.stash
			st.stashValid = false
		case st.fetchedCorrect < target:
			in = src.Next()
			st.fetchedCorrect++
		default:
			return // trace exhausted; drain
		}

		isBranch := in.Op == trace.Branch && !wrong
		if isBranch && st.unresolved >= s.cfg[arch.MaxBranches] {
			// Cannot speculate past more in-flight branches: hold the
			// branch and retry next cycle.
			st.stash = in
			st.stashValid = true
			return
		}

		fc := st.cycle
		missed := false
		if k == 0 {
			// One I-cache access per fetch group.
			lvl := s.hier.AccessFetch(in.PC)
			st.acc.Add(power.StructICache, s.pm.ICacheAccess)
			if lvl != cache.L1Hit {
				var lat uint64
				if lvl == cache.L2Hit {
					lat = uint64(s.pm.L2Latency)
					st.acc.Add(power.StructL2, s.pm.L2Access)
				} else {
					lat = uint64(s.pm.MemLatency)
					st.acc.Add(power.StructL2, s.pm.L2Access+s.pm.MemAccess)
				}
				st.fetchStallUntil = st.cycle + lat
				fc = st.fetchStallUntil // arrives when the miss returns
				missed = true
			} else if st.cnt != nil && !wrong {
				st.cnt.observeFetch(in.PC)
			}
		}

		f := fetchedInst{inst: in, fetchCycle: fc, wrongPath: wrong}
		if isBranch {
			st.acc.Add(power.StructBpred, s.pm.BpredLookup+s.pm.BTBLookup)
			correct := s.bp.Update(in.PC, in.Taken, in.Target)
			st.unresolved++
			if st.cnt != nil {
				st.cnt.branchFetched(in)
			}
			if !correct {
				f.mispred = true
				st.wrongPathMode = true
			}
		}
		st.fetchBuf = append(st.fetchBuf, f)
		st.res.Fetched++
		if !wrong {
			s.recordFetch(st, in)
		}
		if missed {
			return // the group ends at an I-cache miss
		}
		if isBranch && (f.mispred || in.Taken) {
			return // redirect (taken) or switch to the wrong path
		}
	}
}

// recordFetch appends the instruction to the wrong-path replay ring.
func (s *Sim) recordFetch(st *runState, in trace.Inst) {
	st.wpRing[st.wpCount%wpRingSize] = in
	st.wpCount++
}

// nextWrongPath synthesizes the next wrong-path instruction by replaying
// recent fetch history at a shifted address: plausible nearby code that
// occupies resources and pollutes the caches until the flush.
func (s *Sim) nextWrongPath(st *runState) trace.Inst {
	if st.wpCount == 0 {
		return trace.Inst{Op: trace.IntALU, Dst: 1, Src1: 2, Src2: 3, PC: 0x1000}
	}
	n := st.wpCount
	if n > wpRingSize {
		n = wpRingSize
	}
	in := st.wpRing[st.wpPos%n]
	st.wpPos++
	in.PC += 256 // nearby, but distinct, code
	if in.Op.IsMem() {
		in.Addr += 64
	}
	if in.Op == trace.Branch {
		// Wrong-path branches execute as plain ALU ops: they occupy
		// resources but cannot redirect fetch or resolve.
		in.Op = trace.IntALU
		in.Dst = 1
		in.Taken = false
	}
	return in
}
