package cpu

import (
	"errors"

	"repro/internal/cache"
	"repro/internal/power"
	"repro/internal/trace"
)

const (
	wbWindow         = 4096 // write-port scheduling horizon, cycles
	neverCycle       = ^uint64(0)
	wpRingSize       = 64   // fetch history replayed down the wrong path
	maxCyclesPerInst = 2000 // runaway guard
)

// fetchedInst is a fetch-buffer slot (fetched, not yet dispatched).
type fetchedInst struct {
	inst       trace.Inst
	fetchCycle uint64
	wrongPath  bool
	mispred    bool // this branch was mispredicted; fetch went wrong-path
}

// wref identifies an in-flight entry from the wakeup ring or the issue
// list: its sequence number (the identity check, since ROB slots are
// reused) and its ROB slot index (so no division is needed to reach it).
type wref struct {
	seq uint64
	idx int32
}

// farWref is a wakeup event beyond the ring horizon (only reachable under
// extreme write-port pressure); it carries its absolute cycle.
type farWref struct {
	seq   uint64
	cycle uint64
	idx   int32
}

// runState is the transient pipeline state for one Run. It is embedded in
// the Sim as a scratch arena and reset (capacities preserved) between
// runs, keeping the cycle loop allocation-free.
type runState struct {
	rob      []entry // ring, capacity = ROB size
	headSeq  uint64  // sequence number of the oldest in-flight entry
	nextSeq  uint64  // sequence number the next dispatched entry gets
	headIdx  int32   // headSeq % len(rob), maintained incrementally
	nextIdx  int32   // nextSeq % len(rob), maintained incrementally
	robCount int
	iqCount  int
	lsqCount int

	allocInt, allocFp int // allocated physical registers beyond architectural

	regProducer    [trace.NumRegs]int64 // seq of latest in-flight producer, -1 none
	regProducerIdx [trace.NumRegs]int32 // ROB slot of that producer

	// iqList holds the READY issue-queue residents (dispatched, operands
	// available, not yet issued) in ascending sequence order. Entries
	// with outstanding operands are not in the list at all: they are
	// reachable only through their producers' consumer chains (cons) and
	// join the list the cycle their last producer's writeback broadcasts.
	// The merge walk therefore visits exactly the entries the original
	// full-window scan would have acted on, in the same order.
	iqList []wref
	// cons[i] chains the dispatched consumers waiting on the result of
	// the entry in ROB slot i, in ascending sequence order. Chains are
	// truncated on flush and reset when a slot is re-dispatched, so they
	// never hold stale references.
	cons [][]wref

	// wake is the event-driven replacement for the per-cycle window scan:
	// slot c%wbWindow holds the entries whose results complete at cycle c,
	// kept sorted by seq so wakeup events replay in original scan order.
	wake    [wbWindow][]wref
	wakeFar []farWref // completions beyond the ring horizon

	fetchBuf []fetchedInst
	fbHead   int
	wbUsed   [wbWindow]uint16

	cycle           uint64
	fetchStallUntil uint64
	wrongPathMode   bool
	unresolved      int // in-flight correct-path branches not yet resolved

	stash      trace.Inst // branch refused by the in-flight limit, refetched later
	stashValid bool

	wpRing  [wpRingSize]trace.Inst
	wpCount int
	wpPos   int

	fetchedCorrect uint64

	// windowGen increments whenever the in-flight window changes in a way
	// the collector's speculation walk can observe (dispatch, issue,
	// commit, branch resolution, flush). The collector caches its walk
	// against it.
	windowGen uint64

	// Slice fast path: when the Source is a *SliceSource its contents are
	// mirrored here so fetch indexes the slice directly instead of making
	// an interface call per instruction.
	srcFast []trace.Inst
	srcPos  int

	acc power.Account
	res Result
	cnt *collector
}

// fbLen returns the number of fetched-but-undispatched instructions.
func (st *runState) fbLen() int { return len(st.fetchBuf) - st.fbHead }

// getState returns the Sim's scratch run state, reset for a fresh run
// with slice capacities preserved.
func (s *Sim) getState() *runState {
	st := s.scratch
	if st == nil {
		st = &runState{}
		s.scratch = st
	}
	if len(st.rob) != s.robSize {
		st.rob = make([]entry, s.robSize)
	}
	st.headSeq, st.nextSeq = 0, 0
	st.headIdx, st.nextIdx = 0, 0
	st.robCount, st.iqCount, st.lsqCount = 0, 0, 0
	st.allocInt, st.allocFp = 0, 0
	for i := range st.regProducer {
		st.regProducer[i] = -1
	}
	st.iqList = st.iqList[:0]
	if len(st.cons) != s.robSize {
		st.cons = make([][]wref, s.robSize)
	} else {
		for i := range st.cons {
			st.cons[i] = st.cons[i][:0]
		}
	}
	// Wakeup tokens and write-port reservations can outlive a drained
	// run (squashed entries leave both behind); clear them so sequence
	// numbers from a previous run can never alias into this one.
	for i := range st.wake {
		st.wake[i] = st.wake[i][:0]
	}
	st.wakeFar = st.wakeFar[:0]
	st.wbUsed = [wbWindow]uint16{}
	if cap(st.fetchBuf) < s.width*8 {
		st.fetchBuf = make([]fetchedInst, 0, s.width*8)
	}
	st.fetchBuf = st.fetchBuf[:0]
	st.fbHead = 0
	st.cycle = 0
	st.fetchStallUntil = 0
	st.wrongPathMode = false
	st.unresolved = 0
	st.stashValid = false
	st.wpCount, st.wpPos = 0, 0
	st.fetchedCorrect = 0
	st.windowGen = 0
	st.srcFast = nil
	st.srcPos = 0
	st.acc = power.Account{}
	st.res = Result{}
	st.cnt = nil
	return st
}

var errCycleLimit = errors.New("cpu: cycle limit exceeded (pipeline deadlock?)")

// Run simulates n correct-path instructions from src under opts and
// returns the result. The simulation ends when all n instructions have
// committed and the pipeline has drained.
func (s *Sim) Run(src Source, n int, opts Options) (*Result, error) {
	if n <= 0 {
		return nil, errors.New("cpu: instruction count must be positive")
	}
	if opts.WarmupInsts > 0 {
		warm := opts
		warm.WarmupInsts = 0
		warm.Collect = false
		warm.StartStall = 0
		warm.FlushCaches = opts.FlushCaches
		warm.ExtraEnergyPJ = 0
		wres, err := s.Run(src, opts.WarmupInsts, warm)
		if err != nil {
			return nil, err
		}
		obsWarmupInsts.Add(wres.Committed)
		opts.FlushCaches = false
	}
	if opts.FlushCaches {
		s.hier.Flush()
	}
	s.bp.ResetStats()
	s.hier.L1I.ResetStats()
	s.hier.L1D.ResetStats()
	s.hier.L2.ResetStats()

	st := s.getState()
	st.fetchStallUntil = opts.StartStall
	if opts.Collect {
		c, err := newCollector(s.cfg, opts.SampledSets)
		if err != nil {
			return nil, err
		}
		st.cnt = c
	}
	if opts.ExtraEnergyPJ > 0 {
		st.acc.Add(power.StructClock, opts.ExtraEnergyPJ)
	}
	ss, fast := src.(*SliceSource)
	if fast {
		st.srcFast = ss.insts
		st.srcPos = ss.pos
	}

	target := uint64(n)
	limit := uint64(n)*maxCyclesPerInst + 100_000
	for {
		st.cycle++
		if st.cycle > limit {
			if fast {
				ss.pos = st.srcPos
			}
			return nil, errCycleLimit
		}
		cProg := s.commit(st)
		iProg, readyBlocked := s.issueAndWake(st)
		dProg := s.dispatch(st)
		fProg := s.fetch(st, src, target)

		// Per-cycle energy: clock tree plus the conditional-clocking floor.
		st.acc.Add(power.StructClock, s.perCycPJ)
		if st.cnt != nil {
			st.cnt.perCycle(s, st)
		}
		// Expire the write-port slot for the cycle that just passed; it is
		// not needed again until the ring wraps, far beyond any latency.
		st.wbUsed[st.cycle%wbWindow] = 0

		if st.res.Committed >= target && st.robCount == 0 && st.fbLen() == 0 && !st.stashValid {
			break
		}
		if !(cProg || iProg || dProg || fProg || readyBlocked) {
			// No stage moved and nothing is ready-but-resource-blocked:
			// every future unblock is a scheduled event, so the clock can
			// fast-forward through the dead cycles.
			if err := s.fastForward(st, limit); err != nil {
				if fast {
					ss.pos = st.srcPos
				}
				return nil, err
			}
		}
	}
	if fast {
		ss.pos = st.srcPos
	}

	st.res.Config = s.cfg
	st.res.Cycles = st.cycle
	st.res.BranchLookups = s.bp.Lookups
	st.res.Mispredicts = s.bp.Mispredicts
	st.res.BTBMisses = s.bp.BTBMisses
	st.res.L1IAccesses = s.hier.L1I.Accesses
	st.res.L1IMisses = s.hier.L1I.Misses
	st.res.L1DAccesses = s.hier.L1D.Accesses
	st.res.L1DMisses = s.hier.L1D.Misses
	st.res.L2Accesses = s.hier.L2.Accesses
	st.res.L2Misses = s.hier.L2.Misses
	st.res.Energy = s.pm.Summarize(&st.acc, st.cycle)
	st.res.finalize(s.pm)
	if st.cnt != nil {
		st.res.Counters = st.cnt.finish(s, &st.res)
	}
	obsRuns.Inc()
	obsInsts.Add(st.res.Committed)
	obsCycles.Add(st.res.Cycles)
	out := st.res
	return &out, nil
}

// fastForward advances the clock through cycles in which no stage can make
// progress, charging per-cycle accounting identically to the main loop. It
// stops one cycle short of the next scheduled event: a wakeup token, a
// far-horizon completion, the fetch-stall release, or the front-end
// delivery of the oldest buffered instruction.
func (s *Sim) fastForward(st *runState, limit uint64) error {
	stop := neverCycle
	if st.fetchStallUntil > st.cycle {
		stop = st.fetchStallUntil
	}
	if st.fbLen() > 0 {
		if fe := st.fetchBuf[st.fbHead].fetchCycle + s.feLat; fe < stop {
			stop = fe
		}
	}
	for _, f := range st.wakeFar {
		if f.cycle < stop {
			stop = f.cycle
		}
	}
	for {
		next := st.cycle + 1
		if next >= stop || len(st.wake[next%wbWindow]) > 0 {
			return nil
		}
		st.cycle = next
		if st.cycle > limit {
			return errCycleLimit
		}
		// Identical per-cycle accounting to the main loop: one clock-tree
		// charge per cycle (floating-point order preserved — a batched
		// multiply would round differently), counter sampling, and the
		// write-port slot expiry.
		st.acc.Add(power.StructClock, s.perCycPJ)
		if st.cnt != nil {
			st.cnt.perCycle(s, st)
		}
		st.wbUsed[st.cycle%wbWindow] = 0
	}
}

// commit retires up to Width completed entries from the ROB head, in
// order.
func (s *Sim) commit(st *runState) bool {
	w := s.width
	prog := false
	for k := 0; k < w && st.robCount > 0; k++ {
		e := &st.rob[st.headIdx]
		if e.mispred && !e.resolved {
			return prog // wait for the flush this branch will trigger
		}
		if e.state != stCompleted || e.complete > st.cycle {
			return prog
		}
		if e.wrongPath {
			// Wrong-path entries are removed by the flush, never committed.
			return prog
		}
		if e.inLSQ {
			st.lsqCount--
		}
		if e.inst.Dst >= 0 && st.regProducer[e.inst.Dst] == int64(st.headSeq) {
			st.regProducer[e.inst.Dst] = -1
		}
		s.freeDst(st, e)
		st.acc.Add(power.StructROB, s.pm.ROBAccess) // retirement read
		st.headSeq++
		st.headIdx++
		if int(st.headIdx) == len(st.rob) {
			st.headIdx = 0
		}
		st.robCount--
		st.res.Committed++
		st.windowGen++
		prog = true
	}
	return prog
}

func (s *Sim) freeDst(st *runState, e *entry) {
	switch e.dstBank {
	case 0:
		st.allocInt--
	case 1:
		st.allocFp--
	}
	e.dstBank = -1
}

// issueAndWake replaces the original per-cycle O(ROB) window scan. The
// cycle's wakeup tokens (completion events) and the issue-queue residents
// are both ordered by sequence number, so a single merge walk visits
// exactly the entries the full scan would have acted on, in the same
// order — every state transition and energy charge replays identically.
func (s *Sim) issueAndWake(st *runState) (progress, readyBlocked bool) {
	if len(st.wakeFar) > 0 {
		st.drainFar()
	}
	slot := st.cycle % wbWindow
	wake := st.wake[slot]
	if len(wake) == 0 && len(st.iqList) == 0 {
		// No completion is due and nothing is ready to issue: the walk
		// would visit nothing and charge nothing, so skip it outright.
		// (Waiting entries live in consumer chains, not the list, and
		// can only become ready through a completion.)
		return false, false
	}
	iq := st.iqList

	issueBudget := s.width
	rdPorts := s.rdPorts
	intALU, intMul, fpALU, fpMul, memPort := s.nIntALU, s.nIntMul, s.nFpALU, s.nFpMul, s.nMemPort
	rdUsed := 0

	wi, qi, qw := 0, 0, 0
	for wi < len(wake) || qi < len(iq) {
		if wi < len(wake) && (qi >= len(iq) || wake[wi].seq <= iq[qi].seq) {
			// Writeback transition.
			w := wake[wi]
			wi++
			e := &st.rob[w.idx]
			// Tokens are not retracted on flush; squashed entries leave
			// stale tokens behind. A token acts only if its entry is still
			// the one it was issued for and is due exactly now.
			if w.seq < st.headSeq || w.seq >= st.nextSeq || e.state != stIssued || e.complete != st.cycle {
				continue
			}
			progress = true
			e.state = stCompleted
			// Wakeup broadcast to the issue queue.
			st.acc.Add(power.StructIQ, s.pm.IQWakeup)
			if e.inst.Dst >= 0 && !e.wrongPath {
				st.acc.Add(power.StructRF, s.pm.RFWrite)
			}
			if e.inst.Op == trace.Branch && !e.resolved && !e.wrongPath {
				e.resolved = true
				st.unresolved--
				st.windowGen++
				if e.mispred {
					s.flushAfter(st, w.seq)
					// Everything not yet visited by this walk is younger
					// than the branch and was just squashed: drop the rest
					// of the candidate list and the cycle's tokens.
					st.iqList = iq[:qw]
					st.wake[slot] = wake[:0]
					return true, readyBlocked
				}
			}
			// Wake the consumers waiting on this result; ones whose last
			// operand this is become issuable this very cycle and join
			// the list at their sequence position — ahead of the walk
			// cursor, since they are younger than this token — exactly
			// where the original scan would have found them ready.
			if ch := st.cons[w.idx]; len(ch) > 0 {
				for _, cr := range ch {
					t := &st.rob[cr.idx]
					t.pending--
					if t.pending == 0 {
						iq = append(iq, wref{})
						p := len(iq) - 1
						for p > qi && iq[p-1].seq > cr.seq {
							iq[p] = iq[p-1]
							p--
						}
						iq[p] = cr
					}
				}
				st.cons[w.idx] = ch[:0]
			}
			continue
		}
		// Issue candidate, oldest first. Everything in the list has its
		// operands available (pending reached zero), so only structural
		// resources gate issue.
		if issueBudget == 0 && wi == len(wake) {
			// Budget spent and no tokens left: nothing that follows can
			// transition or charge energy, so bulk-copy the tail.
			qw += copy(iq[qw:], iq[qi:])
			break
		}
		c := iq[qi]
		qi++
		if issueBudget == 0 {
			iq[qw] = c
			qw++
			continue
		}
		e := &st.rob[c.idx]
		nsrc := 0
		if e.inst.Src1 >= 0 {
			nsrc++
		}
		if e.inst.Src2 >= 0 {
			nsrc++
		}
		if rdUsed+nsrc > rdPorts {
			iq[qw] = c
			qw++
			readyBlocked = true
			continue
		}
		var fu *int
		switch e.inst.Op {
		case trace.IntALU, trace.Branch, trace.Store:
			fu = &intALU
		case trace.IntMul:
			fu = &intMul
		case trace.FpALU:
			fu = &fpALU
		case trace.FpMul:
			fu = &fpMul
		default: // Load
			fu = &memPort
		}
		if *fu == 0 || (e.inst.Op == trace.Store && memPort == 0) {
			iq[qw] = c
			qw++
			readyBlocked = true
			continue
		}
		*fu--
		if e.inst.Op == trace.Store {
			memPort--
		}
		rdUsed += nsrc
		issueBudget--
		progress = true

		lat := s.latTab[e.inst.Op]
		st.acc.Add(power.StructIQ, s.pm.IQIssue)
		st.acc.Add(power.StructRF, float64(nsrc)*s.pm.RFRead)
		switch e.inst.Op {
		case trace.Load, trace.Store:
			lvl := s.hier.AccessData(e.inst.Addr)
			st.acc.Add(power.StructDCache, s.pm.DCacheAccess)
			st.acc.Add(power.StructLSQ, s.pm.LSQAccess)
			if e.inst.Op == trace.Load {
				switch lvl {
				case cache.L2Hit:
					lat = s.l2Lat
					st.acc.Add(power.StructL2, s.pm.L2Access)
				case cache.Memory:
					lat = s.memLat
					st.acc.Add(power.StructL2, s.pm.L2Access+s.pm.MemAccess)
				}
			} else if lvl != cache.L1Hit {
				st.acc.Add(power.StructL2, s.pm.L2Access)
			}
			if st.cnt != nil && !e.wrongPath {
				st.cnt.observeData(e.inst.Addr)
			}
		case trace.IntALU, trace.Branch:
			st.acc.Add(power.StructFU, s.pm.IntOp)
		case trace.IntMul, trace.FpMul:
			st.acc.Add(power.StructFU, s.pm.MulOp)
		case trace.FpALU:
			st.acc.Add(power.StructFU, s.pm.FpOp)
		}

		// Write-port scheduling: completion lands on the first cycle at or
		// after the nominal finish with a free write port.
		fin := st.cycle + lat
		if e.inst.Dst >= 0 {
			for st.wbUsed[fin%wbWindow] >= s.wrPorts {
				fin++
			}
			st.wbUsed[fin%wbWindow]++
		}
		e.complete = fin
		e.state = stIssued
		e.inIQ = false
		st.iqCount--
		st.windowGen++
		st.pushWake(c.seq, c.idx, fin)
		if st.cnt != nil {
			st.cnt.issued(st, e, nsrc)
		}
	}
	st.wake[slot] = wake[:0]
	st.iqList = iq[:qw]
	return progress, readyBlocked
}

// pushWake schedules a completion event for cycle fin, keeping each ring
// slot sorted by sequence number.
func (st *runState) pushWake(seq uint64, idx int32, fin uint64) {
	if fin-st.cycle >= wbWindow {
		st.wakeFar = append(st.wakeFar, farWref{seq: seq, cycle: fin, idx: idx})
		return
	}
	slot := fin % wbWindow
	l := st.wake[slot]
	i := len(l)
	for i > 0 && l[i-1].seq > seq {
		i--
	}
	l = append(l, wref{})
	copy(l[i+1:], l[i:])
	l[i] = wref{seq: seq, idx: idx}
	st.wake[slot] = l
}

// drainFar migrates far-horizon completions into the ring once they come
// within its reach.
func (st *runState) drainFar() {
	kept := st.wakeFar[:0]
	for _, f := range st.wakeFar {
		if f.cycle-st.cycle < wbWindow {
			slot := f.cycle % wbWindow
			l := st.wake[slot]
			i := len(l)
			for i > 0 && l[i-1].seq > f.seq {
				i--
			}
			l = append(l, wref{})
			copy(l[i+1:], l[i:])
			l[i] = wref{seq: f.seq, idx: f.idx}
			st.wake[slot] = l
		} else {
			kept = append(kept, f)
		}
	}
	st.wakeFar = kept
}

// flushAfter squashes every entry younger than seq (all wrong-path),
// restores resource counts, and redirects fetch to the correct path.
func (s *Sim) flushAfter(st *runState, seq uint64) {
	n := len(st.rob)
	idx := int(seq % uint64(n))
	for q := seq + 1; q < st.nextSeq; q++ {
		idx++
		if idx == n {
			idx = 0
		}
		e := &st.rob[idx]
		if e.inIQ {
			st.iqCount--
		}
		if e.inLSQ {
			st.lsqCount--
		}
		s.freeDst(st, e)
		st.robCount--
	}
	st.nextSeq = seq + 1
	st.nextIdx = int32((seq + 1) % uint64(n))
	// Producers among the squashed entries are gone.
	for r := range st.regProducer {
		if st.regProducer[r] > int64(seq) {
			st.regProducer[r] = -1
		}
	}
	// Surviving producers must forget squashed consumers: chains are in
	// ascending sequence order, so the squashed suffix peels off the tail.
	// (Squashed slots' own chains are reset when the slot re-dispatches.)
	idx = int(st.headIdx)
	for q := st.headSeq; q <= seq; q++ {
		ch := st.cons[idx]
		for len(ch) > 0 && ch[len(ch)-1].seq > seq {
			ch = ch[:len(ch)-1]
		}
		st.cons[idx] = ch
		idx++
		if idx == n {
			idx = 0
		}
	}
	st.fetchBuf = st.fetchBuf[:0]
	st.fbHead = 0
	st.wrongPathMode = false
	st.wpPos = 0
	st.windowGen++
	// Redirect: the front-end refill delay is modelled by dispatch's
	// FrontEndStages latency on newly fetched instructions; the extra
	// stall covers resolution-to-redirect wiring.
	redirect := st.cycle + uint64(s.pm.MispredictCycles-s.pm.FrontEndStages)
	if redirect < st.cycle+1 {
		redirect = st.cycle + 1
	}
	if redirect > st.fetchStallUntil {
		st.fetchStallUntil = redirect
	}
}

// dispatch moves fetched instructions into the window, allocating ROB, IQ,
// LSQ and physical-register resources.
func (s *Sim) dispatch(st *runState) bool {
	w := s.width
	fe := s.feLat
	prog := false
	for done := 0; done < w && st.fbHead < len(st.fetchBuf); done++ {
		f := &st.fetchBuf[st.fbHead]
		if f.fetchCycle+fe > st.cycle {
			break // still in the front-end pipeline
		}
		if st.robCount >= s.robSize || st.iqCount >= s.iqSize {
			break
		}
		if f.inst.Op.IsMem() && st.lsqCount >= s.lsqSize {
			break
		}
		bank := int8(-1)
		if f.inst.Dst >= 0 {
			if int(f.inst.Dst) < trace.NumIntRegs {
				if st.allocInt >= s.freeInt {
					break
				}
				st.allocInt++
				bank = 0
			} else {
				if st.allocFp >= s.freeFp {
					break
				}
				st.allocFp++
				bank = 1
			}
		}
		seq := st.nextSeq
		idx := st.nextIdx
		e := &st.rob[idx]
		// Link this entry into its producers' consumer chains; a producer
		// that has already completed leaves the operand available from
		// the start. The slot's own (stale) chain dies with its previous
		// occupant.
		st.cons[idx] = st.cons[idx][:0]
		pend := int8(0)
		if p1, i1 := st.producerOf(f.inst.Src1); p1 >= 0 && st.rob[i1].state != stCompleted {
			st.cons[i1] = append(st.cons[i1], wref{seq: seq, idx: idx})
			pend++
		}
		if p2, i2 := st.producerOf(f.inst.Src2); p2 >= 0 && st.rob[i2].state != stCompleted {
			st.cons[i2] = append(st.cons[i2], wref{seq: seq, idx: idx})
			pend++
		}
		*e = entry{
			inst:      f.inst,
			state:     stDispatched,
			wrongPath: f.wrongPath,
			mispred:   f.mispred,
			complete:  neverCycle,
			dstBank:   bank,
			inIQ:      true,
			pending:   pend,
		}
		if f.inst.Op.IsMem() {
			e.inLSQ = true
			st.lsqCount++
			st.acc.Add(power.StructLSQ, s.pm.LSQAccess)
		}
		if f.inst.Dst >= 0 {
			st.regProducer[f.inst.Dst] = int64(seq)
			st.regProducerIdx[f.inst.Dst] = idx
		}
		if pend == 0 {
			st.iqList = append(st.iqList, wref{seq: seq, idx: idx})
		}
		st.nextSeq++
		st.nextIdx++
		if int(st.nextIdx) == len(st.rob) {
			st.nextIdx = 0
		}
		st.robCount++
		st.iqCount++
		st.windowGen++
		st.acc.Add(power.StructROB, s.pm.ROBAccess)
		st.acc.Add(power.StructIQ, s.pm.IQInsert)
		st.acc.Add(power.StructRename, s.pm.RenameOp)
		if st.cnt != nil {
			st.cnt.dispatched(st, e)
		}
		if f.wrongPath {
			st.res.WrongPath++
		}
		st.fbHead++
		prog = true
	}
	if st.fbHead == len(st.fetchBuf) {
		st.fetchBuf = st.fetchBuf[:0]
		st.fbHead = 0
	}
	return prog
}

// producerOf returns the in-flight producer seq and ROB slot for register
// r, or (-1, 0).
func (st *runState) producerOf(r int8) (int64, int32) {
	if r < 0 {
		return -1, 0
	}
	seq := st.regProducer[r]
	if seq < 0 {
		return -1, 0
	}
	return seq, st.regProducerIdx[r]
}

// pushFetch appends to the fetch buffer, compacting the drained prefix in
// place when the backing array fills so the buffer never reallocates.
func (st *runState) pushFetch(f fetchedInst) {
	if len(st.fetchBuf) == cap(st.fetchBuf) && st.fbHead > 0 {
		n := copy(st.fetchBuf, st.fetchBuf[st.fbHead:])
		st.fetchBuf = st.fetchBuf[:n]
		st.fbHead = 0
	}
	st.fetchBuf = append(st.fetchBuf, f)
}

// fetch brings up to Width instructions into the fetch buffer, consulting
// the I-cache and the branch predictor, honouring the in-flight branch
// limit and injecting wrong-path instructions after a misprediction.
func (s *Sim) fetch(st *runState, src Source, target uint64) bool {
	if st.cycle < st.fetchStallUntil {
		return false
	}
	w := s.width
	full := w * 7
	prog := false
	for k := 0; k < w; k++ {
		if st.fbLen() >= full {
			return prog // fetch buffer nearly full
		}
		var in trace.Inst
		wrong := st.wrongPathMode
		switch {
		case wrong:
			in = s.nextWrongPath(st)
		case st.stashValid:
			in = st.stash
			st.stashValid = false
		case st.fetchedCorrect < target:
			if st.srcFast != nil {
				in = st.srcFast[st.srcPos]
				st.srcPos++
				if st.srcPos == len(st.srcFast) {
					st.srcPos = 0
				}
			} else {
				in = src.Next()
			}
			st.fetchedCorrect++
		default:
			return prog // trace exhausted; drain
		}

		isBranch := in.Op == trace.Branch && !wrong
		if isBranch && st.unresolved >= s.maxBr {
			// Cannot speculate past more in-flight branches: hold the
			// branch and retry next cycle.
			st.stash = in
			st.stashValid = true
			return prog
		}

		fc := st.cycle
		missed := false
		if k == 0 {
			// One I-cache access per fetch group.
			lvl := s.hier.AccessFetch(in.PC)
			st.acc.Add(power.StructICache, s.pm.ICacheAccess)
			if lvl != cache.L1Hit {
				var lat uint64
				if lvl == cache.L2Hit {
					lat = s.l2Lat
					st.acc.Add(power.StructL2, s.pm.L2Access)
				} else {
					lat = s.memLat
					st.acc.Add(power.StructL2, s.pm.L2Access+s.pm.MemAccess)
				}
				st.fetchStallUntil = st.cycle + lat
				fc = st.fetchStallUntil // arrives when the miss returns
				missed = true
			} else if st.cnt != nil && !wrong {
				st.cnt.observeFetch(in.PC)
			}
		}

		f := fetchedInst{inst: in, fetchCycle: fc, wrongPath: wrong}
		if isBranch {
			st.acc.Add(power.StructBpred, s.pm.BpredLookup+s.pm.BTBLookup)
			correct := s.bp.Update(in.PC, in.Taken, in.Target)
			st.unresolved++
			if st.cnt != nil {
				st.cnt.branchFetched(in)
			}
			if !correct {
				f.mispred = true
				st.wrongPathMode = true
			}
		}
		st.pushFetch(f)
		st.res.Fetched++
		prog = true
		if !wrong {
			s.recordFetch(st, in)
		}
		if missed {
			return prog // the group ends at an I-cache miss
		}
		if isBranch && (f.mispred || in.Taken) {
			return prog // redirect (taken) or switch to the wrong path
		}
	}
	return prog
}

// recordFetch appends the instruction to the wrong-path replay ring.
func (s *Sim) recordFetch(st *runState, in trace.Inst) {
	st.wpRing[st.wpCount%wpRingSize] = in
	st.wpCount++
}

// nextWrongPath synthesizes the next wrong-path instruction by replaying
// recent fetch history at a shifted address: plausible nearby code that
// occupies resources and pollutes the caches until the flush.
func (s *Sim) nextWrongPath(st *runState) trace.Inst {
	if st.wpCount == 0 {
		return trace.Inst{Op: trace.IntALU, Dst: 1, Src1: 2, Src2: 3, PC: 0x1000}
	}
	n := st.wpCount
	if n > wpRingSize {
		n = wpRingSize
	}
	// wpPos restarts at 0 on every flush and n is frozen while wrong-path
	// mode is active, so a wrap compare replays the same index sequence
	// the original modulo produced.
	if st.wpPos >= n {
		st.wpPos = 0
	}
	in := st.wpRing[st.wpPos]
	st.wpPos++
	in.PC += 256 // nearby, but distinct, code
	if in.Op.IsMem() {
		in.Addr += 64
	}
	if in.Op == trace.Branch {
		// Wrong-path branches execute as plain ALU ops: they occupy
		// resources but cannot redirect fetch or resolve.
		in.Op = trace.IntALU
		in.Dst = 1
		in.Taken = false
	}
	return in
}
