// Package cpu implements the cycle-level out-of-order superscalar
// processor simulator underlying every experiment: the stand-in for the
// paper's modified SimpleScalar/Wattch (RUU replaced by explicit reorder
// buffer, issue queue and register files, exactly as the paper describes).
//
// The pipeline models, per cycle: fetch (I-cache, branch prediction,
// in-flight branch limit, wrong-path injection after a misprediction),
// rename/dispatch (ROB/IQ/LSQ/physical-register allocation), issue
// (oldest-first, operand readiness, functional-unit and register-file
// read-port contention), execution (class latencies, cache hierarchy for
// loads), writeback (write-port contention) and in-order commit. Dynamic
// energy is charged per event and leakage per cycle through
// internal/power; optional counter collection builds the paper's temporal
// histograms (internal/cpu's RawCounters, consumed by internal/counters).
//
// The simulator is trace-driven with wrong-path injection: when the
// predictor disagrees with the trace outcome, synthetic wrong-path
// instructions (replays of recent fetch history) occupy resources and
// pollute caches until the branch resolves, then are squashed.
package cpu

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/power"
	"repro/internal/trace"
)

// Source supplies the dynamic instruction stream. trace.Generator
// implements it.
type Source interface {
	Next() trace.Inst
}

// SliceSource replays a fixed instruction slice, looping at the end, so
// the identical stream can be run under many configurations.
type SliceSource struct {
	insts []trace.Inst
	pos   int
}

// NewSliceSource wraps insts; it panics on an empty slice.
func NewSliceSource(insts []trace.Inst) *SliceSource {
	if len(insts) == 0 {
		panic("cpu: empty instruction slice")
	}
	return &SliceSource{insts: insts}
}

// Next returns the next instruction, wrapping around at the end.
func (s *SliceSource) Next() trace.Inst {
	in := s.insts[s.pos]
	s.pos++
	if s.pos == len(s.insts) {
		s.pos = 0
	}
	return in
}

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// Options controls a simulation run.
type Options struct {
	// Collect enables temporal-histogram counter collection (used on the
	// profiling configuration). It slows simulation.
	Collect bool
	// SampledSets, when Collect is set, bounds the number of cache sets
	// monitored per profiler (dynamic set sampling, Table IV). Zero means
	// monitor all sets.
	SampledSets int
	// StartStall injects a pipeline stall of the given number of cycles at
	// the start of the run, and FlushCaches invalidates cache contents
	// first — together they model reconfiguration overhead (Table V).
	StartStall  uint64
	FlushCaches bool
	// ExtraEnergyPJ is charged to the clock structure up front (models
	// reconfiguration energy).
	ExtraEnergyPJ float64
	// WarmupInsts executes this many instructions before measurement
	// begins, warming caches and predictor state (the paper warms for 10M
	// instructions; scaled runs use proportionally less).
	WarmupInsts int
}

// Result summarises one simulation run.
type Result struct {
	Config    arch.Config
	Cycles    uint64
	Committed uint64 // correct-path instructions committed
	Fetched   uint64 // all instructions fetched (incl. wrong path)
	WrongPath uint64 // wrong-path instructions dispatched

	BranchLookups uint64
	Mispredicts   uint64
	BTBMisses     uint64
	L1IAccesses   uint64
	L1IMisses     uint64
	L1DAccesses   uint64
	L1DMisses     uint64
	L2Accesses    uint64
	L2Misses      uint64

	Energy power.Summary

	// Derived.
	IPC        float64
	SecondsSim float64 // simulated wall-clock time
	IPS        float64 // instructions per simulated second
	Watts      float64
	EnergyJ    float64
	Efficiency float64 // ips^3 / Watt, the paper's metric

	Counters *RawCounters // non-nil when Options.Collect was set
}

// finalize computes the derived metrics from the raw totals.
func (r *Result) finalize(pm *power.Model) {
	if r.Cycles > 0 {
		r.IPC = float64(r.Committed) / float64(r.Cycles)
	}
	r.SecondsSim = float64(r.Cycles) * pm.PeriodPs * 1e-12
	if r.SecondsSim > 0 {
		r.IPS = float64(r.Committed) / r.SecondsSim
		r.Watts = r.Energy.TotalJ / r.SecondsSim
	}
	r.EnergyJ = r.Energy.TotalJ
	if r.Watts > 0 {
		r.Efficiency = r.IPS * r.IPS * r.IPS / r.Watts
	}
}

// entryState tracks an in-flight instruction's progress.
type entryState uint8

const (
	stDispatched entryState = iota
	stIssued
	stCompleted
)

// entry is one ROB slot.
type entry struct {
	inst      trace.Inst
	state     entryState
	wrongPath bool
	// mispred marks the one in-flight branch known to be mispredicted
	// (fetch redirected down the wrong path until it resolves).
	mispred  bool
	resolved bool
	complete uint64 // cycle at which the result is written back
	// pending counts source operands whose in-flight producer has not yet
	// completed. It is set at dispatch and decremented by the producer's
	// writeback broadcast; the entry joins the ready list exactly when it
	// reaches zero (the cycle its last operand becomes available).
	pending int8
	dstBank int8 // 0 int, 1 fp, -1 none (phys reg accounting)
	inIQ    bool
	inLSQ   bool
}

// Sim is a configured processor instance. Create with New, run with Run.
// A Sim is single-use per Run call sequence and not safe for concurrent
// use.
type Sim struct {
	cfg  arch.Config
	pm   *power.Model
	hier *cache.Hierarchy
	bp   *branch.Predictor

	// Functional unit counts derived from width.
	nIntALU, nIntMul, nFpALU, nFpMul, nMemPort int

	// Hoisted configuration and power-model constants, refreshed by
	// derive() on New and Reconfigure so the cycle loop never indexes the
	// config or switches on an op class for a latency.
	width    int
	robSize  int
	iqSize   int
	lsqSize  int
	maxBr    int
	rdPorts  int
	wrPorts  uint16
	freeInt  int
	freeFp   int
	feLat    uint64
	l2Lat    uint64
	memLat   uint64
	perCycPJ float64
	latTab   [trace.NumOpClasses]uint64

	// scratch is the per-Sim run-state arena, reused across Run calls so
	// the cycle loop allocates nothing. A Sim is documented single-use
	// per Run sequence, so sharing it is safe.
	scratch *runState
}

// New builds a simulator for cfg. It returns an error if cfg is outside
// the design space.
func New(cfg arch.Config) (*Sim, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg[arch.ICacheKB], cfg[arch.DCacheKB], cfg[arch.L2CacheKB])
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	bp, err := branch.New(cfg[arch.GshareSize], cfg[arch.BTBSize])
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	s := &Sim{
		cfg:  cfg,
		pm:   power.New(cfg),
		hier: hier,
		bp:   bp,
	}
	s.derive()
	return s, nil
}

// derive refreshes every config- and model-derived constant the cycle
// loop reads. Called on New and Reconfigure.
func (s *Sim) derive() {
	w := s.cfg[arch.Width]
	s.nIntALU = w
	s.nIntMul = max(1, w/4)
	s.nFpALU = max(1, w/2)
	s.nFpMul = max(1, w/4)
	s.nMemPort = max(1, w/2)
	s.width = w
	s.robSize = s.cfg[arch.ROBSize]
	s.iqSize = s.cfg[arch.IQSize]
	s.lsqSize = s.cfg[arch.LSQSize]
	s.maxBr = s.cfg[arch.MaxBranches]
	s.rdPorts = s.cfg[arch.RFReadPorts]
	s.wrPorts = uint16(s.cfg[arch.RFWritePorts])
	s.freeInt = s.cfg[arch.RFSize] - trace.NumIntRegs
	s.freeFp = s.cfg[arch.RFSize] - trace.NumFpRegs
	s.feLat = uint64(s.pm.FrontEndStages)
	s.l2Lat = uint64(s.pm.L2Latency)
	s.memLat = uint64(s.pm.MemLatency)
	s.perCycPJ = s.pm.ClockPerCyc + s.pm.IdlePerCyc
	for op := trace.OpClass(0); op < trace.NumOpClasses; op++ {
		s.latTab[op] = s.execLatency(op)
	}
}

// Config returns the simulated configuration.
func (s *Sim) Config() arch.Config { return s.cfg }

// Power returns the derived power/timing model.
func (s *Sim) Power() *power.Model { return s.pm }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Execution latencies by op class (cycles), before memory effects.
func (s *Sim) execLatency(op trace.OpClass) uint64 {
	switch op {
	case trace.IntALU:
		return 1
	case trace.IntMul:
		return 7
	case trace.FpALU:
		return 2
	case trace.FpMul:
		return 6
	case trace.Store:
		return 1
	case trace.Branch:
		return 1
	default: // Load base latency is the L1 hit time; misses add more.
		return uint64(s.pm.L1DLatency)
	}
}

// Reconfigure switches the simulator to a new configuration in place,
// preserving the architectural state a real adaptive processor would
// retain: caches keep their contents unless their size changed (bitline
// segmentation flushes a resized cache), and the branch predictor keeps
// its training unless its tables were resized. Timing, energy and
// functional-unit provisioning always follow the new configuration.
func (s *Sim) Reconfigure(cfg arch.Config) error {
	if err := cfg.Check(); err != nil {
		return err
	}
	old := s.cfg
	if cfg[arch.ICacheKB] != old[arch.ICacheKB] {
		c, err := cache.NewCache(cfg[arch.ICacheKB], 2, cache.L1LineBytes)
		if err != nil {
			return fmt.Errorf("cpu: reconfigure L1I: %w", err)
		}
		c.FillFrom(s.hier.L1I) // surviving partitions keep their lines
		s.hier.L1I = c
	}
	if cfg[arch.DCacheKB] != old[arch.DCacheKB] {
		c, err := cache.NewCache(cfg[arch.DCacheKB], 2, cache.L1LineBytes)
		if err != nil {
			return fmt.Errorf("cpu: reconfigure L1D: %w", err)
		}
		c.FillFrom(s.hier.L1D)
		s.hier.L1D = c
	}
	if cfg[arch.L2CacheKB] != old[arch.L2CacheKB] {
		c, err := cache.NewCache(cfg[arch.L2CacheKB], 8, cache.L2LineBytes)
		if err != nil {
			return fmt.Errorf("cpu: reconfigure L2: %w", err)
		}
		c.FillFrom(s.hier.L2)
		s.hier.L2 = c
	}
	if cfg[arch.GshareSize] != old[arch.GshareSize] || cfg[arch.BTBSize] != old[arch.BTBSize] {
		bp, err := branch.New(cfg[arch.GshareSize], cfg[arch.BTBSize])
		if err != nil {
			return fmt.Errorf("cpu: reconfigure predictor: %w", err)
		}
		s.bp = bp
	}
	s.cfg = cfg
	s.pm = power.New(cfg)
	s.derive()
	return nil
}
