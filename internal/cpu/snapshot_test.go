package cpu

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

// checkpointRun computes the same Result as runOn(cfg, insts, opts) but
// through the warmup-checkpoint path the experiment layer uses: a leader
// Sim executes the warmup prefix once and snapshots it, a second Sim
// restores the snapshot, skips the prefix on the source and runs only
// the measurement. With opts.WarmupInsts == 0 it degenerates to a plain
// run, so the restore-vs-rerun sweep can cover every golden case.
func checkpointRun(t testing.TB, cfg arch.Config, insts []trace.Inst, opts Options) (leader, restored *Result) {
	t.Helper()
	meas := opts
	meas.WarmupInsts = 0
	if opts.WarmupInsts <= 0 {
		r1 := runOn(t, cfg, insts, meas)
		r2 := runOn(t, cfg, insts, meas)
		return r1, r2
	}

	lead, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	leadSrc := NewSliceSource(insts)
	if err := lead.Warmup(leadSrc, opts.WarmupInsts, opts); err != nil {
		t.Fatal(err)
	}
	snap := lead.Snapshot()
	// Warmup consumed the flush (a no-op on a fresh Sim, exactly as in
	// Run's recursive warmup prefix); measurement must not flush again.
	meas.FlushCaches = false
	leader, err = lead.Run(leadSrc, len(insts), meas)
	if err != nil {
		t.Fatal(err)
	}

	rest, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rest.Restore(snap); err != nil {
		t.Fatal(err)
	}
	restSrc := NewSliceSource(insts)
	restSrc.Skip(opts.WarmupInsts)
	restored, err = rest.Run(restSrc, len(insts), meas)
	if err != nil {
		t.Fatal(err)
	}
	return leader, restored
}

func resultDigest(r *Result) string {
	var c canon
	c.result(r)
	return c.digest()
}

// TestSnapshotRoundtrip is the property test: snapshot a warm Sim,
// mutate a second Sim of the same configuration with unrelated work,
// restore the snapshot into it, and the re-taken snapshot must be
// byte-identical. A restore into a completely fresh Sim must match too.
func TestSnapshotRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	warm := mkTrace(t, "mcf", 1, 2000)
	other := mkTrace(t, "swim", 2, 2000)
	cfgs := []arch.Config{arch.Baseline(), arch.MinConfig(), arch.Profiling()}
	for i := 0; i < 4; i++ {
		cfgs = append(cfgs, arch.Random(rng))
	}
	for _, cfg := range cfgs {
		src, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Warmup(NewSliceSource(warm), len(warm), Options{}); err != nil {
			t.Fatal(err)
		}
		snap := src.Snapshot()

		mutated, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mutated.Run(NewSliceSource(other), len(other), Options{}); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(mutated.Snapshot(), snap) {
			t.Fatalf("%v: unrelated run left identical warm state (mutation did not take)", cfg)
		}
		if err := mutated.Restore(snap); err != nil {
			t.Fatalf("%v: restore into mutated sim: %v", cfg, err)
		}
		if !bytes.Equal(mutated.Snapshot(), snap) {
			t.Fatalf("%v: snapshot not reproduced after restore into mutated sim", cfg)
		}

		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("%v: restore into fresh sim: %v", cfg, err)
		}
		if !bytes.Equal(fresh.Snapshot(), snap) {
			t.Fatalf("%v: snapshot not reproduced after restore into fresh sim", cfg)
		}
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	s, err := New(arch.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()

	if err := s.Restore(nil); err == nil {
		t.Error("empty snapshot accepted")
	}
	bad := append([]byte(nil), snap...)
	bad[0] = 99
	if err := s.Restore(bad); err == nil {
		t.Error("wrong snapshot version accepted")
	}
	if err := s.Restore(snap[:len(snap)/2]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if err := s.Restore(append(append([]byte(nil), snap...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	other, err := New(arch.Baseline().With(arch.ICacheKB, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Error("snapshot for a different configuration accepted")
	}
	// A failed restore must not have poisoned the target: a fresh
	// snapshot of `other` must equal another fresh Sim's.
	ref, err := New(arch.Baseline().With(arch.ICacheKB, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(other.Snapshot(), ref.Snapshot()) {
		t.Error("rejected restore mutated the target sim")
	}
}

// TestGoldenSweepRestoredWarmup is the restore-vs-rerun sweep: every
// golden-digest case must produce a bit-identical Result when its warmup
// prefix is restored from a snapshot instead of re-executed — both for
// the leader (warm once, measure on the same Sim) and for a restorer
// (fresh Sim + Restore + Skip).
func TestGoldenSweepRestoredWarmup(t *testing.T) {
	for _, gc := range goldenCases() {
		insts := mkTrace(t, gc.program, gc.phase, gc.n)
		want := resultDigest(runOn(t, gc.cfg, insts, gc.opts))
		leader, restored := checkpointRun(t, gc.cfg, insts, gc.opts)
		if got := resultDigest(leader); got != want {
			t.Errorf("%s: leader (warm-once) digest %s != rerun %s", gc.name, got, want)
		}
		if got := resultDigest(restored); got != want {
			t.Errorf("%s: restored-warmup digest %s != rerun %s", gc.name, got, want)
		}
	}
}

// TestWarmupProjectionAudit validates the snapshot key's config
// projection. The store keys snapshots by the FULL configuration
// (store.SnapshotKey): every parameter can steer warm state, because
// derive() folds each one into the timing constants that decide how many
// wrong-path instructions pollute the caches and predictor before each
// branch resolves. The audit has two halves:
//
//  1. Sharing soundness across a sampled config grid: a shared warmup
//     (warm once, snapshot, restore) yields bit-for-bit the Result of a
//     re-executed warmup. With the full-config projection, sharing only
//     ever happens between identical configurations, so this plus the
//     golden sweep proves the projection can never change a Result.
//  2. Sensitivity: for each parameter, some domain move away from the
//     baseline changes the warm state on this workload. If a parameter
//     stops mattering, this fails — the signal that the projection could
//     be narrowed, which requires moving that proof into SnapshotKey and
//     re-running this audit, never just assuming it.
func TestWarmupProjectionAudit(t *testing.T) {
	insts := mkTrace(t, "crafty", 1, 3000)
	opts := Options{WarmupInsts: 1500}

	rng := rand.New(rand.NewPCG(0xa0d17, 0x5eed))
	grid := []arch.Config{arch.Baseline(), arch.MinConfig(), arch.Profiling()}
	for i := 0; i < 6; i++ {
		grid = append(grid, arch.Random(rng))
	}
	for _, cfg := range grid {
		want := resultDigest(runOn(t, cfg, insts, opts))
		leader, restored := checkpointRun(t, cfg, insts, opts)
		if got := resultDigest(leader); got != want {
			t.Errorf("grid %v: leader digest diverged from re-executed warmup", cfg)
		}
		if got := resultDigest(restored); got != want {
			t.Errorf("grid %v: restored digest diverged from re-executed warmup", cfg)
		}
	}

	warmSnap := func(cfg arch.Config) []byte {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Warmup(NewSliceSource(insts), opts.WarmupInsts, opts); err != nil {
			t.Fatal(err)
		}
		return s.Snapshot()
	}
	base := arch.Baseline()
	baseSnap := warmSnap(base)
	for p := arch.Param(0); p < arch.NumParams; p++ {
		sensitive := false
		for _, v := range arch.Domain(p) {
			if v == base[p] {
				continue
			}
			variant, err := New(base.With(p, v))
			if err != nil {
				t.Fatal(err)
			}
			if err := variant.Warmup(NewSliceSource(insts), opts.WarmupInsts, opts); err != nil {
				t.Fatal(err)
			}
			snap := variant.Snapshot()
			// Geometry changes differ trivially; content comparison only
			// applies when the encodings are the same length.
			if len(snap) != len(baseSnap) || !bytes.Equal(snap, baseSnap) {
				sensitive = true
				break
			}
		}
		if !sensitive {
			t.Errorf("parameter %s no longer reaches warm state on this workload — "+
				"the full-config snapshot projection may be narrowable, but only with "+
				"proof in store.SnapshotKey plus this audit, never silently", p)
		}
	}
}
