package cpu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

// benchTrace caches one interval per workload so benchmark iterations pay
// for simulation, not trace generation.
func benchTrace(b *testing.B, program string, phase, n int) []trace.Inst {
	b.Helper()
	g, err := trace.NewGenerator(program, phase)
	if err != nil {
		b.Fatal(err)
	}
	return g.Interval(n)
}

// benchSim times Sim.Run end to end and reports ns per simulated
// instruction — the sim-core throughput number scripts/bench.sh tracks.
func benchSim(b *testing.B, program string, cfg arch.Config, opts Options) {
	const n = 8000
	insts := benchTrace(b, program, 0, n)
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	src := NewSliceSource(insts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		if _, err := s.Run(src, n, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/inst")
}

// BenchmarkSimRun is the canonical sim-core throughput benchmark:
// measurement-mode runs (no counter collection) across the behaviours that
// dominate dataset construction.
func BenchmarkSimRun(b *testing.B) {
	b.Run("baseline/gzip", func(b *testing.B) {
		benchSim(b, "gzip", arch.Baseline(), Options{})
	})
	b.Run("baseline/mcf-membound", func(b *testing.B) {
		benchSim(b, "mcf", arch.Baseline(), Options{})
	})
	b.Run("baseline/parser-branchy", func(b *testing.B) {
		benchSim(b, "parser", arch.Baseline(), Options{})
	})
	b.Run("min/swim", func(b *testing.B) {
		benchSim(b, "swim", arch.MinConfig(), Options{})
	})
	b.Run("profiling/applu", func(b *testing.B) {
		benchSim(b, "applu", arch.Profiling(), Options{})
	})
}

// BenchmarkSimRunCollect times a profiling-configuration run with counter
// collection (the per-phase profiling stage of dataset construction).
func BenchmarkSimRunCollect(b *testing.B) {
	benchSim(b, "vortex", arch.Profiling(), Options{Collect: true, SampledSets: 32})
}
