package cpu

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The golden-digest suite pins the simulator's observable output bit for
// bit: SHA-256 over a canonical encoding of Result and RawCounters for a
// seeded sample of (config, workload, phase) triples, captured before the
// hot-path overhaul. Performance work must keep every digest unchanged;
// a physics change (calibration levers, power constants, simulator
// semantics) will trip this test and REQUIRES bumping store.SimVersion
// alongside regenerating the file with REPRO_UPDATE_GOLDEN=1.

const goldenPath = "testdata/golden_digests.txt"

// canon accumulates the canonical little-endian encoding being digested.
type canon struct {
	buf []byte
}

func (c *canon) u64(v uint64) { c.buf = binary.LittleEndian.AppendUint64(c.buf, v) }
func (c *canon) i64(v int64)  { c.u64(uint64(v)) }
func (c *canon) f64(v float64) {
	c.u64(math.Float64bits(v))
}

func (c *canon) hist(h *stats.Histogram) {
	if h == nil {
		c.u64(^uint64(0))
		return
	}
	c.u64(uint64(len(h.Counts)))
	for _, n := range h.Counts {
		c.u64(n)
	}
	c.u64(h.Total)
}

func (c *canon) profiler(p *cache.Profiler) {
	if p == nil {
		c.u64(^uint64(0))
		return
	}
	c.u64(p.Observations())
	c.hist(p.StackDist)
	c.hist(p.BlockReuse)
	c.hist(p.SetReuse)
	c.hist(p.ReducedSets)
}

func (c *canon) result(r *Result) {
	for p := arch.Param(0); p < arch.NumParams; p++ {
		c.i64(int64(r.Config[p]))
	}
	c.u64(r.Cycles)
	c.u64(r.Committed)
	c.u64(r.Fetched)
	c.u64(r.WrongPath)
	c.u64(r.BranchLookups)
	c.u64(r.Mispredicts)
	c.u64(r.BTBMisses)
	c.u64(r.L1IAccesses)
	c.u64(r.L1IMisses)
	c.u64(r.L1DAccesses)
	c.u64(r.L1DMisses)
	c.u64(r.L2Accesses)
	c.u64(r.L2Misses)
	c.u64(r.Energy.Cycles)
	c.f64(r.Energy.DynamicJ)
	c.f64(r.Energy.LeakageJ)
	c.f64(r.Energy.TotalJ)
	for st := power.Structure(0); st < power.NumStructures; st++ {
		c.f64(r.Energy.PerStructureJ[st])
	}
	c.f64(r.Energy.AvgPowerW)
	c.f64(r.IPC)
	c.f64(r.SecondsSim)
	c.f64(r.IPS)
	c.f64(r.Watts)
	c.f64(r.EnergyJ)
	c.f64(r.Efficiency)
	if r.Counters == nil {
		c.u64(0)
		return
	}
	c.u64(1)
	cnt := r.Counters
	c.hist(cnt.ALUUsage)
	c.hist(cnt.MemPortUsage)
	c.hist(cnt.ROBOcc)
	c.hist(cnt.IQOcc)
	c.hist(cnt.LSQOcc)
	c.f64(cnt.IQSpecFrac)
	c.f64(cnt.IQMisspecFrac)
	c.f64(cnt.LSQSpecFrac)
	c.f64(cnt.LSQMisspecFrac)
	c.hist(cnt.IntRegUsage)
	c.hist(cnt.FpRegUsage)
	c.hist(cnt.RdPortUsage)
	c.hist(cnt.WrPortUsage)
	c.profiler(cnt.ICache)
	c.profiler(cnt.DCache)
	c.profiler(cnt.L2)
	c.hist(cnt.BTBReuse)
	c.f64(cnt.MispredictRate)
	c.f64(cnt.CPI)
}

func (c *canon) inst(in trace.Inst) {
	c.u64(uint64(in.PC))
	c.u64(uint64(in.Addr))
	c.u64(uint64(in.Target))
	c.u64(uint64(in.BB))
	c.u64(uint64(in.Op))
	c.i64(int64(in.Dst))
	c.i64(int64(in.Src1))
	c.i64(int64(in.Src2))
	if in.Taken {
		c.u64(1)
	} else {
		c.u64(0)
	}
}

func (c *canon) digest() string {
	sum := sha256.Sum256(c.buf)
	return hex.EncodeToString(sum[:])
}

// goldenCase is one digested scenario.
type goldenCase struct {
	name    string
	program string
	phase   int
	n       int
	cfg     arch.Config
	opts    Options
}

// goldenCases returns the seeded sample: every option path is covered
// (warmup, collection with and without set sampling, reconfiguration
// overheads, wrong-path-heavy and memory-bound workloads) across a spread
// of random configurations. The case list must stay stable: digests are
// keyed by name.
func goldenCases() []goldenCase {
	rng := rand.New(rand.NewPCG(0x601d, 0xd16e57))
	var out []goldenCase
	add := func(name, prog string, phase, n int, cfg arch.Config, opts Options) {
		out = append(out, goldenCase{name, prog, phase, n, cfg, opts})
	}
	// Fixed anchors on the named configurations.
	add("baseline-gzip", "gzip", 0, 4000, arch.Baseline(), Options{WarmupInsts: 2000})
	add("baseline-mcf-memory", "mcf", 1, 3000, arch.Baseline(), Options{WarmupInsts: 1500})
	add("baseline-parser-branchy", "parser", 0, 4000, arch.Baseline(), Options{})
	add("min-config-swim", "swim", 2, 2500, arch.MinConfig(), Options{})
	add("profiling-vortex-collect", "vortex", 0, 4000, arch.Profiling(), Options{Collect: true})
	add("profiling-art-sampled", "art", 3, 4000, arch.Profiling(), Options{Collect: true, SampledSets: 16})
	add("profiling-crafty-collect-warm", "crafty", 1, 3000, arch.Profiling(), Options{Collect: true, WarmupInsts: 1500})
	add("baseline-gcc-reconfig-cost", "gcc", 0, 3000, arch.Baseline(),
		Options{StartStall: 700, FlushCaches: true, ExtraEnergyPJ: 5e6})
	// Random configurations over a spread of workloads and phases.
	progs := []string{
		"gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "gap",
		"vortex", "bzip2", "twolf", "swim", "mgrid", "applu", "art",
		"equake", "ammp", "sixtrack", "apsi", "wupwise",
	}
	for i, prog := range progs {
		cfg := arch.Random(rng)
		phase := i % trace.PhasesPerProgram
		opts := Options{}
		if i%3 == 1 {
			opts.WarmupInsts = 1200
		}
		if i%5 == 2 {
			opts.Collect = true
			opts.SampledSets = 8 << (i % 3)
		}
		add(fmt.Sprintf("random-%02d-%s", i, prog), prog, phase, 2500, cfg, opts)
	}
	return out
}

// computeDigests runs every golden case plus the raw-trace anchors and
// returns name -> digest in case order.
func computeDigests(t *testing.T) ([]string, map[string]string) {
	t.Helper()
	var order []string
	digests := map[string]string{}
	// Raw-trace anchors pin the generator itself, so a trace-generation
	// change cannot hide behind a compensating simulator change.
	for _, tc := range []struct {
		prog  string
		phase int
	}{{"gzip", 0}, {"mcf", 1}, {"swim", 2}, {"parser", 3}} {
		g, err := trace.NewGenerator(tc.prog, tc.phase)
		if err != nil {
			t.Fatal(err)
		}
		var c canon
		for _, in := range g.Interval(5000) {
			c.inst(in)
		}
		name := fmt.Sprintf("trace-%s-%d", tc.prog, tc.phase)
		order = append(order, name)
		digests[name] = c.digest()
	}
	for _, gc := range goldenCases() {
		insts := mkTrace(t, gc.program, gc.phase, gc.n)
		res := runOn(t, gc.cfg, insts, gc.opts)
		var c canon
		c.result(res)
		order = append(order, gc.name)
		digests[gc.name] = c.digest()
	}
	return order, digests
}

func TestGoldenDigests(t *testing.T) {
	order, digests := computeDigests(t)

	if os.Getenv("REPRO_UPDATE_GOLDEN") != "" {
		var sb strings.Builder
		sb.WriteString("# SHA-256 digests of canonically-encoded simulator output.\n")
		sb.WriteString("# Regenerate with REPRO_UPDATE_GOLDEN=1 go test ./internal/cpu -run TestGoldenDigests\n")
		sb.WriteString("# A change here is a physics change: bump store.SimVersion in the same commit.\n")
		for _, name := range order {
			fmt.Fprintf(&sb, "%s %s\n", name, digests[name])
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(order), goldenPath)
		return
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run REPRO_UPDATE_GOLDEN=1 go test -run TestGoldenDigests): %v", err)
	}
	defer f.Close()
	want := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(order) {
		t.Errorf("golden file has %d digests, suite has %d cases", len(want), len(order))
	}
	for _, name := range order {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden digest recorded", name)
			continue
		}
		if got := digests[name]; got != w {
			t.Errorf("%s: digest %s != golden %s — simulator output changed; "+
				"if intentional, bump store.SimVersion and regenerate", name, got, w)
		}
	}
}
