package cpu

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

// genSource adapts a slice to the generic Source interface without being a
// *SliceSource, forcing the interface-call fetch path.
type genSource struct {
	insts []trace.Inst
	pos   int
}

func (g *genSource) Next() trace.Inst {
	in := g.insts[g.pos]
	g.pos++
	if g.pos == len(g.insts) {
		g.pos = 0
	}
	return in
}

// mispredictStream builds a stream engineered to flush while wakeups are
// pending: chains of long-latency multiplies feed a coin-flip branch the
// gshare cannot learn, so mispredicted branches resolve while older
// in-flight producers still hold scheduled completion events and younger
// consumers sit in their wait chains.
func mispredictStream(n int) []trace.Inst {
	rng := rand.New(rand.NewPCG(42, 99))
	insts := make([]trace.Inst, 0, n)
	pc := uint32(0x4000)
	for len(insts) < n {
		insts = append(insts,
			trace.Inst{Op: trace.IntMul, Dst: 1, Src1: 2, Src2: 3, PC: pc},
			trace.Inst{Op: trace.IntMul, Dst: 4, Src1: 1, Src2: 3, PC: pc + 4},
			trace.Inst{Op: trace.IntALU, Dst: 5, Src1: 4, Src2: 1, PC: pc + 8},
			trace.Inst{Op: trace.Branch, Src1: 5, PC: pc + 12, Taken: rng.IntN(2) == 0, Target: pc},
		)
		pc += 16
	}
	return insts[:n]
}

// TestFlushWithPendingWakeups drives the scheduler through its hardest
// transition — a mispredict flush arriving mid-walk while completion
// tokens are still queued for surviving producers — and asserts the run
// drains completely and deterministically.
func TestFlushWithPendingWakeups(t *testing.T) {
	insts := mispredictStream(600)
	cfg := arch.Baseline().With(arch.ROBSize, 32).With(arch.IQSize, 16).With(arch.MaxBranches, 8)

	run := func() *Result {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(NewSliceSource(insts), len(insts), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.scratch.robCount != 0 || s.scratch.iqCount != 0 || s.scratch.lsqCount != 0 {
			t.Fatalf("pipeline did not drain: rob=%d iq=%d lsq=%d",
				s.scratch.robCount, s.scratch.iqCount, s.scratch.lsqCount)
		}
		return res
	}

	res := run()
	if res.Committed != 600 {
		t.Fatalf("committed %d, want 600", res.Committed)
	}
	if res.Mispredicts == 0 {
		t.Fatal("stream produced no mispredicts; the flush path was never exercised")
	}
	if res.WrongPath == 0 {
		t.Fatal("no wrong-path instructions dispatched; flushes squashed nothing")
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Error("two identical runs disagree after mispredict flushes")
	}
}

// TestReconfigureShrinkROB shrinks the ROB (and the scheduler arena with
// it) below the ready-list high-water mark of the previous run, then
// checks the shrunk simulator is indistinguishable from a freshly built
// one: any stale chain, ready-list entry or ring slot surviving the
// resize would perturb the result.
func TestReconfigureShrinkROB(t *testing.T) {
	// Prefix: independent FP multiplies on a 2-wide machine (one FP-mul
	// unit). Dispatch outruns issue two to one, so ready-but-blocked
	// entries pile up in the list far past the small ROB size. The applu
	// tail then exercises the equivalence over a realistic mix.
	var insts []trace.Inst
	for i := 0; i < 1500; i++ {
		insts = append(insts, trace.Inst{
			Op: trace.FpMul, Dst: int8(32 + i%24), Src1: 2, Src2: 3,
			PC: uint32(0x6000 + 4*(i%64)),
		})
	}
	insts = append(insts, mkTrace(t, "applu", 0, 2500)...)
	big := arch.Baseline().With(arch.Width, 2).
		With(arch.ROBSize, 160).With(arch.IQSize, 80).With(arch.LSQSize, 80)
	// Different predictor tables so Reconfigure rebuilds them; caches are
	// flushed on the measured run. Fresh and reconfigured simulators then
	// start from the same architectural state.
	small := big.With(arch.ROBSize, 32).With(arch.IQSize, 8).With(arch.LSQSize, 8).
		With(arch.GshareSize, 1024).With(arch.BTBSize, 2048)

	s1, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(NewSliceSource(insts), len(insts), Options{}); err != nil {
		t.Fatal(err)
	}
	if hw := cap(s1.scratch.iqList); hw <= small[arch.ROBSize] {
		t.Fatalf("ready-list high-water mark %d never exceeded the small ROB (%d); pick a busier workload",
			hw, small[arch.ROBSize])
	}
	if err := s1.Reconfigure(small); err != nil {
		t.Fatal(err)
	}
	got, err := s1.Run(NewSliceSource(insts), len(insts), Options{FlushCaches: true})
	if err != nil {
		t.Fatal(err)
	}

	s2, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s2.Run(NewSliceSource(insts), len(insts), Options{FlushCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shrunk-in-place simulator diverges from a fresh one:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestCycleSkipLongLatencyLoad sends every load to main memory with a
// dependent consumer behind it, so the pipeline repeatedly goes completely
// idle until the scheduled completion: the zero-progress fast-forward must
// cross the full memory latency and deliver the wakeup, or the consumer
// deadlocks into the cycle-limit error. The interface-source run guards
// the slice fast path against skew.
func TestCycleSkipLongLatencyLoad(t *testing.T) {
	const n = 64
	insts := make([]trace.Inst, 0, n)
	for i := 0; len(insts) < n; i++ {
		// Distinct 4 KiB-spaced lines (cold misses all the way down), each
		// load's address depending on the previous load's result so the
		// misses serialise instead of overlapping in the window.
		insts = append(insts,
			trace.Inst{Op: trace.Load, Dst: 1, Src1: 1, PC: 0x8000, Addr: uint32(i) * 4096},
			trace.Inst{Op: trace.IntALU, Dst: 3, Src1: 1, Src2: 1, PC: 0x8004},
		)
	}
	insts = insts[:n]
	cfg := arch.MinConfig()

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(NewSliceSource(insts), len(insts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != n {
		t.Fatalf("committed %d, want %d", res.Committed, n)
	}
	memLat := uint64(s.Power().MemLatency)
	if res.Cycles < uint64(n/2)*memLat/2 {
		t.Errorf("cycles %d implausibly low for %d memory-latency (%d-cycle) stalls",
			res.Cycles, n/2, memLat)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run(&genSource{insts: insts}, len(insts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Error("slice fast path and interface source disagree across cycle skips")
	}
}
