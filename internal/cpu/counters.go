package cpu

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Histogram geometry for the temporal-histogram counters. Occupancy
// histograms use fixed absolute scales (the profiling configuration's
// maxima from Table I) so feature vectors are comparable across phases.
const (
	OccBins      = 20  // bins for ROB/IQ/LSQ/register occupancy histograms
	maxROBOcc    = 160 // Table I maxima
	maxQueueOcc  = 80
	maxRegOcc    = 160
	ALUBins      = 13 // 0..12 ALU-class units busy
	MemPortBins  = 5  // 0..4 memory ports busy
	RdPortBins   = 17 // 0..16 read ports busy
	WrPortBins   = 9  // 0..8 write ports busy
	BTBReuseBins = cache.HistBins
)

// RawCounters are the hardware counters of Table II, gathered while
// running a phase on the profiling configuration. internal/counters turns
// them into model feature vectors.
type RawCounters struct {
	// Width counters.
	ALUUsage     *stats.Histogram // ALU-class units busy per cycle
	MemPortUsage *stats.Histogram // memory ports busy per cycle

	// Queue counters.
	ROBOcc *stats.Histogram // entries occupied per cycle
	IQOcc  *stats.Histogram
	LSQOcc *stats.Histogram
	// Fraction of queue-resident instructions that were speculative
	// (an older unresolved branch existed), and the fraction of
	// dispatched queue entries that were ultimately mis-speculated
	// (wrong-path).
	IQSpecFrac     float64
	IQMisspecFrac  float64
	LSQSpecFrac    float64
	LSQMisspecFrac float64

	// Register file counters.
	IntRegUsage *stats.Histogram // integer registers in use per cycle
	FpRegUsage  *stats.Histogram
	RdPortUsage *stats.Histogram // read ports busy per cycle
	WrPortUsage *stats.Histogram // write ports busy per cycle

	// Cache counters: stack distance, block reuse, set reuse and
	// reduced-set reuse histograms per cache.
	ICache *cache.Profiler
	DCache *cache.Profiler
	L2     *cache.Profiler

	// Branch predictor counters.
	BTBReuse       *stats.Histogram // reuse distance of branch PCs
	MispredictRate float64

	// Pipeline depth counter.
	CPI float64
}

// collector accumulates RawCounters during a profiled run.
type collector struct {
	raw RawCounters

	icache *cache.Profiler
	dcache *cache.Profiler
	l2     *cache.Profiler

	// Per-cycle accumulators reset by perCycle.
	aluThisCycle int
	memThisCycle int
	rdThisCycle  int

	// Speculation sums.
	iqOccSum, iqSpecSum   uint64
	lsqOccSum, lsqSpecSum uint64
	iqDisp, iqDispWrong   uint64
	lsqDisp, lsqDispWrong uint64

	// BTB reuse tracking.
	branchClock  uint64
	lastBranchAt map[uint32]uint64
}

// newCollector builds the collector for a profiled run on cfg.
// sampledSets bounds cache profiler set sampling (0 = all sets).
func newCollector(cfg arch.Config, sampledSets int) (*collector, error) {
	mkProf := func(sizeKB, lineBytes, reducedKB int) (*cache.Profiler, error) {
		sets := sizeKB * 1024 / lineBytes / 2
		n := sampledSets
		if n <= 0 || n > sets {
			n = sets
		}
		return cache.NewProfiler(sizeKB, lineBytes, reducedKB, n)
	}
	ic, err := mkProf(cfg[arch.ICacheKB], cache.L1LineBytes, arch.Domain(arch.ICacheKB)[0])
	if err != nil {
		return nil, err
	}
	dc, err := mkProf(cfg[arch.DCacheKB], cache.L1LineBytes, arch.Domain(arch.DCacheKB)[0])
	if err != nil {
		return nil, err
	}
	l2, err := mkProf(cfg[arch.L2CacheKB], cache.L2LineBytes, arch.Domain(arch.L2CacheKB)[0])
	if err != nil {
		return nil, err
	}
	c := &collector{
		icache:       ic,
		dcache:       dc,
		l2:           l2,
		lastBranchAt: map[uint32]uint64{},
	}
	c.raw = RawCounters{
		ALUUsage:     stats.NewHistogram(ALUBins),
		MemPortUsage: stats.NewHistogram(MemPortBins),
		ROBOcc:       stats.NewHistogram(OccBins),
		IQOcc:        stats.NewHistogram(OccBins),
		LSQOcc:       stats.NewHistogram(OccBins),
		IntRegUsage:  stats.NewHistogram(OccBins),
		FpRegUsage:   stats.NewHistogram(OccBins),
		RdPortUsage:  stats.NewHistogram(RdPortBins),
		WrPortUsage:  stats.NewHistogram(WrPortBins),
		ICache:       ic,
		DCache:       dc,
		L2:           l2,
		BTBReuse:     stats.NewHistogram(BTBReuseBins),
	}
	return c, nil
}

// occBin maps an occupancy value to its histogram bin on a fixed absolute
// scale.
func occBin(occ, maxOcc int) int {
	if occ < 0 {
		occ = 0
	}
	return occ * OccBins / (maxOcc + 1)
}

// dispatched records queue-entry provenance for mis-speculation fractions.
func (c *collector) dispatched(st *runState, e *entry) {
	c.iqDisp++
	if e.wrongPath {
		c.iqDispWrong++
	}
	if e.inLSQ {
		c.lsqDisp++
		if e.wrongPath {
			c.lsqDispWrong++
		}
	}
}

// issued records per-cycle port and unit usage.
func (c *collector) issued(st *runState, e *entry, nsrc int) {
	c.rdThisCycle += nsrc
	switch e.inst.Op {
	case trace.Load, trace.Store:
		c.memThisCycle++
	default:
		c.aluThisCycle++
	}
}

// branchFetched records the BTB reuse distance stream.
func (c *collector) branchFetched(in trace.Inst) {
	c.branchClock++
	if last, ok := c.lastBranchAt[in.PC]; ok {
		c.raw.BTBReuse.Add(stats.Log2Bin(c.branchClock-last, BTBReuseBins-1))
	} else {
		c.raw.BTBReuse.Add(BTBReuseBins - 1)
	}
	c.lastBranchAt[in.PC] = c.branchClock
}

// perCycle samples occupancy and usage histograms once per cycle.
func (c *collector) perCycle(s *Sim, st *runState) {
	c.raw.ROBOcc.Add(occBin(st.robCount, maxROBOcc))
	c.raw.IQOcc.Add(occBin(st.iqCount, maxQueueOcc))
	c.raw.LSQOcc.Add(occBin(st.lsqCount, maxQueueOcc))
	c.raw.IntRegUsage.Add(occBin(trace.NumIntRegs+st.allocInt, maxRegOcc))
	c.raw.FpRegUsage.Add(occBin(trace.NumFpRegs+st.allocFp, maxRegOcc))
	if c.rdThisCycle >= RdPortBins {
		c.rdThisCycle = RdPortBins - 1
	}
	c.raw.RdPortUsage.Add(c.rdThisCycle)
	wb := int(st.wbUsed[st.cycle%wbWindow])
	if wb >= WrPortBins {
		wb = WrPortBins - 1
	}
	c.raw.WrPortUsage.Add(wb)
	if c.aluThisCycle >= ALUBins {
		c.aluThisCycle = ALUBins - 1
	}
	c.raw.ALUUsage.Add(c.aluThisCycle)
	if c.memThisCycle >= MemPortBins {
		c.memThisCycle = MemPortBins - 1
	}
	c.raw.MemPortUsage.Add(c.memThisCycle)
	c.aluThisCycle, c.memThisCycle, c.rdThisCycle = 0, 0, 0

	// Speculation occupancy: entries behind the oldest unresolved branch.
	if st.robCount > 0 {
		spec := false
		for seq := st.headSeq; seq < st.nextSeq; seq++ {
			e := st.slot(seq)
			if e.inIQ {
				c.iqOccSum++
				if spec || e.wrongPath {
					c.iqSpecSum++
				}
			}
			if e.inLSQ {
				c.lsqOccSum++
				if spec || e.wrongPath {
					c.lsqSpecSum++
				}
			}
			if e.inst.Op == trace.Branch && !e.resolved && !e.wrongPath {
				spec = true
			}
		}
	}
}

// observeData feeds a data address to the D-cache profiler and, since the
// unified L2 sees the union of both L1 streams, to the L2 profiler.
func (c *collector) observeData(addr uint32) {
	c.dcache.Observe(addr)
	c.l2.Observe(addr)
}

// observeFetch feeds an instruction address to the I-cache and L2
// profilers.
func (c *collector) observeFetch(pc uint32) {
	c.icache.Observe(pc)
	c.l2.Observe(pc)
}

// finish computes the scalar counters and returns the finished set.
func (c *collector) finish(s *Sim, res *Result) *RawCounters {
	if c.iqOccSum > 0 {
		c.raw.IQSpecFrac = float64(c.iqSpecSum) / float64(c.iqOccSum)
	}
	if c.lsqOccSum > 0 {
		c.raw.LSQSpecFrac = float64(c.lsqSpecSum) / float64(c.lsqOccSum)
	}
	if c.iqDisp > 0 {
		c.raw.IQMisspecFrac = float64(c.iqDispWrong) / float64(c.iqDisp)
	}
	if c.lsqDisp > 0 {
		c.raw.LSQMisspecFrac = float64(c.lsqDispWrong) / float64(c.lsqDisp)
	}
	if res.BranchLookups > 0 {
		c.raw.MispredictRate = float64(res.Mispredicts) / float64(res.BranchLookups)
	}
	if res.Committed > 0 {
		c.raw.CPI = float64(res.Cycles) / float64(res.Committed)
	}
	out := c.raw
	return &out
}

// EmptyRawCounters returns a zero-valued but fully allocated counter set
// with the production histogram geometry. It exists so feature extractors
// can probe dimensionality without running a simulation.
func EmptyRawCounters() *RawCounters {
	c, err := newCollector(arch.Profiling(), 0)
	if err != nil {
		panic(err) // the profiling configuration is always valid
	}
	out := c.raw
	return &out
}
