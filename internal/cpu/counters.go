package cpu

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Histogram geometry for the temporal-histogram counters. Occupancy
// histograms use fixed absolute scales (the profiling configuration's
// maxima from Table I) so feature vectors are comparable across phases.
const (
	OccBins      = 20  // bins for ROB/IQ/LSQ/register occupancy histograms
	maxROBOcc    = 160 // Table I maxima
	maxQueueOcc  = 80
	maxRegOcc    = 160
	ALUBins      = 13 // 0..12 ALU-class units busy
	MemPortBins  = 5  // 0..4 memory ports busy
	RdPortBins   = 17 // 0..16 read ports busy
	WrPortBins   = 9  // 0..8 write ports busy
	BTBReuseBins = cache.HistBins
)

// RawCounters are the hardware counters of Table II, gathered while
// running a phase on the profiling configuration. internal/counters turns
// them into model feature vectors.
type RawCounters struct {
	// Width counters.
	ALUUsage     *stats.Histogram // ALU-class units busy per cycle
	MemPortUsage *stats.Histogram // memory ports busy per cycle

	// Queue counters.
	ROBOcc *stats.Histogram // entries occupied per cycle
	IQOcc  *stats.Histogram
	LSQOcc *stats.Histogram
	// Fraction of queue-resident instructions that were speculative
	// (an older unresolved branch existed), and the fraction of
	// dispatched queue entries that were ultimately mis-speculated
	// (wrong-path).
	IQSpecFrac     float64
	IQMisspecFrac  float64
	LSQSpecFrac    float64
	LSQMisspecFrac float64

	// Register file counters.
	IntRegUsage *stats.Histogram // integer registers in use per cycle
	FpRegUsage  *stats.Histogram
	RdPortUsage *stats.Histogram // read ports busy per cycle
	WrPortUsage *stats.Histogram // write ports busy per cycle

	// Cache counters: stack distance, block reuse, set reuse and
	// reduced-set reuse histograms per cache.
	ICache *cache.Profiler
	DCache *cache.Profiler
	L2     *cache.Profiler

	// Branch predictor counters.
	BTBReuse       *stats.Histogram // reuse distance of branch PCs
	MispredictRate float64

	// Pipeline depth counter.
	CPI float64
}

// collector accumulates RawCounters during a profiled run.
type collector struct {
	raw RawCounters

	icache *cache.Profiler
	dcache *cache.Profiler
	l2     *cache.Profiler

	// Per-cycle accumulators reset by perCycle.
	aluThisCycle int
	memThisCycle int
	rdThisCycle  int

	// Speculation sums.
	iqOccSum, iqSpecSum   uint64
	lsqOccSum, lsqSpecSum uint64
	iqDisp, iqDispWrong   uint64
	lsqDisp, lsqDispWrong uint64

	// BTB reuse tracking.
	branchClock  uint64
	lastBranchAt *cache.ReuseTable

	// Cached speculation-walk increments: the per-cycle walk over the
	// in-flight window only changes when the window does, so the sums it
	// contributes are recomputed only when runState.windowGen moves.
	specGen               uint64
	specValid             bool
	iqOccInc, iqSpecInc   uint64
	lsqOccInc, lsqSpecInc uint64

	// Occupancy bins share the windowGen cache, and consecutive cycles
	// with an identical bin signature are run-length batched into one
	// AddN per histogram. Histogram counts are integers, so batched adds
	// are exactly the per-cycle adds.
	robBin, iqBin, lsqBin, intBin, fpBin int
	lastSig                              uint64
	sigRun                               uint64
}

// newCollector builds the collector for a profiled run on cfg.
// sampledSets bounds cache profiler set sampling (0 = all sets).
func newCollector(cfg arch.Config, sampledSets int) (*collector, error) {
	mkProf := func(sizeKB, lineBytes, reducedKB int) (*cache.Profiler, error) {
		sets := sizeKB * 1024 / lineBytes / 2
		n := sampledSets
		if n <= 0 || n > sets {
			n = sets
		}
		return cache.NewProfiler(sizeKB, lineBytes, reducedKB, n)
	}
	ic, err := mkProf(cfg[arch.ICacheKB], cache.L1LineBytes, arch.Domain(arch.ICacheKB)[0])
	if err != nil {
		return nil, err
	}
	dc, err := mkProf(cfg[arch.DCacheKB], cache.L1LineBytes, arch.Domain(arch.DCacheKB)[0])
	if err != nil {
		return nil, err
	}
	l2, err := mkProf(cfg[arch.L2CacheKB], cache.L2LineBytes, arch.Domain(arch.L2CacheKB)[0])
	if err != nil {
		return nil, err
	}
	c := &collector{
		icache:       ic,
		dcache:       dc,
		l2:           l2,
		lastBranchAt: cache.NewReuseTable(256),
	}
	c.raw = RawCounters{
		ALUUsage:     stats.NewHistogram(ALUBins),
		MemPortUsage: stats.NewHistogram(MemPortBins),
		ROBOcc:       stats.NewHistogram(OccBins),
		IQOcc:        stats.NewHistogram(OccBins),
		LSQOcc:       stats.NewHistogram(OccBins),
		IntRegUsage:  stats.NewHistogram(OccBins),
		FpRegUsage:   stats.NewHistogram(OccBins),
		RdPortUsage:  stats.NewHistogram(RdPortBins),
		WrPortUsage:  stats.NewHistogram(WrPortBins),
		ICache:       ic,
		DCache:       dc,
		L2:           l2,
		BTBReuse:     stats.NewHistogram(BTBReuseBins),
	}
	return c, nil
}

// occBin maps an occupancy value to its histogram bin on a fixed absolute
// scale.
func occBin(occ, maxOcc int) int {
	if occ < 0 {
		occ = 0
	}
	return occ * OccBins / (maxOcc + 1)
}

// dispatched records queue-entry provenance for mis-speculation fractions.
func (c *collector) dispatched(st *runState, e *entry) {
	c.iqDisp++
	if e.wrongPath {
		c.iqDispWrong++
	}
	if e.inLSQ {
		c.lsqDisp++
		if e.wrongPath {
			c.lsqDispWrong++
		}
	}
}

// issued records per-cycle port and unit usage.
func (c *collector) issued(st *runState, e *entry, nsrc int) {
	c.rdThisCycle += nsrc
	switch e.inst.Op {
	case trace.Load, trace.Store:
		c.memThisCycle++
	default:
		c.aluThisCycle++
	}
}

// branchFetched records the BTB reuse distance stream.
func (c *collector) branchFetched(in trace.Inst) {
	c.branchClock++
	if last, ok := c.lastBranchAt.Swap(uint64(in.PC), c.branchClock); ok {
		c.raw.BTBReuse.Add(stats.Log2Bin(c.branchClock-last, BTBReuseBins-1))
	} else {
		c.raw.BTBReuse.Add(BTBReuseBins - 1)
	}
}

// perCycle samples occupancy and usage histograms once per cycle.
func (c *collector) perCycle(s *Sim, st *runState) {
	// Speculation occupancy and queue-occupancy bins: both are pure in the
	// window contents, so they are recomputed only when windowGen reports
	// a change (dispatch, issue, commit, resolve or flush).
	if !c.specValid || c.specGen != st.windowGen {
		c.robBin = occBin(st.robCount, maxROBOcc)
		c.iqBin = occBin(st.iqCount, maxQueueOcc)
		c.lsqBin = occBin(st.lsqCount, maxQueueOcc)
		c.intBin = occBin(trace.NumIntRegs+st.allocInt, maxRegOcc)
		c.fpBin = occBin(trace.NumFpRegs+st.allocFp, maxRegOcc)
		c.iqOccInc, c.iqSpecInc, c.lsqOccInc, c.lsqSpecInc = 0, 0, 0, 0
		if st.robCount > 0 {
			spec := false
			idx := int(st.headIdx)
			n := len(st.rob)
			for seq := st.headSeq; seq < st.nextSeq; seq++ {
				e := &st.rob[idx]
				idx++
				if idx == n {
					idx = 0
				}
				if e.inIQ {
					c.iqOccInc++
					if spec || e.wrongPath {
						c.iqSpecInc++
					}
				}
				if e.inLSQ {
					c.lsqOccInc++
					if spec || e.wrongPath {
						c.lsqSpecInc++
					}
				}
				if e.inst.Op == trace.Branch && !e.resolved && !e.wrongPath {
					spec = true
				}
			}
		}
		c.specGen = st.windowGen
		c.specValid = true
	}
	c.iqOccSum += c.iqOccInc
	c.iqSpecSum += c.iqSpecInc
	c.lsqOccSum += c.lsqOccInc
	c.lsqSpecSum += c.lsqSpecInc

	rd := c.rdThisCycle
	if rd >= RdPortBins {
		rd = RdPortBins - 1
	}
	wb := int(st.wbUsed[st.cycle%wbWindow])
	if wb >= WrPortBins {
		wb = WrPortBins - 1
	}
	alu := c.aluThisCycle
	if alu >= ALUBins {
		alu = ALUBins - 1
	}
	mem := c.memThisCycle
	if mem >= MemPortBins {
		mem = MemPortBins - 1
	}
	c.aluThisCycle, c.memThisCycle, c.rdThisCycle = 0, 0, 0

	// Pack all nine bin indices into one signature; identical consecutive
	// cycles extend the current run instead of touching nine histograms.
	sig := uint64(c.robBin) | uint64(c.iqBin)<<5 | uint64(c.lsqBin)<<10 |
		uint64(c.intBin)<<15 | uint64(c.fpBin)<<20 |
		uint64(rd)<<25 | uint64(wb)<<30 | uint64(alu)<<34 | uint64(mem)<<38
	if sig == c.lastSig && c.sigRun > 0 {
		c.sigRun++
		return
	}
	c.flushRun()
	c.lastSig = sig
	c.sigRun = 1
}

// flushRun commits the pending histogram run (n identical cycles) with one
// AddN per histogram — bitwise the same totals as n per-cycle Adds.
func (c *collector) flushRun() {
	n := c.sigRun
	if n == 0 {
		return
	}
	sig := c.lastSig
	c.raw.ROBOcc.AddN(int(sig&31), n)
	c.raw.IQOcc.AddN(int(sig>>5&31), n)
	c.raw.LSQOcc.AddN(int(sig>>10&31), n)
	c.raw.IntRegUsage.AddN(int(sig>>15&31), n)
	c.raw.FpRegUsage.AddN(int(sig>>20&31), n)
	c.raw.RdPortUsage.AddN(int(sig>>25&31), n)
	c.raw.WrPortUsage.AddN(int(sig>>30&15), n)
	c.raw.ALUUsage.AddN(int(sig>>34&15), n)
	c.raw.MemPortUsage.AddN(int(sig>>38&7), n)
	c.sigRun = 0
}

// observeData feeds a data address to the D-cache profiler and, since the
// unified L2 sees the union of both L1 streams, to the L2 profiler.
func (c *collector) observeData(addr uint32) {
	c.dcache.Observe(addr)
	c.l2.Observe(addr)
}

// observeFetch feeds an instruction address to the I-cache and L2
// profilers.
func (c *collector) observeFetch(pc uint32) {
	c.icache.Observe(pc)
	c.l2.Observe(pc)
}

// finish computes the scalar counters and returns the finished set.
func (c *collector) finish(s *Sim, res *Result) *RawCounters {
	c.flushRun()
	if c.iqOccSum > 0 {
		c.raw.IQSpecFrac = float64(c.iqSpecSum) / float64(c.iqOccSum)
	}
	if c.lsqOccSum > 0 {
		c.raw.LSQSpecFrac = float64(c.lsqSpecSum) / float64(c.lsqOccSum)
	}
	if c.iqDisp > 0 {
		c.raw.IQMisspecFrac = float64(c.iqDispWrong) / float64(c.iqDisp)
	}
	if c.lsqDisp > 0 {
		c.raw.LSQMisspecFrac = float64(c.lsqDispWrong) / float64(c.lsqDisp)
	}
	if res.BranchLookups > 0 {
		c.raw.MispredictRate = float64(res.Mispredicts) / float64(res.BranchLookups)
	}
	if res.Committed > 0 {
		c.raw.CPI = float64(res.Cycles) / float64(res.Committed)
	}
	out := c.raw
	return &out
}

// EmptyRawCounters returns a zero-valued but fully allocated counter set
// with the production histogram geometry. It exists so feature extractors
// can probe dimensionality without running a simulation.
func EmptyRawCounters() *RawCounters {
	c, err := newCollector(arch.Profiling(), 0)
	if err != nil {
		panic(err) // the profiling configuration is always valid
	}
	out := c.raw
	return &out
}
