package cpu

import "repro/internal/obs"

// Process-wide simulation volume counters (obs.DefaultRegistry). They are
// pure telemetry: nothing in the simulator reads them, so they cannot
// perturb results.
var (
	obsRuns = obs.DefaultRegistry().Counter("repro_sim_runs_total",
		"Completed cycle-level simulation runs.")
	obsInsts = obs.DefaultRegistry().Counter("repro_sim_instructions_total",
		"Correct-path instructions committed across all runs.")
	obsCycles = obs.DefaultRegistry().Counter("repro_sim_cycles_total",
		"Cycles simulated across all runs.")
)

// SimulatedInstructions returns the process-wide committed-instruction
// total — the denominator of the ns/inst figure run manifests record in
// their timing section. Telemetry only: nothing may feed it back into
// simulation or search decisions.
func SimulatedInstructions() uint64 { return obsInsts.Value() }
