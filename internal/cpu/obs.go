package cpu

import "repro/internal/obs"

// Process-wide simulation volume counters (obs.DefaultRegistry). They are
// pure telemetry: nothing in the simulator reads them, so they cannot
// perturb results.
var (
	obsRuns = obs.DefaultRegistry().Counter("repro_sim_runs_total",
		"Completed cycle-level simulation runs.")
	obsInsts = obs.DefaultRegistry().Counter("repro_sim_instructions_total",
		"Correct-path instructions committed across all runs.")
	obsCycles = obs.DefaultRegistry().Counter("repro_sim_cycles_total",
		"Cycles simulated across all runs.")
	obsWarmupInsts = obs.DefaultRegistry().Counter("repro_warmup_insts",
		"Warmup instructions actually executed (not restored from a checkpoint).")
	obsWarmupRestores = obs.DefaultRegistry().Counter("repro_warmup_restores",
		"Warmup prefixes restored from a snapshot instead of re-executed.")
)

// SimulatedInstructions returns the process-wide committed-instruction
// total — the denominator of the ns/inst figure run manifests record in
// their timing section. Telemetry only: nothing may feed it back into
// simulation or search decisions.
func SimulatedInstructions() uint64 { return obsInsts.Value() }

// WarmupInstructions returns the process-wide count of warmup
// instructions actually executed; WarmupRestores counts warmup prefixes
// restored from a snapshot instead. Both land in the run manifest's
// timing section (they depend on snapshot-store warm state) and nothing
// may feed them back into simulation or search decisions.
func WarmupInstructions() uint64 { return obsWarmupInsts.Value() }

// WarmupRestores returns the process-wide count of snapshot restores.
func WarmupRestores() uint64 { return obsWarmupRestores.Value() }
