package cpu

import (
	"math/rand/v2"
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

func newTestRNG() *rand.Rand { return rand.New(rand.NewPCG(2024, 7)) }

// mkTrace returns a replayable slice of n instructions from program/phase.
func mkTrace(t testing.TB, program string, phase, n int) []trace.Inst {
	t.Helper()
	g, err := trace.NewGenerator(program, phase)
	if err != nil {
		t.Fatal(err)
	}
	return g.Interval(n)
}

func runOn(t testing.TB, cfg arch.Config, insts []trace.Inst, opts Options) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(NewSliceSource(insts), len(insts), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := arch.Baseline().With(arch.Width, 5)
	if _, err := New(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	s, _ := New(arch.Baseline())
	if _, err := s.Run(NewSliceSource(mkTrace(t, "gzip", 0, 10)), 0, Options{}); err == nil {
		t.Fatal("zero instruction count accepted")
	}
}

func TestSliceSourceLoopsAndResets(t *testing.T) {
	insts := mkTrace(t, "gzip", 0, 5)
	src := NewSliceSource(insts)
	for i := 0; i < 12; i++ {
		want := insts[i%5]
		if got := src.Next(); got != want {
			t.Fatalf("instruction %d mismatch", i)
		}
	}
	src.Reset()
	if got := src.Next(); got != insts[0] {
		t.Fatal("Reset did not rewind")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty SliceSource accepted")
		}
	}()
	NewSliceSource(nil)
}

func TestBaselineRunSane(t *testing.T) {
	insts := mkTrace(t, "gzip", 0, 8000)
	res := runOn(t, arch.Baseline(), insts, Options{WarmupInsts: 8000})
	if res.Committed != 8000 {
		t.Fatalf("committed %d, want 8000", res.Committed)
	}
	if res.IPC < 0.2 || res.IPC > 4 {
		t.Errorf("baseline warm IPC = %.3f, want 0.2..4", res.IPC)
	}
	if res.Watts <= 0 || res.Watts > 500 {
		t.Errorf("power %.2f W implausible", res.Watts)
	}
	if res.Efficiency <= 0 {
		t.Errorf("efficiency %v must be positive", res.Efficiency)
	}
	if res.Cycles == 0 || res.EnergyJ <= 0 {
		t.Errorf("zero cycles or energy: %+v", res)
	}
	if res.Fetched < res.Committed {
		t.Errorf("fetched %d < committed %d", res.Fetched, res.Committed)
	}
}

func TestDeterministicResults(t *testing.T) {
	insts := mkTrace(t, "parser", 2, 4000)
	a := runOn(t, arch.Baseline(), insts, Options{})
	b := runOn(t, arch.Baseline(), insts, Options{})
	if a.Cycles != b.Cycles || a.EnergyJ != b.EnergyJ || a.Mispredicts != b.Mispredicts {
		t.Fatalf("nondeterministic: %d/%d cycles, %v/%v J", a.Cycles, b.Cycles, a.EnergyJ, b.EnergyJ)
	}
}

func TestWiderMachineFasterOnILP(t *testing.T) {
	// swim streams with high ILP: a wide machine should exceed the IPC of
	// a narrow one.
	insts := mkTrace(t, "swim", 0, 6000)
	big := arch.Profiling()
	narrow := big.With(arch.Width, 2).With(arch.RFReadPorts, 4).With(arch.RFWritePorts, 2)
	wide := big.With(arch.Width, 8)
	rn := runOn(t, narrow, insts, Options{})
	rw := runOn(t, wide, insts, Options{})
	if rw.IPC <= rn.IPC {
		t.Errorf("wide IPC %.3f not above narrow %.3f", rw.IPC, rn.IPC)
	}
	if rw.IPC > 8 || rn.IPC > 2 {
		t.Errorf("IPC exceeds width: wide %.3f narrow %.3f", rw.IPC, rn.IPC)
	}
}

func TestSmallCacheHurtsBigWorkingSet(t *testing.T) {
	// mcf chases pointers through megabytes: shrinking the D-cache and L2
	// must increase misses and reduce IPC.
	insts := mkTrace(t, "mcf", 0, 5000)
	big := arch.Baseline().With(arch.DCacheKB, 128).With(arch.L2CacheKB, 4096)
	small := arch.Baseline().With(arch.DCacheKB, 8).With(arch.L2CacheKB, 256)
	rb := runOn(t, big, insts, Options{WarmupInsts: 3000})
	rs := runOn(t, small, insts, Options{WarmupInsts: 3000})
	if rs.L1DMisses <= rb.L1DMisses {
		t.Errorf("small D-cache misses %d not above big %d", rs.L1DMisses, rb.L1DMisses)
	}
	if rs.IPC >= rb.IPC {
		t.Errorf("small-cache IPC %.3f not below big-cache %.3f", rs.IPC, rb.IPC)
	}
}

func TestDeepPipelineHigherFrequencyMorePenalty(t *testing.T) {
	// parser mispredicts a lot: a deep pipeline (FO4 9) pays more cycles
	// per mispredict than a shallow one (FO4 36), so its IPC must be
	// lower; its simulated time can still win on frequency.
	insts := mkTrace(t, "parser", 0, 6000)
	deep := runOn(t, arch.Baseline().With(arch.DepthFO4, 9), insts, Options{})
	shallow := runOn(t, arch.Baseline().With(arch.DepthFO4, 36), insts, Options{})
	if deep.IPC >= shallow.IPC {
		t.Errorf("deep IPC %.3f not below shallow %.3f", deep.IPC, shallow.IPC)
	}
}

func TestTinyIQThrottles(t *testing.T) {
	insts := mkTrace(t, "applu", 0, 6000)
	bigIQ := runOn(t, arch.Profiling(), insts, Options{})
	tinyIQ := runOn(t, arch.Profiling().With(arch.IQSize, 8), insts, Options{})
	if tinyIQ.IPC >= bigIQ.IPC {
		t.Errorf("8-entry IQ IPC %.3f not below 80-entry %.3f", tinyIQ.IPC, bigIQ.IPC)
	}
}

func TestMispredictsReduceIPC(t *testing.T) {
	// The same program with a tiny gshare mispredicts more and commits
	// more slowly per cycle.
	// crafty is compute-bound and branchy, so predictor quality shows in
	// IPC; caches are warmed to isolate the branch effect.
	insts := mkTrace(t, "crafty", 0, 8000)
	small := runOn(t, arch.Baseline().With(arch.GshareSize, 1024).With(arch.BTBSize, 1024), insts, Options{WarmupInsts: 8000})
	big := runOn(t, arch.Baseline().With(arch.GshareSize, 32768).With(arch.BTBSize, 4096), insts, Options{WarmupInsts: 8000})
	if small.Mispredicts <= big.Mispredicts {
		t.Skipf("predictor sizes did not separate on this trace: %d vs %d", small.Mispredicts, big.Mispredicts)
	}
	if small.IPC >= big.IPC {
		t.Errorf("more mispredicts but higher IPC: %.3f vs %.3f", small.IPC, big.IPC)
	}
}

func TestWrongPathActivityExists(t *testing.T) {
	insts := mkTrace(t, "parser", 0, 6000)
	res := runOn(t, arch.Baseline(), insts, Options{})
	if res.Mispredicts == 0 {
		t.Skip("no mispredicts on this trace")
	}
	if res.WrongPath == 0 {
		t.Error("mispredicts occurred but no wrong-path instructions dispatched")
	}
	if res.Committed != 6000 {
		t.Errorf("committed %d, want 6000 (wrong path must not commit)", res.Committed)
	}
}

func TestStartStallAddsCycles(t *testing.T) {
	insts := mkTrace(t, "gzip", 0, 3000)
	plain := runOn(t, arch.Baseline(), insts, Options{})
	stalled := runOn(t, arch.Baseline(), insts, Options{StartStall: 5000})
	if stalled.Cycles < plain.Cycles+4500 {
		t.Errorf("start stall not reflected: %d vs %d cycles", stalled.Cycles, plain.Cycles)
	}
}

func TestFlushCachesCostsMisses(t *testing.T) {
	insts := mkTrace(t, "gzip", 0, 3000)
	s, _ := New(arch.Baseline())
	src := NewSliceSource(insts)
	warm, err := s.Run(src, 3000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()
	flushed, err := s.Run(src, 3000, Options{FlushCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	// Second run on a warm simulator should normally hit; flushing must
	// bring cold misses back.
	if flushed.L1DMisses <= warm.L1DMisses/2 {
		t.Errorf("flush did not produce cold misses: %d vs warm %d", flushed.L1DMisses, warm.L1DMisses)
	}
}

func TestExtraEnergyCharged(t *testing.T) {
	insts := mkTrace(t, "gzip", 0, 2000)
	plain := runOn(t, arch.Baseline(), insts, Options{})
	charged := runOn(t, arch.Baseline(), insts, Options{ExtraEnergyPJ: 1e9}) // 1 mJ
	if charged.EnergyJ <= plain.EnergyJ {
		t.Errorf("extra energy not charged: %v vs %v", charged.EnergyJ, plain.EnergyJ)
	}
}

func TestCountersCollected(t *testing.T) {
	insts := mkTrace(t, "vortex", 0, 6000)
	res := runOn(t, arch.Profiling(), insts, Options{Collect: true})
	c := res.Counters
	if c == nil {
		t.Fatal("counters not collected")
	}
	for name, h := range map[string]interface{ Bins() int }{
		"ALUUsage": c.ALUUsage, "MemPortUsage": c.MemPortUsage,
		"ROBOcc": c.ROBOcc, "IQOcc": c.IQOcc, "LSQOcc": c.LSQOcc,
		"IntRegUsage": c.IntRegUsage, "FpRegUsage": c.FpRegUsage,
		"RdPortUsage": c.RdPortUsage, "WrPortUsage": c.WrPortUsage,
		"BTBReuse": c.BTBReuse,
	} {
		if h.Bins() == 0 {
			t.Errorf("%s has no bins", name)
		}
	}
	if c.ROBOcc.Total == 0 || c.IQOcc.Total == 0 {
		t.Error("occupancy histograms empty")
	}
	if c.DCache.Observations() == 0 || c.ICache.Observations() == 0 || c.L2.Observations() == 0 {
		t.Error("cache profilers saw no accesses")
	}
	if c.CPI <= 0 {
		t.Error("CPI not computed")
	}
	if c.MispredictRate < 0 || c.MispredictRate > 1 {
		t.Errorf("mispredict rate %v out of range", c.MispredictRate)
	}
	if c.IQSpecFrac < 0 || c.IQSpecFrac > 1 || c.LSQMisspecFrac < 0 || c.LSQMisspecFrac > 1 {
		t.Errorf("speculation fractions out of range: %+v", c)
	}
	if res.Counters.BTBReuse.Total == 0 {
		t.Error("BTB reuse histogram empty")
	}
}

func TestNoCountersWithoutCollect(t *testing.T) {
	insts := mkTrace(t, "gzip", 0, 1000)
	res := runOn(t, arch.Baseline(), insts, Options{})
	if res.Counters != nil {
		t.Error("counters present without Collect")
	}
}

func TestSampledSetsStillProduceHistograms(t *testing.T) {
	insts := mkTrace(t, "art", 0, 6000)
	res := runOn(t, arch.Profiling(), insts, Options{Collect: true, SampledSets: 16})
	if res.Counters.DCache.StackDist.Total == 0 {
		t.Error("sampled profiling produced empty stack-distance histogram")
	}
}

func TestWarmupReducesColdMisses(t *testing.T) {
	insts := mkTrace(t, "applu", 0, 4000)
	cold := runOn(t, arch.Baseline(), insts, Options{})
	warm := runOn(t, arch.Baseline(), insts, Options{WarmupInsts: 4000})
	if warm.L1DMisses >= cold.L1DMisses {
		t.Errorf("warmup did not reduce misses: %d vs %d", warm.L1DMisses, cold.L1DMisses)
	}
}

func TestAllBenchmarksRunOnExtremeConfigs(t *testing.T) {
	// Smoke test: every benchmark completes on the min, baseline and max
	// configurations without deadlock.
	if testing.Short() {
		t.Skip("long smoke test")
	}
	cfgs := []arch.Config{arch.MinConfig(), arch.Baseline(), arch.Profiling()}
	for _, name := range trace.Benchmarks() {
		insts := mkTrace(t, name, 0, 1500)
		for _, cfg := range cfgs {
			res := runOn(t, cfg, insts, Options{})
			if res.Committed != 1500 {
				t.Errorf("%s on %v committed %d", name, cfg, res.Committed)
			}
		}
	}
}

func TestReconfigureRejectsInvalid(t *testing.T) {
	s, _ := New(arch.Baseline())
	bad := arch.Baseline()
	bad[arch.Width] = 7
	if err := s.Reconfigure(bad); err == nil {
		t.Fatal("invalid config accepted by Reconfigure")
	}
}

func TestReconfigurePreservesWarmthForNonCacheChanges(t *testing.T) {
	insts := mkTrace(t, "eon", 0, 5000)
	s, _ := New(arch.Baseline())
	if _, err := s.Run(NewSliceSource(insts), len(insts), Options{}); err != nil {
		t.Fatal(err)
	}
	// Change only the width: caches must stay warm.
	if err := s.Reconfigure(arch.Baseline().With(arch.Width, 8)); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Run(NewSliceSource(insts), len(insts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := New(arch.Baseline().With(arch.Width, 8))
	coldRes, err := cold.Run(NewSliceSource(insts), len(insts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.L1DMisses >= coldRes.L1DMisses {
		t.Errorf("width-only reconfigure lost cache warmth: %d vs cold %d",
			warm.L1DMisses, coldRes.L1DMisses)
	}
	if s.Config()[arch.Width] != 8 {
		t.Error("config not applied")
	}
}

func TestReconfigureGrowingCacheKeepsContents(t *testing.T) {
	insts := mkTrace(t, "gzip", 0, 5000)
	s, _ := New(arch.Baseline().With(arch.DCacheKB, 32))
	if _, err := s.Run(NewSliceSource(insts), len(insts), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(arch.Baseline().With(arch.DCacheKB, 128)); err != nil {
		t.Fatal(err)
	}
	grown, err := s.Run(NewSliceSource(insts), len(insts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := New(arch.Baseline().With(arch.DCacheKB, 128))
	coldRes, _ := cold.Run(NewSliceSource(insts), len(insts), Options{})
	if grown.L1DMisses >= coldRes.L1DMisses {
		t.Errorf("grown cache lost contents: %d misses vs cold %d", grown.L1DMisses, coldRes.L1DMisses)
	}
}

func TestReconfigureChangesTimingModel(t *testing.T) {
	s, _ := New(arch.Baseline())
	f0 := s.Power().FrequencyHz
	if err := s.Reconfigure(arch.Baseline().With(arch.DepthFO4, 36)); err != nil {
		t.Fatal(err)
	}
	if s.Power().FrequencyHz >= f0 {
		t.Error("frequency did not drop with shallower pipeline")
	}
}

// Property: every benchmark commits exactly the requested instruction
// count with positive energy on arbitrary valid configurations.
func TestQuickRandomConfigsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	progs := trace.Benchmarks()
	rng := newTestRNG()
	for i := 0; i < 12; i++ {
		cfg := arch.Random(rng)
		prog := progs[i%len(progs)]
		insts := mkTrace(t, prog, i%trace.PhasesPerProgram, 1200)
		res := runOn(t, cfg, insts, Options{})
		if res.Committed != 1200 {
			t.Fatalf("%s on %v committed %d", prog, cfg, res.Committed)
		}
		if res.EnergyJ <= 0 || res.Cycles == 0 {
			t.Fatalf("%s on %v: degenerate result %+v", prog, cfg, res)
		}
		if res.Fetched < res.Committed {
			t.Fatalf("%s on %v: fetched %d < committed %d", prog, cfg, res.Fetched, res.Committed)
		}
	}
}

func TestWritePortContentionThrottles(t *testing.T) {
	// A high-ILP stream with one RF write port cannot sustain more than
	// ~1 writeback per cycle; eight ports must do better.
	insts := mkTrace(t, "swim", 0, 6000)
	one := runOn(t, arch.Profiling().With(arch.RFWritePorts, 1), insts, Options{WarmupInsts: 6000})
	eight := runOn(t, arch.Profiling().With(arch.RFWritePorts, 8), insts, Options{WarmupInsts: 6000})
	if one.IPC >= eight.IPC {
		t.Errorf("1 write port IPC %.3f not below 8 ports %.3f", one.IPC, eight.IPC)
	}
	if one.IPC > 1.35 {
		t.Errorf("1 write port sustained IPC %.3f, should be near 1", one.IPC)
	}
}

func TestReadPortContentionThrottles(t *testing.T) {
	insts := mkTrace(t, "applu", 0, 6000)
	two := runOn(t, arch.Profiling().With(arch.RFReadPorts, 2), insts, Options{WarmupInsts: 6000})
	sixteen := runOn(t, arch.Profiling().With(arch.RFReadPorts, 16), insts, Options{WarmupInsts: 6000})
	if two.IPC >= sixteen.IPC {
		t.Errorf("2 read ports IPC %.3f not below 16 ports %.3f", two.IPC, sixteen.IPC)
	}
}

func TestBranchLimitThrottlesBranchyCode(t *testing.T) {
	// parser is branch-dense: allowing only 8 in-flight branches stalls
	// fetch more than allowing 32.
	insts := mkTrace(t, "parser", 0, 6000)
	few := runOn(t, arch.Profiling().With(arch.MaxBranches, 8), insts, Options{WarmupInsts: 6000})
	many := runOn(t, arch.Profiling().With(arch.MaxBranches, 32), insts, Options{WarmupInsts: 6000})
	if few.IPC > many.IPC*1.02 {
		t.Errorf("tight branch limit IPC %.3f above loose %.3f", few.IPC, many.IPC)
	}
}

func TestICacheFootprintPressure(t *testing.T) {
	// gcc has a large code footprint: an 8KB I-cache must miss far more
	// than a 128KB one.
	insts := mkTrace(t, "gcc", 0, 8000)
	small := runOn(t, arch.Baseline().With(arch.ICacheKB, 8), insts, Options{WarmupInsts: 8000})
	big := runOn(t, arch.Baseline().With(arch.ICacheKB, 128), insts, Options{WarmupInsts: 8000})
	if small.L1IMisses <= big.L1IMisses {
		t.Errorf("8KB I-cache misses %d not above 128KB %d", small.L1IMisses, big.L1IMisses)
	}
}

func TestTinyLSQThrottlesMemoryCode(t *testing.T) {
	insts := mkTrace(t, "swim", 0, 6000)
	tiny := runOn(t, arch.Profiling().With(arch.LSQSize, 8), insts, Options{WarmupInsts: 6000})
	big := runOn(t, arch.Profiling().With(arch.LSQSize, 80), insts, Options{WarmupInsts: 6000})
	if tiny.IPC >= big.IPC {
		t.Errorf("8-entry LSQ IPC %.3f not below 80-entry %.3f", tiny.IPC, big.IPC)
	}
}

func TestSmallRFThrottles(t *testing.T) {
	// 40 registers leave only 8 renames in flight per bank: a hard ILP
	// ceiling next to 160 registers.
	insts := mkTrace(t, "sixtrack", 0, 6000)
	small := runOn(t, arch.Profiling().With(arch.RFSize, 40), insts, Options{WarmupInsts: 6000})
	big := runOn(t, arch.Profiling().With(arch.RFSize, 160), insts, Options{WarmupInsts: 6000})
	if small.IPC >= big.IPC {
		t.Errorf("40-reg RF IPC %.3f not below 160-reg %.3f", small.IPC, big.IPC)
	}
}
