package arch_test

import (
	"fmt"

	"repro/internal/arch"
)

// ExampleConfig_With shows immutable parameter updates.
func ExampleConfig_With() {
	base := arch.Baseline()
	wide := base.With(arch.Width, 8).With(arch.L2CacheKB, 4096)
	fmt.Println(base[arch.Width], wide[arch.Width], wide[arch.L2CacheKB])
	// Output: 4 8 4096
}

// ExampleSpaceSize reproduces Table I's total.
func ExampleSpaceSize() {
	fmt.Println(arch.SpaceSize())
	// Output: 626688000000
}

// ExampleDomain lists a parameter's legal values.
func ExampleDomain() {
	fmt.Println(arch.Domain(arch.Width))
	fmt.Println(arch.DomainSize(arch.ROBSize))
	// Output:
	// [2 4 6 8]
	// 17
}
