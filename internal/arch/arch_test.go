package arch

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSpaceSizeMatchesPaper(t *testing.T) {
	// Table I reports a total design space of 627 billion points.
	got := SpaceSize()
	const want = 626_688_000_000
	if got != want {
		t.Fatalf("SpaceSize() = %d, want %d (paper: 627bn)", got, want)
	}
}

func TestDomainSizesMatchTableI(t *testing.T) {
	want := map[Param]int{
		Width: 4, ROBSize: 17, IQSize: 10, LSQSize: 10, RFSize: 16,
		RFReadPorts: 8, RFWritePorts: 8, GshareSize: 6, BTBSize: 3,
		MaxBranches: 4, ICacheKB: 5, DCacheKB: 5, L2CacheKB: 5, DepthFO4: 10,
	}
	for p, n := range want {
		if got := DomainSize(p); got != n {
			t.Errorf("DomainSize(%s) = %d, want %d", p, got, n)
		}
	}
}

func TestDomainEndpoints(t *testing.T) {
	cases := []struct {
		p      Param
		lo, hi int
	}{
		{Width, 2, 8},
		{ROBSize, 32, 160},
		{IQSize, 8, 80},
		{LSQSize, 8, 80},
		{RFSize, 40, 160},
		{RFReadPorts, 2, 16},
		{RFWritePorts, 1, 8},
		{GshareSize, 1024, 32768},
		{BTBSize, 1024, 4096},
		{MaxBranches, 8, 32},
		{ICacheKB, 8, 128},
		{DCacheKB, 8, 128},
		{L2CacheKB, 256, 4096},
		{DepthFO4, 9, 36},
	}
	for _, c := range cases {
		d := Domain(c.p)
		if d[0] != c.lo || d[len(d)-1] != c.hi {
			t.Errorf("%s domain endpoints = %d..%d, want %d..%d", c.p, d[0], d[len(d)-1], c.lo, c.hi)
		}
	}
}

func TestTotalValues(t *testing.T) {
	// Sum of Table I "Num" column: 4+17+10+10+16+8+8+6+3+4+5+5+5+10 = 111.
	if got := TotalValues(); got != 111 {
		t.Fatalf("TotalValues() = %d, want 111", got)
	}
}

func TestBaselineMatchesTableIII(t *testing.T) {
	b := Baseline()
	if err := b.Check(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	if b[Width] != 4 || b[ROBSize] != 144 || b[IQSize] != 48 || b[LSQSize] != 32 {
		t.Errorf("baseline front half mismatch: %v", b)
	}
	if b[GshareSize] != 16384 || b[BTBSize] != 1024 || b[L2CacheKB] != 1024 || b[DepthFO4] != 12 {
		t.Errorf("baseline back half mismatch: %v", b)
	}
}

func TestProfilingIsMaximal(t *testing.T) {
	pc := Profiling()
	if err := pc.Check(); err != nil {
		t.Fatalf("profiling config invalid: %v", err)
	}
	for p := Param(0); p < NumParams; p++ {
		if p == DepthFO4 {
			if pc[p] != 12 {
				t.Errorf("profiling depth = %d, want 12", pc[p])
			}
			continue
		}
		d := Domain(p)
		if pc[p] != d[len(d)-1] {
			t.Errorf("profiling %s = %d, want max %d", p, pc[p], d[len(d)-1])
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	for p := Param(0); p < NumParams; p++ {
		for i, v := range Domain(p) {
			if got := IndexOf(p, v); got != i {
				t.Errorf("IndexOf(%s, %d) = %d, want %d", p, v, got, i)
			}
		}
		if IndexOf(p, -7) != -1 {
			t.Errorf("IndexOf(%s, -7) should be -1", p)
		}
	}
	c := Baseline()
	if rt := FromIndices(c.Indices()); rt != c {
		t.Errorf("FromIndices(Indices()) = %v, want %v", rt, c)
	}
}

func TestRandomConfigsValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		c := Random(rng)
		if err := c.Check(); err != nil {
			t.Fatalf("random config #%d invalid: %v", i, err)
		}
	}
}

func TestNeighborMovesExactlyOneParamOneStep(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		c := Random(rng)
		n := Neighbor(c, rng)
		if err := n.Check(); err != nil {
			t.Fatalf("neighbor invalid: %v", err)
		}
		diff := 0
		for p := Param(0); p < NumParams; p++ {
			if c[p] != n[p] {
				diff++
				di := IndexOf(p, c[p]) - IndexOf(p, n[p])
				if di != 1 && di != -1 {
					t.Fatalf("neighbor moved %s by %d domain steps", p, di)
				}
			}
		}
		if diff != 1 {
			t.Fatalf("neighbor changed %d params, want exactly 1 (c=%v n=%v)", diff, c, n)
		}
	}
}

func TestSweepCoversDomain(t *testing.T) {
	c := Baseline()
	for p := Param(0); p < NumParams; p++ {
		sw := Sweep(c, p)
		if len(sw) != DomainSize(p) {
			t.Fatalf("Sweep(%s) length %d, want %d", p, len(sw), DomainSize(p))
		}
		for i, cc := range sw {
			if cc[p] != Domain(p)[i] {
				t.Errorf("Sweep(%s)[%d] has %s=%d, want %d", p, i, p, cc[p], Domain(p)[i])
			}
			for q := Param(0); q < NumParams; q++ {
				if q != p && cc[q] != c[q] {
					t.Errorf("Sweep(%s) perturbed %s", p, q)
				}
			}
		}
	}
}

func TestSweepAllSizeAndUniqueness(t *testing.T) {
	c := Baseline()
	all := SweepAll(c)
	// Unique configurations reachable by altering one parameter:
	// sum over params of (K_p - 1), plus the incumbent itself once.
	want := TotalValues() - int(NumParams) + 1
	if len(all) != want {
		t.Fatalf("SweepAll returned %d configs, want %d", len(all), want)
	}
	seen := map[Config]bool{}
	for _, cc := range all {
		if seen[cc] {
			t.Fatalf("SweepAll returned duplicate %v", cc)
		}
		seen[cc] = true
	}
}

func TestWithDoesNotAliasReceiver(t *testing.T) {
	c := Baseline()
	c2 := c.With(Width, 8)
	if c[Width] != 4 {
		t.Fatalf("With mutated receiver")
	}
	if c2[Width] != 8 {
		t.Fatalf("With did not set value")
	}
}

func TestParamStrings(t *testing.T) {
	if Width.String() != "Width" || DepthFO4.String() != "Depth" {
		t.Errorf("unexpected param names: %s %s", Width, DepthFO4)
	}
	if got := Param(99).String(); got != "Param(99)" {
		t.Errorf("out-of-range param string = %q", got)
	}
}

// Property: FromIndices∘Indices is the identity on valid configs generated
// from arbitrary index vectors.
func TestQuickIndexIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		c := Random(rng)
		return FromIndices(c.Indices()) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Neighbor always yields a valid config different from its input
// whenever some domain has more than one value (always true here).
func TestQuickNeighborValid(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		c := Random(rng)
		n := Neighbor(c, rng)
		return n.Valid() && n != c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
