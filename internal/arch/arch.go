// Package arch defines the adaptive processor's microarchitectural design
// space: the fourteen configurable parameters of Table I in the paper, the
// values each may take, and operations over configurations (sampling,
// neighbourhoods, sweeps) used by the design-space search and by the
// predictive model.
//
// A Config stores the concrete value of every parameter (entries, bytes,
// ports, FO4 per stage) rather than an index, so the simulator can consume
// it directly; Domain and IndexOf convert between values and the class
// indices the soft-max model predicts over.
package arch

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// Param identifies one of the fourteen configurable microarchitectural
// parameters.
type Param int

// The fourteen parameters of Table I, in the paper's order.
const (
	Width        Param = iota // pipeline width (fetch/issue/commit), instructions
	ROBSize                   // reorder buffer entries
	IQSize                    // issue queue entries
	LSQSize                   // load/store queue entries
	RFSize                    // registers in each of the int and fp register files
	RFReadPorts               // register file read ports
	RFWritePorts              // register file write ports
	GshareSize                // gshare pattern history table entries
	BTBSize                   // branch target buffer entries
	MaxBranches               // maximum in-flight (speculated) branches
	ICacheKB                  // L1 instruction cache size in KB
	DCacheKB                  // L1 data cache size in KB
	L2CacheKB                 // unified L2 cache size in KB
	DepthFO4                  // pipeline depth expressed as FO4 delay per stage
	NumParams                 // number of parameters (14)
)

var paramNames = [NumParams]string{
	"Width", "ROB", "IQ", "LSQ", "RF", "RFrd", "RFwr",
	"Gshare", "BTB", "Branches", "ICache", "DCache", "UCache", "Depth",
}

// String returns the short name used in the paper's tables.
func (p Param) String() string {
	if p < 0 || p >= NumParams {
		return fmt.Sprintf("Param(%d)", int(p))
	}
	return paramNames[p]
}

// domains lists the legal values of every parameter, exactly as in Table I.
var domains = [NumParams][]int{
	Width:        {2, 4, 6, 8},
	ROBSize:      steps(32, 160, 8),
	IQSize:       steps(8, 80, 8),
	LSQSize:      steps(8, 80, 8),
	RFSize:       steps(40, 160, 8),
	RFReadPorts:  steps(2, 16, 2),
	RFWritePorts: steps(1, 8, 1),
	GshareSize:   doublings(1024, 32*1024),
	BTBSize:      {1024, 2048, 4096},
	MaxBranches:  {8, 16, 24, 32},
	ICacheKB:     doublings(8, 128),
	DCacheKB:     doublings(8, 128),
	L2CacheKB:    doublings(256, 4096),
	DepthFO4:     steps(9, 36, 3),
}

func steps(lo, hi, step int) []int {
	var vs []int
	for v := lo; v <= hi; v += step {
		vs = append(vs, v)
	}
	return vs
}

func doublings(lo, hi int) []int {
	var vs []int
	for v := lo; v <= hi; v *= 2 {
		vs = append(vs, v)
	}
	return vs
}

// Domain returns the legal values for parameter p, ascending.
// The returned slice must not be modified.
func Domain(p Param) []int { return domains[p] }

// DomainSize returns the number of legal values for p (the soft-max class
// count K for that parameter).
func DomainSize(p Param) int { return len(domains[p]) }

// TotalValues returns the sum of domain sizes over all parameters (the
// total soft-max class count across the fourteen per-parameter models).
func TotalValues() int {
	n := 0
	for p := Param(0); p < NumParams; p++ {
		n += len(domains[p])
	}
	return n
}

// SpaceSize returns the number of points in the full design space
// (the paper's 627 billion).
func SpaceSize() uint64 {
	n := uint64(1)
	for p := Param(0); p < NumParams; p++ {
		n *= uint64(len(domains[p]))
	}
	return n
}

// IndexOf returns the index of value v within p's domain, or -1 if v is not
// a legal value of p.
func IndexOf(p Param, v int) int {
	for i, dv := range domains[p] {
		if dv == v {
			return i
		}
	}
	return -1
}

// Config is a complete microarchitectural configuration: one concrete value
// per parameter. Config is comparable and therefore usable as a map key,
// which the experiment harness relies on to memoise simulations.
type Config [NumParams]int

// Get returns the value of parameter p.
func (c Config) Get(p Param) int { return c[p] }

// With returns a copy of c with parameter p set to v.
func (c Config) With(p Param, v int) Config {
	c[p] = v
	return c
}

// Valid reports whether every parameter holds a legal Table I value.
func (c Config) Valid() bool {
	for p := Param(0); p < NumParams; p++ {
		if IndexOf(p, c[p]) < 0 {
			return false
		}
	}
	return true
}

// Check returns a descriptive error for the first out-of-domain parameter,
// or nil if the configuration is valid.
func (c Config) Check() error {
	for p := Param(0); p < NumParams; p++ {
		if IndexOf(p, c[p]) < 0 {
			return fmt.Errorf("arch: parameter %s has illegal value %d (domain %v)", p, c[p], domains[p])
		}
	}
	return nil
}

// String renders the configuration in Table III's column order.
func (c Config) String() string {
	var b strings.Builder
	for p := Param(0); p < NumParams; p++ {
		if p > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", p, c[p])
	}
	return b.String()
}

// Indices returns, for every parameter, the index of its value within the
// parameter's domain. This is the class-label encoding consumed by the
// soft-max model.
func (c Config) Indices() [NumParams]int {
	var ix [NumParams]int
	for p := Param(0); p < NumParams; p++ {
		ix[p] = IndexOf(p, c[p])
	}
	return ix
}

// FromIndices builds a Config from per-parameter domain indices.
// It panics if any index is out of range (a programming error: indices come
// from model predictions which are clamped to the domain).
func FromIndices(ix [NumParams]int) Config {
	var c Config
	for p := Param(0); p < NumParams; p++ {
		c[p] = domains[p][ix[p]]
	}
	return c
}

// Baseline returns the best-overall-static configuration reported in
// Table III of the paper. The experiment harness re-derives its own best
// static configuration from the sampled space; this constant is the paper's
// published point, used as a reference and as the default configuration.
func Baseline() Config {
	return Config{
		Width:        4,
		ROBSize:      144,
		IQSize:       48,
		LSQSize:      32,
		RFSize:       160,
		RFReadPorts:  4,
		RFWritePorts: 1,
		GshareSize:   16 * 1024,
		BTBSize:      1024,
		MaxBranches:  24,
		ICacheKB:     64,
		DCacheKB:     32,
		L2CacheKB:    1024,
		DepthFO4:     12,
	}
}

// Profiling returns the profiling configuration of Section III-B1: the
// largest structures and the highest level of branch speculation, so that
// no resource saturates while counters are gathered. Pipeline depth is held
// at the baseline FO4 of 12 — depth is not a capacity and profiling at an
// extreme clock would distort the CPI counter.
func Profiling() Config {
	c := Config{}
	for p := Param(0); p < NumParams; p++ {
		d := domains[p]
		c[p] = d[len(d)-1] // maximum of every domain
	}
	c[DepthFO4] = 12
	return c
}

// MinConfig returns the configuration with every parameter at its minimum
// value (the smallest, slowest machine in the space).
func MinConfig() Config {
	var c Config
	for p := Param(0); p < NumParams; p++ {
		c[p] = domains[p][0]
	}
	return c
}

// Random returns a configuration sampled uniformly at random from the
// design space.
func Random(rng *rand.Rand) Config {
	var c Config
	for p := Param(0); p < NumParams; p++ {
		d := domains[p]
		c[p] = d[rng.IntN(len(d))]
	}
	return c
}

// Neighbor returns a copy of c with one uniformly chosen parameter moved
// one step up or down its domain (reflecting at the ends), i.e. a local
// neighbour in the sense of the paper's training-data search.
func Neighbor(c Config, rng *rand.Rand) Config {
	p := Param(rng.IntN(int(NumParams)))
	d := domains[p]
	i := IndexOf(p, c[p])
	switch {
	case i <= 0:
		i = 1
	case i >= len(d)-1:
		i = len(d) - 2
	case rng.IntN(2) == 0:
		i--
	default:
		i++
	}
	return c.With(p, d[i])
}

// Sweep returns the configurations obtained by setting parameter p to each
// of its legal values while all other parameters keep c's values (the
// one-at-a-time stage of the paper's search protocol).
func Sweep(c Config, p Param) []Config {
	d := domains[p]
	out := make([]Config, len(d))
	for i, v := range d {
		out[i] = c.With(p, v)
	}
	return out
}

// SweepAll returns the union of Sweep(c, p) over every parameter, excluding
// duplicates of c itself beyond one occurrence. The paper's final search
// stage alters each parameter of the incumbent one at a time: 98 extra
// configurations in the full space.
func SweepAll(c Config) []Config {
	seen := map[Config]bool{}
	var out []Config
	for p := Param(0); p < NumParams; p++ {
		for _, cc := range Sweep(c, p) {
			if !seen[cc] {
				seen[cc] = true
				out = append(out, cc)
			}
		}
	}
	return out
}
