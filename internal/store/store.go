// Package store is the persistent, content-addressed simulation-result
// cache: a single-writer, append-only log of measurement-mode cpu.Results
// keyed by a SHA-256 fingerprint over the canonical simulation inputs
// (SimVersion, program, phase, configuration, interval and warmup
// lengths). It turns repeat pipeline runs — cmd/report regenerations,
// bench-harness restarts, adaptd first-boot retrains — from simulation
// cost into disk reads, and lets an interrupted build resume mid-dataset.
//
// Durability model: every record carries a length header and a CRC-32C,
// so a crash mid-append (torn or truncated tail) is detected and dropped
// on the next open rather than poisoning the cache; a bit-flipped payload
// is likewise skipped record-by-record. Writes go straight to the file
// descriptor (no userspace buffering), so a killed process loses at most
// the record being appended. An advisory flock(2) on a sidecar lock file
// keeps a second process from interleaving appends; compaction rewrites
// the log through a temp file + atomic rename.
//
// The store never decides anything: it only answers "has this exact
// simulation already been run, and what did it produce, bit for bit".
// In-sample semantics stay with the caller (internal/experiment).
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"syscall"

	"repro/internal/cpu"
	"repro/internal/obs"
)

// SimVersion fingerprints the simulator + calibration behaviour. It MUST
// be bumped whenever anything that changes simulation results changes:
// the workload personalities in internal/trace/benchmarks.go, the power
// constants in internal/power/power.go, or the simulator core itself.
// Old records keyed under the previous version simply stop matching (and
// are swept out by the next compaction); nothing needs wiping by hand.
const SimVersion = 1

const (
	dataFileName = "results.log"
	lockFileName = "lock"

	// simVersionFileName is a sidecar stamp naming the SimVersion of the
	// store's latest writer. SimVersion is baked into every record key
	// (not recoverable from the records themselves), so the stamp is what
	// lets Merge and CheckDir refuse to mix stores whose records were
	// produced under different simulator physics.
	simVersionFileName = "simversion"

	// segmentGlob matches sealed read-only segment logs: merged or
	// adopted record sets that Open indexes alongside the head log
	// (results.log). Segments are written once (AdoptSegment) and only
	// ever removed by compaction, which folds them into a fresh head.
	segmentGlob = "segment-*.log"

	// fileHeader is the 8-byte log preamble: 4-byte magic + uint32
	// format version (little-endian). The format version covers the
	// *framing*; result-content changes are SimVersion's job.
	fileMagic     = "RSTO"
	formatVersion = 1
	headerSize    = 8

	// recHeaderSize frames every record: uint32 payload length +
	// uint32 CRC-32C of the payload, both little-endian.
	recHeaderSize = 8

	// maxPayload bounds a single record; anything larger in a length
	// field is corruption, not data.
	maxPayload = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrLocked reports that another process holds the store's lock file.
var ErrLocked = errors.New("store: directory locked by another process")

// recLoc locates one live record's payload within one of the store's
// logs: src < 0 is the head log (results.log), src >= 0 indexes the
// sealed segment opened at that position.
type recLoc struct {
	off  int64  // payload offset (past the record header)
	plen int32  // payload length (key + value)
	crc  uint32 // payload CRC-32C, re-verified on every read
	src  int32  // -1 = head log, else segment index
}

// Stats is a point-in-time snapshot of one store's activity since Open.
type Stats struct {
	Records      int    // live records in the index
	Hits         uint64 // Get calls answered from the log
	Misses       uint64 // Get calls with no (valid) record
	BytesRead    uint64 // payload bytes served by hits
	BytesWritten uint64 // payload bytes appended by puts
	Dropped      int    // corrupt or truncated records discarded
	Superseded   int    // records shadowed by a newer write of their key
	Compactions  int    // compaction passes completed

	// Store composition at open time: how much of this directory arrived
	// via the fabric merge/adopt paths rather than local appends. Both
	// describe what Open found (a later compaction folds segments into
	// the head without updating them).
	Segments      int // sealed segment files indexed at open
	MergedRecords int // live records served from segments at open

	// Warmup-snapshot sidecar activity (snapshots.log). Tracked apart
	// from the result counters: sidecar damage must never mark the
	// result log dirty, and the two record kinds are reported separately
	// by storectl stats.
	SnapshotRecords      int    // live snapshot records in the sidecar
	SnapshotHits         uint64 // GetSnapshot calls answered from the sidecar
	SnapshotMisses       uint64 // GetSnapshot calls with no (valid) record
	SnapshotDropped      int    // corrupt or truncated snapshot records discarded
	SnapshotBytesRead    uint64 // payload bytes served by snapshot hits
	SnapshotBytesWritten uint64 // payload bytes appended by snapshot puts
}

// FillManifest records the stats into a run manifest's timing section.
// Every field goes under timing — hit/miss counts are integers, but they
// depend on how warm the store was, and cold and warm replays of the same
// configuration must keep byte-identical deterministic sections.
// elapsedSeconds > 0 adds a storeBytesPerSec throughput figure.
func (s Stats) FillManifest(m *obs.Manifest, elapsedSeconds float64) {
	m.SetTiming("storeHits", float64(s.Hits))
	m.SetTiming("storeMisses", float64(s.Misses))
	if s.Hits+s.Misses > 0 {
		m.SetTiming("storeHitRate", float64(s.Hits)/float64(s.Hits+s.Misses))
	}
	m.SetTiming("storeRecords", float64(s.Records))
	// Composition counts are warm-state-dependent too (a replay against
	// an already-compacted store sees zero segments), so they stay out of
	// the deterministic section with the rest.
	m.SetTiming("storeSegments", float64(s.Segments))
	m.SetTiming("storeMergedRecords", float64(s.MergedRecords))
	m.SetTiming("storeBytesRead", float64(s.BytesRead))
	m.SetTiming("storeBytesWritten", float64(s.BytesWritten))
	// Snapshot sidecar traffic is warm-state-dependent like everything
	// else here: a warm replay restores where a cold run executed.
	m.SetTiming("storeSnapshotRecords", float64(s.SnapshotRecords))
	m.SetTiming("storeSnapshotHits", float64(s.SnapshotHits))
	m.SetTiming("storeSnapshotMisses", float64(s.SnapshotMisses))
	if elapsedSeconds > 0 {
		m.SetTiming("storeBytesPerSec", float64(s.BytesRead+s.BytesWritten)/elapsedSeconds)
	}
}

// Store is the on-disk result cache. All methods are safe for concurrent
// use; the process-level single-writer guarantee comes from the lock
// file, not from Go-side synchronisation.
type Store struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	lock     *os.File
	segs     []*os.File // sealed segment logs, scan order (nil = unreadable)
	segNames []string   // segment paths, aligned with segs
	index    map[Key]recLoc
	end      int64 // head append offset (start of the next record header)
	stale    int64 // payload bytes of superseded/skipped records
	stats    Stats

	// Warmup-snapshot sidecar (snapshots.log): created lazily by the
	// first PutSnapshot, indexed at Open when present.
	snapF     *os.File
	snapIndex map[Key]recLoc
	snapEnd   int64
}

// Open opens (creating if needed) the store in dir, takes the advisory
// lock, rebuilds the in-memory index from the log, and — if the scan
// found corrupt or superseded records — compacts the log in place.
// A truncated or bit-flipped tail is recovered from, never fatal.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	lock, err := acquireLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, dataFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: opening log: %w", err)
	}
	s := &Store{dir: dir, f: f, lock: lock, index: map[Key]recLoc{}, snapIndex: map[Key]recLoc{}}
	// The span carries no args: record counts differ between cold and
	// warm opens, and the span tree (and its manifest digest) must stay
	// byte-identical across replays of the same configuration. Counts are
	// available from Stats and the repro_store_* metrics instead.
	sp := obs.DefaultTracer().Start("store.open")
	defer sp.Finish()
	// Sealed segments first, then the head: scan order is supersede
	// order, so local appends always shadow merged/adopted records.
	if err := s.scanSegments(); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.scan(); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.scanSnapshots(); err != nil {
		s.Close()
		return nil, err
	}
	s.stats.Segments = len(s.segNames)
	for _, loc := range s.index {
		if loc.src >= 0 {
			s.stats.MergedRecords++
		}
	}
	if err := s.writeSimVersion(); err != nil {
		s.Close()
		return nil, err
	}
	obsOpens.Inc()
	// A dirty log (corruption survived, or keys rewritten) is rewritten
	// clean now, while no readers depend on offsets.
	if s.stats.Dropped > 0 || s.stats.Superseded > 0 {
		if err := s.compactLocked(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// HeadLog returns the path of dir's primary append log — what a fabric
// driver adopts into the next shard's store as a sealed segment.
func HeadLog(dir string) string { return filepath.Join(dir, dataFileName) }

// writeSimVersion stamps the directory with this binary's SimVersion. The
// stamp always names the physics of the store's latest writer; records
// from older versions simply never match by key (their keys embed the old
// version) and are swept by the next compaction.
func (s *Store) writeSimVersion() error {
	path := filepath.Join(s.dir, simVersionFileName)
	want := []byte(strconv.Itoa(SimVersion) + "\n")
	if cur, err := os.ReadFile(path); err == nil && string(cur) == string(want) {
		return nil
	}
	if err := os.WriteFile(path, want, 0o644); err != nil {
		return fmt.Errorf("store: stamping simversion: %w", err)
	}
	return nil
}

// readSimVersion returns dir's sidecar stamp; ok is false when the file
// is missing or unparsable.
func readSimVersion(dir string) (v int, ok bool) {
	b, err := os.ReadFile(filepath.Join(dir, simVersionFileName))
	if err != nil {
		return 0, false
	}
	n, err := strconv.Atoi(string(bytes.TrimSpace(b)))
	if err != nil {
		return 0, false
	}
	return n, true
}

// acquireLock opens the sidecar lock file and takes a non-blocking
// exclusive flock on it. The kernel releases the lock when the process
// exits, so a crashed run never leaves the store wedged.
func acquireLock(path string) (*os.File, error) {
	lf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lf.Close()
		return nil, fmt.Errorf("%w: %s is held by another process — stop the other report/adaptd/adaptsim/storectl run using this store directory, or point this one at a different directory", ErrLocked, path)
	}
	return lf, nil
}

// scanSegments opens and indexes every sealed segment log in the
// directory, in sorted name order (segment names are content digests, so
// the order is arbitrary but stable — segments never contain conflicting
// records, Merge guarantees that).
func (s *Store) scanSegments() error {
	names, err := filepath.Glob(filepath.Join(s.dir, segmentGlob))
	if err != nil {
		return fmt.Errorf("store: listing segments: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("store: opening segment %s: %w", path, err)
		}
		src := int32(len(s.segs))
		s.segs = append(s.segs, f)
		s.segNames = append(s.segNames, path)
		s.scanSegment(f, src)
	}
	return nil
}

// scanSegment indexes one sealed read-only segment. Unlike the head scan,
// damage never truncates anything here (Open does not own a segment's
// bytes the way it owns the head): framing damage drops the tail records,
// payload damage drops one record — either marks the store dirty, so the
// compaction that follows folds the survivors into a clean head and
// deletes the segment.
func (s *Store) scanSegment(f *os.File, src int32) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil || size < headerSize {
		s.dropRecord(0)
		return
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		s.dropRecord(0)
		return
	}
	if string(hdr[:4]) != fileMagic || binary.LittleEndian.Uint32(hdr[4:]) != formatVersion {
		s.dropRecord(0)
		return
	}
	off := int64(headerSize)
	var rh [recHeaderSize]byte
	for off < size {
		if off+recHeaderSize > size {
			s.dropRecord(0)
			return
		}
		if _, err := f.ReadAt(rh[:], off); err != nil {
			s.dropRecord(0)
			return
		}
		plen := int64(binary.LittleEndian.Uint32(rh[:4]))
		crc := binary.LittleEndian.Uint32(rh[4:])
		if plen < keySize || plen > maxPayload || off+recHeaderSize+plen > size {
			s.dropRecord(0)
			return
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+recHeaderSize); err != nil {
			s.dropRecord(plen)
			return
		}
		next := off + recHeaderSize + plen
		if crc32.Checksum(payload, castagnoli) != crc {
			s.dropRecord(plen)
			off = next
			continue
		}
		var key Key
		copy(key[:], payload[:keySize])
		if old, ok := s.index[key]; ok {
			s.stats.Superseded++
			s.stale += int64(old.plen) + recHeaderSize
		}
		s.index[key] = recLoc{off: off + recHeaderSize, plen: int32(plen), crc: crc, src: src}
		off = next
	}
}

// scan validates the header and replays the log into the index. Framing
// damage (short header, implausible length, short payload) ends the log:
// everything from that offset on is dropped and the file truncated so
// appends restart from the last good record. Payload damage (CRC
// mismatch with intact framing) drops only the one record and keeps
// scanning — a mid-file bit flip costs one result, not the tail.
func (s *Store) scan() error {
	size, err := s.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: sizing log: %w", err)
	}
	if size == 0 {
		var hdr [headerSize]byte
		copy(hdr[:4], fileMagic)
		binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
		if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("store: writing header: %w", err)
		}
		s.end = headerSize
		s.stats.Records = len(s.index)
		return nil
	}
	var hdr [headerSize]byte
	if size < headerSize {
		// Shorter than a header: a run died inside the very first
		// write. Start the log over.
		return s.reset()
	}
	if _, err := s.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: reading header: %w", err)
	}
	if string(hdr[:4]) != fileMagic {
		return fmt.Errorf("store: %s is not a result store (bad magic)", filepath.Join(s.dir, dataFileName))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != formatVersion {
		return fmt.Errorf("store: log format v%d, this binary reads v%d (wipe %s to rebuild)", v, formatVersion, s.dir)
	}

	off := int64(headerSize)
	var rh [recHeaderSize]byte
	for off < size {
		if off+recHeaderSize > size {
			return s.truncateTail(off)
		}
		if _, err := s.f.ReadAt(rh[:], off); err != nil {
			return fmt.Errorf("store: reading record header at %d: %w", off, err)
		}
		plen := int64(binary.LittleEndian.Uint32(rh[:4]))
		crc := binary.LittleEndian.Uint32(rh[4:])
		if plen < keySize || plen > maxPayload || off+recHeaderSize+plen > size {
			return s.truncateTail(off)
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, off+recHeaderSize); err != nil {
			return fmt.Errorf("store: reading record at %d: %w", off, err)
		}
		next := off + recHeaderSize + plen
		if crc32.Checksum(payload, castagnoli) != crc {
			// Framing is intact but the payload is damaged: drop
			// this record only and resynchronise on the next.
			s.dropRecord(plen)
			off = next
			continue
		}
		var key Key
		copy(key[:], payload[:keySize])
		if old, ok := s.index[key]; ok {
			s.stats.Superseded++
			s.stale += int64(old.plen) + recHeaderSize
		}
		s.index[key] = recLoc{off: off + recHeaderSize, plen: int32(plen), crc: crc, src: -1}
		off = next
	}
	s.end = off
	s.stats.Records = len(s.index)
	return nil
}

// dropRecord accounts one discarded record.
func (s *Store) dropRecord(payloadLen int64) {
	s.stats.Dropped++
	s.stale += payloadLen + recHeaderSize
	obsCorrupt.Inc()
}

// truncateTail ends the scan at off: everything beyond it is a torn or
// corrupt tail. The file is cut back so the next append writes over it.
func (s *Store) truncateTail(off int64) error {
	s.dropRecord(0)
	if err := s.f.Truncate(off); err != nil {
		return fmt.Errorf("store: truncating torn tail at %d: %w", off, err)
	}
	s.end = off
	s.stats.Records = len(s.index)
	return nil
}

// reset rewrites an unreadably short log from scratch.
func (s *Store) reset() error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: resetting log: %w", err)
	}
	s.dropRecord(0)
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: writing header: %w", err)
	}
	s.end = headerSize
	return nil
}

// Get returns the stored result for key, or (nil, false) if the store
// has no valid record for it. The payload CRC is re-verified on every
// read; a record that rotted after open is dropped and reported as a
// miss rather than returned.
func (s *Store) Get(key Key) (*cpu.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.index[key]
	if !ok {
		s.miss()
		return nil, false
	}
	f := s.fileFor(loc)
	if f == nil {
		s.evict(key, loc)
		return nil, false
	}
	payload := make([]byte, loc.plen)
	if _, err := f.ReadAt(payload, loc.off); err != nil {
		s.evict(key, loc)
		return nil, false
	}
	if crc32.Checksum(payload, castagnoli) != loc.crc || Key(payload[:keySize]) != key {
		s.evict(key, loc)
		return nil, false
	}
	res, err := decodeResult(payload[keySize:])
	if err != nil {
		s.evict(key, loc)
		return nil, false
	}
	s.stats.Hits++
	s.stats.BytesRead += uint64(loc.plen)
	obsHits.Inc()
	obsBytesRead.Add(uint64(loc.plen))
	return res, true
}

// fileFor resolves a record location to the log holding it.
func (s *Store) fileFor(loc recLoc) *os.File {
	if loc.src < 0 {
		return s.f
	}
	if int(loc.src) >= len(s.segs) {
		return nil
	}
	return s.segs[loc.src]
}

// miss accounts one failed lookup.
func (s *Store) miss() {
	s.stats.Misses++
	obsMisses.Inc()
}

// evict removes a record that failed read-time validation and counts the
// lookup as a miss.
func (s *Store) evict(key Key, loc recLoc) {
	delete(s.index, key)
	s.stats.Records = len(s.index)
	s.dropRecord(int64(loc.plen))
	s.miss()
}

// Put appends (key, res) to the log and indexes it. A re-put of an
// existing key shadows the old record until the next compaction.
func (s *Store) Put(key Key, res *cpu.Result) error {
	value := encodeResult(res)
	payload := make([]byte, keySize+len(value))
	copy(payload, key[:])
	copy(payload[keySize:], value)

	rec := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	crc := crc32.Checksum(payload, castagnoli)
	binary.LittleEndian.PutUint32(rec[4:8], crc)
	copy(rec[recHeaderSize:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(rec, s.end); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.stats.Superseded++
		s.stale += int64(old.plen) + recHeaderSize
	}
	s.index[key] = recLoc{off: s.end + recHeaderSize, plen: int32(len(payload)), crc: crc, src: -1}
	s.end += int64(len(rec))
	s.stats.Records = len(s.index)
	s.stats.BytesWritten += uint64(len(payload))
	obsBytesWritten.Add(uint64(len(payload)))
	return nil
}

// Compact rewrites the store to a single head log containing exactly the
// live records (in their original scan order: segments first, then head
// appends) via a temp file and an atomic rename, then deletes the folded
// segment files. Callers rarely need this directly: Open compacts
// automatically when the scan found garbage or shadowed records.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	sp := obs.DefaultTracer().Start("store.compact").
		SetArg("records", strconv.Itoa(len(s.index)))
	defer sp.Finish()

	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	// Scan order: segment records in segment order, head records last.
	rank := func(loc recLoc) int64 {
		if loc.src < 0 {
			return int64(len(s.segs))
		}
		return int64(loc.src)
	}
	sort.Slice(keys, func(i, j int) bool {
		li, lj := s.index[keys[i]], s.index[keys[j]]
		if ri, rj := rank(li), rank(lj); ri != rj {
			return ri < rj
		}
		return li.off < lj.off
	})

	tmp, err := os.CreateTemp(s.dir, dataFileName+".compact-*")
	if err != nil {
		return fmt.Errorf("store: compaction temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds

	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compaction header: %w", err)
	}
	newIndex := make(map[Key]recLoc, len(keys))
	off := int64(headerSize)
	var rh [recHeaderSize]byte
	for _, k := range keys {
		loc := s.index[k]
		f := s.fileFor(loc)
		if f == nil {
			s.dropRecord(int64(loc.plen))
			continue
		}
		payload := make([]byte, loc.plen)
		if _, err := f.ReadAt(payload, loc.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction read: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != loc.crc {
			// Rotted since open; drop it from the compacted log.
			s.dropRecord(int64(loc.plen))
			continue
		}
		binary.LittleEndian.PutUint32(rh[:4], uint32(loc.plen))
		binary.LittleEndian.PutUint32(rh[4:], loc.crc)
		if _, err := tmp.Write(rh[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction write: %w", err)
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction write: %w", err)
		}
		newIndex[k] = recLoc{off: off + recHeaderSize, plen: loc.plen, crc: loc.crc, src: -1}
		off += recHeaderSize + int64(loc.plen)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compaction sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compaction close: %w", err)
	}
	path := filepath.Join(s.dir, dataFileName)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: compaction rename: %w", err)
	}
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted log: %w", err)
	}
	s.f.Close()
	s.f = nf
	s.index = newIndex
	s.end = off
	s.stale = 0
	s.stats.Records = len(s.index)
	s.stats.Compactions++
	obsCompactions.Inc()
	// The segments are folded into the new head; remove them. Rename
	// happened first, so a crash anywhere in here leaves duplicates that
	// the next Open's supersede accounting detects and re-compacts away.
	for i, f := range s.segs {
		if f != nil {
			f.Close()
		}
		os.Remove(s.segNames[i])
	}
	s.segs = nil
	s.segNames = nil
	return nil
}

// Stats returns a snapshot of this store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Close syncs and closes the log and releases the advisory lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	if s.f != nil {
		if err := s.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.f = nil
	}
	for _, f := range s.segs {
		if f != nil {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	s.segs = nil
	if s.snapF != nil {
		if err := s.snapF.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.snapF.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.snapF = nil
	}
	if s.lock != nil {
		// Closing the fd drops the flock; the lock file itself stays
		// (removing it would race a concurrent Open).
		if err := s.lock.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.lock = nil
	}
	return firstErr
}
