// Warmup-snapshot sidecar: a second content-addressed log alongside
// results.log holding cpu.Sim warmup checkpoints (cpu.Snapshot bytes)
// keyed by SHA-256 over (SimVersion, program, phase, config projection,
// interval, warmup length). It reuses the result log's record framing
// (length + CRC-32C header, key-prefixed payload) under its own file and
// magic, so the existing result log stays byte-for-byte what it was and
// SimVersion does not bump for the feature's existence.
//
// Snapshots are pure amortisation: a record's only consumer is
// cpu.Sim.Restore on an identically-keyed warmup, and a hit must be
// indistinguishable from re-executing the warmup (bit-for-bit equal
// Results, gated by internal/cpu's golden sweep). Unlike results, a key
// is never superseded — identical inputs produce identical snapshots —
// so PutSnapshot of a present key is a no-op, and Merge refuses
// divergent duplicates exactly as it does for results.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/arch"
)

const (
	// snapFileName is the sidecar log; it exists only once a snapshot has
	// been written, so stores that never checkpoint are untouched.
	snapFileName = "snapshots.log"

	// snapFileMagic distinguishes the sidecar from a result log; the
	// framing version is shared (formatVersion).
	snapFileMagic = "RSNP"

	// maxSnapPayload bounds one snapshot record. The largest design-space
	// snapshot (4MB L2) encodes to well under a megabyte; anything beyond
	// this bound in a length field is corruption, not data.
	maxSnapPayload = 1 << 24
)

// snapshotKeyMagic domain-separates snapshot keys from result keys: the
// same (program, phase, cfg, interval, warmup) tuple must never collide
// across the two record kinds.
const snapshotKeyMagic = "repro.warmsnap\x00"

// SnapshotKey derives the sidecar key for one warmup prefix. The config
// projection is currently the FULL configuration: every parameter feeds
// the timing constants that decide how much wrong-path pollution reaches
// the caches and predictor during warmup, so no parameter can be proven
// warm-state-irrelevant (internal/cpu's TestWarmupProjectionAudit holds
// that proof obligation). Narrowing the projection is allowed only with
// that audit extended to cover the excluded parameters. SimVersion is
// baked in, so bumping it retires every old snapshot automatically.
func SnapshotKey(program string, phase int, cfg arch.Config, intervalInsts, warmupInsts int) Key {
	h := sha256.New()
	buf := make([]byte, 0, 256)
	buf = append(buf, snapshotKeyMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, SimVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(program)))
	buf = append(buf, program...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(phase)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(arch.NumParams))
	for p := arch.Param(0); p < arch.NumParams; p++ {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(cfg[p])))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(intervalInsts)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(warmupInsts)))
	h.Write(buf)
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// SnapLog returns the path of dir's snapshot sidecar log.
func SnapLog(dir string) string { return filepath.Join(dir, snapFileName) }

// scanSnapshots indexes an existing snapshot sidecar at Open. Damage is
// handled like the head result log — torn framing truncates the tail so
// appends restart cleanly, a CRC-damaged payload drops one record — but
// the counters stay in the Snapshot* stats so sidecar damage never
// triggers a result-log compaction.
func (s *Store) scanSnapshots() error {
	path := SnapLog(s.dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // created lazily by the first PutSnapshot
		}
		return fmt.Errorf("store: opening snapshot log: %w", err)
	}
	s.snapF = f
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: sizing snapshot log: %w", err)
	}
	truncate := func(off int64) error {
		s.stats.SnapshotDropped++
		obsCorrupt.Inc()
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating torn snapshot tail at %d: %w", off, err)
		}
		s.snapEnd = off
		return nil
	}
	var hdr [headerSize]byte
	if size < headerSize {
		return truncate(0) // reheadered by the next PutSnapshot
	}
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: reading snapshot header: %w", err)
	}
	if string(hdr[:4]) != snapFileMagic {
		return fmt.Errorf("store: %s is not a snapshot log (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != formatVersion {
		return fmt.Errorf("store: snapshot log format v%d, this binary reads v%d (remove %s to rebuild)", v, formatVersion, path)
	}
	off := int64(headerSize)
	var rh [recHeaderSize]byte
	for off < size {
		if off+recHeaderSize > size {
			return truncate(off)
		}
		if _, err := f.ReadAt(rh[:], off); err != nil {
			return fmt.Errorf("store: reading snapshot record header at %d: %w", off, err)
		}
		plen := int64(binary.LittleEndian.Uint32(rh[:4]))
		crc := binary.LittleEndian.Uint32(rh[4:])
		if plen <= keySize || plen > maxSnapPayload || off+recHeaderSize+plen > size {
			return truncate(off)
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+recHeaderSize); err != nil {
			return fmt.Errorf("store: reading snapshot record at %d: %w", off, err)
		}
		next := off + recHeaderSize + plen
		if crc32.Checksum(payload, castagnoli) != crc {
			s.stats.SnapshotDropped++
			obsCorrupt.Inc()
			off = next
			continue
		}
		var key Key
		copy(key[:], payload[:keySize])
		s.snapIndex[key] = recLoc{off: off + recHeaderSize, plen: int32(plen), crc: crc, src: -1}
		off = next
	}
	s.snapEnd = off
	s.stats.SnapshotRecords = len(s.snapIndex)
	return nil
}

// GetSnapshot returns the stored warmup snapshot for key, or (nil, false)
// when the sidecar holds no valid record for it. Like Get, the CRC is
// re-verified on every read and a rotted record is dropped, never served.
func (s *Store) GetSnapshot(key Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.snapIndex[key]
	if !ok {
		s.stats.SnapshotMisses++
		return nil, false
	}
	payload := make([]byte, loc.plen)
	if _, err := s.snapF.ReadAt(payload, loc.off); err != nil {
		s.evictSnapshot(key, loc)
		return nil, false
	}
	if crc32.Checksum(payload, castagnoli) != loc.crc || Key(payload[:keySize]) != key {
		s.evictSnapshot(key, loc)
		return nil, false
	}
	s.stats.SnapshotHits++
	s.stats.SnapshotBytesRead += uint64(loc.plen)
	obsSnapHits.Inc()
	return payload[keySize:], true
}

// evictSnapshot removes a snapshot that failed read-time validation and
// counts the lookup as a miss.
func (s *Store) evictSnapshot(key Key, loc recLoc) {
	delete(s.snapIndex, key)
	s.stats.SnapshotRecords = len(s.snapIndex)
	s.stats.SnapshotDropped++
	s.stats.SnapshotMisses++
	obsCorrupt.Inc()
}

// PutSnapshot appends (key, snap) to the sidecar, creating it on first
// use. A key already present is a no-op: snapshots are content-addressed,
// so an identical key always names identical bytes (a divergent re-put
// would be a physics change without a SimVersion bump, which Merge
// refuses for the same reason).
func (s *Store) PutSnapshot(key Key, snap []byte) error {
	if len(snap) == 0 {
		return fmt.Errorf("store: refusing empty snapshot")
	}
	if keySize+len(snap) > maxSnapPayload {
		return fmt.Errorf("store: snapshot of %d bytes exceeds the %d-byte record bound", len(snap), maxSnapPayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.snapIndex[key]; ok {
		return nil
	}
	if s.snapF == nil {
		f, err := os.OpenFile(SnapLog(s.dir), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("store: creating snapshot log: %w", err)
		}
		s.snapF = f
	}
	if s.snapEnd < headerSize {
		var hdr [headerSize]byte
		copy(hdr[:4], snapFileMagic)
		binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
		if _, err := s.snapF.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("store: writing snapshot header: %w", err)
		}
		s.snapEnd = headerSize
	}
	payload := make([]byte, keySize+len(snap))
	copy(payload, key[:])
	copy(payload[keySize:], snap)
	rec := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	crc := crc32.Checksum(payload, castagnoli)
	binary.LittleEndian.PutUint32(rec[4:8], crc)
	copy(rec[recHeaderSize:], payload)
	if _, err := s.snapF.WriteAt(rec, s.snapEnd); err != nil {
		return fmt.Errorf("store: appending snapshot: %w", err)
	}
	s.snapIndex[key] = recLoc{off: s.snapEnd + recHeaderSize, plen: int32(len(payload)), crc: crc, src: -1}
	s.snapEnd += int64(len(rec))
	s.stats.SnapshotRecords = len(s.snapIndex)
	s.stats.SnapshotBytesWritten += uint64(len(payload))
	obsSnapPuts.Inc()
	return nil
}

// liveSnapRecords reads a directory's snapshot sidecar without opening
// the store (the caller holds the directory lock): last record per key
// wins, damage is skipped, nothing is repaired. A missing sidecar is an
// empty map.
func liveSnapRecords(dir string) (map[Key][]byte, int, error) {
	path := SnapLog(dir)
	if _, err := os.Stat(path); err != nil {
		return map[Key][]byte{}, 0, nil
	}
	live := map[Key][]byte{}
	scan, err := scanLogFileAs(path, snapFileMagic, maxSnapPayload, func(_ int64, key Key, payload []byte, _ uint32) {
		p := make([]byte, len(payload))
		copy(p, payload)
		live[key] = p
	})
	if err != nil {
		return nil, 0, err
	}
	dropped := scan.Dropped
	if scan.BadHeader {
		dropped++
	}
	return live, dropped, nil
}
