package store

import "repro/internal/obs"

// Process-wide store series (obs.DefaultRegistry): how often the
// persistent cache saved a simulation and how much it moved. These are
// write-only telemetry — nothing in the store or the experiment protocol
// reads them back (per-store accounting lives in Stats).
var (
	obsHits = obs.DefaultRegistry().Counter("repro_store_hits_total",
		"Simulation results answered from the persistent store.")
	obsMisses = obs.DefaultRegistry().Counter("repro_store_misses_total",
		"Store lookups that found no valid record.")
	obsBytesRead = obs.DefaultRegistry().Counter("repro_store_bytes_read_total",
		"Payload bytes served by store hits.")
	obsBytesWritten = obs.DefaultRegistry().Counter("repro_store_bytes_written_total",
		"Payload bytes appended to store logs.")
	obsCompactions = obs.DefaultRegistry().Counter("repro_store_compactions_total",
		"Store log compaction passes completed.")
	obsCorrupt = obs.DefaultRegistry().Counter("repro_store_corrupt_records_total",
		"Corrupt, truncated or undecodable store records dropped.")
	obsOpens = obs.DefaultRegistry().Counter("repro_store_opens_total",
		"Store directories opened.")
	obsMerges = obs.DefaultRegistry().Counter("repro_store_merges_total",
		"Store merge operations completed.")
	obsMergeRecords = obs.DefaultRegistry().Counter("repro_store_merge_records_total",
		"Live records written by store merges.")
	obsSegmentsAdopted = obs.DefaultRegistry().Counter("repro_store_segments_adopted_total",
		"Sealed segments adopted into store directories.")
	obsSnapHits = obs.DefaultRegistry().Counter("repro_store_snapshot_hits_total",
		"Warmup snapshots answered from the persistent store.")
	obsSnapPuts = obs.DefaultRegistry().Counter("repro_store_snapshot_puts_total",
		"Warmup snapshots appended to store sidecar logs.")
)

// ProcessStats returns the process-lifetime store counters (all stores
// combined) — the numbers cmd/report's progress and summary lines show
// next to the in-memory memo hit rate.
func ProcessStats() (hits, misses, bytesRead, bytesWritten, compactions uint64) {
	return obsHits.Value(), obsMisses.Value(), obsBytesRead.Value(),
		obsBytesWritten.Value(), obsCompactions.Value()
}
