// Record codec: the content-addressed key and the canonical binary
// encoding of a measurement-mode cpu.Result. Both are fixed-layout
// little-endian so a record written on one run decodes bit-identically
// on the next — float64 fields round-trip through their IEEE bits, never
// through text.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/power"
)

// Key is the SHA-256 fingerprint of one simulation's canonical inputs.
type Key [sha256.Size]byte

const keySize = sha256.Size

// fingerprintMagic domain-separates the hash from any other SHA-256 use.
const fingerprintMagic = "repro.simres\x00"

// Fingerprint derives the store key for one measurement-mode simulation:
// the phase identity, the full configuration, and the two Scale levers
// that shape a single run (interval and warmup instruction counts). The
// remaining Scale fields (seed, program list, sample budgets) decide
// *which* simulations happen, not what any one of them returns, so they
// stay out of the key — that is what lets report, adaptd and adaptsim
// runs at different scales share records. SimVersion is baked in, so
// bumping it retires every old record without touching the file.
func Fingerprint(program string, phase int, cfg arch.Config, intervalInsts, warmupInsts int) Key {
	return fingerprint(SimVersion, program, phase, cfg, intervalInsts, warmupInsts)
}

func fingerprint(version uint64, program string, phase int, cfg arch.Config, intervalInsts, warmupInsts int) Key {
	h := sha256.New()
	buf := make([]byte, 0, 256)
	buf = append(buf, fingerprintMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(program)))
	buf = append(buf, program...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(phase)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(arch.NumParams))
	for p := arch.Param(0); p < arch.NumParams; p++ {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(cfg[p])))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(intervalInsts)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(warmupInsts)))
	h.Write(buf)
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// Field counts of the fixed record layout. Decoding checks these against
// the running binary: a result struct that grew or shrank (or a changed
// arch.NumParams / power.NumStructures) makes old records undecodable,
// which Get treats as a miss — never as silently wrong data.
const (
	countFields   = 13 // Cycles .. L2Misses
	derivedFields = 6  // IPC, SecondsSim, IPS, Watts, EnergyJ, Efficiency
)

// encodedSize is the exact value length for the current build.
func encodedSize() int {
	return 2 + // uint16 param count
		4*int(arch.NumParams) + // config values
		8*countFields +
		8 + // energy cycles
		8*3 + // dynamic, leakage, total joules
		2 + // uint16 structure count
		8*int(power.NumStructures) +
		8 + // average power
		8*derivedFields
}

// encodeResult serialises a measurement-mode result (Counters must be
// nil — profiling runs are never cached).
func encodeResult(r *cpu.Result) []byte {
	buf := make([]byte, 0, encodedSize())
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)) }

	buf = binary.LittleEndian.AppendUint16(buf, uint16(arch.NumParams))
	for p := arch.Param(0); p < arch.NumParams; p++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(r.Config[p])))
	}
	u64(r.Cycles)
	u64(r.Committed)
	u64(r.Fetched)
	u64(r.WrongPath)
	u64(r.BranchLookups)
	u64(r.Mispredicts)
	u64(r.BTBMisses)
	u64(r.L1IAccesses)
	u64(r.L1IMisses)
	u64(r.L1DAccesses)
	u64(r.L1DMisses)
	u64(r.L2Accesses)
	u64(r.L2Misses)

	u64(r.Energy.Cycles)
	f64(r.Energy.DynamicJ)
	f64(r.Energy.LeakageJ)
	f64(r.Energy.TotalJ)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(power.NumStructures))
	for st := power.Structure(0); st < power.NumStructures; st++ {
		f64(r.Energy.PerStructureJ[st])
	}
	f64(r.Energy.AvgPowerW)

	f64(r.IPC)
	f64(r.SecondsSim)
	f64(r.IPS)
	f64(r.Watts)
	f64(r.EnergyJ)
	f64(r.Efficiency)
	return buf
}

// decodeResult is encodeResult's strict inverse: the value must have the
// exact current-layout length and matching dimension tags.
func decodeResult(value []byte) (*cpu.Result, error) {
	if len(value) != encodedSize() {
		return nil, fmt.Errorf("store: record value is %d bytes, want %d", len(value), encodedSize())
	}
	off := 0
	u16 := func() uint16 { v := binary.LittleEndian.Uint16(value[off:]); off += 2; return v }
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(value[off:]); off += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(value[off:]); off += 8; return v }
	f64 := func() float64 { return math.Float64frombits(u64()) }

	if n := u16(); n != uint16(arch.NumParams) {
		return nil, fmt.Errorf("store: record has %d parameters, want %d", n, arch.NumParams)
	}
	r := &cpu.Result{}
	for p := arch.Param(0); p < arch.NumParams; p++ {
		r.Config[p] = int(int32(u32()))
	}
	r.Cycles = u64()
	r.Committed = u64()
	r.Fetched = u64()
	r.WrongPath = u64()
	r.BranchLookups = u64()
	r.Mispredicts = u64()
	r.BTBMisses = u64()
	r.L1IAccesses = u64()
	r.L1IMisses = u64()
	r.L1DAccesses = u64()
	r.L1DMisses = u64()
	r.L2Accesses = u64()
	r.L2Misses = u64()

	r.Energy.Cycles = u64()
	r.Energy.DynamicJ = f64()
	r.Energy.LeakageJ = f64()
	r.Energy.TotalJ = f64()
	if n := u16(); n != uint16(power.NumStructures) {
		return nil, fmt.Errorf("store: record has %d power structures, want %d", n, power.NumStructures)
	}
	for st := power.Structure(0); st < power.NumStructures; st++ {
		r.Energy.PerStructureJ[st] = f64()
	}
	r.Energy.AvgPowerW = f64()

	r.IPC = f64()
	r.SecondsSim = f64()
	r.IPS = f64()
	r.Watts = f64()
	r.EnergyJ = f64()
	r.Efficiency = f64()
	return r, nil
}
