// Merge/adopt: the multi-party half of the store. A fabric build (see
// internal/fabric) leaves behind many partial store directories that share
// nothing but this file format; Merge unions them into one canonical
// registry and AdoptSegment seeds one store with another's records at
// file-copy cost. Both are crash-safe via the same temp-file + atomic
// rename idiom as compaction, and both refuse to mix simulator versions.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// MergeStats describes one Merge call.
type MergeStats struct {
	Sources    int   // source directories read
	Records    int   // live records in the merged destination
	Added      int   // records the destination did not already hold
	Dedup      int   // identical duplicates collapsed across inputs
	Superseded int   // within-directory shadowed records skipped
	Dropped    int   // corrupt or torn records skipped while reading
	Bytes      int64 // size of the merged destination log
	Snapshots  int   // live warmup snapshots in the merged sidecar
}

// Merge unions the live records of the source store directories (and the
// destination's own, if it already holds any) into a single canonical log
// at dstDir. The rules:
//
//   - Within one directory, a key written twice resolves to the newest
//     record — the store's normal supersede semantics.
//   - Across directories, the same key must carry bit-identical payloads:
//     identical duplicates collapse into one record, divergent ones abort
//     the merge naming the key. Two stores that disagree on the same
//     simulation mean someone changed simulation physics without bumping
//     SimVersion; silently picking a winner would poison every downstream
//     figure.
//   - Every directory that holds records must carry the current
//     SimVersion stamp (the sidecar Open writes).
//   - The output is written sorted by key through a temp file + atomic
//     rename, so any source order produces the byte-identical log, and
//     the destination's old segments are removed only after the rename
//     (a crash in between leaves harmless duplicates the next Open
//     compacts away).
//
// Corrupt records in the inputs (torn tails, flipped bytes) are skipped
// exactly as Open's scan would skip them, and counted in Dropped.
func Merge(dstDir string, srcDirs ...string) (MergeStats, error) {
	var ms MergeStats
	sp := obs.DefaultTracer().Start("store.merge").
		SetArg("sources", strconv.Itoa(len(srcDirs)))
	defer sp.Finish()

	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return ms, fmt.Errorf("store: creating %s: %w", dstDir, err)
	}
	lock, err := acquireLock(filepath.Join(dstDir, lockFileName))
	if err != nil {
		return ms, err
	}
	defer lock.Close()

	union := map[Key][]byte{}
	origin := map[Key]string{}
	snapUnion := map[Key][]byte{}
	snapOrigin := map[Key]string{}

	// The destination's own records participate like a source: they must
	// agree with everything merged over them.
	dstLive, dstStats, err := liveDirRecords(dstDir)
	if err != nil {
		return ms, err
	}
	dstSnaps, dstSnapDropped, err := liveSnapRecords(dstDir)
	if err != nil {
		return ms, err
	}
	ms.Superseded += dstStats.Superseded
	ms.Dropped += dstStats.Dropped + dstSnapDropped
	if len(dstLive) > 0 || len(dstSnaps) > 0 {
		if err := requireSimVersion(dstDir); err != nil {
			return ms, err
		}
	}
	for k, p := range dstLive {
		union[k] = p
		origin[k] = dstDir
	}
	for k, p := range dstSnaps {
		snapUnion[k] = p
		snapOrigin[k] = dstDir
	}

	for _, src := range srcDirs {
		ms.Sources++
		live, snaps, st, err := func() (map[Key][]byte, map[Key][]byte, liveStats, error) {
			srcLock, err := acquireLock(filepath.Join(src, lockFileName))
			if err != nil {
				return nil, nil, liveStats{}, err
			}
			defer srcLock.Close()
			if err := requireSimVersion(src); err != nil {
				return nil, nil, liveStats{}, err
			}
			live, st, err := liveDirRecords(src)
			if err != nil {
				return nil, nil, st, err
			}
			snaps, snapDropped, err := liveSnapRecords(src)
			if err != nil {
				return nil, nil, st, err
			}
			st.Dropped += snapDropped
			return live, snaps, st, nil
		}()
		if err != nil {
			return ms, err
		}
		ms.Superseded += st.Superseded
		ms.Dropped += st.Dropped
		// Sorted iteration keeps Added/Dedup accounting (and the first
		// divergence named on error) independent of map order.
		for _, k := range sortedKeys(live) {
			p := live[k]
			if have, ok := union[k]; ok {
				if bytes.Equal(have, p) {
					ms.Dedup++
					continue
				}
				return ms, fmt.Errorf("store: merge conflict on key %s: %s and %s hold different results for the same simulation (SimVersion %d) — a physics change without a SimVersion bump; refusing to merge",
					hex.EncodeToString(k[:8]), origin[k], src, SimVersion)
			}
			union[k] = p
			origin[k] = src
			ms.Added++
		}
		// Warmup snapshots merge under the identical discipline: the same
		// key must name bit-identical bytes everywhere, or someone changed
		// warm-state physics without a SimVersion bump.
		for _, k := range sortedKeys(snaps) {
			p := snaps[k]
			if have, ok := snapUnion[k]; ok {
				if bytes.Equal(have, p) {
					continue
				}
				return ms, fmt.Errorf("store: merge conflict on snapshot key %s: %s and %s hold different warmup snapshots for the same inputs (SimVersion %d) — a physics change without a SimVersion bump; refusing to merge",
					hex.EncodeToString(k[:8]), snapOrigin[k], src, SimVersion)
			}
			snapUnion[k] = p
			snapOrigin[k] = src
		}
	}

	keys := sortedKeys(union)
	tmp, err := os.CreateTemp(dstDir, dataFileName+".merge-*")
	if err != nil {
		return ms, fmt.Errorf("store: merge temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return ms, fmt.Errorf("store: merge header: %w", err)
	}
	size := int64(headerSize)
	var rh [recHeaderSize]byte
	for _, k := range keys {
		payload := union[k]
		binary.LittleEndian.PutUint32(rh[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rh[4:], crc32.Checksum(payload, castagnoli))
		if _, err := tmp.Write(rh[:]); err != nil {
			tmp.Close()
			return ms, fmt.Errorf("store: merge write: %w", err)
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return ms, fmt.Errorf("store: merge write: %w", err)
		}
		size += recHeaderSize + int64(len(payload))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return ms, fmt.Errorf("store: merge sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return ms, fmt.Errorf("store: merge close: %w", err)
	}
	if err := os.Rename(tmp.Name(), HeadLog(dstDir)); err != nil {
		return ms, fmt.Errorf("store: merge rename: %w", err)
	}
	// The destination's old segments are folded into the new head now.
	if segs, err := filepath.Glob(filepath.Join(dstDir, segmentGlob)); err == nil {
		for _, p := range segs {
			os.Remove(p)
		}
	}
	// The snapshot sidecar merges with the same key-sorted temp+rename
	// idiom, so any source order yields the byte-identical sidecar too.
	if len(snapUnion) > 0 {
		if err := writeSnapLog(dstDir, snapUnion); err != nil {
			return ms, err
		}
		ms.Snapshots = len(snapUnion)
	}
	want := []byte(strconv.Itoa(SimVersion) + "\n")
	if err := os.WriteFile(filepath.Join(dstDir, simVersionFileName), want, 0o644); err != nil {
		return ms, fmt.Errorf("store: stamping simversion: %w", err)
	}
	ms.Records = len(keys)
	ms.Bytes = size
	obsMerges.Inc()
	obsMergeRecords.Add(uint64(len(keys)))
	return ms, nil
}

// AdoptSegment copies the valid records of srcLog into dir as a sealed
// read-only segment named by content digest — adopting the same log twice
// lands on the same file, so re-runs are idempotent. The copy is
// sanitised (framing damage truncates, CRC-damaged records are skipped)
// and committed by temp file + atomic rename. The fabric driver uses this
// to seed a shard worker's private store with its predecessors' records
// at file-copy cost; record-level reconciliation is Merge's job.
func AdoptSegment(dir, srcLog string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: creating %s: %w", dir, err)
	}
	lock, err := acquireLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return "", err
	}
	defer lock.Close()
	if v, ok := readSimVersion(dir); ok && v != SimVersion {
		return "", fmt.Errorf("store: %s is stamped simversion %d but this binary simulates version %d — refusing to adopt records into it", dir, v, SimVersion)
	}

	tmp, err := os.CreateTemp(dir, "segment-*.tmp")
	if err != nil {
		return "", fmt.Errorf("store: adopt temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: adopt header: %w", err)
	}
	var writeErr error
	var rh [recHeaderSize]byte
	scan, err := scanLogFile(srcLog, func(_ int64, _ Key, payload []byte, crc uint32) {
		if writeErr != nil {
			return
		}
		binary.LittleEndian.PutUint32(rh[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rh[4:], crc)
		h.Write(rh[:])
		h.Write(payload)
		if _, err := tmp.Write(rh[:]); err != nil {
			writeErr = err
			return
		}
		if _, err := tmp.Write(payload); err != nil {
			writeErr = err
		}
	})
	if err == nil && writeErr != nil {
		err = writeErr
	}
	if err == nil && scan.BadHeader {
		err = fmt.Errorf("store: %s is not a result store log", srcLog)
	}
	if err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: adopting %s: %w", srcLog, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: adopt sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: adopt close: %w", err)
	}
	name := "segment-" + hex.EncodeToString(h.Sum(nil))[:16] + ".log"
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return "", fmt.Errorf("store: adopt rename: %w", err)
	}
	if _, ok := readSimVersion(dir); !ok {
		want := []byte(strconv.Itoa(SimVersion) + "\n")
		if err := os.WriteFile(filepath.Join(dir, simVersionFileName), want, 0o644); err != nil {
			return "", fmt.Errorf("store: stamping simversion: %w", err)
		}
	}
	obsSegmentsAdopted.Inc()
	return name, nil
}

// writeSnapLog writes records as dstDir's snapshot sidecar, key-sorted,
// through a temp file + atomic rename. The caller holds the dstDir lock.
func writeSnapLog(dstDir string, records map[Key][]byte) error {
	tmp, err := os.CreateTemp(dstDir, snapFileName+".merge-*")
	if err != nil {
		return fmt.Errorf("store: snapshot merge temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	var hdr [headerSize]byte
	copy(hdr[:4], snapFileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot merge header: %w", err)
	}
	var rh [recHeaderSize]byte
	for _, k := range sortedKeys(records) {
		payload := records[k]
		binary.LittleEndian.PutUint32(rh[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rh[4:], crc32.Checksum(payload, castagnoli))
		if _, err := tmp.Write(rh[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("store: snapshot merge write: %w", err)
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("store: snapshot merge write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot merge sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot merge close: %w", err)
	}
	if err := os.Rename(tmp.Name(), SnapLog(dstDir)); err != nil {
		return fmt.Errorf("store: snapshot merge rename: %w", err)
	}
	return nil
}

// requireSimVersion rejects directories whose sidecar stamp is missing or
// names a different simulator version than this binary.
func requireSimVersion(dir string) error {
	v, ok := readSimVersion(dir)
	if !ok {
		return fmt.Errorf("store: %s has no simversion stamp — open it once with the binary that wrote it (any report/adaptd run) to stamp it, then retry", dir)
	}
	if v != SimVersion {
		return fmt.Errorf("store: %s is stamped simversion %d but this binary simulates version %d — rebuild it (or merge with the matching binary) instead of mixing physics", dir, v, SimVersion)
	}
	return nil
}

// liveStats summarises a liveDirRecords pass.
type liveStats struct {
	Superseded int
	Dropped    int
	Logs       int
}

// liveDirRecords reads a directory's live records without opening it as a
// Store: sealed segments in sorted name order, then the head log, later
// records superseding earlier ones and damage skipped exactly as Open's
// scan would — but strictly read-only, nothing is repaired or truncated.
// The caller holds the directory lock.
func liveDirRecords(dir string) (map[Key][]byte, liveStats, error) {
	var st liveStats
	live := map[Key][]byte{}
	segs, err := filepath.Glob(filepath.Join(dir, segmentGlob))
	if err != nil {
		return nil, st, fmt.Errorf("store: listing segments: %w", err)
	}
	sort.Strings(segs)
	logs := segs
	head := HeadLog(dir)
	if _, err := os.Stat(head); err == nil {
		logs = append(logs, head)
	}
	for _, path := range logs {
		scan, err := scanLogFile(path, func(_ int64, key Key, payload []byte, _ uint32) {
			if _, ok := live[key]; ok {
				st.Superseded++
			}
			p := make([]byte, len(payload))
			copy(p, payload)
			live[key] = p
		})
		if err != nil {
			return nil, st, err
		}
		st.Logs++
		st.Dropped += scan.Dropped
		if scan.BadHeader {
			st.Dropped++
		}
	}
	return live, st, nil
}

// sortedKeys returns the map's keys in ascending byte order — the one
// canonical order every merge-path iteration uses, so no output or error
// ever depends on Go map iteration order.
func sortedKeys(m map[Key][]byte) []Key {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return bytes.Compare(keys[i][:], keys[j][:]) < 0
	})
	return keys
}
