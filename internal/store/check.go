// Read-only auditing for storectl: walk a store directory's logs
// validating framing, CRCs, payload decodability and the SimVersion
// stamp, describing every fault instead of repairing anything.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// logScan reports one tolerant walk over a single log file.
type logScan struct {
	Path      string
	Records   int      // records whose framing and CRC checked out
	Dropped   int      // CRC-damaged records skipped
	Bytes     int64    // file size
	BadHeader bool     // magic/version preamble unreadable or wrong
	TornTail  bool     // framing damage ended the walk early
	Faults    []string // human-readable fault descriptions with offsets
}

// scanLogFile walks one result log tolerantly, invoking visit for every
// record whose framing and CRC check out. Faults are described, never
// fatal: framing damage ends the walk (torn tail), payload damage skips
// one record. The returned error covers I/O failures only.
func scanLogFile(path string, visit func(off int64, key Key, payload []byte, crc uint32)) (*logScan, error) {
	return scanLogFileAs(path, fileMagic, maxPayload, visit)
}

// scanLogFileAs is scanLogFile generalised over the log kind: result logs
// and the warmup-snapshot sidecar share the record framing but differ in
// file magic and payload bound.
func scanLogFileAs(path, magic string, maxLen int64, visit func(off int64, key Key, payload []byte, crc uint32)) (*logScan, error) {
	ls := &logScan{Path: path}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("store: sizing %s: %w", path, err)
	}
	ls.Bytes = size
	fault := func(format string, args ...any) {
		ls.Faults = append(ls.Faults, fmt.Sprintf(format, args...))
	}
	if size < headerSize {
		ls.BadHeader = true
		fault("%s: shorter than the %d-byte log header", path, headerSize)
		return ls, nil
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("store: reading %s header: %w", path, err)
	}
	if string(hdr[:4]) != magic {
		ls.BadHeader = true
		fault("%s: not a store log of the expected kind (bad magic)", path)
		return ls, nil
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != formatVersion {
		ls.BadHeader = true
		fault("%s: log format v%d, this binary reads v%d", path, v, formatVersion)
		return ls, nil
	}
	off := int64(headerSize)
	var rh [recHeaderSize]byte
	for off < size {
		if off+recHeaderSize > size {
			ls.TornTail = true
			fault("%s: torn record header at offset %d (%d trailing bytes)", path, off, size-off)
			return ls, nil
		}
		if _, err := f.ReadAt(rh[:], off); err != nil {
			return nil, fmt.Errorf("store: reading %s at %d: %w", path, off, err)
		}
		plen := int64(binary.LittleEndian.Uint32(rh[:4]))
		crc := binary.LittleEndian.Uint32(rh[4:])
		if plen < keySize || plen > maxLen || off+recHeaderSize+plen > size {
			ls.TornTail = true
			fault("%s: implausible record framing at offset %d (payload length %d)", path, off, plen)
			return ls, nil
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+recHeaderSize); err != nil {
			return nil, fmt.Errorf("store: reading %s at %d: %w", path, off, err)
		}
		next := off + recHeaderSize + plen
		if crc32.Checksum(payload, castagnoli) != crc {
			ls.Dropped++
			fault("%s: CRC mismatch at offset %d (record dropped)", path, off)
			off = next
			continue
		}
		var key Key
		copy(key[:], payload[:keySize])
		visit(off, key, payload, crc)
		ls.Records++
		off = next
	}
	return ls, nil
}

// DirCheck aggregates storectl's read-only audit of one store directory.
type DirCheck struct {
	Dir        string
	SimVersion int // sidecar stamp value (0 when missing)
	HasStamp   bool
	Logs       []*logScan // segments in scan order, then the head
	Segments   int
	Live       int // distinct keys after supersede resolution
	Superseded int
	Dropped    int
	Bytes      int64

	// Warmup-snapshot sidecar (snapshots.log; absent is not a fault —
	// stores that never checkpoint have none).
	Snapshots     int   // live snapshot records
	SnapshotBytes int64 // sidecar file size

	Faults []string // every fault found, dir-level first
}

// Ok reports whether the audit found nothing wrong.
func (c *DirCheck) Ok() bool { return len(c.Faults) == 0 }

// CheckDir audits dir: framing, CRCs, value decodability and the
// SimVersion stamp. Strictly read-only — unlike Open it repairs nothing —
// but it does take the directory lock, so auditing a store another
// process is appending to fails fast with the lock error instead of
// reporting torn bytes. The returned error covers I/O and lock failures;
// format problems land in Faults.
func CheckDir(dir string) (*DirCheck, error) {
	c := &DirCheck{Dir: dir}
	lock, err := acquireLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, err
	}
	defer lock.Close()

	v, ok := readSimVersion(dir)
	c.SimVersion, c.HasStamp = v, ok
	if !ok {
		c.Faults = append(c.Faults, fmt.Sprintf("%s: no simversion stamp — open the store once (any report/adaptd run) to stamp it", dir))
	} else if v != SimVersion {
		c.Faults = append(c.Faults, fmt.Sprintf("%s: stamped simversion %d but this binary simulates version %d — records will never match; merge refuses mixed stores", dir, v, SimVersion))
	}

	segs, err := filepath.Glob(filepath.Join(dir, segmentGlob))
	if err != nil {
		return nil, fmt.Errorf("store: listing segments: %w", err)
	}
	sort.Strings(segs)
	c.Segments = len(segs)
	logs := segs
	head := HeadLog(dir)
	if _, err := os.Stat(head); err == nil {
		logs = append(logs, head)
	} else {
		c.Faults = append(c.Faults, fmt.Sprintf("%s: no head log (%s)", dir, dataFileName))
	}
	seen := map[Key]bool{}
	for _, path := range logs {
		ls, err := scanLogFile(path, func(off int64, key Key, payload []byte, _ uint32) {
			if seen[key] {
				c.Superseded++
			}
			seen[key] = true
			if _, err := decodeResult(payload[keySize:]); err != nil {
				c.Faults = append(c.Faults, fmt.Sprintf("%s: undecodable record value at offset %d: %v", path, off, err))
			}
		})
		if err != nil {
			return nil, err
		}
		c.Logs = append(c.Logs, ls)
		c.Dropped += ls.Dropped
		c.Bytes += ls.Bytes
		c.Faults = append(c.Faults, ls.Faults...)
	}
	c.Live = len(seen)

	// The warmup-snapshot sidecar is audited with the same framing and
	// CRC discipline — a flipped snapshot byte is a fault exactly like a
	// flipped result byte — but its payloads are opaque cpu.Snapshot
	// bytes, so there is no value decode to validate beyond non-emptiness.
	snapPath := SnapLog(dir)
	if _, err := os.Stat(snapPath); err == nil {
		snapSeen := map[Key]bool{}
		ls, err := scanLogFileAs(snapPath, snapFileMagic, maxSnapPayload, func(off int64, key Key, payload []byte, _ uint32) {
			snapSeen[key] = true
			if len(payload) <= keySize {
				c.Faults = append(c.Faults, fmt.Sprintf("%s: empty snapshot value at offset %d", snapPath, off))
			}
		})
		if err != nil {
			return nil, err
		}
		c.Logs = append(c.Logs, ls)
		c.Dropped += ls.Dropped
		c.Snapshots = len(snapSeen)
		c.SnapshotBytes = ls.Bytes
		c.Bytes += ls.Bytes
		c.Faults = append(c.Faults, ls.Faults...)
	}
	return c, nil
}
