package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildDir creates a store directory holding the records keys[i] ->
// fakeResult(vals[i]) in order, via the normal Put path.
func buildDir(t *testing.T, keys []int, vals []int) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := s.Put(fakeKey(k), fakeResult(vals[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestMergeUnionsDisjointStores(t *testing.T) {
	a := buildDir(t, []int{0, 1, 2}, []int{0, 1, 2})
	b := buildDir(t, []int{3, 4}, []int{3, 4})
	dst := t.TempDir()
	ms, err := Merge(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Sources != 2 || ms.Records != 5 || ms.Added != 5 || ms.Dedup != 0 {
		t.Fatalf("stats = %+v, want 2 sources, 5 records, 5 added, 0 dedup", ms)
	}
	s, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 5 {
		t.Fatalf("merged store has %d records, want 5", s.Len())
	}
	for i := 0; i < 5; i++ {
		res, ok := s.Get(fakeKey(i))
		if !ok {
			t.Fatalf("key %d missing after merge", i)
		}
		if res.Cycles != uint64(1000+i) {
			t.Fatalf("key %d: cycles = %d, want %d", i, res.Cycles, 1000+i)
		}
	}
}

func TestMergeDedupesIdenticalDuplicates(t *testing.T) {
	a := buildDir(t, []int{0, 1}, []int{0, 1})
	b := buildDir(t, []int{1, 2}, []int{1, 2}) // key 1 identical in both
	dst := t.TempDir()
	ms, err := Merge(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Records != 3 || ms.Dedup != 1 {
		t.Fatalf("stats = %+v, want 3 records with 1 dedup", ms)
	}
}

func TestMergeRefusesDivergentDuplicate(t *testing.T) {
	a := buildDir(t, []int{0, 1}, []int{0, 1})
	b := buildDir(t, []int{1}, []int{99}) // key 1, different result bytes
	dst := t.TempDir()
	_, err := Merge(dst, a, b)
	if err == nil {
		t.Fatal("merge of divergent duplicates succeeded, want hard error")
	}
	if !strings.Contains(err.Error(), "merge conflict on key") {
		t.Fatalf("error %q does not name the conflict", err)
	}
	// The error must name the offending key (hex prefix).
	k := fakeKey(1)
	wantHex := ""
	for _, b := range k[:8] {
		const hexdigits = "0123456789abcdef"
		wantHex += string(hexdigits[b>>4]) + string(hexdigits[b&0xf])
	}
	if !strings.Contains(err.Error(), wantHex) {
		t.Fatalf("error %q does not contain key hex %s", err, wantHex)
	}
	// The destination must not have been written.
	if _, err := os.Stat(HeadLog(dst)); !os.IsNotExist(err) {
		t.Fatalf("destination log exists after refused merge (stat err %v)", err)
	}
}

func TestMergeRejectsSimVersionMismatch(t *testing.T) {
	a := buildDir(t, []int{0}, []int{0})
	if err := os.WriteFile(filepath.Join(a, simVersionFileName), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Merge(t.TempDir(), a)
	if err == nil || !strings.Contains(err.Error(), "simversion 999") {
		t.Fatalf("merge of mismatched simversion: err = %v, want stamp mismatch", err)
	}

	b := buildDir(t, []int{1}, []int{1})
	if err := os.Remove(filepath.Join(b, simVersionFileName)); err != nil {
		t.Fatal(err)
	}
	_, err = Merge(t.TempDir(), b)
	if err == nil || !strings.Contains(err.Error(), "no simversion stamp") {
		t.Fatalf("merge of unstamped store: err = %v, want missing-stamp error", err)
	}
}

func TestMergeRecoversCorruptSource(t *testing.T) {
	a := buildDir(t, []int{0, 1, 2}, []int{0, 1, 2})
	path := HeadLog(a)
	recs := recordOffsets(t, path)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside record 1's value, then append a torn tail.
	flipAt := recs[1][0] + recHeaderSize + keySize + 4
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, flipAt); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, flipAt); err != nil {
		t.Fatal(err)
	}
	end, _ := f.Seek(0, 2)
	if _, err := f.WriteAt([]byte{1, 2, 3}, end); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dst := t.TempDir()
	ms, err := Merge(dst, a)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Records != 2 || ms.Dropped != 1 {
		t.Fatalf("stats = %+v, want 2 records with 1 dropped (the flipped byte; the torn tail never framed a record)", ms)
	}
	s, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Get(fakeKey(1)); ok {
		t.Fatal("corrupted record survived the merge")
	}
	for _, i := range []int{0, 2} {
		if _, ok := s.Get(fakeKey(i)); !ok {
			t.Fatalf("intact record %d lost in the merge", i)
		}
	}
}

// TestMergeDeterministicAnyOrder pins the satellite-6 guarantee: the
// merged log is byte-identical for any source order (keys are written
// sorted, never in map-iteration or argument order).
func TestMergeDeterministicAnyOrder(t *testing.T) {
	a := buildDir(t, []int{0, 1, 2, 3}, []int{0, 1, 2, 3})
	b := buildDir(t, []int{2, 3, 4}, []int{2, 3, 4}) // overlaps a
	c := buildDir(t, []int{5, 6}, []int{5, 6})
	orders := [][]string{{a, b, c}, {c, b, a}, {b, c, a}}
	var logs [][]byte
	for _, order := range orders {
		dst := t.TempDir()
		if _, err := Merge(dst, order...); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(HeadLog(dst))
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, data)
	}
	for i := 1; i < len(logs); i++ {
		if !bytes.Equal(logs[0], logs[i]) {
			t.Fatalf("merge order %v produced different bytes than %v", orders[i], orders[0])
		}
	}
}

func TestMergeIntoExistingStore(t *testing.T) {
	dst := buildDir(t, []int{0, 1}, []int{0, 1})
	src := buildDir(t, []int{1, 2}, []int{1, 2})
	ms, err := Merge(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Records != 3 || ms.Added != 1 || ms.Dedup != 1 {
		t.Fatalf("stats = %+v, want 3 records, 1 added, 1 dedup", ms)
	}
	s, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 3 {
		t.Fatalf("merged store has %d records, want 3", s.Len())
	}
}

func TestAdoptSegmentAndOpen(t *testing.T) {
	src := buildDir(t, []int{0, 1, 2}, []int{0, 1, 2})
	dir := t.TempDir()
	name, err := AdoptSegment(dir, HeadLog(src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "segment-") || !strings.HasSuffix(name, ".log") {
		t.Fatalf("segment name %q not of the segment-*.log form", name)
	}
	// Idempotent: adopting the same log lands on the same file.
	name2, err := AdoptSegment(dir, HeadLog(src))
	if err != nil {
		t.Fatal(err)
	}
	if name2 != name {
		t.Fatalf("re-adopt produced %q, want %q", name2, name)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segmentGlob))
	if len(segs) != 1 {
		t.Fatalf("%d segment files after double adopt, want 1", len(segs))
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Segments != 1 || st.MergedRecords != 3 || s.Len() != 3 {
		t.Fatalf("open stats = %+v len=%d, want 1 segment serving 3 records", st, s.Len())
	}
	for i := 0; i < 3; i++ {
		if _, ok := s.Get(fakeKey(i)); !ok {
			t.Fatalf("adopted record %d unreadable", i)
		}
	}
	// New appends go to the head and shadow nothing; compaction folds
	// the segment into the head and deletes it.
	if err := s.Put(fakeKey(3), fakeResult(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ = filepath.Glob(filepath.Join(dir, segmentGlob))
	if len(segs) != 0 {
		t.Fatalf("%d segment files survived compaction, want 0", len(segs))
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 4 || s.Stats().Segments != 0 {
		t.Fatalf("after compaction: len=%d segments=%d, want 4 and 0", s.Len(), s.Stats().Segments)
	}
}

func TestCheckDirFlagsCorruption(t *testing.T) {
	dir := buildDir(t, []int{0, 1, 2}, []int{0, 1, 2})
	c, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Ok() || c.Live != 3 {
		t.Fatalf("clean store: faults=%v live=%d, want none and 3", c.Faults, c.Live)
	}

	// Flip one byte inside a record payload: exactly one fault.
	path := HeadLog(dir)
	recs := recordOffsets(t, path)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	flipAt := recs[1][0] + recHeaderSize + keySize + 4
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, flipAt); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, flipAt); err != nil {
		t.Fatal(err)
	}
	f.Close()
	c, err = CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ok() || c.Dropped != 1 || c.Live != 2 {
		t.Fatalf("corrupt store: ok=%v dropped=%d live=%d, want a fault, 1 dropped, 2 live", c.Ok(), c.Dropped, c.Live)
	}
	if !strings.Contains(strings.Join(c.Faults, "\n"), "CRC mismatch") {
		t.Fatalf("faults %v do not name the CRC mismatch", c.Faults)
	}

	// A stamp mismatch is a fault too.
	dir2 := buildDir(t, []int{0}, []int{0})
	if err := os.WriteFile(filepath.Join(dir2, simVersionFileName), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = CheckDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ok() || !strings.Contains(strings.Join(c.Faults, "\n"), "simversion 999") {
		t.Fatalf("stamp mismatch not flagged: faults=%v", c.Faults)
	}
}

// TestOpenStampsSimVersion checks Open writes (and refreshes) the sidecar.
func TestOpenStampsSimVersion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	v, ok := readSimVersion(dir)
	if !ok || v != SimVersion {
		t.Fatalf("stamp after open = (%d, %v), want (%d, true)", v, ok, SimVersion)
	}
}

// TestMergedStoreIndistinguishable pins the CLAUDE.md merge contract at
// the record level: a store assembled by Merge serves byte-identical
// values to one that wrote the same records sequentially, and its head
// log equals a sequential store's compacted log written in the same key
// order.
func TestMergedStoreIndistinguishable(t *testing.T) {
	a := buildDir(t, []int{0, 1}, []int{0, 1})
	b := buildDir(t, []int{2, 3}, []int{2, 3})
	dst := t.TempDir()
	if _, err := Merge(dst, a, b); err != nil {
		t.Fatal(err)
	}
	seq := buildDir(t, []int{0, 1, 2, 3}, []int{0, 1, 2, 3})

	ms, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	ss, err := Open(seq)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for i := 0; i < 4; i++ {
		mr, ok1 := ms.Get(fakeKey(i))
		sr, ok2 := ss.Get(fakeKey(i))
		if !ok1 || !ok2 {
			t.Fatalf("key %d: merged hit=%v sequential hit=%v", i, ok1, ok2)
		}
		me, se := encodeResult(mr), encodeResult(sr)
		if !bytes.Equal(me, se) {
			t.Fatalf("key %d: merged and sequential values differ", i)
		}
	}
}
