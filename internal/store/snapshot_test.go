package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/arch"
)

func fakeSnapKey(i int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("snapkey-%d", i))))
}

func fakeSnap(i int) []byte {
	b := make([]byte, 100+i)
	for j := range b {
		b[j] = byte(i + j)
	}
	return b
}

func TestSnapshotKeyDistinguishesInputs(t *testing.T) {
	base := SnapshotKey("mcf", 1, arch.Baseline(), 2500, 1200)
	if base == SnapshotKey("gzip", 1, arch.Baseline(), 2500, 1200) {
		t.Error("program not in snapshot key")
	}
	if base == SnapshotKey("mcf", 2, arch.Baseline(), 2500, 1200) {
		t.Error("phase not in snapshot key")
	}
	if base == SnapshotKey("mcf", 1, arch.Baseline().With(arch.Width, 8), 2500, 1200) {
		t.Error("config not in snapshot key")
	}
	if base == SnapshotKey("mcf", 1, arch.Baseline(), 5000, 1200) {
		t.Error("interval not in snapshot key")
	}
	if base == SnapshotKey("mcf", 1, arch.Baseline(), 2500, 600) {
		t.Error("warmup length not in snapshot key")
	}
	// Snapshot and result keys live in distinct hash domains: identical
	// tuples must never collide across record kinds.
	if base == Fingerprint("mcf", 1, arch.Baseline(), 2500, 1200) {
		t.Error("snapshot key collides with result fingerprint")
	}
}

func TestSnapshotPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a result record so we can prove the result log is untouched
	// by sidecar writes.
	if err := s.Put(fakeKey(0), fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	resBefore, err := os.ReadFile(HeadLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.PutSnapshot(fakeSnapKey(i), fakeSnap(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Idempotent re-put: no new bytes.
	sizeBefore := s.Stats().SnapshotBytesWritten
	if err := s.PutSnapshot(fakeSnapKey(2), fakeSnap(2)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SnapshotBytesWritten; got != sizeBefore {
		t.Errorf("re-put of present key wrote %d bytes", got-sizeBefore)
	}
	for i := 0; i < 5; i++ {
		got, ok := s.GetSnapshot(fakeSnapKey(i))
		if !ok || !bytes.Equal(got, fakeSnap(i)) {
			t.Fatalf("GetSnapshot(%d) = %v, %v", i, got, ok)
		}
	}
	if _, ok := s.GetSnapshot(fakeSnapKey(99)); ok {
		t.Error("GetSnapshot hit on absent key")
	}
	st := s.Stats()
	if st.SnapshotRecords != 5 || st.SnapshotHits != 5 || st.SnapshotMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
	resAfter, err := os.ReadFile(HeadLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resBefore, resAfter) {
		t.Error("snapshot puts changed the result log bytes")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().SnapshotRecords; got != 5 {
		t.Fatalf("reopen indexed %d snapshots, want 5", got)
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.GetSnapshot(fakeSnapKey(i))
		if !ok || !bytes.Equal(got, fakeSnap(i)) {
			t.Fatalf("GetSnapshot(%d) after reopen = %v, %v", i, got, ok)
		}
	}
}

func TestSnapshotRejectsOversizeAndEmpty(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutSnapshot(fakeSnapKey(0), nil); err == nil {
		t.Error("empty snapshot accepted")
	}
	if err := s.PutSnapshot(fakeSnapKey(0), make([]byte, maxSnapPayload)); err == nil {
		t.Error("oversize snapshot accepted")
	}
}

// TestSnapshotCorruptionFailsAuditAndGet: a flipped byte in a snapshot
// payload must fail storectl verify (CheckDir fault) and be dropped on
// the next open, exactly like a flipped result byte.
func TestSnapshotCorruptionFailsAuditAndGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSnapshot(fakeSnapKey(0), fakeSnap(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := SnapLog(dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := headerSize + recHeaderSize + keySize + 10 // inside the first payload's value
	raw[flip] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ok() {
		t.Fatal("flipped snapshot byte passed the audit")
	}
	found := false
	for _, f := range c.Faults {
		if strings.Contains(f, snapFileName) {
			found = true
		}
	}
	if !found {
		t.Errorf("no fault names the snapshot log: %v", c.Faults)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetSnapshot(fakeSnapKey(0)); ok {
		t.Error("corrupt snapshot served after reopen")
	}
	if got := s2.Stats().SnapshotDropped; got == 0 {
		t.Error("corrupt snapshot not counted as dropped")
	}
	// The sidecar must heal: a fresh put of the same key must be served.
	if err := s2.PutSnapshot(fakeSnapKey(0), fakeSnap(0)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.GetSnapshot(fakeSnapKey(0)); !ok || !bytes.Equal(got, fakeSnap(0)) {
		t.Error("re-put after corruption not served")
	}
}

func TestSnapshotTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSnapshot(fakeSnapKey(0), fakeSnap(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSnapshot(fakeSnapKey(1), fakeSnap(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := SnapLog(dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetSnapshot(fakeSnapKey(0)); !ok {
		t.Error("intact first snapshot lost to a torn tail")
	}
	if _, ok := s2.GetSnapshot(fakeSnapKey(1)); ok {
		t.Error("torn snapshot served")
	}
	// Appends must resume cleanly over the truncated tail.
	if err := s2.PutSnapshot(fakeSnapKey(2), fakeSnap(2)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.GetSnapshot(fakeSnapKey(2)); !ok || !bytes.Equal(got, fakeSnap(2)) {
		t.Error("append after torn-tail recovery not served")
	}
}

// TestMergeUnionsSnapshots: merging stores unions their sidecars with the
// result-merge discipline — identical duplicates collapse, the output is
// key-sorted and byte-identical for any source order, and divergent
// duplicates abort the merge.
func TestMergeUnionsSnapshots(t *testing.T) {
	mkdir := func(keys []int) string {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := s.PutSnapshot(fakeSnapKey(k), fakeSnap(k)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	a := mkdir([]int{1, 2, 3})
	b := mkdir([]int{3, 4})

	dst1 := t.TempDir()
	ms, err := Merge(dst1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Snapshots != 4 {
		t.Fatalf("merged %d snapshots, want 4", ms.Snapshots)
	}
	dst2 := t.TempDir()
	if _, err := Merge(dst2, b, a); err != nil {
		t.Fatal(err)
	}
	log1, err := os.ReadFile(SnapLog(dst1))
	if err != nil {
		t.Fatal(err)
	}
	log2, err := os.ReadFile(SnapLog(dst2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(log1, log2) {
		t.Error("merged sidecar depends on source order")
	}

	s, err := Open(dst1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range []int{1, 2, 3, 4} {
		if got, ok := s.GetSnapshot(fakeSnapKey(k)); !ok || !bytes.Equal(got, fakeSnap(k)) {
			t.Errorf("snapshot %d missing from merged store", k)
		}
	}
}

func TestMergeRefusesDivergentSnapshots(t *testing.T) {
	mkdir := func(val []byte) string {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutSnapshot(fakeSnapKey(7), val); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	a := mkdir(fakeSnap(7))
	b := mkdir(fakeSnap(8))
	if _, err := Merge(t.TempDir(), a, b); err == nil {
		t.Fatal("divergent snapshots merged")
	} else if !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("divergence error does not name snapshots: %v", err)
	}
}
