package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/power"
)

// fakeResult builds a fully populated measurement-mode result whose every
// field depends on i, so round-trip equality is a meaningful check.
func fakeResult(i int) *cpu.Result {
	r := &cpu.Result{
		Config:        arch.Baseline().With(arch.IQSize, arch.Domain(arch.IQSize)[i%arch.DomainSize(arch.IQSize)]),
		Cycles:        uint64(1000 + i),
		Committed:     uint64(900 + i),
		Fetched:       uint64(1100 + i),
		WrongPath:     uint64(50 + i),
		BranchLookups: uint64(200 + i),
		Mispredicts:   uint64(10 + i),
		BTBMisses:     uint64(5 + i),
		L1IAccesses:   uint64(1100 + i),
		L1IMisses:     uint64(7 + i),
		L1DAccesses:   uint64(400 + i),
		L1DMisses:     uint64(30 + i),
		L2Accesses:    uint64(37 + i),
		L2Misses:      uint64(3 + i),
		IPC:           0.9 + float64(i)/1000,
		SecondsSim:    1e-6 * float64(i+1),
		IPS:           1e9 / float64(i+1),
		Watts:         10.5 + float64(i),
		EnergyJ:       1e-5 * float64(i+1),
		Efficiency:    1e27 / float64(i+1),
	}
	r.Energy = power.Summary{
		Cycles:    r.Cycles,
		DynamicJ:  1e-6 * float64(i+1),
		LeakageJ:  2e-6 * float64(i+1),
		TotalJ:    3e-6 * float64(i+1),
		AvgPowerW: r.Watts,
	}
	for st := power.Structure(0); st < power.NumStructures; st++ {
		r.Energy.PerStructureJ[st] = float64(i)*1e-9 + float64(st)*1e-12
	}
	return r
}

func fakeKey(i int) Key {
	return Fingerprint(fmt.Sprintf("prog%d", i%3), i, arch.Baseline(), 2500, 1200)
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Put(fakeKey(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, ok := s.Get(fakeKey(i))
		if !ok {
			t.Fatalf("Get(%d) missed before reopen", i)
		}
		if !reflect.DeepEqual(got, fakeResult(i)) {
			t.Fatalf("Get(%d) = %+v, want %+v", i, got, fakeResult(i))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reopened store has %d records, want %d", s2.Len(), n)
	}
	if st := s2.Stats(); st.Dropped != 0 || st.Compactions != 0 {
		t.Errorf("clean reopen dropped %d records, compacted %d times", st.Dropped, st.Compactions)
	}
	for i := 0; i < n; i++ {
		got, ok := s2.Get(fakeKey(i))
		if !ok {
			t.Fatalf("Get(%d) missed after reopen", i)
		}
		if !reflect.DeepEqual(got, fakeResult(i)) {
			t.Fatalf("Get(%d) after reopen = %+v, want %+v", i, got, fakeResult(i))
		}
	}
	if _, ok := s2.Get(fakeKey(n + 1)); ok {
		t.Error("Get of an unwritten key hit")
	}
}

func TestFingerprintDistinguishesInputs(t *testing.T) {
	base := fingerprint(1, "mcf", 0, arch.Baseline(), 2500, 1200)
	variants := map[string]Key{
		"version":  fingerprint(2, "mcf", 0, arch.Baseline(), 2500, 1200),
		"program":  fingerprint(1, "gcc", 0, arch.Baseline(), 2500, 1200),
		"phase":    fingerprint(1, "mcf", 1, arch.Baseline(), 2500, 1200),
		"config":   fingerprint(1, "mcf", 0, arch.Baseline().With(arch.Width, 8), 2500, 1200),
		"interval": fingerprint(1, "mcf", 0, arch.Baseline(), 5000, 1200),
		"warmup":   fingerprint(1, "mcf", 0, arch.Baseline(), 2500, 0),
	}
	for name, k := range variants {
		if k == base {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	if again := fingerprint(1, "mcf", 0, arch.Baseline(), 2500, 1200); again != base {
		t.Error("identical inputs fingerprinted differently")
	}
}

// recordOffsets parses the log's framing and returns each record's
// (header offset, payload length) in file order.
func recordOffsets(t *testing.T, path string) [][2]int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs [][2]int64
	off := int64(headerSize)
	for off+recHeaderSize <= int64(len(data)) {
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		recs = append(recs, [2]int64{off, plen})
		off += recHeaderSize + plen
	}
	return recs
}

// TestCorruptionRecovery is the crash-safety contract: a truncated final
// record and a bit-flipped payload byte must both be detected on open,
// dropped (not fatal), and must not stop subsequent writes from
// round-tripping.
func TestCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fakeKey(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, dataFileName)
	recs := recordOffsets(t, path)
	if len(recs) != 3 {
		t.Fatalf("log has %d records, want 3", len(recs))
	}

	// Flip one byte in the middle of record 1's payload.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	flipAt := recs[1][0] + recHeaderSize + keySize + 4
	var b [1]byte
	if _, err := f.ReadAt(b[:], flipAt); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], flipAt); err != nil {
		t.Fatal(err)
	}
	// Truncate the final record mid-payload (a torn append).
	if err := f.Truncate(recs[2][0] + recHeaderSize + 10); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Dropped != 2 {
		t.Errorf("dropped %d records, want 2 (one flipped, one torn)", st.Dropped)
	}
	if st.Compactions != 1 {
		t.Errorf("dirty open ran %d compactions, want 1", st.Compactions)
	}
	if got, ok := s2.Get(fakeKey(0)); !ok || !reflect.DeepEqual(got, fakeResult(0)) {
		t.Errorf("surviving record 0 unreadable (ok=%v)", ok)
	}
	for _, i := range []int{1, 2} {
		if _, ok := s2.Get(fakeKey(i)); ok {
			t.Errorf("corrupt record %d still served", i)
		}
	}

	// Subsequent writes must round-trip, survive a reopen, and the
	// compacted log must scan clean.
	for _, i := range []int{1, 2, 3} {
		if err := s2.Put(fakeKey(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.Dropped != 0 {
		t.Errorf("post-recovery log still dirty: %d dropped", st.Dropped)
	}
	for i := 0; i < 4; i++ {
		got, ok := s3.Get(fakeKey(i))
		if !ok || !reflect.DeepEqual(got, fakeResult(i)) {
			t.Errorf("record %d did not round-trip after recovery (ok=%v)", i, ok)
		}
	}
}

func TestCompactRemovesSuperseded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := fakeKey(0)
	for i := 0; i < 5; i++ {
		if err := s.Put(key, fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(fakeKey(1), fakeResult(10)); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, dataFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, dataFileName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}
	if got, ok := s.Get(key); !ok || !reflect.DeepEqual(got, fakeResult(4)) {
		t.Errorf("latest write lost by compaction (ok=%v)", ok)
	}
	if got, ok := s.Get(fakeKey(1)); !ok || !reflect.DeepEqual(got, fakeResult(10)) {
		t.Errorf("unrelated record lost by compaction (ok=%v)", ok)
	}
	// And the rewritten log must reopen clean with both records.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Errorf("compacted log reopened with %d records, want 2", s2.Len())
	}
}

func TestLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Errorf("second Open error = %v, want ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, dataFileName), []byte("not a store, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open accepted a non-store file")
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	enc := encodeResult(fakeResult(1))
	if _, err := decodeResult(enc[:len(enc)-1]); err == nil {
		t.Error("decode accepted a short value")
	}
	if _, err := decodeResult(append(enc, 0)); err == nil {
		t.Error("decode accepted a long value")
	}
	if _, err := decodeResult(enc); err != nil {
		t.Errorf("decode rejected a valid value: %v", err)
	}
}

// TestConcurrentAccess exercises the mutex paths under -race.
func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fakeKey(w*50 + i)
				if err := s.Put(k, fakeResult(w*50+i)); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(k); !ok {
					t.Errorf("worker %d: own write %d missed", w, i)
					return
				}
				s.Get(fakeKey((w*50 + i + 1) % 200))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 200 {
		t.Errorf("store has %d records, want 200", s.Len())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
}
