// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation benches
// for the design choices the paper calls out. Each benchmark prints the
// regenerated rows/series once per process and times the (cheap) report
// aggregation; the expensive pipeline — dataset construction and
// leave-one-out model evaluation — is built once and shared.
//
// Scale is selected with REPRO_BENCH_SCALE: "test" (seconds), "mid"
// (default, minutes) or "full" (the whole 26x10-phase suite, tens of
// minutes on one core). With REPRO_CACHE_DIR set, the pipeline builds
// against the persistent result store there (internal/store), making the
// ~40-minute table/figure regeneration resumable: an interrupted run
// keeps every simulation it paid for, and a repeat run replays from disk.
// REPRO_SURROGATE=1 prunes the design-space search with the learned
// surrogate (README "Surrogate search"). REPRO_MANIFEST=<path> writes a
// run manifest after the pipeline build (auto-named manifest-bench.json
// under REPRO_CACHE_DIR when that is set); see README "Run manifests".
package repro

import (
	"context"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/altmodel"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/experiment"
	"repro/internal/multicore"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/surrogate"
	"repro/internal/trace"
)

// benchScaleName is the resolved REPRO_BENCH_SCALE name, for the manifest.
func benchScaleName() string {
	switch s := os.Getenv("REPRO_BENCH_SCALE"); s {
	case "test", "full":
		return s
	default:
		return "mid"
	}
}

// benchScale resolves the harness scale from the environment.
func benchScale() experiment.Scale {
	switch os.Getenv("REPRO_BENCH_SCALE") {
	case "test":
		return experiment.TestScale()
	case "full":
		sc := experiment.DefaultScale()
		return sc
	default: // mid
		sc := experiment.DefaultScale()
		sc.PhasesPerProgram = 4
		sc.IntervalInsts = 6000
		sc.WarmupInsts = 6000
		sc.UniformSamples = 28
		sc.LocalSamples = 8
		sc.SweepParams = []arch.Param{arch.Width, arch.IQSize, arch.ICacheKB, arch.L2CacheKB}
		return sc
	}
}

// Shared pipeline state, built once per process.
var (
	pipeOnce sync.Once
	pipeErr  error
	pipeDS   *experiment.Dataset
	pipeAdv  *experiment.Evaluation
	pipeBas  *experiment.Evaluation
	pipeRep  experiment.SuiteReport
)

func pipeline(b *testing.B) (*experiment.Dataset, *experiment.Evaluation, *experiment.Evaluation, experiment.SuiteReport) {
	b.Helper()
	pipeOnce.Do(func() {
		sc := benchScale()
		fmt.Printf("# building dataset: %d programs x %d phases, %d-inst intervals\n",
			len(sc.Programs), sc.PhasesPerProgram, sc.IntervalInsts)
		// REPRO_MANIFEST records the build into a run manifest; the tracer
		// must be live before the store opens so the span tree is complete.
		manifestPath := os.Getenv("REPRO_MANIFEST")
		if manifestPath == "" {
			if dir := os.Getenv("REPRO_CACHE_DIR"); dir != "" {
				manifestPath = filepath.Join(dir, "manifest-bench.json")
			}
		}
		tr := obs.DefaultTracer()
		if manifestPath != "" {
			tr.Enable()
		}
		buildStart := time.Now()
		// Live progress/ETA with the memo hit rate — the full-scale build
		// takes tens of minutes and used to be silent.
		prog := &obs.Progress{Logger: obs.NewLogger(os.Stderr, false, slog.LevelInfo), Every: 10 * time.Second}
		experiment.SetProgress(func(stage string, done, total int) {
			hits, sims := experiment.MemoStats()
			rate := 0.0
			if hits+sims > 0 {
				rate = float64(hits) / float64(hits+sims)
			}
			prog.Observe(stage, done, total, "sims", sims, "memoHitRate", fmt.Sprintf("%.2f", rate))
		})
		defer experiment.SetProgress(nil)
		// REPRO_CACHE_DIR persists every measurement simulation, making
		// interrupted regenerations resumable. The store stays open for
		// the whole process: post-build experiments (limit studies, model
		// scoring) read and extend it too.
		var pipeStore *store.Store
		if dir := os.Getenv("REPRO_CACHE_DIR"); dir != "" {
			pipeStore, pipeErr = store.Open(dir)
			if pipeErr != nil {
				return
			}
			fmt.Printf("# result store: %s (%d records)\n", dir, pipeStore.Len())
		}
		// REPRO_SURROGATE prunes the design-space search with the learned
		// proxy (README "Surrogate search"); results stay real simulator
		// output, only the candidate selection changes.
		opts := []experiment.Option{experiment.WithStore(pipeStore)}
		if v := os.Getenv("REPRO_SURROGATE"); v != "" && v != "0" && v != "off" {
			fmt.Printf("# surrogate search: pruning candidates with the learned proxy\n")
			opts = append(opts, experiment.WithSurrogate(surrogate.DefaultConfig()))
		}
		pipeDS, pipeErr = experiment.Build(context.Background(), sc, opts...)
		if pipeErr != nil {
			return
		}
		if sum := pipeDS.SurrogateSummary(); sum != nil {
			fmt.Printf("# surrogate: exact=%d pruned=%d audited=%d rankCorr=%.3f regret=%.3f\n",
				sum.Exact, sum.Pruned, sum.Audited, sum.RankCorr, sum.Regret)
		}
		if pipeStore != nil {
			st := pipeStore.Stats()
			fmt.Printf("# result store after build: hits=%d misses=%d records=%d\n",
				st.Hits, st.Misses, st.Records)
		}
		if manifestPath != "" {
			elapsed := time.Since(buildStart)
			m := obs.NewManifest("bench")
			m.SetDet("benchScale", benchScaleName())
			experiment.FillBuildManifest(m, pipeDS)
			tr.FillManifest(m)
			m.SetTiming("totalSeconds", elapsed.Seconds())
			if insts := cpu.SimulatedInstructions(); insts > 0 {
				m.SetTiming("nsPerInst", elapsed.Seconds()*1e9/float64(insts))
			}
			if pipeStore != nil {
				pipeStore.Stats().FillManifest(m, elapsed.Seconds())
			}
			if err := m.WriteFile(manifestPath); err != nil {
				fmt.Printf("# manifest error: %v\n", err)
			} else {
				fmt.Printf("# manifest written: %s\n", manifestPath)
			}
		}
		fmt.Printf("# dataset: %d simulations; LOOCV (advanced)...\n", pipeDS.SimCount())
		pipeAdv, pipeErr = pipeDS.EvaluateModel(counters.Advanced)
		if pipeErr != nil {
			return
		}
		fmt.Printf("# LOOCV (basic)...\n")
		pipeBas, pipeErr = pipeDS.EvaluateModel(counters.Basic)
		if pipeErr != nil {
			return
		}
		pipeRep = pipeDS.Suite(pipeAdv, pipeBas)
	})
	if pipeErr != nil {
		b.Fatal(pipeErr)
	}
	return pipeDS, pipeAdv, pipeBas, pipeRep
}

var printOnce sync.Map

// printReport prints a named report exactly once per process.
func printReport(name, body string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, body)
	}
}

// BenchmarkTableI_DesignSpace regenerates Table I: the fourteen
// parameters, their domains and the total space size.
func BenchmarkTableI_DesignSpace(b *testing.B) {
	body := ""
	for p := arch.Param(0); p < arch.NumParams; p++ {
		body += fmt.Sprintf("%-10s %v (%d values)\n", p, arch.Domain(p), arch.DomainSize(p))
	}
	body += fmt.Sprintf("total design points: %d (paper: 627bn)", arch.SpaceSize())
	printReport("Table I: design space", body)
	var n uint64
	for i := 0; i < b.N; i++ {
		n = arch.SpaceSize()
	}
	b.ReportMetric(float64(n)/1e9, "Gpoints")
}

// BenchmarkTableIII_BestStatic regenerates Table III: the best overall
// static configuration found in the sampled space.
func BenchmarkTableIII_BestStatic(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	printReport("Table III: best overall static", ds.TableIII().Render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.TableIII()
	}
}

// BenchmarkFigure1_OptimalSizeOverTime regenerates Figure 1: the
// efficiency-optimal IQ and RF sizes over time for widths 8 and 4.
func BenchmarkFigure1_OptimalSizeOverTime(b *testing.B) {
	sc := benchScale()
	var body string
	for _, prog := range []string{"gap", "applu", "apsi"} {
		rep, err := experiment.Figure1(prog, 1, sc.IntervalInsts, sc.WarmupInsts)
		if err != nil {
			b.Fatal(err)
		}
		body += rep.Render() + "\n"
	}
	printReport("Figure 1: optimal sizes over time", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body
	}
}

// BenchmarkFigure3_LSQCounters regenerates Figure 3: LSQ efficiency sweeps
// and the profiling counters for the paper's four example programs.
func BenchmarkFigure3_LSQCounters(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	ids := []experiment.PhaseID{{Program: "mgrid"}, {Program: "swim"}, {Program: "parser"}, {Program: "vortex"}}
	rep, err := ds.Figure3(ids)
	if err != nil {
		b.Fatal(err)
	}
	printReport("Figure 3: LSQ sweeps and counters", rep.Render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rep
	}
}

// BenchmarkFigure4_EfficiencyVsStatic regenerates Figure 4: the model's
// efficiency against the best static for both counter sets.
func BenchmarkFigure4_EfficiencyVsStatic(b *testing.B) {
	ds, adv, bas, rep := pipeline(b)
	printReport("Figures 4/5/6: suite comparison", rep.Render())
	b.ReportMetric(rep.GeoModelAdvanced, "advanced_x")
	b.ReportMetric(rep.GeoModelBasic, "basic_x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeRep = ds.Suite(adv, bas)
	}
}

// BenchmarkFigure5_PerfEnergyBreakdown regenerates Figure 5: the
// performance and energy breakdown of the advanced model vs the static.
func BenchmarkFigure5_PerfEnergyBreakdown(b *testing.B) {
	_, _, _, rep := pipeline(b)
	body := fmt.Sprintf("performance ratio (geomean): %.3f (paper: +15%%)\nenergy ratio (geomean):      %.3f (paper: -21%%)",
		rep.GeoPerfRatio, rep.GeoEnergyRatio)
	printReport("Figure 5: perf/energy breakdown", body)
	b.ReportMetric(rep.GeoPerfRatio, "perf_ratio")
	b.ReportMetric(rep.GeoEnergyRatio, "energy_ratio")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rep.GeoPerfRatio
	}
}

// BenchmarkFigure6_LimitStudy regenerates Figure 6: model vs per-program
// static vs ideal per-phase dynamic.
func BenchmarkFigure6_LimitStudy(b *testing.B) {
	_, _, _, rep := pipeline(b)
	body := fmt.Sprintf("model (advanced):    %.2fx (paper: 2.0x)\nper-program static:  %.2fx (paper: 1.5x)\nideal dynamic:       %.2fx (paper: 2.7x)\nshare of oracle:     %.0f%% (paper: 74%%)",
		rep.GeoModelAdvanced, rep.GeoPerProgram, rep.GeoOracle, 100*rep.ShareOfOracle)
	printReport("Figure 6: limit study", body)
	b.ReportMetric(rep.GeoOracle, "oracle_x")
	b.ReportMetric(100*rep.ShareOfOracle, "share_pct")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rep.GeoOracle
	}
}

// BenchmarkFigure7_PhaseHistograms regenerates Figure 7: the per-phase
// efficiency distributions against baseline and against the best.
func BenchmarkFigure7_PhaseHistograms(b *testing.B) {
	ds, adv, _, _ := pipeline(b)
	rep, err := ds.Figure7(adv)
	if err != nil {
		b.Fatal(err)
	}
	printReport("Figure 7: per-phase distributions", rep.Render())
	b.ReportMetric(100*rep.BetterThanBaselineFrac, "beat_baseline_pct")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ = ds.Figure7(adv)
	}
}

// BenchmarkFigure8_ParameterViolins regenerates Figure 8: the pinned-
// parameter efficiency distributions for width, IQ size and I-cache size.
func BenchmarkFigure8_ParameterViolins(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	var body string
	for _, p := range []arch.Param{arch.Width, arch.IQSize, arch.ICacheKB} {
		body += ds.Figure8(p).Render() + "\n"
	}
	printReport("Figure 8: parameter violins", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Figure8(arch.Width)
	}
}

// BenchmarkTableIV_SetSampling regenerates Table IV: how few cache sets
// dynamic set sampling can monitor while preserving predictions.
func BenchmarkTableIV_SetSampling(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	rep, err := ds.TableIV([]int{4, 16, 64, 256}, 12)
	if err != nil {
		b.Fatal(err)
	}
	printReport("Table IV: set sampling", rep.Render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rep
	}
}

// BenchmarkTableV_ReconfigOverheads regenerates Table V: per-structure
// reconfiguration overheads in cycles.
func BenchmarkTableV_ReconfigOverheads(b *testing.B) {
	body := ""
	for _, row := range core.TableV() {
		body += fmt.Sprintf("%-8s %8d cycles\n", row.Structure, row.Cycles)
	}
	printReport("Table V: reconfiguration overheads", body)
	var rows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = len(core.TableV())
	}
	b.ReportMetric(float64(rows), "structures")
}

// BenchmarkFigure9_ProfilingOverheads regenerates Figure 9: the energy
// overheads of gathering the reuse-distance histograms.
func BenchmarkFigure9_ProfilingOverheads(b *testing.B) {
	pm := power.New(arch.Profiling())
	rows, err := core.Figure9(pm)
	if err != nil {
		b.Fatal(err)
	}
	body := ""
	for _, r := range rows {
		body += fmt.Sprintf("%-7s %-12s sets=%4d/%-5d dynamic=%.2f%% leakage=%.2f%%\n",
			r.Cache, r.Feature, r.SampledSets, r.TotalSets, r.Overhead.DynamicPct, r.Overhead.LeakagePct)
	}
	body += "paper maxima: 1.55% dynamic, 1.4% leakage"
	printReport("Figure 9: profiling overheads", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ = core.Figure9(pm)
	}
	_ = rows
}

// BenchmarkModelStorage quantifies the quantised predictor's hardware cost
// (paper SVIII: ~2000 weights, 2KB at 8 bits).
func BenchmarkModelStorage(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	var body string
	for _, set := range []counters.Set{counters.Basic, counters.Advanced} {
		rep, err := ds.StorageAnalysis(set)
		if err != nil {
			b.Fatal(err)
		}
		body += rep.Render()
	}
	printReport("Model storage (SVIII)", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body
	}
}

// BenchmarkAblation_CounterFamilies removes one Table II counter family at
// a time from the advanced set and reports the efficiency each family is
// worth.
func BenchmarkAblation_CounterFamilies(b *testing.B) {
	ds, _, _, rep := pipeline(b)
	body := fmt.Sprintf("full advanced set:  %.3fx vs static\n", rep.GeoModelAdvanced)
	for _, fam := range []string{"caches/", "queues/", "rf/", "width/", "bpred/"} {
		ev, err := ds.EvaluateModelAblated(fam)
		if err != nil {
			b.Fatal(err)
		}
		r := ds.RatioMean(ds.Phases, ev.Choose())
		body += fmt.Sprintf("without %-9s %.3fx\n", fam, r)
	}
	printReport("Ablation: counter families", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body
	}
}

// BenchmarkAblation_Quantized8Bit compares the 8-bit hardware predictor's
// end-to-end efficiency against the float model.
func BenchmarkAblation_Quantized8Bit(b *testing.B) {
	ds, adv, _, rep := pipeline(b)
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		b.Fatal(err)
	}
	q := pred.Quantize()
	choose := func(id experiment.PhaseID) arch.Config {
		return q.Predict(ds.FeaturesAdv[id])
	}
	r := ds.RatioMean(ds.Phases, choose)
	body := fmt.Sprintf("LOOCV float model:        %.3fx vs static\n8-bit train-on-all model: %.3fx vs static (not held out)\nstorage: %d bytes",
		rep.GeoModelAdvanced, r, q.StorageBytes())
	printReport("Ablation: 8-bit quantisation", body)
	_ = adv
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Predict(ds.FeaturesAdv[ds.Phases[0]])
	}
}

// BenchmarkAblation_CadencePolicy compares the controller adapting
// everything per phase change against a policy that reconfigures caches
// only every other event (the paper's future-work direction).
func BenchmarkAblation_CadencePolicy(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		b.Fatal(err)
	}
	run := func(cad core.CadencePolicy) *core.Report {
		opts := core.DefaultOptions()
		opts.Interval = 6000
		opts.SampledSets = 32
		opts.Start = ds.BestStatic
		opts.Cadence = cad
		ctl, err := core.NewController(pred, opts)
		if err != nil {
			b.Fatal(err)
		}
		g, err := trace.NewGenerator("galgel", 0)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := ctl.Run(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	full := run(nil)
	lazy := run(core.EveryNth(2))
	body := fmt.Sprintf("adapt everything:        eff=%.3e, %d reconfigs\ncaches every 2nd event:  eff=%.3e, %d reconfigs",
		full.Efficiency, full.Reconfigs, lazy.Efficiency, lazy.Reconfigs)
	printReport("Ablation: cadence policy", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body
	}
}

// BenchmarkSimulator_Throughput measures raw simulation speed, the budget
// everything else is scaled around.
func BenchmarkSimulator_Throughput(b *testing.B) {
	g, err := trace.NewGenerator("gzip", 0)
	if err != nil {
		b.Fatal(err)
	}
	insts := g.Interval(20000)
	sim, err := cpu.New(arch.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	src := cpu.NewSliceSource(insts)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(src, len(insts), cpu.Options{})
		if err != nil {
			b.Fatal(err)
		}
		total += int(res.Committed)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkTraining_Softmax measures per-parameter model training cost on
// realistic feature dimensions.
func BenchmarkTraining_Softmax(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	examples := ds.Phases
	_ = examples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.TrainAll(counters.Basic); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ModelComparison evaluates the alternative predictors
// the paper's footnote 1 dismisses (nearest neighbour, regression,
// table-driven) under the same LOOCV protocol as the soft-max model.
func BenchmarkAblation_ModelComparison(b *testing.B) {
	ds, _, _, rep := pipeline(b)
	body := fmt.Sprintf("soft-max (paper's model):  %.3fx vs static\n", rep.GeoModelAdvanced)
	builders := []struct {
		name  string
		build func([]altmodel.TrainingPhase) (altmodel.Predictor, error)
	}{
		{"1-NN", func(tr []altmodel.TrainingPhase) (altmodel.Predictor, error) { return altmodel.NewKNN(1, tr) }},
		{"3-NN", func(tr []altmodel.TrainingPhase) (altmodel.Predictor, error) { return altmodel.NewKNN(3, tr) }},
		{"ridge regression", func(tr []altmodel.TrainingPhase) (altmodel.Predictor, error) { return altmodel.NewRidge(0.5, tr) }},
		{"table-driven", func(tr []altmodel.TrainingPhase) (altmodel.Predictor, error) { return altmodel.NewTable(6, tr) }},
	}
	for _, bl := range builders {
		ev, err := ds.EvaluateAltModel(bl.build)
		if err != nil {
			b.Fatal(err)
		}
		r := ds.RatioMean(ds.Phases, ev.Choose())
		body += fmt.Sprintf("%-26s %.3fx vs static\n", bl.name+":", r)
	}
	printReport("Ablation: model comparison", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body
	}
}

// BenchmarkAblation_RuntimeSearch compares the predictive controller
// against a runtime hill-climbing explorer (the prior-work approach the
// paper argues against in §IX: exploration inevitably visits bad
// configurations).
func BenchmarkAblation_RuntimeSearch(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		b.Fatal(err)
	}
	const program = "apsi"
	const intervals = 12
	const ivInsts = 6000

	ctlOpts := core.DefaultOptions()
	ctlOpts.Interval = ivInsts
	ctlOpts.SampledSets = 32
	ctlOpts.Start = ds.BestStatic
	ctlOpts.OverheadScale = 0.02
	ctl, err := core.NewController(pred, ctlOpts)
	if err != nil {
		b.Fatal(err)
	}
	g1, err := trace.NewGenerator(program, 0)
	if err != nil {
		b.Fatal(err)
	}
	predictive, err := ctl.Run(g1, intervals)
	if err != nil {
		b.Fatal(err)
	}

	hc, err := core.NewHillClimber(core.HillClimbOptions{
		Interval: ivInsts, Start: ds.BestStatic, Seed: 11, OverheadScale: 0.02,
	})
	if err != nil {
		b.Fatal(err)
	}
	g2, _ := trace.NewGenerator(program, 0)
	searched, err := hc.Run(g2, intervals)
	if err != nil {
		b.Fatal(err)
	}

	body := fmt.Sprintf("predictive controller: eff=%.3e (%d reconfigs, %d profiles)\nhill-climbing search:  eff=%.3e (%d reconfigs)\npredictive/search:     %.2fx",
		predictive.Efficiency, predictive.Reconfigs, predictive.Profiles,
		searched.Efficiency, searched.Reconfigs,
		predictive.Efficiency/searched.Efficiency)
	printReport("Ablation: predictive vs runtime search", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body
	}
}

// BenchmarkExtension_Multicore exercises the paper's future-work direction:
// per-core adaptivity on a chip with shared L2 and memory bandwidth.
func BenchmarkExtension_Multicore(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		b.Fatal(err)
	}
	opts := multicore.DefaultOptions()
	opts.Interval = 5000
	opts.Start = ds.BestStatic.With(arch.L2CacheKB, 1024)
	sys, err := multicore.New([]multicore.CoreSpec{
		{Program: "equake"}, {Program: "lucas"}, {Program: "twolf"}, {Program: "mesa"},
	}, pred, opts)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sys.Run(6)
	if err != nil {
		b.Fatal(err)
	}
	body := ""
	for _, cr := range rep.Cores {
		body += fmt.Sprintf("%-8s final W=%d D$=%dK avgL2=%4.0fK eff=%.3e\n",
			cr.Spec.Program, cr.FinalConfig[arch.Width], cr.FinalConfig[arch.DCacheKB],
			cr.AvgL2QuotaKB, cr.Efficiency)
	}
	body += fmt.Sprintf("heterogeneity: %.2f, contention stretch: %.2fx", rep.Heterogeneity, rep.ContentionStretch)
	printReport("Extension: multicore adaptivity", body)
	b.ReportMetric(rep.Heterogeneity, "heterogeneity")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body
	}
}

// BenchmarkServe_PredictThroughput boots the model-serving subsystem
// (internal/serve, the §VIII weights-as-a-service deployment) on the
// pipeline's trained predictor and replays a seeded load-generator
// schedule over every phase's profiled features. The request counts are
// deterministic for the seed; throughput and latency are the measurement.
func BenchmarkServe_PredictThroughput(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := serve.NewEngine(pred, false)
	if err != nil {
		b.Fatal(err)
	}
	srv := serve.New(eng, serve.WithCacheSize(1024), serve.WithMaxInflight(64))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The pool is every phase's profiled feature vector, in dataset order.
	pool := make([][]float64, 0, len(ds.Phases))
	for _, id := range ds.Phases {
		pool = append(pool, ds.FeaturesAdv[id])
	}
	lg := serve.LoadGen{Requests: 1000, Concurrency: 8, Seed: 2010, Pool: pool}

	var rep serve.LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = lg.Run(ts.URL, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rep.OK != rep.Requests || rep.ServerErr > 0 || rep.Transport > 0 {
		b.Errorf("loadgen saw failures: %+v", rep)
	}
	body := fmt.Sprintf("pool=%d phase feature vectors, seed=2010\n", len(pool))
	body += fmt.Sprintf("requests=%d ok=%d rejected=%d clientErr=%d serverErr=%d (deterministic)\n",
		rep.Requests, rep.OK, rep.Rejected, rep.ClientErr, rep.ServerErr)
	body += fmt.Sprintf("cache hit rate > 0: %v\n", srv.HitRate() > 0)
	body += fmt.Sprintf("throughput %.0f req/s, p50 %v, p95 %v", rep.RequestsPerSec, rep.P50, rep.P95)
	printReport("Serving: predict throughput", body)
	b.ReportMetric(rep.RequestsPerSec, "req/s")
}

// BenchmarkServe_PredictBatchThroughput measures the batched inference
// path: the same seeded schedule as BenchmarkServe_PredictThroughput, but
// grouped 64 vectors to a request, each answered by one batched kernel
// call streaming per-item results. Counts stay per-vector, so the pred/s
// figures compare directly; the benchmark also replays the single-vector
// schedule on an identically configured server and reports the speedup.
func BenchmarkServe_PredictBatchThroughput(b *testing.B) {
	ds, _, _, _ := pipeline(b)
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		b.Fatal(err)
	}
	newServer := func() (*serve.Server, *httptest.Server) {
		eng, err := serve.NewEngine(pred, false)
		if err != nil {
			b.Fatal(err)
		}
		srv := serve.New(eng, serve.WithCacheSize(1024), serve.WithMaxInflight(64))
		ts := httptest.NewServer(srv.Handler())
		return srv, ts
	}
	pool := make([][]float64, 0, len(ds.Phases))
	for _, id := range ds.Phases {
		pool = append(pool, ds.FeaturesAdv[id])
	}

	const batch = 64
	run := func(size int) serve.LoadReport {
		srv, ts := newServer()
		defer ts.Close()
		defer srv.Close()
		lg := serve.LoadGen{Requests: 1000, Concurrency: 8, Seed: 2010, Pool: pool, Batch: size}
		rep, err := lg.Run(ts.URL, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.OK != rep.Requests || rep.ServerErr > 0 || rep.Transport > 0 {
			b.Errorf("loadgen (batch=%d) saw failures: %+v", size, rep)
		}
		return rep
	}

	single := run(1)
	var rep serve.LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = run(batch)
	}
	b.StopTimer()

	speedup := rep.RequestsPerSec / single.RequestsPerSec
	body := fmt.Sprintf("pool=%d phase feature vectors, seed=2010, batch=%d\n", len(pool), batch)
	body += fmt.Sprintf("requests=%d ok=%d batches=%d (deterministic)\n", rep.Requests, rep.OK, rep.Batches)
	body += fmt.Sprintf("batched   %8.0f pred/s, p50 %v, p95 %v\n", rep.RequestsPerSec, rep.P50, rep.P95)
	body += fmt.Sprintf("unbatched %8.0f pred/s, p50 %v, p95 %v\n", single.RequestsPerSec, single.P50, single.P95)
	body += fmt.Sprintf("speedup %.1fx per-request predictions/sec", speedup)
	printReport("Serving: batched predict throughput", body)
	b.ReportMetric(rep.RequestsPerSec, "pred/s")
	b.ReportMetric(speedup, "speedup")
}
