// Command spacegen runs the paper's three-stage design-space search
// (Section V-C: uniform sample, local neighbourhood, one-at-a-time sweep)
// for one program phase and prints the best configurations found — the
// training-data generation step of the pipeline, exposed as a tool.
//
// Usage:
//
//	spacegen [-program gzip] [-phase 0] [-interval 8000] [-uniform 200]
//	         [-local 50] [-top 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spacegen: ")
	var (
		program  = flag.String("program", "gzip", "benchmark name")
		phase    = flag.Int("phase", 0, "phase index")
		interval = flag.Int("interval", 8000, "instructions per simulation")
		uniform  = flag.Int("uniform", 200, "uniform random samples (stage 1)")
		local    = flag.Int("local", 50, "local neighbour samples (stage 2)")
		top      = flag.Int("top", 10, "configurations to print")
		seed     = flag.Uint64("seed", 1, "sampling seed")
	)
	flag.Parse()

	g, err := trace.NewGenerator(*program, *phase)
	if err != nil {
		log.Fatal(err)
	}
	insts := g.Interval(*interval)
	warm := *interval / 2

	type scored struct {
		cfg arch.Config
		res *cpu.Result
	}
	var all []scored
	evaluated := map[arch.Config]bool{}
	eval := func(cfg arch.Config) *cpu.Result {
		if evaluated[cfg] {
			return nil
		}
		evaluated[cfg] = true
		sim, err := cpu.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(cpu.NewSliceSource(insts), len(insts), cpu.Options{WarmupInsts: warm})
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, scored{cfg, res})
		return res
	}

	start := time.Now()
	rng := rand.New(rand.NewPCG(*seed, 42))
	log.Printf("stage 1: %d uniform samples", *uniform)
	eval(arch.Baseline())
	for i := 0; i < *uniform; i++ {
		eval(arch.Random(rng))
	}
	best := func() scored {
		b := all[0]
		for _, s := range all {
			if s.res.Efficiency > b.res.Efficiency {
				b = s
			}
		}
		return b
	}
	log.Printf("stage 2: %d local neighbours of the incumbent", *local)
	for i := 0; i < *local; i++ {
		eval(arch.Neighbor(best().cfg, rng))
	}
	log.Printf("stage 3: one-at-a-time sweep of the incumbent")
	for _, cfg := range arch.SweepAll(best().cfg) {
		eval(cfg)
	}
	log.Printf("%d simulations in %v", len(all), time.Since(start).Round(time.Millisecond))

	sort.Slice(all, func(i, j int) bool { return all[i].res.Efficiency > all[j].res.Efficiency })
	fmt.Printf("phase %s/%d: top %d configurations by ips^3/Watt\n", *program, *phase, *top)
	for i := 0; i < *top && i < len(all); i++ {
		s := all[i]
		fmt.Printf("%2d. eff=%.3e ipc=%.2f W=%.1f  %v\n",
			i+1, s.res.Efficiency, s.res.IPC, s.res.Watts, s.cfg)
	}
	fmt.Printf("\nbaseline (paper Table III): ")
	for _, s := range all {
		if s.cfg == arch.Baseline() {
			fmt.Printf("eff=%.3e ipc=%.2f W=%.1f\n", s.res.Efficiency, s.res.IPC, s.res.Watts)
			break
		}
	}
}
