// Command report regenerates every table and figure of the paper's
// evaluation at a configurable scale and prints them as text, recording
// the shape comparison DESIGN.md and EXPERIMENTS.md describe.
//
// Usage:
//
//	report [-scale test|default] [-programs mcf,swim,...] [-phases N]
//	       [-interval N] [-uniform N] [-skip-slow]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/experiment"
	"repro/internal/power"
	"repro/internal/render"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	var (
		scaleName = flag.String("scale", "default", "test or default scale preset")
		programs  = flag.String("programs", "", "comma-separated benchmark subset (default: preset)")
		phases    = flag.Int("phases", 0, "phases per program (default: preset)")
		interval  = flag.Int("interval", 0, "instructions per phase interval (default: preset)")
		uniform   = flag.Int("uniform", 0, "shared uniform samples (default: preset)")
		skipSlow  = flag.Bool("skip-slow", false, "skip Figure 1 and Table IV (the slowest experiments)")
	)
	flag.Parse()

	sc := experiment.DefaultScale()
	if *scaleName == "test" {
		sc = experiment.TestScale()
	}
	if *programs != "" {
		sc.Programs = strings.Split(*programs, ",")
	}
	if *phases > 0 {
		sc.PhasesPerProgram = *phases
	}
	if *interval > 0 {
		sc.IntervalInsts = *interval
		sc.WarmupInsts = *interval / 2
	}
	if *uniform > 0 {
		sc.UniformSamples = *uniform
	}

	start := time.Now()
	log.Printf("building dataset: %d programs x %d phases, %d-inst intervals, %d shared configs",
		len(sc.Programs), sc.PhasesPerProgram, sc.IntervalInsts, sc.UniformSamples)
	ds, err := experiment.BuildDataset(sc)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset built: %d simulations in %v", ds.SimCount(), time.Since(start).Round(time.Second))

	fmt.Println(ds.TableIII().Render())

	log.Printf("evaluating model (LOOCV, advanced counters)")
	adv, err := ds.EvaluateModel(counters.Advanced)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("evaluating model (LOOCV, basic counters)")
	basic, err := ds.EvaluateModel(counters.Basic)
	if err != nil {
		log.Fatal(err)
	}
	suite := ds.Suite(adv, basic)
	fmt.Println(suite.Render())

	// Figure 4 as bars, like the paper's chart.
	var bars []render.Bar
	for _, row := range suite.Rows {
		bars = append(bars, render.Bar{Label: row.Program, Value: row.ModelAdvanced})
	}
	bars = append(bars, render.Bar{Label: "GEOMEAN", Value: suite.GeoModelAdvanced})
	fmt.Println(render.BarChart("Figure 4 (advanced counters, ratio vs best static; | marks 1.0):", bars, 46, 1))

	var limitBars []render.Bar
	limitBars = append(limitBars,
		render.Bar{Label: "model", Value: suite.GeoModelAdvanced},
		render.Bar{Label: "per-program", Value: suite.GeoPerProgram},
		render.Bar{Label: "oracle", Value: suite.GeoOracle},
	)
	fmt.Println(render.BarChart("Figure 6 (limit study, geomean ratios):", limitBars, 46, 1))

	fig7, err := ds.Figure7(adv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig7.Render())

	for _, p := range []arch.Param{arch.Width, arch.IQSize, arch.ICacheKB} {
		fmt.Println(ds.Figure8(p).Render())
	}

	fig3Phases := []experiment.PhaseID{}
	for _, want := range []string{"mgrid", "swim", "parser", "vortex"} {
		for _, id := range ds.Phases {
			if id.Program == want {
				fig3Phases = append(fig3Phases, id)
				break
			}
		}
	}
	if len(fig3Phases) > 0 {
		fig3, err := ds.Figure3(fig3Phases)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fig3.Render())
	}

	// Implementation analysis: Table V, Figure 9, model storage.
	fmt.Println("Table V: reconfiguration overheads (cycles)")
	for _, row := range core.TableV() {
		fmt.Printf("  %-8s %8d\n", row.Structure, row.Cycles)
	}
	fmt.Println()

	rows, err := core.Figure9(power.New(arch.Profiling()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 9: profiling energy overheads (% of cache energy)")
	for _, r := range rows {
		fmt.Printf("  %-7s %-12s sets=%4d/%-5d dynamic=%.2f%% leakage=%.2f%%\n",
			r.Cache, r.Feature, r.SampledSets, r.TotalSets,
			r.Overhead.DynamicPct, r.Overhead.LeakagePct)
	}
	fmt.Println()

	for _, set := range []counters.Set{counters.Basic, counters.Advanced} {
		st, err := ds.StorageAnalysis(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(st.Render())
	}
	fmt.Println()

	if !*skipSlow {
		log.Printf("running Table IV sampling sweep")
		t4, err := ds.TableIV([]int{4, 16, 64, 256}, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t4.Render())

		log.Printf("running Figure 1 sweeps")
		for _, prog := range []string{"gap", "applu", "apsi"} {
			f1, err := experiment.Figure1(prog, 1, sc.IntervalInsts, sc.WarmupInsts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(f1.Render())
			var iq8, iq4 []float64
			for _, pt := range f1.Points {
				iq8 = append(iq8, float64(pt.BestIQ[8]))
				iq4 = append(iq4, float64(pt.BestIQ[4]))
			}
			fmt.Printf("  IQ(w=8) over time: %s\n  IQ(w=4) over time: %s\n\n",
				render.Sparkline(iq8), render.Sparkline(iq4))
		}
	}

	log.Printf("total time %v", time.Since(start).Round(time.Second))
	os.Exit(0)
}
