// Command report regenerates every table and figure of the paper's
// evaluation at a configurable scale and prints them as text, recording
// the shape comparison DESIGN.md and EXPERIMENTS.md describe.
//
// Usage:
//
//	report [-scale test|default] [-programs mcf,swim,...] [-phases N]
//	       [-interval N] [-uniform N] [-skip-slow] [-cache-dir DIR]
//	       [-warm-ckpt] [-surrogate] [-surrogate-audit FRAC]
//	       [-fabric N] [-fabric-worker SPEC]
//	       [-trace out.json] [-manifest out.json] [-span-summary]
//	       [-log-json] [-log-level info]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Tables and figures go to stdout; logs (structured, via internal/obs) go
// to stderr — including the result-store statistics, so two runs against
// the same -cache-dir produce byte-identical stdout. With -trace the
// run's span tree is written as Chrome trace_event JSON (open with
// chrome://tracing or ui.perfetto.dev). With -manifest (auto-named
// manifest-report.json under -cache-dir) the run writes a structured JSON
// manifest whose deterministic section replays byte-identically — compare
// two with cmd/obsdiff. -span-summary prints a per-stage self/total time
// rollup of the span tree to stderr.
//
// -fabric N shards the dataset build into N phase windows (internal/
// fabric), runs them against private stores under -cache-dir/fabric,
// merges the partial stores into -cache-dir, then runs the normal
// pipeline warm — byte-identical stdout to the plain sequential run.
// -fabric-worker SPEC runs exactly one shard against the private
// -cache-dir and exits: the distributed form, one process per shard, any
// host, nothing shared but store directories (merge them afterwards with
// storectl). See README "Distributed builds".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/render"
	"repro/internal/store"
	"repro/internal/surrogate"
)

func main() {
	var (
		scaleName  = flag.String("scale", "default", "test or default scale preset")
		programs   = flag.String("programs", "", "comma-separated benchmark subset (default: preset)")
		phases     = flag.Int("phases", 0, "phases per program (default: preset)")
		interval   = flag.Int("interval", 0, "instructions per phase interval (default: preset)")
		uniform    = flag.Int("uniform", 0, "shared uniform samples (default: preset)")
		skipSlow   = flag.Bool("skip-slow", false, "skip Figure 1 and Table IV (the slowest experiments)")
		useSur     = flag.Bool("surrogate", false, "prune the design-space search with the learned surrogate (see README \"Surrogate search\")")
		surAudit   = flag.Float64("surrogate-audit", 0, "override the surrogate audit fraction (0 keeps the default)")
		cacheDir   = flag.String("cache-dir", "", "persistent result-store directory (reused across runs; empty disables)")
		warmCkpt   = flag.Bool("warm-ckpt", false, "checkpoint simulation warmups and restore instead of re-executing them (with -cache-dir, persisted across runs; see README \"Warmup checkpoints\")")
		fabricN    = flag.Int("fabric", 0, "shard the dataset build into N phase windows run against private stores under -cache-dir/fabric, merge, then build warm (requires -cache-dir; see README \"Distributed builds\")")
		fabricSpec = flag.String("fabric-worker", "", "run one fabric shard spec (from report -fabric logs or fabric.Partition) against the private -cache-dir and exit")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
		manifest   = flag.String("manifest", "", "write a run manifest (deterministic + timing sections) to this file; defaults to manifest-report.json under -cache-dir")
		spanSum    = flag.Bool("span-summary", false, "print a per-stage span time rollup to stderr at exit")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logJSON, obs.ParseLevel(*logLevel))

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			logger.Error("fatal", "err", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error("fatal", "err", err)
			os.Exit(1)
		}
	}
	// stopProfiles flushes both profiles; it runs on the fatal path too, so
	// a run killed by an error still leaves usable profiles behind.
	stopProfiles := func() {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
			logger.Info("cpu profile written", "path", *cpuProf)
		}
		if *memProf != "" {
			f, err := os.Create(*memProf)
			if err != nil {
				logger.Error("creating heap profile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Error("writing heap profile", "err", err)
				return
			}
			logger.Info("heap profile written", "path", *memProf)
		}
	}

	manifestPath := *manifest
	if manifestPath == "" && *cacheDir != "" {
		manifestPath = filepath.Join(*cacheDir, "manifest-report.json")
	}

	// The manifest and the span summary both need the span tree, so either
	// flag enables the tracer — before the store opens, so the store.open
	// span (argless by design: cold and warm trees must match) is captured.
	tr := obs.DefaultTracer()
	if *tracePath != "" || manifestPath != "" || *spanSum {
		tr.Enable()
	}
	writeTrace := func() {
		if *tracePath == "" {
			return
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			logger.Error("creating trace file", "err", err)
			return
		}
		defer f.Close()
		if err := tr.WriteChrome(f); err != nil {
			logger.Error("writing trace", "err", err)
			return
		}
		logger.Info("trace written", "path", *tracePath, "spans", tr.SpanCount())
	}
	die := func(err error) {
		logger.Error("fatal", "err", err)
		writeTrace()
		stopProfiles()
		os.Exit(1)
	}

	sc := experiment.DefaultScale()
	if *scaleName == "test" {
		sc = experiment.TestScale()
	}
	if *programs != "" {
		sc.Programs = strings.Split(*programs, ",")
	}
	if *phases > 0 {
		sc.PhasesPerProgram = *phases
	}
	if *interval > 0 {
		sc.IntervalInsts = *interval
		sc.WarmupInsts = *interval / 2
	}
	if *uniform > 0 {
		sc.UniformSamples = *uniform
	}

	// extraOpts are the build options shared by every build this process
	// runs — fabric shards and the final pipeline alike. The store is not
	// among them: each build attaches its own.
	var extraOpts []experiment.Option
	if *useSur {
		scfg := surrogate.DefaultConfig()
		if *surAudit > 0 {
			scfg.AuditFrac = *surAudit
		}
		extraOpts = append(extraOpts, experiment.WithSurrogate(scfg))
	}
	if *warmCkpt {
		extraOpts = append(extraOpts, experiment.WithWarmupCheckpoints())
	}

	// Live progress/ETA for the long stages, annotated with the memo and
	// store hit rates so a stalled-looking run is distinguishable from a
	// cache-warm one. st is nil until the final store opens; fabric shard
	// builds report memo rates only.
	var st *store.Store
	prog := &obs.Progress{Logger: logger}
	experiment.SetProgress(func(stage string, done, total int) {
		hits, sims := experiment.MemoStats()
		rate := 0.0
		if hits+sims > 0 {
			rate = float64(hits) / float64(hits+sims)
		}
		attrs := []any{"sims", sims, "memoHitRate", fmt.Sprintf("%.2f", rate)}
		if st != nil {
			sh, sm, _, _, _ := store.ProcessStats()
			attrs = append(attrs, "storeHits", sh, "storeMisses", sm)
		}
		prog.Observe(stage, done, total, attrs...)
	})
	defer experiment.SetProgress(nil)

	// Fabric worker mode: run exactly one shard against the private
	// store and exit — the pipeline belongs to whoever merges the shards.
	if *fabricSpec != "" {
		if *fabricN > 0 {
			die(fmt.Errorf("-fabric and -fabric-worker are mutually exclusive"))
		}
		if *cacheDir == "" {
			die(fmt.Errorf("-fabric-worker needs a private -cache-dir to persist its shard's results"))
		}
		spec, err := fabric.Parse(*fabricSpec)
		if err != nil {
			die(err)
		}
		start := time.Now()
		res, err := fabric.RunShard(context.Background(), sc, spec, *cacheDir, extraOpts...)
		if err != nil {
			die(err)
		}
		logger.Info("fabric shard done", "spec", spec.String(),
			"phases", spec.Phases(), "freshSearchSims", res.FreshSearchSims,
			"storeHits", res.Store.Hits, "storeMisses", res.Store.Misses,
			"elapsed", time.Since(start).Round(time.Second).String())
		writeTrace()
		stopProfiles()
		return
	}

	// Fabric driver mode: run every shard in-process sequentially, merge
	// the partial stores into -cache-dir, then fall through to the normal
	// pipeline, which replays warm from the merged store.
	if *fabricN > 0 {
		if *cacheDir == "" {
			die(fmt.Errorf("-fabric needs -cache-dir: the shard stores live under it and the merged registry becomes the build's warm store"))
		}
		logger.Info("fabric build", "shards", *fabricN, "dir", *cacheDir)
		dres, err := fabric.Drive(context.Background(), sc, *fabricN, *cacheDir, extraOpts...)
		if err != nil {
			die(err)
		}
		for _, sh := range dres.Shards {
			logger.Info("fabric shard done", "spec", sh.Spec.String(),
				"phases", sh.Spec.Phases(), "freshSearchSims", sh.FreshSearchSims,
				"storeHits", sh.Store.Hits, "storeMisses", sh.Store.Misses)
		}
		logger.Info("fabric merged", "records", dres.Merge.Records,
			"added", dres.Merge.Added, "dedup", dres.Merge.Dedup,
			"dropped", dres.Merge.Dropped, "shardSearchSims", dres.FreshSearchSims)
	}

	if *cacheDir != "" {
		var err error
		if st, err = store.Open(*cacheDir); err != nil {
			die(fmt.Errorf("opening -cache-dir: %w", err))
		}
		defer st.Close()
		logger.Info("result store open", "dir", *cacheDir, "records", st.Len())
	}

	opts := append(append([]experiment.Option{}, extraOpts...), experiment.WithStore(st))

	start := time.Now()
	logger.Info("building dataset",
		"programs", len(sc.Programs), "phasesPerProgram", sc.PhasesPerProgram,
		"intervalInsts", sc.IntervalInsts, "sharedConfigs", sc.UniformSamples,
		"surrogate", *useSur)
	ds, err := experiment.Build(context.Background(), sc, opts...)
	if err != nil {
		die(err)
	}
	logger.Info("dataset built", "simulations", ds.SimCount(),
		"searchSims", experiment.SearchSimCount(),
		"elapsed", time.Since(start).Round(time.Second).String())
	if sum := ds.SurrogateSummary(); sum != nil {
		logger.Info("surrogate summary",
			"exact", sum.Exact, "pruned", sum.Pruned, "audited", sum.Audited,
			"observations", sum.Observations, "fits", sum.Fits,
			"rankCorr", fmt.Sprintf("%.3f", sum.RankCorr),
			"regret", fmt.Sprintf("%.3f", sum.Regret),
			"calibMAE", fmt.Sprintf("%.3f", sum.CalibMAE))
	}

	fmt.Println(ds.TableIII().Render())

	logger.Info("evaluating model", "method", "LOOCV", "counters", "advanced")
	adv, err := ds.EvaluateModel(counters.Advanced)
	if err != nil {
		die(err)
	}
	logger.Info("evaluating model", "method", "LOOCV", "counters", "basic")
	basic, err := ds.EvaluateModel(counters.Basic)
	if err != nil {
		die(err)
	}
	suite := ds.Suite(adv, basic)
	fmt.Println(suite.Render())

	// Figure 4 as bars, like the paper's chart.
	var bars []render.Bar
	for _, row := range suite.Rows {
		bars = append(bars, render.Bar{Label: row.Program, Value: row.ModelAdvanced})
	}
	bars = append(bars, render.Bar{Label: "GEOMEAN", Value: suite.GeoModelAdvanced})
	fmt.Println(render.BarChart("Figure 4 (advanced counters, ratio vs best static; | marks 1.0):", bars, 46, 1))

	var limitBars []render.Bar
	limitBars = append(limitBars,
		render.Bar{Label: "model", Value: suite.GeoModelAdvanced},
		render.Bar{Label: "per-program", Value: suite.GeoPerProgram},
		render.Bar{Label: "oracle", Value: suite.GeoOracle},
	)
	fmt.Println(render.BarChart("Figure 6 (limit study, geomean ratios):", limitBars, 46, 1))

	fig7, err := ds.Figure7(adv)
	if err != nil {
		die(err)
	}
	fmt.Println(fig7.Render())

	for _, p := range []arch.Param{arch.Width, arch.IQSize, arch.ICacheKB} {
		fmt.Println(ds.Figure8(p).Render())
	}

	fig3Phases := []experiment.PhaseID{}
	for _, want := range []string{"mgrid", "swim", "parser", "vortex"} {
		for _, id := range ds.Phases {
			if id.Program == want {
				fig3Phases = append(fig3Phases, id)
				break
			}
		}
	}
	if len(fig3Phases) > 0 {
		fig3, err := ds.Figure3(fig3Phases)
		if err != nil {
			die(err)
		}
		fmt.Println(fig3.Render())
	}

	// Implementation analysis: Table V, Figure 9, model storage.
	fmt.Println("Table V: reconfiguration overheads (cycles)")
	for _, row := range core.TableV() {
		fmt.Printf("  %-8s %8d\n", row.Structure, row.Cycles)
	}
	fmt.Println()

	rows, err := core.Figure9(power.New(arch.Profiling()))
	if err != nil {
		die(err)
	}
	fmt.Println("Figure 9: profiling energy overheads (% of cache energy)")
	for _, r := range rows {
		fmt.Printf("  %-7s %-12s sets=%4d/%-5d dynamic=%.2f%% leakage=%.2f%%\n",
			r.Cache, r.Feature, r.SampledSets, r.TotalSets,
			r.Overhead.DynamicPct, r.Overhead.LeakagePct)
	}
	fmt.Println()

	for _, set := range []counters.Set{counters.Basic, counters.Advanced} {
		st, err := ds.StorageAnalysis(set)
		if err != nil {
			die(err)
		}
		fmt.Print(st.Render())
	}
	fmt.Println()

	if !*skipSlow {
		logger.Info("running Table IV sampling sweep")
		t4, err := ds.TableIV([]int{4, 16, 64, 256}, 12)
		if err != nil {
			die(err)
		}
		fmt.Println(t4.Render())

		logger.Info("running Figure 1 sweeps")
		for _, prog := range []string{"gap", "applu", "apsi"} {
			f1, err := experiment.Figure1(prog, 1, sc.IntervalInsts, sc.WarmupInsts)
			if err != nil {
				die(err)
			}
			fmt.Println(f1.Render())
			var iq8, iq4 []float64
			for _, pt := range f1.Points {
				iq8 = append(iq8, float64(pt.BestIQ[8]))
				iq4 = append(iq4, float64(pt.BestIQ[4]))
			}
			fmt.Printf("  IQ(w=8) over time: %s\n  IQ(w=4) over time: %s\n\n",
				render.Sparkline(iq8), render.Sparkline(iq4))
		}
	}

	hits, sims := experiment.MemoStats()
	logger.Info("done", "elapsed", time.Since(start).Round(time.Second).String(),
		"simulations", sims, "memoHits", hits,
		"warmupInsts", cpu.WarmupInstructions(), "warmupRestores", cpu.WarmupRestores())
	if st != nil {
		s := st.Stats()
		rate := 0.0
		if s.Hits+s.Misses > 0 {
			rate = float64(s.Hits) / float64(s.Hits+s.Misses)
		}
		logger.Info("store stats", "dir", *cacheDir,
			"storeHits", s.Hits, "storeMisses", s.Misses,
			"storeHitRate", fmt.Sprintf("%.2f", rate),
			"records", s.Records, "bytesRead", s.BytesRead, "bytesWritten", s.BytesWritten,
			"dropped", s.Dropped, "compactions", s.Compactions)
	}
	if *spanSum {
		fmt.Fprintln(os.Stderr, "span summary (self = own time, total = subtree, stage = first name token):")
		tr.WriteRollup(os.Stderr)
	}
	if manifestPath != "" {
		m := obs.NewManifest("report")
		m.SetDet("flags.scale", *scaleName)
		m.SetDet("flags.skipSlow", *skipSlow)
		m.SetDet("flags.surrogate", *useSur)
		m.SetDet("flags.surrogateAudit", *surAudit)
		m.SetDet("flags.warmCkpt", *warmCkpt)
		m.SetDet("flags.fabric", *fabricN)
		experiment.FillBuildManifest(m, ds)
		tr.FillManifest(m)
		elapsed := time.Since(start).Seconds()
		m.SetTiming("totalSeconds", elapsed)
		if insts := cpu.SimulatedInstructions(); insts > 0 {
			m.SetTiming("nsPerInst", elapsed*1e9/float64(insts))
		}
		if st != nil {
			st.Stats().FillManifest(m, elapsed)
		}
		if err := m.WriteFile(manifestPath); err != nil {
			die(err)
		}
		logger.Info("manifest written", "path", manifestPath)
	}
	writeTrace()
	stopProfiles()
}
