// Command storectl administers persistent result-store directories (the
// -cache-dir format shared by report, adaptd and adaptsim) — the registry
// half of the distributed experiment fabric (README "Distributed builds").
//
// Usage:
//
//	storectl merge DST SRC [SRC...]   union the live records of the SRC
//	                                  stores (and DST's own) into DST
//	storectl verify DIR [DIR...]      validate framing, CRCs, record
//	                                  values and the SimVersion stamp;
//	                                  exits 1 on any fault
//	storectl stats DIR [DIR...]       print record/segment/byte counts
//
// merge is crash-safe (temp file + atomic rename), collapses identical
// duplicate records, and refuses divergent duplicates (same key,
// different bytes) and stores stamped with a different store.SimVersion —
// see CLAUDE.md's merge contract. verify and stats are strictly
// read-only.
package main

import (
	"fmt"
	"os"

	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "merge":
		if len(args) < 2 {
			usage()
			os.Exit(2)
		}
		merge(args[0], args[1:])
	case "verify":
		if len(args) < 1 {
			usage()
			os.Exit(2)
		}
		verify(args)
	case "stats":
		if len(args) < 1 {
			usage()
			os.Exit(2)
		}
		stats(args)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  storectl merge DST SRC [SRC...]   union SRC stores (and DST's own records) into DST
  storectl verify DIR [DIR...]      audit framing, CRCs, values and SimVersion (exit 1 on faults)
  storectl stats DIR [DIR...]       print record/segment/byte counts
`)
}

func merge(dst string, srcs []string) {
	ms, err := store.Merge(dst, srcs...)
	if err != nil {
		die(err)
	}
	fmt.Printf("merged %d sources into %s: records=%d added=%d dedup=%d superseded=%d dropped=%d bytes=%d snapshots=%d\n",
		ms.Sources, dst, ms.Records, ms.Added, ms.Dedup, ms.Superseded, ms.Dropped, ms.Bytes, ms.Snapshots)
}

func verify(dirs []string) {
	faults := 0
	for _, dir := range dirs {
		c, err := store.CheckDir(dir)
		if err != nil {
			die(err)
		}
		if c.Ok() {
			fmt.Printf("%s: ok records=%d segments=%d superseded=%d snapshots=%d bytes=%d simversion=%d\n",
				dir, c.Live, c.Segments, c.Superseded, c.Snapshots, c.Bytes, c.SimVersion)
			continue
		}
		faults += len(c.Faults)
		fmt.Printf("%s: %d fault(s)\n", dir, len(c.Faults))
		for _, f := range c.Faults {
			fmt.Printf("  FAULT: %s\n", f)
		}
	}
	if faults > 0 {
		os.Exit(1)
	}
}

func stats(dirs []string) {
	for _, dir := range dirs {
		c, err := store.CheckDir(dir)
		if err != nil {
			die(err)
		}
		stamp := "missing"
		if c.HasStamp {
			stamp = fmt.Sprintf("%d", c.SimVersion)
		}
		fmt.Printf("%s: records=%d segments=%d superseded=%d dropped=%d bytes=%d snapshots=%d snapshotbytes=%d simversion=%s\n",
			dir, c.Live, c.Segments, c.Superseded, c.Dropped, c.Bytes, c.Snapshots, c.SnapshotBytes, stamp)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "storectl:", err)
	os.Exit(1)
}
