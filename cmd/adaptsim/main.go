// Command adaptsim runs the paper's adaptive processor end to end: it
// trains the predictive model on the benchmark suite, then executes a
// chosen program under the runtime controller (monitor -> profile ->
// predict -> reconfigure, Figure 2 of the paper), printing one line per
// monitoring interval plus the final energy-efficiency comparison against
// the best static configuration.
//
// Usage:
//
//	adaptsim [-program mcf] [-intervals 20] [-interval-insts 20000]
//	         [-counter-set advanced|basic] [-cadence N] [-cache-dir DIR]
//
// With -cache-dir, the training dataset is built against the persistent
// simulation-result store (internal/store), so repeated adaptsim runs —
// even for different -program values, which train on overlapping
// benchmark subsets — reuse each other's simulations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		program   = flag.String("program", "mcf", "benchmark to run under the controller")
		intervals = flag.Int("intervals", 20, "monitoring intervals to execute")
		ivInsts   = flag.Int("interval-insts", 20000, "instructions per monitoring interval")
		setName   = flag.String("counter-set", "advanced", "counter set: advanced or basic")
		cadence   = flag.Int("cadence", 0, "if > 0, caches adapt only every Nth reconfiguration")
		ovScale   = flag.Float64("overhead-scale", 0.02, "reconfiguration overhead scale (1 = paper-absolute)")
		modelPath = flag.String("model-cache", "", "path to save/load the trained predictor (skips retraining)")
		cacheDir  = flag.String("cache-dir", "", "persistent simulation-result store for the training build (empty disables)")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, *logJSON, obs.ParseLevel(*logLevel))
	die := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	if !trace.IsBenchmark(*program) {
		die(fmt.Errorf("unknown benchmark %q (choose from %v)", *program, trace.Benchmarks()))
	}
	set := counters.Advanced
	if *setName == "basic" {
		set = counters.Basic
	}

	// Train on a scaled dataset that excludes the target program —
	// honest held-out prediction, as in the paper's evaluation.
	sc := experiment.DefaultScale()
	sc.PhasesPerProgram = 3
	var progs []string
	for _, p := range trace.Benchmarks() {
		if p != *program {
			progs = append(progs, p)
		}
	}
	sc.Programs = progs
	var pred *core.Predictor
	var bestStatic = arch.Baseline()
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		switch {
		case err == nil:
			pred, err = core.LoadPredictor(f)
			f.Close()
			if err != nil {
				die(fmt.Errorf("loading cached model %s: %w (delete it to retrain)", *modelPath, err))
			}
			// A cached predictor must match the requested counter set, or
			// every prediction would be mis-dimensioned (LoadPredictor has
			// already validated the file against its own declared set).
			if pred.Set != set {
				die(fmt.Errorf("cached model %s was trained on the %q counter set but -counter-set is %q; delete the cache or pass -counter-set %s",
					*modelPath, pred.Set, set, pred.Set))
			}
			logger.Info("loaded trained predictor", "path", *modelPath)
		case !errors.Is(err, os.ErrNotExist):
			die(fmt.Errorf("opening model cache %s: %w", *modelPath, err))
		}
	}
	if pred == nil {
		var st *store.Store
		if *cacheDir != "" {
			var err error
			if st, err = store.Open(*cacheDir); err != nil {
				die(fmt.Errorf("opening -cache-dir: %w", err))
			}
			defer st.Close()
			logger.Info("result store open", "dir", *cacheDir, "records", st.Len())
		}
		logger.Info("building training dataset", "programs", len(progs), "phasesPerProgram", sc.PhasesPerProgram)
		prog := &obs.Progress{Logger: logger}
		experiment.SetProgress(func(stage string, done, total int) {
			prog.Observe(stage, done, total)
		})
		ds, err := experiment.Build(context.Background(), sc, experiment.WithStore(st))
		if err != nil {
			die(err)
		}
		experiment.SetProgress(nil)
		if st != nil {
			s := st.Stats()
			logger.Info("store stats", "storeHits", s.Hits, "storeMisses", s.Misses,
				"records", s.Records, "bytesWritten", s.BytesWritten)
		}
		logger.Info("training predictor", "counters", set.String())
		pred, err = ds.TrainAll(set)
		if err != nil {
			die(err)
		}
		bestStatic = ds.BestStatic
		if *modelPath != "" {
			f, err := os.Create(*modelPath)
			if err != nil {
				die(err)
			}
			if err := pred.Save(f); err != nil {
				die(err)
			}
			f.Close()
			logger.Info("saved trained predictor", "path", *modelPath)
		}
	}

	opts := core.DefaultOptions()
	opts.Interval = *ivInsts
	opts.SampledSets = sc.SampledSets
	opts.Start = bestStatic
	opts.Threshold = 0.6
	// Table V overheads are absolute; intervals here are ~1000x shorter
	// than the paper's, so scale the overheads correspondingly.
	opts.OverheadScale = *ovScale
	if *cadence > 0 {
		opts.Cadence = core.EveryNth(*cadence)
	}
	ctl, err := core.NewController(pred, opts)
	if err != nil {
		die(err)
	}

	g, err := trace.NewGenerator(*program, 0)
	if err != nil {
		die(err)
	}
	src := &phaseWalker{program: *program, gen: g, perPhase: max(1, *intervals/trace.PhasesPerProgram**ivInsts)}

	logger.Info("running controller", "program", *program, "intervals", *intervals, "intervalInsts", *ivInsts)
	rep, err := ctl.Run(src, *intervals)
	if err != nil {
		die(err)
	}
	for _, r := range rep.Records {
		tag := " "
		if r.Profiled {
			tag = "P"
		}
		ch := " "
		if r.PhaseChange {
			ch = "*"
		}
		fmt.Printf("interval %3d %s%s cycles=%7d  E=%8.2eJ  eff=%9.3e  cfg: W=%d ROB=%d IQ=%d D$=%dK L2=%dK FO4=%d\n",
			r.Index, tag, ch, r.Cycles, r.EnergyJ, r.Efficiency,
			r.Config[arch.Width], r.Config[arch.ROBSize], r.Config[arch.IQSize],
			r.Config[arch.DCacheKB], r.Config[arch.L2CacheKB], r.Config[arch.DepthFO4])
	}
	fmt.Printf("\ncontroller: %d phase changes, %d profiles, %d reconfigurations\n",
		rep.PhaseChanges, rep.Profiles, rep.Reconfigs)
	fmt.Printf("aggregate: %.3e ips, %.1f W, efficiency %.3e ips^3/W\n", rep.IPS, rep.Watts, rep.Efficiency)

	// Static reference: run the same stream on the best static config.
	g2, _ := trace.NewGenerator(*program, 0)
	src2 := &phaseWalker{program: *program, gen: g2, perPhase: src.perPhase}
	sim, err := cpu.New(bestStatic)
	if err != nil {
		die(err)
	}
	res, err := sim.Run(src2, *intervals**ivInsts, cpu.Options{})
	if err != nil {
		die(err)
	}
	fmt.Printf("best static (%v):\n  efficiency %.3e ips^3/W\n", bestStatic, res.Efficiency)
	if res.Efficiency > 0 {
		fmt.Printf("adaptive / static efficiency ratio: %.2fx\n", rep.Efficiency/res.Efficiency)
	}
}

// phaseWalker streams a program's phases in order, advancing to the next
// phase every perPhase instructions, emulating a whole-program run.
type phaseWalker struct {
	program  string
	gen      *trace.Generator
	perPhase int
	n        int
	phase    int
}

// Next returns the next instruction, switching phases periodically.
func (w *phaseWalker) Next() trace.Inst {
	if w.n >= w.perPhase && w.phase < trace.PhasesPerProgram-1 {
		w.phase++
		w.n = 0
		g, err := trace.NewGenerator(w.program, w.phase)
		if err == nil {
			w.gen = g
		}
	}
	w.n++
	return w.gen.Next()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
